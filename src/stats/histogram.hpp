// Fixed-bin histogram and empirical CDF utilities.
//
// Used to (a) profile the discriminator confidence distribution, from which
// the deferral profile f(t) is derived (f(t) = P(confidence < t)), and
// (b) report quality-difference CDFs for Figure 1b.
#pragma once

#include <cstddef>
#include <vector>

namespace diffserve::stats {

/// Uniform-bin histogram over [lo, hi]; out-of-range samples clamp to the
/// edge bins so mass is never silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void reset();

  std::size_t total() const { return total_; }
  std::size_t bins() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const;
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;
  double bin_center(std::size_t bin) const;

  /// Fraction of samples strictly below x (empirical CDF, linear within
  /// the containing bin). Returns 0 with no samples.
  double cdf(double x) const;

  /// Smallest x with cdf(x) >= q, q in [0, 1].
  double quantile(double q) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Exact empirical CDF over a stored sample set (for one-shot profiling).
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> samples);

  /// P(X <= x).
  double at(double x) const;
  /// Smallest sample s with P(X <= s) >= q.
  double quantile(double q) const;
  std::size_t count() const { return samples_.size(); }
  const std::vector<double>& sorted_samples() const { return samples_; }

 private:
  std::vector<double> samples_;  // sorted ascending
};

}  // namespace diffserve::stats
