#include "runtime/threaded_runtime.hpp"

#include <algorithm>
#include <chrono>

#include "control/controller.hpp"
#include "engine/engine.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#include <unistd.h>
#endif

namespace diffserve::runtime {

namespace {

void maybe_pin_to_cpu(int index) {
#ifdef __linux__
  const long n = sysconf(_SC_NPROCESSORS_ONLN);
  if (n <= 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(index % n), &set);
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)index;
#endif
}

}  // namespace

ThreadedBackend::ThreadedBackend(const util::TraceClock& clock, int workers,
                                 bool pin_executors)
    : clock_(clock), pin_executors_(pin_executors) {
  executors_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    executors_.push_back(std::make_unique<Executor>());
}

ThreadedBackend::~ThreadedBackend() { stop(); }

void ThreadedBackend::start() {
  timer_thread_ = std::thread([this] { timer_main(); });
  control_thread_ = std::thread([this] { control_main(); });
  int index = 0;
  for (auto& ex : executors_) {
    ex->thread =
        std::thread([this, e = ex.get(), index] { executor_main(*e, index); });
    ++index;
  }
}

void ThreadedBackend::stop() {
  if (stop_.load()) return;
  // Quiesce before signalling stop: a finishing batch can dispatch a
  // follow-on batch deeper in the chain, which must still be accepted and
  // executed rather than lost to an already-joined executor thread. The
  // timer thread counts too — a timer callback in flight may be about to
  // dispatch a batch, and signalling stop in that window would discard
  // it (losing its queries and leaving the worker busy forever). Once no
  // executor has work and no timer callback is running, nothing can
  // dispatch anymore: due timers that have not fired are held back by the
  // stop flag and their queries stay queued (observable, not lost).
  // Busy flags are raised *before* the corresponding ring pop, so a job
  // can never vanish from a ring without this loop seeing the thread as
  // in-flight. Bounded so a wedged pipeline cannot hang shutdown.
  const auto quiesce_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  for (;;) {
    bool active = timer_busy_.load();
    active = active || control_busy_.load() || !control_jobs_.empty();
    for (auto& ex : executors_)
      active = active || ex->busy.load() || !ex->ring.empty();
    if (!active || std::chrono::steady_clock::now() > quiesce_deadline)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (stop_.exchange(true)) return;
  {
    util::MutexLock lk(timer_park_mu_);
    timer_park_cv_.notify_all();
  }
  {
    util::MutexLock lk(control_park_mu_);
    control_park_cv_.notify_all();
  }
  for (auto& ex : executors_) {
    util::MutexLock lk(ex->park_mu);
    ex->park_cv.notify_all();
  }
  if (timer_thread_.joinable()) timer_thread_.join();
  if (control_thread_.joinable()) control_thread_.join();
  for (auto& ex : executors_)
    if (ex->thread.joinable()) ex->thread.join();
}

engine::TimerHandle ThreadedBackend::defer(double delay_seconds,
                                           std::function<void()> fn) {
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  TimerMsg m;
  m.id = id;
  m.at = clock_.now() + std::max(delay_seconds, 0.0);
  m.fn = std::move(fn);
  timer_inbox_.push(std::move(m));
  // Unlocked notify: a lost wakeup costs at most one capped parking
  // interval (the timer thread never sleeps longer than 2 ms wall).
  timer_park_cv_.notify_one();
  return {id};
}

bool ThreadedBackend::cancel(engine::TimerHandle h) {
  TimerMsg m;
  m.id = h.id;  // fn == nullptr marks a cancel
  timer_inbox_.push(std::move(m));
  // Optimistic: the ExecutionBackend contract already requires callers to
  // tolerate a cancelled callback that was concurrently in flight (the
  // engine stamps timer epochs), so "will be cancelled when the message
  // drains" is as good as "was cancelled".
  return true;
}

void ThreadedBackend::execute(int worker_id, double exec_seconds,
                              std::function<void()> done) {
  // Unreachable after a clean quiesce (nothing can dispatch once stop_ is
  // set); only the bounded quiesce-timeout escape path for a wedged
  // pipeline lands here, where the executor may already be gone.
  if (stop_.load()) return;
  Executor& ex = *executors_[static_cast<std::size_t>(worker_id)];
  ExecJob job;
  // Absolute due time, stamped at dispatch: the executor sleeps *until*
  // it rather than *for* the latency, so hand-off latency does not
  // accumulate into batch lateness (which the engine would count as
  // SLO violations).
  job.due = clock_.now() + exec_seconds;
  job.done = std::move(done);
  // The engine never dispatches to a worker it believes busy, so the ring
  // holds at most one job per completion cycle; a full ring means that
  // invariant broke upstream.
  DS_CHECK(ex.ring.try_push(std::move(job)), "worker job ring full");
  ex.park_cv.notify_one();  // unlocked; capped park bounds any lost wakeup
}

void ThreadedBackend::offload(std::function<void()> fn) {
  if (stop_.load()) return;  // shutting down; the tick is moot
  control_jobs_.push(std::move(fn));
  control_park_cv_.notify_one();
}

void ThreadedBackend::control_main() {
  for (;;) {
    // Raised before the pop so stop()'s quiesce can never observe
    // "control idle" between extraction and invocation.
    control_busy_.store(true);
    std::function<void()> job;
    if (control_jobs_.try_pop(job)) {
      job();  // acquires the engine guard internally
      control_busy_.store(false);
      continue;
    }
    control_busy_.store(false);
    // Drain queued jobs even while stopping: a job may have been accepted
    // a moment before the stop flag was raised (checked after the pop
    // attempt above came up empty).
    if (stop_.load()) return;
    util::MutexLock lk(control_park_mu_);
    control_park_cv_.wait_for(control_park_mu_, std::chrono::milliseconds(2),
                              [&] {
                                return stop_.load() || !control_jobs_.empty();
                              });
  }
}

void ThreadedBackend::timer_main() {
  // The heap and callback map are thread-local to the timer loop; the rest
  // of the system only ever touches the inbox ring.
  std::priority_queue<TimerEntry, std::vector<TimerEntry>, TimerCompare> heap;
  std::unordered_map<std::uint64_t, std::function<void()>> fns;
  for (;;) {
    TimerMsg m;
    while (timer_inbox_.try_pop(m)) {
      if (m.fn) {
        heap.push({m.at, m.id});
        fns[m.id] = std::move(m.fn);
      } else {
        fns.erase(m.id);  // heap entry becomes a tombstone, skipped below
      }
    }
    if (stop_.load()) return;
    while (!heap.empty() && fns.find(heap.top().id) == fns.end()) heap.pop();
    if (heap.empty()) {
      util::MutexLock lk(timer_park_mu_);
      timer_park_cv_.wait_for(timer_park_mu_, std::chrono::milliseconds(2));
      continue;
    }
    const double due = heap.top().at;
    const double now = clock_.now();
    if (due <= now) {
      const std::uint64_t id = heap.top().id;
      heap.pop();
      auto it = fns.find(id);
      std::function<void()> fn = std::move(it->second);
      fns.erase(it);
      // Raised before invocation so stop()'s quiesce sees the callback as
      // in flight (it may be about to dispatch a batch).
      timer_busy_.store(true);
      fn();  // acquires the engine guard internally
      timer_busy_.store(false);
      continue;
    }
    // Park until the due time, capped so stop/new-timer are noticed.
    util::MutexLock lk(timer_park_mu_);
    timer_park_cv_.wait_for(timer_park_mu_,
                            std::min<std::chrono::duration<double>>(
                                clock_.wall_duration(due - now),
                                std::chrono::milliseconds(2)));
  }
}

void ThreadedBackend::executor_main(Executor& ex, int index) {
  if (pin_executors_) maybe_pin_to_cpu(index);
  for (;;) {
    // busy is raised *before* the pop attempt: stop()'s quiesce checks
    // `ring.empty() && !busy`, and this ordering guarantees a popped job
    // is never invisible to it.
    ex.busy.store(true);
    ExecJob job;
    if (ex.ring.try_pop(job)) {
      clock_.sleep_until(job.due);
      job.done();  // acquires the engine guard internally
      ex.busy.store(false);
      continue;
    }
    ex.busy.store(false);
    if (stop_.load()) return;  // ring drained; jobs-before-stop already ran
    // Spin briefly before parking: under flood the next batch lands within
    // microseconds, and a condition-variable round-trip would dominate the
    // per-batch cost the ring exists to remove.
    bool got = false;
    for (int spin = 0; spin < 2048; ++spin) {
      if (!ex.ring.empty()) {
        got = true;
        break;
      }
      if (stop_.load()) break;
      if ((spin & 63) == 63) std::this_thread::yield();
    }
    if (got) continue;
    util::MutexLock lk(ex.park_mu);
    ex.park_cv.wait_for(ex.park_mu, std::chrono::milliseconds(2),
                        [&] { return stop_.load() || !ex.ring.empty(); });
  }
}

namespace {

/// Non-owning adapter: the Controller owns its allocator, but run_threaded
/// borrows one from the caller.
class BorrowedAllocator final : public control::Allocator {
 public:
  explicit BorrowedAllocator(control::Allocator& inner) : inner_(inner) {}
  control::AllocationDecision allocate(
      const control::AllocationInput& input) override {
    return inner_.allocate(input);
  }
  std::string name() const override { return inner_.name(); }

 private:
  control::Allocator& inner_;
};

}  // namespace

RuntimeResult run_threaded(const core::CascadeEnvironment& env,
                           control::Allocator& allocator,
                           const trace::RateTrace& trace,
                           const RuntimeConfig& cfg) {
  DS_REQUIRE(cfg.total_workers >= 2, "need at least two workers");
  const double slo =
      cfg.slo_seconds > 0.0 ? cfg.slo_seconds : env.default_slo();

  util::TraceClock clock(cfg.time_scale);
  ThreadedBackend backend(clock, cfg.total_workers, cfg.pin_executors);

  engine::EngineConfig ecfg;
  ecfg.total_workers = cfg.total_workers;
  ecfg.slo_seconds = slo;
  ecfg.model_load_delay = cfg.model_load_delay;
  ecfg.heavy_reserve_factor = cfg.heavy_reserve_factor;
  // Wall-clock timer jitter scales with the time compression; absorb it so
  // deadline-boundary batches launch in time (the DES needs no slack).
  ecfg.launch_slack_seconds = cfg.launch_slack_wall_seconds * cfg.time_scale;
  ecfg.record_terminal_events = cfg.record_terminal_events;
  ecfg.cache = cfg.cache;
  ecfg.prompt_mix = cfg.prompt_mix;
  ecfg.slo_classes = cfg.slo_classes;
  engine::CascadeEngine eng(backend, env.workload(), env.repository(),
                            env.cascade(), env.discs(), env.scorer(), ecfg);

  control::ControllerConfig ccfg;
  ccfg.period_seconds = cfg.control_period;
  ccfg.over_provision = cfg.over_provision;
  ccfg.max_deferral_fraction = cfg.max_deferral_fraction;
  ccfg.initial_demand_guess = trace.qps_at(0.0);
  control::Controller controller(
      eng, std::make_unique<BorrowedAllocator>(allocator),
      env.offline_profiles(), ccfg);

  util::Rng rng(cfg.arrival_seed);
  const auto arrivals = trace::generate_arrivals(trace, rng, cfg.arrivals);
  eng.sink_reserve(arrivals.size());

  backend.start();
  controller.start();

  // The client: replay arrivals in compressed wall time.
  for (const double t : arrivals) {
    clock.sleep_until(t);
    eng.submit_next();
  }

  // Drain: give in-flight queries until trace end + SLO + margin.
  clock.sleep_until(trace.duration() + slo + 5.0);
  controller.stop();
  backend.stop();

  RuntimeResult r;
  const auto& sink = eng.sink();
  r.submitted = eng.submitted();
  r.completed = sink.completed();
  r.dropped = sink.dropped();
  r.reconfigurations = eng.reconfigurations();
  const auto cache_stats = eng.cache_stats();
  r.cache_hit_ratio = cache_stats.hit_ratio();
  r.cache_exact_hit_ratio = cache_stats.exact_hit_ratio();
  r.cache_mean_probed_cells = cache_stats.mean_probed_cells();
  r.cache_heap_compactions = cache_stats.heap_compactions;
  r.violation_ratio = sink.violation_ratio();
  r.mean_latency = sink.mean_latency();
  r.light_served_fraction = sink.light_served_fraction();
  r.stage_served_fraction = sink.stage_served_fractions(eng.stage_count());
  for (std::size_t c = 0; c < engine::kQueryClassCount; ++c) {
    const auto cls = static_cast<engine::QueryClass>(c);
    r.class_completed[c] = sink.class_completed(cls);
    r.class_dropped[c] = sink.class_dropped(cls);
    r.class_violation_ratio[c] = sink.class_violation_ratio(cls);
    r.class_mean_latency[c] = sink.class_mean_latency(cls);
  }
  r.overall_fid = r.completed >= 2 ? sink.overall_fid() : -1.0;
  return r;
}

}  // namespace diffserve::runtime
