// Experiment driver: run one serving approach against one trace on one
// cascade environment, in the discrete-event simulator, and collect the
// paper's metrics. This is the primary public API; every evaluation figure
// is a set of run_experiment() calls with different approaches/traces.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "control/controller.hpp"
#include "core/environment.hpp"
#include "engine/metrics_sink.hpp"
#include "serving/system.hpp"
#include "trace/arrivals.hpp"
#include "trace/rate_trace.hpp"

namespace diffserve::core {

enum class Approach {
  kDiffServe,             ///< MILP allocation + cascade routing (the system)
  kDiffServeExhaustive,   ///< DiffServe with the exhaustive oracle allocator
  kDiffServeStatic,       ///< fixed threshold, provisioned for peak
  kClipperLight,
  kClipperHeavy,
  kProteus,
  // §4.5 ablations of the resource allocator:
  kAblationStaticThreshold,
  kAblationAimdBatching,
  kAblationNoQueueModel,
};

const char* to_string(Approach a);
/// All five §4.2/4.3 comparison approaches, in the paper's order.
const std::vector<Approach>& comparison_approaches();

struct RunConfig {
  Approach approach = Approach::kDiffServe;
  int total_workers = 16;
  /// Negative = use the cascade's default SLO.
  double slo_seconds = -1.0;
  /// Fixed operating point for DiffServe-Static / the static-threshold
  /// ablation, expressed as a deferral fraction; the matching confidence
  /// threshold comes from the offline profile (f^{-1}). A static system
  /// must pick one operating point for all loads; even a peak-conscious
  /// choice under-serves when demand exceeds the provisioning assumption
  /// and under-delivers quality the rest of the time (§4.3).
  double static_deferral_fraction = 0.25;
  double over_provision = 1.05;
  control::ControllerConfig controller;
  serving::SystemConfig system;  ///< total_workers/slo overridden from above
  trace::RateTrace trace;        ///< must be set
  trace::ArrivalConfig arrivals;
  std::uint64_t arrival_seed = 1;
  /// Simulated drain margin after the trace ends.
  double drain_seconds = 20.0;
  double timeline_window = 10.0;
};

struct ExperimentResult {
  std::string approach;
  double overall_fid = 0.0;
  double violation_ratio = 0.0;
  double mean_latency = 0.0;
  double p99_latency = 0.0;
  double light_served_fraction = 0.0;
  /// Completed-query share per chain stage (size = chain depth).
  std::vector<double> stage_served_fraction;
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t dropped = 0;
  /// Applied plans that changed at least one worker's hosted model.
  std::size_t reconfigurations = 0;
  double mean_solve_ms = 0.0;
  /// Prompt-reuse cache probe ratios (0 when the cache is disabled).
  double cache_hit_ratio = 0.0;
  double cache_exact_hit_ratio = 0.0;
  /// Cache maintenance depth: mean LSH buckets probed per lookup (0 when
  /// unindexed) and lazy-eviction-heap compactions over the run.
  double cache_mean_probed_cells = 0.0;
  std::uint64_t cache_heap_compactions = 0;
  /// Per-SLO-class terminals (indexed by engine::QueryClass; with classes
  /// disabled the kStandard row carries everything).
  std::array<std::size_t, engine::kQueryClassCount> class_completed{};
  std::array<std::size_t, engine::kQueryClassCount> class_dropped{};
  std::array<double, engine::kQueryClassCount> class_violation_ratio{};
  std::array<double, engine::kQueryClassCount> class_mean_latency{};
  std::vector<engine::MetricsSink::TimelinePoint> timeline;
  std::vector<control::Controller::Snapshot> control_history;
};

ExperimentResult run_experiment(const CascadeEnvironment& env,
                                const RunConfig& cfg);

}  // namespace diffserve::core
