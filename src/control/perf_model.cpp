#include "control/perf_model.hpp"

#include "util/check.hpp"

namespace diffserve::control {

StagePerfModel::StagePerfModel(models::LatencyProfile profile,
                               const models::LatencyProfile* extra)
    : profile_(std::move(profile)) {
  if (extra != nullptr) {
    extra_ = *extra;
    has_extra_ = true;
  }
  batches_ = profile_.batch_sizes();
  DS_REQUIRE(!batches_.empty(), "stage needs at least one batch size");
}

double StagePerfModel::execution_latency(int batch) const {
  double e = profile_.execution_latency(batch);
  if (has_extra_) e += extra_.execution_latency(batch);
  return e;
}

double StagePerfModel::throughput(int batch) const {
  return static_cast<double>(batch) / execution_latency(batch);
}

double StagePerfModel::stage_latency(int batch) const {
  // Execution plus expected batch-fill wait under lazy batching (~half a
  // batch period).
  return 1.5 * execution_latency(batch);
}

}  // namespace diffserve::control
