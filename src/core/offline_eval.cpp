#include "core/offline_eval.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "stats/streaming.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace diffserve::core {

const char* to_string(RoutingSignal s) {
  switch (s) {
    case RoutingSignal::kDiscriminator: return "Discriminator";
    case RoutingSignal::kRandom: return "Random";
    case RoutingSignal::kPickScore: return "PickScore";
    case RoutingSignal::kClipScore: return "ClipScore";
    case RoutingSignal::kOracle: return "Oracle";
  }
  return "?";
}

namespace {

// Per-query routing scores: queries with the LOWEST score are deferred
// first (low score == low estimated quality of the light output).
std::vector<double> routing_scores(const CascadeEnvironment& env,
                                   RoutingSignal signal, std::size_t n) {
  const auto& w = env.workload();
  std::vector<double> s(n);
  for (quality::QueryId q = 0; q < n; ++q) {
    switch (signal) {
      case RoutingSignal::kDiscriminator:
        s[q] = env.disc().confidence(
            w.generated_feature(q, env.light_tier()));
        break;
      case RoutingSignal::kPickScore:
        s[q] = w.pickscore(q, env.light_tier());
        break;
      case RoutingSignal::kClipScore:
        s[q] = w.clipscore(q, env.light_tier());
        break;
      case RoutingSignal::kOracle:
        // Defer where heavy most improves on light: score = -(gap).
        s[q] = -(w.true_error(q, env.light_tier()) -
                 w.true_error(q, env.heavy_tier()));
        break;
      case RoutingSignal::kRandom:
        DS_CHECK(false, "random handled separately");
    }
  }
  return s;
}

double pipeline_latency(const CascadeEnvironment& env, double deferral) {
  const auto& repo = env.repository();
  const auto& c = env.cascade();
  const double e_l = repo.model(c.light_model).latency.execution_latency(1);
  const double e_d =
      repo.model(c.discriminator).latency.execution_latency(1);
  const double e_h = repo.model(c.heavy_model).latency.execution_latency(1);
  return e_l + e_d + deferral * e_h;
}

double served_fid(const CascadeEnvironment& env,
                  const std::vector<bool>& deferred, std::size_t n) {
  linalg::GaussianAccumulator acc(env.workload().config().feature_dim);
  for (quality::QueryId q = 0; q < n; ++q)
    acc.add(env.workload().generated_feature(
        q, deferred[q] ? env.heavy_tier() : env.light_tier()));
  return env.scorer().fid(acc.stats());
}

}  // namespace

std::vector<CascadePoint> sweep_cascade(const CascadeEnvironment& env,
                                        RoutingSignal signal,
                                        const SweepOptions& opts) {
  DS_REQUIRE(opts.points >= 2, "sweep needs at least two points");
  const std::size_t n = opts.eval_queries == 0
                            ? env.workload().size()
                            : std::min(opts.eval_queries,
                                       env.workload().size());

  std::vector<CascadePoint> out;
  out.reserve(opts.points);

  if (signal == RoutingSignal::kRandom) {
    util::Rng rng(opts.seed);
    for (std::size_t i = 0; i < opts.points; ++i) {
      const double p = static_cast<double>(i) /
                       static_cast<double>(opts.points - 1);
      stats::RunningStats fid_stats;
      double deferral_sum = 0.0;
      for (std::size_t rep = 0; rep < opts.random_repeats; ++rep) {
        std::vector<bool> deferred(n, false);
        std::size_t n_deferred = 0;
        for (std::size_t q = 0; q < n; ++q) {
          deferred[q] = rng.bernoulli(p);
          n_deferred += deferred[q] ? 1 : 0;
        }
        fid_stats.add(served_fid(env, deferred, n));
        deferral_sum += static_cast<double>(n_deferred) /
                        static_cast<double>(n);
      }
      const double actual =
          deferral_sum / static_cast<double>(opts.random_repeats);
      out.push_back({p, actual, fid_stats.mean(), pipeline_latency(env, actual),
                     fid_stats.stddev()});
    }
    return out;
  }

  // Signal-based: deferring the p-fraction with the lowest scores.
  const auto scores = routing_scores(env, signal, n);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] < scores[b];
  });

  for (std::size_t i = 0; i < opts.points; ++i) {
    const double p =
        static_cast<double>(i) / static_cast<double>(opts.points - 1);
    const auto k = static_cast<std::size_t>(
        std::llround(p * static_cast<double>(n)));
    std::vector<bool> deferred(n, false);
    for (std::size_t j = 0; j < k; ++j) deferred[order[j]] = true;
    const double actual = static_cast<double>(k) / static_cast<double>(n);
    out.push_back({p, actual, served_fid(env, deferred, n),
                   pipeline_latency(env, actual), 0.0});
  }
  return out;
}

std::vector<SingleModelPoint> single_model_points(
    const CascadeEnvironment& env,
    const std::vector<std::string>& model_names) {
  std::vector<SingleModelPoint> out;
  for (const auto& name : model_names) {
    const auto& m = env.repository().model(name);
    DS_REQUIRE(m.kind == models::ModelKind::kDiffusion,
               "single-model points need diffusion models");
    out.push_back({name, env.scorer().fid_single_tier(m.quality_tier),
                   m.latency.execution_latency(1)});
  }
  return out;
}

std::vector<std::size_t> pareto_front_min_min(
    const std::vector<std::pair<double, double>>& points) {
  std::vector<std::size_t> order(points.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (points[a].first != points[b].first)
      return points[a].first < points[b].first;
    return points[a].second < points[b].second;
  });
  std::vector<std::size_t> front;
  double best_y = std::numeric_limits<double>::infinity();
  for (const auto idx : order) {
    if (points[idx].second < best_y - 1e-12) {
      front.push_back(idx);
      best_y = points[idx].second;
    }
  }
  return front;
}

}  // namespace diffserve::core
