// Multi-layer perceptron binary classifier with softmax output.
//
// This is the trainable model behind every discriminator variant in the
// reproduction. Training minimizes softmax cross-entropy between the
// 'real' and 'fake' classes with Adam; inference returns the softmax
// probability of the 'real' class — the paper's "confidence score".
#pragma once

#include <cstddef>
#include <vector>

#include "nn/dense.hpp"
#include "util/mutex.hpp"
#include "util/rng.hpp"

namespace diffserve::nn {

struct TrainConfig {
  std::size_t epochs = 10;
  std::size_t batch_size = 32;
  AdamConfig adam;
  /// Gaussian noise added to inputs during training AND inference;
  /// models lower-capacity backbones that see a degraded view of the image.
  double input_noise = 0.0;
};

struct TrainReport {
  std::vector<double> epoch_losses;  ///< mean cross-entropy per epoch
  double final_train_accuracy = 0.0;
};

class MlpClassifier {
 public:
  /// `layer_dims` = {input, hidden..., 2}; final layer must have 2 outputs
  /// (real/fake). Hidden layers use ReLU.
  MlpClassifier(std::vector<std::size_t> layer_dims, std::uint64_t seed);

  /// Train on features `x` with labels `y` (1 = real, 0 = fake).
  TrainReport train(const std::vector<std::vector<double>>& x,
                    const std::vector<int>& y, const TrainConfig& cfg);

  /// Softmax probability of the 'real' class.
  double predict_real_probability(const std::vector<double>& x) const;

  /// Raw two-class logits (for tests).
  std::vector<double> logits(const std::vector<double>& x) const;

  std::size_t parameter_count() const;
  std::size_t input_dim() const;

 private:
  std::vector<double> forward(const std::vector<double>& x);
  // Inference via Dense::infer — no layer state is touched, so concurrent
  // callers that don't share a lock (shards sharing one discriminator) are
  // safe; only the input-noise RNG needs the guard.
  std::vector<double> forward_inference(const std::vector<double>& x) const;

  std::vector<Dense> layers_;
  // CopyableMutex keeps the classifier copyable (Discriminator takes it
  // by value); the PR-7 race fix hinges on every RNG draw in the const
  // inference path holding this lock, which the guarded_by now enforces
  // at compile time.
  mutable util::CopyableMutex rng_mutex_;
  mutable util::Rng rng_ DS_GUARDED_BY(rng_mutex_);
  double input_noise_ = 0.0;
};

/// Numerically stable softmax.
std::vector<double> softmax(const std::vector<double>& logits);

}  // namespace diffserve::nn
