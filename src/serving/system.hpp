// Discrete-event execution backend.
//
// This module is the DES side of the engine/backend split: a
// SimulationBackend that maps the ExecutionBackend interface onto the
// event queue of sim::Simulation, plus the ServingSystem facade that
// assembles a CascadeEngine over it and schedules trace arrivals. All
// serving *policy* (routing, deferral, batching, reconfiguration,
// metrics) lives in src/engine/; this file only supplies the substrate.
#pragma once

#include <functional>
#include <vector>

#include "discriminator/discriminator.hpp"
#include "engine/engine.hpp"
#include "models/model_repository.hpp"
#include "quality/fid.hpp"
#include "quality/workload.hpp"
#include "sim/simulation.hpp"

namespace diffserve::serving {

// Shared policy types, re-exported for the DES-facing API.
using engine::AllocationPlan;
using engine::Query;
using engine::QueryClass;
using engine::RoutingMode;
using SystemConfig = engine::EngineConfig;

/// ExecutionBackend over the discrete-event simulator. Single-threaded:
/// the guard is an empty lock, defer/execute are event-queue entries.
class SimulationBackend final : public engine::ExecutionBackend {
 public:
  explicit SimulationBackend(sim::Simulation& sim) : sim_(sim) {}

  double now() const override { return sim_.now(); }
  engine::TimerHandle defer(double delay_seconds,
                            std::function<void()> fn) override {
    const auto h = sim_.schedule_in(std::max(delay_seconds, 0.0),
                                    std::move(fn));
    return {h.id};
  }
  bool cancel(engine::TimerHandle h) override { return sim_.cancel({h.id}); }
  void execute(int /*worker_id*/, double exec_seconds,
               std::function<void()> done) override {
    sim_.schedule_in(exec_seconds, std::move(done));
  }
  std::unique_lock<std::mutex> guard() override { return {}; }

 private:
  sim::Simulation& sim_;
};

/// End-to-end DES serving assembly: one CascadeEngine on a
/// SimulationBackend. The controller (src/control) reconfigures it through
/// the engine; baselines reuse the same machinery with different plans and
/// routing modes.
class ServingSystem {
 public:
  /// Per-boundary discriminators (discs[b] gates stage b -> b+1).
  ServingSystem(sim::Simulation& sim, const quality::Workload& workload,
                const models::ModelRepository& repo,
                const models::CascadeSpec& cascade,
                std::vector<const discriminator::Discriminator*> discs,
                const quality::FidScorer& scorer, SystemConfig cfg);
  /// Two-stage-era convenience: one discriminator for every boundary.
  ServingSystem(sim::Simulation& sim, const quality::Workload& workload,
                const models::ModelRepository& repo,
                const models::CascadeSpec& cascade,
                const discriminator::Discriminator* disc,
                const quality::FidScorer& scorer, SystemConfig cfg);

  engine::CascadeEngine& engine() { return engine_; }
  const engine::CascadeEngine& engine() const { return engine_; }

  /// Reconfigure the cluster; evicted queries are re-routed automatically.
  void apply(const AllocationPlan& plan) { engine_.apply(plan); }
  AllocationPlan plan() const { return engine_.plan(); }

  /// Schedule query submissions at the given arrival times. Prompts cycle
  /// through the workload deterministically.
  void inject_arrivals(const std::vector<double>& times);

  engine::MetricsSink& sink() { return engine_.sink(); }
  const engine::MetricsSink& sink() const { return engine_.sink(); }
  const SystemConfig& config() const { return engine_.config(); }

  double stage_exec_latency(std::size_t s, int batch) const {
    return engine_.stage_exec_latency(s, batch);
  }
  double light_exec_latency(int batch) const {
    return engine_.light_exec_latency(batch);
  }
  double heavy_exec_latency(int batch) const {
    return engine_.heavy_exec_latency(batch);
  }
  std::size_t stage_count() const { return engine_.stage_count(); }
  int light_tier() const { return engine_.light_tier(); }
  int heavy_tier() const { return engine_.heavy_tier(); }
  const models::CascadeSpec& cascade() const { return engine_.cascade(); }
  std::size_t worker_count() const { return engine_.worker_count(); }

 private:
  sim::Simulation& sim_;
  SimulationBackend backend_;
  engine::CascadeEngine engine_;
};

}  // namespace diffserve::serving
