// Discriminator training and inference for model cascading (§3.2).
//
// "The discriminator is trained on a binary classification task to
// distinguish between high-quality, real-world images (labeled 'real') and
// generated images (labeled 'fake'). ... During inference, the
// discriminator receives the image produced by the lightweight model and
// outputs a softmax value between 0 and 1 ... referred to as the
// confidence score."
//
// Four backbone/training variants reproduce the §4.4 ablation:
//   * EfficientNet-V2 w/ ground truth  (the paper's choice)
//   * ViT-B16 w/ ground truth
//   * ResNet-34 w/ ground truth
//   * EfficientNet-V2 w/ heavy-model outputs as the 'real' class
// Backbones differ in capacity and in how degraded a view of the image
// they see (input noise), mirroring their relative accuracy in the paper.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/mlp.hpp"
#include "quality/workload.hpp"

namespace diffserve::discriminator {

enum class Backbone { kEfficientNet, kViT, kResNet };

enum class RealSource {
  kGroundTruth,  ///< real photos are the 'real' class (paper's choice)
  kHeavyModel,   ///< heavy-model outputs are the 'real' class (ablation)
};

struct DiscriminatorConfig {
  Backbone backbone = Backbone::kEfficientNet;
  RealSource real_source = RealSource::kGroundTruth;
  /// Queries sampled from the workload for training.
  std::size_t train_queries = 1500;
  std::size_t epochs = 5;
  std::uint64_t seed = 7;
  /// Softmax temperature applied at inference. Raw cross-entropy training
  /// saturates the confidence near {0, 1}; temperature scaling spreads the
  /// scores over (0, 1) so a threshold sweep is meaningful (standard
  /// confidence calibration; preserves the ranking and hence routing).
  double temperature = 6.0;
};

/// A trained discriminator: maps an image feature vector to the confidence
/// that it is 'real' (i.e., of high quality).
class Discriminator {
 public:
  Discriminator(nn::MlpClassifier model, std::string name,
                double inference_latency_seconds, double temperature = 1.0);

  /// Temperature-scaled softmax probability of the 'real' class.
  double confidence(const std::vector<double>& image_feature) const;

  const std::string& name() const { return name_; }
  /// Single-image inference latency (10/2/5 ms per §4.4).
  double inference_latency() const { return latency_; }
  std::size_t parameter_count() const { return model_.parameter_count(); }

 private:
  nn::MlpClassifier model_;
  std::string name_;
  double latency_;
  double temperature_;
};

/// Train a discriminator to cascade `light_tier` -> `heavy_tier` over the
/// given workload. Training follows Figure 3: real images (per
/// `real_source`) vs. generated images from both cascade members.
Discriminator train_discriminator(const quality::Workload& workload,
                                  int light_tier, int heavy_tier,
                                  const DiscriminatorConfig& cfg = {});

/// Human-readable variant label ("EfficientNet w GT" etc.).
std::string variant_name(const DiscriminatorConfig& cfg);

}  // namespace diffserve::discriminator
