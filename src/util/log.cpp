#include "util/log.hpp"

#include <atomic>
#include <iostream>

#include "util/mutex.hpp"

namespace diffserve::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
Mutex g_mutex;  // serialize lines from the threaded runtime

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, const std::string& component,
              const std::string& message) {
  if (level < g_level.load()) return;
  // The guarded resource is std::cerr (interleaving-free lines), which
  // the analysis cannot express as a member; the MutexLock still gives
  // the acquire/release points attributes so lock-order checks see it.
  MutexLock lock(g_mutex);
  std::cerr << "[" << level_name(level) << "] [" << component << "] "
            << message << "\n";
}

LogMessage::~LogMessage() { log_line(level_, component_, stream_.str()); }

}  // namespace diffserve::util
