#include "net/transport.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <thread>

#include "util/check.hpp"
#include "util/mutex.hpp"

namespace diffserve::net {

namespace {

// ---- loopback ----------------------------------------------------------------

/// Shared state of one loopback link. Side i's send() feeds side (1-i)'s
/// decoder and dispatches to its receiver.
struct LoopbackCore {
  struct Side {
    FrameDecoder decoder;
    std::function<void(Frame)> receiver;
  };
  Side sides[2];
  double hop_latency = 0.0;
  DeferFn defer;

  void deliver(int to, std::vector<std::uint8_t> bytes) {
    Side& s = sides[to];
    s.decoder.feed(bytes.data(), bytes.size());
    Frame f;
    while (s.decoder.next(&f) == FrameDecoder::Status::kFrame)
      if (s.receiver) s.receiver(std::move(f));
    DS_REQUIRE(!s.decoder.failed(), "loopback decode failed");
  }
};

class LoopbackEndpoint final : public Endpoint {
 public:
  LoopbackEndpoint(std::shared_ptr<LoopbackCore> core, int side)
      : core_(std::move(core)), side_(side) {}

  void send(const Frame& f) override {
    std::vector<std::uint8_t> bytes = net::encode(f);
    const int to = 1 - side_;
    if (core_->hop_latency > 0.0 && core_->defer) {
      auto core = core_;
      core_->defer(core_->hop_latency,
                   [core, to, bytes = std::move(bytes)]() mutable {
                     core->deliver(to, std::move(bytes));
                   });
    } else {
      core_->deliver(to, std::move(bytes));
    }
  }

  void set_receiver(std::function<void(Frame)> receiver) override {
    core_->sides[side_].receiver = std::move(receiver);
  }

 private:
  std::shared_ptr<LoopbackCore> core_;
  int side_;
};

// ---- socket ------------------------------------------------------------------

class SocketEndpoint final : public Endpoint {
 public:
  explicit SocketEndpoint(int fd) : fd_(fd) {}

  ~SocketEndpoint() override {
    stop();
    if (fd_ >= 0) ::close(fd_);
  }

  void send(const Frame& f) override {
    const std::vector<std::uint8_t> bytes = net::encode(f);
    // write_mu_ serializes whole frames onto the byte stream; a torn
    // interleaving would desynchronize the peer's framing forever.
    util::MutexLock lk(write_mu_);
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        // Peer gone mid-shutdown: frames past this point are lost, which
        // the drain protocol in the cluster runner tolerates.
        return;
      }
      off += static_cast<std::size_t>(n);
    }
  }

  void set_receiver(std::function<void(Frame)> receiver) override {
    DS_REQUIRE(!reader_.joinable(), "set_receiver after start");
    receiver_ = std::move(receiver);
  }

  void start() override {
    DS_REQUIRE(!reader_.joinable(), "endpoint already started");
    reader_ = std::thread([this] { reader_main(); });
  }

  void stop() override {
    if (!reader_.joinable()) return;
    ::shutdown(fd_, SHUT_RDWR);
    reader_.join();
  }

 private:
  void reader_main() {
    FrameDecoder decoder;
    std::uint8_t buf[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        return;
      }
      if (n == 0) return;  // peer closed
      decoder.feed(buf, static_cast<std::size_t>(n));
      Frame f;
      FrameDecoder::Status st;
      while ((st = decoder.next(&f)) == FrameDecoder::Status::kFrame)
        if (receiver_) receiver_(std::move(f));
      if (st == FrameDecoder::Status::kError) {
        std::fprintf(stderr, "net: socket decode error: %s\n",
                     decoder.error().c_str());
        return;
      }
    }
  }

  int fd_;
  /// Guards the write side of fd_ (reads happen only on the reader
  /// thread; fd_ itself is set once at construction).
  util::Mutex write_mu_;
  /// Installed before start() (enforced), then read only by the reader
  /// thread — the start() thread-join is the synchronization point.
  std::function<void(Frame)> receiver_;
  std::thread reader_;
};

}  // namespace

EndpointPair make_loopback_link(double hop_latency_seconds, DeferFn defer) {
  auto core = std::make_shared<LoopbackCore>();
  core->hop_latency = hop_latency_seconds;
  core->defer = std::move(defer);
  return {std::make_unique<LoopbackEndpoint>(core, 0),
          std::make_unique<LoopbackEndpoint>(core, 1)};
}

EndpointPair make_socketpair_link() {
  int fds[2] = {-1, -1};
  const int rc = ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds);
  DS_REQUIRE(rc == 0, "socketpair failed");
  return {std::make_unique<SocketEndpoint>(fds[0]),
          std::make_unique<SocketEndpoint>(fds[1])};
}

EndpointPair make_tcp_link() {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  DS_REQUIRE(listener >= 0, "socket failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  int rc = ::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr));
  DS_REQUIRE(rc == 0, "bind failed");
  rc = ::listen(listener, 1);
  DS_REQUIRE(rc == 0, "listen failed");
  socklen_t len = sizeof(addr);
  rc = ::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len);
  DS_REQUIRE(rc == 0, "getsockname failed");

  const int client = ::socket(AF_INET, SOCK_STREAM, 0);
  DS_REQUIRE(client >= 0, "socket failed");
  rc = ::connect(client, reinterpret_cast<const sockaddr*>(&addr),
                 sizeof(addr));
  DS_REQUIRE(rc == 0, "connect failed");
  const int server = ::accept(listener, nullptr, nullptr);
  DS_REQUIRE(server >= 0, "accept failed");
  ::close(listener);
  const int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  ::setsockopt(server, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return {std::make_unique<SocketEndpoint>(client),
          std::make_unique<SocketEndpoint>(server)};
}

}  // namespace diffserve::net
