// Sustained serving throughput on both execution backends — the serving
// hot path itself, with the control plane held fixed (a static plan) so
// admission, routing, batching, deferral, and completion dominate.
//
// Part 1 (DES): N queries through a static-plan cascade1 engine on the
//   discrete-event simulator; reports wall-clock queries/sec and raw
//   simulator events/sec (the limit on how big a fleet the DES can
//   evaluate).
// Part 2 (threaded): the same plan over the threaded wall-clock backend at
//   a high time compression, flooded with N queries so the dispatch
//   machinery (timer delivery, executor wakeups, the engine guard), not
//   the modelled GPU latency, is the limiter; reports sustained
//   queries/sec.
//
// Flags: --queries N (default 1e5), --smoke (enforce the CI floors and a
// reduced N), --record (keep per-query terminal records, the invariant-
// suite mode; default off here — the engine equivalence suites keep it on).
//
// The --smoke floors default to values sized for the reference dev box but
// are overridable per machine, CLI taking precedence over environment:
//   --floor-des-qps X        / DIFFSERVE_THROUGHPUT_FLOOR_DES_QPS
//   --floor-des-events X     / DIFFSERVE_THROUGHPUT_FLOOR_DES_EVENTS
//   --floor-threaded-qps X   / DIFFSERVE_THROUGHPUT_FLOOR_THREADED_QPS
// (slow CI runners lower them; perf-tracking rigs raise them).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "bench_common.hpp"
#include "engine/engine.hpp"
#include "runtime/threaded_runtime.hpp"
#include "serving/system.hpp"
#include "sim/simulation.hpp"
#include "trace/arrivals.hpp"
#include "util/trace_clock.hpp"

namespace {

using namespace diffserve;

struct WallTimer {
  std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  }
};

// Light-heavy split sized so the light pool runs ~80% loaded at the DES
// trace rate; heavy batches of 1 keep the downstream reserve inside the
// SLO, and the threshold pins deferral near the heavy pool's capacity.
engine::AllocationPlan static_plan(const core::CascadeEnvironment& env) {
  auto p = engine::AllocationPlan::for_stages(2);
  p.workers = {12, 4};
  p.batches = {8, 1};
  p.thresholds = {env.offline_profile().threshold_for_fraction(0.02)};
  return p;
}

struct DesStats {
  double qps = 0.0;
  double events_per_sec = 0.0;
  std::size_t completed = 0;
  std::size_t dropped = 0;
};

DesStats run_des(const core::CascadeEnvironment& env, std::size_t queries,
                 bool record) {
  sim::Simulation sim;
  serving::SystemConfig cfg;
  cfg.total_workers = 16;
  cfg.slo_seconds = 5.0;
  cfg.record_terminal_events = record;
  serving::ServingSystem system(sim, env.workload(), env.repository(),
                                env.cascade(), env.discs(), env.scorer(), cfg);
  system.apply(static_plan(env));

  const double rate = 100.0;
  const double duration = static_cast<double>(queries) / rate;
  const auto tr = trace::RateTrace::constant(rate, duration);
  util::Rng rng(7);
  auto arrivals = trace::generate_arrivals(tr, rng);
  if (arrivals.size() > queries) arrivals.resize(queries);
  system.inject_arrivals(arrivals);

  WallTimer t;
  sim.run_until(duration + cfg.slo_seconds + 20.0);
  sim.run_all();
  const double wall = t.seconds();

  DesStats s;
  s.qps = static_cast<double>(arrivals.size()) / wall;
  s.events_per_sec = static_cast<double>(sim.executed()) / wall;
  s.completed = system.sink().completed();
  s.dropped = system.sink().dropped();
  return s;
}

struct ThreadedStats {
  double qps = 0.0;
  std::size_t completed = 0;
  std::size_t dropped = 0;
};

ThreadedStats run_threaded_flood(const core::CascadeEnvironment& env,
                                 std::size_t queries, double time_scale,
                                 bool record) {
  util::TraceClock clock(time_scale);
  runtime::ThreadedBackend backend(clock, 16, /*pin_executors=*/true);
  engine::EngineConfig ecfg;
  ecfg.total_workers = 16;
  // Flood mode measures dispatch throughput, not deadline behaviour: a
  // far-away SLO keeps batch formation from shedding the backlog.
  ecfg.slo_seconds = 1e9;
  ecfg.record_terminal_events = record;
  engine::CascadeEngine eng(backend, env.workload(), env.repository(),
                            env.cascade(), env.discs(), env.scorer(), ecfg);
  backend.start();
  eng.apply(static_plan(env));

  WallTimer t;
  for (std::size_t i = 0; i < queries; ++i) eng.submit_next();
  for (;;) {
    {
      auto g = backend.guard();
      if (eng.sink().total() >= queries) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const double wall = t.seconds();
  backend.stop();

  ThreadedStats s;
  s.qps = static_cast<double>(queries) / wall;
  s.completed = eng.sink().completed();
  s.dropped = eng.sink().dropped();
  return s;
}

/// Smoke-floor resolution: CLI flag > environment variable > default.
double resolve_floor(double cli_value, const char* env_var,
                     double fallback) {
  if (cli_value > 0.0) return cli_value;
  if (const char* s = std::getenv(env_var)) {
    char* end = nullptr;
    const double v = std::strtod(s, &end);
    if (end != s && v > 0.0) return v;
    std::fprintf(stderr, "warning: ignoring unparseable %s='%s'\n", env_var,
                 s);
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool record = false;
  std::size_t queries = 100'000;
  double floor_des_qps_cli = 0.0;
  double floor_des_events_cli = 0.0;
  double floor_threaded_qps_cli = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--record") == 0) record = true;
    if (std::strcmp(argv[i], "--queries") == 0 && i + 1 < argc)
      queries = static_cast<std::size_t>(std::atoll(argv[++i]));
    if (std::strcmp(argv[i], "--floor-des-qps") == 0 && i + 1 < argc)
      floor_des_qps_cli = std::atof(argv[++i]);
    if (std::strcmp(argv[i], "--floor-des-events") == 0 && i + 1 < argc)
      floor_des_events_cli = std::atof(argv[++i]);
    if (std::strcmp(argv[i], "--floor-threaded-qps") == 0 && i + 1 < argc)
      floor_threaded_qps_cli = std::atof(argv[++i]);
  }
  if (smoke) queries = std::min<std::size_t>(queries, 50'000);
  const double floor_des_qps = resolve_floor(
      floor_des_qps_cli, "DIFFSERVE_THROUGHPUT_FLOOR_DES_QPS", 300'000.0);
  const double floor_des_events =
      resolve_floor(floor_des_events_cli,
                    "DIFFSERVE_THROUGHPUT_FLOOR_DES_EVENTS", 400'000.0);
  const double floor_threaded_qps =
      resolve_floor(floor_threaded_qps_cli,
                    "DIFFSERVE_THROUGHPUT_FLOOR_THREADED_QPS", 100'000.0);

  bench::banner("throughput", "sustained serving throughput, both backends");
  auto env = bench::make_env(1000);

  bench::ReportTable table("throughput",
                           {"backend", "qps", "events_per_sec", "completed",
                            "dropped"});

  const auto des = run_des(env, queries, record);
  table.row(std::vector<std::string>{
      "des", bench::ReportTable::fmt(des.qps),
      bench::ReportTable::fmt(des.events_per_sec),
      std::to_string(des.completed), std::to_string(des.dropped)});

  const auto thr = run_threaded_flood(env, queries, 10'000.0, record);
  table.row(std::vector<std::string>{
      "threaded", bench::ReportTable::fmt(thr.qps), "0",
      std::to_string(thr.completed), std::to_string(thr.dropped)});

  table.metric("des.queries", static_cast<double>(queries));

  if (smoke) {
    // Default floors sit ~7x under the measured dev-box rates (DES ~2.2e6
    // qps / ~3.2e6 events/s, threaded ~5.8e5 qps) but well above the
    // pre-ring baseline (~1.7e5 / ~2.3e5 / ~1.0e5): a regression that
    // undoes the hot-path work trips them even on a slow CI runner. See
    // the header comment for the per-machine overrides.
    bool ok = true;
    if (des.qps < floor_des_qps) {
      std::printf("[smoke] FAIL des qps %.0f < %.0f\n", des.qps,
                  floor_des_qps);
      ok = false;
    }
    if (des.events_per_sec < floor_des_events) {
      std::printf("[smoke] FAIL des events/sec %.0f < %.0f\n",
                  des.events_per_sec, floor_des_events);
      ok = false;
    }
    if (thr.qps < floor_threaded_qps) {
      std::printf("[smoke] FAIL threaded qps %.0f < %.0f\n", thr.qps,
                  floor_threaded_qps);
      ok = false;
    }
    if (!ok) return 1;
    std::printf("[smoke] throughput floors hold\n");
  }
  return 0;
}
