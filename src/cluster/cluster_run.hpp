// End-to-end sharded cluster runners — the cluster analogue of
// core::run_experiment (DES) and runtime::run_threaded (testbed).
//
// Both assemble the same topology: N engine shards behind a
// ShardFrontend, a ClusterController solving one global allocation per
// period, and wire links carrying every query, terminal, stats snapshot,
// and plan. The DES wires loopback links whose hop latency is modeled by
// the simulator's event queue (hop_latency_seconds per one-way frame),
// so fleet designs are testable at 10^6-query scale before a socket is
// involved; the threaded runner uses real socketpair (or TCP) transports
// with one reader thread per endpoint.
//
// This extends the paper's §4.3 DES-vs-testbed fidelity methodology to
// the cluster layer: the sharded parity test replays one trace through
// both runners and diffs FID / SLO-violation results, and a 1-shard DES
// cluster at zero hop latency is decision-identical to the bare engine.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "cache/approx_cache.hpp"
#include "cluster/shard_frontend.hpp"
#include "control/allocator.hpp"
#include "core/environment.hpp"
#include "trace/arrivals.hpp"
#include "trace/prompt_mix.hpp"
#include "trace/rate_trace.hpp"

namespace diffserve::cluster {

struct ClusterRunConfig {
  int shards = 3;
  int workers_per_shard = 4;
  /// Negative = cascade default.
  double slo_seconds = -1.0;
  /// One-way frame latency modeled by the DES loopback links (the
  /// threaded runner's sockets have real, unmodeled delivery latency).
  double hop_latency_seconds = 0.0;
  double control_period = 5.0;
  /// ClusterController stats-gather -> solve lag. Keep 0 for the DES
  /// (synchronous loopback makes snapshots fresh); give the threaded
  /// runner a small positive value so socket replies land first. When
  /// comparing backends, set both runs to the same value.
  double gather_delay_seconds = 0.0;
  double over_provision = 1.05;
  double max_deferral_fraction = 0.55;
  /// <= 0 derives the guess from the trace's initial rate.
  double initial_demand_guess = -1.0;
  double model_load_delay = 1.0;
  double drain_seconds = 20.0;
  std::uint64_t arrival_seed = 1;
  bool record_terminal_events = true;
  trace::ArrivalConfig arrivals;
  /// Per-shard engine cache (each shard caches its own prompt range —
  /// consistent-hash routing keeps recurrences on the caching shard).
  cache::CacheConfig cache;
  /// The frontend's prompt stream (cluster analogue of the engine knob).
  trace::PromptMixConfig prompt_mix;
  /// SLO classes, forwarded both to every shard engine (per-class queues,
  /// class-aware batching) and to the frontend (class draw + per-class
  /// deadline at admission).
  engine::SloClassConfig slo_classes;
  /// Frontend routing knobs (slo/prompt_mix/record_terminal_events are
  /// overwritten from the fields above).
  FrontendConfig frontend;

  // --- threaded runner only ----------------------------------------------
  double time_scale = 30.0;
  double launch_slack_wall_seconds = 0.004;
  /// false = AF_UNIX socketpair links, true = TCP over 127.0.0.1.
  bool tcp_transport = false;
};

struct ShardBreakdown {
  std::size_t submitted = 0;
  std::size_t reconfigurations = 0;
  double cache_exact_hit_ratio = 0.0;
};

struct ClusterResult {
  double overall_fid = 0.0;  ///< -1 when fewer than 2 completions
  double violation_ratio = 0.0;
  double mean_latency = 0.0;
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t dropped = 0;
  /// SLO-meeting completions per trace second.
  double goodput_qps = 0.0;
  std::size_t cluster_reconfigurations = 0;  ///< controller solves pushed
  /// Per-SLO-class terminals (indexed by engine::QueryClass; with classes
  /// disabled the kStandard row carries everything).
  std::array<std::size_t, engine::kQueryClassCount> class_completed{};
  std::array<std::size_t, engine::kQueryClassCount> class_dropped{};
  std::array<double, engine::kQueryClassCount> class_violation_ratio{};
  std::array<double, engine::kQueryClassCount> class_mean_latency{};
  std::vector<ShardBreakdown> shards;
};

/// Deterministic discrete-event run of the sharded topology.
ClusterResult run_cluster_des(const core::CascadeEnvironment& env,
                              control::Allocator& allocator,
                              const trace::RateTrace& trace,
                              const ClusterRunConfig& cfg);

/// Real threads + real sockets, wall-clocked via util::TraceClock.
ClusterResult run_cluster_threaded(const core::CascadeEnvironment& env,
                                   control::Allocator& allocator,
                                   const trace::RateTrace& trace,
                                   const ClusterRunConfig& cfg);

}  // namespace diffserve::cluster
