// Query arrival generation from a rate trace.
//
// Arrivals are drawn from a non-homogeneous Poisson process via Lewis
// thinning against the trace's peak rate; a deterministic evenly-spaced
// variant exists for tests, and an MMPP-style bursty variant stresses the
// queueing model.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/rate_trace.hpp"
#include "util/rng.hpp"

namespace diffserve::trace {

enum class ArrivalKind {
  kPoisson,        ///< non-homogeneous Poisson (default, matches paper)
  kDeterministic,  ///< evenly spaced at the instantaneous rate
  kBursty,         ///< Poisson modulated by an on/off burst factor
};

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::kPoisson;
  /// Burst multiplier applied while "on" in kBursty mode; the off phase is
  /// scaled down to keep the mean rate unchanged.
  double burstiness = 2.0;
  /// Mean on/off phase length in seconds for kBursty.
  double burst_phase_mean = 5.0;
};

/// Timestamps (seconds, ascending) of every query arrival over the trace.
std::vector<double> generate_arrivals(const RateTrace& trace, util::Rng& rng,
                                      const ArrivalConfig& cfg = {});

}  // namespace diffserve::trace
