// Tests for util/ring_buffer: FIFO equivalence of every ring against a
// std::deque reference model across randomized operation sequences (50
// seeds, all overflow policies), plus multi-threaded stress tests written
// to be run under TSan (the CI thread-sanitizer job includes this suite)
// so the lock-free protocols are raced, not just exercised.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/ring_buffer.hpp"
#include "util/rng.hpp"

namespace diffserve::util {
namespace {

TEST(CeilPow2, RoundsUp) {
  EXPECT_EQ(ceil_pow2(1), 1u);
  EXPECT_EQ(ceil_pow2(2), 2u);
  EXPECT_EQ(ceil_pow2(3), 4u);
  EXPECT_EQ(ceil_pow2(8), 8u);
  EXPECT_EQ(ceil_pow2(9), 16u);
  EXPECT_EQ(ceil_pow2(1000), 1024u);
}

// --- single-threaded FIFO equivalence vs a std::deque reference ------------

TEST(SpscRing, FifoEquivalenceAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed);
    const std::size_t cap = 1u << rng.uniform_int(1, 5);
    SpscRing<int> ring(cap);
    std::deque<int> model;
    int next = 0;
    for (int op = 0; op < 2000; ++op) {
      if (rng.bernoulli(0.55)) {
        const bool pushed = ring.try_push(next);
        // The model admits exactly when the ring has room.
        if (model.size() < ring.capacity()) {
          ASSERT_TRUE(pushed) << "seed " << seed;
          model.push_back(next);
        } else {
          ASSERT_FALSE(pushed) << "seed " << seed;
        }
        ++next;
      } else {
        int got = -1;
        const bool popped = ring.try_pop(got);
        ASSERT_EQ(popped, !model.empty()) << "seed " << seed;
        if (popped) {
          ASSERT_EQ(got, model.front()) << "seed " << seed;
          model.pop_front();
        }
      }
      ASSERT_EQ(ring.size_approx(), model.size()) << "seed " << seed;
    }
  }
}

TEST(MpscRing, FifoEquivalenceAllPoliciesAcrossSeeds) {
  const OverflowPolicy policies[] = {OverflowPolicy::kBlock,
                                     OverflowPolicy::kDropOldest,
                                     OverflowPolicy::kDropNewest};
  for (const auto policy : policies) {
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
      Rng rng(seed);
      const std::size_t cap = 1u << rng.uniform_int(1, 5);
      MpscRing<int> ring(cap, policy);
      std::deque<int> model;
      std::uint64_t model_dropped = 0;
      int next = 0;
      for (int op = 0; op < 2000; ++op) {
        if (rng.bernoulli(0.55)) {
          const bool full = model.size() >= ring.capacity();
          if (full && policy == OverflowPolicy::kBlock) {
            // A single-threaded blocking push on a full ring would spin
            // forever; the real producers of a kBlock ring always have a
            // live consumer. Skip, as the backend's usage does.
            continue;
          }
          const bool pushed = ring.push(next);
          if (!full) {
            ASSERT_TRUE(pushed);
            model.push_back(next);
          } else if (policy == OverflowPolicy::kDropOldest) {
            ASSERT_TRUE(pushed);
            model.pop_front();
            model.push_back(next);
            ++model_dropped;
          } else {  // kDropNewest
            ASSERT_FALSE(pushed);
            ++model_dropped;
          }
          ++next;
        } else {
          int got = -1;
          const bool popped = ring.try_pop(got);
          ASSERT_EQ(popped, !model.empty());
          if (popped) {
            ASSERT_EQ(got, model.front());
            model.pop_front();
          }
        }
      }
      EXPECT_EQ(ring.dropped(), model_dropped);
    }
  }
}

TEST(RingDeque, DequeEquivalenceAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed);
    RingDeque<int> rd(2);  // tiny initial capacity forces growth
    std::deque<int> model;
    int next = 0;
    for (int op = 0; op < 3000; ++op) {
      const double r = rng.uniform();
      if (r < 0.5) {
        rd.push_back(next);
        model.push_back(next);
        ++next;
      } else if (r < 0.9) {
        ASSERT_EQ(rd.empty(), model.empty());
        if (!model.empty()) {
          ASSERT_EQ(rd.front(), model.front());
          rd.pop_front();
          model.pop_front();
        }
      } else if (r < 0.97 && !model.empty()) {
        const std::size_t i = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(model.size()) - 1));
        ASSERT_EQ(rd[i], model[i]);
      } else if (r >= 0.97 && rng.bernoulli(0.1)) {
        rd.clear();
        model.clear();
      }
      ASSERT_EQ(rd.size(), model.size());
    }
  }
}

// --- threaded stress (run under TSan in CI) --------------------------------

TEST(SpscRing, SingleProducerSingleConsumerStress) {
  constexpr int kItems = 200'000;
  SpscRing<int> ring(64);
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i)
      while (!ring.try_push(i)) std::this_thread::yield();
  });
  int expected = 0;
  while (expected < kItems) {
    int got = -1;
    if (ring.try_pop(got)) {
      // Wait-free FIFO: values arrive exactly in push order.
      ASSERT_EQ(got, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

TEST(MpscRing, MultiProducerStressKeepsPerProducerOrder) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 50'000;
  MpscRing<std::uint64_t> ring(128, OverflowPolicy::kBlock);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&ring, p] {
      for (int i = 0; i < kPerProducer; ++i)
        ring.push((static_cast<std::uint64_t>(p) << 32) |
                  static_cast<std::uint64_t>(i));
    });

  std::vector<std::int64_t> last_seen(kProducers, -1);
  int received = 0;
  while (received < kProducers * kPerProducer) {
    std::uint64_t v = 0;
    if (!ring.try_pop(v)) {
      std::this_thread::yield();
      continue;
    }
    const auto p = static_cast<std::size_t>(v >> 32);
    const auto i = static_cast<std::int64_t>(v & 0xFFFFFFFFu);
    ASSERT_LT(p, static_cast<std::size_t>(kProducers));
    // Nothing lost, nothing reordered within one producer's stream.
    ASSERT_EQ(i, last_seen[p] + 1);
    last_seen[p] = i;
    ++received;
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(MpscRing, DropOldestUnderConcurrentPressureLosesOnlyOldest) {
  // One slow consumer, two fast producers on a tiny ring: kDropOldest must
  // keep accepting (push never returns false) and account every discard.
  constexpr int kPerProducer = 20'000;
  MpscRing<std::uint64_t> ring(16, OverflowPolicy::kDropOldest);
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> consumed{0};
  std::thread consumer([&] {
    std::uint64_t v;
    while (!done.load()) {
      if (ring.try_pop(v))
        consumed.fetch_add(1, std::memory_order_relaxed);
      else
        std::this_thread::yield();
    }
    while (ring.try_pop(v)) consumed.fetch_add(1, std::memory_order_relaxed);
  });
  std::thread p1([&] {
    for (int i = 0; i < kPerProducer; ++i) ASSERT_TRUE(ring.push(1));
  });
  std::thread p2([&] {
    for (int i = 0; i < kPerProducer; ++i) ASSERT_TRUE(ring.push(2));
  });
  p1.join();
  p2.join();
  done.store(true);
  consumer.join();
  EXPECT_EQ(consumed.load() + ring.dropped(),
            static_cast<std::uint64_t>(2 * kPerProducer));
}

// --- annotated locking layer (util::Mutex / MutexLock / CondVar) -----------
// The DS_* annotations prove lock discipline at compile time under clang,
// but only for code paths the analysis can see; this stress case races
// the shim itself so TSan (the CI tsan job includes this suite) verifies
// the wrappers actually serialize — a shim that annotated correctly but
// forwarded to the wrong std::mutex member would pass the clang gate and
// fail here.

struct GuardedCounter {
  util::Mutex mu;
  // Deliberately NOT atomic: every access must hold mu, which the
  // annotation enforces under clang and TSan enforces at runtime.
  std::int64_t value DS_GUARDED_BY(mu) = 0;
  util::CondVar cv;
  bool done DS_GUARDED_BY(mu) = false;
};

TEST(AnnotatedMutex, SerializesCrossThreadIncrements) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25'000;
  GuardedCounter c;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) {
        util::MutexLock lock(c.mu);
        ++c.value;
      }
    });
  for (auto& t : workers) t.join();
  util::MutexLock lock(c.mu);
  EXPECT_EQ(c.value, static_cast<std::int64_t>(kThreads) * kPerThread);
}

TEST(AnnotatedMutex, CondVarHandsOffGuardedState) {
  // Producer/consumer over the CondVar wait_for protocol used by the
  // threaded backend's parking loops: the consumer must observe every
  // increment-then-notify without missed wakeups or torn reads.
  constexpr int kRounds = 2'000;
  GuardedCounter c;
  std::thread producer([&c] {
    for (int i = 0; i < kRounds; ++i) {
      util::MutexLock lock(c.mu);
      ++c.value;
      c.cv.notify_one();
    }
    util::MutexLock lock(c.mu);
    c.done = true;
    c.cv.notify_one();
  });
  std::int64_t last = 0;
  {
    util::MutexLock lock(c.mu);
    while (!c.done) {
      c.cv.wait_for(c.mu, std::chrono::milliseconds(50));
      EXPECT_GE(c.value, last);  // monotone under the lock
      last = c.value;
    }
    EXPECT_EQ(c.value, kRounds);
  }
  producer.join();
}

TEST(AnnotatedMutex, CopyableMutexCopiesStartUnlocked) {
  // The discriminator's RNG guard is a CopyableMutex: copying the owner
  // while the source is mid-critical-section must yield an unlocked,
  // independent lock in the copy.
  struct RngOwner {
    util::CopyableMutex mu;
    int draws DS_GUARDED_BY(mu) = 0;
  };
  RngOwner a;
  util::MutexLock lock_a(a.mu);
  RngOwner b(a);  // copy while a.mu is held
  ++a.draws;
  {
    util::MutexLock lock_b(b.mu);  // must not deadlock on the copy
    ++b.draws;
    EXPECT_EQ(b.draws, 1);
  }
}

}  // namespace
}  // namespace diffserve::util
