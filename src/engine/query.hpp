// Query lifecycle types shared across the serving data path. These are
// backend-agnostic: the same Query travels through the discrete-event
// simulator and the threaded testbed.
#pragma once

#include <cstdint>
#include <vector>

#include "quality/workload.hpp"

namespace diffserve::engine {

/// Which cascade stage a query currently occupies.
enum class Stage { kLight, kHeavy };

/// One text-to-image request travelling through the system.
struct Query {
  std::uint64_t seq = 0;               ///< unique arrival sequence number
  quality::QueryId prompt_id = 0;      ///< index into the evaluation workload
  double arrival_time = 0.0;
  double deadline = 0.0;               ///< arrival_time + SLO

  Stage stage = Stage::kLight;
  /// Latest completion time for the *current stage* that still leaves room
  /// for any downstream stage (set by the engine on each hop).
  double stage_deadline = 0.0;

  /// Discriminator confidence of the light-model output (set after the
  /// light stage; -1 before).
  double confidence = -1.0;
  bool deferred = false;               ///< routed to the heavyweight model
};

/// Terminal record delivered to the sink.
struct Completion {
  Query query;
  double completion_time = 0.0;
  bool dropped = false;                ///< preemptively dropped, no image
  int served_tier = -1;                ///< quality tier that produced the image
  std::vector<double> image_feature;   ///< empty when dropped
};

}  // namespace diffserve::engine
