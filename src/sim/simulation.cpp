#include "sim/simulation.hpp"

#include <memory>

#include "util/check.hpp"

namespace diffserve::sim {

EventHandle Simulation::schedule_at(SimTime t, EventFn fn) {
  DS_REQUIRE(t >= now_, "cannot schedule in the past");
  DS_REQUIRE(fn != nullptr, "null event function");
  const std::uint64_t id = next_id_++;
  heap_.push(Entry{t, next_seq_++, id, std::move(fn)});
  return EventHandle{id};
}

EventHandle Simulation::schedule_in(SimTime delay, EventFn fn) {
  DS_REQUIRE(delay >= 0.0, "negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulation::cancel(EventHandle h) {
  if (!h.valid()) return false;
  // Lazy deletion: the id is blacklisted; pending occurrences are skipped
  // when they reach the top of the heap, and periodic series stop
  // rescheduling. Cancelling twice is a no-op. The periodic registry entry
  // is dropped eagerly — its heap trampoline may never fire again (the
  // cancelled id is skipped at the top of the heap), so waiting for
  // fire_periodic to erase it would leak the closure.
  periodic_.erase(h.id);
  return cancelled_.insert(h.id).second;
}

EventHandle Simulation::every(SimTime interval, EventFn fn) {
  DS_REQUIRE(interval > 0.0, "periodic interval must be positive");
  DS_REQUIRE(fn != nullptr, "null event function");
  const std::uint64_t id = next_id_++;
  // The series lives in the registry; every heap occurrence is a thin
  // trampoline by id, so one cancel() kills the series and nothing holds a
  // reference cycle onto its own closure.
  periodic_.emplace(id, Periodic{interval, std::move(fn)});
  heap_.push(Entry{now_ + interval, next_seq_++, id,
                   [this, id] { fire_periodic(id); }});
  return EventHandle{id};
}

void Simulation::fire_periodic(std::uint64_t id) {
  const auto it = periodic_.find(id);
  if (it == periodic_.end()) return;
  const SimTime interval = it->second.interval;
  // Copy before invoking: fn may register new series, rehashing the
  // registry out from under a reference.
  const EventFn fn = it->second.fn;
  fn();
  if (cancelled_.count(id)) {  // fn may cancel its own series
    periodic_.erase(id);
    return;
  }
  heap_.push(Entry{now_ + interval, next_seq_++, id,
                   [this, id] { fire_periodic(id); }});
}

void Simulation::drop_cancelled_top() {
  while (!heap_.empty() && cancelled_.count(heap_.top().id) > 0) {
    heap_.pop();
  }
}

void Simulation::run_until(SimTime until) {
  DS_REQUIRE(until >= now_, "run_until target in the past");
  for (;;) {
    drop_cancelled_top();
    if (heap_.empty() || heap_.top().time > until) break;
    Entry e = heap_.top();
    heap_.pop();
    now_ = e.time;
    ++executed_;
    e.fn();
  }
  now_ = until;
}

void Simulation::run_all(std::uint64_t max_events) {
  std::uint64_t n = 0;
  for (;;) {
    drop_cancelled_top();
    if (heap_.empty()) break;
    DS_CHECK(n < max_events, "run_all exceeded max_events — runaway schedule?");
    Entry e = heap_.top();
    heap_.pop();
    now_ = e.time;
    ++executed_;
    ++n;
    e.fn();
  }
}

bool Simulation::step() {
  drop_cancelled_top();
  if (heap_.empty()) return false;
  Entry e = heap_.top();
  heap_.pop();
  now_ = e.time;
  ++executed_;
  e.fn();
  return true;
}

std::size_t Simulation::pending() const {
  std::size_t dead = 0;
  // cancelled_ may contain ids that already fired; count only an upper
  // bound cheaply by clamping at heap size.
  dead = cancelled_.size() > heap_.size() ? heap_.size() : cancelled_.size();
  return heap_.size() - dead;
}

}  // namespace diffserve::sim
