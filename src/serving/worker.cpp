#include "serving/worker.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/log.hpp"

namespace diffserve::serving {

SimWorker::SimWorker(sim::Simulation& sim, int id, double model_load_delay)
    : sim_(sim), id_(id), load_delay_(model_load_delay) {
  DS_REQUIRE(model_load_delay >= 0.0, "negative load delay");
}

void SimWorker::set_callbacks(BatchCallback on_batch_done,
                              DropCallback on_drop) {
  on_batch_done_ = std::move(on_batch_done);
  on_drop_ = std::move(on_drop);
}

std::vector<Query> SimWorker::configure(const WorkerConfig& cfg) {
  DS_REQUIRE(cfg.batch_size >= 1, "batch size must be >= 1");
  DS_REQUIRE(cfg.profile.supports(cfg.batch_size),
             "batch size not in latency profile");
  const bool model_change =
      !configured_ || cfg.model_name != config_.model_name;
  config_ = cfg;
  configured_ = true;

  std::vector<Query> evicted;
  if (model_change) {
    // Queued work targeted the old model; hand it back for re-routing.
    evicted.reserve(queue_.size());
    for (auto& e : queue_) evicted.push_back(std::move(e.query));
    queue_.clear();
    if (timer_armed_) {
      sim_.cancel(timer_);
      timer_armed_ = false;
    }
    // Loading starts once any in-flight batch finishes; if idle, now.
    const double start = busy_ ? ready_at_ : sim_.now();
    ready_at_ = std::max(ready_at_, start + load_delay_);
    if (!busy_) {
      // Wake up when the load completes in case work arrives meanwhile.
      sim_.schedule_at(ready_at_, [this] { maybe_start_batch(); });
    }
  } else {
    // Same model: batch-size change applies immediately.
    maybe_start_batch();
  }
  return evicted;
}

void SimWorker::enqueue(Query q) {
  DS_REQUIRE(configured_, "enqueue on unconfigured worker");
  arrivals_.add(sim_.now());
  queue_.push_back({std::move(q), sim_.now()});
  maybe_start_batch();
}

double SimWorker::arrival_rate() const { return arrivals_.rate(sim_.now()); }

double SimWorker::utilization(double now) const {
  if (now <= 0.0) return 0.0;
  return busy_seconds_ / now;
}

void SimWorker::maybe_start_batch() {
  if (!configured_ || busy_ || queue_.empty()) return;
  if (sim_.now() < ready_at_) return;  // model still loading

  const int b = config_.batch_size;
  if (static_cast<int>(queue_.size()) >= b) {
    if (timer_armed_) {
      sim_.cancel(timer_);
      timer_armed_ = false;
    }
    start_batch();
    return;
  }

  // Under-filled: lazy batching, capped. Launch at the earlier of (a) the
  // latest time that still meets the tightest stage deadline and (b) one
  // execution period after the oldest enqueue.
  const double exec = config_.profile.execution_latency(b) +
                      (config_.has_extra
                           ? config_.extra_profile.execution_latency(b)
                           : 0.0);
  double tightest = queue_.front().query.stage_deadline;
  double oldest = queue_.front().at;
  for (const auto& e : queue_) {
    tightest = std::min(tightest, e.query.stage_deadline);
    oldest = std::min(oldest, e.at);
  }
  const double launch_at = std::min(tightest - exec, oldest + exec);

  if (launch_at <= sim_.now()) {
    if (timer_armed_) {
      sim_.cancel(timer_);
      timer_armed_ = false;
    }
    start_batch();
    return;
  }
  if (timer_armed_ && timer_at_ <= launch_at + 1e-12) return;  // already set
  if (timer_armed_) sim_.cancel(timer_);
  timer_at_ = launch_at;
  timer_armed_ = true;
  timer_ = sim_.schedule_at(launch_at, [this] {
    timer_armed_ = false;
    maybe_start_batch();
  });
}

void SimWorker::start_batch() {
  DS_CHECK(!busy_ && !queue_.empty(), "start_batch preconditions");
  const int b = config_.batch_size;
  const double exec = config_.profile.execution_latency(b) +
                      (config_.has_extra
                           ? config_.extra_profile.execution_latency(b)
                           : 0.0);
  const double done_at = sim_.now() + exec;

  // Fill the batch, preemptively dropping queries that cannot finish by
  // their stage deadline even if launched right now.
  std::vector<Query> batch;
  batch.reserve(static_cast<std::size_t>(b));
  while (!queue_.empty() && static_cast<int>(batch.size()) < b) {
    Query q = std::move(queue_.front().query);
    queue_.pop_front();
    if (done_at > q.stage_deadline) {
      ++dropped_;
      if (on_drop_) on_drop_(*this, std::move(q));
      continue;
    }
    batch.push_back(std::move(q));
  }
  if (batch.empty()) {
    // Everything at the head was overdue; try again with what remains.
    if (!queue_.empty()) maybe_start_batch();
    return;
  }

  busy_ = true;
  ready_at_ = std::max(ready_at_, done_at);
  busy_seconds_ += exec;
  ++batches_;
  processed_ += batch.size();

  sim_.schedule_at(done_at,
                   [this, batch = std::move(batch)]() mutable {
                     busy_ = false;
                     if (on_batch_done_) on_batch_done_(*this, std::move(batch));
                     maybe_start_batch();
                   });
}

}  // namespace diffserve::serving
