#include "quality/workload.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace diffserve::quality {

namespace {

// Mixes the workload seed, query id, tier, and a purpose tag into an
// independent RNG stream, so each (query, tier) pair's image is a pure
// function of the workload seed.
util::Rng stream(std::uint64_t seed, QueryId q, int tier, int purpose) {
  std::uint64_t h = seed;
  h ^= 0x9E3779B97F4A7C15ULL + (static_cast<std::uint64_t>(q) << 1);
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= static_cast<std::uint64_t>(tier + 1) * 0x94D049BB133111EBULL;
  h ^= static_cast<std::uint64_t>(purpose + 1) * 0xD6E8FEB86659FD93ULL;
  return util::Rng(h);
}

constexpr int kPurposeError = 1;
constexpr int kPurposeFeature = 2;
constexpr int kPurposePick = 3;
constexpr int kPurposeClip = 4;
constexpr int kPurposeReuse = 5;

}  // namespace

TierParams QualityConfig::tier_params(int tier) {
  // Tiers order generators by fidelity (1 = lightest). Light tiers: steep
  // difficulty dependence, artifact angles ~40-60 deg. Heavy tiers: flat
  // dependence, artifact angles ~205-215 deg (so light/heavy artifact
  // means partially cancel in a served mixture).
  switch (tier) {
    case 1:  return {1.10, 6.40, 0.62, 40.0, 0.60};   // SDXS
    case 2:  return {1.00, 5.60, 0.60, 50.0, 0.60};   // SD-Turbo
    case 3:  return {1.00, 4.40, 0.55, 60.0, 0.62};   // SDXL-Lightning
    case 4:  return {1.40, 2.80, 0.52, 120.0, 0.65};  // spare mid tier
    case 5:  return {2.20, 0.60, 0.50, 205.0, 0.85};  // SDv1.5
    case 6:  return {1.90, 0.50, 0.45, 215.0, 0.82};  // SDXL
    default:
      DS_REQUIRE(false, "unknown quality tier");
  }
  return {};
}

Workload::Workload(std::size_t n_queries, QualityConfig cfg)
    : cfg_(cfg) {
  DS_REQUIRE(n_queries >= 16, "workload too small for stable statistics");
  DS_REQUIRE(cfg_.feature_dim >= cfg_.style_dims + 2,
             "feature dim must leave room for the 2-dim artifact plane");
  util::Rng rng(cfg_.seed);

  difficulty_.resize(n_queries);
  style_.resize(n_queries);
  real_.resize(n_queries);
  linalg::GaussianAccumulator acc(cfg_.feature_dim);

  for (std::size_t i = 0; i < n_queries; ++i) {
    difficulty_[i] = rng.beta(cfg_.difficulty_a, cfg_.difficulty_b);
    auto& s = style_[i];
    s.resize(cfg_.style_dims);
    for (auto& v : s) v = rng.normal(0.0, cfg_.style_scale);

    auto& x = real_[i];
    x.assign(cfg_.feature_dim, 0.0);
    for (std::size_t d = 0; d < cfg_.style_dims; ++d) x[d] = s[d];
    for (std::size_t d = 0; d < cfg_.feature_dim; ++d)
      x[d] += rng.normal(0.0, cfg_.real_noise);
    acc.add(x);
  }
  reference_ = acc.stats();
}

double Workload::difficulty(QueryId q) const {
  DS_REQUIRE(q < size(), "query id out of range");
  return difficulty_[q];
}

const std::vector<double>& Workload::real_feature(QueryId q) const {
  DS_REQUIRE(q < size(), "query id out of range");
  return real_[q];
}

const std::vector<double>& Workload::style(QueryId q) const {
  DS_REQUIRE(q < size(), "query id out of range");
  return style_[q];
}

double Workload::true_error(QueryId q, int tier) const {
  DS_REQUIRE(q < size(), "query id out of range");
  const TierParams p = QualityConfig::tier_params(tier);
  auto rng = stream(cfg_.seed, q, tier, kPurposeError);
  const double raw =
      p.c0 + p.c1 * difficulty_[q] + p.sigma * rng.normal();
  return cfg_.magnitude * std::max(0.0, raw);
}

std::vector<double> Workload::generated_feature(QueryId q, int tier) const {
  DS_REQUIRE(q < size(), "query id out of range");
  const TierParams p = QualityConfig::tier_params(tier);
  const double eps = true_error(q, tier);
  auto rng = stream(cfg_.seed, q, tier, kPurposeFeature);

  std::vector<double> x(cfg_.feature_dim, 0.0);
  // Prompt content is shared with the real image.
  for (std::size_t d = 0; d < cfg_.style_dims; ++d) x[d] = style_[q][d];
  // Artifact shift in the 2-dim artifact plane right after the style dims,
  // with a per-query rotation (artifacts are not perfectly stereotyped).
  const double jitter =
      rng.uniform(-cfg_.angle_jitter_deg, cfg_.angle_jitter_deg);
  const double theta = (p.angle_deg + jitter) * M_PI / 180.0;
  x[cfg_.style_dims] += eps * std::cos(theta);
  x[cfg_.style_dims + 1] += eps * std::sin(theta);
  // Generation noise: wider than real photos (tier-specific floor), plus
  // dispersion proportional to the error magnitude.
  for (std::size_t d = 0; d < cfg_.feature_dim; ++d)
    x[d] += rng.normal(0.0, p.noise_floor);
  const auto dir = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(cfg_.feature_dim) - 1));
  x[dir] += rng.normal(0.0, cfg_.eps_jitter * eps);
  return x;
}

std::vector<double> Workload::cached_feature(QueryId q, QueryId donor,
                                             int tier, double distance,
                                             double resume_depth) const {
  DS_REQUIRE(q < size(), "query id out of range");
  DS_REQUIRE(distance >= 0.0, "negative style distance");
  DS_REQUIRE(resume_depth >= 0.0 && resume_depth <= 1.0,
             "resume depth must be normalized to [0, 1]");
  auto x = generated_feature(donor, tier);
  // Mix the donor into the stream so (q, donor) pairs draw independent
  // reuse noise while staying a pure function of the workload seed.
  const std::uint64_t mixed =
      cfg_.seed ^ (static_cast<std::uint64_t>(donor) * 0xA24BAED4963EE407ULL);
  auto rng = stream(mixed, q, tier, kPurposeReuse);
  const double sigma =
      (cfg_.reuse_noise + cfg_.reuse_depth_noise * resume_depth) * distance;
  if (sigma > 0.0)
    for (auto& v : x) v += rng.normal(0.0, sigma);
  return x;
}

double Workload::pickscore(QueryId q, int tier) const {
  DS_REQUIRE(q < size(), "query id out of range");
  // Dominated by a prompt-style bias that grows with prompt elaborateness
  // (difficulty); the true-quality term is comparatively weak. Absolute
  // PickScores are therefore incomparable across prompts (§2.1), and
  // thresholding on them routes *hard* prompts to the light model.
  auto rng = stream(cfg_.seed, q, tier, kPurposePick);
  const double style_bias = 1.0 * style_[q][0] + 1.9 * difficulty_[q];
  const double quality = -0.10 * true_error(q, tier);
  return 18.0 + style_bias + quality + rng.normal(0.0, 0.45);
}

double Workload::clipscore(QueryId q, int tier) const {
  DS_REQUIRE(q < size(), "query id out of range");
  // Text-image alignment: driven by prompt content, nearly insensitive to
  // perceptual quality, and mildly *rewarding* vivid artifact-heavy
  // generations (documented CLIP failure mode) — so higher CLIPScore
  // weakly anti-correlates with true quality.
  auto rng = stream(cfg_.seed, q, tier, kPurposeClip);
  const double alignment = 0.02 * style_[q][1 % cfg_.style_dims];
  const double artifact_vividness = 0.012 * true_error(q, tier);
  return 0.31 + alignment + artifact_vividness + rng.normal(0.0, 0.015);
}

}  // namespace diffserve::quality
