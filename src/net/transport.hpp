// Transport seam under the cluster layer: a duplex, ordered, reliable
// frame link between a shard frontend and one shard.
//
// Two implementations mirror the repo's two execution substrates:
//
//   * Loopback — in-process endpoint pair. Every send still runs the
//     full encode -> FrameDecoder -> dispatch path, so the codec is
//     exercised on every message. Delivery is synchronous when the
//     configured hop latency is zero (an endpoint's receiver runs inside
//     the peer's send()), or deferred through a caller-supplied
//     scheduler otherwise — bind it to sim::Simulation::schedule_in and
//     the DES models shard-hop latency deterministically. Loopback
//     endpoints are not thread-safe; the owner (a single-threaded DES or
//     a test) serializes all sends.
//
//   * Socket — a real byte stream (AF_UNIX socketpair, or a TCP pair
//     over 127.0.0.1) with one reader thread per endpoint feeding its
//     decoder and invoking the receiver from that thread. send() is
//     thread-safe (write mutex) and blocking; receivers take their own
//     locks. This is what the threaded cluster runtime uses.
//
// Lifecycle: set_receiver() before start(); stop() joins the reader (if
// any) and is idempotent. A decode error on a socket link poisons that
// direction — the reader logs the reason to stderr and stops; ordered
// framing is unrecoverable once misaligned.
#pragma once

#include <functional>
#include <memory>
#include <utility>

#include "net/frame.hpp"

namespace diffserve::net {

class Endpoint {
 public:
  virtual ~Endpoint() = default;
  /// Deliver one frame to the peer, in order.
  virtual void send(const Frame& f) = 0;
  /// Install the handler for incoming frames. May be invoked
  /// synchronously inside the peer's send() (loopback at zero hop
  /// latency) or from a dedicated reader thread (socket).
  virtual void set_receiver(std::function<void(Frame)> receiver) = 0;
  virtual void start() {}
  virtual void stop() {}
};

using EndpointPair = std::pair<std::unique_ptr<Endpoint>, std::unique_ptr<Endpoint>>;

/// Scheduler used by the loopback link to model hop latency:
/// fn(delay_seconds, callback). Bind to sim::Simulation::schedule_in.
using DeferFn = std::function<void(double, std::function<void()>)>;

/// In-process pair. hop_latency_seconds <= 0 (or no defer fn) delivers
/// synchronously; otherwise each frame's dispatch is scheduled
/// hop_latency_seconds after its send.
EndpointPair make_loopback_link(double hop_latency_seconds = 0.0,
                                DeferFn defer = nullptr);

/// Connected AF_UNIX SOCK_STREAM pair (socketpair(2)).
EndpointPair make_socketpair_link();

/// Connected TCP pair over 127.0.0.1 (ephemeral port). Exercises the
/// codec over a transport with real segmentation/coalescing.
EndpointPair make_tcp_link();

}  // namespace diffserve::net
