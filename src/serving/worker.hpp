// Simulated GPU worker: a FIFO queue plus a batch execution loop.
//
// "Each worker executes its hosted model variant to serve queries routed to
// it and kept in its local queue. ... The batch size, which model variant
// to host, and the confidence threshold for each worker are determined by
// the Controller" (§3.1).
//
// Batching is deadline-aware: a batch launches as soon as the queue holds a
// full batch, or — when under-filled — at the earlier of (a) the latest
// instant that still meets the tightest queued stage deadline and (b) one
// batch-execution period after the oldest enqueue (so light queries are not
// held to the edge of their deadline just to fill a batch). At batch start
// the worker preemptively drops queries that can no longer finish in time,
// which the paper counts as SLO violations.
//
// Reconfiguration (model swap) takes a load delay and waits for the
// in-flight batch; queued queries are handed back for re-routing.
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "models/latency_profile.hpp"
#include "serving/query.hpp"
#include "sim/simulation.hpp"
#include "stats/window.hpp"

namespace diffserve::serving {

struct WorkerConfig {
  std::string model_name;
  models::LatencyProfile profile;
  /// Added to every batch's execution time (discriminator pass on light
  /// workers), as a function of batch size.
  models::LatencyProfile extra_profile;  // optional; empty = none
  bool has_extra = false;
  int batch_size = 1;
  /// Quality tier of the hosted diffusion model (for image generation).
  int quality_tier = 0;
};

class SimWorker {
 public:
  using BatchCallback =
      std::function<void(SimWorker&, std::vector<Query>&&)>;
  using DropCallback = std::function<void(SimWorker&, Query&&)>;

  SimWorker(sim::Simulation& sim, int id, double model_load_delay = 1.0);

  int id() const { return id_; }
  const WorkerConfig& config() const { return config_; }
  bool configured() const { return configured_; }

  void set_callbacks(BatchCallback on_batch_done, DropCallback on_drop);

  /// Apply a new configuration. A change of hosted model incurs the load
  /// delay (after any in-flight batch). Returns queries evicted from the
  /// local queue; the caller (load balancer) must re-route them.
  std::vector<Query> configure(const WorkerConfig& cfg);

  void enqueue(Query q);

  std::size_t queue_length() const { return queue_.size(); }
  /// Arrival rate into this worker's queue over the stats window (QPS).
  double arrival_rate() const;
  bool busy() const { return busy_; }
  double utilization(double now) const;

  std::uint64_t batches_executed() const { return batches_; }
  std::uint64_t queries_processed() const { return processed_; }
  std::uint64_t queries_dropped() const { return dropped_; }

 private:
  void maybe_start_batch();
  void start_batch();
  void arm_timer(double at);

  sim::Simulation& sim_;
  int id_;
  double load_delay_;

  WorkerConfig config_;
  bool configured_ = false;
  bool busy_ = false;
  double ready_at_ = 0.0;  ///< model-load completion time

  struct Enqueued {
    Query query;
    double at;  ///< enqueue time (drives the batch-wait cap)
  };
  std::deque<Enqueued> queue_;
  sim::EventHandle timer_{};
  bool timer_armed_ = false;
  double timer_at_ = 0.0;

  BatchCallback on_batch_done_;
  DropCallback on_drop_;

  stats::SlidingWindowCounter arrivals_{20.0};
  std::uint64_t batches_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t dropped_ = 0;
  double busy_seconds_ = 0.0;
};

}  // namespace diffserve::serving
