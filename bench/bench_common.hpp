// Shared helpers for the figure-reproduction bench binaries: consistent
// stdout tables plus CSV output next to the binary so plots can be
// regenerated without re-running.
#pragma once

#include <cstdio>
#include <string>
#include <sys/stat.h>

#include "util/csv.hpp"

namespace diffserve::bench {

inline std::string results_dir() {
  const std::string dir = "bench_results";
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

inline std::string csv_path(const std::string& name) {
  return results_dir() + "/" + name + ".csv";
}

inline void banner(const char* figure, const char* caption) {
  std::printf("\n=== %s — %s ===\n", figure, caption);
}

}  // namespace diffserve::bench
