// Synthetic text-to-image workload and quality model.
//
// The paper evaluates on the first 5K prompts of MS-COCO / DiffusionDB,
// generating an image per prompt per model and scoring the served set with
// FID against the real images. We cannot run diffusion models here, so this
// module provides the closest synthetic equivalent that exercises the same
// code paths (see DESIGN.md §2):
//
//   * Every query q has a latent difficulty d_q ~ Beta(a, b).
//   * A "real image" for q is a feature vector  x = P s_q + n  where s_q is
//     the prompt's style/content vector and n is intrinsic photo noise.
//   * A generated image from model tier m deviates from the real one by an
//     error magnitude eps_m(q) = max(0, c0_m + c1_m d_q + sigma_m n_qm)
//     along a tier-specific artifact direction, plus extra generation noise.
//     Light tiers have steep c1 (their quality collapses on hard prompts);
//     heavy tiers have nearly flat c1, so their quality is stable — which
//     makes 20-40% of queries "easy" (light output at least as good).
//   * Light and heavy artifact directions point ~160 degrees apart, which
//     makes a served light/heavy *mixture* distribution sit closer to the
//     real one than pure-heavy does — reproducing the paper's observation
//     that FID can worsen as more queries go to the heavyweight model.
//
// The per-(query, tier) generation is a pure function of the workload seed,
// so every serving policy sees byte-identical images for the same query —
// FID differences between policies are real routing effects, never noise.
//
// PickScore / CLIPScore proxies intentionally reproduce the failure modes
// the paper reports (§2.2): PickScore's variance is dominated by a
// prompt-style bias that *increases* with prompt elaborateness
// (difficulty), and CLIPScore rewards vivid, artifact-heavy generations
// (a documented CLIP alignment failure), so thresholding on either routes
// no better — often worse — than random.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/gaussian.hpp"

namespace diffserve::quality {

using QueryId = std::uint32_t;

struct TierParams {
  double c0 = 1.0;      ///< error offset
  double c1 = 5.0;      ///< error growth with difficulty
  double sigma = 0.6;   ///< per-query error noise
  double angle_deg = 50.0;  ///< artifact direction in the artifact plane
  /// Isotropic generation-noise level of this tier (real images use
  /// QualityConfig::real_noise). Heavy models trade artifact magnitude for
  /// a wider texture distribution, which keeps their FID floor realistic.
  double noise_floor = 0.6;
};

struct QualityConfig {
  std::size_t feature_dim = 16;
  std::size_t style_dims = 6;  ///< leading dims carrying prompt content
  std::uint64_t seed = 42;
  double difficulty_a = 2.0;  ///< Beta(a, b) difficulty distribution
  double difficulty_b = 4.0;
  double style_scale = 1.0;
  double real_noise = 0.35;  ///< intrinsic spread of real images
  double eps_jitter = 0.30;  ///< dispersion along a random dir, scaled by eps
  /// Per-query rotation of the artifact direction (degrees, uniform +-):
  /// artifacts are not perfectly stereotyped, which bounds how well any
  /// discriminator can infer the error magnitude.
  double angle_jitter_deg = 20.0;
  /// Global multiplier on all eps constants; calibrates the FID range to
  /// the paper's 16-26 band.
  double magnitude = 1.5;
  /// Per-dimension noise added to a reused (cache-served) image, per unit
  /// of style distance between the requesting prompt and the donor: an
  /// approximate hit inherits the donor's image plus this distance-scaled
  /// reuse error, so FID sees the real cost of serving from the cache.
  double reuse_noise = 0.35;
  /// Additional reuse noise per unit distance *per unit resumed-stage
  /// depth* (0 = shallowest stage, 1 = deepest): resuming from a deeper
  /// donor latent leaves fewer steps to re-steer toward the requesting
  /// prompt, so more donor-specific detail survives. Contributes nothing
  /// when latent-level caching is off (depth is then always 0).
  double reuse_depth_noise = 0.25;

  /// Error-model parameters per quality tier (indices 1..6 used by the
  /// built-in catalog; see models::ModelRepository).
  static TierParams tier_params(int tier);
};

/// The evaluation prompt set ("first 5K text-image pairs"): real features
/// are cached; generated features are recomputed deterministically.
class Workload {
 public:
  Workload(std::size_t n_queries, QualityConfig cfg = {});

  std::size_t size() const { return difficulty_.size(); }
  const QualityConfig& config() const { return cfg_; }

  double difficulty(QueryId q) const;
  const std::vector<double>& real_feature(QueryId q) const;
  /// The prompt's style/content vector — the key an approximate
  /// prompt-reuse cache indexes by (two prompts are "similar" when their
  /// style vectors are close).
  const std::vector<double>& style(QueryId q) const;

  /// Feature vector of the image model tier `m` generates for query q.
  std::vector<double> generated_feature(QueryId q, int tier) const;
  /// Feature vector of the image served for query q by reusing `donor`'s
  /// tier-`tier` result: the donor's feature plus reuse noise scaled by
  /// the prompts' style `distance` and by the normalized chain depth the
  /// reuse resumed from (see QualityConfig::reuse_noise /
  /// reuse_depth_noise). Deterministic in (workload seed, q, donor, tier,
  /// distance, resume_depth); resume_depth = 0 reproduces the
  /// terminal-image-only noise model exactly.
  std::vector<double> cached_feature(QueryId q, QueryId donor, int tier,
                                     double distance,
                                     double resume_depth = 0.0) const;
  /// Latent error magnitude eps_m(q) — the ground-truth quality signal
  /// (never visible to the serving system; used by tests and oracles).
  double true_error(QueryId q, int tier) const;

  /// Proxy metric scores of the generated image (see header comment).
  double pickscore(QueryId q, int tier) const;
  double clipscore(QueryId q, int tier) const;

  /// Gaussian statistics of the real features over the full prompt set —
  /// the FID reference distribution.
  const linalg::GaussianStats& reference_stats() const { return reference_; }

 private:
  QualityConfig cfg_;
  std::vector<double> difficulty_;
  std::vector<std::vector<double>> style_;  // per-query style vectors
  std::vector<std::vector<double>> real_;
  linalg::GaussianStats reference_;
};

}  // namespace diffserve::quality
