#include "core/environment.hpp"

#include "util/check.hpp"
#include "util/log.hpp"

namespace diffserve::core {

CascadeEnvironment::CascadeEnvironment(EnvironmentConfig cfg)
    : cfg_(std::move(cfg)),
      repo_(models::ModelRepository::with_paper_catalog()),
      cascade_(repo_.cascade(cfg_.cascade)) {
  for (const auto& m : cascade_.chain)
    stage_tiers_.push_back(repo_.model(m).quality_tier);

  workload_ =
      std::make_unique<quality::Workload>(cfg_.workload_queries, cfg_.quality);
  scorer_ = std::make_unique<quality::FidScorer>(*workload_);

  // One discriminator + offline profile per boundary: boundary b learns to
  // tell stage b's generations from the quality its deferral target (stage
  // b+1) would deliver.
  for (std::size_t b = 0; b + 1 < stage_tiers_.size(); ++b) {
    const int from_tier = stage_tiers_[b];
    const int to_tier = stage_tiers_[b + 1];
    DS_LOG_INFO("env") << "training discriminator ("
                       << discriminator::variant_name(cfg_.discriminator)
                       << ") for " << cascade_.name << " boundary " << b
                       << " (tier " << from_tier << " -> " << to_tier << ")";
    discs_.push_back(std::make_unique<discriminator::Discriminator>(
        discriminator::train_discriminator(*workload_, from_tier, to_tier,
                                           cfg_.discriminator)));
    offline_profiles_.push_back(
        std::make_unique<discriminator::DeferralProfile>(
            discriminator::DeferralProfile::profile(
                *workload_, *discs_.back(), from_tier, cfg_.profile_queries)));
  }
}

std::vector<const discriminator::Discriminator*> CascadeEnvironment::discs()
    const {
  std::vector<const discriminator::Discriminator*> out;
  out.reserve(discs_.size());
  for (const auto& d : discs_) out.push_back(d.get());
  return out;
}

std::vector<discriminator::DeferralProfile>
CascadeEnvironment::offline_profiles() const {
  std::vector<discriminator::DeferralProfile> out;
  out.reserve(offline_profiles_.size());
  for (const auto& p : offline_profiles_) out.push_back(*p);
  return out;
}

}  // namespace diffserve::core
