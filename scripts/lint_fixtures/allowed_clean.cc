// Fixture: every rule's violation present but properly annotated with a
// justified `ds-lint: allow`. The linter must report nothing here —
// this is the regression test for the escape hatch (same-line and
// line-above placements both appear).
#include <chrono>
#include <cstdlib>
#include <map>
#include <unordered_map>

struct Worker;

double drain_watchdog() {
  // ds-lint: allow(wall-clock): watchdog timeout only, never feeds a decision
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

int jitter() {
  return std::rand();  // ds-lint: allow(ambient-random): fixture only, not linked
}

struct DebugRegistry {
  // ds-lint: allow(pointer-keyed-ordered): debug dump only, order never observed
  std::map<Worker*, int> inflight;
};

double debug_sum(const std::unordered_map<int, double>& by_worker) {
  double sum = 0.0;
  // ds-lint: allow(unordered-iteration): debug telemetry, order not observable
  // ds-lint: allow(float-accumulation-unordered): logged at 1 sig fig only
  for (const auto& entry : by_worker) sum += entry.second;
  return sum;
}
