#include "stats/ewma.hpp"

#include <cmath>

#include "util/check.hpp"

namespace diffserve::stats {

Ewma::Ewma(double alpha) : alpha_(alpha) {
  DS_REQUIRE(alpha > 0.0 && alpha <= 1.0, "EWMA alpha must be in (0,1]");
}

void Ewma::observe(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

void Ewma::reset() {
  value_ = 0.0;
  initialized_ = false;
}

HoltEwma::HoltEwma(double level_alpha, double trend_beta)
    : alpha_(level_alpha), beta_(trend_beta) {
  DS_REQUIRE(level_alpha > 0.0 && level_alpha <= 1.0,
             "level alpha must be in (0,1]");
  DS_REQUIRE(trend_beta > 0.0 && trend_beta <= 1.0,
             "trend beta must be in (0,1]");
}

void HoltEwma::observe(double x) {
  if (n_ == 0) {
    level_ = x;
    trend_ = 0.0;
  } else {
    const double prev_level = level_;
    level_ = alpha_ * x + (1.0 - alpha_) * (level_ + trend_);
    trend_ = beta_ * (level_ - prev_level) + (1.0 - beta_) * trend_;
  }
  ++n_;
}

void HoltEwma::reset() {
  level_ = 0.0;
  trend_ = 0.0;
  n_ = 0;
}

double HoltEwma::forecast(double h) const {
  const double f = level_ + h * trend_;
  return f > 0.0 ? f : 0.0;
}

TimeDecayedEwma::TimeDecayedEwma(double half_life_seconds)
    : half_life_(half_life_seconds) {
  DS_REQUIRE(half_life_seconds > 0.0, "half life must be positive");
}

void TimeDecayedEwma::observe(double time_seconds, double x) {
  if (!initialized_) {
    value_ = x;
    last_time_ = time_seconds;
    initialized_ = true;
    return;
  }
  DS_REQUIRE(time_seconds >= last_time_, "observations must move forward");
  const double dt = time_seconds - last_time_;
  const double decay = std::exp2(-dt / half_life_);
  value_ = decay * value_ + (1.0 - decay) * x;
  last_time_ = time_seconds;
}

double TimeDecayedEwma::value_at(double time_seconds) const {
  if (!initialized_) return 0.0;
  DS_REQUIRE(time_seconds >= last_time_, "query time before last observation");
  return value_;  // held value; decay applies on next observation
}

void TimeDecayedEwma::reset() {
  value_ = 0.0;
  last_time_ = 0.0;
  initialized_ = false;
}

}  // namespace diffserve::stats
