// Figure 11: the approximate prompt-reuse cache across capacity and
// prompt-popularity skew, plus the indexed-lookup microbenchmark.
//
// Part 1 sweeps cache capacity (0 = cache off) x Zipf exponent on a
// Zipfian prompt stream with temporal locality, at fixed demand and
// cluster size. Expected shape: hit ratio grows with both capacity and
// skew; mean latency and the SLO-violation ratio fall as the cache
// absorbs repeated prompts and the cache-aware controller re-provisions
// for the effective demand; FID pays a bounded reuse-noise cost that
// shrinks as capacity lets more queries hit exactly instead of
// approximately. The sweep extends to 10^5 entries, where kAuto switches
// the lookup to the LSH index (a production trace from millions of users
// wants a million-entry cache, which the O(N) scan cannot serve).
//
// Part 2 isolates the lookup path: two caches with identical contents at
// 10^5 entries, one scanning and one LSH-indexed, timed over the same
// probe stream. The smoke run asserts the index wins by >= 5x — the CI
// guard for the indexed-lookup speedup claim.
//
// Part 3 covers the maintenance path at large capacities:
//   3a — recall vs distance decile. A sparse cache (typical
//        nearest-neighbour beyond the hit radius) probed at planted
//        distances spanning (0, far_distance] in ten deciles, adaptive
//        multi-probe vs the legacy fixed ±1 probing, recall measured
//        against the exact scan. The smoke run asserts the far decile
//        keeps >= 0.9 of the near decile's recall under adaptive probing
//        (the fixed row documents the decay being fixed).
//   3b — insert-path throughput on a *full* cache, lazy-heap eviction vs
//        the O(N) reference scan at 10^4–10^6 entries (10^5 under
//        --smoke, with a >= 5x speedup floor), plus a victim-parity
//        check: both caches must hold byte-identical contents after the
//        churn.
//
//   --smoke   one small sweep combination + the large-capacity
//             microbenchmarks (CI: exercises the JSON emission, the two
//             speedup floors, and the far-edge recall floor)
#include <chrono>
#include <cmath>
#include <cstring>

#include "bench_common.hpp"
#include "cache/approx_cache.hpp"
#include "trace/prompt_mix.hpp"
#include "util/rng.hpp"

using namespace diffserve;

namespace {

/// Wall-clock seconds to run every key in `probes` through `c.lookup`.
double time_lookups(cache::ApproxCache& c,
                    const std::vector<std::vector<double>>& probes) {
  const auto start = std::chrono::steady_clock::now();
  double t = 0.0;
  for (const auto& k : probes) c.lookup(k, t += 1.0);
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

/// Fraction of `probes` whose lookup is any-level hit.
double hit_fraction(cache::ApproxCache& c,
                    const std::vector<std::vector<double>>& probes,
                    double& t) {
  std::size_t hits = 0;
  for (const auto& k : probes)
    if (c.lookup(k, t += 1.0).level != cache::HitLevel::kMiss) ++hits;
  return probes.empty() ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(probes.size());
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  const std::size_t workload = smoke ? 600 : 2000;
  const double duration = smoke ? 60.0 : 120.0;
  const std::vector<std::size_t> capacities =
      smoke ? std::vector<std::size_t>{128}
            : std::vector<std::size_t>{0, 64, 256, 1024, 100000};
  const std::vector<double> skews =
      smoke ? std::vector<double>{1.1} : std::vector<double>{0.7, 1.1, 1.4};

  const auto env = bench::make_env(workload);
  const auto tr = trace::RateTrace::constant(10.0, duration);

  bench::banner("Figure 11",
                "prompt-reuse cache: capacity x Zipf skew, 8 GPUs, SLO 5 s");
  bench::ReportTable table(
      "fig11_cache_reuse",
      {"config", "capacity", "zipf_s", "hit_ratio", "exact_ratio", "fid",
       "violation_ratio", "mean_latency", "light_pct"},
      {16, 10, 8, 11, 13, 8, 16, 14, 11});

  for (const double s : skews) {
    // The cache-off baseline is swept per skew too: the Zipfian stream
    // changes the served mix even without reuse.
    for (const std::size_t cap : capacities) {
      core::RunConfig rc;
      rc.approach = core::Approach::kDiffServe;
      rc.total_workers = 8;
      rc.slo_seconds = 5.0;
      rc.trace = tr;
      rc.system.prompt_mix.kind = trace::PromptMixConfig::Kind::kZipf;
      rc.system.prompt_mix.zipf_exponent = s;
      rc.system.prompt_mix.locality = 0.3;
      if (cap > 0) {
        rc.system.cache.enabled = true;
        rc.system.cache.capacity = cap;
        // Large capacities flip kAuto to the LSH index; the sweep also
        // exercises the latent levels + interpolated fractions the big
        // configs exist for.
        rc.system.cache.interpolate_step_fraction = true;
        rc.system.cache.latent_levels = true;
      }
      const auto r = run_experiment(env, rc);

      char label[32];
      std::snprintf(label, sizeof(label), "cap%zu_s%.1f", cap, s);
      table.row(std::vector<std::string>{
          label, std::to_string(cap), bench::ReportTable::fmt(s),
          bench::ReportTable::fmt(r.cache_hit_ratio),
          bench::ReportTable::fmt(r.cache_exact_hit_ratio),
          bench::ReportTable::fmt(r.overall_fid),
          bench::ReportTable::fmt(r.violation_ratio),
          bench::ReportTable::fmt(r.mean_latency),
          bench::ReportTable::fmt(100.0 * r.light_served_fraction)});
    }
  }

  // --- Part 2: indexed lookup vs the linear scan at 10^5 entries ----------
  bench::banner("Figure 11b",
                "ApproxCache lookup: LSH index vs linear scan, 1e5 entries");
  const std::size_t entries = 100000;
  const std::size_t n_probes = smoke ? 1000 : 4000;
  const std::size_t dim = 6;

  cache::CacheConfig scan_cfg;
  scan_cfg.enabled = true;
  scan_cfg.capacity = entries;
  scan_cfg.index_kind = cache::IndexKind::kScan;
  cache::CacheConfig lsh_cfg = scan_cfg;
  lsh_cfg.index_kind = cache::IndexKind::kLsh;
  cache::ApproxCache scan_cache(scan_cfg);
  cache::ApproxCache lsh_cache(lsh_cfg);

  util::Rng rng(7);
  std::vector<double> key(dim);
  double t = 0.0;
  std::vector<std::vector<double>> sample;  // donors the probe stream reuses
  for (std::size_t i = 0; i < entries; ++i) {
    for (auto& v : key) v = rng.normal();
    scan_cache.insert(static_cast<quality::QueryId>(i), 1, 0, key, t += 1.0);
    lsh_cache.insert(static_cast<quality::QueryId>(i), 1, 0, key, t);
    if (i % (entries / 64) == 0) sample.push_back(key);
  }
  // Probe stream: half near-duplicates of cached keys (the hit path),
  // half fresh vectors (the miss path).
  std::vector<std::vector<double>> probes;
  probes.reserve(n_probes);
  for (std::size_t i = 0; i < n_probes; ++i) {
    if (i % 2 == 0) {
      auto k = sample[i % sample.size()];
      for (auto& v : k) v += rng.normal(0.0, 0.05);
      probes.push_back(std::move(k));
    } else {
      for (auto& v : key) v = rng.normal();
      probes.push_back(key);
    }
  }

  const double scan_s = time_lookups(scan_cache, probes);
  const double lsh_s = time_lookups(lsh_cache, probes);
  const double scan_us = 1e6 * scan_s / static_cast<double>(n_probes);
  const double lsh_us = 1e6 * lsh_s / static_cast<double>(n_probes);
  const double speedup = lsh_s > 0.0 ? scan_s / lsh_s : 0.0;
  const double lsh_hit = lsh_cache.stats().hit_ratio();
  const double scan_hit = scan_cache.stats().hit_ratio();
  // Recall of the approximate index against the exact scan, on this
  // probe stream (hits over the scan's hits).
  const double recall = scan_hit > 0.0 ? lsh_hit / scan_hit : 1.0;

  std::printf("scan: %8.2f us/lookup   hit_ratio %.3f\n", scan_us, scan_hit);
  std::printf("lsh:  %8.2f us/lookup   hit_ratio %.3f   recall %.3f   "
              "probes/lookup %.1f\n",
              lsh_us, lsh_hit, recall,
              lsh_cache.stats().mean_probed_cells());
  std::printf("speedup: %.1fx at %zu entries\n", speedup, entries);
  table.metric("index.scan_us_per_lookup", scan_us);
  table.metric("index.lsh_us_per_lookup", lsh_us);
  table.metric("index.speedup_1e5", speedup);
  table.metric("index.recall_vs_scan", recall);
  table.metric("index.mean_probed_cells",
               lsh_cache.stats().mean_probed_cells());

  // --- Part 3a: recall vs distance decile, adaptive vs fixed probing ------
  // A *sparse* key population (spread wide enough that the typical
  // nearest neighbour sits beyond far_distance): each planted probe's
  // donor is usually the only in-radius entry, so per-decile recall
  // isolates how hit quality holds up across the radius — the regime
  // where the near-tuned fixed probing decayed toward zero.
  bench::banner("Figure 11c",
                "far-edge recall: adaptive multi-probe vs fixed, by decile");
  // Population size matches the full run even under --smoke: the gate
  // compares two recall ratios near a 0.9 floor, and a thinner cache
  // shaves the far-decile margin the CI gate lives on (the probe count
  // is the cheap knob, the population is not).
  const std::size_t recall_entries = 100000;
  const std::size_t per_decile = smoke ? 150 : 200;
  const double spread = 4.0;

  cache::CacheConfig rscan_cfg;
  rscan_cfg.enabled = true;
  rscan_cfg.capacity = recall_entries;
  rscan_cfg.index_kind = cache::IndexKind::kScan;
  cache::CacheConfig adaptive_cfg = rscan_cfg;
  adaptive_cfg.index_kind = cache::IndexKind::kLsh;  // adaptive default
  cache::CacheConfig fixed_cfg = adaptive_cfg;
  // Probing-mode ablation at current defaults: near-tuned cells with
  // fixed ±1-cell probing (PR-4's scheme; its defaults were 10
  // projections x 8 tables where today's are 12 x 10 — the decay shape
  // is the scheme's, not the counts').
  fixed_cfg.lsh_adaptive_probe = false;
  cache::ApproxCache rscan(rscan_cfg), adaptive(adaptive_cfg),
      fixed(fixed_cfg);

  util::Rng rrng(11);
  std::vector<std::vector<double>> rkeys(recall_entries,
                                         std::vector<double>(dim));
  double rt = 0.0;
  for (std::size_t i = 0; i < recall_entries; ++i) {
    for (auto& v : rkeys[i]) v = rrng.normal(0.0, spread);
    rscan.insert(static_cast<quality::QueryId>(i), 1, 0, rkeys[i], rt += 1.0);
    adaptive.insert(static_cast<quality::QueryId>(i), 1, 0, rkeys[i], rt);
    fixed.insert(static_cast<quality::QueryId>(i), 1, 0, rkeys[i], rt);
  }
  bench::ReportTable recall_table(
      "fig11_recall_deciles",
      {"decile", "distance", "scan_hit", "adaptive_recall", "fixed_recall"},
      {8, 10, 10, 17, 14});
  double near_recall = 1.0, far_recall = 1.0;
  for (int dec = 0; dec < 10; ++dec) {
    // Probes planted at the decile's midpoint distance from a random
    // cached donor, in a uniformly random direction.
    const double d =
        (dec + 0.5) / 10.0 * rscan_cfg.far_distance;
    std::vector<std::vector<double>> dprobes;
    dprobes.reserve(per_decile);
    for (std::size_t i = 0; i < per_decile; ++i) {
      const auto& donor =
          rkeys[static_cast<std::size_t>(rrng.uniform_int(
              0, static_cast<std::int64_t>(recall_entries) - 1))];
      std::vector<double> dir(dim);
      double norm_sq = 0.0;
      for (auto& v : dir) {
        v = rrng.normal();
        norm_sq += v * v;
      }
      auto p = donor;
      for (std::size_t j = 0; j < dim; ++j)
        p[j] += dir[j] * d / std::sqrt(norm_sq);
      dprobes.push_back(std::move(p));
    }
    const double scan_frac = hit_fraction(rscan, dprobes, rt);
    const double adaptive_frac = hit_fraction(adaptive, dprobes, rt);
    const double fixed_frac = hit_fraction(fixed, dprobes, rt);
    const double adaptive_recall =
        scan_frac > 0.0 ? adaptive_frac / scan_frac : 1.0;
    const double fixed_recall =
        scan_frac > 0.0 ? fixed_frac / scan_frac : 1.0;
    if (dec == 0) near_recall = adaptive_recall;
    if (dec == 9) far_recall = adaptive_recall;
    char label[16];
    std::snprintf(label, sizeof(label), "d%d", dec + 1);
    recall_table.row(std::vector<std::string>{
        label, bench::ReportTable::fmt(d),
        bench::ReportTable::fmt(scan_frac),
        bench::ReportTable::fmt(adaptive_recall),
        bench::ReportTable::fmt(fixed_recall)});
  }
  const double far_over_near =
      near_recall > 0.0 ? far_recall / near_recall : 0.0;
  std::printf("far/near recall: %.3f (adaptive), probes/lookup %.1f\n",
              far_over_near, adaptive.stats().mean_probed_cells());
  recall_table.metric("recall.near_decile_adaptive", near_recall);
  recall_table.metric("recall.far_decile_adaptive", far_recall);
  recall_table.metric("recall.far_over_near_adaptive", far_over_near);

  // --- Part 3b: insert path on a full cache, heap vs scan eviction --------
  bench::banner("Figure 11d",
                "full-cache insert path: lazy-heap vs scan eviction");
  const std::vector<std::size_t> evict_caps =
      smoke ? std::vector<std::size_t>{100000}
            : std::vector<std::size_t>{10000, 100000, 1000000};
  const std::size_t churn = smoke ? 400 : 2000;
  bench::ReportTable evict_table(
      "fig11_insert_path",
      {"capacity", "scan_us_per_insert", "heap_us_per_insert", "speedup",
       "heap_compactions"},
      {10, 20, 20, 10, 18});
  double insert_speedup_1e5 = 0.0;
  bool victims_agree = true;
  for (const std::size_t cap : evict_caps) {
    cache::CacheConfig heap_cfg;
    heap_cfg.enabled = true;
    heap_cfg.capacity = cap;  // kAuto: LSH-indexed at these capacities
    cache::CacheConfig scan_evict_cfg = heap_cfg;
    scan_evict_cfg.eviction_kind = cache::EvictionKind::kScan;
    cache::ApproxCache heap_cache(heap_cfg), scan_evict(scan_evict_cfg);

    util::Rng erng(23);
    std::vector<double> ekey(dim);
    double et = 0.0;
    for (std::size_t i = 0; i < cap; ++i) {
      for (auto& v : ekey) v = erng.normal();
      heap_cache.insert(static_cast<quality::QueryId>(i), 1, 0, ekey,
                        et += 1.0);
      scan_evict.insert(static_cast<quality::QueryId>(i), 1, 0, ekey, et);
    }
    // The timed phase: every insert displaces a victim from the full
    // cache — the regime where the scan pays O(N) per insert.
    std::vector<std::vector<double>> fresh(churn, std::vector<double>(dim));
    for (auto& k : fresh)
      for (auto& v : k) v = erng.normal();
    auto time_inserts = [&](cache::ApproxCache& c) {
      const auto start = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < churn; ++i)
        c.insert(static_cast<quality::QueryId>(cap + i + 1000000000ull), 1, 0,
                 fresh[i], et + static_cast<double>(i));
      const auto stop = std::chrono::steady_clock::now();
      return std::chrono::duration<double>(stop - start).count();
    };
    const double scan_evict_s = time_inserts(scan_evict);
    const double heap_s = time_inserts(heap_cache);
    const double evict_speedup =
        heap_s > 0.0 ? scan_evict_s / heap_s : 0.0;
    if (cap == 100000) insert_speedup_1e5 = evict_speedup;
    // Victim parity: identical contents after the churn pins the victim
    // sequence byte-for-byte (the property test covers it op-for-op).
    victims_agree =
        victims_agree &&
        heap_cache.cached_prompts() == scan_evict.cached_prompts();
    evict_table.row(std::vector<std::string>{
        std::to_string(cap),
        bench::ReportTable::fmt(1e6 * scan_evict_s /
                                static_cast<double>(churn)),
        bench::ReportTable::fmt(1e6 * heap_s / static_cast<double>(churn)),
        bench::ReportTable::fmt(evict_speedup),
        std::to_string(heap_cache.stats().heap_compactions)});
  }
  evict_table.metric("insert.speedup_1e5", insert_speedup_1e5);
  evict_table.metric("insert.victims_agree", victims_agree ? 1.0 : 0.0);

  if (!victims_agree) {
    std::fprintf(stderr,
                 "FAIL: heap and scan eviction disagree on victims\n");
    return 1;
  }
  if (smoke && speedup < 5.0) {
    std::fprintf(stderr,
                 "FAIL: LSH index speedup %.2fx < 5x at %zu entries\n",
                 speedup, entries);
    return 1;
  }
  if (smoke && insert_speedup_1e5 < 5.0) {
    std::fprintf(stderr,
                 "FAIL: heap-eviction insert speedup %.2fx < 5x at 1e5\n",
                 insert_speedup_1e5);
    return 1;
  }
  if (smoke && far_over_near < 0.9) {
    std::fprintf(stderr,
                 "FAIL: far-decile recall %.3f of near-decile < 0.9\n",
                 far_over_near);
    return 1;
  }
  return 0;
}
