// CSV emission for experiment results.
//
// Every bench binary writes its series both to stdout (the rows the paper
// plots) and to a CSV file so plots can be regenerated without re-running.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace diffserve::util {

/// Row-oriented CSV writer. Columns are fixed at construction; rows are
/// appended with exactly that many cells. Numeric cells are formatted with
/// enough precision to round-trip.
class CsvWriter {
 public:
  CsvWriter(const std::string& path, std::vector<std::string> columns);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void add_row(const std::vector<std::string>& cells);
  void add_row(const std::vector<double>& cells);

  const std::string& path() const { return path_; }
  std::size_t rows_written() const { return rows_; }

  /// Format a double compactly but losslessly.
  static std::string format(double v);

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t n_columns_;
  std::size_t rows_ = 0;
};

}  // namespace diffserve::util
