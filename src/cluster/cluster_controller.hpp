// ClusterController — one global §3.3 allocation above N shards.
//
// Each control period it polls every shard for a stats snapshot over the
// wire (shard/stats_request -> shard/stats), folds the snapshots into a
// single AllocationInput — demand and per-stage queue/arrival statistics
// summed, violation ratios averaged, additive CacheStats counters summed
// before differencing — runs the same estimation pipeline as
// control::Controller (Holt demand forecast, per-hit-level cache EWMAs,
// online deferral profiles fed by every shard's confidence stream), asks
// the allocator for ONE cluster-wide decision over N x W workers, splits
// it into per-shard plans (split_plan below), and pushes each as a
// cluster/plan frame.
//
// Two-phase tick: stats requests go out at the tick instant; the solve
// runs `gather_delay_seconds` later on whatever snapshots have arrived.
// Zero delay solves inline, which over a synchronous loopback transport
// sees snapshots taken at the tick instant itself — that is what makes a
// 1-shard loopback cluster decision-identical to a bare Controller. The
// threaded socket path sets a small positive delay so in-flight replies
// land before the solve.
//
// split_plan: per-stage largest-remainder apportionment of the global
// worker counts by shard demand share (equal shares when total demand is
// zero), capped by each shard's worker budget; batch sizes, thresholds,
// routing mode, and p_heavy replicate to every shard. Deterministic
// (ties break on shard index); for N = 1 it is the identity, completing
// the equivalence contract.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/shard_frontend.hpp"
#include "control/allocator.hpp"
#include "control/controller.hpp"
#include "discriminator/deferral_profile.hpp"
#include "engine/engine.hpp"
#include "stats/ewma.hpp"
#include "util/mutex.hpp"

namespace diffserve::cluster {

struct ClusterControllerConfig {
  /// The single-engine controller knobs (period, EWMAs, grids, cache
  /// awareness) apply unchanged at cluster scope.
  control::ControllerConfig control;
  /// Lag between polling shard stats and solving on them. 0 = inline.
  double gather_delay_seconds = 0.0;
};

class ClusterController {
 public:
  /// `reference` supplies the chain shape and the §3.3 per-stage latency
  /// math (shards are homogeneous replicas, so any shard's engine serves;
  /// only guarded const reads are made). Ticks are scheduled on that
  /// engine's backend. Construct after every shard is attached.
  ClusterController(
      ShardFrontend& frontend, const engine::CascadeEngine& reference,
      int workers_per_shard, double slo_seconds,
      std::unique_ptr<control::Allocator> allocator,
      std::vector<discriminator::DeferralProfile> offline_profiles,
      ClusterControllerConfig cfg = {});

  /// Solve and push an initial plan immediately, then tick every period
  /// (anchored to t0 + k*period like the single-engine controller).
  void start();
  void stop();

  /// One control iteration (exposed for tests): poll, then solve (inline
  /// or after the gather delay).
  void tick();

  /// Confidence stream fan-in: the cluster runners wire every shard
  /// engine's confidence observer here so the online deferral profiles
  /// see the whole cluster's data path. Thread-safe.
  void observe_confidence(std::size_t boundary, double confidence);

  struct Snapshot {
    double time = 0.0;
    double demand_estimate = 0.0;
    double observed_demand = 0.0;
    double recent_violation_ratio = 0.0;
    control::AllocationDecision decision;
    std::vector<engine::AllocationPlan> shard_plans;
  };
  const std::vector<Snapshot>& history() const { return history_; }

  /// See the header comment. Exposed for direct unit testing.
  static std::vector<engine::AllocationPlan> split_plan(
      const control::AllocationDecision& d,
      const std::vector<double>& shard_demand, int workers_per_shard);

 private:
  void solve();
  void schedule_next_tick();
  void observe_cache(const cache::CacheStats& summed, bool enabled);
  double effective_exact_hit_ratio() const;
  double effective_service_discount() const;

  ShardFrontend& frontend_;
  const engine::CascadeEngine& reference_;
  std::unique_ptr<control::Allocator> allocator_;
  const int workers_per_shard_;
  const double slo_seconds_;
  const ClusterControllerConfig cfg_;

  mutable util::Mutex profile_mu_;
  /// Fed by every shard's confidence stream (engine data-path threads),
  /// read by solve() on the control thread.
  std::vector<discriminator::OnlineDeferralProfile> profiles_
      DS_GUARDED_BY(profile_mu_);

  /// Latest snapshot per shard, written by the frontend's stats listener
  /// (transport thread), read by solve().
  mutable util::Mutex snap_mu_;
  std::vector<std::optional<net::ShardStatsMsg>> snapshots_
      DS_GUARDED_BY(snap_mu_);

  /// Everything below is confined to the control flow (start()/stop()
  /// from the owner, tick()/solve() serialized through the backend's
  /// single control thread), so it needs no lock — only tick_handle_
  /// crosses threads, between the re-arm callback and stop().
  stats::HoltEwma demand_holt_;
  stats::Ewma cache_hit_ewma_;
  stats::Ewma cache_near_share_ewma_;
  stats::Ewma cache_far_share_ewma_;
  stats::Ewma cache_near_frac_ewma_;
  stats::Ewma cache_far_frac_ewma_;
  cache::CacheStats last_cache_stats_;  ///< previous cluster-summed counters
  bool cache_seen_enabled_ = false;
  bool first_tick_ = true;

  double next_tick_time_ = 0.0;
  util::Mutex tick_mu_;
  engine::TimerHandle tick_handle_ DS_GUARDED_BY(tick_mu_){};
  std::atomic<bool> running_{false};
  std::uint64_t token_ = 0;
  std::vector<Snapshot> history_;
};

}  // namespace diffserve::cluster
