// §5 "Reuse Opportunities" study: what happens to FID when the heavyweight
// model warm-starts from the lightweight model's intermediate output
// instead of fresh noise. The paper reports SD-Turbo reuse is FID-neutral
// while SDXS reuse degrades FID (18.55 -> 19.75 on MS-COCO) because the
// models are less compatible. We model reuse as the heavy output
// inheriting a fraction of the light model's artifact displacement —
// smaller for the architecturally-compatible SD-Turbo, larger for SDXS.
#include "bench_common.hpp"
#include "core/environment.hpp"
#include "linalg/gaussian.hpp"
#include "util/rng.hpp"

using namespace diffserve;

namespace {

double fid_with_reuse(const core::CascadeEnvironment& env,
                      double inheritance) {
  const auto& w = env.workload();
  util::Rng rng(1234);
  linalg::GaussianAccumulator acc(w.config().feature_dim);
  for (quality::QueryId q = 0; q < w.size(); ++q) {
    const auto heavy = w.generated_feature(q, env.heavy_tier());
    const auto light = w.generated_feature(q, env.light_tier());
    const auto real = w.real_feature(q);
    // Warm-starting from the light latent perturbs the heavy trajectory by
    // a fraction of the light run's deviation — in a direction that depends
    // unpredictably on where the light run ended relative to the heavy
    // model's basin (random sign per query). Incompatible pairs inherit
    // more, which widens the served distribution and worsens FID.
    const double sign = rng.bernoulli(0.5) ? 1.0 : -1.0;
    std::vector<double> out(heavy.size());
    for (std::size_t i = 0; i < out.size(); ++i)
      out[i] = heavy[i] + sign * inheritance * (light[i] - real[i]);
    acc.add(out);
  }
  return env.scorer().fid(acc.stats());
}

void study(const char* label, const std::string& cascade,
           double inheritance) {
  core::EnvironmentConfig ec;
  ec.cascade = cascade;
  ec.workload_queries = 3000;
  core::CascadeEnvironment env(ec);
  const double baseline = env.scorer().fid_single_tier(env.heavy_tier());
  const double reused = fid_with_reuse(env, inheritance);
  std::printf("%-28s fresh-start FID %-8.2f reuse FID %-8.2f (%+.2f)\n",
              label, baseline, reused, reused - baseline);
}

}  // namespace

int main() {
  bench::banner("§5 study", "reusing light-model intermediates in the heavy pass");
  // SD-Turbo shares SDv1.5's backbone: high compatibility, tiny carryover.
  study("SD-Turbo -> SDv1.5 reuse", models::catalog::kCascade1, 0.03);
  // SDXS has a different architecture: noticeable artifact carryover.
  study("SDXS -> SDv1.5 reuse", models::catalog::kCascade2, 0.16);
  std::printf(
      "shape target: SD-Turbo reuse ~FID-neutral; SDXS reuse degrades FID "
      "(paper: 18.55 -> 19.75)\n");
  return 0;
}
