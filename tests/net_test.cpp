// Tests for the cluster wire layer: frame codec framing/validation
// (including the malformed-input rejections the protocol promises),
// byte-exact message round-trips for every topic, and the loopback and
// socket transports. The negative cases run under ASan/UBSan in CI: a
// truncated, oversized, or corrupt byte stream must be rejected without
// undefined behaviour.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/messages.hpp"
#include "net/transport.hpp"
#include "sim/simulation.hpp"

namespace diffserve::net {
namespace {

Frame sample_frame() {
  Frame f;
  f.priority = static_cast<std::uint8_t>(Priority::kHigh);
  f.topic = "test/topic";
  f.payload = {0x01, 0x02, 0x03, 0xFF, 0x00, 0x7F};
  return f;
}

// ---- codec: happy paths ------------------------------------------------------

TEST(FrameCodec, EncodeDecodeRoundTrip) {
  const Frame f = sample_frame();
  const auto bytes = encode(f);
  // [u32 frame_len][u8 priority][u16 topic_len][topic][payload]
  ASSERT_EQ(bytes.size(), 4 + 3 + f.topic.size() + f.payload.size());

  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  Frame out;
  ASSERT_EQ(dec.next(&out), FrameDecoder::Status::kFrame);
  EXPECT_EQ(out, f);
  EXPECT_EQ(dec.next(&out), FrameDecoder::Status::kNeedMore);
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(FrameCodec, StreamingDecodeAcrossArbitraryChunks) {
  // Frames survive any segmentation the transport inflicts: feed three
  // back-to-back frames one byte at a time.
  std::vector<std::uint8_t> stream;
  std::vector<Frame> sent;
  for (int i = 0; i < 3; ++i) {
    Frame f = sample_frame();
    f.priority = static_cast<std::uint8_t>(i);
    f.payload.push_back(static_cast<std::uint8_t>(i));
    encode_append(f, stream);
    sent.push_back(std::move(f));
  }

  FrameDecoder dec;
  std::vector<Frame> got;
  for (const std::uint8_t b : stream) {
    dec.feed(&b, 1);
    Frame out;
    while (dec.next(&out) == FrameDecoder::Status::kFrame)
      got.push_back(out);
  }
  ASSERT_EQ(got.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) EXPECT_EQ(got[i], sent[i]);
  EXPECT_FALSE(dec.failed());
  EXPECT_EQ(dec.buffered(), 0u);
}

// ---- codec: negative cases (no UB on malformed streams) ----------------------

TEST(FrameCodec, TruncatedFrameReportsNeedMoreNotError) {
  const auto bytes = encode(sample_frame());
  // Every proper prefix is "incomplete", never "malformed" — the decoder
  // must wait for the rest, and must not read past what it was fed.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    FrameDecoder dec;
    dec.feed(bytes.data(), cut);
    Frame out;
    EXPECT_EQ(dec.next(&out), FrameDecoder::Status::kNeedMore) << cut;
    EXPECT_FALSE(dec.failed());
    EXPECT_EQ(dec.buffered(), cut);  // truncation visible at stream end
  }
}

TEST(FrameCodec, OversizedFrameLenRejected) {
  std::vector<std::uint8_t> bytes = {0xFF, 0xFF, 0xFF, 0xFF, 0x00};
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  Frame out;
  EXPECT_EQ(dec.next(&out), FrameDecoder::Status::kError);
  EXPECT_TRUE(dec.failed());
  // Poisoned: later feeds/pops stay rejected rather than misparsing from
  // a misaligned offset.
  const auto good = encode(sample_frame());
  dec.feed(good.data(), good.size());
  EXPECT_EQ(dec.next(&out), FrameDecoder::Status::kError);
}

TEST(FrameCodec, UndersizedFrameLenRejected) {
  // frame_len = 4 can't hold header + topic + payload.
  const std::vector<std::uint8_t> bytes = {0x00, 0x00, 0x00, 0x04,
                                           0x02, 0x00, 0x01, 'x'};
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  Frame out;
  EXPECT_EQ(dec.next(&out), FrameDecoder::Status::kError);
}

TEST(FrameCodec, BadTopicLenRejected) {
  // A valid-length body whose topic_len claims more bytes than the body
  // holds (would over-read into the next frame).
  auto bytes = encode(sample_frame());
  bytes[5] = 0xFF;  // topic_len high byte
  bytes[6] = 0xFF;
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  Frame out;
  EXPECT_EQ(dec.next(&out), FrameDecoder::Status::kError);
  EXPECT_TRUE(dec.failed());
}

TEST(FrameCodec, EmptyTopicRejected) {
  // body: priority + topic_len=0 + 2 payload bytes.
  const std::vector<std::uint8_t> bytes = {0x00, 0x00, 0x00, 0x05,
                                           0x02, 0x00, 0x00, 0xAA, 0xBB};
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  Frame out;
  EXPECT_EQ(dec.next(&out), FrameDecoder::Status::kError);
}

TEST(FrameCodec, ZeroLengthPayloadRejected) {
  // Protocol policy: every message type serializes at least one payload
  // byte, so a frame whose topic consumes the whole body is malformed.
  // body: priority + topic_len=2 + "ab" + no payload.
  const std::vector<std::uint8_t> bytes = {0x00, 0x00, 0x00, 0x05,
                                           0x02, 0x00, 0x02, 'a', 'b'};
  FrameDecoder dec;
  dec.feed(bytes.data(), bytes.size());
  Frame out;
  EXPECT_EQ(dec.next(&out), FrameDecoder::Status::kError);
  EXPECT_TRUE(dec.failed());
}

// ---- message round-trips (byte-exact) -----------------------------------------

engine::Query sample_query() {
  engine::Query q;
  q.seq = 0x0123456789ABCDEFULL;
  q.prompt_id = 4242;
  q.arrival_time = 123.456;
  q.deadline = 128.456;
  q.stage = 2;
  q.stage_deadline = 126.999;
  q.confidence = 0.875;
  q.deferred = true;
  q.deferrals = 2;
  q.image_tier = 1;
  q.image_stage = 0;
  q.cache_hit = cache::HitLevel::kApproxNear;
  q.cache_donor = 17;
  q.cache_distance = 3.25;
  q.cache_step_fraction = 0.4375;
  q.cache_level_mask = 0x5;
  q.cache_resume_depth = 0.5;
  return q;
}

/// encode -> decode -> re-encode must reproduce the wire bytes exactly.
template <typename Msg>
void expect_byte_exact_roundtrip(const Msg& m) {
  const Frame f = encode(m);
  Msg out;
  ASSERT_TRUE(decode(f, &out));
  const Frame f2 = encode(out);
  EXPECT_EQ(f2, f);
  EXPECT_EQ(encode(f2), encode(f));  // full wire bytes, prefix included
}

TEST(Messages, QuerySubmitRoundTripIsByteExact) {
  QueryMsg m;
  m.shard = 3;
  m.query = sample_query();
  expect_byte_exact_roundtrip(m);

  QueryMsg out;
  ASSERT_TRUE(decode(encode(m), &out));
  EXPECT_EQ(out.shard, m.shard);
  EXPECT_EQ(out.query.seq, m.query.seq);
  EXPECT_EQ(out.query.prompt_id, m.query.prompt_id);
  EXPECT_EQ(out.query.arrival_time, m.query.arrival_time);
  EXPECT_EQ(out.query.deadline, m.query.deadline);
  EXPECT_EQ(out.query.stage, m.query.stage);
  EXPECT_EQ(out.query.confidence, m.query.confidence);
  EXPECT_EQ(out.query.deferred, m.query.deferred);
  EXPECT_EQ(out.query.deferrals, m.query.deferrals);
  EXPECT_EQ(out.query.image_tier, m.query.image_tier);
  EXPECT_EQ(out.query.cache_hit, m.query.cache_hit);
  EXPECT_EQ(out.query.cache_step_fraction, m.query.cache_step_fraction);
  EXPECT_EQ(out.query.cache_level_mask, m.query.cache_level_mask);
}

TEST(Messages, TerminalRoundTripIsByteExact) {
  TerminalMsg m;
  m.shard = 1;
  m.query = sample_query();
  m.time = 130.5;
  m.served_tier = 2;
  m.dropped = false;
  expect_byte_exact_roundtrip(m);

  m.served_tier = -1;
  m.dropped = true;
  expect_byte_exact_roundtrip(m);
}

TEST(Messages, StatsRequestRoundTripIsByteExact) {
  StatsRequestMsg m;
  m.shard = 7;
  m.token = 99;
  expect_byte_exact_roundtrip(m);
}

TEST(Messages, ShardStatsRoundTripIsByteExact) {
  ShardStatsMsg m;
  m.shard = 2;
  m.token = 5;
  m.time = 45.0;
  m.demand_rate = 7.25;
  m.recent_violation_ratio = 0.125;
  m.submitted = 321;
  m.cache_enabled = true;
  m.cache.lookups = 100;
  m.cache.exact_hits = 10;
  m.cache.near_hits = 20;
  m.cache.far_hits = 5;
  m.cache.insertions = 60;
  m.cache.latent_insertions = 12;
  m.cache.evictions = 3;
  m.cache.step_fraction_sum = 61.5;
  m.cache.near_step_fraction_sum = 8.75;
  m.cache.far_step_fraction_sum = 4.25;
  m.cache.lsh_probed_cells = 240;
  m.cache.lsh_probe_candidates = 900;
  m.cache.heap_compactions = 2;
  m.cache.heap_stale_pops = 14;
  m.stages = {{3.0, 4.5, 4}, {1.0, 2.25, 2}};
  expect_byte_exact_roundtrip(m);

  ShardStatsMsg out;
  ASSERT_TRUE(decode(encode(m), &out));
  ASSERT_EQ(out.stages.size(), 2u);
  EXPECT_EQ(out.stages[1].arrival_rate, 2.25);
  EXPECT_EQ(out.cache.lookups, 100u);
  EXPECT_EQ(out.cache.step_fraction_sum, 61.5);
}

TEST(Messages, PlanRoundTripIsByteExact) {
  PlanMsg m;
  m.shard = 0;
  m.plan.mode = engine::RoutingMode::kDirect;
  m.plan.workers = {3, 2, 1};
  m.plan.batches = {8, 4, 1};
  m.plan.thresholds = {0.6, 0.75};
  m.plan.p_heavy = 0.3;
  expect_byte_exact_roundtrip(m);
}

TEST(Messages, DecodeRejectsTrailingBytesAndWrongTopic) {
  QueryMsg m;
  m.query = sample_query();
  Frame f = encode(m);
  f.payload.push_back(0x00);  // trailing garbage
  QueryMsg out;
  EXPECT_FALSE(decode(f, &out));

  Frame wrong = encode(m);
  wrong.topic = kTopicTerminal;
  TerminalMsg t;
  EXPECT_FALSE(decode(wrong, &t));  // terminal payload is longer
  QueryMsg q;
  EXPECT_FALSE(decode(wrong, &q));  // topic no longer matches
}

TEST(Messages, DecodeRejectsTruncatedPayload) {
  ShardStatsMsg m;
  m.stages = {{1.0, 2.0, 3}};
  Frame f = encode(m);
  f.payload.resize(f.payload.size() - 5);
  ShardStatsMsg out;
  EXPECT_FALSE(decode(f, &out));  // must fail cleanly, not over-read
}

// ---- loopback transport --------------------------------------------------------

TEST(LoopbackTransport, SynchronousDeliveryAtZeroHop) {
  auto link = make_loopback_link();
  std::vector<Frame> a_got, b_got;
  link.first->set_receiver([&](Frame f) { a_got.push_back(std::move(f)); });
  link.second->set_receiver([&](Frame f) { b_got.push_back(std::move(f)); });

  const Frame f = sample_frame();
  link.first->send(f);  // delivered inside this call
  ASSERT_EQ(b_got.size(), 1u);
  EXPECT_EQ(b_got[0], f);
  link.second->send(f);
  link.second->send(f);
  ASSERT_EQ(a_got.size(), 2u);
}

TEST(LoopbackTransport, HopLatencyDefersDeliveryThroughScheduler) {
  sim::Simulation sim;
  auto link = make_loopback_link(
      0.25, [&sim](double d, std::function<void()> fn) {
        sim.schedule_in(d, std::move(fn));
      });
  std::vector<std::pair<double, Frame>> got;
  link.second->set_receiver(
      [&](Frame f) { got.emplace_back(sim.now(), std::move(f)); });

  Frame f1 = sample_frame();
  Frame f2 = sample_frame();
  f2.payload.push_back(0x42);
  sim.schedule_at(1.0, [&] { link.first->send(f1); });
  sim.schedule_at(1.5, [&] { link.first->send(f2); });
  sim.run_all();

  ASSERT_EQ(got.size(), 2u);
  EXPECT_DOUBLE_EQ(got[0].first, 1.25);  // one hop after the send
  EXPECT_EQ(got[0].second, f1);
  EXPECT_DOUBLE_EQ(got[1].first, 1.75);
  EXPECT_EQ(got[1].second, f2);
}

// ---- socket transports (run under TSan in CI) -----------------------------------

void exercise_socket_link(EndpointPair link, int frames_per_side) {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<Frame> a_got, b_got;
  link.first->set_receiver([&](Frame f) {
    std::lock_guard<std::mutex> lock(mu);
    a_got.push_back(std::move(f));
    cv.notify_all();
  });
  link.second->set_receiver([&](Frame f) {
    std::lock_guard<std::mutex> lock(mu);
    b_got.push_back(std::move(f));
    cv.notify_all();
  });
  link.first->start();
  link.second->start();

  // Concurrent senders on both sides; per-side ordering must survive.
  std::thread t1([&] {
    for (int i = 0; i < frames_per_side; ++i) {
      Frame f = sample_frame();
      f.topic = "from/a";
      f.payload = {static_cast<std::uint8_t>(i >> 8),
                   static_cast<std::uint8_t>(i)};
      link.first->send(f);
    }
  });
  std::thread t2([&] {
    for (int i = 0; i < frames_per_side; ++i) {
      Frame f = sample_frame();
      f.topic = "from/b";
      f.payload = {static_cast<std::uint8_t>(i >> 8),
                   static_cast<std::uint8_t>(i)};
      link.second->send(f);
    }
  });
  t1.join();
  t2.join();

  {
    std::unique_lock<std::mutex> lock(mu);
    const bool ok = cv.wait_for(lock, std::chrono::seconds(10), [&] {
      return a_got.size() == static_cast<std::size_t>(frames_per_side) &&
             b_got.size() == static_cast<std::size_t>(frames_per_side);
    });
    ASSERT_TRUE(ok) << "a=" << a_got.size() << " b=" << b_got.size();
    for (int i = 0; i < frames_per_side; ++i) {
      EXPECT_EQ(int{a_got[i].payload[0]} << 8 | a_got[i].payload[1], i);
      EXPECT_EQ(a_got[i].topic, "from/b");
      EXPECT_EQ(int{b_got[i].payload[0]} << 8 | b_got[i].payload[1], i);
      EXPECT_EQ(b_got[i].topic, "from/a");
    }
  }
  link.first->stop();
  link.second->stop();
}

TEST(SocketTransport, SocketpairCarriesOrderedFramesBothWays) {
  exercise_socket_link(make_socketpair_link(), 500);
}

TEST(SocketTransport, TcpCarriesOrderedFramesBothWays) {
  exercise_socket_link(make_tcp_link(), 500);
}

TEST(SocketTransport, StopIsIdempotentAndJoinsReader) {
  auto link = make_socketpair_link();
  std::atomic<int> got{0};
  link.first->set_receiver([&](Frame) { got.fetch_add(1); });
  link.second->set_receiver([](Frame) {});
  link.first->start();
  link.second->start();
  link.second->send(sample_frame());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (got.load() < 1 && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(got.load(), 1);
  link.first->stop();
  link.first->stop();  // idempotent
  link.second->stop();
}

}  // namespace
}  // namespace diffserve::net
