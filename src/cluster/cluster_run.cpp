#include "cluster/cluster_run.hpp"

#include <chrono>
#include <memory>
#include <thread>

#include "cluster/cluster_controller.hpp"
#include "cluster/shard_node.hpp"
#include "engine/engine.hpp"
#include "net/transport.hpp"
#include "runtime/threaded_runtime.hpp"
#include "serving/system.hpp"
#include "sim/simulation.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/trace_clock.hpp"

namespace diffserve::cluster {

namespace {

/// Non-owning adapter: the ClusterController owns its allocator, but the
/// runners borrow one from the caller (mirrors runtime::run_threaded).
class BorrowedAllocator final : public control::Allocator {
 public:
  explicit BorrowedAllocator(control::Allocator& inner) : inner_(inner) {}
  control::AllocationDecision allocate(
      const control::AllocationInput& input) override {
    return inner_.allocate(input);
  }
  std::string name() const override { return inner_.name(); }

 private:
  control::Allocator& inner_;
};

engine::EngineConfig shard_engine_config(const ClusterRunConfig& cfg,
                                         double slo, double launch_slack,
                                         std::size_t shard) {
  engine::EngineConfig ecfg;
  ecfg.total_workers = cfg.workers_per_shard;
  ecfg.slo_seconds = slo;
  ecfg.model_load_delay = cfg.model_load_delay;
  ecfg.launch_slack_seconds = launch_slack;
  ecfg.seed = 1 + static_cast<std::uint64_t>(shard);
  // Shard sinks run in fast mode: the frontend's sink holds the cluster's
  // terminal records (recomputed bit-identically from the terminal
  // frames), so per-shard record logs would only duplicate memory.
  // Aggregate counters stay exact.
  ecfg.record_terminal_events = false;
  ecfg.cache = cfg.cache;
  ecfg.slo_classes = cfg.slo_classes;
  return ecfg;
}

ClusterControllerConfig cluster_controller_config(
    const ClusterRunConfig& cfg, const trace::RateTrace& trace) {
  ClusterControllerConfig ccfg;
  ccfg.control.period_seconds = cfg.control_period;
  ccfg.control.over_provision = cfg.over_provision;
  ccfg.control.max_deferral_fraction = cfg.max_deferral_fraction;
  ccfg.control.initial_demand_guess = cfg.initial_demand_guess > 0.0
                                          ? cfg.initial_demand_guess
                                          : trace.qps_at(0.0);
  ccfg.gather_delay_seconds = cfg.gather_delay_seconds;
  return ccfg;
}

FrontendConfig frontend_config(const ClusterRunConfig& cfg, double slo) {
  FrontendConfig fcfg = cfg.frontend;
  fcfg.slo_seconds = slo;
  fcfg.prompt_mix = cfg.prompt_mix;
  fcfg.record_terminal_events = cfg.record_terminal_events;
  fcfg.slo_classes = cfg.slo_classes;
  return fcfg;
}

ClusterResult harvest(const ShardFrontend& frontend,
                      const std::vector<std::unique_ptr<engine::CascadeEngine>>&
                          engines,
                      const ClusterController& cc,
                      const trace::RateTrace& trace, bool record) {
  ClusterResult r;
  const auto& sink = frontend.sink();
  r.submitted = frontend.submitted();
  r.completed = sink.completed();
  r.dropped = sink.dropped();
  r.violation_ratio = sink.violation_ratio();
  r.mean_latency = sink.mean_latency();
  r.overall_fid = (record && r.completed >= 2) ? sink.overall_fid() : -1.0;
  const double duration = trace.duration();
  r.goodput_qps =
      duration > 0.0
          ? static_cast<double>(sink.total()) * (1.0 - r.violation_ratio) /
                duration
          : 0.0;
  r.cluster_reconfigurations = cc.history().size();
  for (std::size_t c = 0; c < engine::kQueryClassCount; ++c) {
    const auto cls = static_cast<engine::QueryClass>(c);
    r.class_completed[c] = sink.class_completed(cls);
    r.class_dropped[c] = sink.class_dropped(cls);
    r.class_violation_ratio[c] = sink.class_violation_ratio(cls);
    r.class_mean_latency[c] = sink.class_mean_latency(cls);
  }
  r.shards.reserve(engines.size());
  for (const auto& eng : engines) {
    ShardBreakdown b;
    b.submitted = eng->submitted();
    b.reconfigurations = eng->reconfigurations();
    b.cache_exact_hit_ratio = eng->cache_stats().exact_hit_ratio();
    r.shards.push_back(b);
  }
  return r;
}

}  // namespace

ClusterResult run_cluster_des(const core::CascadeEnvironment& env,
                              control::Allocator& allocator,
                              const trace::RateTrace& trace,
                              const ClusterRunConfig& cfg) {
  DS_REQUIRE(cfg.shards >= 1, "need at least one shard");
  DS_REQUIRE(trace.samples().size() >= 2, "run needs a trace");
  const double slo =
      cfg.slo_seconds > 0.0 ? cfg.slo_seconds : env.default_slo();

  sim::Simulation sim;
  serving::SimulationBackend backend(sim);

  std::vector<std::unique_ptr<engine::CascadeEngine>> engines;
  engines.reserve(static_cast<std::size_t>(cfg.shards));
  for (int s = 0; s < cfg.shards; ++s)
    engines.push_back(std::make_unique<engine::CascadeEngine>(
        backend, env.workload(), env.repository(), env.cascade(), env.discs(),
        env.scorer(),
        shard_engine_config(cfg, slo, /*launch_slack=*/0.0,
                            static_cast<std::size_t>(s))));

  ShardFrontend frontend(env.workload(), env.scorer(),
                         frontend_config(cfg, slo));
  net::DeferFn defer = [&sim](double delay, std::function<void()> fn) {
    sim.schedule_in(delay, std::move(fn));
  };
  std::vector<std::unique_ptr<ShardNode>> nodes;
  nodes.reserve(engines.size());
  for (std::size_t s = 0; s < engines.size(); ++s) {
    auto link = net::make_loopback_link(cfg.hop_latency_seconds, defer);
    nodes.push_back(std::make_unique<ShardNode>(
        static_cast<std::uint32_t>(s), *engines[s], std::move(link.second)));
    frontend.attach_shard(std::move(link.first));
  }

  ClusterController cc(frontend, *engines.front(), cfg.workers_per_shard, slo,
                       std::make_unique<BorrowedAllocator>(allocator),
                       env.offline_profiles(),
                       cluster_controller_config(cfg, trace));
  for (auto& eng : engines)
    eng->set_confidence_observer([&cc](std::size_t b, double c) {
      cc.observe_confidence(b, c);
    });

  util::Rng arrival_rng(cfg.arrival_seed);
  const auto arrivals =
      trace::generate_arrivals(trace, arrival_rng, cfg.arrivals);
  if (cfg.record_terminal_events) frontend.sink().reserve(arrivals.size());
  for (const double t : arrivals)
    sim.schedule_at(t, [&frontend, &sim] { frontend.submit_next(sim.now()); });

  cc.start();
  sim.run_until(trace.duration() + slo + cfg.drain_seconds);
  cc.stop();
  sim.run_all();  // drain stragglers (batches launched at the horizon)

  return harvest(frontend, engines, cc, trace, cfg.record_terminal_events);
}

ClusterResult run_cluster_threaded(const core::CascadeEnvironment& env,
                                   control::Allocator& allocator,
                                   const trace::RateTrace& trace,
                                   const ClusterRunConfig& cfg) {
  DS_REQUIRE(cfg.shards >= 1, "need at least one shard");
  DS_REQUIRE(trace.samples().size() >= 2, "run needs a trace");
  const double slo =
      cfg.slo_seconds > 0.0 ? cfg.slo_seconds : env.default_slo();
  const double launch_slack = cfg.launch_slack_wall_seconds * cfg.time_scale;

  util::TraceClock clock(cfg.time_scale);
  std::vector<std::unique_ptr<runtime::ThreadedBackend>> backends;
  std::vector<std::unique_ptr<engine::CascadeEngine>> engines;
  backends.reserve(static_cast<std::size_t>(cfg.shards));
  engines.reserve(static_cast<std::size_t>(cfg.shards));
  for (int s = 0; s < cfg.shards; ++s) {
    backends.push_back(std::make_unique<runtime::ThreadedBackend>(
        clock, cfg.workers_per_shard));
    engines.push_back(std::make_unique<engine::CascadeEngine>(
        *backends.back(), env.workload(), env.repository(), env.cascade(),
        env.discs(), env.scorer(),
        shard_engine_config(cfg, slo, launch_slack,
                            static_cast<std::size_t>(s))));
  }

  ShardFrontend frontend(env.workload(), env.scorer(),
                         frontend_config(cfg, slo));
  std::vector<std::unique_ptr<ShardNode>> nodes;
  nodes.reserve(engines.size());
  for (std::size_t s = 0; s < engines.size(); ++s) {
    auto link =
        cfg.tcp_transport ? net::make_tcp_link() : net::make_socketpair_link();
    nodes.push_back(std::make_unique<ShardNode>(
        static_cast<std::uint32_t>(s), *engines[s], std::move(link.second)));
    frontend.attach_shard(std::move(link.first));
  }

  ClusterController cc(frontend, *engines.front(), cfg.workers_per_shard, slo,
                       std::make_unique<BorrowedAllocator>(allocator),
                       env.offline_profiles(),
                       cluster_controller_config(cfg, trace));
  for (auto& eng : engines)
    eng->set_confidence_observer([&cc](std::size_t b, double c) {
      cc.observe_confidence(b, c);
    });

  util::Rng arrival_rng(cfg.arrival_seed);
  const auto arrivals =
      trace::generate_arrivals(trace, arrival_rng, cfg.arrivals);
  if (cfg.record_terminal_events) frontend.sink().reserve(arrivals.size());

  // Bring the wire up before any engine thread can emit a terminal.
  frontend.start_transports();
  for (auto& node : nodes) node->start();
  for (auto& backend : backends) backend->start();
  cc.start();

  // The client: replay arrivals in compressed wall time.
  for (const double t : arrivals) {
    clock.sleep_until(t);
    frontend.submit_next(clock.now());
  }

  // Drain: in-flight queries get until trace end + SLO + margin, then
  // wait for every terminal frame to cross the wire.
  clock.sleep_until(trace.duration() + slo + 5.0);
  const auto wall_deadline =
      // ds-lint: allow(wall-clock): drain watchdog bounds shutdown wall
      // time only; every serving decision already happened on trace time.
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!frontend.drained() &&
         // ds-lint: allow(wall-clock): same drain watchdog
         std::chrono::steady_clock::now() < wall_deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  cc.stop();
  // Quiesce engines first (their terminal observers still send over live
  // endpoints), then give the last frames a moment to cross, then tear
  // the transports down.
  for (auto& backend : backends) backend->stop();
  while (!frontend.drained() &&
         // ds-lint: allow(wall-clock): same drain watchdog
         std::chrono::steady_clock::now() < wall_deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  for (auto& node : nodes) node->stop();
  frontend.stop_transports();

  return harvest(frontend, engines, cc, trace, cfg.record_terminal_events);
}

}  // namespace diffserve::cluster
