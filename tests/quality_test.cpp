// Tests for the synthetic quality model: determinism, calibration to the
// paper's FID band, the easy-query fraction (Fig. 1b), proxy-metric
// failure modes, and the windowed FID accumulator.
#include <gtest/gtest.h>

#include <cmath>

#include "quality/fid.hpp"
#include "quality/workload.hpp"

namespace diffserve::quality {
namespace {

// Tier pairs of the paper's three cascades (light, heavy).
struct CascadeTiers {
  int light;
  int heavy;
};
const CascadeTiers kCascades[] = {{2, 5}, {1, 5}, {3, 6}};

class PerCascade : public ::testing::TestWithParam<int> {
 protected:
  CascadeTiers tiers() const { return kCascades[GetParam()]; }
};

TEST(Workload, DifficultyInUnitInterval) {
  Workload w(512);
  for (QueryId q = 0; q < w.size(); ++q) {
    EXPECT_GE(w.difficulty(q), 0.0);
    EXPECT_LE(w.difficulty(q), 1.0);
  }
}

TEST(Workload, FeaturesAreDeterministic) {
  Workload w(128);
  const auto a = w.generated_feature(7, 2);
  const auto b = w.generated_feature(7, 2);
  EXPECT_EQ(a, b);
  // Same seed, fresh object -> identical workload.
  Workload w2(128);
  EXPECT_EQ(w2.generated_feature(7, 2), a);
  EXPECT_EQ(w2.real_feature(3), w.real_feature(3));
}

TEST(Workload, DifferentTiersProduceDifferentImages) {
  Workload w(64);
  EXPECT_NE(w.generated_feature(5, 2), w.generated_feature(5, 5));
}

TEST(Workload, SeedChangesWorkload) {
  QualityConfig cfg;
  cfg.seed = 1;
  Workload a(64, cfg);
  cfg.seed = 2;
  Workload b(64, cfg);
  EXPECT_NE(a.real_feature(0), b.real_feature(0));
}

TEST(Workload, ErrorGrowsWithDifficultyForLightTier) {
  Workload w(2048);
  // Correlate difficulty with light-tier error across queries.
  double sum_d = 0.0, sum_e = 0.0, sum_de = 0.0, sum_dd = 0.0, sum_ee = 0.0;
  const auto n = static_cast<double>(w.size());
  for (QueryId q = 0; q < w.size(); ++q) {
    const double d = w.difficulty(q);
    const double e = w.true_error(q, 2);
    sum_d += d;
    sum_e += e;
    sum_de += d * e;
    sum_dd += d * d;
    sum_ee += e * e;
  }
  const double cov = sum_de / n - sum_d / n * sum_e / n;
  const double corr = cov / std::sqrt((sum_dd / n - sum_d / n * sum_d / n) *
                                      (sum_ee / n - sum_e / n * sum_e / n));
  EXPECT_GT(corr, 0.8);
}

TEST(Workload, HeavyTierErrorNearlyFlatInDifficulty) {
  Workload w(2048);
  double lo = 0.0, hi = 0.0;
  std::size_t nlo = 0, nhi = 0;
  for (QueryId q = 0; q < w.size(); ++q) {
    if (w.difficulty(q) < 0.2) {
      lo += w.true_error(q, 5);
      ++nlo;
    } else if (w.difficulty(q) > 0.5) {
      hi += w.true_error(q, 5);
      ++nhi;
    }
  }
  ASSERT_GT(nlo, 10u);
  ASSERT_GT(nhi, 10u);
  // Mean error grows much less than 2x between easy and hard queries.
  EXPECT_LT(hi / static_cast<double>(nhi), 1.5 * lo / static_cast<double>(nlo));
}

TEST_P(PerCascade, EasyFractionMatchesPaper) {
  // "for 20-40% of the queries ... the lightweight model generates images
  // with similar or even better quality" (§2.1, Fig. 1b).
  Workload w(3000);
  const auto [light, heavy] = tiers();
  std::size_t easy = 0;
  for (QueryId q = 0; q < w.size(); ++q)
    if (w.true_error(q, light) <= w.true_error(q, heavy)) ++easy;
  const double frac = static_cast<double>(easy) / static_cast<double>(w.size());
  EXPECT_GE(frac, 0.18);
  EXPECT_LE(frac, 0.45);
}

TEST_P(PerCascade, FidCalibrationInPaperBand) {
  Workload w(3000);
  FidScorer scorer(w);
  const auto [light, heavy] = tiers();
  const double fid_light = scorer.fid_single_tier(light);
  const double fid_heavy = scorer.fid_single_tier(heavy);
  // Light is clearly worse; both land in a plausible FID band.
  EXPECT_GT(fid_light, fid_heavy + 2.0);
  EXPECT_GT(fid_heavy, 8.0);
  EXPECT_LT(fid_light, 35.0);
}

INSTANTIATE_TEST_SUITE_P(AllCascades, PerCascade,
                         ::testing::Range(0, 3));

TEST(Proxies, PickScoreBiasGrowsWithDifficulty) {
  // The documented PickScore failure mode: elaborate (difficult) prompts
  // score higher regardless of quality, so thresholding misroutes.
  Workload w(3000);
  double lo = 0.0, hi = 0.0;
  std::size_t nlo = 0, nhi = 0;
  for (QueryId q = 0; q < w.size(); ++q) {
    if (w.difficulty(q) < 0.2) {
      lo += w.pickscore(q, 2);
      ++nlo;
    } else if (w.difficulty(q) > 0.5) {
      hi += w.pickscore(q, 2);
      ++nhi;
    }
  }
  EXPECT_GT(hi / static_cast<double>(nhi), lo / static_cast<double>(nlo));
}

TEST(Proxies, ClipScoreRewardsArtifacts) {
  // Vivid artifact-heavy generations score slightly higher (anti-quality).
  Workload w(3000);
  double low_err = 0.0, high_err = 0.0;
  std::size_t nl = 0, nh = 0;
  for (QueryId q = 0; q < w.size(); ++q) {
    const double e = w.true_error(q, 2);
    if (e < 2.0) {
      low_err += w.clipscore(q, 2);
      ++nl;
    } else if (e > 4.0) {
      high_err += w.clipscore(q, 2);
      ++nh;
    }
  }
  ASSERT_GT(nl, 10u);
  ASSERT_GT(nh, 10u);
  EXPECT_GT(high_err / static_cast<double>(nh),
            low_err / static_cast<double>(nl));
}

TEST(Fid, ZeroAgainstOwnReference) {
  Workload w(1000);
  FidScorer scorer(w);
  std::vector<std::vector<double>> real;
  for (QueryId q = 0; q < w.size(); ++q) real.push_back(w.real_feature(q));
  // The real set against its own fitted stats: exactly zero.
  EXPECT_NEAR(scorer.fid(real), 0.0, 1e-6);
}

TEST(Fid, MixtureCanBeatPureHeavy) {
  // The Fig. 1a tail: a light/heavy mixture yields lower FID than serving
  // everything on the heavyweight model.
  Workload w(2500);
  FidScorer scorer(w);
  // An unconditioned 85/15 heavy/light mixture sits below pure-heavy FID
  // (the artifact means partially cancel); conditioned (discriminator)
  // mixtures dip much deeper — covered in core_test.
  std::vector<std::vector<double>> mixture;
  for (QueryId q = 0; q < w.size(); ++q)
    mixture.push_back(w.generated_feature(q, q % 20 < 17 ? 5 : 2));
  EXPECT_LT(scorer.fid(mixture), scorer.fid_single_tier(5));
}

TEST(Fid, RequiresTwoSamples) {
  Workload w(100);
  FidScorer scorer(w);
  const std::vector<std::vector<double>> one = {w.real_feature(0)};
  EXPECT_THROW(scorer.fid(one), std::invalid_argument);
}

TEST(WindowedFid, EmitsPerWindowPoints) {
  Workload w(600);
  FidScorer scorer(w);
  WindowedFid wf(scorer, 10.0, 16);
  for (int i = 0; i < 200; ++i)
    wf.add(i * 0.2, w.generated_feature(static_cast<QueryId>(i % w.size()), 5));
  const auto& series = wf.finalize(40.0);
  ASSERT_GE(series.size(), 3u);
  for (const auto& pt : series) {
    EXPECT_GE(pt.samples, 16u);
    EXPECT_GT(pt.fid, 0.0);
  }
}

TEST(WindowedFid, ThinWindowsCarryOver) {
  Workload w(300);
  FidScorer scorer(w);
  WindowedFid wf(scorer, 1.0, 50);
  // 10 samples per 1 s window — far below min; everything accumulates.
  for (int i = 0; i < 100; ++i)
    wf.add(i * 0.1, w.generated_feature(static_cast<QueryId>(i % w.size()), 2));
  const auto& series = wf.finalize(10.0);
  // Windows emit only once >= 50 samples accumulated: two points of 50.
  ASSERT_EQ(series.size(), 2u);
  std::size_t total = 0;
  for (const auto& pt : series) {
    EXPECT_GE(pt.samples, 50u);
    total += pt.samples;
  }
  EXPECT_EQ(total, 100u);
}

TEST(WindowedFid, RejectsOutOfOrderTime) {
  Workload w(100);
  FidScorer scorer(w);
  WindowedFid wf(scorer, 10.0);
  wf.add(15.0, w.real_feature(0));  // advances past the first window
  EXPECT_THROW(wf.add(1.0, w.real_feature(1)), std::invalid_argument);
}

TEST(Workload, RejectsTinyWorkload) {
  EXPECT_THROW(Workload(4), std::invalid_argument);
}

TEST(Workload, RejectsBadConfig) {
  QualityConfig cfg;
  cfg.feature_dim = 6;
  cfg.style_dims = 6;  // no room for the artifact plane
  EXPECT_THROW(Workload(100, cfg), std::invalid_argument);
}

TEST(TierParams, UnknownTierThrows) {
  EXPECT_THROW(QualityConfig::tier_params(0), std::invalid_argument);
  EXPECT_THROW(QualityConfig::tier_params(7), std::invalid_argument);
}

}  // namespace
}  // namespace diffserve::quality
