// Registering a custom model pair and serving it with DiffServe.
//
// Scenario: you distilled your own "flash" variant of a production
// diffusion model and want to know (a) whether a discriminator can route
// between them, and (b) what SLO you can afford to advertise. This example
// builds the cascade from scratch through the public API — no built-in
// catalog entries involved — then sweeps the SLO.
#include <cstdio>

#include "core/environment.hpp"
#include "control/milp_allocator.hpp"
#include "core/experiment.hpp"
#include "discriminator/deferral_profile.hpp"
#include "discriminator/discriminator.hpp"
#include "models/model_repository.hpp"
#include "nn/metrics.hpp"
#include "quality/fid.hpp"

using namespace diffserve;

int main() {
  // 1. Register custom variants: a 0.2 s "flash" model (quality tier 3)
  //    and a 2.5 s "studio" model (quality tier 5), plus a discriminator.
  models::ModelRepository repo;
  repo.register_model({"flash-v1", models::ModelKind::kDiffusion,
                       models::LatencyProfile::affine(0.2), /*tier=*/3, 512});
  repo.register_model({"studio-v2", models::ModelKind::kDiffusion,
                       models::LatencyProfile::affine(2.5), /*tier=*/5, 512});
  repo.register_model({"router-net", models::ModelKind::kDiscriminator,
                       models::LatencyProfile::affine(0.008, 0.1), 0, 512});
  repo.register_cascade(
      {"flash-studio", "flash-v1", "studio-v2", "router-net", 6.0});

  // 2. Build the workload and train the discriminator on real-vs-generated
  //    features for this pair.
  quality::Workload workload(2000);
  quality::FidScorer scorer(workload);
  discriminator::DiscriminatorConfig dc;
  dc.train_queries = 1200;
  const auto disc = discriminator::train_discriminator(workload, 3, 5, dc);
  const auto profile =
      discriminator::DeferralProfile::profile(workload, disc, 3, 1000);

  // Routing sanity: does confidence predict the light model's quality?
  std::vector<double> conf;
  std::vector<int> easy;
  for (quality::QueryId q = 1200; q < 2000; ++q) {
    conf.push_back(disc.confidence(workload.generated_feature(q, 3)));
    easy.push_back(workload.true_error(q, 3) <= workload.true_error(q, 5));
  }
  std::printf("flash-studio cascade\n");
  std::printf("  flash FID (alone):  %.2f\n", scorer.fid_single_tier(3));
  std::printf("  studio FID (alone): %.2f\n", scorer.fid_single_tier(5));
  std::printf("  router AUC (easy-query detection): %.3f\n\n",
              nn::roc_auc(conf, easy));

  // 3. Serve the custom cascade under DiffServe across candidate SLOs.
  //    (The environment facade targets the built-in catalog, so this uses
  //    the serving + control layers directly — the same layers the
  //    facade wraps.)
  std::printf("%-8s %-10s %-14s %-10s\n", "SLO_s", "FID", "violations",
              "light%");
  for (const double slo : {3.0, 4.5, 6.0, 9.0}) {
    sim::Simulation sim;
    serving::SystemConfig sys;
    sys.total_workers = 12;
    sys.slo_seconds = slo;
    serving::ServingSystem system(sim, workload, repo,
                                  repo.cascade("flash-studio"), &disc,
                                  scorer, sys);
    control::Controller controller(
        system.engine(), std::make_unique<control::MilpAllocator>(), profile);

    util::Rng rng(5);
    const auto tr = trace::RateTrace::azure_like(3.0, 14.0, 180.0, 7);
    system.inject_arrivals(trace::generate_arrivals(tr, rng));
    controller.start();
    sim.run_until(tr.duration() + slo + 20.0);
    controller.stop();
    sim.run_all();

    const auto& sink = system.sink();
    std::printf("%-8.1f %-10.2f %-14.3f %-10.1f\n", slo, sink.overall_fid(),
                sink.violation_ratio(),
                100.0 * sink.light_served_fraction());
  }
  std::printf(
      "\npick the loosest SLO your product tolerates: the cascade converts "
      "slack directly into image quality.\n");
  return 0;
}
