#include "nn/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace diffserve::nn {

double accuracy(const std::vector<double>& scores,
                const std::vector<int>& labels) {
  DS_REQUIRE(scores.size() == labels.size() && !scores.empty(),
             "scores/labels mismatch");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < scores.size(); ++i)
    if ((scores[i] >= 0.5) == (labels[i] == 1)) ++correct;
  return static_cast<double>(correct) / static_cast<double>(scores.size());
}

double roc_auc(const std::vector<double>& scores,
               const std::vector<int>& labels) {
  DS_REQUIRE(scores.size() == labels.size() && !scores.empty(),
             "scores/labels mismatch");
  std::vector<std::size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] < scores[b];
  });

  // Average ranks over tied score groups, then apply the Mann-Whitney
  // statistic: AUC = (rank_sum_pos - n_pos(n_pos+1)/2) / (n_pos * n_neg).
  std::vector<double> rank(scores.size());
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() &&
           scores[order[j + 1]] == scores[order[i]])
      ++j;
    const double avg_rank = 0.5 * static_cast<double>(i + j) + 1.0;
    for (std::size_t k = i; k <= j; ++k) rank[order[k]] = avg_rank;
    i = j + 1;
  }

  double rank_sum_pos = 0.0;
  std::size_t n_pos = 0;
  for (std::size_t k = 0; k < scores.size(); ++k) {
    if (labels[k] == 1) {
      rank_sum_pos += rank[k];
      ++n_pos;
    }
  }
  const std::size_t n_neg = scores.size() - n_pos;
  DS_REQUIRE(n_pos > 0 && n_neg > 0, "AUC needs both classes");
  return (rank_sum_pos -
          0.5 * static_cast<double>(n_pos) * static_cast<double>(n_pos + 1)) /
         (static_cast<double>(n_pos) * static_cast<double>(n_neg));
}

double expected_calibration_error(const std::vector<double>& scores,
                                  const std::vector<int>& labels,
                                  std::size_t bins) {
  DS_REQUIRE(scores.size() == labels.size() && !scores.empty(),
             "scores/labels mismatch");
  DS_REQUIRE(bins > 0, "need at least one bin");
  std::vector<double> conf_sum(bins, 0.0), acc_sum(bins, 0.0);
  std::vector<std::size_t> counts(bins, 0);
  for (std::size_t k = 0; k < scores.size(); ++k) {
    auto b = static_cast<std::size_t>(scores[k] * static_cast<double>(bins));
    b = std::min(b, bins - 1);
    conf_sum[b] += scores[k];
    acc_sum[b] += (labels[k] == 1) ? 1.0 : 0.0;
    ++counts[b];
  }
  double ece = 0.0;
  for (std::size_t b = 0; b < bins; ++b) {
    if (counts[b] == 0) continue;
    const double n = static_cast<double>(counts[b]);
    ece += n / static_cast<double>(scores.size()) *
           std::fabs(acc_sum[b] / n - conf_sum[b] / n);
  }
  return ece;
}

}  // namespace diffserve::nn
