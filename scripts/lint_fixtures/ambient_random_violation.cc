// Fixture: ambient RNG in decision code. Must trip `ambient-random`.
#include <cstdlib>
#include <random>

int pick_shard(int shard_count) {
  std::random_device seed_source;
  return static_cast<int>(seed_source()) % shard_count;
}
