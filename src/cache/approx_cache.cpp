#include "cache/approx_cache.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace diffserve::cache {

const char* to_string(HitLevel level) {
  switch (level) {
    case HitLevel::kMiss: return "miss";
    case HitLevel::kExact: return "exact";
    case HitLevel::kApproxNear: return "approx-near";
    case HitLevel::kApproxFar: return "approx-far";
  }
  return "?";
}

double CacheStats::hit_ratio() const {
  if (lookups == 0) return 0.0;
  return static_cast<double>(hits()) / static_cast<double>(lookups);
}

double CacheStats::exact_hit_ratio() const {
  if (lookups == 0) return 0.0;
  return static_cast<double>(exact_hits) / static_cast<double>(lookups);
}

double CacheStats::mean_step_fraction() const {
  const std::uint64_t n = lookups - exact_hits;
  if (n == 0) return 1.0;
  return step_fraction_sum / static_cast<double>(n);
}

double CacheStats::mean_probed_cells() const {
  if (lookups == 0) return 0.0;
  return static_cast<double>(lsh_probed_cells) / static_cast<double>(lookups);
}

ApproxCache::ApproxCache(CacheConfig cfg) : cfg_(cfg) {
  DS_REQUIRE(cfg_.capacity >= 1, "cache capacity must be >= 1");
  DS_REQUIRE(cfg_.exact_distance >= 0.0, "negative exact threshold");
  DS_REQUIRE(cfg_.exact_distance <= cfg_.near_distance &&
                 cfg_.near_distance <= cfg_.far_distance,
             "hit thresholds must be ordered exact <= near <= far");
  DS_REQUIRE(cfg_.near_step_fraction > 0.0 && cfg_.near_step_fraction <= 1.0,
             "near step fraction must be in (0, 1]");
  DS_REQUIRE(cfg_.far_step_fraction > 0.0 && cfg_.far_step_fraction <= 1.0,
             "far step fraction must be in (0, 1]");
  DS_REQUIRE(cfg_.min_step_fraction > 0.0 && cfg_.min_step_fraction <= 1.0,
             "min step fraction must be in (0, 1]");
  // Interpolation assumes a monotone profile: a closer donor never costs
  // more steps than a farther one (the distance thresholds get the
  // analogous ordering check above).
  if (cfg_.interpolate_step_fraction)
    DS_REQUIRE(cfg_.min_step_fraction <= cfg_.near_step_fraction &&
                   cfg_.near_step_fraction <= cfg_.far_step_fraction,
               "interpolation anchors must be ordered min <= near <= far");
  DS_REQUIRE(cfg_.hit_latency >= 0.0, "negative hit latency");
  DS_REQUIRE(cfg_.popularity_weight >= 0.0, "negative popularity weight");
  DS_REQUIRE(cfg_.lsh_projections >= 1 && cfg_.lsh_projections <= 32,
             "lsh_projections must be in [1, 32]");
  DS_REQUIRE(cfg_.lsh_tables >= 1, "need at least one LSH table");
  DS_REQUIRE(cfg_.lsh_width_scale > 0.0, "lsh_width_scale must be positive");
  DS_REQUIRE(cfg_.lsh_target_recall > 0.0 && cfg_.lsh_target_recall < 1.0,
             "lsh_target_recall must be in (0, 1)");
  DS_REQUIRE(cfg_.lsh_probe_budget >= 1, "lsh_probe_budget must be >= 1");
  indexed_ = cfg_.index_kind == IndexKind::kLsh ||
             (cfg_.index_kind == IndexKind::kAuto &&
              cfg_.capacity > kAutoIndexThreshold);
  if (indexed_) {
    buckets_.resize(cfg_.lsh_tables);
    // Cells sized to a hit radius *in projection units*: an in-radius
    // neighbour then lands in the same or an adjacent cell per projection
    // with high probability. For L2 a neighbour's projection differs by
    // at most the distance itself; cosine distance d between normalized
    // keys corresponds to a chord of sqrt(2d), so the cell width must be
    // in chord units or near neighbours land several cells away. A
    // degenerate radius still quantizes (exact duplicates always share
    // every cell). Adaptive probing tunes the width to the *far* radius —
    // a far-edge neighbour then crosses at most a couple of boundaries
    // and the directed probe set can recover it, where near-sized cells
    // scatter it across combinatorially many buckets no budget reaches;
    // fixed probing keeps the legacy near-sized cells.
    const auto span = [&](double d) {
      return cfg_.metric == SimilarityMetric::kCosine ? std::sqrt(2.0 * d)
                                                      : d;
    };
    far_span_ = span(cfg_.far_distance);
    const double tuned =
        cfg_.lsh_adaptive_probe ? far_span_ : span(cfg_.near_distance);
    lsh_cell_width_ = std::max(cfg_.lsh_width_scale * tuned, 1e-9);
    // The per-table bound that compounds to the configured overall one:
    // 1 - (1 - r_table)^tables >= lsh_target_recall.
    table_recall_target_ =
        1.0 - std::pow(1.0 - cfg_.lsh_target_recall,
                       1.0 / static_cast<double>(cfg_.lsh_tables));
  }
  entries_.reserve(cfg_.capacity);
}

double ApproxCache::distance(const std::vector<double>& a,
                             const std::vector<double>& b) const {
  DS_REQUIRE(a.size() == b.size(), "key dimensions differ");
  if (cfg_.metric == SimilarityMetric::kL2) {
    double sq = 0.0;
    for (std::size_t d = 0; d < a.size(); ++d) {
      const double diff = a[d] - b[d];
      sq += diff * diff;
    }
    return std::sqrt(sq);
  }
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t d = 0; d < a.size(); ++d) {
    dot += a[d] * b[d];
    na += a[d] * a[d];
    nb += b[d] * b[d];
  }
  const double denom = std::sqrt(na) * std::sqrt(nb);
  // A degenerate vector has no direction, so it is similar to *nothing*:
  // any finite placeholder (the old 1.0) silently classified it as an
  // approx-far hit whenever far_distance >= 1.
  if (denom <= 1e-12) return std::numeric_limits<double>::infinity();
  return 1.0 - dot / denom;
}

double ApproxCache::approx_step_fraction(double d) const {
  if (!cfg_.interpolate_step_fraction)
    return d <= cfg_.near_distance ? cfg_.near_step_fraction
                                   : cfg_.far_step_fraction;
  // Continuous piecewise-linear through the tier anchors:
  // (exact -> min) -> (near -> near_frac) -> (far -> far_frac).
  const double lo = cfg_.exact_distance;
  const double mid = cfg_.near_distance;
  const double hi = cfg_.far_distance;
  if (d <= lo) return cfg_.min_step_fraction;
  if (d <= mid) {
    if (mid - lo <= 0.0) return cfg_.near_step_fraction;
    const double t = (d - lo) / (mid - lo);
    return cfg_.min_step_fraction +
           t * (cfg_.near_step_fraction - cfg_.min_step_fraction);
  }
  if (hi - mid <= 0.0) return cfg_.far_step_fraction;
  const double t = std::min(1.0, (d - mid) / (hi - mid));
  return cfg_.near_step_fraction +
         t * (cfg_.far_step_fraction - cfg_.near_step_fraction);
}

double ApproxCache::eviction_score(const Entry& e) const {
  return e.last_used +
         cfg_.popularity_weight * std::log1p(static_cast<double>(e.hits));
}

std::uint32_t ApproxCache::level_mask_of(const Entry& e) {
  std::uint32_t mask = 0;
  for (const auto& l : e.levels)
    if (l.stage >= 0 && l.stage < 32) mask |= 1u << l.stage;
  if (e.has_image() && e.stage >= 0 && e.stage < 32) mask |= 1u << e.stage;
  return mask;
}

void ApproxCache::deepest_of(const Entry& e, int& stage, int& tier) {
  stage = -1;
  tier = -1;
  for (const auto& l : e.levels)
    if (l.stage > stage) {
      stage = l.stage;
      tier = l.tier;
    }
  if (e.has_image() && e.stage >= stage) {
    stage = e.stage;
    tier = e.tier;
  }
}

// ---- nearest-neighbour search ----------------------------------------------

std::size_t ApproxCache::nearest_scan(const std::vector<double>& key,
                                      double& best_d) {
  std::size_t best = npos;
  best_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const double d = distance(entries_[i].key, key);
    // Strict < with an in-order scan: ties resolve to the lowest entry
    // index, independent of eviction history.
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

namespace {

/// Standard normal CDF (the neighbour-shift model adaptive probing
/// estimates recall with).
double normal_cdf(double x) {
  return 0.5 * std::erfc(-x * 0.70710678118654752440);
}

/// One candidate ±1-cell perturbation of a single projection, ranked by
/// its projection-space cost (Lv et al.-style query-directed probing).
struct Perturbation {
  double cost = 0.0;   ///< squared distance from the query to the crossed
                       ///< cell boundary — cheap boundaries probe first
  double ratio = 0.0;  ///< P(neighbour lands in the perturbed cell) /
                       ///< P(it stays home) for this projection
  std::uint8_t proj = 0;
  std::int8_t delta = 0;  ///< +1 or -1 cell
};

}  // namespace

std::size_t ApproxCache::nearest_lsh(const std::vector<double>& key,
                                     double& best_d) {
  ensure_planes(key.size());
  std::size_t best = npos;
  best_d = std::numeric_limits<double>::infinity();
  const std::uint64_t epoch = ++lookup_epoch_;
  std::uint64_t probed = 0, candidates = 0;
  auto probe = [&](std::size_t table, std::uint64_t code) {
    ++probed;
    const auto it = buckets_[table].find(code);
    if (it == buckets_[table].end()) return;
    for (const std::size_t idx : it->second) {
      Entry& e = entries_[idx];
      // An entry can share buckets with the query in several tables and
      // probes; compute its distance once per lookup.
      if (e.visit_epoch == epoch) continue;
      e.visit_epoch = epoch;
      ++candidates;
      const double d = distance(e.key, key);
      // Tie-break on the lower entry index — the same winner the in-order
      // scan picks, so the index agrees with the scan whenever the true
      // nearest neighbour lands in a probed bucket.
      if (d < best_d || (d == best_d && idx < best)) {
        best_d = d;
        best = idx;
      }
    }
  };
  const std::size_t k = cfg_.lsh_projections;
  std::int64_t cells[32];
  if (!cfg_.lsh_adaptive_probe) {
    // Legacy fixed probing: the home bucket plus (optionally) every
    // bucket one cell away in a single projection.
    for (std::size_t t = 0; t < cfg_.lsh_tables; ++t) {
      cells_of(t, key, cells);
      probe(t, hash_cells(t, cells));
      if (cfg_.lsh_probe_neighbors) {
        for (std::size_t j = 0; j < k; ++j) {
          ++cells[j];
          probe(t, hash_cells(t, cells));
          cells[j] -= 2;
          probe(t, hash_cells(t, cells));
          ++cells[j];
        }
      }
    }
  } else {
    nearest_lsh_adaptive(key, probe);
  }
  stats_.lsh_probed_cells += probed;
  stats_.lsh_probe_candidates += candidates;
  if (probed > 0) {
    // The yield the budget tuner divides by: how many candidate distance
    // computations one probed cell costs on the current contents.
    const double yield =
        static_cast<double>(candidates) / static_cast<double>(probed);
    probe_yield_ewma_ = 0.9 * probe_yield_ewma_ + 0.1 * yield;
  }
  return best;
}

template <typename ProbeFn>
void ApproxCache::nearest_lsh_adaptive(const std::vector<double>& key,
                                       ProbeFn&& probe) {
  const std::size_t k = cfg_.lsh_projections;
  const double w = lsh_cell_width_;
  // Shift model: a neighbour at far_distance moves each (unit) projection
  // by ~N(0, far_span / sqrt(dim)) — the average-case spread of a fixed
  // direction's share of a randomly oriented difference vector.
  const double sigma =
      std::max(far_span_ / std::sqrt(static_cast<double>(key.size())), 1e-12);
  // Effective per-table probe count: the configured budget is in units of
  // expected candidate evaluations, so divide by the observed
  // candidates-per-probe yield — dense buckets probe less, sparse buckets
  // probe more, and the distance work per lookup stays roughly flat.
  const double denom = std::max(probe_yield_ewma_, 0.5);
  const double scaled =
      static_cast<double>(cfg_.lsh_probe_budget) / denom + 0.5;
  const std::size_t budget = std::min(
      2 * cfg_.lsh_probe_budget,
      std::max(std::min<std::size_t>(2, cfg_.lsh_probe_budget),
               static_cast<std::size_t>(scaled)));

  std::int64_t cells[32], perturbed[32];
  double fracs[32];
  Perturbation perts[64];
  // Member scratch: the expansion frontier is bounded by the iteration
  // cap, so after the first lookup its capacity sticks and the hot path
  // never allocates.
  std::vector<ProbeSet>& frontier = probe_frontier_;
  frontier.reserve(4 * budget + 18);
  for (std::size_t t = 0; t < cfg_.lsh_tables; ++t) {
    cells_of(t, key, cells, fracs);
    // Per-projection landing probabilities of a far_distance neighbour:
    // home cell, one cell up, one cell down.
    double home_prob = 1.0;
    for (std::size_t j = 0; j < k; ++j) {
      const double lo = -fracs[j] * w;        // to the lower boundary
      const double hi = (1.0 - fracs[j]) * w; // to the upper boundary
      const double p0 = normal_cdf(hi / sigma) - normal_cdf(lo / sigma);
      const double up =
          normal_cdf((hi + w) / sigma) - normal_cdf(hi / sigma);
      const double dn =
          normal_cdf(lo / sigma) - normal_cdf((lo - w) / sigma);
      home_prob *= p0;
      const double floor_p = std::max(p0, 1e-12);
      perts[2 * j] = {hi * hi, up / floor_p, static_cast<std::uint8_t>(j),
                      std::int8_t{1}};
      perts[2 * j + 1] = {lo * lo, dn / floor_p,
                          static_cast<std::uint8_t>(j), std::int8_t{-1}};
    }
    probe(t, hash_cells(t, cells));
    double est_recall = home_prob;
    if (est_recall >= table_recall_target_) continue;

    // Cheapest boundaries first; exact ties settled by (proj, delta) so
    // the expansion order is deterministic.
    std::sort(perts, perts + 2 * k,
              [](const Perturbation& a, const Perturbation& b) {
                if (a.cost != b.cost) return a.cost < b.cost;
                if (a.proj != b.proj) return a.proj < b.proj;
                return a.delta < b.delta;
              });
    frontier.clear();
    frontier.push_back({perts[0].cost, 1, 0});
    std::size_t spent = 0;
    // Each iteration pops one set and pushes at most two successors, so
    // the frontier work is O(budget log budget); invalid sets (both
    // directions of one projection) still expand but do not probe.
    for (std::size_t iter = 0;
         spent < budget && est_recall < table_recall_target_ &&
         !frontier.empty() && iter < 4 * budget + 16;
         ++iter) {
      std::pop_heap(frontier.begin(), frontier.end(), probe_set_after);
      const ProbeSet set = frontier.back();
      frontier.pop_back();
      if (set.last + 1u < 2 * k) {
        ProbeSet shift = set;  // swap the highest perturbation for the
        shift.cost += perts[set.last + 1].cost - perts[set.last].cost;
        shift.mask ^= 3ull << set.last;  // next one up the cost order
        ++shift.last;
        frontier.push_back(shift);
        std::push_heap(frontier.begin(), frontier.end(), probe_set_after);
        ProbeSet expand = set;  // or add it on top
        expand.cost += perts[set.last + 1].cost;
        expand.mask |= 2ull << set.last;
        ++expand.last;
        frontier.push_back(expand);
        std::push_heap(frontier.begin(), frontier.end(), probe_set_after);
      }
      // Valid sets perturb distinct projections (+1 and -1 on the same
      // one would be two assignments to one coordinate).
      std::uint32_t seen = 0;
      bool valid = true;
      double set_prob = home_prob;
      for (std::size_t i = 0; i <= set.last; ++i) {
        if (!((set.mask >> i) & 1ull)) continue;
        const std::uint32_t bit = 1u << perts[i].proj;
        if (seen & bit) {
          valid = false;
          break;
        }
        seen |= bit;
        set_prob *= perts[i].ratio;
      }
      if (!valid) continue;
      for (std::size_t j = 0; j < k; ++j) perturbed[j] = cells[j];
      for (std::size_t i = 0; i <= set.last; ++i)
        if ((set.mask >> i) & 1ull)
          perturbed[perts[i].proj] += perts[i].delta;
      probe(t, hash_cells(t, perturbed));
      ++spent;
      est_recall += set_prob;
    }
  }
}

std::size_t ApproxCache::nearest(const std::vector<double>& key,
                                 double& best_d) {
  if (entries_.empty()) {
    best_d = std::numeric_limits<double>::infinity();
    return npos;
  }
  return indexed_ ? nearest_lsh(key, best_d) : nearest_scan(key, best_d);
}

LookupResult ApproxCache::lookup(const std::vector<double>& key, double now) {
  ++stats_.lookups;
  double best_d = 0.0;
  const std::size_t best = nearest(key, best_d);

  LookupResult r;
  // What the non-exact stats sums record: with latent levels and a known
  // chain depth, the fraction a hit saves applies only at the donor's
  // covered stages (the rest run full steps), so the controller-facing
  // number is coverage-weighted; otherwise the raw fraction.
  double recorded_fraction = 1.0;
  if (best != npos && best_d <= cfg_.far_distance) {
    Entry& e = entries_[best];
    r.donor_prompt = e.prompt;
    deepest_of(e, r.donor_stage, r.donor_tier);
    r.distance = best_d;
    r.level_mask = level_mask_of(e);
    if (best_d <= cfg_.exact_distance && e.has_image()) {
      // Only a terminal image can be served as-is; an exact-distance match
      // against a latent-only entry still resumes like an approx hit.
      // What an exact hit serves is the terminal image, whatever the
      // deepest recorded latent happens to be.
      r.level = HitLevel::kExact;
      r.step_fraction = 0.0;
      r.donor_tier = e.tier;
      r.donor_stage = e.stage;
      ++stats_.exact_hits;
    } else {
      r.step_fraction = approx_step_fraction(best_d);
      recorded_fraction = r.step_fraction;
      if (cfg_.latent_levels && cfg_.chain_stages > 0) {
        std::size_t covered = 0;
        for (std::size_t s = 0; s < cfg_.chain_stages && s < 32; ++s)
          if ((r.level_mask >> s) & 1u) ++covered;
        const double n = static_cast<double>(cfg_.chain_stages);
        recorded_fraction =
            (static_cast<double>(covered) * r.step_fraction + (n - covered)) /
            n;
      }
      if (best_d <= cfg_.near_distance) {
        r.level = HitLevel::kApproxNear;
        ++stats_.near_hits;
        stats_.near_step_fraction_sum += recorded_fraction;
      } else {
        r.level = HitLevel::kApproxFar;
        ++stats_.far_hits;
        stats_.far_step_fraction_sum += recorded_fraction;
      }
    }
    ++e.hits;
    e.last_used = now;
    heap_touch(e);  // the hit bump moved the eviction score
  }
  if (r.level != HitLevel::kExact)
    stats_.step_fraction_sum += recorded_fraction;
  return r;
}

std::vector<quality::QueryId> ApproxCache::cached_prompts() const {
  std::vector<quality::QueryId> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.prompt);
  return out;
}

// ---- insertion -------------------------------------------------------------

std::size_t ApproxCache::find_prompt(quality::QueryId prompt) const {
  const auto it = by_prompt_.find(prompt);
  return it == by_prompt_.end() ? npos : it->second;
}

std::size_t ApproxCache::victim_scan() const {
  std::size_t victim = 0;
  double victim_score = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const double s = eviction_score(entries_[i]);
    if (s < victim_score ||
        (s == victim_score && entries_[i].order < entries_[victim].order)) {
      victim_score = s;
      victim = i;
    }
  }
  return victim;
}

std::size_t ApproxCache::victim_heap() {
  // Lazy pops: a pair whose version no longer matches its entry (or whose
  // prompt was evicted outright) was superseded by a later touch — skip
  // it. The newest pair per live entry carries its current score, so the
  // first current-version pop is exactly the scan's (score, order)
  // minimum. The victim's own pair leaves the heap here, which is also
  // its removal from the structure.
  for (;;) {
    DS_CHECK(!heap_.empty(), "eviction heap drained with entries live");
    const HeapItem top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), heap_after);
    heap_.pop_back();
    const auto it = by_prompt_.find(top.prompt);
    if (it == by_prompt_.end() || entries_[it->second].version != top.version) {
      ++stats_.heap_stale_pops;
      continue;
    }
    return it->second;
  }
}

void ApproxCache::heap_touch(Entry& e) {
  if (cfg_.eviction_kind != EvictionKind::kHeap) return;
  // Globally unique stamps: pairs from an evicted incarnation of a
  // re-used prompt can never collide with the live entry's version.
  e.version = ++next_version_;
  heap_.push_back({eviction_score(e), e.order, e.version, e.prompt});
  std::push_heap(heap_.begin(), heap_.end(), heap_after);
  // Compact once stale pairs outnumber live entries: each compaction is
  // O(N) but needs >= N touches to re-arm, so the amortized cost per
  // operation stays O(log N).
  if (heap_.size() > std::max<std::size_t>(64, 2 * entries_.size()))
    heap_compact();
}

void ApproxCache::heap_compact() {
  heap_.clear();
  for (const Entry& e : entries_)
    heap_.push_back({eviction_score(e), e.order, e.version, e.prompt});
  std::make_heap(heap_.begin(), heap_.end(), heap_after);
  ++stats_.heap_compactions;
}

void ApproxCache::evict_one() {
  const std::size_t victim = cfg_.eviction_kind == EvictionKind::kHeap
                                 ? victim_heap()
                                 : victim_scan();
  if (indexed_) index_remove(victim);
  by_prompt_.erase(entries_[victim].prompt);
  const std::size_t last = entries_.size() - 1;
  if (victim != last) {
    if (indexed_) index_move(last, victim);
    by_prompt_[entries_[last].prompt] = victim;
    entries_[victim] = std::move(entries_[last]);
  }
  entries_.pop_back();
  ++stats_.evictions;
}

std::size_t ApproxCache::upsert_entry(quality::QueryId prompt,
                                      const std::vector<double>& key,
                                      double now) {
  std::size_t idx = find_prompt(prompt);
  if (idx != npos) {
    Entry& e = entries_[idx];
    // Refresh the key alongside the entry: a prompt whose style vector has
    // drifted must match against its *current* key, not the one it was
    // first inserted under.
    if (e.key != key) {
      if (indexed_) index_remove(idx);
      e.key = key;
      if (indexed_) {
        ensure_planes(key.size());
        for (std::size_t t = 0; t < cfg_.lsh_tables; ++t)
          e.codes[t] = code_of(t, key);
        index_add(idx);
      }
    }
    e.last_used = now;
    heap_touch(e);
    return idx;
  }
  if (entries_.size() >= cfg_.capacity) evict_one();
  Entry e;
  e.prompt = prompt;
  e.key = key;
  e.last_used = now;
  e.order = next_order_++;
  if (indexed_) {
    ensure_planes(key.size());
    e.codes.resize(cfg_.lsh_tables);
    for (std::size_t t = 0; t < cfg_.lsh_tables; ++t)
      e.codes[t] = code_of(t, key);
  }
  idx = entries_.size();
  entries_.push_back(std::move(e));
  by_prompt_[prompt] = idx;
  if (indexed_) index_add(idx);
  heap_touch(entries_[idx]);
  return idx;
}

void ApproxCache::insert(quality::QueryId prompt, int tier, int stage,
                         const std::vector<double>& key, double now) {
  DS_REQUIRE(tier > 0, "cached images need a diffusion tier");
  const bool existed = find_prompt(prompt) != npos;
  Entry& e = entries_[upsert_entry(prompt, key, now)];
  // Keep the higher-quality terminal image (a deferral may re-serve the
  // same prompt at a heavier tier).
  if (tier >= e.tier) {
    e.tier = tier;
    e.stage = stage;
  }
  if (!existed) ++stats_.insertions;
}

void ApproxCache::insert_latent(quality::QueryId prompt, int tier, int stage,
                                const std::vector<double>& key, double now) {
  DS_REQUIRE(tier > 0, "latents need a diffusion tier");
  DS_REQUIRE(stage >= 0, "latents need a producing stage");
  Entry& e = entries_[upsert_entry(prompt, key, now)];
  for (auto& l : e.levels) {
    if (l.stage == stage) {
      l.tier = std::max(l.tier, tier);
      return;
    }
  }
  LatentLevel level;
  level.stage = stage;
  level.tier = tier;
  // Keep levels ascending by stage (deterministic, and deepest_of /
  // level_mask_of stay order-independent anyway).
  const auto pos = std::find_if(
      e.levels.begin(), e.levels.end(),
      [stage](const LatentLevel& l) { return l.stage > stage; });
  e.levels.insert(pos, level);
  ++stats_.latent_insertions;
}

// ---- LSH index maintenance -------------------------------------------------

void ApproxCache::ensure_planes(std::size_t dim) {
  if (!planes_.empty()) {
    DS_REQUIRE(planes_.front().size() == dim,
               "key dimension changed under the LSH index");
    return;
  }
  DS_REQUIRE(dim >= 1, "empty cache key");
  util::Rng rng(cfg_.lsh_seed);
  planes_.resize(cfg_.lsh_tables * cfg_.lsh_projections);
  plane_offsets_.resize(planes_.size());
  for (std::size_t i = 0; i < planes_.size(); ++i) {
    auto& p = planes_[i];
    p.resize(dim);
    // Unit-normalized direction: an in-radius neighbour's projection then
    // differs by at most the radius's span in key space (the L2 distance,
    // or the chord for cosine), which the cell width is sized against.
    double norm = 0.0;
    for (auto& v : p) {
      v = rng.normal();
      norm += v * v;
    }
    norm = std::sqrt(norm);
    if (norm > 1e-12)
      for (auto& v : p) v /= norm;
    // Random offset decorrelates cell boundaries across projections.
    plane_offsets_[i] = rng.uniform() * lsh_cell_width_;
  }
}

void ApproxCache::cells_of(std::size_t table, const std::vector<double>& key,
                           std::int64_t* cells, double* fracs) const {
  // The cosine metric is magnitude-invariant, so project the direction,
  // not the raw vector — otherwise scaled duplicates (cosine distance 0)
  // land in distant cells and the index misses hits the scan finds. A
  // degenerate vector keeps scale 1; it matches nothing anyway
  // (distance() returns +infinity).
  double scale = 1.0;
  if (cfg_.metric == SimilarityMetric::kCosine) {
    double sq = 0.0;
    for (const double v : key) sq += v * v;
    const double norm = std::sqrt(sq);
    if (norm > 1e-12) scale = 1.0 / norm;
  }
  const std::size_t base = table * cfg_.lsh_projections;
  for (std::size_t j = 0; j < cfg_.lsh_projections; ++j) {
    const auto& plane = planes_[base + j];
    double dot = plane_offsets_[base + j];
    for (std::size_t d = 0; d < key.size(); ++d)
      dot += plane[d] * key[d] * scale;
    const double scaled = dot / lsh_cell_width_;
    cells[j] = static_cast<std::int64_t>(std::floor(scaled));
    if (fracs != nullptr)
      fracs[j] = scaled - static_cast<double>(cells[j]);
  }
}

std::uint64_t ApproxCache::hash_cells(std::size_t table,
                                      const std::int64_t* cells) const {
  std::uint64_t h = 0x9E3779B97F4A7C15ULL * (table + 1);
  for (std::size_t j = 0; j < cfg_.lsh_projections; ++j) {
    std::uint64_t v = static_cast<std::uint64_t>(cells[j]);
    v *= 0xBF58476D1CE4E5B9ULL;
    v ^= v >> 31;
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

std::uint64_t ApproxCache::code_of(std::size_t table,
                                   const std::vector<double>& key) const {
  std::int64_t cells[32];
  cells_of(table, key, cells);
  return hash_cells(table, cells);
}

void ApproxCache::index_add(std::size_t idx) {
  const Entry& e = entries_[idx];
  for (std::size_t t = 0; t < cfg_.lsh_tables; ++t)
    buckets_[t][e.codes[t]].push_back(idx);
}

void ApproxCache::index_remove(std::size_t idx) {
  const Entry& e = entries_[idx];
  for (std::size_t t = 0; t < cfg_.lsh_tables; ++t) {
    auto it = buckets_[t].find(e.codes[t]);
    DS_CHECK(it != buckets_[t].end(), "LSH bucket missing on remove");
    auto& vec = it->second;
    vec.erase(std::find(vec.begin(), vec.end(), idx));
    if (vec.empty()) buckets_[t].erase(it);
  }
}

void ApproxCache::index_move(std::size_t from, std::size_t to) {
  const Entry& e = entries_[from];
  for (std::size_t t = 0; t < cfg_.lsh_tables; ++t) {
    auto& vec = buckets_[t][e.codes[t]];
    *std::find(vec.begin(), vec.end(), from) = to;
  }
}

}  // namespace diffserve::cache
