// Fully connected layer with ReLU option and Adam state.
//
// The discriminator in DiffServe is a small CNN (EfficientNet-V2) operating
// on generated images; in this reproduction images are low-dimensional
// feature vectors, so the matching discriminator architecture is a small
// MLP. The layer implements standard forward/backward passes and holds its
// own Adam moment buffers.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace diffserve::nn {

enum class Activation { kLinear, kRelu };

struct AdamConfig {
  double lr = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
};

class Dense {
 public:
  /// He-initialized weights; `rng` supplies the randomness so training is
  /// reproducible.
  Dense(std::size_t in_dim, std::size_t out_dim, Activation act,
        util::Rng& rng);

  std::size_t in_dim() const { return in_dim_; }
  std::size_t out_dim() const { return out_dim_; }

  /// Forward pass for one sample; caches input and pre-activation for the
  /// subsequent backward call.
  std::vector<double> forward(const std::vector<double>& x);

  /// Inference-only forward: same arithmetic as forward() but touches no
  /// member state, so concurrent calls from engines that do not share a
  /// lock (e.g. shards sharing one trained discriminator) are safe.
  std::vector<double> infer(const std::vector<double>& x) const;

  /// Backward pass: takes dL/d(output), accumulates weight gradients,
  /// returns dL/d(input). Must follow a forward() on the same sample.
  std::vector<double> backward(const std::vector<double>& grad_out);

  void zero_grad();
  /// Adam update with accumulated gradients averaged over `batch_size`.
  void adam_step(const AdamConfig& cfg, std::size_t batch_size);

  /// Number of trainable parameters.
  std::size_t parameter_count() const;

  const linalg::Matrix& weights() const { return w_; }
  const std::vector<double>& bias() const { return b_; }

 private:
  std::size_t in_dim_, out_dim_;
  Activation act_;
  linalg::Matrix w_;      // out x in
  std::vector<double> b_;
  linalg::Matrix gw_;
  std::vector<double> gb_;
  // Adam moments
  linalg::Matrix mw_, vw_;
  std::vector<double> mb_, vb_;
  std::size_t adam_t_ = 0;
  // caches
  std::vector<double> last_input_;
  std::vector<double> last_pre_act_;
};

}  // namespace diffserve::nn
