#include "control/allocator_variants.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace diffserve::control {

namespace {

/// Keep only the grid point closest to `t` so the inner solver has no
/// threshold freedom.
std::vector<discriminator::DeferralProfile::GridPoint> pin_grid(
    const std::vector<discriminator::DeferralProfile::GridPoint>& grid,
    double t) {
  DS_REQUIRE(!grid.empty(), "empty threshold grid");
  const auto best = std::min_element(
      grid.begin(), grid.end(), [t](const auto& a, const auto& b) {
        return std::fabs(a.threshold - t) < std::fabs(b.threshold - t);
      });
  return {*best};
}

}  // namespace

StaticThresholdAllocator::StaticThresholdAllocator(
    std::unique_ptr<Allocator> inner, double fixed_threshold)
    : inner_(std::move(inner)), fixed_threshold_(fixed_threshold) {
  DS_REQUIRE(inner_ != nullptr, "null inner allocator");
  DS_REQUIRE(fixed_threshold >= 0.0 && fixed_threshold <= 1.0,
             "threshold outside [0,1]");
}

AllocationDecision StaticThresholdAllocator::allocate(
    const AllocationInput& input) {
  AllocationInput pinned = input;
  for (auto& grid : pinned.boundary_grids)
    grid = pin_grid(grid, fixed_threshold_);
  return inner_->allocate(pinned);
}

NoQueueModelAllocator::NoQueueModelAllocator(std::unique_ptr<Allocator> inner)
    : inner_(std::move(inner)) {
  DS_REQUIRE(inner_ != nullptr, "null inner allocator");
}

AllocationDecision NoQueueModelAllocator::allocate(
    const AllocationInput& input) {
  // Proteus heuristic: assume the queuing delay equals twice the execution
  // delay of the currently *smallest* profiled batch — implemented by
  // faking the queue observations so littles_law_delay returns 2 * e(b=1)
  // regardless of the real queue.
  AllocationInput faked = input;
  for (auto& s : faked.stages) {
    s.arrival_rate = 1.0;
    s.queue_length = 2.0 * s.perf.execution_latency(s.perf.batch_sizes().front());
  }
  return inner_->allocate(faked);
}

AimdBatchAllocator::AimdBatchAllocator(std::unique_ptr<Allocator> inner,
                                       AimdConfig cfg)
    : inner_(std::move(inner)), cfg_(cfg) {
  DS_REQUIRE(inner_ != nullptr, "null inner allocator");
}

int AimdBatchAllocator::step_up(const std::vector<int>& sizes, int current) {
  for (const int s : sizes)
    if (s > current) return s;
  return sizes.back();
}

int AimdBatchAllocator::step_down(const std::vector<int>& sizes, int current,
                                  double factor) {
  const auto target = static_cast<int>(
      std::floor(static_cast<double>(current) * factor));
  int best = sizes.front();
  for (const int s : sizes)
    if (s <= std::max(target, sizes.front())) best = s;
  return best;
}

AllocationDecision AimdBatchAllocator::allocate(const AllocationInput& input) {
  batches_.resize(input.stage_count(), 1);
  // Reactive batch control per stage: multiplicative decrease on violation
  // signal, additive (next profiled size) increase otherwise.
  for (std::size_t s = 0; s < input.stage_count(); ++s) {
    const auto& sizes = input.stages[s].perf.batch_sizes();
    if (input.recent_violation_ratio > cfg_.violation_trigger) {
      batches_[s] = step_down(sizes, batches_[s], cfg_.decrease_factor);
    } else {
      // Additive increase, but never past a batch whose own execution blows
      // the SLO (Clipper observes the timeout immediately and backs off;
      // skipping the doomed step avoids a deterministic oscillation).
      const int next = step_up(sizes, batches_[s]);
      if (input.stages[s].perf.stage_latency(next) <= input.slo_seconds)
        batches_[s] = next;
    }
  }

  // The inner solver only sees the AIMD-selected batch sizes.
  AllocationInput forced = input;
  for (std::size_t s = 0; s < input.stage_count(); ++s)
    forced.stages[s].perf = StagePerfModel(
        models::LatencyProfile(std::map<int, double>{
            {batches_[s],
             input.stages[s].perf.execution_latency(batches_[s])}}),
        nullptr);
  AllocationDecision out = inner_->allocate(forced);
  out.batches = batches_;
  return out;
}

}  // namespace diffserve::control
