// Tests for the backend-agnostic CascadeEngine: fidelity parity between
// the DES and threaded backends (the paper's §4.3 check, both sides now
// running the same policy code), and AllocationPlan reconfiguration
// semantics (eviction re-routes, reconfigurations counted once per
// applied plan) on both backends.
#include <gtest/gtest.h>

#include <cmath>

#include "control/exhaustive_allocator.hpp"
#include "core/environment.hpp"
#include "core/experiment.hpp"
#include "runtime/threaded_runtime.hpp"
#include "serving/system.hpp"

namespace diffserve::engine {
namespace {

const core::CascadeEnvironment& shared_env() {
  static const core::CascadeEnvironment env = [] {
    core::EnvironmentConfig cfg;
    cfg.workload_queries = 800;
    cfg.discriminator.train_queries = 500;
    cfg.profile_queries = 500;
    return core::CascadeEnvironment(cfg);
  }();
  return env;
}

TEST(EngineParity, DesAndThreadedBackendsAgree) {
  // §4.3: "an average difference of only 0.56% for FID and 1.1% for SLO
  // violations compared to the testbed". Both backends now execute the
  // same CascadeEngine policy, so on a fixed trace with identical arrivals
  // and allocator the only divergence is wall-clock scheduling jitter.
  const auto tr = trace::RateTrace::azure_like(2.0, 8.0, 80.0, 7);

  core::RunConfig sim_cfg;
  sim_cfg.approach = core::Approach::kDiffServeExhaustive;
  sim_cfg.total_workers = 6;
  sim_cfg.trace = tr;
  // run_threaded seeds its demand estimate from the trace start; match it.
  sim_cfg.controller.initial_demand_guess = tr.qps_at(0.0);
  const auto des = core::run_experiment(shared_env(), sim_cfg);

  control::ExhaustiveAllocator alloc;
  runtime::RuntimeConfig rt_cfg;
  rt_cfg.total_workers = 6;
  rt_cfg.time_scale = 30.0;
  const auto threaded = runtime::run_threaded(shared_env(), alloc, tr, rt_cfg);

  ASSERT_GT(des.overall_fid, 0.0);
  ASSERT_GT(threaded.overall_fid, 0.0);
  const double fid_rel_diff =
      std::fabs(des.overall_fid - threaded.overall_fid) / des.overall_fid;
  EXPECT_LT(fid_rel_diff, 0.05);
  EXPECT_LT(std::fabs(des.violation_ratio - threaded.violation_ratio), 0.05);
  // Identical arrival streams on both backends.
  EXPECT_EQ(des.submitted, threaded.submitted);
}

TEST(EngineEquivalence, ChainRegistrationMatchesPairRegistration) {
  // The N-stage generalization must make N=2 a pure special case: the same
  // two-model cascade registered through the explicit chain form
  // (cascade1-chain) reproduces the pair-registered cascade1 metrics
  // *exactly* — FID, SLO violations, reconfiguration count, and every
  // terminal count — on a fixed trace.
  core::EnvironmentConfig chain_cfg;
  chain_cfg.cascade = models::catalog::kCascade1Chain;
  chain_cfg.workload_queries = 800;
  chain_cfg.discriminator.train_queries = 500;
  chain_cfg.profile_queries = 500;
  const core::CascadeEnvironment chain_env(chain_cfg);

  const auto tr = trace::RateTrace::azure_like(2.0, 8.0, 80.0, 7);
  core::RunConfig rc;
  rc.approach = core::Approach::kDiffServeExhaustive;
  rc.total_workers = 6;
  rc.trace = tr;
  rc.controller.initial_demand_guess = tr.qps_at(0.0);

  const auto pair_run = core::run_experiment(shared_env(), rc);
  const auto chain_run = core::run_experiment(chain_env, rc);

  EXPECT_EQ(pair_run.overall_fid, chain_run.overall_fid);
  EXPECT_EQ(pair_run.violation_ratio, chain_run.violation_ratio);
  EXPECT_EQ(pair_run.mean_latency, chain_run.mean_latency);
  EXPECT_EQ(pair_run.light_served_fraction, chain_run.light_served_fraction);
  EXPECT_EQ(pair_run.submitted, chain_run.submitted);
  EXPECT_EQ(pair_run.completed, chain_run.completed);
  EXPECT_EQ(pair_run.dropped, chain_run.dropped);
  EXPECT_EQ(pair_run.reconfigurations, chain_run.reconfigurations);
}

TEST(EngineEquivalence, DisabledCacheIsByteIdentical) {
  // The reuse cache must be a pure switch: with cache.enabled == false,
  // every other cache/prompt-mix knob in the config is dead state and the
  // run reproduces the default configuration *exactly* — FID, SLO
  // violations, latency, and every terminal count.
  const auto tr = trace::RateTrace::azure_like(2.0, 8.0, 80.0, 7);
  core::RunConfig rc;
  rc.approach = core::Approach::kDiffServeExhaustive;
  rc.total_workers = 6;
  rc.trace = tr;
  rc.controller.initial_demand_guess = tr.qps_at(0.0);
  const auto plain = core::run_experiment(shared_env(), rc);

  core::RunConfig off = rc;
  off.system.cache.enabled = false;  // the switch under test
  off.system.cache.capacity = 8;     // aggressive dead knobs
  off.system.cache.near_distance = 50.0;
  off.system.cache.far_distance = 50.0;
  off.system.cache.hit_latency = 0.5;
  off.system.cache.interpolate_step_fraction = true;
  off.system.cache.latent_levels = true;
  off.system.cache.index_kind = cache::IndexKind::kLsh;
  const auto gated = core::run_experiment(shared_env(), off);

  EXPECT_EQ(plain.overall_fid, gated.overall_fid);
  EXPECT_EQ(plain.violation_ratio, gated.violation_ratio);
  EXPECT_EQ(plain.mean_latency, gated.mean_latency);
  EXPECT_EQ(plain.light_served_fraction, gated.light_served_fraction);
  EXPECT_EQ(plain.submitted, gated.submitted);
  EXPECT_EQ(plain.completed, gated.completed);
  EXPECT_EQ(plain.dropped, gated.dropped);
  EXPECT_EQ(plain.reconfigurations, gated.reconfigurations);
  EXPECT_EQ(gated.cache_hit_ratio, 0.0);
}

TEST(EngineEquivalence, DisabledSloClassesIsByteIdentical) {
  // SLO classes must be a pure switch: with slo_classes.enabled == false,
  // every other class knob (multipliers, queue capacities, weights, the
  // class mix itself) is dead state and the run reproduces the default
  // configuration *exactly*.
  const auto tr = trace::RateTrace::azure_like(2.0, 8.0, 80.0, 7);
  core::RunConfig rc;
  rc.approach = core::Approach::kDiffServeExhaustive;
  rc.total_workers = 6;
  rc.trace = tr;
  rc.controller.initial_demand_guess = tr.qps_at(0.0);
  const auto plain = core::run_experiment(shared_env(), rc);

  core::RunConfig off = rc;
  off.system.slo_classes.enabled = false;  // the switch under test
  off.system.slo_classes.deadline_multiplier = {0.1, 0.5, 100.0};
  off.system.slo_classes.queue_capacity = {1, 2, 3};  // aggressive dead knobs
  off.system.slo_classes.slo_weight = {100.0, 1.0, 0.01};
  off.system.slo_classes.class_aware_scheduling = true;
  off.system.prompt_mix.interactive_share = 0.4;
  off.system.prompt_mix.batch_share = 0.4;
  const auto gated = core::run_experiment(shared_env(), off);

  EXPECT_EQ(plain.overall_fid, gated.overall_fid);
  EXPECT_EQ(plain.violation_ratio, gated.violation_ratio);
  EXPECT_EQ(plain.mean_latency, gated.mean_latency);
  EXPECT_EQ(plain.light_served_fraction, gated.light_served_fraction);
  EXPECT_EQ(plain.submitted, gated.submitted);
  EXPECT_EQ(plain.completed, gated.completed);
  EXPECT_EQ(plain.dropped, gated.dropped);
  EXPECT_EQ(plain.reconfigurations, gated.reconfigurations);
  // With classes off every terminal lands in the kStandard row.
  EXPECT_EQ(gated.class_completed[1], gated.completed);
  EXPECT_EQ(gated.class_completed[0] + gated.class_completed[2], 0u);
}

TEST(EngineParity, ThreeClassMixDesAndThreadedAgree) {
  // §4.3 fidelity methodology extended to classed traffic: the same
  // 3-class mix replayed through both backends agrees per class, not just
  // in aggregate.
  const auto tr = trace::RateTrace::azure_like(2.0, 8.0, 80.0, 7);
  SloClassConfig classes;
  classes.enabled = true;
  trace::PromptMixConfig mix;
  mix.interactive_share = 0.3;
  mix.batch_share = 0.3;

  core::RunConfig sim_cfg;
  sim_cfg.approach = core::Approach::kDiffServeExhaustive;
  sim_cfg.total_workers = 6;
  sim_cfg.trace = tr;
  sim_cfg.controller.initial_demand_guess = tr.qps_at(0.0);
  sim_cfg.system.slo_classes = classes;
  sim_cfg.system.prompt_mix = mix;
  const auto des = core::run_experiment(shared_env(), sim_cfg);

  control::ExhaustiveAllocator alloc;
  runtime::RuntimeConfig rt_cfg;
  rt_cfg.total_workers = 6;
  rt_cfg.time_scale = 30.0;
  rt_cfg.slo_classes = classes;
  rt_cfg.prompt_mix = mix;
  const auto threaded = runtime::run_threaded(shared_env(), alloc, tr, rt_cfg);

  ASSERT_GT(des.overall_fid, 0.0);
  ASSERT_GT(threaded.overall_fid, 0.0);
  const double fid_rel_diff =
      std::fabs(des.overall_fid - threaded.overall_fid) / des.overall_fid;
  EXPECT_LT(fid_rel_diff, 0.05);
  EXPECT_EQ(des.submitted, threaded.submitted);
  for (std::size_t c = 0; c < kQueryClassCount; ++c) {
    SCOPED_TRACE(to_string(static_cast<QueryClass>(c)));
    // Identical class streams on both backends (same sampler seed), so
    // the per-class populations match exactly and the per-class SLO
    // outcomes differ only by wall-clock scheduling jitter.
    EXPECT_EQ(des.class_completed[c] + des.class_dropped[c],
              threaded.class_completed[c] + threaded.class_dropped[c]);
    EXPECT_LT(std::fabs(des.class_violation_ratio[c] -
                        threaded.class_violation_ratio[c]),
              0.05);
  }
  // The mix actually produced all three classes.
  for (std::size_t c = 0; c < kQueryClassCount; ++c)
    EXPECT_GT(des.class_completed[c] + des.class_dropped[c], 0u);
}

TEST(EngineReconfig, DesEvictionReroutesAndCountsOncePerPlan) {
  const auto& env = shared_env();
  sim::Simulation sim;
  serving::SystemConfig cfg;
  cfg.total_workers = 4;
  cfg.slo_seconds = 20.0;
  cfg.model_load_delay = 0.5;
  serving::ServingSystem system(sim, env.workload(), env.repository(),
                                env.cascade(), &env.disc(), env.scorer(),
                                cfg);

  serving::AllocationPlan a;
  a.light_workers() = 3;
  a.heavy_workers() = 1;
  a.threshold() = 0.4;
  system.apply(a);
  EXPECT_EQ(system.engine().reconfigurations(), 1u);  // initial load
  system.apply(a);
  // Re-applying an identical plan changes no hosted model: not counted.
  EXPECT_EQ(system.engine().reconfigurations(), 1u);

  // Queue load while the workers are still loading, then flip the split:
  // queued queries on flipped workers are evicted and must be re-routed.
  std::vector<double> arrivals;
  for (int i = 0; i < 24; ++i) arrivals.push_back(0.05 * i);
  system.inject_arrivals(arrivals);
  sim.schedule_at(0.8, [&] {
    serving::AllocationPlan b = a;
    b.light_workers() = 1;
    b.heavy_workers() = 3;
    system.apply(b);
  });
  sim.run_until(80.0);
  sim.run_all();

  EXPECT_EQ(system.engine().reconfigurations(), 2u);  // one per applied plan
  // Evicted queries were re-routed, not dropped: every arrival terminated.
  EXPECT_EQ(system.sink().total(), 24u);
  EXPECT_GT(system.sink().completed(), 0u);
}

/// Scripted allocator: plan A for the first `flip_after` ticks, plan B
/// afterwards — makes the expected reconfiguration count exact.
class FlipAllocator final : public control::Allocator {
 public:
  explicit FlipAllocator(int flip_after) : flip_after_(flip_after) {}
  control::AllocationDecision allocate(
      const control::AllocationInput&) override {
    control::AllocationDecision d;
    d.feasible = true;
    d.light_batch() = 1;
    d.heavy_batch() = 1;
    d.threshold() = 0.4;
    const bool flipped = ticks_++ >= flip_after_;
    d.light_workers() = flipped ? 1 : 3;
    d.heavy_workers() = flipped ? 3 : 1;
    return d;
  }
  std::string name() const override { return "flip"; }

 private:
  int flip_after_;
  int ticks_ = 0;
};

TEST(EngineReconfig, ThreadedEvictionReroutesAndCountsOncePerPlan) {
  const auto tr = trace::RateTrace::constant(3.0, 30.0);
  FlipAllocator alloc(/*flip_after=*/3);  // flip at the 4th control tick
  runtime::RuntimeConfig cfg;
  cfg.total_workers = 4;
  cfg.time_scale = 40.0;
  const auto r = runtime::run_threaded(shared_env(), alloc, tr, cfg);

  // Initial plan + one flip; repeated identical plans are not counted.
  EXPECT_EQ(r.reconfigurations, 2u);
  EXPECT_GT(r.submitted, 50u);
  // Evicted queries were re-routed: everything terminates (small in-flight
  // slack can remain at shutdown).
  EXPECT_GE(r.completed + r.dropped + 5, r.submitted);
}

}  // namespace
}  // namespace diffserve::engine
