#include "control/controller.hpp"

#include "util/check.hpp"
#include "util/log.hpp"

namespace diffserve::control {

Controller::Controller(engine::CascadeEngine& engine,
                       std::unique_ptr<Allocator> allocator,
                       discriminator::DeferralProfile offline_profile,
                       ControllerConfig cfg)
    : engine_(engine),
      allocator_(std::move(allocator)),
      profile_(std::move(offline_profile), cfg.online_profile_capacity),
      cfg_(cfg),
      demand_holt_(cfg.ewma_alpha, cfg.trend_beta) {
  DS_REQUIRE(allocator_ != nullptr, "controller needs an allocator");
  DS_REQUIRE(cfg_.period_seconds > 0.0, "control period must be positive");
  // Feed every data-path confidence into the online deferral profile.
  engine_.set_confidence_observer([this](double c) {
    std::lock_guard<std::mutex> lock(profile_mu_);
    profile_.observe(c);
  });
}

void Controller::start() {
  if (cfg_.initial_demand_guess > 0.0)
    demand_holt_.observe(cfg_.initial_demand_guess);
  running_.store(true);
  next_tick_time_ = engine_.backend().now();
  tick();  // provision immediately rather than serving blind for a period
  schedule_next_tick();
}

void Controller::stop() {
  running_.store(false);
  std::lock_guard<std::mutex> lock(tick_mu_);
  if (tick_handle_.valid()) engine_.backend().cancel(tick_handle_);
  tick_handle_ = {};
}

void Controller::schedule_next_tick() {
  // Anchor ticks to absolute times so allocator solve time does not
  // stretch the control period on wall-clock backends (the DES executes
  // ticks in zero simulated time, so both backends tick at t0 + k*period).
  next_tick_time_ += cfg_.period_seconds;
  const double delay = next_tick_time_ - engine_.backend().now();
  const auto handle = engine_.backend().defer(delay, [this] {
    if (!running_.load()) return;
    tick();
    schedule_next_tick();
  });
  std::lock_guard<std::mutex> lock(tick_mu_);
  tick_handle_ = handle;
}

AllocationInput Controller::snapshot_input() const {
  AllocationInput in;
  // Forecast past the observation + actuation lag so ramps are covered.
  in.demand_qps = demand_holt_.forecast(cfg_.forecast_horizon_periods);
  in.over_provision = cfg_.over_provision;
  in.slo_seconds = engine_.config().slo_seconds;
  in.total_workers = engine_.config().total_workers;

  const auto light = engine_.light_stats();
  const auto heavy = engine_.heavy_stats();
  in.light_queue_length = light.total_queue_length;
  in.light_arrival_rate = light.arrival_rate;
  in.heavy_queue_length = heavy.total_queue_length;
  in.heavy_arrival_rate = heavy.arrival_rate;
  in.recent_violation_ratio = engine_.recent_violation_ratio();
  {
    std::lock_guard<std::mutex> lock(profile_mu_);
    in.threshold_grid = profile_.grid(cfg_.threshold_grid_points,
                                      cfg_.max_deferral_fraction);
  }

  // Stage performance models from the engine's §3.3 latency math (single
  // source of truth for both backends).
  std::map<int, double> light_lat, heavy_lat;
  for (const int b : models::standard_batch_sizes()) {
    light_lat[b] = engine_.light_exec_latency(b);
    heavy_lat[b] = engine_.heavy_exec_latency(b);
  }
  in.light =
      StagePerfModel(models::LatencyProfile(std::move(light_lat)), nullptr);
  in.heavy =
      StagePerfModel(models::LatencyProfile(std::move(heavy_lat)), nullptr);
  return in;
}

void Controller::tick() {
  const double now = engine_.backend().now();
  const double observed = engine_.demand_rate();
  // The first tick fires before any arrivals; folding its empty-window
  // observation into the estimate would decay the initial demand guess
  // (and, on a wall-clock backend, `now` is never exactly 0).
  if (!first_tick_) demand_holt_.observe(observed);
  first_tick_ = false;

  const AllocationInput in = snapshot_input();
  const AllocationDecision d = allocator_->allocate(in);
  apply_decision(d);

  history_.push_back({now, in.demand_qps, observed,
                      in.recent_violation_ratio, d});
  DS_LOG_DEBUG("controller")
      << "t=" << now << " demand=" << in.demand_qps
      << " x1=" << d.light_workers << " x2=" << d.heavy_workers
      << " b1=" << d.light_batch << " b2=" << d.heavy_batch
      << " thr=" << d.threshold << (d.feasible ? "" : " (overload)");
}

void Controller::apply_decision(const AllocationDecision& d) {
  engine::AllocationPlan plan;
  plan.mode = d.direct_mode ? engine::RoutingMode::kDirect
                            : engine::RoutingMode::kCascade;
  plan.light_workers = d.light_workers;
  plan.heavy_workers = d.heavy_workers;
  plan.light_batch = d.light_batch;
  plan.heavy_batch = d.heavy_batch;
  plan.threshold = d.threshold;
  plan.p_heavy = d.p_heavy;
  engine_.apply(plan);
}

}  // namespace diffserve::control
