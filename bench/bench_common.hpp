// Shared helpers for the figure-reproduction bench binaries: consistent
// stdout tables plus CSV output next to the binary so plots can be
// regenerated without re-running, machine-readable JSON metric dumps
// (bench_results/BENCH_<name>.json) so the perf trajectory is trackable
// across PRs, environment construction, and the timeline/summary row
// boilerplate every figure main repeats.
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "core/environment.hpp"
#include "core/experiment.hpp"
#include "util/csv.hpp"

namespace diffserve::bench {

inline std::string results_dir() {
  const std::string dir = "bench_results";
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

inline std::string csv_path(const std::string& name) {
  return results_dir() + "/" + name + ".csv";
}

inline void banner(const char* figure, const char* caption) {
  std::printf("\n=== %s — %s ===\n", figure, caption);
}

/// Environment with the given evaluation-set size over a catalog cascade
/// (defaults to the paper's Cascade 1).
inline core::CascadeEnvironment make_env(
    std::size_t workload_queries,
    const std::string& cascade = models::catalog::kCascade1) {
  core::EnvironmentConfig ec;
  ec.cascade = cascade;
  ec.workload_queries = workload_queries;
  return core::CascadeEnvironment(ec);
}

/// Aligned stdout table mirrored row-for-row into a CSV file, plus a flat
/// machine-readable metric map written to bench_results/BENCH_<name>.json
/// on destruction (key "<first cell>.<column>" for every numeric cell,
/// plus any explicit metric() calls) so CI and cross-PR tooling can track
/// the numbers without parsing tables. Prints the `[csv]`/`[json]` path
/// footers on destruction. Keeps figure mains declarative: construct with
/// the columns, call row() per experiment.
class ReportTable {
 public:
  ReportTable(const std::string& csv_name, std::vector<std::string> columns,
              std::vector<int> widths = {})
      : csv_(csv_path(csv_name), columns),
        json_path_(results_dir() + "/BENCH_" + csv_name + ".json"),
        columns_(columns),
        widths_(std::move(widths)) {
    if (widths_.empty())
      for (const auto& c : columns)
        widths_.push_back(static_cast<int>(c.size()) + 4 < 10
                              ? 10
                              : static_cast<int>(c.size()) + 4);
    for (std::size_t i = 0; i < columns.size(); ++i)
      std::printf("%-*s ", widths_[i], columns[i].c_str());
    std::printf("\n");
  }
  ~ReportTable() {
    write_json();
    std::printf("[csv] %s\n", csv_.path().c_str());
    std::printf("[json] %s\n", json_path_.c_str());
  }

  void row(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      std::printf("%-*s ", widths_[i], cells[i].c_str());
    std::printf("\n");
    csv_.add_row(cells);
    // Numeric cells become "<row label>.<column>" metrics.
    for (std::size_t i = 1; i < cells.size() && i < columns_.size(); ++i) {
      char* end = nullptr;
      errno = 0;
      const double v = std::strtod(cells[i].c_str(), &end);
      if (errno == 0 && end != cells[i].c_str() && *end == '\0')
        metric(cells[0] + "." + columns_[i], v);
    }
  }
  void row(const std::vector<double>& cells) {
    std::vector<std::string> formatted;
    formatted.reserve(cells.size());
    for (const double v : cells) formatted.push_back(fmt(v));
    row(formatted);
  }

  /// Record an explicit metric -> value pair for the JSON dump (rows
  /// record their numeric cells automatically). Re-recording a key keeps
  /// the latest value.
  void metric(const std::string& name, double value) {
    for (auto& m : metrics_)
      if (m.first == name) {
        m.second = value;
        return;
      }
    metrics_.emplace_back(name, value);
  }

  /// Compact cell formatting (shorter than CsvWriter's lossless format —
  /// these cells also render in the stdout table).
  static std::string fmt(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4g", v);
    return buf;
  }

  util::CsvWriter& csv() { return csv_; }

 private:
  static std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20)
        continue;  // metric names never need control characters
      out.push_back(c);
    }
    return out;
  }

  void write_json() const {
    std::ofstream out(json_path_);
    if (!out) return;
    out << "{\n";
    for (std::size_t i = 0; i < metrics_.size(); ++i)
      out << "  \"" << json_escape(metrics_[i].first)
          << "\": " << util::CsvWriter::format(metrics_[i].second)
          << (i + 1 < metrics_.size() ? ",\n" : "\n");
    out << "}\n";
  }

  util::CsvWriter csv_;
  std::string json_path_;
  std::vector<std::string> columns_;
  std::vector<int> widths_;
  std::vector<std::pair<std::string, double>> metrics_;
};

/// The one-line summary every comparison figure prints per experiment:
/// approach, FID, violation ratio, mean latency, light-served share.
inline const std::vector<std::string>& summary_columns() {
  static const std::vector<std::string> cols = {
      "approach", "fid", "violation_ratio", "mean_latency", "light_pct"};
  return cols;
}

inline std::vector<std::string> summary_cells(
    const core::ExperimentResult& r) {
  return {r.approach, ReportTable::fmt(r.overall_fid),
          ReportTable::fmt(r.violation_ratio),
          ReportTable::fmt(r.mean_latency),
          ReportTable::fmt(100.0 * r.light_served_fraction)};
}

/// Timeline rows (Figure 5/8 shape): per window time, demand, FID,
/// violation ratio, and the threshold sampled from the nearest control
/// snapshot at or before the window.
inline void add_timeline_rows(util::CsvWriter& csv,
                              const core::ExperimentResult& r,
                              const trace::RateTrace& tr) {
  for (const auto& pt : r.timeline) {
    double threshold = 0.0;
    for (const auto& h : r.control_history)
      if (h.time <= pt.time) threshold = h.decision.threshold();
    csv.add_row(std::vector<std::string>{
        r.approach, util::CsvWriter::format(pt.time),
        util::CsvWriter::format(tr.qps_at(pt.time)),
        util::CsvWriter::format(pt.fid),
        util::CsvWriter::format(pt.violation_ratio),
        util::CsvWriter::format(threshold)});
  }
}

}  // namespace diffserve::bench
