// Model variant registry and the paper's cascade definitions.
//
// "The Model Repository manages the registration of diffusion model
// variants and hosts these registered variants, along with the
// discriminators used to cascade between them" (§3.1). The built-in
// catalog carries the paper's measured A100 latencies:
//   SD-Turbo 0.1 s, SDv1.5 1.78 s, SDXS 0.05 s, SDXL-Lightning 0.5 s,
//   SDXL 6 s; discriminators EfficientNet 10 ms, ResNet 2 ms, ViT 5 ms.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "models/latency_profile.hpp"

namespace diffserve::models {

enum class ModelKind { kDiffusion, kDiscriminator };

struct ModelVariant {
  std::string name;
  ModelKind kind = ModelKind::kDiffusion;
  LatencyProfile latency;
  /// Quality tier consumed by the quality model: larger means a heavier,
  /// higher-fidelity generator (0 reserved for discriminators).
  int quality_tier = 0;
  /// Output resolution (512 or 1024 in the paper); informational.
  int resolution = 512;
};

/// An ordered diffusion model chain (lightest first) plus the per-boundary
/// discriminators that gate deferral between adjacent stages, and the SLO —
/// the unit the serving system deploys.
///
/// Two registration forms are accepted:
///   * legacy pair — fill `light_model`/`heavy_model`/`discriminator`
///     (chain left empty); normalization expands them into a 2-stage chain.
///   * chain — fill `chain` (1..N models, lightest first) and
///     `discriminators` (one per boundary; a single entry is replicated
///     across all boundaries). `light_model`/`heavy_model` are synced to
///     chain.front()/chain.back() so two-stage call sites keep working.
struct CascadeSpec {
  std::string name;
  std::string light_model;
  std::string heavy_model;
  std::string discriminator;
  double slo_seconds = 5.0;
  /// Full stage list, lightest first. Empty = derive from the pair fields.
  std::vector<std::string> chain;
  /// Discriminator per boundary (boundary i gates stage i -> i+1). Empty =
  /// replicate `discriminator`; a single entry is replicated likewise.
  std::vector<std::string> discriminators;

  /// Expand the legacy pair fields into chain form (idempotent).
  void normalize();
  std::size_t stage_count() const {
    return chain.empty() ? 2 : chain.size();
  }
  std::size_t boundary_count() const { return stage_count() - 1; }
  /// Model name of stage s (requires a normalized spec when chain is used).
  const std::string& stage_model(std::size_t s) const;
  /// Discriminator gating stage b -> b+1 (normalized spec).
  const std::string& boundary_discriminator(std::size_t b) const;
};

class ModelRepository {
 public:
  /// Empty repository (register your own variants).
  ModelRepository() = default;

  /// Repository preloaded with the paper's five diffusion variants, three
  /// discriminator backbones, and Cascades 1-3.
  static ModelRepository with_paper_catalog();

  void register_model(ModelVariant variant);
  void register_cascade(CascadeSpec cascade);

  bool has_model(const std::string& name) const;
  const ModelVariant& model(const std::string& name) const;
  const CascadeSpec& cascade(const std::string& name) const;
  std::vector<std::string> model_names() const;
  std::vector<std::string> cascade_names() const;

 private:
  std::unordered_map<std::string, ModelVariant> models_;
  std::unordered_map<std::string, CascadeSpec> cascades_;
};

/// Names used by the built-in catalog.
namespace catalog {
inline constexpr const char* kSdTurbo = "sd-turbo";
inline constexpr const char* kSdV15 = "sd-v1.5";
inline constexpr const char* kSdxs = "sdxs";
inline constexpr const char* kSdxlLightning = "sdxl-lightning";
inline constexpr const char* kSdxl = "sdxl";
inline constexpr const char* kEfficientNet = "efficientnet-v2";
inline constexpr const char* kResNet = "resnet-34";
inline constexpr const char* kViT = "vit-b16";
inline constexpr const char* kCascade1 = "cascade1-sdturbo-sdv15";
inline constexpr const char* kCascade2 = "cascade2-sdxs-sdv15";
inline constexpr const char* kCascade3 = "cascade3-sdxlltn-sdxl";
/// Cascade 1 registered through the explicit chain form — byte-identical
/// deployment, used to assert the N=2 chain path matches the pair path.
inline constexpr const char* kCascade1Chain = "cascade1-chain";
/// Three-stage chain: SDXS (tiny) -> SD-Turbo (base) -> SDv1.5 (large),
/// with a discriminator at each boundary.
inline constexpr const char* kChain3 = "chain3-sdxs-sdturbo-sdv15";
/// Single-model "chain" (no cascading) — the depth-1 end of the Figure 10
/// depth sweep.
inline constexpr const char* kSoloHeavy = "solo-sdv15";
}  // namespace catalog

}  // namespace diffserve::models
