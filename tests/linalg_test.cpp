// Tests for linalg: matrix algebra, eigendecomposition, PSD square roots,
// and the Fréchet (FID) distance, including closed-form cross-checks and
// parameterized property sweeps on random matrices.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/eigen.hpp"
#include "linalg/gaussian.hpp"
#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace diffserve::linalg {
namespace {

Matrix random_spd(std::size_t n, util::Rng& rng, double jitter = 0.5) {
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
  Matrix spd = a * a.transpose();
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += jitter;
  return spd;
}

TEST(Matrix, IdentityAndDiag) {
  const auto eye = Matrix::identity(3);
  EXPECT_EQ(eye(0, 0), 1.0);
  EXPECT_EQ(eye(0, 1), 0.0);
  const auto d = Matrix::diag({1.0, 2.0});
  EXPECT_EQ(d(1, 1), 2.0);
  EXPECT_EQ(d.trace(), 3.0);
}

TEST(Matrix, MultiplicationMatchesHandComputation) {
  const Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b = {{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = a * b;
  EXPECT_EQ(c(0, 0), 19.0);
  EXPECT_EQ(c(0, 1), 22.0);
  EXPECT_EQ(c(1, 0), 43.0);
  EXPECT_EQ(c(1, 1), 50.0);
}

TEST(Matrix, TransposeInvolution) {
  const Matrix a = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  EXPECT_EQ(Matrix::max_abs_diff(a.transpose().transpose(), a), 0.0);
}

TEST(Matrix, ApplyMatchesProduct) {
  const Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  const auto y = a.apply({1.0, 1.0});
  EXPECT_EQ(y[0], 3.0);
  EXPECT_EQ(y[1], 7.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
  EXPECT_THROW(a.trace(), std::invalid_argument);
  EXPECT_THROW(a.apply({1.0}), std::invalid_argument);
}

TEST(Matrix, CholeskyReconstructs) {
  util::Rng rng(3);
  const Matrix a = random_spd(5, rng);
  const Matrix l = a.cholesky();
  EXPECT_LT(Matrix::max_abs_diff(l * l.transpose(), a), 1e-9);
  // Lower triangular.
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = i + 1; j < 5; ++j) EXPECT_EQ(l(i, j), 0.0);
}

TEST(Matrix, CholeskyRejectsIndefinite) {
  const Matrix notpd = {{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_THROW(notpd.cholesky(), std::invalid_argument);
}

TEST(Eigen, DiagonalMatrixHasItsEntries) {
  const auto d = Matrix::diag({3.0, 1.0, 2.0});
  const auto eig = eigen_symmetric(d);
  EXPECT_NEAR(eig.values[0], 1.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 2.0, 1e-12);
  EXPECT_NEAR(eig.values[2], 3.0, 1e-12);
}

TEST(Eigen, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  const Matrix a = {{2.0, 1.0}, {1.0, 2.0}};
  const auto eig = eigen_symmetric(a);
  EXPECT_NEAR(eig.values[0], 1.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 3.0, 1e-10);
}

TEST(Eigen, RejectsNonSymmetric) {
  const Matrix a = {{1.0, 2.0}, {0.0, 1.0}};
  EXPECT_THROW(eigen_symmetric(a), std::invalid_argument);
}

class EigenProperty : public ::testing::TestWithParam<int> {};

TEST_P(EigenProperty, ReconstructionAndOrthogonality) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 2 + static_cast<std::size_t>(GetParam()) % 7;
  const Matrix a = random_spd(n, rng);
  const auto eig = eigen_symmetric(a);
  // V diag(lambda) V^T == A
  const Matrix recon =
      eig.vectors * Matrix::diag(eig.values) * eig.vectors.transpose();
  EXPECT_LT(Matrix::max_abs_diff(recon, a), 1e-8);
  // V^T V == I
  const Matrix vtv = eig.vectors.transpose() * eig.vectors;
  EXPECT_LT(Matrix::max_abs_diff(vtv, Matrix::identity(n)), 1e-9);
  // ascending order
  for (std::size_t i = 1; i < n; ++i)
    EXPECT_LE(eig.values[i - 1], eig.values[i] + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(RandomSpd, EigenProperty,
                         ::testing::Range(0, 12));

TEST(Sqrtm, SquaresBackToInput) {
  util::Rng rng(5);
  const Matrix a = random_spd(6, rng);
  const Matrix r = sqrtm_psd(a);
  EXPECT_LT(Matrix::max_abs_diff(r * r, a), 1e-8);
  EXPECT_TRUE(r.is_symmetric(1e-9));
}

TEST(Sqrtm, IdentityRoot) {
  const Matrix r = sqrtm_psd(Matrix::identity(4));
  EXPECT_LT(Matrix::max_abs_diff(r, Matrix::identity(4)), 1e-10);
}

TEST(Sqrtm, ClampsTinyNegativeEigenvalues) {
  Matrix nearly_psd = Matrix::diag({1.0, -1e-12});
  EXPECT_NO_THROW(sqrtm_psd(nearly_psd));
}

TEST(Sqrtm, RejectsClearlyNegative) {
  EXPECT_THROW(sqrtm_psd(Matrix::diag({1.0, -0.5})),
               std::invalid_argument);
}

TEST(Gaussian, FitRecoversMeanAndCovariance) {
  util::Rng rng(9);
  std::vector<std::vector<double>> samples;
  for (int i = 0; i < 60000; ++i)
    samples.push_back({rng.normal(1.0, 2.0), rng.normal(-1.0, 0.5)});
  const auto g = fit_gaussian(samples);
  EXPECT_NEAR(g.mean[0], 1.0, 0.05);
  EXPECT_NEAR(g.mean[1], -1.0, 0.05);
  EXPECT_NEAR(g.covariance(0, 0), 4.0, 0.1);
  EXPECT_NEAR(g.covariance(1, 1), 0.25, 0.02);
  EXPECT_NEAR(g.covariance(0, 1), 0.0, 0.05);
}

TEST(Gaussian, FrechetOfIdenticalIsZero) {
  GaussianStats g;
  g.mean = {1.0, 2.0};
  g.covariance = {{2.0, 0.3}, {0.3, 1.0}};
  EXPECT_NEAR(frechet_distance_sq(g, g), 0.0, 1e-9);
}

TEST(Gaussian, FrechetMeanOnlyShiftIsSquaredDistance) {
  GaussianStats a, b;
  a.mean = {0.0, 0.0};
  b.mean = {3.0, 4.0};
  a.covariance = Matrix::identity(2);
  b.covariance = Matrix::identity(2);
  EXPECT_NEAR(frechet_distance_sq(a, b), 25.0, 1e-9);
}

TEST(Gaussian, FrechetIsotropicClosedForm) {
  // For N(0, s1^2 I) vs N(0, s2^2 I) in dim d: d * (s1 - s2)^2.
  GaussianStats a, b;
  a.mean = {0.0, 0.0, 0.0};
  b.mean = {0.0, 0.0, 0.0};
  a.covariance = Matrix::identity(3) * 4.0;   // s1 = 2
  b.covariance = Matrix::identity(3) * 1.0;   // s2 = 1
  EXPECT_NEAR(frechet_distance_sq(a, b), 3.0 * 1.0, 1e-8);
}

TEST(Gaussian, FrechetSymmetry) {
  util::Rng rng(21);
  GaussianStats a, b;
  a.mean = {0.5, -0.5, 1.0};
  b.mean = {0.0, 0.2, 0.9};
  a.covariance = random_spd(3, rng);
  b.covariance = random_spd(3, rng);
  EXPECT_NEAR(frechet_distance_sq(a, b), frechet_distance_sq(b, a), 1e-8);
}

class FrechetProperty : public ::testing::TestWithParam<int> {};

TEST_P(FrechetProperty, NonNegativeAndZeroOnSelf) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  GaussianStats a, b;
  const std::size_t n = 4;
  a.mean.resize(n);
  b.mean.resize(n);
  for (auto& v : a.mean) v = rng.normal();
  for (auto& v : b.mean) v = rng.normal();
  a.covariance = random_spd(n, rng);
  b.covariance = random_spd(n, rng);
  EXPECT_GE(frechet_distance_sq(a, b), 0.0);
  EXPECT_NEAR(frechet_distance_sq(a, a), 0.0, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(RandomGaussians, FrechetProperty,
                         ::testing::Range(0, 10));

TEST(Accumulator, MatchesBatchFit) {
  util::Rng rng(33);
  std::vector<std::vector<double>> samples;
  GaussianAccumulator acc(3);
  for (int i = 0; i < 500; ++i) {
    std::vector<double> x = {rng.normal(), rng.normal(1.0, 2.0),
                             rng.uniform()};
    samples.push_back(x);
    acc.add(x);
  }
  const auto batch = fit_gaussian(samples);
  const auto inc = acc.stats();
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_NEAR(batch.mean[i], inc.mean[i], 1e-9);
  EXPECT_LT(Matrix::max_abs_diff(batch.covariance, inc.covariance), 1e-8);
}

TEST(Accumulator, MergeEqualsCombined) {
  util::Rng rng(35);
  GaussianAccumulator a(2), b(2), all(2);
  for (int i = 0; i < 300; ++i) {
    std::vector<double> x = {rng.normal(), rng.normal()};
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  const auto merged = a.stats();
  const auto direct = all.stats();
  EXPECT_NEAR(merged.mean[0], direct.mean[0], 1e-9);
  EXPECT_LT(Matrix::max_abs_diff(merged.covariance, direct.covariance),
            1e-9);
}

TEST(Accumulator, RequiresTwoSamples) {
  GaussianAccumulator acc(2);
  acc.add({1.0, 2.0});
  EXPECT_THROW(acc.stats(), std::invalid_argument);
}

}  // namespace
}  // namespace diffserve::linalg
