#!/usr/bin/env python3
"""Check relative markdown links so cross-references cannot rot.

Scans the repo's user-facing markdown (README.md, ROADMAP.md, docs/*.md)
for inline links/images `[text](target)`. Relative targets must resolve
to an existing file; `#fragment` anchors into markdown files must match a
heading's GitHub-style slug. External (scheme://) and mailto links are
skipped — this guards the repo's own cross-links, not the internet.

Exit status: 0 when every link resolves, 1 otherwise (each broken link
is listed). Run from anywhere; paths resolve against the repo root.
"""
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
FILES = [REPO / "README.md", REPO / "ROADMAP.md",
         *sorted((REPO / "docs").glob("*.md"))]

# Inline links/images, skipping code spans line-wise (good enough for the
# docs' idiom; fenced code blocks are stripped below).
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^(```|~~~)")


def heading_slugs(path: Path) -> set:
    """GitHub-style anchors of every markdown heading in `path`."""
    slugs = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence or not line.startswith("#"):
            continue
        text = line.lstrip("#").strip()
        # Strip markdown emphasis/code markers, then slugify.
        text = re.sub(r"[`*_]", "", text)
        slug = re.sub(r"[^\w\- ]", "", text.lower()).strip().replace(" ", "-")
        slugs.add(slug)
    return slugs


def iter_links(path: Path):
    in_fence = False
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK_RE.finditer(line):
            yield lineno, m.group(1)


def main() -> int:
    broken = []
    for md in FILES:
        if not md.exists():
            broken.append(f"{md.relative_to(REPO)}: file listed for "
                          "checking does not exist")
            continue
        for lineno, target in iter_links(md):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # scheme: external
                continue
            ref, _, fragment = target.partition("#")
            dest = md if not ref else (md.parent / ref).resolve()
            where = f"{md.relative_to(REPO)}:{lineno}"
            if ref and not dest.exists():
                broken.append(f"{where}: broken link -> {target}")
                continue
            if fragment and dest.suffix == ".md":
                if fragment not in heading_slugs(dest):
                    broken.append(
                        f"{where}: missing anchor -> {target}")
    for b in broken:
        print(b, file=sys.stderr)
    checked = ", ".join(str(f.relative_to(REPO)) for f in FILES)
    if broken:
        print(f"link check FAILED ({len(broken)} broken) over: {checked}",
              file=sys.stderr)
        return 1
    print(f"link check OK over: {checked}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
