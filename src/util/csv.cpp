#include "util/csv.hpp"

#include <cstdio>

#include "util/check.hpp"

namespace diffserve::util {

CsvWriter::CsvWriter(const std::string& path,
                     std::vector<std::string> columns)
    : path_(path), out_(path), n_columns_(columns.size()) {
  DS_REQUIRE(!columns.empty(), "CSV needs at least one column");
  DS_REQUIRE(out_.good(), "cannot open CSV file: " + path);
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) out_ << ",";
    out_ << columns[i];
  }
  out_ << "\n";
}

CsvWriter::~CsvWriter() = default;

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  DS_REQUIRE(cells.size() == n_columns_, "row width mismatch in " + path_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ",";
    out_ << cells[i];
  }
  out_ << "\n";
  ++rows_;
}

void CsvWriter::add_row(const std::vector<double>& cells) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (double v : cells) formatted.push_back(format(v));
  add_row(formatted);
}

std::string CsvWriter::format(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

}  // namespace diffserve::util
