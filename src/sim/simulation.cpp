#include "sim/simulation.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace diffserve::sim {

std::uint64_t Simulation::allocate_slot(EventFn fn, SimTime interval) {
  std::uint32_t idx;
  if (!free_slots_.empty()) {
    idx = free_slots_.back();
    free_slots_.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    generations_.push_back(0);
  }
  // Handle = (reuse generation << 32) | (slot + 1): never 0, and a
  // recycled slot stops honouring handles from its previous life.
  const std::uint64_t id =
      (static_cast<std::uint64_t>(++generations_[idx]) << 32) |
      static_cast<std::uint64_t>(idx + 1);
  Slot& s = slots_[idx];
  s.id = id;
  s.fn = std::move(fn);
  s.interval = interval;
  s.cancelled = false;
  return id;
}

void Simulation::free_slot(std::uint32_t idx) {
  Slot& s = slots_[idx];
  s.id = 0;
  s.fn = nullptr;  // release closure resources back to the pool eagerly
  s.interval = 0.0;
  s.cancelled = false;
  free_slots_.push_back(idx);
}

void Simulation::push_entry(SimTime t, std::uint64_t id, std::uint32_t slot) {
  heap_.push_back(Entry{t, next_seq_++, id, slot});
  std::push_heap(heap_.begin(), heap_.end(), EntryAfter{});
}

EventHandle Simulation::schedule_at(SimTime t, EventFn fn) {
  DS_REQUIRE(t >= now_, "cannot schedule in the past");
  DS_REQUIRE(fn != nullptr, "null event function");
  const std::uint64_t id = allocate_slot(std::move(fn), 0.0);
  push_entry(t, id, slot_index(id));
  return EventHandle{id};
}

EventHandle Simulation::schedule_in(SimTime delay, EventFn fn) {
  DS_REQUIRE(delay >= 0.0, "negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Simulation::every(SimTime interval, EventFn fn) {
  DS_REQUIRE(interval > 0.0, "periodic interval must be positive");
  DS_REQUIRE(fn != nullptr, "null event function");
  const std::uint64_t id = allocate_slot(std::move(fn), interval);
  push_entry(now_ + interval, id, slot_index(id));
  return EventHandle{id};
}

bool Simulation::cancel(EventHandle h) {
  if (!h.valid()) return false;
  const std::uint32_t idx = slot_index(h.id);
  if (idx >= slots_.size()) return false;
  Slot& s = slots_[idx];
  // A fired one-shot freed its slot (id == 0) and a recycled slot carries
  // a newer id, so both "already fired" and "already cancelled" are O(1)
  // checks — no id blacklist that could grow without bound.
  if (s.id != h.id || s.cancelled) return false;
  s.cancelled = true;
  ++stale_;
  maybe_compact();
  return true;
}

void Simulation::maybe_compact() {
  // Lazy-heap hygiene: once tombstones outnumber live entries, filter the
  // underlying vector in place and re-heapify — O(heap) amortized against
  // the cancels that created the tombstones. Keeps a cancel-heavy workload
  // (batching timers at 10^6-query scale) bounded by the live event count.
  if (heap_.size() < 64 || stale_ * 2 <= heap_.size()) return;
  auto dead = [this](const Entry& e) {
    const Slot& s = slots_[e.slot];
    return s.id != e.id || s.cancelled;
  };
  for (const Entry& e : heap_)
    if (dead(e) && slots_[e.slot].id == e.id) free_slot(e.slot);
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(), dead), heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), EntryAfter{});
  stale_ = 0;
  ++heap_compactions_;
}

void Simulation::drop_stale_top() {
  while (!heap_.empty()) {
    const Entry& top = heap_.front();
    Slot& s = slots_[top.slot];
    if (s.id == top.id && !s.cancelled) return;  // live
    const bool owns_slot = s.id == top.id;
    const std::uint32_t idx = top.slot;
    std::pop_heap(heap_.begin(), heap_.end(), EntryAfter{});
    heap_.pop_back();
    if (owns_slot) {
      --stale_;
      free_slot(idx);
    }
  }
}

void Simulation::fire_top() {
  const Entry e = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), EntryAfter{});
  heap_.pop_back();
  now_ = e.time;
  ++executed_;
  Slot& s = slots_[e.slot];
  if (s.interval > 0.0) {
    const SimTime interval = s.interval;
    // Copy before invoking: fn may schedule new events, reallocating the
    // slot pool out from under a reference.
    const EventFn fn = s.fn;
    fn();
    Slot& after = slots_[e.slot];  // refetch: the pool may have moved
    if (after.id != e.id) return;  // defensive; series slots are not freed
    if (after.cancelled) {
      // fn cancelled its own series: the tombstone accounted for a heap
      // entry that will never be pushed — consume it here.
      --stale_;
      free_slot(e.slot);
      return;
    }
    push_entry(now_ + interval, e.id, e.slot);
  } else {
    EventFn fn = std::move(s.fn);
    // Recycle before invoking so fn's own scheduling reuses the slot.
    free_slot(e.slot);
    fn();
  }
}

void Simulation::run_until(SimTime until) {
  DS_REQUIRE(until >= now_, "run_until target in the past");
  for (;;) {
    drop_stale_top();
    if (heap_.empty() || heap_.front().time > until) break;
    fire_top();
  }
  now_ = until;
}

void Simulation::run_all(std::uint64_t max_events) {
  std::uint64_t n = 0;
  for (;;) {
    drop_stale_top();
    if (heap_.empty()) break;
    DS_CHECK(n < max_events, "run_all exceeded max_events — runaway schedule?");
    ++n;
    fire_top();
  }
}

bool Simulation::step() {
  drop_stale_top();
  if (heap_.empty()) return false;
  fire_top();
  return true;
}

}  // namespace diffserve::sim
