// Tests for SLO classes: per-class admission queues and their overflow
// policies (drop-oldest / backpressure / drop-newest), class-aware batch
// formation (interactive fills first, batch-class work is never
// deadline-dropped and never starves), and per-class metrics accounting —
// all over the DES unit cascade, where completion times expose every
// scheduling decision exactly.
#include <gtest/gtest.h>

#include <map>

#include "engine/engine.hpp"
#include "engine/metrics_sink.hpp"
#include "models/model_repository.hpp"
#include "quality/fid.hpp"
#include "quality/workload.hpp"
#include "serving/system.hpp"
#include "sim/simulation.hpp"
#include "trace/prompt_mix.hpp"

namespace diffserve::serving {
namespace {

Query make_query(std::uint64_t seq, double arrival, double deadline,
                 QueryClass cls) {
  Query q;
  q.seq = seq;
  q.prompt_id = static_cast<quality::QueryId>(seq % 50);
  q.arrival_time = arrival;
  q.deadline = deadline;
  q.stage_deadline = deadline;
  q.query_class = cls;
  return q;
}

models::ModelRepository unit_repo() {
  models::ModelRepository repo;
  repo.register_model({"m", models::ModelKind::kDiffusion,
                       models::LatencyProfile(std::map<int, double>{
                           {1, 1.0}, {2, 1.5}, {4, 2.5}}),
                       /*tier=*/1, 512});
  repo.register_model({"h", models::ModelKind::kDiffusion,
                       models::LatencyProfile::affine(1.0), /*tier=*/2, 512});
  repo.register_model({"d", models::ModelKind::kDiscriminator,
                       models::LatencyProfile::affine(0.01), 0, 512});
  repo.register_cascade({"unit", "m", "h", "d", 100.0});
  return repo;
}

/// One light worker, direct mode, SLO classes enabled: queries submitted
/// through submit() carry caller-chosen classes and deadlines, so every
/// admission / batch decision is deterministic.
class ClassHarness {
 public:
  explicit ClassHarness(engine::SloClassConfig classes, int light_batch = 1)
      : repo_(unit_repo()) {
    SystemConfig cfg;
    cfg.total_workers = 1;
    cfg.slo_seconds = 100.0;
    cfg.model_load_delay = 0.0;
    cfg.slo_classes = classes;
    system_ = std::make_unique<ServingSystem>(sim_, workload_, repo_,
                                              repo_.cascade("unit"), nullptr,
                                              scorer_, cfg);
    AllocationPlan plan;
    plan.mode = RoutingMode::kDirect;
    plan.light_workers() = 1;
    plan.heavy_workers() = 0;
    plan.light_batch() = light_batch;
    system_->apply(plan);
  }

  void submit_at(double t, Query q) {
    sim_.schedule_at(t, [this, q] { system_->engine().submit(q); });
  }

  const engine::MetricsSink::Record& record_for(std::uint64_t seq) const {
    for (const auto& r : system_->sink().records())
      if (r.seq == seq) return r;
    ADD_FAILURE() << "no terminal record for seq " << seq;
    static engine::MetricsSink::Record none{};
    return none;
  }

  sim::Simulation sim_;
  quality::Workload workload_{60};
  quality::FidScorer scorer_{workload_};
  models::ModelRepository repo_;
  std::unique_ptr<ServingSystem> system_;
};

engine::SloClassConfig tiny_queues() {
  engine::SloClassConfig c;
  c.enabled = true;
  c.queue_capacity = {2, 2, 2};
  return c;
}

TEST(SloClassAdmission, InteractiveOverflowDropsOldest) {
  // Worker busy with seq 0 (t in [0,1)); interactive ring capacity 2.
  // seq 1 and 2 queue; seq 3 overflows -> the *oldest* queued interactive
  // query (seq 1) is dropped and the freshest request is admitted.
  ClassHarness h(tiny_queues());
  h.submit_at(0.0, make_query(0, 0.0, 100.0, QueryClass::kStandard));
  h.submit_at(0.1, make_query(1, 0.1, 100.0, QueryClass::kInteractive));
  h.submit_at(0.2, make_query(2, 0.2, 100.0, QueryClass::kInteractive));
  h.submit_at(0.3, make_query(3, 0.3, 100.0, QueryClass::kInteractive));
  h.sim_.run_all();

  const auto& sink = h.system_->sink();
  EXPECT_EQ(sink.total(), 4u);
  EXPECT_EQ(sink.dropped(), 1u);
  EXPECT_TRUE(h.record_for(1).dropped);
  EXPECT_FALSE(h.record_for(2).dropped);
  EXPECT_FALSE(h.record_for(3).dropped);
  EXPECT_EQ(sink.class_dropped(QueryClass::kInteractive), 1u);
  const auto drops = h.system_->engine().class_admission_drops();
  EXPECT_EQ(drops[static_cast<std::size_t>(QueryClass::kInteractive)], 1u);
}

TEST(SloClassAdmission, BatchOverflowDropsNewest) {
  // Same shape, batch class: the arriving query (seq 3) is rejected at
  // the door; work already admitted to the batch ring is never shed.
  ClassHarness h(tiny_queues());
  h.submit_at(0.0, make_query(0, 0.0, 100.0, QueryClass::kStandard));
  h.submit_at(0.1, make_query(1, 0.1, 100.0, QueryClass::kBatch));
  h.submit_at(0.2, make_query(2, 0.2, 100.0, QueryClass::kBatch));
  h.submit_at(0.3, make_query(3, 0.3, 100.0, QueryClass::kBatch));
  h.sim_.run_all();

  const auto& sink = h.system_->sink();
  EXPECT_EQ(sink.dropped(), 1u);
  EXPECT_FALSE(h.record_for(1).dropped);
  EXPECT_FALSE(h.record_for(2).dropped);
  EXPECT_TRUE(h.record_for(3).dropped);
  EXPECT_EQ(sink.class_dropped(QueryClass::kBatch), 1u);
}

TEST(SloClassAdmission, StandardOverflowIsBackpressure) {
  // Standard renders kBlock as admission rejection: the arrival bounces,
  // the queue is untouched.
  ClassHarness h(tiny_queues());
  h.submit_at(0.0, make_query(0, 0.0, 100.0, QueryClass::kBatch));
  h.submit_at(0.1, make_query(1, 0.1, 100.0, QueryClass::kStandard));
  h.submit_at(0.2, make_query(2, 0.2, 100.0, QueryClass::kStandard));
  h.submit_at(0.3, make_query(3, 0.3, 100.0, QueryClass::kStandard));
  h.sim_.run_all();

  const auto& sink = h.system_->sink();
  EXPECT_FALSE(h.record_for(1).dropped);
  EXPECT_FALSE(h.record_for(2).dropped);
  EXPECT_TRUE(h.record_for(3).dropped);
  const auto drops = h.system_->engine().class_admission_drops();
  EXPECT_EQ(drops[static_cast<std::size_t>(QueryClass::kStandard)], 1u);
}

TEST(SloClassAdmission, CapacityZeroIsUnbounded) {
  engine::SloClassConfig c;
  c.enabled = true;
  c.queue_capacity = {0, 0, 0};
  ClassHarness h(c);
  h.submit_at(0.0, make_query(0, 0.0, 100.0, QueryClass::kStandard));
  for (std::uint64_t s = 1; s <= 8; ++s)
    h.submit_at(0.1, make_query(s, 0.1, 100.0, QueryClass::kInteractive));
  h.sim_.run_all();
  EXPECT_EQ(h.system_->sink().completed(), 9u);
  EXPECT_EQ(h.system_->sink().dropped(), 0u);
}

TEST(SloClassBatching, InteractiveFillsFirst) {
  // Worker busy; a batch-class query is enqueued *before* an interactive
  // one. When the worker frees, the interactive query runs first (enum
  // order = fill priority), the batch-class one after.
  ClassHarness h(tiny_queues());
  h.submit_at(0.0, make_query(0, 0.0, 100.0, QueryClass::kStandard));
  h.submit_at(0.1, make_query(1, 0.1, 100.0, QueryClass::kBatch));
  h.submit_at(0.2, make_query(2, 0.2, 100.0, QueryClass::kInteractive));
  h.sim_.run_all();

  // e(1)=1: seq 0 done at 1, seq 2 (interactive) at 2, seq 1 at 3.
  EXPECT_NEAR(h.record_for(2).time, 2.0, 1e-9);
  EXPECT_NEAR(h.record_for(1).time, 3.0, 1e-9);
}

TEST(SloClassBatching, BatchClassIsNeverDeadlineDropped) {
  // Both queries are hopeless against their deadlines when the batch
  // forms. The standard one is shed at batch start (the historical drop
  // policy); the batch-class one executes anyway and completes late —
  // deadline violation is a quality signal for batch work, not a
  // shedding trigger.
  ClassHarness h(tiny_queues());
  h.submit_at(0.0, make_query(0, 0.0, 100.0, QueryClass::kStandard));
  h.submit_at(0.1, make_query(1, 0.1, 0.5, QueryClass::kStandard));
  h.submit_at(0.2, make_query(2, 0.2, 0.5, QueryClass::kBatch));
  h.sim_.run_all();

  EXPECT_TRUE(h.record_for(1).dropped);
  const auto& batch_rec = h.record_for(2);
  EXPECT_FALSE(batch_rec.dropped);
  EXPECT_TRUE(batch_rec.violated);
  EXPECT_EQ(h.system_->sink().class_dropped(QueryClass::kBatch), 0u);
}

TEST(SloClassBatching, MixedOverloadStarvesNoBatchWork) {
  // Sustained 3-class pressure on one worker: interactive work keeps
  // preempting the fill order, but every admitted batch-class query still
  // terminates as a completion — starvation-freedom under overload.
  engine::SloClassConfig c;
  c.enabled = true;
  c.queue_capacity = {4, 0, 0};
  ClassHarness h(c, /*light_batch=*/2);
  std::uint64_t seq = 0;
  for (int wave = 0; wave < 10; ++wave) {
    const double t = 0.4 * wave;
    h.submit_at(t, make_query(seq++, t, t + 2.0, QueryClass::kInteractive));
    h.submit_at(t, make_query(seq++, t, t + 5.0, QueryClass::kStandard));
    h.submit_at(t, make_query(seq++, t, t + 40.0, QueryClass::kBatch));
  }
  h.sim_.run_all();

  const auto& sink = h.system_->sink();
  EXPECT_EQ(sink.total(), 30u);
  EXPECT_EQ(sink.class_dropped(QueryClass::kBatch), 0u);
  EXPECT_EQ(sink.class_completed(QueryClass::kBatch), 10u);
}

TEST(SloClassMetrics, PerClassRowsSumToTotals) {
  ClassHarness h(tiny_queues());
  h.submit_at(0.0, make_query(0, 0.0, 100.0, QueryClass::kStandard));
  h.submit_at(0.1, make_query(1, 0.1, 100.0, QueryClass::kInteractive));
  h.submit_at(0.2, make_query(2, 0.2, 0.5, QueryClass::kStandard));
  h.submit_at(0.3, make_query(3, 0.3, 100.0, QueryClass::kBatch));
  h.sim_.run_all();

  const auto& sink = h.system_->sink();
  std::size_t completed = 0, dropped = 0;
  for (std::size_t cidx = 0; cidx < engine::kQueryClassCount; ++cidx) {
    const auto cls = static_cast<QueryClass>(cidx);
    completed += sink.class_completed(cls);
    dropped += sink.class_dropped(cls);
  }
  EXPECT_EQ(completed, sink.completed());
  EXPECT_EQ(dropped, sink.dropped());
  // The late standard query (seq 2, dropped or late) counts against the
  // standard row only.
  EXPECT_GT(sink.class_violation_ratio(QueryClass::kStandard), 0.0);
  EXPECT_EQ(sink.class_violation_ratio(QueryClass::kInteractive), 0.0);
  EXPECT_EQ(sink.class_violation_ratio(QueryClass::kBatch), 0.0);
  EXPECT_GT(sink.class_mean_latency(QueryClass::kInteractive), 0.0);
}

TEST(SloClassMetrics, SamplerClassMixMatchesShares) {
  // The trace-side class axis: a 0.3/0.5/0.2 mix over many draws lands
  // near its shares, and the degenerate default mix draws nothing.
  trace::PromptMixConfig mix;
  mix.interactive_share = 0.3;
  mix.batch_share = 0.2;
  trace::PromptSampler sampler(50, mix);
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) ++counts[sampler.next_class()];
  EXPECT_NEAR(counts[0] / 20000.0, 0.3, 0.02);
  EXPECT_NEAR(counts[1] / 20000.0, 0.5, 0.02);
  EXPECT_NEAR(counts[2] / 20000.0, 0.2, 0.02);

  trace::PromptSampler plain(50, trace::PromptMixConfig{});
  for (int i = 0; i < 100; ++i) EXPECT_EQ(plain.next_class(), 1);
}

}  // namespace
}  // namespace diffserve::serving
