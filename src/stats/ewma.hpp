// Exponentially weighted moving averages.
//
// The controller estimates query demand D with an EWMA over per-interval
// arrival counts (paper §3.3: "We estimate query demand D using an
// exponentially weighted moving average on demand history"). Two variants
// are provided: a fixed-alpha EWMA for evenly spaced observations and a
// time-decayed EWMA for irregular ones.
#pragma once

#include <cstddef>

namespace diffserve::stats {

/// Fixed-alpha EWMA: v <- alpha * x + (1 - alpha) * v.
class Ewma {
 public:
  explicit Ewma(double alpha);

  void observe(double x);
  void reset();

  bool has_value() const { return initialized_; }
  /// Current estimate; 0 until the first observation.
  double value() const { return initialized_ ? value_ : 0.0; }
  double alpha() const { return alpha_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Holt's double exponential smoothing: tracks a level and a linear trend
/// over evenly spaced observations and can forecast h steps ahead. The
/// controller forecasts demand one actuation horizon ahead so steep ramps
/// do not leave the heavy pool underprovisioned (a plain EWMA lags a ramp
/// by ~1/alpha observations).
class HoltEwma {
 public:
  HoltEwma(double level_alpha, double trend_beta);

  void observe(double x);
  void reset();

  bool has_value() const { return n_ > 0; }
  double level() const { return level_; }
  double trend() const { return trend_; }
  /// Forecast h steps ahead (h = 0 returns the level). Never negative.
  double forecast(double h) const;

 private:
  double alpha_, beta_;
  double level_ = 0.0;
  double trend_ = 0.0;
  std::size_t n_ = 0;
};

/// Time-decayed EWMA with half-life semantics: weight of an observation
/// decays by half every `half_life` seconds regardless of arrival spacing.
class TimeDecayedEwma {
 public:
  explicit TimeDecayedEwma(double half_life_seconds);

  void observe(double time_seconds, double x);
  double value_at(double time_seconds) const;
  bool has_value() const { return initialized_; }
  void reset();

 private:
  double half_life_;
  double last_time_ = 0.0;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace diffserve::stats
