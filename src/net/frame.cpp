#include "net/frame.hpp"

#include <cstring>

#include "util/check.hpp"

namespace diffserve::net {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((std::uint32_t{p[0]} << 8) |
                                    std::uint32_t{p[1]});
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

}  // namespace

void encode_append(const Frame& f, std::vector<std::uint8_t>& out) {
  DS_REQUIRE(!f.topic.empty(), "frame topic must be non-empty");
  DS_REQUIRE(f.topic.size() <= 0xFFFF, "frame topic too long");
  DS_REQUIRE(!f.payload.empty(), "frame payload must be non-empty");
  const std::size_t body =
      kBodyHeaderLen + f.topic.size() + f.payload.size();
  DS_REQUIRE(body <= kMaxFrameLen, "frame body exceeds kMaxFrameLen");
  out.reserve(out.size() + 4 + body);
  put_u32(out, static_cast<std::uint32_t>(body));
  out.push_back(f.priority);
  put_u16(out, static_cast<std::uint16_t>(f.topic.size()));
  out.insert(out.end(), f.topic.begin(), f.topic.end());
  out.insert(out.end(), f.payload.begin(), f.payload.end());
}

std::vector<std::uint8_t> encode(const Frame& f) {
  std::vector<std::uint8_t> out;
  encode_append(f, out);
  return out;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t n) {
  if (failed_ || n == 0) return;
  // Compact the consumed prefix before growing; keeps the buffer bounded
  // by one partial frame plus whatever feed() batches in.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > max_frame_len_) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

FrameDecoder::Status FrameDecoder::fail(const char* why) {
  failed_ = true;
  error_ = why;
  return Status::kError;
}

FrameDecoder::Status FrameDecoder::next(Frame* out) {
  if (failed_) return Status::kError;
  const std::size_t avail = buf_.size() - pos_;
  if (avail < 4) return Status::kNeedMore;
  const std::uint8_t* p = buf_.data() + pos_;
  const std::size_t body = get_u32(p);
  if (body < kMinFrameLen) return fail("frame_len below minimum body size");
  if (body > max_frame_len_) return fail("frame_len exceeds maximum");
  if (avail < 4 + body) return Status::kNeedMore;
  const std::size_t topic_len = get_u16(p + 5);
  if (topic_len == 0) return fail("empty topic");
  if (topic_len > body - kBodyHeaderLen - 1)
    return fail("topic_len leaves no room for a payload");
  const std::size_t payload_len = body - kBodyHeaderLen - topic_len;
  // payload_len >= 1 by the topic_len check above; zero-length payloads
  // are unreachable past this point by construction.
  out->priority = p[4];
  out->topic.assign(reinterpret_cast<const char*>(p + 4 + kBodyHeaderLen),
                    topic_len);
  const std::uint8_t* payload = p + 4 + kBodyHeaderLen + topic_len;
  out->payload.assign(payload, payload + payload_len);
  pos_ += 4 + body;
  return Status::kFrame;
}

}  // namespace diffserve::net
