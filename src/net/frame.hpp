// Length-prefixed binary frame codec — the cluster wire format.
//
// Every message between a shard frontend and its shards travels as one
// frame:
//
//   [u32 frame_len][u8 priority][u16 topic_len][topic bytes][payload bytes]
//
// All integers are big-endian (network order). `frame_len` counts the
// body only (priority + topic_len + topic + payload), never itself.
// Protocol policy, enforced by the decoder so a malformed or hostile
// byte stream can never reach message deserializers:
//   * frame_len is capped (kMaxFrameLen) — an oversized length is a
//     protocol error, not an allocation request;
//   * the topic is non-empty and fits inside the declared body;
//   * the payload is non-empty — every message type serializes at least
//     one byte, so a zero-length payload is malformed by construction.
// A violation poisons the decoder (every later next() reports kError);
// framing is unrecoverable once the byte stream is misaligned.
//
// The decoder is a push parser: feed() appends raw bytes from the
// transport, next() pops complete frames. Partial frames simply report
// kNeedMore — truncation is detected by the owner at stream end via
// buffered(). Single-threaded; each transport endpoint owns one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace diffserve::net {

/// Delivery class carried in the frame header (EventStreamCore-style).
/// The in-tree transports deliver in order regardless; the field keeps
/// the wire format ready for QoS-aware transports.
enum class Priority : std::uint8_t {
  kBatch = 0,
  kLow = 1,
  kMedium = 2,
  kHigh = 3,
  kCritical = 4,
};

struct Frame {
  std::uint8_t priority = static_cast<std::uint8_t>(Priority::kMedium);
  std::string topic;
  std::vector<std::uint8_t> payload;

  bool operator==(const Frame& o) const {
    return priority == o.priority && topic == o.topic && payload == o.payload;
  }
};

/// Largest accepted frame body. Generous for control-plane messages
/// (the biggest in-tree frame is a shard stats snapshot, well under
/// 1 KiB) while bounding what a corrupt length prefix can make the
/// decoder buffer.
inline constexpr std::size_t kMaxFrameLen = 1u << 20;

/// Fixed header bytes inside the body: priority (1) + topic_len (2).
inline constexpr std::size_t kBodyHeaderLen = 3;
/// Smallest legal body: header + 1-byte topic + 1-byte payload.
inline constexpr std::size_t kMinFrameLen = kBodyHeaderLen + 2;

/// Serialize one frame (length prefix included).
std::vector<std::uint8_t> encode(const Frame& f);
/// Append-encode into an existing buffer (transport write batching).
void encode_append(const Frame& f, std::vector<std::uint8_t>& out);

class FrameDecoder {
 public:
  enum class Status {
    kFrame,     ///< a complete frame was written to *out
    kNeedMore,  ///< the buffer holds no complete frame yet
    kError,     ///< protocol violation; the decoder is poisoned
  };

  explicit FrameDecoder(std::size_t max_frame_len = kMaxFrameLen)
      : max_frame_len_(max_frame_len) {}

  /// Append raw transport bytes. Accepts anything; validation happens
  /// in next(). No-op once the decoder is poisoned.
  void feed(const std::uint8_t* data, std::size_t n);

  /// Pop the next complete frame. Call in a loop until it stops
  /// returning kFrame.
  Status next(Frame* out);

  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }
  /// Bytes fed but not yet consumed by complete frames. Non-zero at
  /// stream end means the peer truncated a frame mid-write.
  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  Status fail(const char* why);

  std::size_t max_frame_len_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_
  bool failed_ = false;
  std::string error_;
};

}  // namespace diffserve::net
