#include "control/allocator_variants.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace diffserve::control {

namespace {

/// Keep only the grid point closest to `t` so the inner solver has no
/// threshold freedom.
std::vector<discriminator::DeferralProfile::GridPoint> pin_grid(
    const std::vector<discriminator::DeferralProfile::GridPoint>& grid,
    double t) {
  DS_REQUIRE(!grid.empty(), "empty threshold grid");
  const auto best = std::min_element(
      grid.begin(), grid.end(), [t](const auto& a, const auto& b) {
        return std::fabs(a.threshold - t) < std::fabs(b.threshold - t);
      });
  return {*best};
}

}  // namespace

StaticThresholdAllocator::StaticThresholdAllocator(
    std::unique_ptr<Allocator> inner, double fixed_threshold)
    : inner_(std::move(inner)), fixed_threshold_(fixed_threshold) {
  DS_REQUIRE(inner_ != nullptr, "null inner allocator");
  DS_REQUIRE(fixed_threshold >= 0.0 && fixed_threshold <= 1.0,
             "threshold outside [0,1]");
}

AllocationDecision StaticThresholdAllocator::allocate(
    const AllocationInput& input) {
  AllocationInput pinned = input;
  pinned.threshold_grid = pin_grid(input.threshold_grid, fixed_threshold_);
  return inner_->allocate(pinned);
}

NoQueueModelAllocator::NoQueueModelAllocator(std::unique_ptr<Allocator> inner)
    : inner_(std::move(inner)) {
  DS_REQUIRE(inner_ != nullptr, "null inner allocator");
}

AllocationDecision NoQueueModelAllocator::allocate(
    const AllocationInput& input) {
  // Proteus heuristic: assume the queuing delay equals twice the execution
  // delay of the currently *smallest* profiled batch — implemented by
  // faking the queue observations so littles_law_delay returns 2 * e(b=1)
  // regardless of the real queue.
  AllocationInput faked = input;
  faked.light_arrival_rate = 1.0;
  faked.light_queue_length = 2.0 * input.light.execution_latency(
                                       input.light.batch_sizes().front());
  faked.heavy_arrival_rate = 1.0;
  faked.heavy_queue_length = 2.0 * input.heavy.execution_latency(
                                       input.heavy.batch_sizes().front());
  return inner_->allocate(faked);
}

AimdBatchAllocator::AimdBatchAllocator(std::unique_ptr<Allocator> inner,
                                       AimdConfig cfg)
    : inner_(std::move(inner)), cfg_(cfg) {
  DS_REQUIRE(inner_ != nullptr, "null inner allocator");
}

int AimdBatchAllocator::step_up(const std::vector<int>& sizes, int current) {
  for (const int s : sizes)
    if (s > current) return s;
  return sizes.back();
}

int AimdBatchAllocator::step_down(const std::vector<int>& sizes, int current,
                                  double factor) {
  const auto target = static_cast<int>(
      std::floor(static_cast<double>(current) * factor));
  int best = sizes.front();
  for (const int s : sizes)
    if (s <= std::max(target, sizes.front())) best = s;
  return best;
}

AllocationDecision AimdBatchAllocator::allocate(const AllocationInput& input) {
  // Reactive batch control: multiplicative decrease on violation signal,
  // additive (next profiled size) increase otherwise.
  const auto& l_sizes = input.light.batch_sizes();
  const auto& h_sizes = input.heavy.batch_sizes();
  if (input.recent_violation_ratio > cfg_.violation_trigger) {
    light_batch_ = step_down(l_sizes, light_batch_, cfg_.decrease_factor);
    heavy_batch_ = step_down(h_sizes, heavy_batch_, cfg_.decrease_factor);
  } else {
    // Additive increase, but never past a batch whose own execution blows
    // the SLO (Clipper observes the timeout immediately and backs off;
    // skipping the doomed step avoids a deterministic oscillation).
    const int l_next = step_up(l_sizes, light_batch_);
    if (input.light.stage_latency(l_next) <= input.slo_seconds)
      light_batch_ = l_next;
    const int h_next = step_up(h_sizes, heavy_batch_);
    if (input.heavy.stage_latency(h_next) <= input.slo_seconds)
      heavy_batch_ = h_next;
  }

  // The inner solver only sees the AIMD-selected batch sizes.
  AllocationInput forced = input;
  forced.light = StagePerfModel(
      models::LatencyProfile(std::map<int, double>{
          {light_batch_, input.light.execution_latency(light_batch_)}}),
      nullptr);
  forced.heavy = StagePerfModel(
      models::LatencyProfile(std::map<int, double>{
          {heavy_batch_, input.heavy.execution_latency(heavy_batch_)}}),
      nullptr);
  AllocationDecision out = inner_->allocate(forced);
  out.light_batch = light_batch_;
  out.heavy_batch = heavy_batch_;
  return out;
}

}  // namespace diffserve::control
