// Fuzz harness for net::FrameDecoder — the one parser in the tree that
// eats bytes straight off a socket, so it must hold its invariants on
// *any* input, not just frames our own encoder produced.
//
// The harness drives the decoder the way a transport does: the input is
// fed in irregular chunks (sizes derived from the input itself, so the
// fuzzer can steer boundary placement), and after every feed the frames
// are drained. Checked invariants:
//   * an accepted frame always has a non-empty topic and payload, and a
//     topic that fits the declared body (the decoder's protocol policy);
//   * poisoning is sticky: after the first kError, next() keeps
//     reporting kError, failed() is true, and error() is non-empty;
//   * accepted frames re-encode to a body within the length cap
//     (round-trip sanity — encode(decode(x)) must not explode).
//
// Build shapes (CMake option DIFFSERVE_FUZZ):
//   clang  — libFuzzer entry point only; -fsanitize=fuzzer provides main.
//            CI runs a fixed-iteration session over the seed corpus.
//   other  — DIFFSERVE_FUZZ_STANDALONE adds a deterministic driver main:
//            replays corpus files, then a fixed number of seeded LCG
//            mutations of valid frames. No libFuzzer needed, so the
//            harness itself stays testable under the gcc-only dev image.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "net/frame.hpp"

namespace {

// Abort loudly on an invariant violation — both libFuzzer and the
// standalone driver treat process death as the failure signal.
#define FUZZ_REQUIRE(cond, what)                                      \
  do {                                                                \
    if (!(cond)) {                                                    \
      std::fprintf(stderr, "frame_decoder_fuzz: invariant failed: %s\n", \
                   what);                                             \
      std::abort();                                                   \
    }                                                                 \
  } while (0)

void drain(diffserve::net::FrameDecoder& dec, bool& poisoned) {
  using diffserve::net::Frame;
  using diffserve::net::FrameDecoder;
  Frame f;
  FrameDecoder::Status st;
  while ((st = dec.next(&f)) == FrameDecoder::Status::kFrame) {
    FUZZ_REQUIRE(!poisoned, "frame produced after poisoning");
    FUZZ_REQUIRE(!f.topic.empty(), "accepted frame with empty topic");
    FUZZ_REQUIRE(!f.payload.empty(), "accepted frame with empty payload");
    FUZZ_REQUIRE(f.topic.size() <= diffserve::net::kMaxFrameLen,
                 "accepted topic exceeds the frame cap");
    const auto bytes = diffserve::net::encode(f);
    FUZZ_REQUIRE(bytes.size() >= diffserve::net::kMinFrameLen + 4,
                 "re-encoded frame shorter than the wire minimum");
    FUZZ_REQUIRE(bytes.size() <= diffserve::net::kMaxFrameLen + 4,
                 "re-encoded frame exceeds the wire cap");
  }
  if (st == FrameDecoder::Status::kError) {
    poisoned = true;
    FUZZ_REQUIRE(dec.failed(), "kError but failed() is false");
    FUZZ_REQUIRE(!dec.error().empty(), "kError with empty error message");
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using diffserve::net::FrameDecoder;

  FrameDecoder dec;
  bool poisoned = false;
  std::uint64_t chunk_state = size != 0 ? data[0] : 1u;
  std::size_t i = 0;
  while (i < size) {
    // Input-derived chunk sizes (1..8 bytes) place feed boundaries
    // inside every header field sooner or later.
    chunk_state = chunk_state * 6364136223846793005ULL +
                  1442695040888963407ULL;
    std::size_t chunk = 1 + static_cast<std::size_t>(chunk_state >> 33) % 8;
    if (chunk > size - i) chunk = size - i;
    dec.feed(data + i, chunk);
    i += chunk;
    drain(dec, poisoned);
  }
  if (poisoned) {
    // Sticky poisoning: more bytes and more polls change nothing.
    const std::uint8_t probe[4] = {0, 0, 0, 7};
    dec.feed(probe, sizeof probe);
    diffserve::net::Frame f;
    FUZZ_REQUIRE(dec.next(&f) == FrameDecoder::Status::kError,
                 "poisoned decoder produced a non-error status");
    FUZZ_REQUIRE(dec.failed(), "poisoned decoder reports !failed()");
  }
  return 0;
}

#ifdef DIFFSERVE_FUZZ_STANDALONE
// Deterministic driver for toolchains without libFuzzer: replay each
// corpus file given on the command line, then run a fixed budget of
// seeded mutations over freshly encoded frames. Same entry point, same
// invariants — just a weaker input generator than libFuzzer's.

#include <string>
#include <vector>

namespace {

std::uint64_t lcg_next(std::uint64_t& s) {
  s = s * 6364136223846793005ULL + 1442695040888963407ULL;
  return s >> 16;
}

std::vector<std::uint8_t> random_valid_stream(std::uint64_t& s) {
  std::vector<std::uint8_t> out;
  const std::size_t frames = 1 + lcg_next(s) % 3;
  for (std::size_t k = 0; k < frames; ++k) {
    diffserve::net::Frame f;
    f.priority = static_cast<std::uint8_t>(lcg_next(s) % 8);
    f.topic.assign(1 + lcg_next(s) % 12,
                   static_cast<char>('a' + lcg_next(s) % 26));
    f.payload.resize(1 + lcg_next(s) % 64);
    for (auto& b : f.payload) b = static_cast<std::uint8_t>(lcg_next(s));
    diffserve::net::encode_append(f, out);
  }
  return out;
}

void run_one(const std::vector<std::uint8_t>& bytes) {
  LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t iters = 10000;
  std::vector<std::string> corpus;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg.rfind("--iters=", 0) == 0)
      iters = static_cast<std::size_t>(std::strtoull(arg.c_str() + 8,
                                                     nullptr, 10));
    else
      corpus.push_back(arg);
  }

  for (const auto& path : corpus) {
    std::FILE* fp = std::fopen(path.c_str(), "rb");
    if (fp == nullptr) {
      std::fprintf(stderr, "frame_decoder_fuzz: cannot open %s\n",
                   path.c_str());
      return 2;
    }
    std::vector<std::uint8_t> bytes;
    std::uint8_t buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, fp)) > 0)
      bytes.insert(bytes.end(), buf, buf + n);
    std::fclose(fp);
    run_one(bytes);
  }

  std::uint64_t seed = 0x5eed5eedULL;
  for (std::size_t it = 0; it < iters; ++it) {
    auto bytes = random_valid_stream(seed);
    switch (lcg_next(seed) % 4) {
      case 0:  // intact — the happy path must stay happy
        break;
      case 1:  // single-byte corruption anywhere (length, header, body)
        if (!bytes.empty())
          bytes[lcg_next(seed) % bytes.size()] ^=
              static_cast<std::uint8_t>(1 + lcg_next(seed) % 255);
        break;
      case 2:  // truncation mid-frame
        bytes.resize(lcg_next(seed) % (bytes.size() + 1));
        break;
      default:  // garbage prefix — misaligned framing from byte 0
        bytes.insert(bytes.begin(),
                     static_cast<std::uint8_t>(lcg_next(seed)));
        break;
    }
    run_one(bytes);
  }
  std::printf("frame_decoder_fuzz: %zu corpus file(s) + %zu mutations OK\n",
              corpus.size(), iters);
  return 0;
}
#endif  // DIFFSERVE_FUZZ_STANDALONE
