// Threaded "testbed" runtime.
//
// The paper validates its simulator against a 16-GPU cluster testbed whose
// artifact also supports *simulated execution* of the diffusion models
// (sleeping for the profiled latency instead of running the GPU kernels,
// Appendix A.5). This module is that testbed: a ThreadedBackend — real
// timer and worker threads timed by the wall clock (util::TraceClock) —
// plugged under the same engine::CascadeEngine and control::Controller
// that drive the discrete-event simulator. Because routing, deferral,
// batching, reconfiguration, and metrics are the engine's single policy
// implementation, the §4.3 simulator-vs-testbed fidelity comparison
// (0.56% FID, 1.1% SLO difference in the paper) is reproduced by running
// the same trace through both backends and diffing the results.
//
// `time_scale` compresses wall time: a trace second lasts 1/time_scale
// wall seconds and every sleep shrinks accordingly. Latencies are recorded
// in trace seconds, so results are directly comparable with the DES.
#pragma once

#include <cstdint>

#include "control/allocator.hpp"
#include "core/environment.hpp"
#include "trace/arrivals.hpp"
#include "trace/rate_trace.hpp"

namespace diffserve::runtime {

struct RuntimeConfig {
  int total_workers = 8;
  /// Negative = cascade default.
  double slo_seconds = -1.0;
  /// Wall-clock compression: 30 = a 300 s trace takes 10 s to replay.
  double time_scale = 30.0;
  double control_period = 5.0;       ///< trace seconds
  double heavy_reserve_factor = 1.25;
  double max_deferral_fraction = 0.55;
  double over_provision = 1.05;
  double model_load_delay = 1.0;     ///< trace seconds
  /// Batch timers are armed this much wall time early (scaled into trace
  /// seconds by time_scale) to absorb OS scheduling jitter.
  double launch_slack_wall_seconds = 0.004;
  std::uint64_t arrival_seed = 1;
  trace::ArrivalConfig arrivals;
};

struct RuntimeResult {
  double overall_fid = 0.0;
  double violation_ratio = 0.0;
  double mean_latency = 0.0;   ///< trace seconds
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t dropped = 0;
  double light_served_fraction = 0.0;
  std::size_t reconfigurations = 0;
};

/// Replay `trace` through the threaded runtime with the given allocation
/// policy. Blocks until the trace finishes and the pipeline drains.
RuntimeResult run_threaded(const core::CascadeEnvironment& env,
                           control::Allocator& allocator,
                           const trace::RateTrace& trace,
                           const RuntimeConfig& cfg);

}  // namespace diffserve::runtime
