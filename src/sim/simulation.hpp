// Discrete-event simulation engine.
//
// The paper's headline results come from a discrete-event simulator ("uses
// an event queue and a timer to record the arrival and processing of
// queries", §4.1). This engine provides exactly that: a virtual clock, a
// (time, sequence)-ordered event queue for deterministic tie-breaking,
// cancellable events (needed by batching timers), and periodic tasks
// (controller ticks, stat snapshots).
//
// Hot-path layout: the heap holds 32-byte plain entries; the event
// closures live in a free-listed slot pool, so firing a million one-shot
// events recycles a small set of slots instead of allocating per event.
// Cancellation is a tombstone — an O(1) flag on the slot, skipped when the
// entry surfaces — and when tombstones outnumber live entries the heap is
// compacted in place (mirroring the cache's lazy-heap eviction), so a
// workload that arms and cancels millions of batching timers keeps both
// the heap and the cancel bookkeeping bounded by the *live* event count.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace diffserve::sim {

using SimTime = double;  ///< seconds of virtual time

using EventFn = std::function<void()>;

/// Opaque handle for cancelling a scheduled event.
struct EventHandle {
  std::uint64_t id = 0;
  bool valid() const { return id != 0; }
};

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }

  /// Schedule fn at absolute virtual time t (>= now).
  EventHandle schedule_at(SimTime t, EventFn fn);
  /// Schedule fn after a delay (>= 0) from now.
  EventHandle schedule_in(SimTime delay, EventFn fn);
  /// Cancel a pending event; returns false if it already fired or was
  /// cancelled.
  bool cancel(EventHandle h);

  /// Schedule fn every `interval` seconds starting at now + interval.
  /// The returned handle cancels the *series*.
  EventHandle every(SimTime interval, EventFn fn);

  /// Run until the queue is empty or the clock passes `until`.
  /// Events scheduled exactly at `until` are executed.
  void run_until(SimTime until);
  /// Run until the queue drains (use with care: periodic tasks never
  /// drain; bounded by max_events).
  void run_all(std::uint64_t max_events = 100'000'000);
  /// Execute exactly one event if any is pending; returns false when empty.
  bool step();

  /// Exact count of live pending events (cancelled tombstones excluded).
  std::size_t pending() const { return heap_.size() - stale_; }
  std::uint64_t executed() const { return executed_; }

  // --- maintenance introspection (tests, benches) ------------------------
  /// Heap entries including not-yet-compacted tombstones.
  std::size_t heap_size() const { return heap_.size(); }
  /// Cancelled entries still awaiting lazy removal.
  std::size_t stale_entries() const { return stale_; }
  /// In-place heap rebuilds triggered by tombstone pressure.
  std::uint64_t heap_compactions() const { return heap_compactions_; }

 private:
  /// Heap entry: plain ordering data plus the slot that owns the closure.
  /// `id` detects staleness — a slot recycled for a newer event no longer
  /// matches the entry that pointed at it.
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::uint64_t id;
    std::uint32_t slot;
  };
  struct EntryAfter {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;  // min-heap on time
      return a.seq > b.seq;                          // FIFO within a time
    }
  };

  /// Pooled event state. One-shot slots are freed (and their closure
  /// storage recycled) at fire time; periodic slots persist across
  /// occurrences — the series owns no reference to itself, so there is no
  /// shared_ptr cycle to leak.
  struct Slot {
    std::uint64_t id = 0;  ///< current handle id; 0 = free
    EventFn fn;
    SimTime interval = 0.0;  ///< > 0 for periodic series
    bool cancelled = false;
  };

  std::uint32_t slot_index(std::uint64_t id) const {
    return static_cast<std::uint32_t>(id & 0xFFFFFFFFu) - 1;
  }
  std::uint64_t allocate_slot(EventFn fn, SimTime interval);
  void free_slot(std::uint32_t idx);
  void push_entry(SimTime t, std::uint64_t id, std::uint32_t slot);
  /// Pop tombstoned entries off the top; compact when they outnumber the
  /// live ones.
  void drop_stale_top();
  void maybe_compact();
  /// Fire the top entry (caller checked it is live and due).
  void fire_top();

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  /// Min-heap via std::push_heap/pop_heap so compaction can filter the
  /// underlying vector in place.
  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  /// Per-slot reuse generation (high handle bits), so a recycled slot
  /// never honours a stale handle.
  std::vector<std::uint32_t> generations_;
  std::size_t stale_ = 0;  ///< tombstoned entries still in heap_
  std::uint64_t heap_compactions_ = 0;
};

}  // namespace diffserve::sim
