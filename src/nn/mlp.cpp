#include "nn/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace diffserve::nn {

std::vector<double> softmax(const std::vector<double>& logits) {
  DS_REQUIRE(!logits.empty(), "softmax of empty vector");
  const double m = *std::max_element(logits.begin(), logits.end());
  std::vector<double> out(logits.size());
  double z = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    out[i] = std::exp(logits[i] - m);
    z += out[i];
  }
  for (auto& v : out) v /= z;
  return out;
}

MlpClassifier::MlpClassifier(std::vector<std::size_t> layer_dims,
                             std::uint64_t seed)
    : rng_(seed) {
  DS_REQUIRE(layer_dims.size() >= 2, "need at least input and output dims");
  DS_REQUIRE(layer_dims.back() == 2, "binary classifier needs 2 outputs");
  for (std::size_t i = 0; i + 1 < layer_dims.size(); ++i) {
    const bool last = (i + 2 == layer_dims.size());
    layers_.emplace_back(layer_dims[i], layer_dims[i + 1],
                         last ? Activation::kLinear : Activation::kRelu, rng_);
  }
}

std::vector<double> MlpClassifier::forward(const std::vector<double>& x) {
  std::vector<double> h = x;
  for (auto& layer : layers_) h = layer.forward(h);
  return h;
}

std::vector<double> MlpClassifier::forward_inference(
    const std::vector<double>& x) const {
  std::vector<double> h = x;
  if (input_noise_ > 0.0) {
    util::MutexLock lock(rng_mutex_);
    for (auto& v : h) v += rng_.normal(0.0, input_noise_);
  }
  for (const auto& layer : layers_) h = layer.infer(h);
  return h;
}

TrainReport MlpClassifier::train(const std::vector<std::vector<double>>& x,
                                 const std::vector<int>& y,
                                 const TrainConfig& cfg) {
  DS_REQUIRE(x.size() == y.size(), "feature/label count mismatch");
  DS_REQUIRE(!x.empty(), "empty training set");
  input_noise_ = cfg.input_noise;

  std::vector<std::size_t> order(x.size());
  std::iota(order.begin(), order.end(), 0);

  TrainReport report;
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    // Training is single-threaded, but rng_ is guarded_by the RNG mutex
    // (the const inference path really does race without it), so training
    // draws take the uncontended lock rather than an analysis opt-out.
    {
      util::MutexLock lock(rng_mutex_);
      rng_.shuffle(order);
    }
    double epoch_loss = 0.0;
    std::size_t seen = 0;
    for (std::size_t start = 0; start < order.size();
         start += cfg.batch_size) {
      const std::size_t end = std::min(start + cfg.batch_size, order.size());
      for (auto& layer : layers_) layer.zero_grad();
      for (std::size_t k = start; k < end; ++k) {
        const std::size_t idx = order[k];
        std::vector<double> input = x[idx];
        if (cfg.input_noise > 0.0) {
          util::MutexLock lock(rng_mutex_);
          for (auto& v : input) v += rng_.normal(0.0, cfg.input_noise);
        }
        const auto logit = forward(input);
        const auto prob = softmax(logit);
        const int label = y[idx];
        DS_REQUIRE(label == 0 || label == 1, "labels must be 0/1");
        epoch_loss += -std::log(std::max(prob[static_cast<std::size_t>(label)],
                                         1e-12));
        ++seen;
        // dL/dlogit for softmax cross-entropy: p - onehot(label)
        std::vector<double> grad = prob;
        grad[static_cast<std::size_t>(label)] -= 1.0;
        for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
          grad = it->backward(grad);
      }
      for (auto& layer : layers_) layer.adam_step(cfg.adam, end - start);
    }
    report.epoch_losses.push_back(epoch_loss /
                                  static_cast<double>(std::max<std::size_t>(
                                      seen, 1)));
  }

  std::size_t correct = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double p = predict_real_probability(x[i]);
    if ((p >= 0.5) == (y[i] == 1)) ++correct;
  }
  report.final_train_accuracy =
      static_cast<double>(correct) / static_cast<double>(x.size());
  return report;
}

double MlpClassifier::predict_real_probability(
    const std::vector<double>& x) const {
  const auto prob = softmax(forward_inference(x));
  return prob[1];  // index 1 == 'real'
}

std::vector<double> MlpClassifier::logits(const std::vector<double>& x) const {
  return forward_inference(x);
}

std::size_t MlpClassifier::parameter_count() const {
  std::size_t n = 0;
  for (const auto& layer : layers_) n += layer.parameter_count();
  return n;
}

std::size_t MlpClassifier::input_dim() const {
  return layers_.front().in_dim();
}

}  // namespace diffserve::nn
