// Tests for the discrete-event engine: ordering, FIFO tie-breaking,
// cancellation, periodic series, and clock semantics.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.hpp"

namespace diffserve::sim {
namespace {

TEST(Simulation, ExecutesInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, FifoWithinSameTimestamp) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, ClockAdvancesToEventTime) {
  Simulation sim;
  double seen = -1.0;
  sim.schedule_at(4.5, [&] { seen = sim.now(); });
  sim.run_all();
  EXPECT_EQ(seen, 4.5);
}

TEST(Simulation, ScheduleInUsesDelay) {
  Simulation sim;
  double seen = -1.0;
  sim.schedule_at(2.0, [&] {
    sim.schedule_in(1.5, [&] { seen = sim.now(); });
  });
  sim.run_all();
  EXPECT_EQ(seen, 3.5);
}

TEST(Simulation, RunUntilStopsAndSetsClock) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(5.0, [&] { ++fired; });
  sim.run_until(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 3.0);
  sim.run_until(10.0);
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, RunUntilExecutesEventExactlyAtBoundary) {
  Simulation sim;
  bool fired = false;
  sim.schedule_at(3.0, [&] { fired = true; });
  sim.run_until(3.0);
  EXPECT_TRUE(fired);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  const auto h = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(h));
  sim.run_all();
  EXPECT_FALSE(fired);
}

TEST(Simulation, DoubleCancelReturnsFalse) {
  Simulation sim;
  const auto h = sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(h));
}

TEST(Simulation, CancelInvalidHandleIsNoop) {
  Simulation sim;
  EXPECT_FALSE(sim.cancel(EventHandle{}));
}

TEST(Simulation, PeriodicFiresAtInterval) {
  Simulation sim;
  std::vector<double> times;
  sim.every(2.0, [&] { times.push_back(sim.now()); });
  sim.run_until(7.0);
  EXPECT_EQ(times, (std::vector<double>{2.0, 4.0, 6.0}));
}

TEST(Simulation, PeriodicCancelStopsSeries) {
  Simulation sim;
  int count = 0;
  const auto h = sim.every(1.0, [&] { ++count; });
  sim.run_until(3.5);
  EXPECT_EQ(count, 3);
  sim.cancel(h);
  sim.run_until(10.0);
  EXPECT_EQ(count, 3);
}

TEST(Simulation, PeriodicCanCancelItself) {
  Simulation sim;
  int count = 0;
  EventHandle h{};
  h = sim.every(1.0, [&] {
    ++count;
    if (count == 2) sim.cancel(h);
  });
  sim.run_until(10.0);
  EXPECT_EQ(count, 2);
}

TEST(Simulation, StepExecutesOne) {
  Simulation sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(count, 2);
}

TEST(Simulation, PastSchedulingThrows) {
  Simulation sim;
  sim.schedule_at(5.0, [] {});
  sim.run_until(5.0);
  EXPECT_THROW(sim.schedule_at(4.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulation, EventsCanScheduleEvents) {
  Simulation sim;
  std::vector<double> times;
  std::function<void()> chain = [&] {
    times.push_back(sim.now());
    if (times.size() < 4) sim.schedule_in(1.0, chain);
  };
  sim.schedule_at(0.5, chain);
  sim.run_all();
  EXPECT_EQ(times, (std::vector<double>{0.5, 1.5, 2.5, 3.5}));
}

TEST(Simulation, ExecutedCounterCounts) {
  Simulation sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(i + 1.0, [] {});
  sim.run_all();
  EXPECT_EQ(sim.executed(), 5u);
}

TEST(Simulation, RunAllGuardsAgainstRunaway) {
  Simulation sim;
  // A self-perpetuating chain should trip the max_events guard.
  std::function<void()> forever = [&] { sim.schedule_in(0.1, forever); };
  sim.schedule_at(0.0, forever);
  EXPECT_THROW(sim.run_all(1000), std::logic_error);
}

}  // namespace
}  // namespace diffserve::sim
