// Fixture: float accumulation inside unordered iteration. Must trip
// `float-accumulation-unordered`. The iteration itself is annotated away
// so this fixture isolates the accumulation rule: even an
// order-insensitive *set* of contributions sums differently when float
// addition reassociates.
#include <unordered_map>

double total_latency(const std::unordered_map<int, double>& by_worker) {
  double sum = 0.0;
  // ds-lint: allow(unordered-iteration): fixture isolates the accumulation rule
  for (const auto& entry : by_worker) {
    sum += entry.second;
  }
  return sum;
}
