#include "linalg/matrix.hpp"

#include <cmath>

#include "util/check.hpp"

namespace diffserve::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    DS_REQUIRE(r.size() == cols_, "ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diag(const std::vector<double>& d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  DS_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  DS_REQUIRE(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

double Matrix::trace() const {
  DS_REQUIRE(rows_ == cols_, "trace of non-square matrix");
  double t = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) t += (*this)(i, i);
  return t;
}

Matrix Matrix::operator+(const Matrix& o) const {
  DS_REQUIRE(rows_ == o.rows_ && cols_ == o.cols_, "shape mismatch in +");
  Matrix r = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) r.data_[i] += o.data_[i];
  return r;
}

Matrix Matrix::operator-(const Matrix& o) const {
  DS_REQUIRE(rows_ == o.rows_ && cols_ == o.cols_, "shape mismatch in -");
  Matrix r = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) r.data_[i] -= o.data_[i];
  return r;
}

Matrix Matrix::operator*(const Matrix& o) const {
  DS_REQUIRE(cols_ == o.rows_, "shape mismatch in *");
  Matrix r(rows_, o.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < o.cols_; ++j) r(i, j) += a * o(k, j);
    }
  }
  return r;
}

Matrix Matrix::operator*(double s) const {
  Matrix r = *this;
  for (auto& v : r.data_) v *= s;
  return r;
}

Matrix& Matrix::operator+=(const Matrix& o) {
  DS_REQUIRE(rows_ == o.rows_ && cols_ == o.cols_, "shape mismatch in +=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (auto& v : data_) v *= s;
  return *this;
}

std::vector<double> Matrix::apply(const std::vector<double>& v) const {
  DS_REQUIRE(v.size() == cols_, "shape mismatch in apply");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out[i] += (*this)(i, j) * v[j];
  return out;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  DS_REQUIRE(a.rows_ == b.rows_ && a.cols_ == b.cols_,
             "shape mismatch in max_abs_diff");
  double m = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i)
    m = std::max(m, std::fabs(a.data_[i] - b.data_[i]));
  return m;
}

bool Matrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = i + 1; j < cols_; ++j)
      if (std::fabs((*this)(i, j) - (*this)(j, i)) > tol) return false;
  return true;
}

Matrix Matrix::cholesky() const {
  DS_REQUIRE(rows_ == cols_, "cholesky of non-square matrix");
  const std::size_t n = rows_;
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double d = (*this)(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= l(j, k) * l(j, k);
    DS_REQUIRE(d > 0.0, "matrix not positive definite in cholesky");
    l(j, j) = std::sqrt(d);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = (*this)(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / l(j, j);
    }
  }
  return l;
}

}  // namespace diffserve::linalg
