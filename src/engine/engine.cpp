#include "engine/engine.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"
#include "util/log.hpp"

namespace diffserve::engine {

CascadeEngine::CascadeEngine(ExecutionBackend& backend,
                             const quality::Workload& workload,
                             const models::ModelRepository& repo,
                             const models::CascadeSpec& cascade,
                             const discriminator::Discriminator* disc,
                             const quality::FidScorer& scorer,
                             EngineConfig cfg)
    : backend_(backend),
      workload_(workload),
      repo_(repo),
      cascade_(cascade),
      disc_(disc),
      cfg_(cfg),
      sink_(workload, scorer),
      rng_(cfg.seed) {
  DS_REQUIRE(cfg_.total_workers >= 1, "need at least one worker");
  light_tier_ = repo_.model(cascade_.light_model).quality_tier;
  heavy_tier_ = repo_.model(cascade_.heavy_model).quality_tier;
  workers_.resize(static_cast<std::size_t>(cfg_.total_workers));
  for (std::size_t i = 0; i < workers_.size(); ++i)
    workers_[i].id = static_cast<int>(i);
}

double CascadeEngine::light_exec_latency(int batch) const {
  const auto& light = repo_.model(cascade_.light_model);
  const auto& disc = repo_.model(cascade_.discriminator);
  return light.latency.execution_latency(batch) +
         disc.latency.execution_latency(batch);
}

double CascadeEngine::heavy_exec_latency(int batch) const {
  return repo_.model(cascade_.heavy_model).latency.execution_latency(batch);
}

double CascadeEngine::exec_seconds(const WorkerSlot& w) const {
  return w.profile.execution_latency(w.batch_size) +
         (w.has_extra ? w.extra_profile.execution_latency(w.batch_size)
                      : 0.0);
}

void CascadeEngine::disarm_timer_locked(WorkerSlot& w) {
  if (!w.timer_armed) return;
  backend_.cancel(w.timer);
  w.timer_armed = false;
  // The epoch bump keeps a concurrently in-flight timer callback (which a
  // concurrent backend may still deliver) from disarming a newer timer.
  ++w.timer_epoch;
}

// ---- reconfiguration ------------------------------------------------------

void CascadeEngine::apply(const AllocationPlan& plan) {
  auto g = backend_.guard();
  int n_light = plan.light_workers;
  int n_heavy = plan.heavy_workers;
  DS_REQUIRE(n_light >= 0 && n_heavy >= 0, "negative worker counts");
  DS_REQUIRE(n_light + n_heavy <= cfg_.total_workers,
             "plan exceeds cluster size");

  // Spare workers join the light pool (or heavy if the plan has no light
  // pool at all) — the resource manager never idles a GPU.
  const int spare = cfg_.total_workers - n_light - n_heavy;
  if (n_light > 0 || n_heavy == 0)
    n_light += spare;
  else
    n_heavy += spare;

  // Stable role assignment: workers already in a role keep it while the
  // quota allows, minimizing model reloads.
  std::vector<Role> desired(workers_.size(), Role::kIdle);
  int remaining_light = n_light, remaining_heavy = n_heavy;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (workers_[i].role == Role::kLight && remaining_light > 0) {
      desired[i] = Role::kLight;
      --remaining_light;
    } else if (workers_[i].role == Role::kHeavy && remaining_heavy > 0) {
      desired[i] = Role::kHeavy;
      --remaining_heavy;
    }
  }
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (desired[i] != Role::kIdle) continue;
    if (remaining_light > 0) {
      desired[i] = Role::kLight;
      --remaining_light;
    } else if (remaining_heavy > 0) {
      desired[i] = Role::kHeavy;
      --remaining_heavy;
    }
  }

  // Validate before mutating any engine state so a bad plan leaves the
  // previous configuration intact.
  DS_REQUIRE(plan.light_batch >= 1 && plan.heavy_batch >= 1,
             "batch size must be >= 1");
  if (n_light > 0)
    DS_REQUIRE(
        repo_.model(cascade_.light_model).latency.supports(plan.light_batch),
        "light batch size not in latency profile");
  if (n_heavy > 0)
    DS_REQUIRE(
        repo_.model(cascade_.heavy_model).latency.supports(plan.heavy_batch),
        "heavy batch size not in latency profile");

  plan_ = plan;
  heavy_reserve_ =
      plan.mode == RoutingMode::kCascade && n_heavy > 0
          ? cfg_.heavy_reserve_factor * heavy_exec_latency(plan.heavy_batch)
          : 0.0;

  std::vector<Query> evicted;
  bool model_changed = false;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (desired[i] == Role::kIdle) continue;
    const std::string before = workers_[i].model_name;
    const bool was_configured = workers_[i].configured;
    auto out = configure_locked(workers_[i], desired[i]);
    if (!was_configured || workers_[i].model_name != before)
      model_changed = true;
    for (auto& q : out) evicted.push_back(std::move(q));
  }
  if (model_changed) ++reconfigurations_;
  if (!evicted.empty()) resubmit_locked(std::move(evicted));

  DS_LOG_DEBUG("engine") << "applied plan: light=" << n_light
                         << " heavy=" << n_heavy << " b1=" << plan.light_batch
                         << " b2=" << plan.heavy_batch
                         << " t=" << plan.threshold;
}

std::vector<Query> CascadeEngine::configure_locked(WorkerSlot& w, Role role) {
  const auto& model = repo_.model(role == Role::kLight ? cascade_.light_model
                                                       : cascade_.heavy_model);
  const int batch =
      role == Role::kLight ? plan_.light_batch : plan_.heavy_batch;
  DS_REQUIRE(batch >= 1, "batch size must be >= 1");
  DS_REQUIRE(model.latency.supports(batch),
             "batch size not in latency profile");

  const bool model_change = !w.configured || model.name != w.model_name;
  w.model_name = model.name;
  w.profile = model.latency;
  w.quality_tier = model.quality_tier;
  w.has_extra = role == Role::kLight && plan_.mode == RoutingMode::kCascade;
  if (w.has_extra)
    w.extra_profile = repo_.model(cascade_.discriminator).latency;
  w.batch_size = batch;
  w.role = role;
  w.configured = true;

  const std::size_t i = static_cast<std::size_t>(w.id);
  std::vector<Query> evicted;
  if (model_change) {
    // Queued work targeted the old model; hand it back for re-routing.
    evicted.reserve(w.queue.size());
    for (auto& e : w.queue) evicted.push_back(std::move(e.query));
    w.queue.clear();
    disarm_timer_locked(w);
    // Loading starts once any in-flight batch finishes; if idle, now.
    const double now = backend_.now();
    const double start = w.busy ? w.ready_at : now;
    w.ready_at = std::max(w.ready_at, start + cfg_.model_load_delay);
    // Wake up when the load completes in case work arrives meanwhile.
    // Scheduled even for a busy worker: its batch-completion callback runs
    // before ready_at and would otherwise leave queued queries stranded
    // with no timer armed.
    backend_.defer(w.ready_at - now, [this, i] {
      auto g = backend_.guard();
      maybe_start_batch_locked(i);
    });
  } else {
    // Same model: batch-size change applies immediately.
    maybe_start_batch_locked(i);
  }
  return evicted;
}

AllocationPlan CascadeEngine::plan() const {
  auto g = backend_.guard();
  return plan_;
}

// ---- admission & routing --------------------------------------------------

Query CascadeEngine::submit_next() {
  auto g = backend_.guard();
  Query q;
  q.seq = next_seq_++;
  q.prompt_id = static_cast<quality::QueryId>(q.seq % workload_.size());
  q.arrival_time = backend_.now();
  q.deadline = q.arrival_time + cfg_.slo_seconds;
  submit_locked(q);
  return q;
}

void CascadeEngine::submit(Query q) {
  auto g = backend_.guard();
  submit_locked(std::move(q));
}

void CascadeEngine::submit_locked(Query q) {
  ++submitted_;
  demand_.add(backend_.now());
  if (plan_.mode == RoutingMode::kDirect && rng_.bernoulli(plan_.p_heavy)) {
    q.stage = Stage::kHeavy;
    q.stage_deadline = q.deadline;
    route_heavy_locked(std::move(q));
    return;
  }
  q.stage = Stage::kLight;
  // In cascade mode, leave room for the possible heavy pass.
  q.stage_deadline =
      plan_.mode == RoutingMode::kCascade
          ? std::max(q.deadline - heavy_reserve_, q.arrival_time)
          : q.deadline;
  route_light_locked(std::move(q));
}

void CascadeEngine::resubmit_locked(std::vector<Query>&& queries) {
  for (auto& q : queries) {
    if (q.stage == Stage::kHeavy)
      route_heavy_locked(std::move(q));
    else
      route_light_locked(std::move(q));
  }
}

CascadeEngine::WorkerSlot* CascadeEngine::shortest_queue_locked(Role role) {
  WorkerSlot* best = nullptr;
  std::size_t best_len = 0;
  for (auto& w : workers_) {
    if (w.role != role || !w.configured) continue;
    const std::size_t len = w.queue.size() + (w.busy ? 1 : 0);
    if (best == nullptr || len < best_len) {
      best = &w;
      best_len = len;
    }
  }
  return best;
}

void CascadeEngine::route_light_locked(Query q) {
  WorkerSlot* w = shortest_queue_locked(Role::kLight);
  if (w == nullptr) {
    // No lightweight capacity (e.g. Clipper-Heavy): go straight to heavy.
    if (shortest_queue_locked(Role::kHeavy) != nullptr) {
      q.stage = Stage::kHeavy;
      q.stage_deadline = q.deadline;
      route_heavy_locked(std::move(q));
      return;
    }
    sink_.drop(q, backend_.now());
    return;
  }
  enqueue_locked(*w, std::move(q));
}

void CascadeEngine::route_heavy_locked(Query q) {
  WorkerSlot* w = shortest_queue_locked(Role::kHeavy);
  if (w == nullptr) {
    // No heavyweight capacity. A deferred query still has a light image —
    // serve it best-effort; a direct-mode query falls back to light.
    if (q.deferred) {
      sink_.complete(q, light_tier_, backend_.now());
      return;
    }
    if (shortest_queue_locked(Role::kLight) != nullptr) {
      q.stage = Stage::kLight;
      q.stage_deadline = q.deadline;
      route_light_locked(std::move(q));
      return;
    }
    sink_.drop(q, backend_.now());
    return;
  }
  enqueue_locked(*w, std::move(q));
}

void CascadeEngine::enqueue_locked(WorkerSlot& w, Query q) {
  DS_REQUIRE(w.configured, "enqueue on unconfigured worker");
  const double now = backend_.now();
  w.arrivals.add(now);
  w.queue.push_back({std::move(q), now});
  maybe_start_batch_locked(static_cast<std::size_t>(w.id));
}

// ---- batch formation ------------------------------------------------------

void CascadeEngine::maybe_start_batch_locked(std::size_t i) {
  WorkerSlot& w = workers_[i];
  if (!w.configured || w.busy || w.queue.empty()) return;
  const double now = backend_.now();
  if (now < w.ready_at) return;  // model still loading

  const int b = w.batch_size;
  if (static_cast<int>(w.queue.size()) >= b) {
    disarm_timer_locked(w);
    start_batch_locked(i);
    return;
  }

  // Under-filled: lazy batching, capped. Launch at the earlier of (a) the
  // latest time that still meets the tightest stage deadline and (b) one
  // execution period after the oldest enqueue (so light queries are not
  // held to the edge of their deadline just to fill a batch).
  const double exec = exec_seconds(w);
  double tightest = w.queue.front().query.stage_deadline;
  double oldest = w.queue.front().at;
  for (const auto& e : w.queue) {
    tightest = std::min(tightest, e.query.stage_deadline);
    oldest = std::min(oldest, e.at);
  }
  const double launch_at =
      std::min(tightest - exec - cfg_.launch_slack_seconds, oldest + exec);

  if (launch_at <= now) {
    disarm_timer_locked(w);
    start_batch_locked(i);
    return;
  }
  if (w.timer_armed && w.timer_at <= launch_at + 1e-12) return;  // already set
  disarm_timer_locked(w);
  w.timer_at = launch_at;
  w.timer_armed = true;
  const std::uint64_t epoch = ++w.timer_epoch;
  w.timer = backend_.defer(launch_at - now, [this, i, epoch] {
    auto g = backend_.guard();
    WorkerSlot& slot = workers_[i];
    // A concurrent backend may deliver a timer the engine cancelled (or
    // superseded) a moment ago; re-evaluating the batch is harmless, but
    // only the matching epoch may disarm.
    if (slot.timer_epoch == epoch) slot.timer_armed = false;
    maybe_start_batch_locked(i);
  });
}

void CascadeEngine::start_batch_locked(std::size_t i) {
  WorkerSlot& w = workers_[i];
  DS_CHECK(!w.busy && !w.queue.empty(), "start_batch preconditions");
  const int b = w.batch_size;
  const double exec = exec_seconds(w);
  const double now = backend_.now();
  const double done_at = now + exec;

  // Fill the batch, preemptively dropping queries that cannot finish by
  // their stage deadline even if launched right now (counted as SLO
  // violations, §4.1).
  std::vector<Query> batch;
  batch.reserve(static_cast<std::size_t>(b));
  while (!w.queue.empty() && static_cast<int>(batch.size()) < b) {
    Query q = std::move(w.queue.front().query);
    w.queue.pop_front();
    if (done_at > q.stage_deadline) {
      ++w.dropped;
      sink_.drop(q, now);
      continue;
    }
    batch.push_back(std::move(q));
  }
  if (batch.empty()) {
    // Everything at the head was overdue; try again with what remains.
    if (!w.queue.empty()) maybe_start_batch_locked(i);
    return;
  }

  w.busy = true;
  w.ready_at = std::max(w.ready_at, done_at);
  ++w.batches;
  w.processed += batch.size();

  const bool was_light = w.role == Role::kLight;
  const int tier = was_light ? light_tier_ : heavy_tier_;
  backend_.execute(
      w.id, exec,
      [this, i, tier, was_light, batch = std::move(batch)]() mutable {
        auto g = backend_.guard();
        finish_batch_locked(i, batch, tier, was_light);
      });
}

void CascadeEngine::finish_batch_locked(std::size_t i,
                                        std::vector<Query>& batch,
                                        int served_tier, bool was_light) {
  WorkerSlot& w = workers_[i];
  w.busy = false;
  const double now = backend_.now();
  if (!was_light || plan_.mode == RoutingMode::kDirect) {
    for (auto& q : batch) sink_.complete(q, served_tier, now);
  } else {
    // Cascade: score the light image with the discriminator.
    DS_CHECK(disc_ != nullptr, "cascade mode requires a discriminator");
    for (auto& q : batch) {
      const auto feature =
          workload_.generated_feature(q.prompt_id, served_tier);
      q.confidence = disc_->confidence(feature);
      if (confidence_observer_) confidence_observer_(q.confidence);
      if (q.confidence >= plan_.threshold) {
        sink_.complete(q, served_tier, now);
      } else {
        q.deferred = true;
        q.stage = Stage::kHeavy;
        q.stage_deadline = q.deadline;
        route_heavy_locked(std::move(q));
      }
    }
  }
  maybe_start_batch_locked(i);
}

// ---- observers & statistics -----------------------------------------------

void CascadeEngine::set_confidence_observer(
    std::function<void(double)> observer) {
  auto g = backend_.guard();
  confidence_observer_ = std::move(observer);
}

double CascadeEngine::demand_rate() const {
  auto g = backend_.guard();
  return demand_.rate(backend_.now());
}

PoolStats CascadeEngine::pool_stats_locked(Role role) const {
  PoolStats s;
  const double now = backend_.now();
  for (const auto& w : workers_) {
    if (w.role != role) continue;
    s.total_queue_length += static_cast<double>(w.queue.size());
    s.arrival_rate += w.arrivals.rate(now);
    ++s.workers;
  }
  return s;
}

PoolStats CascadeEngine::light_stats() const {
  auto g = backend_.guard();
  return pool_stats_locked(Role::kLight);
}

PoolStats CascadeEngine::heavy_stats() const {
  auto g = backend_.guard();
  return pool_stats_locked(Role::kHeavy);
}

std::uint64_t CascadeEngine::submitted() const {
  auto g = backend_.guard();
  return submitted_;
}

std::size_t CascadeEngine::reconfigurations() const {
  auto g = backend_.guard();
  return reconfigurations_;
}

double CascadeEngine::recent_violation_ratio() const {
  auto g = backend_.guard();
  return sink_.recent_violation_ratio(backend_.now());
}

CascadeEngine::WorkerInfo CascadeEngine::worker_info(std::size_t i) const {
  auto g = backend_.guard();
  const WorkerSlot& w = workers_[i];
  WorkerInfo info;
  info.configured = w.configured;
  info.heavy = w.role == Role::kHeavy;
  info.busy = w.busy;
  info.batch_size = w.batch_size;
  info.queue_length = w.queue.size();
  info.batches = w.batches;
  info.processed = w.processed;
  info.dropped = w.dropped;
  return info;
}

}  // namespace diffserve::engine
