// Terminal metrics collection — the single sink shared by every execution
// backend.
//
// Receives every completed or dropped query, materializes the served
// image's feature vector, and produces the two paper metrics: response
// quality (FID of the served distribution vs. the real reference) and the
// SLO violation ratio ("queries that fail to meet the SLO latency
// requirement or are preemptively dropped", §4.1) — both overall and as
// time series for the Figure 5/8 timelines. Also the per-hit-level
// completion counts and cache-path latency the cache suites assert on.
//
// Determinism requirement: aggregation is a pure fold over the terminal
// event sequence (per-query records are kept for the invariant suites),
// so identical event sequences give identical metrics on every backend;
// the engine feeds it monotone timestamps even on wall-clock backends.
#pragma once

#include <array>
#include <vector>

#include "engine/query.hpp"
#include "quality/fid.hpp"
#include "quality/workload.hpp"
#include "stats/streaming.hpp"
#include "stats/window.hpp"

namespace diffserve::engine {

/// Feature vector of the image the system actually served for `q` at
/// `tier`: the query's own generated image on a cache miss, the donor's
/// image on an exact cache hit, and the donor's image plus reuse noise —
/// scaled by the style distance and by the resumed-stage depth — on an
/// approximate hit. Shared by the sink (FID accounting) and the engine
/// (boundary-discriminator scoring), so a reused image is scored exactly
/// as it is served.
std::vector<double> served_image_feature(const quality::Workload& workload,
                                         const Query& q, int tier);

class MetricsSink {
 public:
  MetricsSink(const quality::Workload& workload,
              const quality::FidScorer& scorer);

  /// A query finished with an image produced by `served_tier`.
  void complete(const Query& q, int served_tier, double completion_time);
  /// A query was preemptively dropped (no image).
  void drop(const Query& q, double drop_time);

  /// Fast mode: `false` skips the per-query terminal Record (and the
  /// served-image feature materialization it requires) while keeping every
  /// counter and latency aggregate exact. overall_fid() and timeline()
  /// need the records and must not be called in fast mode. Throughput
  /// benches run fast; the invariant suites keep recording on (default).
  void set_record_terminal_events(bool on) { record_terminal_events_ = on; }
  bool record_terminal_events() const { return record_terminal_events_; }
  /// Pre-size the record log from the expected arrival count so a long run
  /// never reallocates it mid-measurement. No-op in fast mode.
  void reserve(std::size_t expected_terminals);

  std::size_t completed() const { return n_completed_; }
  std::size_t dropped() const { return n_dropped_; }
  std::size_t total() const { return n_completed_ + n_dropped_; }

  // --- per-SLO-class accounting ------------------------------------------
  // With classes disabled every query is kStandard, so the kStandard row
  // equals the overall counters and the other rows stay zero.
  std::size_t class_completed(QueryClass c) const {
    return class_completed_[static_cast<std::size_t>(c)];
  }
  std::size_t class_dropped(QueryClass c) const {
    return class_dropped_[static_cast<std::size_t>(c)];
  }
  std::size_t class_total(QueryClass c) const {
    return class_completed(c) + class_dropped(c);
  }
  /// Late completions + drops over terminated queries of class c (0 when
  /// none terminated).
  double class_violation_ratio(QueryClass c) const;
  /// Mean end-to-end latency of completed class-c queries (0 before any).
  double class_mean_latency(QueryClass c) const;

  /// Late completions + drops, over all terminated queries.
  double violation_ratio() const;
  /// Violation ratio over the recent sliding window (controller feedback
  /// signal, e.g. for AIMD batching).
  double recent_violation_ratio(double now) const;
  /// Mean end-to-end latency of completed queries (seconds).
  double mean_latency() const;
  double latency_percentile(double p) const;
  /// Fraction of completed queries served by the lightweight stage.
  double light_served_fraction() const;

  // --- prompt-reuse cache accounting (all zero with the cache off) -------
  /// Completions whose admission probe hit at `level`.
  std::size_t hit_level_count(cache::HitLevel level) const;
  /// Completions served from the cache at any level, over completions.
  double cache_served_fraction() const;
  /// Exact-hit completions over completions (demand the cache absorbed).
  double exact_hit_fraction() const;
  /// Mean end-to-end latency of exact-hit completions (0 before any) —
  /// the cache-path latency, vs. mean_latency() for the whole mix.
  double mean_cache_latency() const;

  /// FID of everything served so far.
  double overall_fid() const;

  /// Completed queries whose image was *produced* by stage s (0 =
  /// lightest). Distinct from light_served_fraction(), which counts the
  /// stage a query finished in: a best-effort completion finishes at an
  /// unstaffed deep stage but carries an earlier stage's image.
  std::size_t served_by_stage(std::size_t s) const;
  /// served_by_stage over completions, as fractions sized to `stages`
  /// (all zero when nothing completed).
  std::vector<double> stage_served_fractions(std::size_t stages) const;

  struct TimelinePoint {
    double time;              ///< window start
    double fid;               ///< -1 when the window had too few images
    double violation_ratio;
    double throughput;        ///< completions (incl. drops) per second
    std::size_t samples;
  };
  /// Aggregate terminations into fixed windows. FID windows with fewer
  /// than `min_fid_samples` images report fid = -1.
  std::vector<TimelinePoint> timeline(double window_seconds,
                                      std::size_t min_fid_samples = 24) const;

  /// One terminal event per query (completion or drop), in arrival order of
  /// the terminations. Exposed for invariant tests and offline analysis.
  struct Record {
    std::uint64_t seq;  ///< query sequence number
    double time;
    double latency;   ///< -1 for drops
    bool violated;
    bool dropped;
    int tier;         ///< -1 for drops
    std::size_t stage;    ///< stage the query occupied at termination
    int deferrals;        ///< confidence-based deferrals in its history
    QueryClass query_class;       ///< SLO class (kStandard when disabled)
    cache::HitLevel hit_level;    ///< admission-probe outcome
    std::vector<double> feature;  ///< empty for drops
  };
  const std::vector<Record>& records() const { return records_; }

 private:
  const quality::Workload& workload_;
  const quality::FidScorer& scorer_;
  bool record_terminal_events_ = true;
  std::vector<Record> records_;
  std::size_t n_completed_ = 0;
  std::size_t n_dropped_ = 0;
  std::size_t n_late_ = 0;
  std::size_t n_light_served_ = 0;
  /// Per-SLO-class terminals, indexed by QueryClass.
  std::array<std::size_t, kQueryClassCount> class_completed_{};
  std::array<std::size_t, kQueryClassCount> class_dropped_{};
  std::array<std::size_t, kQueryClassCount> class_late_{};
  std::array<stats::RunningStats, kQueryClassCount> class_latency_{};
  std::vector<std::size_t> served_by_stage_;  ///< grown on demand
  /// Completions per cache hit level, indexed by HitLevel's value.
  std::array<std::size_t, 4> hit_level_counts_{};
  stats::RunningStats cache_latency_;  ///< exact-hit completions only
  stats::RunningStats latency_;
  mutable stats::PercentileTracker latency_pct_;
  stats::SlidingWindowRatio recent_{20.0};
};

}  // namespace diffserve::engine
