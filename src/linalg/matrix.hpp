// Dense row-major matrix with the small set of operations the FID
// computation needs: products, transpose, trace, Cholesky, and elementwise
// arithmetic. Dimensions in this library are small (feature dimension
// ~16-64), so a simple dense implementation is the right tool.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace diffserve::linalg {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  /// Row-major construction from nested initializer lists.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);
  /// Diagonal matrix from a vector.
  static Matrix diag(const std::vector<double>& d);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  Matrix transpose() const;
  double trace() const;

  Matrix operator+(const Matrix& o) const;
  Matrix operator-(const Matrix& o) const;
  Matrix operator*(const Matrix& o) const;
  Matrix operator*(double s) const;
  Matrix& operator+=(const Matrix& o);
  Matrix& operator*=(double s);

  /// Matrix-vector product.
  std::vector<double> apply(const std::vector<double>& v) const;

  /// Frobenius norm.
  double frobenius_norm() const;
  /// Max |a_ij - b_ij|.
  static double max_abs_diff(const Matrix& a, const Matrix& b);

  /// Is the matrix symmetric to within tol?
  bool is_symmetric(double tol = 1e-9) const;

  /// Cholesky factor L with A = L L^T. Requires symmetric positive
  /// definite input (throws std::invalid_argument otherwise).
  Matrix cholesky() const;

  const std::vector<double>& data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace diffserve::linalg
