// Fixture: wall-clock read feeding a decision. Must trip `wall-clock`.
#include <chrono>

double deadline_seconds() {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}
