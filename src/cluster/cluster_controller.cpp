#include "cluster/cluster_controller.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "models/latency_profile.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace diffserve::cluster {

namespace {

void accumulate(cache::CacheStats& into, const cache::CacheStats& s) {
  into.lookups += s.lookups;
  into.exact_hits += s.exact_hits;
  into.near_hits += s.near_hits;
  into.far_hits += s.far_hits;
  into.insertions += s.insertions;
  into.latent_insertions += s.latent_insertions;
  into.evictions += s.evictions;
  into.step_fraction_sum += s.step_fraction_sum;
  into.near_step_fraction_sum += s.near_step_fraction_sum;
  into.far_step_fraction_sum += s.far_step_fraction_sum;
  into.lsh_probed_cells += s.lsh_probed_cells;
  into.lsh_probe_candidates += s.lsh_probe_candidates;
  into.heap_compactions += s.heap_compactions;
  into.heap_stale_pops += s.heap_stale_pops;
}

}  // namespace

ClusterController::ClusterController(
    ShardFrontend& frontend, const engine::CascadeEngine& reference,
    int workers_per_shard, double slo_seconds,
    std::unique_ptr<control::Allocator> allocator,
    std::vector<discriminator::DeferralProfile> offline_profiles,
    ClusterControllerConfig cfg)
    : frontend_(frontend),
      reference_(reference),
      allocator_(std::move(allocator)),
      workers_per_shard_(workers_per_shard),
      slo_seconds_(slo_seconds),
      cfg_(cfg),
      snapshots_(frontend.shard_count()),
      demand_holt_(cfg.control.ewma_alpha, cfg.control.trend_beta),
      cache_hit_ewma_(cfg.control.cache_alpha),
      cache_near_share_ewma_(cfg.control.cache_alpha),
      cache_far_share_ewma_(cfg.control.cache_alpha),
      cache_near_frac_ewma_(cfg.control.cache_alpha),
      cache_far_frac_ewma_(cfg.control.cache_alpha) {
  DS_REQUIRE(allocator_ != nullptr, "cluster controller needs an allocator");
  DS_REQUIRE(frontend_.shard_count() > 0,
             "construct the cluster controller after attaching shards");
  DS_REQUIRE(cfg_.control.period_seconds > 0.0,
             "control period must be positive");
  DS_REQUIRE(offline_profiles.size() == reference_.boundary_count(),
             "need one offline deferral profile per cascade boundary");
  profiles_.reserve(offline_profiles.size());
  for (auto& p : offline_profiles)
    profiles_.emplace_back(std::move(p), cfg_.control.online_profile_capacity);
  frontend_.set_stats_listener([this](const net::ShardStatsMsg& m) {
    util::MutexLock lock(snap_mu_);
    if (m.shard < snapshots_.size()) snapshots_[m.shard] = m;
  });
}

void ClusterController::observe_confidence(std::size_t boundary,
                                           double confidence) {
  util::MutexLock lock(profile_mu_);
  DS_REQUIRE(boundary < profiles_.size(), "confidence for unknown boundary");
  profiles_[boundary].observe(confidence);
}

void ClusterController::start() {
  if (cfg_.control.initial_demand_guess > 0.0)
    demand_holt_.observe(cfg_.control.initial_demand_guess);
  running_.store(true);
  next_tick_time_ = reference_.backend().now();
  tick();  // provision immediately rather than serving blind for a period
  schedule_next_tick();
}

void ClusterController::stop() {
  running_.store(false);
  util::MutexLock lock(tick_mu_);
  if (tick_handle_.valid()) reference_.backend().cancel(tick_handle_);
  tick_handle_ = {};
}

void ClusterController::schedule_next_tick() {
  // Anchored to absolute times, like the single-engine controller, so
  // solve time never stretches the period.
  next_tick_time_ += cfg_.control.period_seconds;
  auto& backend = reference_.backend();
  const double delay = next_tick_time_ - backend.now();
  const auto handle = backend.defer(delay, [this] {
    if (!running_.load()) return;
    reference_.backend().offload([this] {
      if (!running_.load()) return;
      tick();
      schedule_next_tick();
    });
  });
  util::MutexLock lock(tick_mu_);
  tick_handle_ = handle;
}

void ClusterController::tick() {
  const std::uint64_t token = ++token_;
  for (std::size_t s = 0; s < frontend_.shard_count(); ++s)
    frontend_.send_to_shard(
        s, net::encode(net::StatsRequestMsg{static_cast<std::uint32_t>(s),
                                            token}));
  if (cfg_.gather_delay_seconds <= 0.0) {
    // Over a synchronous transport the snapshots are already in — solve
    // on statistics taken at this very instant.
    solve();
    return;
  }
  auto& backend = reference_.backend();
  backend.defer(cfg_.gather_delay_seconds, [this] {
    if (!running_.load()) return;
    reference_.backend().offload([this] {
      if (running_.load()) solve();
    });
  });
}

double ClusterController::effective_exact_hit_ratio() const {
  if (!cfg_.control.cache_aware || !cache_seen_enabled_) return 0.0;
  return std::min(0.95, cache_hit_ewma_.value());
}

double ClusterController::effective_service_discount() const {
  if (!cfg_.control.cache_aware || !cache_seen_enabled_) return 1.0;
  double discount = 1.0;
  if (cache_near_share_ewma_.has_value() && cache_near_frac_ewma_.has_value())
    discount -= cache_near_share_ewma_.value() *
                (1.0 - cache_near_frac_ewma_.value());
  if (cache_far_share_ewma_.has_value() && cache_far_frac_ewma_.has_value())
    discount -= cache_far_share_ewma_.value() *
                (1.0 - cache_far_frac_ewma_.value());
  return std::min(1.0, std::max(discount, 0.05));
}

void ClusterController::observe_cache(const cache::CacheStats& summed,
                                      bool enabled) {
  if (enabled) cache_seen_enabled_ = true;
  if (!cfg_.control.cache_aware || !cache_seen_enabled_) return;
  // Identical differencing to control::Controller::observe_cache, over
  // the cluster-summed counters (all CacheStats fields are additive).
  const std::uint64_t lookups = summed.lookups - last_cache_stats_.lookups;
  if (lookups > 0) {
    const std::uint64_t exact =
        summed.exact_hits - last_cache_stats_.exact_hits;
    cache_hit_ewma_.observe(static_cast<double>(exact) /
                            static_cast<double>(lookups));
    const std::uint64_t non_exact = lookups - exact;
    if (non_exact > 0) {
      const std::uint64_t near = summed.near_hits - last_cache_stats_.near_hits;
      const std::uint64_t far = summed.far_hits - last_cache_stats_.far_hits;
      cache_near_share_ewma_.observe(static_cast<double>(near) /
                                     static_cast<double>(non_exact));
      cache_far_share_ewma_.observe(static_cast<double>(far) /
                                    static_cast<double>(non_exact));
      if (near > 0)
        cache_near_frac_ewma_.observe(
            (summed.near_step_fraction_sum -
             last_cache_stats_.near_step_fraction_sum) /
            static_cast<double>(near));
      if (far > 0)
        cache_far_frac_ewma_.observe(
            (summed.far_step_fraction_sum -
             last_cache_stats_.far_step_fraction_sum) /
            static_cast<double>(far));
    }
  }
  last_cache_stats_ = summed;
}

void ClusterController::solve() {
  const double now = reference_.backend().now();
  std::vector<std::optional<net::ShardStatsMsg>> snaps;
  {
    util::MutexLock lock(snap_mu_);
    snaps = snapshots_;
  }

  double observed = 0.0;
  double violation_sum = 0.0;
  std::size_t violation_n = 0;
  cache::CacheStats summed;
  bool cache_enabled = false;
  const std::size_t n_stages = reference_.stage_count();
  std::vector<double> queue_sum(n_stages, 0.0);
  std::vector<double> arrival_sum(n_stages, 0.0);
  std::vector<double> shard_demand(snaps.size(), 0.0);
  for (std::size_t s = 0; s < snaps.size(); ++s) {
    if (!snaps[s]) continue;
    const auto& m = *snaps[s];
    observed += m.demand_rate;
    shard_demand[s] = m.demand_rate;
    violation_sum += m.recent_violation_ratio;
    ++violation_n;
    cache_enabled = cache_enabled || m.cache_enabled;
    accumulate(summed, m.cache);
    for (std::size_t st = 0; st < m.stages.size() && st < n_stages; ++st) {
      queue_sum[st] += m.stages[st].queue_length;
      arrival_sum[st] += m.stages[st].arrival_rate;
    }
  }

  // The first tick fires before any arrivals; folding its empty-window
  // observation into the estimate would decay the initial demand guess.
  if (!first_tick_) demand_holt_.observe(observed);
  first_tick_ = false;
  observe_cache(summed, cache_enabled);

  control::AllocationInput in;
  in.stages.assign(n_stages, {});
  in.boundary_grids.assign(reference_.boundary_count(), {});
  in.demand_qps = demand_holt_.forecast(cfg_.control.forecast_horizon_periods);
  in.over_provision = cfg_.control.over_provision;
  in.slo_seconds = slo_seconds_;
  in.total_workers =
      workers_per_shard_ * static_cast<int>(frontend_.shard_count());
  in.recent_violation_ratio =
      violation_n > 0 ? violation_sum / static_cast<double>(violation_n) : 0.0;
  const double service_discount = effective_service_discount();
  in.demand_qps *= 1.0 - effective_exact_hit_ratio();
  for (std::size_t s = 0; s < n_stages; ++s) {
    auto& stage = in.stages[s];
    stage.queue_length = queue_sum[s];
    stage.arrival_rate = arrival_sum[s];
    stage.utilization_target = control::StageObs::default_utilization_target(s);
    // Shards are homogeneous replicas: the reference engine's §3.3
    // latency math (guarded const read) stands in for every shard.
    std::map<int, double> lat;
    for (const int b : models::standard_batch_sizes())
      lat[b] = reference_.stage_exec_latency(s, b) * service_discount;
    stage.perf = control::StagePerfModel(
        models::LatencyProfile(std::move(lat)), nullptr);
  }
  {
    util::MutexLock lock(profile_mu_);
    for (std::size_t b = 0; b < profiles_.size(); ++b)
      in.boundary_grids[b] = profiles_[b].grid(
          cfg_.control.threshold_grid_points,
          cfg_.control.max_deferral_fraction);
  }

  const control::AllocationDecision d = allocator_->allocate(in);
  std::vector<engine::AllocationPlan> plans =
      split_plan(d, shard_demand, workers_per_shard_);
  for (std::size_t s = 0; s < plans.size(); ++s)
    frontend_.send_to_shard(
        s, net::encode(net::PlanMsg{static_cast<std::uint32_t>(s), plans[s]}));

  history_.push_back({now, in.demand_qps, observed,
                      in.recent_violation_ratio, d, std::move(plans)});
  DS_LOG_DEBUG("cluster-controller")
      << "t=" << now << " demand=" << in.demand_qps
      << " shards=" << frontend_.shard_count()
      << " x0=" << d.workers.front() << " x_last=" << d.workers.back()
      << (d.feasible ? "" : " (overload)");
}

std::vector<engine::AllocationPlan> ClusterController::split_plan(
    const control::AllocationDecision& d,
    const std::vector<double>& shard_demand, int workers_per_shard) {
  const std::size_t n = shard_demand.size();
  DS_REQUIRE(n > 0, "split_plan over zero shards");
  const std::size_t n_stages = d.workers.size();

  std::vector<engine::AllocationPlan> plans(n);
  for (auto& p : plans) {
    p.mode = d.direct_mode ? engine::RoutingMode::kDirect
                           : engine::RoutingMode::kCascade;
    p.workers.assign(n_stages, 0);
    p.batches = d.batches;
    p.thresholds = d.thresholds;
    p.p_heavy = d.p_heavy;
  }

  // Demand shares; a demand-free cluster (first tick) splits evenly.
  std::vector<double> w = shard_demand;
  double total = 0.0;
  for (double x : w) total += x;
  if (total <= 0.0) {
    w.assign(n, 1.0);
    total = static_cast<double>(n);
  }
  std::vector<int> capacity(n, workers_per_shard);

  // Deepest stage first: the scarce downstream pools get apportioned
  // before entry pools eat shard capacity.
  for (std::size_t s = n_stages; s-- > 0;) {
    const int x = d.workers[s];
    if (x <= 0) continue;
    std::vector<int> give(n, 0);
    std::vector<double> frac(n, 0.0);
    int assigned = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double target = static_cast<double>(x) * w[i] / total;
      const double fl = std::floor(target + 1e-9);
      give[i] = std::min(static_cast<int>(fl), capacity[i]);
      frac[i] = target - fl;
      assigned += give[i];
    }
    // Largest-remainder distribution of the leftovers, ties and repeat
    // passes resolved by shard index — fully deterministic.
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (frac[a] != frac[b]) return frac[a] > frac[b];
      return a < b;
    });
    int rem = x - assigned;
    while (rem > 0) {
      bool progress = false;
      for (const std::size_t i : order) {
        if (rem == 0) break;
        if (give[i] < capacity[i]) {
          ++give[i];
          --rem;
          progress = true;
        }
      }
      if (!progress) break;  // cluster at capacity; surplus workers unplaced
    }
    for (std::size_t i = 0; i < n; ++i) {
      plans[i].workers[s] = give[i];
      capacity[i] -= give[i];
    }
  }
  return plans;
}

}  // namespace diffserve::cluster
