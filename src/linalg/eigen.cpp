#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace diffserve::linalg {

EigenDecomposition eigen_symmetric(const Matrix& a, double tol,
                                   int max_sweeps) {
  DS_REQUIRE(a.rows() == a.cols(), "eigendecomposition needs square input");
  DS_REQUIRE(a.is_symmetric(1e-7), "eigendecomposition needs symmetric input");
  const std::size_t n = a.rows();

  Matrix d = a;                    // becomes diagonal
  Matrix v = Matrix::identity(n);  // accumulates rotations

  auto off_diagonal_norm = [&]() {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) s += d(i, j) * d(i, j);
    return std::sqrt(s);
  };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm() <= tol) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = d(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double app = d(p, p);
        const double aqq = d(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t_val =
            (theta >= 0.0 ? 1.0 : -1.0) /
            (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t_val * t_val + 1.0);
        const double s = t_val * c;
        // Apply rotation R(p, q, angle) on both sides of d.
        for (std::size_t k = 0; k < n; ++k) {
          const double dkp = d(k, p);
          const double dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double dpk = d(p, k);
          const double dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort ascending by eigenvalue, permuting eigenvector columns to match.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return d(i, i) < d(j, j); });

  EigenDecomposition out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t c = 0; c < n; ++c) {
    out.values[c] = d(order[c], order[c]);
    for (std::size_t r = 0; r < n; ++r) out.vectors(r, c) = v(r, order[c]);
  }
  return out;
}

Matrix sqrtm_psd(const Matrix& a, double clip_tol) {
  auto eig = eigen_symmetric(a);
  const std::size_t n = a.rows();
  std::vector<double> sqrt_vals(n);
  for (std::size_t i = 0; i < n; ++i) {
    double lambda = eig.values[i];
    DS_REQUIRE(lambda > -clip_tol * std::max(1.0, std::fabs(eig.values.back())),
               "sqrtm_psd input has a significantly negative eigenvalue");
    sqrt_vals[i] = std::sqrt(std::max(0.0, lambda));
  }
  // V * diag(sqrt(lambda)) * V^T
  return eig.vectors * Matrix::diag(sqrt_vals) * eig.vectors.transpose();
}

}  // namespace diffserve::linalg
