// Tests for the MILP substrate: simplex on known LPs, branch-and-bound on
// known integer programs, and a parameterized cross-check of the MILP
// solver against brute-force enumeration on random small problems.
#include <gtest/gtest.h>

#include <cmath>

#include "milp/branch_and_bound.hpp"
#include "milp/problem.hpp"
#include "milp/simplex.hpp"
#include "util/rng.hpp"

namespace diffserve::milp {
namespace {

TEST(Simplex, TextbookTwoVariable) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> x=2, y=6, obj=36.
  Problem p;
  const int x = p.add_variable("x", VarType::kContinuous, 0, kInfinity, 3);
  const int y = p.add_variable("y", VarType::kContinuous, 0, kInfinity, 5);
  p.add_constraint("c1", {{x, 1.0}}, Sense::kLe, 4);
  p.add_constraint("c2", {{y, 2.0}}, Sense::kLe, 12);
  p.add_constraint("c3", {{x, 3.0}, {y, 2.0}}, Sense::kLe, 18);
  const auto sol = solve_lp(p);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 36.0, 1e-7);
  EXPECT_NEAR(sol.values[static_cast<std::size_t>(x)], 2.0, 1e-7);
  EXPECT_NEAR(sol.values[static_cast<std::size_t>(y)], 6.0, 1e-7);
}

TEST(Simplex, GreaterEqualAndEquality) {
  // min x + y s.t. x + y >= 2, x == 0.5  -> as max -(x+y): x=0.5, y=1.5.
  Problem p;
  const int x = p.add_variable("x", VarType::kContinuous, 0, kInfinity, -1);
  const int y = p.add_variable("y", VarType::kContinuous, 0, kInfinity, -1);
  p.add_constraint("ge", {{x, 1.0}, {y, 1.0}}, Sense::kGe, 2.0);
  p.add_constraint("eq", {{x, 1.0}}, Sense::kEq, 0.5);
  const auto sol = solve_lp(p);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, -2.0, 1e-7);
  EXPECT_NEAR(sol.values[static_cast<std::size_t>(x)], 0.5, 1e-7);
  EXPECT_NEAR(sol.values[static_cast<std::size_t>(y)], 1.5, 1e-7);
}

TEST(Simplex, VariableBoundsRespected) {
  // max x + y with 1 <= x <= 2, 0 <= y <= 3, x + y <= 4 -> obj 4.
  Problem p;
  const int x = p.add_variable("x", VarType::kContinuous, 1, 2, 1);
  const int y = p.add_variable("y", VarType::kContinuous, 0, 3, 1);
  p.add_constraint("cap", {{x, 1.0}, {y, 1.0}}, Sense::kLe, 4.0);
  const auto sol = solve_lp(p);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 4.0, 1e-7);
  EXPECT_GE(sol.values[static_cast<std::size_t>(x)], 1.0 - 1e-9);
  EXPECT_LE(sol.values[static_cast<std::size_t>(y)], 3.0 + 1e-9);
}

TEST(Simplex, DetectsInfeasible) {
  Problem p;
  const int x = p.add_variable("x", VarType::kContinuous, 0, 1, 1);
  p.add_constraint("impossible", {{x, 1.0}}, Sense::kGe, 5.0);
  EXPECT_EQ(solve_lp(p).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Problem p;
  p.add_variable("x", VarType::kContinuous, 0, kInfinity, 1);
  EXPECT_EQ(solve_lp(p).status, SolveStatus::kUnbounded);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Multiple constraints active at the optimum.
  Problem p;
  const int x = p.add_variable("x", VarType::kContinuous, 0, kInfinity, 1);
  const int y = p.add_variable("y", VarType::kContinuous, 0, kInfinity, 1);
  p.add_constraint("a", {{x, 1.0}, {y, 1.0}}, Sense::kLe, 1.0);
  p.add_constraint("b", {{x, 1.0}}, Sense::kLe, 1.0);
  p.add_constraint("c", {{y, 1.0}}, Sense::kLe, 1.0);
  p.add_constraint("d", {{x, 2.0}, {y, 2.0}}, Sense::kLe, 2.0);
  const auto sol = solve_lp(p);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 1.0, 1e-7);
}

TEST(Simplex, NonZeroLowerBoundsShifted) {
  // max -x with x >= 3 -> x = 3.
  Problem p;
  const int x = p.add_variable("x", VarType::kContinuous, 3, kInfinity, -1);
  (void)x;
  const auto sol = solve_lp(p);
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.values[0], 3.0, 1e-8);
}

TEST(Problem, ViolationMeasurement) {
  Problem p;
  const int x = p.add_variable("x", VarType::kContinuous, 0, 1, 1);
  p.add_constraint("c", {{x, 1.0}}, Sense::kLe, 0.5);
  EXPECT_NEAR(p.max_violation({0.8}), 0.3, 1e-12);
  EXPECT_NEAR(p.max_violation({0.4}), 0.0, 1e-12);
  EXPECT_NEAR(p.objective_value({0.4}), 0.4, 1e-12);
}

TEST(Milp, KnapsackKnownOptimum) {
  // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6, binary -> a + c = 17? Check:
  // {a,c}: weight 5 value 17; {b,c}: weight 6 value 20 <- optimum.
  Problem p;
  const int a = p.add_variable("a", VarType::kBinary, 0, 1, 10);
  const int b = p.add_variable("b", VarType::kBinary, 0, 1, 13);
  const int c = p.add_variable("c", VarType::kBinary, 0, 1, 7);
  p.add_constraint("w", {{a, 3.0}, {b, 4.0}, {c, 2.0}}, Sense::kLe, 6.0);
  const auto res = solve_milp(p);
  ASSERT_TRUE(res.solution.optimal());
  EXPECT_NEAR(res.solution.objective, 20.0, 1e-7);
  EXPECT_NEAR(res.solution.values[static_cast<std::size_t>(b)], 1.0, 1e-9);
  EXPECT_NEAR(res.solution.values[static_cast<std::size_t>(c)], 1.0, 1e-9);
}

TEST(Milp, IntegerRounding) {
  // max x s.t. 2x <= 7, x integer -> 3 (LP relaxation 3.5).
  Problem p;
  const int x = p.add_variable("x", VarType::kInteger, 0, kInfinity, 1);
  p.add_constraint("c", {{x, 2.0}}, Sense::kLe, 7.0);
  const auto res = solve_milp(p);
  ASSERT_TRUE(res.solution.optimal());
  EXPECT_NEAR(res.solution.values[0], 3.0, 1e-9);
}

TEST(Milp, MixedIntegerContinuous) {
  // max 2x + y, x integer, y continuous; x + y <= 3.5, x <= 2.2.
  // Optimum: x = 2, y = 1.5 -> 5.5.
  Problem p;
  const int x = p.add_variable("x", VarType::kInteger, 0, kInfinity, 2);
  const int y = p.add_variable("y", VarType::kContinuous, 0, kInfinity, 1);
  p.add_constraint("sum", {{x, 1.0}, {y, 1.0}}, Sense::kLe, 3.5);
  p.add_constraint("xcap", {{x, 1.0}}, Sense::kLe, 2.2);
  const auto res = solve_milp(p);
  ASSERT_TRUE(res.solution.optimal());
  EXPECT_NEAR(res.solution.objective, 5.5, 1e-7);
}

TEST(Milp, InfeasibleIntegerProblem) {
  // 0.4 <= x <= 0.6 has no integer point.
  Problem p;
  p.add_variable("x", VarType::kInteger, 0, 1, 1);
  p.add_constraint("lo", {{0, 1.0}}, Sense::kGe, 0.4);
  p.add_constraint("hi", {{0, 1.0}}, Sense::kLe, 0.6);
  const auto res = solve_milp(p);
  EXPECT_EQ(res.solution.status, SolveStatus::kInfeasible);
}

TEST(Milp, OneHotSelection) {
  // max sum(v_k z_k) with sum z_k == 1 picks the max coefficient.
  Problem p;
  std::vector<int> z;
  const std::vector<double> v = {0.3, 0.9, 0.5, 0.7};
  std::vector<std::pair<int, double>> terms;
  for (std::size_t k = 0; k < v.size(); ++k) {
    z.push_back(p.add_variable("z" + std::to_string(k), VarType::kBinary, 0,
                               1, v[k]));
    terms.push_back({z.back(), 1.0});
  }
  p.add_constraint("onehot", terms, Sense::kEq, 1.0);
  const auto res = solve_milp(p);
  ASSERT_TRUE(res.solution.optimal());
  EXPECT_NEAR(res.solution.objective, 0.9, 1e-9);
  EXPECT_NEAR(res.solution.values[1], 1.0, 1e-9);
}

// Property: on random small binary problems, branch-and-bound matches
// exhaustive enumeration exactly.
class MilpVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(MilpVsBruteForce, MatchesEnumeration) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 17 + 3);
  const int n = 6;
  const int m = 3;
  Problem p;
  std::vector<double> obj(n);
  for (int i = 0; i < n; ++i) {
    obj[static_cast<std::size_t>(i)] = rng.uniform(-5.0, 10.0);
    p.add_variable("b" + std::to_string(i), VarType::kBinary, 0, 1,
                   obj[static_cast<std::size_t>(i)]);
  }
  std::vector<std::vector<double>> rows(m, std::vector<double>(n));
  std::vector<double> rhs(m);
  for (int r = 0; r < m; ++r) {
    std::vector<std::pair<int, double>> terms;
    for (int i = 0; i < n; ++i) {
      rows[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)] =
          rng.uniform(0.0, 4.0);
      terms.push_back(
          {i, rows[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)]});
    }
    rhs[static_cast<std::size_t>(r)] = rng.uniform(2.0, 10.0);
    p.add_constraint("r" + std::to_string(r), terms, Sense::kLe,
                     rhs[static_cast<std::size_t>(r)]);
  }

  // Brute force over 2^n assignments.
  double best = -1e18;
  for (int mask = 0; mask < (1 << n); ++mask) {
    bool ok = true;
    for (int r = 0; r < m && ok; ++r) {
      double lhs = 0.0;
      for (int i = 0; i < n; ++i)
        if (mask & (1 << i))
          lhs += rows[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)];
      ok = lhs <= rhs[static_cast<std::size_t>(r)] + 1e-9;
    }
    if (!ok) continue;
    double val = 0.0;
    for (int i = 0; i < n; ++i)
      if (mask & (1 << i)) val += obj[static_cast<std::size_t>(i)];
    best = std::max(best, val);
  }

  const auto res = solve_milp(p);
  ASSERT_TRUE(res.solution.optimal());
  EXPECT_NEAR(res.solution.objective, best, 1e-6);
  EXPECT_LT(p.max_violation(res.solution.values), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(RandomBinaryPrograms, MilpVsBruteForce,
                         ::testing::Range(0, 15));

TEST(Milp, SolutionSatisfiesAllConstraints) {
  Problem p;
  const int x = p.add_variable("x", VarType::kInteger, 0, 10, 3);
  const int y = p.add_variable("y", VarType::kInteger, 0, 10, 2);
  p.add_constraint("c1", {{x, 2.0}, {y, 1.0}}, Sense::kLe, 11.0);
  p.add_constraint("c2", {{x, 1.0}, {y, 3.0}}, Sense::kLe, 18.0);
  const auto res = solve_milp(p);
  ASSERT_TRUE(res.solution.optimal());
  EXPECT_LT(p.max_violation(res.solution.values), 1e-9);
  // Integrality.
  for (const double v : res.solution.values)
    EXPECT_NEAR(v, std::round(v), 1e-9);
}

}  // namespace
}  // namespace diffserve::milp
