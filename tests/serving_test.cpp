// Tests for the DES serving path: engine batch formation and drop policy,
// cascade routing, the metrics sink, and system reconfiguration — all
// exercised through the SimulationBackend (the policy itself lives in
// src/engine/ and is shared with the threaded testbed).
#include <gtest/gtest.h>

#include "discriminator/discriminator.hpp"
#include "engine/engine.hpp"
#include "engine/metrics_sink.hpp"
#include "models/model_repository.hpp"
#include "quality/fid.hpp"
#include "quality/workload.hpp"
#include "serving/system.hpp"
#include "sim/simulation.hpp"

namespace diffserve::serving {
namespace {

Query make_query(std::uint64_t seq, double arrival, double deadline,
                 double stage_deadline) {
  Query q;
  q.seq = seq;
  q.prompt_id = static_cast<quality::QueryId>(seq % 50);
  q.arrival_time = arrival;
  q.deadline = deadline;
  q.stage_deadline = stage_deadline;
  return q;
}

// --- batch-policy tests over a synthetic unit cascade -------------------
//
// Light model "m" has e(1)=1, e(2)=1.5, e(4)=2.5; direct mode with
// p_heavy=0 sends every query through it with no discriminator pass, so
// completion times expose the engine's batching decisions exactly.

models::ModelRepository unit_repo() {
  models::ModelRepository repo;
  repo.register_model({"m", models::ModelKind::kDiffusion,
                       models::LatencyProfile(std::map<int, double>{
                           {1, 1.0}, {2, 1.5}, {4, 2.5}}),
                       /*tier=*/1, 512});
  repo.register_model({"h", models::ModelKind::kDiffusion,
                       models::LatencyProfile::affine(1.0), /*tier=*/2, 512});
  repo.register_model({"d", models::ModelKind::kDiscriminator,
                       models::LatencyProfile::affine(0.01), 0, 512});
  repo.register_cascade({"unit", "m", "h", "d", 100.0});
  return repo;
}

class UnitHarness {
 public:
  explicit UnitHarness(double slo, int total_workers = 1)
      : repo_(unit_repo()) {
    SystemConfig cfg;
    cfg.total_workers = total_workers;
    cfg.slo_seconds = slo;
    cfg.model_load_delay = 0.0;
    system_ = std::make_unique<ServingSystem>(sim_, workload_, repo_,
                                              repo_.cascade("unit"), nullptr,
                                              scorer_, cfg);
  }

  void apply_direct(int light_batch) {
    AllocationPlan plan;
    plan.mode = RoutingMode::kDirect;
    plan.light_workers() = system_->config().total_workers;
    plan.heavy_workers() = 0;
    plan.light_batch() = light_batch;
    system_->apply(plan);
  }

  sim::Simulation sim_;
  quality::Workload workload_{60};
  quality::FidScorer scorer_{workload_};
  models::ModelRepository repo_;
  std::unique_ptr<ServingSystem> system_;
};

TEST(EngineBatching, FullBatchStartsImmediately) {
  UnitHarness h(/*slo=*/100.0);
  h.apply_direct(/*light_batch=*/2);
  h.system_->inject_arrivals({0.0, 0.0});
  h.sim_.run_until(1.6);
  // e(2) = 1.5: both queries complete together at 1.5.
  EXPECT_EQ(h.system_->sink().completed(), 2u);
  EXPECT_NEAR(h.system_->sink().mean_latency(), 1.5, 1e-9);
  EXPECT_EQ(h.system_->engine().worker_info(0).processed, 2u);
}

TEST(EngineBatching, UnderfilledBatchLaunchesByTimeout) {
  UnitHarness h(100.0);
  h.apply_direct(4);  // e(4) = 2.5
  h.system_->inject_arrivals({0.0});
  h.sim_.run_until(10.0);
  h.sim_.run_all();
  // Launch capped at oldest + exec = 2.5, completes at 5.0.
  ASSERT_EQ(h.system_->sink().completed(), 1u);
  EXPECT_NEAR(h.system_->sink().mean_latency(), 5.0, 1e-9);
}

TEST(EngineBatching, TightDeadlineForcesEarlyLaunch) {
  UnitHarness h(/*slo=*/3.0);
  h.apply_direct(4);  // e(4) = 2.5
  // Deadline 3.0: must launch by 0.5 to make it.
  h.system_->inject_arrivals({0.0});
  h.sim_.run_until(10.0);
  ASSERT_EQ(h.system_->sink().completed(), 1u);
  EXPECT_NEAR(h.system_->sink().mean_latency(), 3.0, 1e-9);
}

TEST(EngineBatching, DropsOverdueQueriesAtBatchStart) {
  UnitHarness h(/*slo=*/2.5);
  h.apply_direct(1);  // e(1) = 1.0
  // Three queries at t=0; each takes 1s serially; the third would finish
  // at 3.0 but its deadline is 2.5 -> dropped.
  h.system_->inject_arrivals({0.0, 0.0, 0.0});
  h.sim_.run_until(10.0);
  EXPECT_EQ(h.system_->sink().completed(), 2u);
  EXPECT_EQ(h.system_->sink().dropped(), 1u);
  EXPECT_EQ(h.system_->engine().worker_info(0).dropped, 1u);
}

TEST(EngineBatching, RejectsUnsupportedBatch) {
  UnitHarness h(100.0);
  AllocationPlan plan;
  plan.mode = RoutingMode::kDirect;
  plan.light_workers() = 1;
  plan.light_batch() = 3;  // not in the profile {1, 2, 4}
  EXPECT_THROW(h.system_->apply(plan), std::invalid_argument);
}

// --- integration fixtures over a real (small) cascade environment ------

class ServingIntegration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new quality::Workload(600);
    scorer_ = new quality::FidScorer(*workload_);
    repo_ = new models::ModelRepository(
        models::ModelRepository::with_paper_catalog());
    discriminator::DiscriminatorConfig dc;
    dc.train_queries = 400;
    dc.epochs = 3;
    disc_ = new discriminator::Discriminator(
        discriminator::train_discriminator(*workload_, 2, 5, dc));
  }
  static void TearDownTestSuite() {
    delete disc_;
    delete repo_;
    delete scorer_;
    delete workload_;
  }

  static quality::Workload* workload_;
  static quality::FidScorer* scorer_;
  static models::ModelRepository* repo_;
  static discriminator::Discriminator* disc_;
};

quality::Workload* ServingIntegration::workload_ = nullptr;
quality::FidScorer* ServingIntegration::scorer_ = nullptr;
models::ModelRepository* ServingIntegration::repo_ = nullptr;
discriminator::Discriminator* ServingIntegration::disc_ = nullptr;

TEST_F(ServingIntegration, CascadeServesAndDefers) {
  sim::Simulation sim;
  SystemConfig cfg;
  cfg.total_workers = 4;
  cfg.slo_seconds = 5.0;
  cfg.model_load_delay = 0.1;
  ServingSystem system(sim, *workload_, *repo_,
                       repo_->cascade(models::catalog::kCascade1), disc_,
                       *scorer_, cfg);
  AllocationPlan plan;
  plan.mode = RoutingMode::kCascade;
  plan.light_workers() = 1;
  plan.heavy_workers() = 3;
  plan.light_batch() = 1;
  plan.heavy_batch() = 1;
  plan.threshold() = 0.5;
  system.apply(plan);

  std::vector<double> arrivals;
  for (int i = 0; i < 40; ++i) arrivals.push_back(0.5 + i * 0.5);
  system.inject_arrivals(arrivals);
  sim.run_until(60.0);
  sim.run_all();

  const auto& sink = system.sink();
  EXPECT_EQ(sink.total(), 40u);
  EXPECT_GT(sink.completed(), 30u);
  // Both branches exercised: some light-served, some deferred.
  EXPECT_GT(sink.light_served_fraction(), 0.0);
  EXPECT_LT(sink.light_served_fraction(), 1.0);
  EXPECT_GT(sink.overall_fid(), 0.0);
}

TEST_F(ServingIntegration, ThresholdZeroServesEverythingLight) {
  sim::Simulation sim;
  SystemConfig cfg;
  cfg.total_workers = 2;
  cfg.slo_seconds = 5.0;
  cfg.model_load_delay = 0.1;
  ServingSystem system(sim, *workload_, *repo_,
                       repo_->cascade(models::catalog::kCascade1), disc_,
                       *scorer_, cfg);
  AllocationPlan plan;
  plan.light_workers() = 2;
  plan.heavy_workers() = 0;
  plan.threshold() = 0.0;
  system.apply(plan);
  std::vector<double> arrivals;
  for (int i = 0; i < 20; ++i) arrivals.push_back(0.2 + i * 0.3);
  system.inject_arrivals(arrivals);
  sim.run_until(30.0);
  sim.run_all();
  EXPECT_EQ(system.sink().completed(), 20u);
  EXPECT_EQ(system.sink().light_served_fraction(), 1.0);
}

TEST_F(ServingIntegration, DirectModeSplitsByProbability) {
  sim::Simulation sim;
  SystemConfig cfg;
  cfg.total_workers = 8;
  cfg.slo_seconds = 10.0;
  cfg.model_load_delay = 0.1;
  cfg.seed = 99;
  ServingSystem system(sim, *workload_, *repo_,
                       repo_->cascade(models::catalog::kCascade1), disc_,
                       *scorer_, cfg);
  AllocationPlan plan;
  plan.mode = RoutingMode::kDirect;
  plan.light_workers() = 2;
  plan.heavy_workers() = 6;
  plan.p_heavy = 0.5;
  system.apply(plan);
  std::vector<double> arrivals;
  for (int i = 0; i < 200; ++i) arrivals.push_back(0.1 + i * 0.4);
  system.inject_arrivals(arrivals);
  sim.run_until(120.0);
  sim.run_all();
  const double light_frac = system.sink().light_served_fraction();
  EXPECT_NEAR(light_frac, 0.5, 0.12);
}

TEST_F(ServingIntegration, ReconfigurationPreservesQueries) {
  sim::Simulation sim;
  SystemConfig cfg;
  cfg.total_workers = 4;
  cfg.slo_seconds = 20.0;
  cfg.model_load_delay = 0.2;
  ServingSystem system(sim, *workload_, *repo_,
                       repo_->cascade(models::catalog::kCascade1), disc_,
                       *scorer_, cfg);
  AllocationPlan plan;
  plan.light_workers() = 3;
  plan.heavy_workers() = 1;
  plan.threshold() = 0.3;
  system.apply(plan);
  std::vector<double> arrivals;
  for (int i = 0; i < 30; ++i) arrivals.push_back(0.1 * i);
  system.inject_arrivals(arrivals);
  // Mid-stream, flip the split; queued queries must be re-routed, not lost.
  sim.schedule_at(1.5, [&] {
    AllocationPlan p2 = plan;
    p2.light_workers() = 1;
    p2.heavy_workers() = 3;
    system.apply(p2);
  });
  sim.run_until(60.0);
  sim.run_all();
  EXPECT_EQ(system.sink().total(), 30u);  // nothing vanished
  EXPECT_EQ(system.engine().reconfigurations(), 2u);  // initial + flip
}

TEST_F(ServingIntegration, ThreeStageReconfigurationPreservesQueries) {
  // N=3 mirror of ReconfigurationPreservesQueries: shrinking the middle
  // stage of a chain while its queue is non-empty must re-route or
  // complete every queued query.
  sim::Simulation sim;
  SystemConfig cfg;
  cfg.total_workers = 4;
  cfg.slo_seconds = 25.0;
  cfg.model_load_delay = 0.2;
  ServingSystem system(sim, *workload_, *repo_,
                       repo_->cascade(models::catalog::kChain3), disc_,
                       *scorer_, cfg);
  engine::AllocationPlan plan = engine::AllocationPlan::for_stages(3);
  plan.workers = {2, 1, 1};
  plan.thresholds = {1.0, 0.3};  // boundary 0 defers everything inward
  system.apply(plan);

  std::vector<double> arrivals;
  for (int i = 0; i < 30; ++i) arrivals.push_back(0.3 + 0.1 * i);
  system.inject_arrivals(arrivals);
  // Mid-stream, drop the middle stage; its queued deferrals must move on.
  sim.schedule_at(2.0, [&] {
    engine::AllocationPlan p2 = plan;
    p2.workers = {2, 0, 2};
    system.apply(p2);
  });
  sim.run_until(90.0);
  sim.run_all();

  EXPECT_EQ(system.sink().total(), 30u);  // nothing vanished
  EXPECT_EQ(system.engine().reconfigurations(), 2u);  // initial + shrink
  // Deferred traffic really reached deeper stages.
  EXPECT_LT(system.sink().light_served_fraction(), 1.0);
}

TEST_F(ServingIntegration, SinkMetrics) {
  engine::MetricsSink sink(*workload_, *scorer_);
  Query q = make_query(0, 0.0, 5.0, 5.0);
  sink.complete(q, 2, 1.0);  // on time
  Query late = make_query(1, 0.0, 5.0, 5.0);
  sink.complete(late, 5, 6.0);  // late
  Query dropped = make_query(2, 0.0, 5.0, 5.0);
  sink.drop(dropped, 7.0);
  EXPECT_EQ(sink.total(), 3u);
  EXPECT_NEAR(sink.violation_ratio(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(sink.mean_latency(), 3.5, 1e-12);
  EXPECT_NEAR(sink.light_served_fraction(), 1.0, 1e-12);  // none deferred
}

TEST_F(ServingIntegration, SinkTimelineWindows) {
  engine::MetricsSink sink(*workload_, *scorer_);
  for (int i = 0; i < 100; ++i) {
    Query q = make_query(static_cast<std::uint64_t>(i), i * 0.5,
                         i * 0.5 + 5.0, 0.0);
    sink.complete(q, 2, i * 0.5 + 1.0);
  }
  const auto timeline = sink.timeline(10.0, 8);
  ASSERT_GE(timeline.size(), 5u);
  for (const auto& pt : timeline) {
    EXPECT_GE(pt.violation_ratio, 0.0);
    EXPECT_LE(pt.violation_ratio, 1.0);
    if (pt.samples >= 8) EXPECT_GT(pt.fid, 0.0);
  }
}

TEST_F(ServingIntegration, PlanExceedingClusterRejected) {
  sim::Simulation sim;
  SystemConfig cfg;
  cfg.total_workers = 2;
  ServingSystem system(sim, *workload_, *repo_,
                       repo_->cascade(models::catalog::kCascade1), disc_,
                       *scorer_, cfg);
  AllocationPlan plan;
  plan.light_workers() = 2;
  plan.heavy_workers() = 2;
  EXPECT_THROW(system.apply(plan), std::invalid_argument);
}

TEST_F(ServingIntegration, SparesJoinLightPool) {
  sim::Simulation sim;
  SystemConfig cfg;
  cfg.total_workers = 6;
  ServingSystem system(sim, *workload_, *repo_,
                       repo_->cascade(models::catalog::kCascade1), disc_,
                       *scorer_, cfg);
  AllocationPlan plan;
  plan.light_workers() = 1;
  plan.heavy_workers() = 2;
  system.apply(plan);
  EXPECT_EQ(system.engine().light_stats().workers, 4);  // 1 + 3 spares
  EXPECT_EQ(system.engine().heavy_stats().workers, 2);
}

TEST_F(ServingIntegration, FastModeMatchesRecordingModeAggregates) {
  // record_terminal_events=false must change observability only: the
  // serving decisions and every counter / latency aggregate stay exact,
  // while the per-query record log (and the FID/timeline views that need
  // it) is skipped.
  auto run = [&](bool record) {
    sim::Simulation sim;
    SystemConfig cfg;
    cfg.total_workers = 4;
    cfg.slo_seconds = 5.0;
    cfg.record_terminal_events = record;
    auto system = std::make_unique<ServingSystem>(
        sim, *workload_, *repo_, repo_->cascade(models::catalog::kCascade1),
        disc_, *scorer_, cfg);
    AllocationPlan plan;
    plan.light_workers() = 3;
    plan.heavy_workers() = 1;
    plan.light_batch() = 2;
    plan.thresholds = {0.5};
    system->apply(plan);
    std::vector<double> arrivals;
    for (int i = 0; i < 200; ++i) arrivals.push_back(0.05 * i);
    system->inject_arrivals(arrivals);
    sim.run_all();
    return system;
  };
  const auto recording = run(true);
  const auto fast = run(false);

  EXPECT_EQ(fast->sink().completed(), recording->sink().completed());
  EXPECT_EQ(fast->sink().dropped(), recording->sink().dropped());
  EXPECT_DOUBLE_EQ(fast->sink().mean_latency(),
                   recording->sink().mean_latency());
  EXPECT_DOUBLE_EQ(fast->sink().latency_percentile(0.99),
                   recording->sink().latency_percentile(0.99));
  EXPECT_DOUBLE_EQ(fast->sink().violation_ratio(),
                   recording->sink().violation_ratio());
  EXPECT_DOUBLE_EQ(fast->sink().light_served_fraction(),
                   recording->sink().light_served_fraction());

  EXPECT_FALSE(recording->sink().records().empty());
  EXPECT_TRUE(fast->sink().records().empty());
  // Record-backed views refuse to report garbage in fast mode.
  EXPECT_THROW(fast->sink().overall_fid(), std::invalid_argument);
  EXPECT_NO_THROW(recording->sink().overall_fid());
}

TEST_F(ServingIntegration, ExecLatencyIncludesDiscriminator) {
  sim::Simulation sim;
  SystemConfig cfg;
  cfg.total_workers = 2;
  ServingSystem system(sim, *workload_, *repo_,
                       repo_->cascade(models::catalog::kCascade1), disc_,
                       *scorer_, cfg);
  const auto& light =
      repo_->model(models::catalog::kSdTurbo).latency.execution_latency(1);
  EXPECT_GT(system.light_exec_latency(1), light);
  EXPECT_NEAR(system.heavy_exec_latency(1), 1.78, 1e-9);
}

}  // namespace
}  // namespace diffserve::serving
