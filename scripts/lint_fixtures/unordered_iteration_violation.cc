// Fixture: range-for over an unordered container. Must trip
// `unordered-iteration` (iteration order varies across hash seeds and
// standard-library versions).
#include <string>
#include <unordered_map>
#include <vector>

std::vector<std::string> model_names(
    const std::unordered_map<std::string, int>& models) {
  std::vector<std::string> names;
  for (const auto& entry : models) names.push_back(entry.first);
  return names;
}
