// Approximate prompt-reuse cache (the "retrieval" tier in front of the
// cascade).
//
// Production text-to-image traffic is heavily repetitive: the same and
// near-identical prompts recur, and intermediate results for *similar*
// prompts can seed a generation that needs only a fraction of the
// diffusion steps (Agarwal et al., PAPERS.md). This module is that reuse
// tier: a capacity-bounded store keyed by prompt style vectors, probed at
// admission by the CascadeEngine.
//
// A lookup classifies the nearest cached neighbour into tiered hit levels:
//
//   exact       — distance <= exact_distance: the cached image is served
//                 as-is; the query never enters a stage pool.
//   approx-near — distance <= near_distance: the donor's intermediate
//                 result seeds the generation, which then runs only
//                 near_step_fraction of its diffusion steps.
//   approx-far  — distance <= far_distance: a weaker seed; the generation
//                 runs far_step_fraction of its steps.
//   miss        — nothing close enough; full generation.
//
// Eviction is LRU blended with popularity: the victim minimizes
// last_used + popularity_weight * log1p(hits), so a frequently reused
// entry survives a burst of one-off insertions. All behaviour is a
// deterministic function of the operation sequence (no internal
// randomness), which is how the DES and threaded backends stay in
// agreement; the engine's guard serializes access, so the cache itself
// holds no lock.
#pragma once

#include <cstdint>
#include <vector>

#include "quality/workload.hpp"

namespace diffserve::cache {

/// Outcome tier of a cache probe, ordered by reuse strength.
enum class HitLevel { kMiss = 0, kExact = 1, kApproxNear = 2, kApproxFar = 3 };

const char* to_string(HitLevel level);

enum class SimilarityMetric {
  kL2,      ///< Euclidean distance between style vectors
  kCosine,  ///< 1 - cosine similarity (0 = parallel, 2 = opposed)
};

struct CacheConfig {
  /// Master switch. Disabled (the default) means the engine never probes
  /// or inserts — behaviour is byte-identical to a build without the
  /// cache subsystem.
  bool enabled = false;
  /// Maximum number of cached entries.
  std::size_t capacity = 256;
  SimilarityMetric metric = SimilarityMetric::kL2;
  /// Distance thresholds for the hit tiers, in the chosen metric's units.
  /// The defaults suit L2 over the synthetic workload's ~N(0,1)^6 style
  /// vectors; cosine deployments want thresholds in [0, 2].
  double exact_distance = 1e-9;
  double near_distance = 1.0;
  double far_distance = 1.8;
  /// Fraction of the diffusion steps an approx hit still executes (the
  /// donor's intermediate result replaces the skipped prefix).
  double near_step_fraction = 0.4;
  double far_step_fraction = 0.75;
  /// Serving latency of an exact hit (lookup + image decode), trace
  /// seconds; the query completes after this delay without touching a
  /// stage pool.
  double hit_latency = 0.02;
  /// Eviction blend: seconds of recency one e-fold of hits is worth. 0 is
  /// pure LRU; larger values protect popular entries longer.
  double popularity_weight = 5.0;
};

/// Aggregate probe/insert counters (engine- and controller-facing).
struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t exact_hits = 0;
  std::uint64_t near_hits = 0;
  std::uint64_t far_hits = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  /// Sum of the step fractions the stages still had to run, over every
  /// lookup that was *not* an exact hit (a miss contributes 1.0). The
  /// controller's per-stage service-time discount is the mean of this.
  double step_fraction_sum = 0.0;

  std::uint64_t hits() const { return exact_hits + near_hits + far_hits; }
  /// Any-level hits over lookups (0 before the first lookup).
  double hit_ratio() const;
  /// Exact hits over lookups — the fraction of demand the cache absorbs
  /// entirely.
  double exact_hit_ratio() const;
  /// Mean step fraction over non-exact lookups (1.0 before any).
  double mean_step_fraction() const;
};

/// Result of one admission-time probe.
struct LookupResult {
  HitLevel level = HitLevel::kMiss;
  quality::QueryId donor_prompt = 0;  ///< prompt whose image is reused
  int donor_tier = -1;                ///< quality tier of the donor image
  int donor_stage = -1;               ///< chain stage that produced it
  double distance = 0.0;              ///< distance to the donor's key
  /// Fraction of diffusion steps the chain still runs (1.0 on a miss,
  /// 0.0 on an exact hit).
  double step_fraction = 1.0;
};

class ApproxCache {
 public:
  explicit ApproxCache(CacheConfig cfg);

  /// Probe for the nearest cached neighbour of `key` and classify it.
  /// Hits refresh the donor's recency and popularity. `now` is the
  /// backend clock (trace seconds).
  LookupResult lookup(const std::vector<double>& key, double now);

  /// Insert a fully generated image (prompt, quality tier, producing
  /// stage) under `key`. Re-inserting a cached prompt refreshes it and
  /// keeps the higher-quality tier; a full cache evicts the entry with
  /// the lowest recency+popularity score first.
  void insert(quality::QueryId prompt, int tier, int stage,
              const std::vector<double>& key, double now);

  std::size_t size() const { return entries_.size(); }
  const CacheConfig& config() const { return cfg_; }
  const CacheStats& stats() const { return stats_; }

  /// Distance between two keys under the configured metric (exposed for
  /// tests and threshold calibration).
  double distance(const std::vector<double>& a,
                  const std::vector<double>& b) const;

 private:
  struct Entry {
    quality::QueryId prompt = 0;
    int tier = 0;
    int stage = 0;
    std::vector<double> key;
    std::uint64_t hits = 0;
    double last_used = 0.0;
    std::uint64_t order = 0;  ///< insertion sequence (deterministic ties)
  };

  double eviction_score(const Entry& e) const;

  CacheConfig cfg_;
  std::vector<Entry> entries_;
  CacheStats stats_;
  std::uint64_t next_order_ = 0;
};

}  // namespace diffserve::cache
