// Figure 7: discriminator design comparison — ResNet w GT, ViT w GT,
// EfficientNet w Fake, EfficientNet w GT — as FID-vs-latency threshold
// sweeps on the SD-Turbo (a) and SDXS (b) cascades. Expected ordering:
// EfficientNet w GT achieves the lowest FID at any latency budget.
#include <cmath>

#include "bench_common.hpp"
#include "core/environment.hpp"
#include "core/offline_eval.hpp"

using namespace diffserve;

namespace {

void run_cascade(const char* label, const std::string& cascade,
                 const std::string& csv_name) {
  bench::banner("Figure 7", label);
  util::CsvWriter csv(bench::csv_path(csv_name),
                      {"variant", "deferral", "latency_s", "fid"});

  struct Variant {
    discriminator::Backbone backbone;
    discriminator::RealSource source;
  };
  const Variant variants[] = {
      {discriminator::Backbone::kResNet, discriminator::RealSource::kGroundTruth},
      {discriminator::Backbone::kViT, discriminator::RealSource::kGroundTruth},
      {discriminator::Backbone::kEfficientNet,
       discriminator::RealSource::kHeavyModel},
      {discriminator::Backbone::kEfficientNet,
       discriminator::RealSource::kGroundTruth},
  };

  std::printf("%-22s %-10s %-10s %-10s %-10s\n", "variant", "fid@25%",
              "fid@50%", "fid@75%", "best_fid");
  for (const auto& v : variants) {
    core::EnvironmentConfig ec;
    ec.cascade = cascade;
    ec.workload_queries = 3000;
    ec.discriminator.backbone = v.backbone;
    ec.discriminator.real_source = v.source;
    core::CascadeEnvironment env(ec);

    core::SweepOptions opts;
    opts.points = 21;
    const auto pts =
        core::sweep_cascade(env, core::RoutingSignal::kDiscriminator, opts);
    double best = 1e9;
    double at25 = 0, at50 = 0, at75 = 0;
    for (const auto& p : pts) {
      csv.add_row(std::vector<std::string>{
          env.disc().name(), util::CsvWriter::format(p.actual_deferral),
          util::CsvWriter::format(p.avg_latency_s),
          util::CsvWriter::format(p.fid)});
      best = std::min(best, p.fid);
      if (std::fabs(p.target_deferral - 0.25) < 0.026) at25 = p.fid;
      if (std::fabs(p.target_deferral - 0.50) < 0.026) at50 = p.fid;
      if (std::fabs(p.target_deferral - 0.75) < 0.026) at75 = p.fid;
    }
    std::printf("%-22s %-10.2f %-10.2f %-10.2f %-10.2f\n",
                env.disc().name().c_str(), at25, at50, at75, best);
  }
  std::printf("[csv] %s\n", bench::csv_path(csv_name).c_str());
}

}  // namespace

int main() {
  run_cascade("(a) SD-Turbo cascade", models::catalog::kCascade1,
              "fig07_sdturbo");
  run_cascade("(b) SDXS cascade", models::catalog::kCascade2, "fig07_sdxs");
  return 0;
}
