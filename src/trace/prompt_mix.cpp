#include "trace/prompt_mix.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace diffserve::trace {

PromptSampler::PromptSampler(std::size_t n_prompts, PromptMixConfig cfg)
    : cfg_(cfg), n_(n_prompts), rng_(cfg.seed), class_rng_(cfg.class_seed) {
  DS_REQUIRE(n_ >= 1, "sampler needs at least one prompt");
  DS_REQUIRE(cfg_.interactive_share >= 0.0 && cfg_.batch_share >= 0.0 &&
                 cfg_.interactive_share + cfg_.batch_share <= 1.0,
             "class shares must be probabilities summing to <= 1");
  if (cfg_.kind == PromptMixConfig::Kind::kZipf) {
    DS_REQUIRE(cfg_.zipf_exponent >= 0.0, "negative Zipf exponent");
    DS_REQUIRE(cfg_.locality >= 0.0 && cfg_.locality <= 1.0,
               "locality must be a probability");
    cdf_.resize(n_);
    double acc = 0.0;
    for (std::size_t r = 0; r < n_; ++r) {
      acc += std::pow(static_cast<double>(r + 1), -cfg_.zipf_exponent);
      cdf_[r] = acc;
    }
    for (auto& c : cdf_) c /= acc;
  }
}

std::uint32_t PromptSampler::next() {
  if (cfg_.kind == PromptMixConfig::Kind::kRoundRobin)
    return static_cast<std::uint32_t>(counter_++ % n_);

  std::uint32_t id;
  if (!recent_.empty() && rng_.uniform() < cfg_.locality) {
    const auto i = static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(recent_.size()) - 1));
    id = recent_[i];
  } else {
    // Popularity rank == prompt id: the workload's style vectors are iid,
    // so no de-correlating permutation is needed.
    const double u = rng_.uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    id = static_cast<std::uint32_t>(
        std::min<std::size_t>(static_cast<std::size_t>(it - cdf_.begin()),
                              n_ - 1));
  }
  if (cfg_.locality_window > 0) {
    recent_.push_back(id);
    if (recent_.size() > cfg_.locality_window) recent_.pop_front();
  }
  return id;
}

int PromptSampler::next_class() {
  // Degenerate mix: no draw at all, so the class RNG's stream (and, more
  // importantly, the absence of any draw) keeps single-class runs
  // byte-identical to the pre-class sampler.
  if (!cfg_.has_class_mix()) return 1;
  const double u = class_rng_.uniform();
  if (u < cfg_.interactive_share) return 0;
  if (u < cfg_.interactive_share + cfg_.batch_share) return 2;
  return 1;
}

}  // namespace diffserve::trace
