// Figure 10: the FID / SLO-violation frontier across cascade depth.
//
// Sweeps chain depth 1-3 over the same demand levels on 16 workers:
//   depth 1 — solo SDv1.5 (no cascading; every query pays the heavy cost),
//   depth 2 — Cascade 1 (SD-Turbo -> SDv1.5, the paper's system),
//   depth 3 — chain3 (SDXS -> SD-Turbo -> SDv1.5, per-boundary
//              discriminators).
// Expected shape: at low demand the depths converge (everything can defer
// deep); as demand rises the deeper chains hold the violation ratio down
// by absorbing easy queries at the cheap stages, while the solo deployment
// falls off a cliff once SDv1.5 saturates.
#include "bench_common.hpp"

using namespace diffserve;

int main() {
  struct Depth {
    int depth;
    const char* cascade;
  };
  const Depth depths[] = {
      {1, models::catalog::kSoloHeavy},
      {2, models::catalog::kCascade1},
      {3, models::catalog::kChain3},
  };
  const double demands[] = {4.0, 8.0, 16.0, 24.0};

  bench::banner("Figure 10", "cascade depth sweep, 16 GPUs, SLO 5 s");
  bench::ReportTable table(
      "fig10_cascade_depth",
      {"depth", "demand_qps", "fid", "violation_ratio", "stage0_pct",
       "stage1_pct", "stage2_pct", "mean_solve_ms"},
      {6, 12, 8, 16, 12, 12, 12, 14});

  for (const auto& d : depths) {
    const auto env = bench::make_env(3000, d.cascade);
    for (const double qps : demands) {
      core::RunConfig rc;
      rc.approach = core::Approach::kDiffServe;
      rc.total_workers = 16;
      rc.slo_seconds = 5.0;
      rc.trace = trace::RateTrace::constant(qps, 120.0);
      const auto r = run_experiment(env, rc);
      std::vector<std::string> cells = {
          std::to_string(d.depth), bench::ReportTable::fmt(qps),
          bench::ReportTable::fmt(r.overall_fid),
          bench::ReportTable::fmt(r.violation_ratio)};
      for (std::size_t s = 0; s < 3; ++s)
        cells.push_back(
            s < r.stage_served_fraction.size()
                ? bench::ReportTable::fmt(100.0 * r.stage_served_fraction[s])
                : "-");
      cells.push_back(bench::ReportTable::fmt(r.mean_solve_ms));
      table.row(cells);
    }
  }
  return 0;
}
