#include "baselines/baselines.hpp"

#include <algorithm>
#include <cmath>

#include "control/exhaustive_allocator.hpp"
#include "util/check.hpp"

namespace diffserve::baselines {

using control::AllocationDecision;
using control::AllocationInput;

ClipperAllocator::ClipperAllocator(Variant variant) : variant_(variant) {}

std::string ClipperAllocator::name() const {
  return variant_ == Variant::kLight ? "clipper-light" : "clipper-heavy";
}

AllocationDecision ClipperAllocator::allocate(const AllocationInput& in) {
  const bool heavy = variant_ == Variant::kHeavy;
  const auto& stage = heavy ? in.heavy() : in.light();
  const auto& sizes = stage.batch_sizes();

  // Clipper's AIMD batching: halve on SLO pressure, step up otherwise,
  // subject to the batch execution itself fitting in the SLO.
  if (in.recent_violation_ratio > violation_trigger_) {
    const int target = std::max(batch_ / 2, sizes.front());
    int best = sizes.front();
    for (const int s : sizes)
      if (s <= target) best = s;
    batch_ = best;
  } else {
    for (const int s : sizes)
      if (s > batch_) {
        // Additive increase only while execution latency stays in budget.
        if (stage.stage_latency(s) <= in.slo_seconds) batch_ = s;
        break;
      }
  }

  AllocationDecision d;
  d.resize_stages(in.stage_count());
  d.feasible = true;
  d.direct_mode = true;
  d.p_heavy = heavy ? 1.0 : 0.0;
  if (heavy) {
    d.workers.back() = in.total_workers;
    d.batches.back() = batch_;
  } else {
    d.workers.front() = in.total_workers;
    d.batches.front() = batch_;
  }
  return d;
}

AllocationDecision ProteusAllocator::allocate(const AllocationInput& in) {
  const double d = in.provisioned_demand();

  // Enumerate first/last pool splits and batch sizes; maximize the fraction
  // of demand served by the heaviest (highest-accuracy) model subject to
  // total capacity covering demand and per-path latency fitting the SLO.
  // This mirrors Proteus's accuracy-scaling objective without query
  // awareness. (Middle stages of deeper chains stay unused: Proteus routes
  // each query to exactly one of its two model pools.)
  AllocationDecision best;
  best.resize_stages(in.stage_count());
  double best_heavy_fraction = -1.0;
  int best_b1 = 0, best_b2 = 0;
  for (int x2 = 0; x2 <= in.total_workers; ++x2) {
    const int x1 = in.total_workers - x2;
    for (const int b1 : in.light().batch_sizes()) {
      if (x1 > 0 &&
          in.light().stage_latency(b1) +
                  control::littles_law_delay(in.light_queue_length(),
                                             in.light_arrival_rate()) >
              in.slo_seconds)
        continue;
      for (const int b2 : in.heavy().batch_sizes()) {
        if (x2 > 0 &&
            in.heavy().stage_latency(b2) +
                    control::littles_law_delay(in.heavy_queue_length(),
                                               in.heavy_arrival_rate()) >
                in.slo_seconds)
          continue;
        const double cap1 = x1 * in.light().throughput(b1);
        const double cap2 = x2 * in.heavy().throughput(b2);
        if (cap1 + cap2 < d - 1e-9) continue;
        const double heavy_fraction =
            d <= 1e-12 ? (x2 > 0 ? 1.0 : 0.0) : std::min(1.0, cap2 / d);
        const bool better =
            heavy_fraction > best_heavy_fraction + 1e-12 ||
            (std::fabs(heavy_fraction - best_heavy_fraction) <= 1e-12 &&
             b1 + b2 < best_b1 + best_b2);
        if (better) {
          best_heavy_fraction = heavy_fraction;
          best.feasible = true;
          best.workers.front() = x1;
          best.workers.back() = x2;
          best.batches.front() = b1;
          best.batches.back() = b2;
          best_b1 = b1;
          best_b2 = b2;
          best.direct_mode = true;
          best.p_heavy = heavy_fraction;
        }
      }
    }
  }

  if (best_heavy_fraction < 0.0) {
    // Overloaded even all-light: serve everything light at the
    // throughput-maximal batch and shed load at the workers.
    best.resize_stages(in.stage_count());
    best.feasible = false;
    best.direct_mode = true;
    best.p_heavy = 0.0;
    best.workers.front() = in.total_workers;
    double best_t = 0.0;
    best.batches.front() = in.light().batch_sizes().front();
    for (const int b : in.light().batch_sizes())
      if (in.light().throughput(b) > best_t) {
        best_t = in.light().throughput(b);
        best.batches.front() = b;
      }
  }
  return best;
}

DiffServeStaticAllocator::DiffServeStaticAllocator(double peak_demand_qps,
                                                   double fixed_threshold)
    : peak_demand_qps_(peak_demand_qps), fixed_threshold_(fixed_threshold) {
  DS_REQUIRE(peak_demand_qps > 0.0, "peak demand must be positive");
  DS_REQUIRE(fixed_threshold >= 0.0 && fixed_threshold <= 1.0,
             "threshold outside [0,1]");
}

AllocationDecision DiffServeStaticAllocator::allocate(
    const AllocationInput& in) {
  if (!solved_) {
    // Provision once for peak demand at the fixed threshold; ignore live
    // queue state (a static system cannot react to it anyway).
    AllocationInput peak = in;
    peak.demand_qps = peak_demand_qps_;
    for (auto& s : peak.stages) s.queue_length = 0.0;
    // Pin every boundary's grid to the fixed threshold.
    for (auto& grid : peak.boundary_grids) {
      DS_REQUIRE(!grid.empty(), "empty threshold grid");
      auto nearest = grid.front();
      for (const auto& g : grid)
        if (std::fabs(g.threshold - fixed_threshold_) <
            std::fabs(nearest.threshold - fixed_threshold_))
          nearest = g;
      grid = {nearest};
    }
    control::ExhaustiveAllocator solver;
    plan_ = solver.allocate(peak);
    // Note: if even the pinned threshold is infeasible at peak, the solver
    // returns its overload fallback with a *lower* deferral plan; the
    // served threshold must match what the plan was sized for.
    solved_ = true;
  }
  return plan_;
}

}  // namespace diffserve::baselines
