// Resource allocator interface (§3.3), generalized to N-stage chains.
//
// Every control period the controller snapshots runtime state into an
// AllocationInput and asks an Allocator for the configuration — per-stage
// worker counts and batch sizes plus one confidence threshold per cascade
// boundary (the paper's x1, x2, b1, b2, t is the two-stage instance).
// Implementations: the MILP allocator (the paper's approach), an
// exhaustive oracle (used for cross-checking and as a fallback), the §4.5
// ablation variants, and the baseline systems' allocation policies
// (src/baselines). The `light_*`/`heavy_*` members are thin aliases onto
// the first/last stage for two-stage call sites.
#pragma once

#include <string>
#include <vector>

#include "control/perf_model.hpp"
#include "discriminator/deferral_profile.hpp"
#include "util/check.hpp"

namespace diffserve::control {

/// Live observations and performance model of one chain stage.
struct StageObs {
  double queue_length = 0.0;
  double arrival_rate = 0.0;
  /// Utilization headroom: capacity constraints use x * T(b) * target
  /// rather than raw capacity, because a stage planned at rho -> 1 has
  /// unbounded queueing delay. Deeper stages get more headroom since a
  /// deferred query has already spent part of its budget.
  double utilization_target = 0.85;
  StagePerfModel perf;

  /// The single source of the headroom policy: the entry stage runs
  /// hotter (0.90), deeper stages keep more slack (0.85).
  static double default_utilization_target(std::size_t stage_index) {
    return stage_index == 0 ? 0.90 : 0.85;
  }
};

struct AllocationInput {
  /// EWMA-estimated demand D (QPS), before over-provisioning.
  double demand_qps = 0.0;
  /// Over-provisioning factor lambda (1.05 by default, §3.3).
  double over_provision = 1.05;
  double slo_seconds = 5.0;
  int total_workers = 1;

  /// Recent SLO violation ratio (consumed by AIMD batching).
  double recent_violation_ratio = 0.0;

  /// Per-SLO-class demand (QPS, indexed by engine::QueryClass — size 3 in
  /// class-aware setups, empty otherwise) and the controller's objective
  /// weights. The weighted per-class deadlines are already folded into
  /// `slo_seconds` (the effective SLO), so every allocator is class-aware
  /// without per-allocator changes; these vectors let class-conscious
  /// allocators refine further.
  std::vector<double> class_demand_qps;
  std::vector<double> class_slo_weights;

  /// Chain stages, lightest first. Defaults to the classic two-stage
  /// cascade shape (stage 0 at 0.90 utilization, stage 1 at 0.85).
  std::vector<StageObs> stages;
  /// Per-boundary threshold grids: discretized confidence thresholds with
  /// their deferral fractions f_b(t), ascending in threshold. Size =
  /// stages.size() - 1.
  std::vector<std::vector<discriminator::DeferralProfile::GridPoint>>
      boundary_grids;

  AllocationInput() : stages(2), boundary_grids(1) {
    for (std::size_t s = 0; s < stages.size(); ++s)
      stages[s].utilization_target = StageObs::default_utilization_target(s);
  }

  std::size_t stage_count() const { return stages.size(); }
  std::size_t boundary_count() const { return boundary_grids.size(); }

  /// Demand after over-provisioning.
  double provisioned_demand() const { return demand_qps * over_provision; }

  // --- two-stage aliases (first/last stage) ------------------------------
  StagePerfModel& light() { return stages.front().perf; }
  const StagePerfModel& light() const { return stages.front().perf; }
  StagePerfModel& heavy() { return stages.back().perf; }
  const StagePerfModel& heavy() const { return stages.back().perf; }
  double& light_queue_length() { return stages.front().queue_length; }
  double light_queue_length() const { return stages.front().queue_length; }
  double& light_arrival_rate() { return stages.front().arrival_rate; }
  double light_arrival_rate() const { return stages.front().arrival_rate; }
  double& heavy_queue_length() { return stages.back().queue_length; }
  double heavy_queue_length() const { return stages.back().queue_length; }
  double& heavy_arrival_rate() { return stages.back().arrival_rate; }
  double heavy_arrival_rate() const { return stages.back().arrival_rate; }
  double& light_utilization_target() {
    return stages.front().utilization_target;
  }
  double light_utilization_target() const {
    return stages.front().utilization_target;
  }
  double& heavy_utilization_target() {
    return stages.back().utilization_target;
  }
  double heavy_utilization_target() const {
    return stages.back().utilization_target;
  }
  std::vector<discriminator::DeferralProfile::GridPoint>& threshold_grid() {
    DS_REQUIRE(!boundary_grids.empty(),
               "depth-1 input has no threshold grid");
    return boundary_grids.front();
  }
  const std::vector<discriminator::DeferralProfile::GridPoint>&
  threshold_grid() const {
    DS_REQUIRE(!boundary_grids.empty(),
               "depth-1 input has no threshold grid");
    return boundary_grids.front();
  }
};

struct AllocationDecision {
  /// False when even the most permissive configuration cannot satisfy the
  /// constraints; the decision then holds the best-effort fallback.
  bool feasible = false;
  /// Per-stage worker counts and batch sizes (lightest first).
  std::vector<int> workers{0, 0};
  std::vector<int> batches{1, 1};
  /// Per-boundary confidence thresholds and the *conditional* deferral
  /// fraction f_b(t_b) each was sized for (fraction of the queries reaching
  /// stage b that defer onward).
  std::vector<double> thresholds{0.0};
  std::vector<double> deferral_fractions{0.0};
  /// Query-agnostic baselines (Clipper, Proteus) bypass the cascade: each
  /// query goes directly to one model, the last stage with probability
  /// p_heavy.
  bool direct_mode = false;
  double p_heavy = 0.0;
  double solve_time_ms = 0.0;

  std::size_t stage_count() const { return workers.size(); }
  /// Reshape for an n-stage chain (zeroed workers, unit batches).
  void resize_stages(std::size_t n) {
    DS_REQUIRE(n >= 1, "decision needs at least one stage");
    workers.assign(n, 0);
    batches.assign(n, 1);
    thresholds.assign(n - 1, 0.0);
    deferral_fractions.assign(n - 1, 0.0);
  }

  // --- two-stage aliases (first/last stage) ------------------------------
  int& light_workers() { return workers.front(); }
  int light_workers() const { return workers.front(); }
  int& heavy_workers() { return workers.back(); }
  int heavy_workers() const { return workers.back(); }
  int& light_batch() { return batches.front(); }
  int light_batch() const { return batches.front(); }
  int& heavy_batch() { return batches.back(); }
  int heavy_batch() const { return batches.back(); }
  double& threshold() {
    DS_REQUIRE(!thresholds.empty(), "depth-1 decision has no threshold");
    return thresholds.front();
  }
  double threshold() const {
    return thresholds.empty() ? 1.0 : thresholds.front();
  }
  double& deferral_fraction() {
    DS_REQUIRE(!deferral_fractions.empty(),
               "depth-1 decision has no deferral fraction");
    return deferral_fractions.front();
  }
  double deferral_fraction() const {
    return deferral_fractions.empty() ? 0.0 : deferral_fractions.front();
  }
};

class Allocator {
 public:
  virtual ~Allocator() = default;
  virtual AllocationDecision allocate(const AllocationInput& input) = 0;
  virtual std::string name() const = 0;
};

/// Shared constraint check used by the exhaustive allocator and tests:
/// does (workers, batches, entry_fractions) satisfy the generalized
/// Eq. 1-4 for this input? `entry_fractions[s]` is the fraction of total
/// demand entering stage s (entry_fractions[0] == 1).
bool satisfies_constraints(const AllocationInput& in,
                           const std::vector<int>& workers,
                           const std::vector<int>& batches,
                           const std::vector<double>& entry_fractions);

/// Two-stage convenience overload: (x1, x2, b1, b2, f) as in the paper.
inline bool satisfies_constraints(const AllocationInput& in, int x1, int x2,
                                  int b1, int b2, double deferral_fraction) {
  return satisfies_constraints(in, {x1, x2}, {b1, b2},
                               {1.0, deferral_fraction});
}

/// End-to-end latency estimate: sum over stages of e_s + q_s for the
/// latency constraint (Eq. 1).
double estimated_latency(const AllocationInput& in,
                         const std::vector<int>& batches);
inline double estimated_latency(const AllocationInput& in, int b1, int b2) {
  return estimated_latency(in, std::vector<int>{b1, b2});
}

}  // namespace diffserve::control
