#include "milp/branch_and_bound.hpp"

#include <cmath>
#include <queue>
#include <vector>

#include "util/check.hpp"

namespace diffserve::milp {

namespace {

struct Node {
  // Bound overrides relative to the root problem.
  std::vector<std::pair<int, double>> lower_overrides;
  std::vector<std::pair<int, double>> upper_overrides;
  double bound = 0.0;  // parent LP objective (upper bound for maximization)
};

struct NodeCompare {
  bool operator()(const Node& a, const Node& b) const {
    return a.bound < b.bound;  // best-first: largest bound on top
  }
};

// Rebuild the problem with the node's tightened variable bounds.
// (Problem has no mutate-bounds API by design; reconstruction is cheap at
// these sizes.)
Problem with_overrides(const Problem& root, const Node& node) {
  std::vector<double> lo(root.num_variables()), hi(root.num_variables());
  for (std::size_t i = 0; i < root.num_variables(); ++i) {
    lo[i] = root.variables()[i].lower;
    hi[i] = root.variables()[i].upper;
  }
  for (const auto& [idx, v] : node.lower_overrides)
    lo[static_cast<std::size_t>(idx)] =
        std::max(lo[static_cast<std::size_t>(idx)], v);
  for (const auto& [idx, v] : node.upper_overrides)
    hi[static_cast<std::size_t>(idx)] =
        std::min(hi[static_cast<std::size_t>(idx)], v);

  Problem q;
  for (std::size_t i = 0; i < root.num_variables(); ++i) {
    const auto& v = root.variables()[i];
    if (lo[i] > hi[i]) {
      // Infeasible bounds — encode as an impossible constraint on a valid
      // variable range so the LP reports infeasibility.
      q.add_variable(v.name, v.type, 0.0, 0.0, v.objective);
      q.add_constraint("infeasible_bounds", {{static_cast<int>(i), 1.0}},
                       Sense::kGe, 1.0);
    } else {
      q.add_variable(v.name, v.type, lo[i], hi[i], v.objective);
    }
  }
  for (const auto& c : root.constraints())
    q.add_constraint(c.name, c.terms, c.sense, c.rhs);
  return q;
}

/// Index of the most fractional integer variable, or -1 if integral.
int most_fractional(const Problem& p, const std::vector<double>& x,
                    double tol) {
  int best = -1;
  double best_frac_dist = tol;
  for (std::size_t i = 0; i < p.num_variables(); ++i) {
    if (p.variables()[i].type == VarType::kContinuous) continue;
    const double frac = x[i] - std::floor(x[i]);
    const double dist = std::min(frac, 1.0 - frac);
    if (dist > best_frac_dist) {
      best_frac_dist = dist;
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace

MilpResult solve_milp(const Problem& p, const MilpOptions& opts) {
  MilpResult result;
  result.solution.status = SolveStatus::kInfeasible;
  double incumbent = -kInfinity;

  std::priority_queue<Node, std::vector<Node>, NodeCompare> open;
  open.push(Node{{}, {}, kInfinity});

  bool any_lp_limit = false;

  while (!open.empty() && result.nodes_explored < opts.max_nodes) {
    Node node = open.top();
    open.pop();
    if (node.bound <= incumbent + opts.absolute_gap && incumbent > -kInfinity)
      break;  // best-first: no remaining node can beat the incumbent
    ++result.nodes_explored;

    const Problem sub = with_overrides(p, node);
    const Solution relax = solve_lp(sub, opts.lp);
    if (relax.status == SolveStatus::kInfeasible) continue;
    if (relax.status == SolveStatus::kLimit) {
      any_lp_limit = true;
      continue;
    }
    if (relax.status == SolveStatus::kUnbounded) {
      // An unbounded relaxation at the root means the MILP is unbounded
      // (for our problems all variables are bounded, so this is unexpected).
      result.solution.status = SolveStatus::kUnbounded;
      return result;
    }
    if (relax.objective <= incumbent + opts.absolute_gap) continue;  // pruned

    const int branch_var = most_fractional(p, relax.values,
                                           opts.integrality_tol);
    if (branch_var < 0) {
      // Integral: candidate incumbent.
      if (relax.objective > incumbent) {
        incumbent = relax.objective;
        result.solution = relax;
        result.solution.status = SolveStatus::kOptimal;
        // Snap integers exactly.
        for (std::size_t i = 0; i < p.num_variables(); ++i)
          if (p.variables()[i].type != VarType::kContinuous)
            result.solution.values[i] = std::round(result.solution.values[i]);
        result.solution.objective =
            p.objective_value(result.solution.values);
      }
      continue;
    }

    const double v = relax.values[static_cast<std::size_t>(branch_var)];
    Node down = node;
    down.bound = relax.objective;
    down.upper_overrides.emplace_back(branch_var, std::floor(v));
    Node up = node;
    up.bound = relax.objective;
    up.lower_overrides.emplace_back(branch_var, std::ceil(v));
    open.push(std::move(down));
    open.push(std::move(up));
  }

  result.best_bound = incumbent;
  if (result.solution.status != SolveStatus::kOptimal) {
    result.solution.status =
        any_lp_limit || result.nodes_explored >= opts.max_nodes
            ? SolveStatus::kLimit
            : SolveStatus::kInfeasible;
  } else if (result.nodes_explored >= opts.max_nodes && !open.empty()) {
    // Incumbent exists but optimality not proven.
    result.solution.status = SolveStatus::kLimit;
  }
  return result;
}

}  // namespace diffserve::milp
