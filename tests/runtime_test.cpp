// Tests for the threaded testbed runtime, including the simulator-fidelity
// comparison the paper reports in §4.3.
#include <gtest/gtest.h>

#include <cmath>

#include "control/exhaustive_allocator.hpp"
#include "core/environment.hpp"
#include "core/experiment.hpp"
#include "runtime/threaded_runtime.hpp"

namespace diffserve::runtime {
namespace {

const core::CascadeEnvironment& shared_env() {
  static const core::CascadeEnvironment env = [] {
    core::EnvironmentConfig cfg;
    cfg.workload_queries = 800;
    cfg.discriminator.train_queries = 500;
    cfg.profile_queries = 500;
    return core::CascadeEnvironment(cfg);
  }();
  return env;
}

TEST(ThreadedRuntime, CompletesShortTrace) {
  const auto tr = trace::RateTrace::azure_like(2.0, 8.0, 45.0, 5);
  control::ExhaustiveAllocator alloc;
  RuntimeConfig cfg;
  cfg.total_workers = 6;
  cfg.time_scale = 60.0;
  const auto r = run_threaded(shared_env(), alloc, tr, cfg);
  EXPECT_GT(r.submitted, 50u);
  // Everything terminates (completed or dropped); small in-flight slack
  // can remain at shutdown.
  EXPECT_GE(r.completed + r.dropped + 5, r.submitted);
  EXPECT_GE(r.violation_ratio, 0.0);
  EXPECT_LE(r.violation_ratio, 1.0);
  EXPECT_GT(r.overall_fid, 0.0);
}

TEST(ThreadedRuntime, ServesBothStages) {
  const auto tr = trace::RateTrace::constant(4.0, 40.0);
  control::ExhaustiveAllocator alloc;
  RuntimeConfig cfg;
  cfg.total_workers = 6;
  cfg.time_scale = 60.0;
  const auto r = run_threaded(shared_env(), alloc, tr, cfg);
  EXPECT_GT(r.light_served_fraction, 0.0);
  EXPECT_LT(r.light_served_fraction, 1.0);
}

TEST(ThreadedRuntime, ReconfiguresUnderDemandChange) {
  const auto tr = trace::RateTrace::azure_like(2.0, 10.0, 60.0, 9);
  control::ExhaustiveAllocator alloc;
  RuntimeConfig cfg;
  cfg.total_workers = 6;
  cfg.time_scale = 60.0;
  const auto r = run_threaded(shared_env(), alloc, tr, cfg);
  EXPECT_GT(r.reconfigurations, 0u);
}

TEST(ThreadedRuntime, FidelityAgainstSimulator) {
  // §4.3: "an average difference of only 0.56% for FID and 1.1% for SLO
  // violations compared to the testbed". Run the same workload through the
  // DES and the threaded runtime and require close agreement on quality
  // and reasonable agreement on violations (the threaded runtime inherits
  // real scheduling jitter).
  const auto tr = trace::RateTrace::azure_like(2.0, 8.0, 60.0, 7);

  core::RunConfig sim_cfg;
  sim_cfg.approach = core::Approach::kDiffServeExhaustive;
  sim_cfg.total_workers = 6;
  sim_cfg.trace = tr;
  const auto sim_res = core::run_experiment(shared_env(), sim_cfg);

  control::ExhaustiveAllocator alloc;
  RuntimeConfig rt_cfg;
  rt_cfg.total_workers = 6;
  rt_cfg.time_scale = 40.0;
  const auto rt_res = run_threaded(shared_env(), alloc, tr, rt_cfg);

  const double fid_rel_diff =
      std::fabs(sim_res.overall_fid - rt_res.overall_fid) /
      sim_res.overall_fid;
  EXPECT_LT(fid_rel_diff, 0.15);
  EXPECT_LT(std::fabs(sim_res.violation_ratio - rt_res.violation_ratio),
            0.15);
}

TEST(ThreadedRuntime, ServesThreeStageChain) {
  // The catalog's three-stage chain runs end-to-end on the threaded
  // backend: every stage produces completions under the standard control
  // loop.
  core::EnvironmentConfig cfg;
  cfg.cascade = models::catalog::kChain3;
  cfg.workload_queries = 600;
  cfg.discriminator.train_queries = 300;
  cfg.profile_queries = 300;
  const core::CascadeEnvironment env(cfg);

  const auto tr = trace::RateTrace::constant(6.0, 30.0);
  control::ExhaustiveAllocator alloc;
  RuntimeConfig rt;
  rt.total_workers = 8;
  rt.time_scale = 60.0;
  const auto r = run_threaded(env, alloc, tr, rt);
  EXPECT_GT(r.completed, 100u);
  ASSERT_EQ(r.stage_served_fraction.size(), 3u);
  for (const double f : r.stage_served_fraction) EXPECT_GT(f, 0.0);
}

TEST(ThreadedRuntime, RejectsBadConfig) {
  const auto tr = trace::RateTrace::constant(1.0, 20.0);
  control::ExhaustiveAllocator alloc;
  RuntimeConfig cfg;
  cfg.total_workers = 1;
  EXPECT_THROW(run_threaded(shared_env(), alloc, tr, cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace diffserve::runtime
