// Discrete-event simulation engine.
//
// The paper's headline results come from a discrete-event simulator ("uses
// an event queue and a timer to record the arrival and processing of
// queries", §4.1). This engine provides exactly that: a virtual clock, a
// (time, sequence)-ordered event queue for deterministic tie-breaking,
// cancellable events (needed by batching timers), and periodic tasks
// (controller ticks, stat snapshots).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace diffserve::sim {

using SimTime = double;  ///< seconds of virtual time

using EventFn = std::function<void()>;

/// Opaque handle for cancelling a scheduled event.
struct EventHandle {
  std::uint64_t id = 0;
  bool valid() const { return id != 0; }
};

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }

  /// Schedule fn at absolute virtual time t (>= now).
  EventHandle schedule_at(SimTime t, EventFn fn);
  /// Schedule fn after a delay (>= 0) from now.
  EventHandle schedule_in(SimTime delay, EventFn fn);
  /// Cancel a pending event; returns false if it already fired or was
  /// cancelled.
  bool cancel(EventHandle h);

  /// Schedule fn every `interval` seconds starting at now + interval.
  /// The returned handle cancels the *series*.
  EventHandle every(SimTime interval, EventFn fn);

  /// Run until the queue is empty or the clock passes `until`.
  /// Events scheduled exactly at `until` are executed.
  void run_until(SimTime until);
  /// Run until the queue drains (use with care: periodic tasks never
  /// drain; bounded by max_events).
  void run_all(std::uint64_t max_events = 100'000'000);
  /// Execute exactly one event if any is pending; returns false when empty.
  bool step();

  /// Approximate count of live pending events (cancelled entries that have
  /// not yet been lazily removed are excluded as an upper bound).
  std::size_t pending() const;
  std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::uint64_t id;
    EventFn fn;
  };
  struct EntryCompare {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;  // min-heap on time
      return a.seq > b.seq;                          // FIFO within a time
    }
  };

  void drop_cancelled_top();
  void fire_periodic(std::uint64_t id);

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, EntryCompare> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  /// Periodic series registered by every(): id -> (interval, fn). Heap
  /// occurrences hold only thin trampolines onto this registry, so a
  /// series owns no reference to itself (a self-capturing closure would
  /// leak through the shared_ptr cycle).
  struct Periodic {
    SimTime interval;
    EventFn fn;
  };
  std::unordered_map<std::uint64_t, Periodic> periodic_;
};

}  // namespace diffserve::sim
