// Figure 13: SLO classes under load — class mix x offered load, with the
// per-class queues/drop policies on vs off at identical deadline
// structure.
//
// Every cell runs the same trace twice: once with class-aware scheduling
// (per-class admission rings, interactive-first batch fill, batch-class
// deferral instead of shedding) and once with the classless FIFO, both
// drawing the same class stream and the same per-class deadlines
// (multipliers apply either way — only the *scheduling* differs). The gap
// is therefore pure policy: what the differentiated queues buy the tight
// class and what they cost the loose one.
//
// Expected shape: at low load the two modes are near-identical (queues
// stay short, fill order never binds). As load climbs past capacity,
// class-aware scheduling holds the interactive violation ratio well below
// the classless run — interactive work jumps the batch backlog — while
// batch-class queries absorb the wait (their violation ratio rises; their
// drop count stays exactly zero, the policy's hard guarantee).
//
//   --smoke   one overloaded mix cell, both modes, with the CI gates:
//             interactive violation (class-aware) strictly below the
//             classless baseline at the same deadlines, and zero
//             batch-class drops in every class-aware run.
#include <array>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"

using namespace diffserve;

namespace {

struct Mix {
  const char* name;
  double interactive_share;
  double batch_share;
};

core::ExperimentResult run_cell(const core::CascadeEnvironment& env,
                                const trace::RateTrace& tr, const Mix& mix,
                                bool class_aware) {
  core::RunConfig rc;
  rc.approach = core::Approach::kDiffServeExhaustive;
  rc.total_workers = 8;
  rc.trace = tr;
  rc.controller.initial_demand_guess = tr.qps_at(0.0);
  rc.system.prompt_mix.interactive_share = mix.interactive_share;
  rc.system.prompt_mix.batch_share = mix.batch_share;
  rc.system.slo_classes.enabled = true;
  rc.system.slo_classes.class_aware_scheduling = class_aware;
  // Cascade 1's heavy stage runs e(1) = 1.78s, so the default 0.4x
  // multiplier (2.0s) is unmeetable for any deferred query no matter how
  // it is scheduled; 0.7x (3.5s) is tight but feasible, which is the
  // regime where scheduling policy actually decides the outcome.
  rc.system.slo_classes.deadline_multiplier = {0.7, 1.0, 8.0};
  return run_experiment(env, rc);
}

double class_goodput(const core::ExperimentResult& r, engine::QueryClass c,
                     double duration) {
  const auto i = static_cast<std::size_t>(c);
  return static_cast<double>(r.class_completed[i]) *
         (1.0 - r.class_violation_ratio[i]) / duration;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  const std::size_t workload = smoke ? 600 : 1200;
  const double duration = smoke ? 40.0 : 120.0;
  // 8 workers saturate well below the top load: the interesting cells are
  // the overloaded ones, where scheduling policy decides who eats the
  // violations.
  const std::vector<double> loads =
      smoke ? std::vector<double>{14.0} : std::vector<double>{6.0, 10.0, 14.0};
  const std::vector<Mix> mixes =
      smoke ? std::vector<Mix>{{"i30b30", 0.3, 0.3}}
            : std::vector<Mix>{{"i20b20", 0.2, 0.2},
                               {"i50b20", 0.5, 0.2},
                               {"i20b50", 0.2, 0.5}};

  const auto env = bench::make_env(workload);

  bench::banner("Figure 13",
                "SLO classes: mix x load, class-aware scheduling on vs off");
  bench::ReportTable table(
      "fig13_slo_classes",
      {"config", "qps", "aware", "violation_ratio", "interactive_violation",
       "standard_violation", "batch_violation", "interactive_goodput",
       "standard_goodput", "batch_goodput", "batch_drops", "fid"},
      {16, 7, 7, 16, 22, 19, 16, 20, 17, 14, 12, 9});

  bool gates_ok = true;
  double worst_gain = 1e9;
  for (const Mix& mix : mixes) {
    for (const double qps : loads) {
      const auto tr = trace::RateTrace::constant(qps, duration);
      std::array<core::ExperimentResult, 2> runs = {
          run_cell(env, tr, mix, /*class_aware=*/false),
          run_cell(env, tr, mix, /*class_aware=*/true)};
      for (int aware = 0; aware <= 1; ++aware) {
        const auto& r = runs[static_cast<std::size_t>(aware)];
        char label[48];
        std::snprintf(label, sizeof(label), "%s_q%.0f_%s", mix.name, qps,
                      aware ? "aware" : "fifo");
        const auto i = static_cast<std::size_t>(engine::QueryClass::kInteractive);
        const auto s = static_cast<std::size_t>(engine::QueryClass::kStandard);
        const auto b = static_cast<std::size_t>(engine::QueryClass::kBatch);
        table.row(std::vector<std::string>{
            label, bench::ReportTable::fmt(qps), std::to_string(aware),
            bench::ReportTable::fmt(r.violation_ratio),
            bench::ReportTable::fmt(r.class_violation_ratio[i]),
            bench::ReportTable::fmt(r.class_violation_ratio[s]),
            bench::ReportTable::fmt(r.class_violation_ratio[b]),
            bench::ReportTable::fmt(
                class_goodput(r, engine::QueryClass::kInteractive, duration)),
            bench::ReportTable::fmt(
                class_goodput(r, engine::QueryClass::kStandard, duration)),
            bench::ReportTable::fmt(
                class_goodput(r, engine::QueryClass::kBatch, duration)),
            std::to_string(r.class_dropped[b]),
            bench::ReportTable::fmt(r.overall_fid)});
      }
      // The policy's two promises, checked on every cell: the tight class
      // does strictly better than under the classless FIFO at the same
      // deadlines, and admitted batch work is never shed.
      const auto i = static_cast<std::size_t>(engine::QueryClass::kInteractive);
      const auto b = static_cast<std::size_t>(engine::QueryClass::kBatch);
      const double gain = runs[0].class_violation_ratio[i] -
                          runs[1].class_violation_ratio[i];
      worst_gain = std::min(worst_gain, gain);
      if (smoke && runs[1].class_violation_ratio[i] >=
                       runs[0].class_violation_ratio[i]) {
        std::fprintf(stderr,
                     "FAIL: %s q%.0f interactive violation %.4f (aware) not "
                     "strictly below %.4f (classless FIFO)\n",
                     mix.name, qps, runs[1].class_violation_ratio[i],
                     runs[0].class_violation_ratio[i]);
        gates_ok = false;
      }
      if (smoke && runs[1].class_dropped[b] != 0) {
        std::fprintf(stderr, "FAIL: %s q%.0f dropped %zu batch-class queries\n",
                     mix.name, qps, runs[1].class_dropped[b]);
        gates_ok = false;
      }
    }
  }
  table.metric("classes.worst_interactive_violation_gain", worst_gain);

  std::printf("worst interactive violation gain (fifo - aware): %.4f\n",
              worst_gain);
  return gates_ok ? 0 : 1;
}
