// Tests for the control plane: performance models, the MILP and
// exhaustive allocators (cross-checked against each other over a demand
// sweep), ablation variants, and the controller loop.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "control/allocator.hpp"
#include "control/allocator_variants.hpp"
#include "control/controller.hpp"
#include "control/exhaustive_allocator.hpp"
#include "control/milp_allocator.hpp"
#include "models/model_repository.hpp"

namespace diffserve::control {
namespace {

// A synthetic but realistic allocation input modeled on Cascade 1:
// light ~ SD-Turbo + EfficientNet, heavy ~ SDv1.5.
AllocationInput cascade1_input(double demand, int workers = 16,
                               double slo = 5.0) {
  AllocationInput in;
  in.demand_qps = demand;
  in.total_workers = workers;
  in.slo_seconds = slo;
  const auto repo = models::ModelRepository::with_paper_catalog();
  const auto disc = repo.model(models::catalog::kEfficientNet).latency;
  in.light() = StagePerfModel(
      repo.model(models::catalog::kSdTurbo).latency, &disc);
  in.heavy() =
      StagePerfModel(repo.model(models::catalog::kSdV15).latency, nullptr);
  // A smooth synthetic confidence CDF: thresholds t with f(t) = t^1.5,
  // capped at 0.65 like the controller's default grid.
  for (int k = 0; k <= 50; ++k) {
    const double f = 0.65 * k / 50.0;
    in.threshold_grid().push_back({std::pow(f, 1.0 / 1.5), f});
  }
  return in;
}

TEST(StagePerfModel, LatencyAndThroughput) {
  const auto repo = models::ModelRepository::with_paper_catalog();
  const auto disc = repo.model(models::catalog::kEfficientNet).latency;
  StagePerfModel light(repo.model(models::catalog::kSdTurbo).latency, &disc);
  EXPECT_NEAR(light.execution_latency(1), 0.11, 1e-9);  // 0.10 + 0.01
  EXPECT_NEAR(light.stage_latency(1), 1.5 * 0.11, 1e-9);
  EXPECT_GT(light.throughput(8), light.throughput(1));
}

TEST(LittlesLaw, BasicCases) {
  EXPECT_NEAR(littles_law_delay(10.0, 2.0), 5.0, 1e-12);
  EXPECT_EQ(littles_law_delay(10.0, 0.0), 0.0);  // idle: no estimate
  EXPECT_EQ(littles_law_delay(-1.0, 2.0), 0.0);  // clamped
}

TEST(Exhaustive, DecisionSatisfiesPaperConstraints) {
  ExhaustiveAllocator alloc;
  const auto in = cascade1_input(10.0);
  const auto d = alloc.allocate(in);
  ASSERT_TRUE(d.feasible);
  EXPECT_TRUE(satisfies_constraints(in, d.light_workers(), d.heavy_workers(),
                                    d.light_batch(), d.heavy_batch(),
                                    d.deferral_fraction()));
}

TEST(Exhaustive, LowDemandMaximizesThreshold) {
  ExhaustiveAllocator alloc;
  const auto in = cascade1_input(2.0);
  const auto d = alloc.allocate(in);
  ASSERT_TRUE(d.feasible);
  // With ample capacity the threshold should hit the top of the grid.
  EXPECT_NEAR(d.threshold(), in.threshold_grid().back().threshold, 1e-9);
}

TEST(Exhaustive, HighDemandLowersThreshold) {
  ExhaustiveAllocator alloc;
  const auto lo = alloc.allocate(cascade1_input(5.0));
  const auto hi = alloc.allocate(cascade1_input(25.0));
  ASSERT_TRUE(lo.feasible);
  ASSERT_TRUE(hi.feasible);
  EXPECT_LT(hi.threshold(), lo.threshold());
  EXPECT_LT(hi.deferral_fraction(), lo.deferral_fraction());
}

TEST(Exhaustive, OverloadFallsBackGracefully) {
  ExhaustiveAllocator alloc;
  const auto d = alloc.allocate(cascade1_input(500.0, /*workers=*/4));
  EXPECT_FALSE(d.feasible);
  EXPECT_LE(d.light_workers() + d.heavy_workers(), 4);
  EXPECT_GE(d.light_workers(), 1);
}

TEST(Exhaustive, OverloadFallbackBatchesFitTheSlo) {
  const auto in = cascade1_input(500.0, 4);
  const auto d = overload_fallback(in);
  EXPECT_LE(in.heavy().stage_latency(d.heavy_batch()) +
                in.light().stage_latency(d.light_batch()),
            in.slo_seconds + 1e-9);
}

class MilpMatchesExhaustive : public ::testing::TestWithParam<double> {};

TEST_P(MilpMatchesExhaustive, SameThresholdAcrossDemands) {
  const double demand = GetParam();
  const auto in = cascade1_input(demand);
  ExhaustiveAllocator oracle;
  MilpAllocator milp;  // continuous-deferral formulation
  const auto a = oracle.allocate(in);
  const auto b = milp.allocate(in);
  ASSERT_EQ(a.feasible, b.feasible);
  if (a.feasible) {
    // Both maximize the threshold; they must agree on it (modulo grid
    // rounding of the continuous solution).
    EXPECT_NEAR(a.deferral_fraction(), b.deferral_fraction(), 0.015)
        << "demand " << demand;
    EXPECT_TRUE(satisfies_constraints(in, b.light_workers(), b.heavy_workers(),
                                      b.light_batch(), b.heavy_batch(),
                                      b.deferral_fraction()));
  }
}

INSTANTIATE_TEST_SUITE_P(DemandSweep, MilpMatchesExhaustive,
                         ::testing::Values(1.0, 3.0, 6.0, 9.0, 12.0, 15.0,
                                           18.0, 22.0, 26.0, 30.0));

TEST(Milp, GridFormulationMatchesContinuous) {
  const auto in = cascade1_input(12.0);
  MilpAllocator fast(MilpAllocator::Formulation::kContinuousDeferral);
  MilpAllocator grid(MilpAllocator::Formulation::kThresholdGrid);
  const auto a = fast.allocate(in);
  const auto b = grid.allocate(in);
  ASSERT_TRUE(a.feasible);
  ASSERT_TRUE(b.feasible);
  EXPECT_NEAR(a.deferral_fraction(), b.deferral_fraction(), 0.015);
}

TEST(Milp, BuildProblemHasPaperConstraints) {
  const auto in = cascade1_input(10.0);
  const auto p = MilpAllocator::build_problem(
      in, MilpAllocator::Formulation::kThresholdGrid);
  // 6 light batches*2 + 6 heavy*2 + 51 thresholds = 75 variables.
  EXPECT_EQ(p.num_variables(), 75u);
  EXPECT_TRUE(p.has_integer_variables());
}

TEST(Milp, QueueBacklogTriggersRelaxedResolve) {
  auto in = cascade1_input(10.0);
  // A transient backlog that makes Eq. 1 unsatisfiable as observed.
  in.heavy_queue_length() = 100.0;
  in.heavy_arrival_rate() = 5.0;  // q2 = 20 s >> SLO
  MilpAllocator milp;
  const auto d = milp.allocate(in);
  // Must still produce a capacity plan rather than the overload fallback.
  EXPECT_TRUE(d.feasible);
  EXPECT_GT(d.heavy_workers(), 0);
}

TEST(StaticThreshold, PinsTheGrid) {
  const auto in = cascade1_input(6.0);
  const double target = in.threshold_grid()[20].threshold;
  StaticThresholdAllocator alloc(std::make_unique<ExhaustiveAllocator>(),
                                 target);
  const auto d = alloc.allocate(in);
  EXPECT_NEAR(d.threshold(), target, 1e-9);
  // Even at low demand the threshold cannot rise above the pin.
  const auto d2 = alloc.allocate(cascade1_input(1.0));
  EXPECT_NEAR(d2.threshold(), target, 1e-9);
}

TEST(NoQueueModel, IgnoresRealQueueObservations) {
  auto in = cascade1_input(8.0);
  in.heavy_queue_length() = 1000.0;  // would dominate Little's law
  in.heavy_arrival_rate() = 1.0;
  NoQueueModelAllocator alloc(std::make_unique<ExhaustiveAllocator>());
  const auto d = alloc.allocate(in);
  // The heuristic replaces the backlog with 2x exec, so a feasible plan
  // still comes out.
  EXPECT_TRUE(d.feasible);
}

TEST(AimdBatching, IncreasesOnCalmDecreasesOnViolations) {
  AimdBatchAllocator alloc(std::make_unique<ExhaustiveAllocator>());
  auto in = cascade1_input(8.0);
  in.recent_violation_ratio = 0.0;
  alloc.allocate(in);
  const int after_calm = alloc.current_light_batch();
  EXPECT_GT(after_calm, 1);  // stepped up from 1
  in.recent_violation_ratio = 0.5;
  alloc.allocate(in);
  EXPECT_LT(alloc.current_light_batch(), after_calm);
}

TEST(AimdBatching, NeverStepsPastSloInfeasibleBatch) {
  AimdBatchAllocator alloc(std::make_unique<ExhaustiveAllocator>());
  auto in = cascade1_input(8.0);
  in.recent_violation_ratio = 0.0;
  for (int i = 0; i < 20; ++i) alloc.allocate(in);
  // Heavy batches above 2 blow the 5 s SLO (1.5 * e2(4) > 5 s).
  EXPECT_LE(in.heavy().stage_latency(alloc.current_heavy_batch()),
            in.slo_seconds);
}

TEST(AllocationInput, ProvisionedDemandAppliesLambda) {
  AllocationInput in;
  in.demand_qps = 10.0;
  in.over_provision = 1.05;
  EXPECT_NEAR(in.provisioned_demand(), 10.5, 1e-12);
}

TEST(Decision, SolveTimeIsMeasured) {
  ExhaustiveAllocator e;
  MilpAllocator m;
  const auto in = cascade1_input(10.0);
  EXPECT_GE(e.allocate(in).solve_time_ms, 0.0);
  EXPECT_GT(m.allocate(in).solve_time_ms, 0.0);
}

TEST(Milp, SolveTimeWithinControlBudget) {
  // §4.5 reports ~10 ms with Gurobi; the budget is deliberately loose — it
  // exists to catch a solver that regressed into seconds, not to benchmark.
  // ctest runs suites in parallel, so even the fastest of several solves
  // can be stalled by an oversubscribed CI machine. Sanitizer builds run
  // the solver several times slower — scale the budget rather than letting
  // a wall-clock assertion fail on instrumentation overhead.
  double budget_ms = 500.0;
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  budget_ms *= 8.0;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  budget_ms *= 8.0;
#endif
#endif
  MilpAllocator m;
  const auto in = cascade1_input(14.0);
  m.allocate(in);  // warm up
  // Best of several runs: a single sample is at the mercy of whatever else
  // the CI machine is doing (ctest runs suites in parallel); the *fastest*
  // solve reflects the solver's actual cost.
  double best_ms = 1e18;
  for (int i = 0; i < 5; ++i)
    best_ms = std::min(best_ms, m.allocate(in).solve_time_ms);
  EXPECT_LT(best_ms, budget_ms);
}

}  // namespace
}  // namespace diffserve::control
