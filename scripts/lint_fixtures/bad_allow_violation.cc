// Fixture: escape hatch without a justification. Must trip `bad-allow`
// (the bare allow) — a reasonless annotation is how contracts rot.
#include <chrono>

double watchdog_deadline() {
  // ds-lint: allow(wall-clock)
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}
