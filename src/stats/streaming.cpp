#include "stats/streaming.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace diffserve::stats {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double PercentileTracker::percentile(double p) const {
  DS_REQUIRE(!samples_.empty(), "percentile of empty sample set");
  DS_REQUIRE(p >= 0.0 && p <= 100.0, "percentile outside [0,100]");
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (samples_.size() == 1) return samples_.front();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

}  // namespace diffserve::stats
