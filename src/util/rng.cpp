#include "util/rng.hpp"

#include <cmath>

#include "util/check.hpp"

namespace diffserve::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // All-zero state would be a fixed point; splitmix64 cannot produce four
  // zeros from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high-quality mantissa bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  DS_REQUIRE(lo <= hi, "uniform range inverted");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  DS_REQUIRE(lo <= hi, "uniform_int range inverted");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  // Lemire-style rejection-free-ish bounded draw with rejection on the
  // biased region.
  const std::uint64_t threshold = (~span + 1) % span;  // == 2^64 mod span
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return lo + static_cast<std::int64_t>(r % span);
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  DS_REQUIRE(stddev >= 0.0, "negative stddev");
  return mean + stddev * normal();
}

double Rng::exponential(double rate) {
  DS_REQUIRE(rate > 0.0, "exponential rate must be positive");
  return -std::log(1.0 - uniform()) / rate;
}

double Rng::gamma(double shape, double scale) {
  DS_REQUIRE(shape > 0.0 && scale > 0.0, "gamma parameters must be positive");
  if (shape < 1.0) {
    // Boost to shape+1 then scale back (Marsaglia–Tsang trick).
    const double u = uniform();
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
      return d * v * scale;
  }
}

double Rng::beta(double a, double b) {
  const double x = gamma(a, 1.0);
  const double y = gamma(b, 1.0);
  return x / (x + y);
}

std::int64_t Rng::poisson(double mean) {
  DS_REQUIRE(mean >= 0.0, "poisson mean must be non-negative");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Inversion by sequential search.
    const double l = std::exp(-mean);
    std::int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation with continuity correction is adequate for the
  // large-mean arrival counts used in trace generation.
  const double x = normal(mean, std::sqrt(mean));
  return x < 0.0 ? 0 : static_cast<std::int64_t>(x + 0.5);
}

bool Rng::bernoulli(double p) {
  DS_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli p outside [0,1]");
  return uniform() < p;
}

Rng Rng::fork() { return Rng(next()); }

}  // namespace diffserve::util
