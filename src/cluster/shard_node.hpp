// ShardNode — the shard side of one cluster link.
//
// Glues one engine::CascadeEngine to its wire endpoint: incoming
// query/submit frames become engine.submit(), cluster/plan frames become
// engine.apply(), and shard/stats_request frames are answered with a
// snapshot of the engine's controller-facing statistics. The engine's
// terminal observer streams every completion/drop back to the frontend
// as a query/terminal frame.
//
// Threading: frame handlers run on whatever thread the transport
// delivers on (the DES event loop, or a socket reader thread); every
// engine call they make takes the engine guard internally. The terminal
// observer fires under the engine guard — it only encodes and sends, and
// Endpoint::send never re-enters the engine, so no lock cycle exists
// (guard -> endpoint write mutex is the only ordering).
#pragma once

#include <cstdint>
#include <memory>

#include "engine/engine.hpp"
#include "net/messages.hpp"
#include "net/transport.hpp"

namespace diffserve::cluster {

class ShardNode {
 public:
  /// Installs the endpoint receiver and the engine terminal observer.
  ShardNode(std::uint32_t id, engine::CascadeEngine& engine,
            std::unique_ptr<net::Endpoint> endpoint);

  void start() { endpoint_->start(); }
  void stop() { endpoint_->stop(); }

  std::uint32_t id() const { return id_; }
  engine::CascadeEngine& engine() { return engine_; }
  const engine::CascadeEngine& engine() const { return engine_; }

 private:
  void on_frame(net::Frame f);
  net::ShardStatsMsg snapshot(std::uint64_t token) const;

  std::uint32_t id_;
  engine::CascadeEngine& engine_;
  std::unique_ptr<net::Endpoint> endpoint_;
};

}  // namespace diffserve::cluster
