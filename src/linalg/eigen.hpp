// Symmetric eigendecomposition (cyclic Jacobi) and the positive
// semi-definite matrix square root built on it. These are the only
// decompositions the Fréchet/FID computation needs.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace diffserve::linalg {

struct EigenDecomposition {
  std::vector<double> values;  ///< ascending eigenvalues
  Matrix vectors;              ///< columns are the matching eigenvectors
};

/// Cyclic Jacobi eigendecomposition of a symmetric matrix. Converges to
/// machine precision for the small dimensions used here. Throws
/// std::invalid_argument for non-symmetric input.
EigenDecomposition eigen_symmetric(const Matrix& a, double tol = 1e-12,
                                   int max_sweeps = 100);

/// Principal square root of a symmetric positive semi-definite matrix.
/// Small negative eigenvalues (numerical noise, clipped at -clip_tol) are
/// clamped to zero; genuinely negative spectra throw.
Matrix sqrtm_psd(const Matrix& a, double clip_tol = 1e-8);

}  // namespace diffserve::linalg
