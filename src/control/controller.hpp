// The DiffServe Controller (§3.1, §3.3).
//
// Every control period it: (1) snapshots runtime statistics from the
// engine (demand, per-stage queue lengths and arrival rates, recent
// violations), (2) refreshes the demand estimate with an EWMA and each
// boundary's deferral profile f_b(t) with live confidence observations,
// (3) asks its Allocator for the new configuration, and (4) applies the
// plan through the engine. Decisions are recorded for the timeline
// figures.
//
// The controller is backend-agnostic: it observes one CascadeEngine and
// schedules its periodic tick through the engine's ExecutionBackend, so
// the same control loop runs over the discrete-event simulator and the
// threaded testbed. It inherits the engine's chain depth: a two-stage
// cascade yields exactly the paper's control loop.
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <vector>

#include "control/allocator.hpp"
#include "discriminator/deferral_profile.hpp"
#include "engine/engine.hpp"
#include "stats/ewma.hpp"
#include "util/mutex.hpp"

namespace diffserve::control {

struct ControllerConfig {
  double period_seconds = 5.0;
  double ewma_alpha = 0.4;
  /// Trend smoothing (Holt) and how many control periods ahead to
  /// forecast demand — covers the observation + actuation lag so ramps do
  /// not leave the deeper pools underprovisioned.
  double trend_beta = 0.3;
  double forecast_horizon_periods = 2.0;
  double over_provision = 1.05;  ///< lambda (§3.3)
  std::size_t threshold_grid_points = 51;
  /// Cap on the planned deferral fraction at each boundary: past the
  /// served-quality optimum (~50% deferral in Figure 1a), deferring
  /// confidently-good outputs wastes downstream capacity and *worsens*
  /// FID, so the plan never pushes deferral far beyond the optimum even
  /// with idle capacity.
  double max_deferral_fraction = 0.55;
  std::size_t online_profile_capacity = 4000;
  /// Apply a plan immediately at start() using this demand guess (QPS);
  /// <= 0 derives it from the first observation instead.
  double initial_demand_guess = 4.0;
  /// Discount allocator inputs by the reuse cache's observed absorption:
  /// demand becomes lambda * (1 - h_exact) (exact hits never reach the
  /// chain) and per-stage service times scale by the cache's step-fraction
  /// savings (approx hits run fewer diffusion steps). The discount is
  /// estimated per hit *level* — separate near / far hit-share and
  /// step-fraction EWMAs — so with distance-interpolated fractions each
  /// level's discount tracks its actual interpolated mean rather than one
  /// pooled average. No-op when the engine's cache is disabled.
  bool cache_aware = true;
  /// EWMA smoothing of the per-period hit-ratio / step-fraction samples.
  double cache_alpha = 0.3;
};

class Controller {
 public:
  /// `offline_profiles` seeds one online deferral profile per cascade
  /// boundary (size must match the engine's boundary count).
  Controller(engine::CascadeEngine& engine,
             std::unique_ptr<Allocator> allocator,
             std::vector<discriminator::DeferralProfile> offline_profiles,
             ControllerConfig cfg = {});
  /// Two-stage-era convenience: a single profile for the single boundary
  /// of a classic cascade (replicated if the chain is deeper).
  Controller(engine::CascadeEngine& engine,
             std::unique_ptr<Allocator> allocator,
             discriminator::DeferralProfile offline_profile,
             ControllerConfig cfg = {});

  /// Apply the initial plan and schedule the periodic control tick on the
  /// engine's backend.
  void start();
  /// Stop the periodic tick.
  void stop();

  struct Snapshot {
    double time;
    double demand_estimate;
    double observed_demand;
    double recent_violation_ratio;
    /// Smoothed exact-hit ratio the demand estimate was discounted by
    /// (0 with the cache off or cache_aware disabled).
    double cache_exact_hit_ratio = 0.0;
    /// Smoothed per-level hit shares of the traffic that still reaches the
    /// chain (0 with the cache off).
    double cache_near_hit_ratio = 0.0;
    double cache_far_hit_ratio = 0.0;
    /// Smoothed service-time multiplier applied to the stage models
    /// (1 with the cache off) — combined from the per-level EWMAs.
    double cache_service_discount = 1.0;
    AllocationDecision decision;
    /// Smoothed per-class demand (QPS, indexed by engine::QueryClass;
    /// all-zero with SLO classes disabled).
    std::array<double, engine::kQueryClassCount> class_demand{};
    /// Weighted effective SLO handed to the allocator (== the engine SLO
    /// in classless setups).
    double effective_slo_seconds = 0.0;
  };
  const std::vector<Snapshot>& history() const { return history_; }
  const Allocator& allocator() const { return *allocator_; }

  /// One control iteration (exposed for tests).
  void tick();

 private:
  AllocationInput snapshot_input() const;
  void apply_decision(const AllocationDecision& d);
  void schedule_next_tick();
  /// Fold the cache counters accumulated since the last tick into the
  /// hit-ratio / step-fraction EWMAs.
  void observe_cache();
  /// Smoothed exact-hit ratio used to discount demand, capped below 1 so
  /// a fully-absorbing cache never plans zero capacity (0 when not
  /// cache-aware).
  double effective_exact_hit_ratio() const;
  /// Smoothed per-stage service-time multiplier (1 when not cache-aware):
  /// 1 - near_share*(1 - near_fraction) - far_share*(1 - far_fraction),
  /// each factor its own EWMA.
  double effective_service_discount() const;
  /// Smoothed near/far hit share of non-exact traffic (0 when not
  /// cache-aware).
  double effective_near_hit_ratio() const;
  double effective_far_hit_ratio() const;

  engine::CascadeEngine& engine_;
  std::unique_ptr<Allocator> allocator_;
  /// Confidence observations arrive from the engine's data path, which a
  /// concurrent backend runs on worker threads; ticks read the profiles
  /// from the control thread.
  mutable util::Mutex profile_mu_;
  /// One online profile per cascade boundary.
  std::vector<discriminator::OnlineDeferralProfile> profiles_
      DS_GUARDED_BY(profile_mu_);
  ControllerConfig cfg_;

  stats::HoltEwma demand_holt_;
  /// Per-SLO-class demand EWMAs (indexed by engine::QueryClass), fed from
  /// the engine's per-class arrival windows each tick. Only observed while
  /// the engine's SLO classes are enabled.
  std::array<stats::Ewma, engine::kQueryClassCount> class_demand_ewma_;
  /// Online estimates of what the reuse cache absorbs, differenced from
  /// the engine's cumulative cache counters each tick and split by hit
  /// level: exact hits discount demand; near/far hit shares and their
  /// mean step fractions combine into the service-time discount.
  stats::Ewma cache_hit_ewma_;
  stats::Ewma cache_near_share_ewma_;
  stats::Ewma cache_far_share_ewma_;
  stats::Ewma cache_near_frac_ewma_;
  stats::Ewma cache_far_frac_ewma_;
  cache::CacheStats last_cache_stats_;
  bool first_tick_ = true;
  /// Absolute time of the most recently scheduled tick; the chain anchors
  /// to t0 + k*period so solve time never stretches the control period.
  double next_tick_time_ = 0.0;
  /// Written by the re-arm callback on the backend's timer thread, read
  /// by stop() on the caller's thread.
  util::Mutex tick_mu_;
  engine::TimerHandle tick_handle_ DS_GUARDED_BY(tick_mu_){};
  std::atomic<bool> running_{false};
  std::vector<Snapshot> history_;
};

}  // namespace diffserve::control
