// Shared helpers for the figure-reproduction bench binaries: consistent
// stdout tables plus CSV output next to the binary so plots can be
// regenerated without re-running, environment construction, and the
// timeline/summary row boilerplate every figure main repeats.
#pragma once

#include <cstdio>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "core/environment.hpp"
#include "core/experiment.hpp"
#include "util/csv.hpp"

namespace diffserve::bench {

inline std::string results_dir() {
  const std::string dir = "bench_results";
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

inline std::string csv_path(const std::string& name) {
  return results_dir() + "/" + name + ".csv";
}

inline void banner(const char* figure, const char* caption) {
  std::printf("\n=== %s — %s ===\n", figure, caption);
}

/// Environment with the given evaluation-set size over a catalog cascade
/// (defaults to the paper's Cascade 1).
inline core::CascadeEnvironment make_env(
    std::size_t workload_queries,
    const std::string& cascade = models::catalog::kCascade1) {
  core::EnvironmentConfig ec;
  ec.cascade = cascade;
  ec.workload_queries = workload_queries;
  return core::CascadeEnvironment(ec);
}

/// Aligned stdout table mirrored row-for-row into a CSV file; prints the
/// `[csv] path` footer on destruction. Keeps figure mains declarative:
/// construct with the columns, call row() per experiment.
class ReportTable {
 public:
  ReportTable(const std::string& csv_name, std::vector<std::string> columns,
              std::vector<int> widths = {})
      : csv_(csv_path(csv_name), columns), widths_(std::move(widths)) {
    if (widths_.empty())
      for (const auto& c : columns)
        widths_.push_back(static_cast<int>(c.size()) + 4 < 10
                              ? 10
                              : static_cast<int>(c.size()) + 4);
    for (std::size_t i = 0; i < columns.size(); ++i)
      std::printf("%-*s ", widths_[i], columns[i].c_str());
    std::printf("\n");
  }
  ~ReportTable() { std::printf("[csv] %s\n", csv_.path().c_str()); }

  void row(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      std::printf("%-*s ", widths_[i], cells[i].c_str());
    std::printf("\n");
    csv_.add_row(cells);
  }
  void row(const std::vector<double>& cells) {
    std::vector<std::string> formatted;
    formatted.reserve(cells.size());
    for (const double v : cells) formatted.push_back(fmt(v));
    row(formatted);
  }

  /// Compact cell formatting (shorter than CsvWriter's lossless format —
  /// these cells also render in the stdout table).
  static std::string fmt(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4g", v);
    return buf;
  }

  util::CsvWriter& csv() { return csv_; }

 private:
  util::CsvWriter csv_;
  std::vector<int> widths_;
};

/// The one-line summary every comparison figure prints per experiment:
/// approach, FID, violation ratio, mean latency, light-served share.
inline const std::vector<std::string>& summary_columns() {
  static const std::vector<std::string> cols = {
      "approach", "fid", "violation_ratio", "mean_latency", "light_pct"};
  return cols;
}

inline std::vector<std::string> summary_cells(
    const core::ExperimentResult& r) {
  return {r.approach, ReportTable::fmt(r.overall_fid),
          ReportTable::fmt(r.violation_ratio),
          ReportTable::fmt(r.mean_latency),
          ReportTable::fmt(100.0 * r.light_served_fraction)};
}

/// Timeline rows (Figure 5/8 shape): per window time, demand, FID,
/// violation ratio, and the threshold sampled from the nearest control
/// snapshot at or before the window.
inline void add_timeline_rows(util::CsvWriter& csv,
                              const core::ExperimentResult& r,
                              const trace::RateTrace& tr) {
  for (const auto& pt : r.timeline) {
    double threshold = 0.0;
    for (const auto& h : r.control_history)
      if (h.time <= pt.time) threshold = h.decision.threshold();
    csv.add_row(std::vector<std::string>{
        r.approach, util::CsvWriter::format(pt.time),
        util::CsvWriter::format(tr.qps_at(pt.time)),
        util::CsvWriter::format(pt.fid),
        util::CsvWriter::format(pt.violation_ratio),
        util::CsvWriter::format(threshold)});
  }
}

}  // namespace diffserve::bench
