#include "control/milp_allocator.hpp"

#include <chrono>
#include <cmath>

#include "control/exhaustive_allocator.hpp"
#include "util/check.hpp"

namespace diffserve::control {

MilpAllocator::MilpAllocator(Formulation formulation,
                             milp::MilpOptions options)
    : formulation_(formulation), options_(options) {}

// Variable layout (in order of creation):
//   y1[b]  binary   one-hot light batch choice        (nb1 vars)
//   x1[b]  integer  light workers running batch b     (nb1 vars)
//   y2[b]  binary   one-hot heavy batch choice        (nb2 vars)
//   x2[b]  integer  heavy workers running batch b     (nb2 vars)
// then, depending on the formulation:
//   z[k]   binary   one-hot threshold choice          (kThresholdGrid)
//   phi    continuous deferral fraction               (kContinuousDeferral)
milp::Problem MilpAllocator::build_problem(const AllocationInput& in,
                                           Formulation formulation,
                                           double worker_penalty) {
  DS_REQUIRE(!in.threshold_grid.empty(), "empty threshold grid");
  milp::Problem p;
  const auto& b1s = in.light.batch_sizes();
  const auto& b2s = in.heavy.batch_sizes();
  const auto& grid = in.threshold_grid;
  const double s = in.total_workers;
  const double d = in.provisioned_demand();

  std::vector<int> y1(b1s.size()), x1(b1s.size());
  std::vector<int> y2(b2s.size()), x2(b2s.size());

  for (std::size_t i = 0; i < b1s.size(); ++i) {
    y1[i] = p.add_variable("y1_b" + std::to_string(b1s[i]),
                           milp::VarType::kBinary, 0, 1, 0.0);
    x1[i] = p.add_variable("x1_b" + std::to_string(b1s[i]),
                           milp::VarType::kInteger, 0, s, -worker_penalty);
  }
  for (std::size_t i = 0; i < b2s.size(); ++i) {
    y2[i] = p.add_variable("y2_b" + std::to_string(b2s[i]),
                           milp::VarType::kBinary, 0, 1, 0.0);
    x2[i] = p.add_variable("x2_b" + std::to_string(b2s[i]),
                           milp::VarType::kInteger, 0, s, -worker_penalty);
  }

  std::vector<int> z;
  int phi = -1;
  if (formulation == Formulation::kThresholdGrid) {
    z.resize(grid.size());
    for (std::size_t k = 0; k < grid.size(); ++k)
      z[k] = p.add_variable("z_" + std::to_string(k), milp::VarType::kBinary,
                            0, 1, grid[k].threshold);
  } else {
    // Maximizing f is equivalent to maximizing t because f is monotone
    // non-decreasing in t; the threshold is recovered from the grid after
    // the solve.
    phi = p.add_variable("phi", milp::VarType::kContinuous, 0.0,
                         grid.back().fraction, 1.0);
  }

  // One-hot choices.
  std::vector<std::pair<int, double>> terms;
  for (std::size_t i = 0; i < b1s.size(); ++i) terms.push_back({y1[i], 1.0});
  p.add_constraint("choose_b1", terms, milp::Sense::kEq, 1.0);
  terms.clear();
  for (std::size_t i = 0; i < b2s.size(); ++i) terms.push_back({y2[i], 1.0});
  p.add_constraint("choose_b2", terms, milp::Sense::kEq, 1.0);
  if (formulation == Formulation::kThresholdGrid) {
    terms.clear();
    for (std::size_t k = 0; k < grid.size(); ++k) terms.push_back({z[k], 1.0});
    p.add_constraint("choose_t", terms, milp::Sense::kEq, 1.0);
  }

  // Workers may only run the chosen batch size: x_{i,b} <= S y_{i,b}.
  for (std::size_t i = 0; i < b1s.size(); ++i)
    p.add_constraint("link_x1_b" + std::to_string(b1s[i]),
                     {{x1[i], 1.0}, {y1[i], -s}}, milp::Sense::kLe, 0.0);
  for (std::size_t i = 0; i < b2s.size(); ++i)
    p.add_constraint("link_x2_b" + std::to_string(b2s[i]),
                     {{x2[i], 1.0}, {y2[i], -s}}, milp::Sense::kLe, 0.0);

  // Eq. 2: light throughput (with utilization headroom) covers all demand.
  terms.clear();
  for (std::size_t i = 0; i < b1s.size(); ++i)
    terms.push_back(
        {x1[i], in.light.throughput(b1s[i]) * in.light_utilization_target});
  p.add_constraint("light_throughput", terms, milp::Sense::kGe, d);

  // Eq. 3: heavy throughput (with utilization headroom) covers deferrals.
  terms.clear();
  for (std::size_t i = 0; i < b2s.size(); ++i)
    terms.push_back(
        {x2[i], in.heavy.throughput(b2s[i]) * in.heavy_utilization_target});
  if (formulation == Formulation::kThresholdGrid) {
    for (std::size_t k = 0; k < grid.size(); ++k)
      terms.push_back({z[k], -d * grid[k].fraction});
  } else {
    terms.push_back({phi, -d});
  }
  p.add_constraint("heavy_throughput", terms, milp::Sense::kGe, 0.0);

  // Eq. 4: device budget.
  terms.clear();
  for (std::size_t i = 0; i < b1s.size(); ++i) terms.push_back({x1[i], 1.0});
  for (std::size_t i = 0; i < b2s.size(); ++i) terms.push_back({x2[i], 1.0});
  p.add_constraint("device_budget", terms, milp::Sense::kLe, s);

  // Eq. 1: latency. Queuing delays are constants at solve time (Little's
  // law on live observations); stage latencies depend on the chosen batch.
  const double q1 =
      littles_law_delay(in.light_queue_length, in.light_arrival_rate);
  const double q2 =
      littles_law_delay(in.heavy_queue_length, in.heavy_arrival_rate);
  terms.clear();
  for (std::size_t i = 0; i < b1s.size(); ++i)
    terms.push_back({y1[i], in.light.stage_latency(b1s[i])});
  for (std::size_t i = 0; i < b2s.size(); ++i)
    terms.push_back({y2[i], in.heavy.stage_latency(b2s[i])});
  p.add_constraint("latency_slo", terms, milp::Sense::kLe,
                   in.slo_seconds - q1 - q2);

  return p;
}

AllocationDecision MilpAllocator::allocate(const AllocationInput& in) {
  const auto start = std::chrono::steady_clock::now();
  milp::Problem problem = build_problem(in, formulation_);
  milp::MilpResult res = milp::solve_milp(problem, options_);
  last_nodes_ = res.nodes_explored;
  if (!res.solution.optimal()) {
    // Transient queue backlog can make Eq. 1 unsatisfiable; retry as pure
    // capacity planning (queues drain via the drop policy).
    problem = build_problem(relax_queue_estimates(in), formulation_);
    res = milp::solve_milp(problem, options_);
    last_nodes_ += res.nodes_explored;
  }

  AllocationDecision out;
  if (res.solution.optimal()) {
    const auto& v = res.solution.values;
    const auto& b1s = in.light.batch_sizes();
    const auto& b2s = in.heavy.batch_sizes();
    const auto& grid = in.threshold_grid;
    std::size_t idx = 0;
    // Decode per the layout in build_problem.
    for (std::size_t i = 0; i < b1s.size(); ++i) {
      const double y = v[idx++];
      const double x = v[idx++];
      if (y > 0.5) {
        out.light_batch = b1s[i];
        out.light_workers = static_cast<int>(std::lround(x));
      }
    }
    for (std::size_t i = 0; i < b2s.size(); ++i) {
      const double y = v[idx++];
      const double x = v[idx++];
      if (y > 0.5) {
        out.heavy_batch = b2s[i];
        out.heavy_workers = static_cast<int>(std::lround(x));
      }
    }
    if (formulation_ == Formulation::kThresholdGrid) {
      for (std::size_t k = 0; k < grid.size(); ++k) {
        if (v[idx++] > 0.5) {
          out.threshold = grid[k].threshold;
          out.deferral_fraction = grid[k].fraction;
        }
      }
    } else {
      const double achieved_phi = v[idx++];
      // Highest grid threshold whose deferral fits in achieved_phi.
      out.threshold = grid.front().threshold;
      out.deferral_fraction = grid.front().fraction;
      for (const auto& g : grid) {
        if (g.fraction <= achieved_phi + 1e-9) {
          out.threshold = g.threshold;
          out.deferral_fraction = g.fraction;
        }
      }
    }
    out.feasible = true;
  } else {
    out = overload_fallback(in);
  }
  out.solve_time_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  return out;
}

}  // namespace diffserve::control
