#include "control/controller.hpp"

#include "util/check.hpp"
#include "util/log.hpp"

namespace diffserve::control {

Controller::Controller(sim::Simulation& sim, serving::ServingSystem& system,
                       std::unique_ptr<Allocator> allocator,
                       discriminator::DeferralProfile offline_profile,
                       ControllerConfig cfg)
    : sim_(sim),
      system_(system),
      allocator_(std::move(allocator)),
      profile_(std::move(offline_profile), cfg.online_profile_capacity),
      cfg_(cfg),
      demand_holt_(cfg.ewma_alpha, cfg.trend_beta) {
  DS_REQUIRE(allocator_ != nullptr, "controller needs an allocator");
  DS_REQUIRE(cfg_.period_seconds > 0.0, "control period must be positive");
  // Feed every data-path confidence into the online deferral profile.
  system_.balancer().set_confidence_observer(
      [this](double c) { profile_.observe(c); });
}

void Controller::start() {
  if (cfg_.initial_demand_guess > 0.0)
    demand_holt_.observe(cfg_.initial_demand_guess);
  tick();  // provision immediately rather than serving blind for a period
  tick_handle_ = sim_.every(cfg_.period_seconds, [this] { tick(); });
}

void Controller::stop() {
  if (tick_handle_.valid()) sim_.cancel(tick_handle_);
  tick_handle_ = {};
}

AllocationInput Controller::snapshot_input() const {
  AllocationInput in;
  // Forecast past the observation + actuation lag so ramps are covered.
  in.demand_qps = demand_holt_.forecast(cfg_.forecast_horizon_periods);
  in.over_provision = cfg_.over_provision;
  in.slo_seconds = system_.config().slo_seconds;
  in.total_workers = system_.config().total_workers;

  const auto light = system_.balancer().light_stats();
  const auto heavy = system_.balancer().heavy_stats();
  in.light_queue_length = light.total_queue_length;
  in.light_arrival_rate = light.arrival_rate;
  in.heavy_queue_length = heavy.total_queue_length;
  in.heavy_arrival_rate = heavy.arrival_rate;
  in.recent_violation_ratio =
      system_.sink().recent_violation_ratio(sim_.now());
  in.threshold_grid = profile_.grid(cfg_.threshold_grid_points,
                                    cfg_.max_deferral_fraction);

  // Stage performance models from the repository profiles currently in use.
  const auto& plan = system_.plan();
  (void)plan;
  std::map<int, double> light_lat, heavy_lat;
  for (const int b : models::standard_batch_sizes()) {
    light_lat[b] = system_.light_exec_latency(b);
    heavy_lat[b] = system_.heavy_exec_latency(b);
  }
  in.light =
      StagePerfModel(models::LatencyProfile(std::move(light_lat)), nullptr);
  in.heavy =
      StagePerfModel(models::LatencyProfile(std::move(heavy_lat)), nullptr);
  return in;
}

void Controller::tick() {
  const double observed = system_.balancer().demand_rate();
  if (sim_.now() > 0.0) demand_holt_.observe(observed);

  const AllocationInput in = snapshot_input();
  const AllocationDecision d = allocator_->allocate(in);
  apply_decision(d);

  history_.push_back({sim_.now(), in.demand_qps, observed,
                      in.recent_violation_ratio, d});
  DS_LOG_DEBUG("controller")
      << "t=" << sim_.now() << " demand=" << in.demand_qps
      << " x1=" << d.light_workers << " x2=" << d.heavy_workers
      << " b1=" << d.light_batch << " b2=" << d.heavy_batch
      << " thr=" << d.threshold << (d.feasible ? "" : " (overload)");
}

void Controller::apply_decision(const AllocationDecision& d) {
  serving::AllocationPlan plan;
  plan.mode = d.direct_mode ? serving::RoutingMode::kDirect
                            : serving::RoutingMode::kCascade;
  plan.light_workers = d.light_workers;
  plan.heavy_workers = d.heavy_workers;
  plan.light_batch = d.light_batch;
  plan.heavy_batch = d.heavy_batch;
  plan.threshold = d.threshold;
  plan.p_heavy = d.p_heavy;
  system_.apply(plan);
}

}  // namespace diffserve::control
