// End-to-end serving system assembly for the discrete-event simulator:
// a cluster of workers, the load balancer, and the metrics sink, wired to
// one cascade. The controller (src/control) reconfigures it through
// AllocationPlan; baselines reuse the same machinery with different plans
// and routing modes.
#pragma once

#include <memory>
#include <vector>

#include "discriminator/discriminator.hpp"
#include "models/model_repository.hpp"
#include "quality/fid.hpp"
#include "quality/workload.hpp"
#include "serving/router.hpp"
#include "serving/sink.hpp"
#include "serving/worker.hpp"
#include "sim/simulation.hpp"

namespace diffserve::serving {

/// The controller's output: worker split, batch sizes, and routing
/// parameters (§3.3's x1, x2, b1, b2, t).
struct AllocationPlan {
  RoutingMode mode = RoutingMode::kCascade;
  int light_workers = 0;
  int heavy_workers = 0;
  int light_batch = 1;
  int heavy_batch = 1;
  double threshold = 0.5;  ///< cascade confidence threshold
  double p_heavy = 0.0;    ///< direct-mode heavy probability
};

struct SystemConfig {
  int total_workers = 16;
  double slo_seconds = 5.0;
  double model_load_delay = 1.0;
  /// Light-stage reserve = factor * e_heavy(b2): time kept for a deferral.
  double heavy_reserve_factor = 1.25;
  std::uint64_t seed = 1;
};

class ServingSystem {
 public:
  ServingSystem(sim::Simulation& sim, const quality::Workload& workload,
                const models::ModelRepository& repo,
                const models::CascadeSpec& cascade,
                const discriminator::Discriminator* disc,
                const quality::FidScorer& scorer, SystemConfig cfg);

  /// Reconfigure the cluster; evicted queries are re-routed automatically.
  void apply(const AllocationPlan& plan);
  const AllocationPlan& plan() const { return plan_; }

  /// Schedule query submissions at the given arrival times. Prompts cycle
  /// through the workload deterministically.
  void inject_arrivals(const std::vector<double>& times);

  LoadBalancer& balancer() { return *balancer_; }
  const LoadBalancer& balancer() const { return *balancer_; }
  MetricsSink& sink() { return *sink_; }
  const MetricsSink& sink() const { return *sink_; }
  const SystemConfig& config() const { return cfg_; }

  /// Stage execution latencies under the current profiles (used by the
  /// controller's performance model).
  double light_exec_latency(int batch) const;  ///< incl. discriminator
  double heavy_exec_latency(int batch) const;

  int light_tier() const { return light_tier_; }
  int heavy_tier() const { return heavy_tier_; }
  const models::CascadeSpec& cascade() const { return cascade_; }

  std::size_t worker_count() const { return workers_.size(); }
  const SimWorker& worker(std::size_t i) const { return *workers_[i]; }

 private:
  enum class Role { kIdle, kLight, kHeavy };

  sim::Simulation& sim_;
  const quality::Workload& workload_;
  const models::ModelRepository& repo_;
  models::CascadeSpec cascade_;
  SystemConfig cfg_;

  int light_tier_ = 0;
  int heavy_tier_ = 0;

  std::unique_ptr<MetricsSink> sink_;
  std::unique_ptr<LoadBalancer> balancer_;
  std::vector<std::unique_ptr<SimWorker>> workers_;
  std::vector<Role> roles_;
  AllocationPlan plan_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace diffserve::serving
