// Prompt popularity model for arrival streams.
//
// The rate trace decides *when* queries arrive; this module decides *which
// prompt* each one carries. Production text-to-image traffic is heavily
// repetitive — prompt popularity is Zipf-like and trending prompts cluster
// in time — and a reuse cache's hit ratio is an emergent property of that
// repetition, so the sampler has to model it rather than cycling the
// evaluation set round-robin.
//
// Two kinds:
//   * kRoundRobin — the historical behaviour: prompt i for the i-th
//     admission (modulo the workload size). Deterministic and
//     repetition-free beyond full cycles; the engine default.
//   * kZipf — rank-r prompt drawn with probability proportional to
//     (r+1)^-s, plus temporal locality: with probability `locality` the
//     next prompt instead repeats one of the last `locality_window` draws
//     (a trending prompt re-requested while it is hot).
//
// Sampling is a pure function of the seed and the draw sequence, so the
// DES and the threaded testbed see identical prompt streams for the same
// trace.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "util/rng.hpp"

namespace diffserve::trace {

struct PromptMixConfig {
  enum class Kind { kRoundRobin, kZipf };
  Kind kind = Kind::kRoundRobin;
  /// Zipf skew s: 0 = uniform; ~1 matches observed prompt popularity.
  double zipf_exponent = 1.05;
  /// Probability the next draw repeats one of the recent prompts.
  double locality = 0.3;
  /// How many recent draws the locality pool keeps.
  std::size_t locality_window = 64;
  std::uint64_t seed = 0x5eedULL;

  // --- service-class mix (the workload's tenant-tier axis) ----------------
  /// Share of admissions tagged interactive / batch; the remainder is
  /// standard. The degenerate default (both 0) makes next_class() return
  /// standard without touching any RNG, so single-class streams are
  /// byte-identical to the pre-class sampler. The class stream draws from
  /// its own dedicated RNG (`class_seed`), never from the prompt RNG —
  /// enabling a class mix must not perturb the prompt sequence.
  double interactive_share = 0.0;
  double batch_share = 0.0;
  std::uint64_t class_seed = 0xc1a55ULL;

  bool has_class_mix() const {
    return interactive_share > 0.0 || batch_share > 0.0;
  }
};

/// Stateful prompt-id stream over a workload of `n_prompts` prompts.
class PromptSampler {
 public:
  PromptSampler(std::size_t n_prompts, PromptMixConfig cfg = {});

  /// Prompt id of the next admission.
  std::uint32_t next();

  /// Service-class index of the next admission (0 = interactive,
  /// 1 = standard, 2 = batch — engine::QueryClass's values; trace stays
  /// decoupled from the engine headers). With no class mix configured this
  /// returns 1 without consuming a random draw.
  int next_class();

  const PromptMixConfig& config() const { return cfg_; }

 private:
  PromptMixConfig cfg_;
  std::size_t n_;
  util::Rng rng_;
  util::Rng class_rng_;            ///< dedicated class-mix stream
  std::uint64_t counter_ = 0;      ///< round-robin position
  std::vector<double> cdf_;        ///< Zipf CDF over popularity ranks
  std::deque<std::uint32_t> recent_;
};

}  // namespace diffserve::trace
