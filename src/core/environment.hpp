// CascadeEnvironment: the shared, expensive-to-build assets of one cascade
// deployment — the evaluation workload, the model repository, the FID
// scorer, one *trained* discriminator per cascade boundary, and each
// boundary's offline deferral profile. Build it once; run many experiments
// against it (every approach then sees byte-identical prompts, images, and
// discriminators). Works for any chain depth: a two-stage cascade gets the
// classic single discriminator, a depth-1 "chain" gets none.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "discriminator/deferral_profile.hpp"
#include "discriminator/discriminator.hpp"
#include "models/model_repository.hpp"
#include "quality/fid.hpp"
#include "quality/workload.hpp"

namespace diffserve::core {

struct EnvironmentConfig {
  std::string cascade = models::catalog::kCascade1;
  std::size_t workload_queries = 5000;
  quality::QualityConfig quality;
  discriminator::DiscriminatorConfig discriminator;
  std::size_t profile_queries = 1500;  ///< offline f(t) profiling set
};

class CascadeEnvironment {
 public:
  explicit CascadeEnvironment(EnvironmentConfig cfg = {});

  const EnvironmentConfig& config() const { return cfg_; }
  const models::ModelRepository& repository() const { return repo_; }
  const models::CascadeSpec& cascade() const { return cascade_; }
  const quality::Workload& workload() const { return *workload_; }
  const quality::FidScorer& scorer() const { return *scorer_; }

  std::size_t stage_count() const { return stage_tiers_.size(); }
  std::size_t boundary_count() const { return discs_.size(); }
  /// Discriminator trained for boundary b (stage b -> b+1); b defaults to
  /// the first boundary for two-stage call sites.
  const discriminator::Discriminator& disc(std::size_t b = 0) const {
    return *discs_.at(b);
  }
  /// Per-boundary discriminator pointers, in chain order (engine input).
  std::vector<const discriminator::Discriminator*> discs() const;
  const discriminator::DeferralProfile& offline_profile(
      std::size_t b = 0) const {
    return *offline_profiles_.at(b);
  }
  /// Copies of every boundary's offline profile (controller input).
  std::vector<discriminator::DeferralProfile> offline_profiles() const;

  const std::vector<int>& stage_tiers() const { return stage_tiers_; }
  int stage_tier(std::size_t s) const { return stage_tiers_.at(s); }
  int light_tier() const { return stage_tiers_.front(); }
  int heavy_tier() const { return stage_tiers_.back(); }
  double default_slo() const { return cascade_.slo_seconds; }

 private:
  EnvironmentConfig cfg_;
  models::ModelRepository repo_;
  models::CascadeSpec cascade_;
  std::unique_ptr<quality::Workload> workload_;
  std::unique_ptr<quality::FidScorer> scorer_;
  std::vector<std::unique_ptr<discriminator::Discriminator>> discs_;
  std::vector<std::unique_ptr<discriminator::DeferralProfile>>
      offline_profiles_;
  std::vector<int> stage_tiers_;
};

}  // namespace diffserve::core
