// Exhaustive allocation oracle.
//
// Enumerates every per-stage batch combination, derives the minimum worker
// counts by ceiling division, and searches the boundary threshold grids
// (descending scans with a branch-and-bound prune) for the feasible
// configuration with the highest *total* threshold — the §3.3 "max t"
// objective summed over the chain's boundaries, which is the scalar
// threshold itself for a two-stage cascade (ties: fewest workers, then
// lowest latency). For the paper's two-stage cascade the search space is
// |B|^2 * |grid| ~ a few thousand points; deeper chains add one bounded
// grid scan per extra boundary. Fast enough to serve as both a correctness
// oracle for the MILP allocator and a production fallback.
//
// When no configuration is feasible, returns a best-effort overload plan:
// the lowest thresholds, throughput-maximal batch sizes budgeted from the
// deepest stage up, and a worker split proportional to the stages' service
// demands.
#pragma once

#include "control/allocator.hpp"

namespace diffserve::control {

class ExhaustiveAllocator : public Allocator {
 public:
  AllocationDecision allocate(const AllocationInput& input) override;
  std::string name() const override { return "exhaustive"; }
};

/// Copy of the input with queue backlog terms dropped (capacity planning
/// only) — used when Eq. 1 is transiently unsatisfiable due to backlog.
AllocationInput relax_queue_estimates(const AllocationInput& in);

/// Best-effort plan when even relaxed capacity planning is infeasible.
AllocationDecision overload_fallback(const AllocationInput& in);

}  // namespace diffserve::control
