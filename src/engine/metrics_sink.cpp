#include "engine/metrics_sink.hpp"

#include <algorithm>

#include "linalg/gaussian.hpp"
#include "util/check.hpp"

namespace diffserve::engine {

std::vector<double> served_image_feature(const quality::Workload& workload,
                                         const Query& q, int tier) {
  switch (q.cache_hit) {
    case cache::HitLevel::kMiss:
      return workload.generated_feature(q.prompt_id, tier);
    case cache::HitLevel::kExact:
      return workload.generated_feature(q.cache_donor, tier);
    case cache::HitLevel::kApproxNear:
    case cache::HitLevel::kApproxFar:
      return workload.cached_feature(q.prompt_id, q.cache_donor, tier,
                                     q.cache_distance, q.cache_resume_depth);
  }
  return workload.generated_feature(q.prompt_id, tier);
}

MetricsSink::MetricsSink(const quality::Workload& workload,
                         const quality::FidScorer& scorer)
    : workload_(workload), scorer_(scorer) {}

void MetricsSink::reserve(std::size_t expected_terminals) {
  if (record_terminal_events_) records_.reserve(expected_terminals);
}

void MetricsSink::complete(const Query& q, int served_tier,
                           double completion_time) {
  DS_REQUIRE(served_tier > 0, "completion needs a diffusion tier");
  const bool late = completion_time > q.deadline;
  if (record_terminal_events_) {
    Record r;
    r.seq = q.seq;
    r.time = completion_time;
    r.latency = completion_time - q.arrival_time;
    r.violated = late;
    r.dropped = false;
    r.tier = served_tier;
    r.stage = q.stage;
    r.deferrals = q.deferrals;
    r.query_class = q.query_class;
    r.hit_level = q.cache_hit;
    r.feature = served_image_feature(workload_, q, served_tier);
    records_.push_back(std::move(r));
  }
  ++n_completed_;
  if (late) ++n_late_;
  const std::size_t cls = static_cast<std::size_t>(q.query_class);
  ++class_completed_[cls];
  if (late) ++class_late_[cls];
  class_latency_[cls].add(completion_time - q.arrival_time);
  ++hit_level_counts_[static_cast<std::size_t>(q.cache_hit)];
  if (q.cache_hit == cache::HitLevel::kExact)
    cache_latency_.add(completion_time - q.arrival_time);
  // Count by the stage the query *finished in* so the metric is
  // meaningful in both cascade mode (deferral) and direct mode (random
  // split): a query finishing at the lightest stage was served light
  // (the paper's §4.1 light-served share). An exact cache hit never
  // entered a stage pool and is not counted as light-served.
  if (q.stage == 0 && q.cache_hit != cache::HitLevel::kExact)
    ++n_light_served_;
  // Image provenance can lag the finish stage: a deferred query completed
  // best-effort at an unstaffed stage carries an earlier stage's image.
  const std::size_t produced =
      q.image_stage >= 0 ? static_cast<std::size_t>(q.image_stage) : q.stage;
  if (produced >= served_by_stage_.size())
    served_by_stage_.resize(produced + 1);
  ++served_by_stage_[produced];
  latency_.add(completion_time - q.arrival_time);
  latency_pct_.add(completion_time - q.arrival_time);
  recent_.record(completion_time, late);
}

void MetricsSink::drop(const Query& q, double drop_time) {
  if (record_terminal_events_) {
    Record r;
    r.seq = q.seq;
    r.time = drop_time;
    r.latency = -1.0;
    r.violated = true;
    r.dropped = true;
    r.tier = -1;
    r.stage = q.stage;
    r.deferrals = q.deferrals;
    r.query_class = q.query_class;
    r.hit_level = q.cache_hit;
    records_.push_back(std::move(r));
  }
  ++n_dropped_;
  ++class_dropped_[static_cast<std::size_t>(q.query_class)];
  recent_.record(drop_time, true);
}

double MetricsSink::class_violation_ratio(QueryClass c) const {
  const std::size_t n = class_total(c);
  if (n == 0) return 0.0;
  const std::size_t cls = static_cast<std::size_t>(c);
  return static_cast<double>(class_late_[cls] + class_dropped_[cls]) /
         static_cast<double>(n);
}

double MetricsSink::class_mean_latency(QueryClass c) const {
  return class_latency_[static_cast<std::size_t>(c)].mean();
}

std::size_t MetricsSink::served_by_stage(std::size_t s) const {
  return s < served_by_stage_.size() ? served_by_stage_[s] : 0;
}

std::vector<double> MetricsSink::stage_served_fractions(
    std::size_t stages) const {
  std::vector<double> out(stages, 0.0);
  if (n_completed_ == 0) return out;
  for (std::size_t s = 0; s < stages; ++s)
    out[s] = static_cast<double>(served_by_stage(s)) /
             static_cast<double>(n_completed_);
  return out;
}

double MetricsSink::recent_violation_ratio(double now) const {
  return recent_.ratio(now);
}

double MetricsSink::violation_ratio() const {
  if (total() == 0) return 0.0;
  return static_cast<double>(n_late_ + n_dropped_) /
         static_cast<double>(total());
}

double MetricsSink::mean_latency() const { return latency_.mean(); }

double MetricsSink::latency_percentile(double p) const {
  return latency_pct_.percentile(p);
}

double MetricsSink::light_served_fraction() const {
  if (n_completed_ == 0) return 0.0;
  return static_cast<double>(n_light_served_) /
         static_cast<double>(n_completed_);
}

std::size_t MetricsSink::hit_level_count(cache::HitLevel level) const {
  return hit_level_counts_[static_cast<std::size_t>(level)];
}

double MetricsSink::cache_served_fraction() const {
  if (n_completed_ == 0) return 0.0;
  const std::size_t hits =
      n_completed_ - hit_level_count(cache::HitLevel::kMiss);
  return static_cast<double>(hits) / static_cast<double>(n_completed_);
}

double MetricsSink::exact_hit_fraction() const {
  if (n_completed_ == 0) return 0.0;
  return static_cast<double>(hit_level_count(cache::HitLevel::kExact)) /
         static_cast<double>(n_completed_);
}

double MetricsSink::mean_cache_latency() const {
  return cache_latency_.mean();
}

double MetricsSink::overall_fid() const {
  DS_REQUIRE(record_terminal_events_,
             "overall_fid needs per-query records (fast mode is on)");
  linalg::GaussianAccumulator acc(scorer_.feature_dim());
  for (const auto& r : records_)
    if (!r.feature.empty()) acc.add(r.feature);
  DS_REQUIRE(acc.count() >= 2, "too few served images for FID");
  return scorer_.fid(acc.stats());
}

std::vector<MetricsSink::TimelinePoint> MetricsSink::timeline(
    double window_seconds, std::size_t min_fid_samples) const {
  DS_REQUIRE(window_seconds > 0.0, "window must be positive");
  DS_REQUIRE(record_terminal_events_,
             "timeline needs per-query records (fast mode is on)");
  std::vector<Record const*> sorted;
  sorted.reserve(records_.size());
  for (const auto& r : records_) sorted.push_back(&r);
  std::sort(sorted.begin(), sorted.end(),
            [](const Record* a, const Record* b) { return a->time < b->time; });

  std::vector<TimelinePoint> out;
  if (sorted.empty()) return out;

  const double end_time = sorted.back()->time;
  std::size_t i = 0;
  for (double w = 0.0; w <= end_time; w += window_seconds) {
    const double hi = w + window_seconds;
    linalg::GaussianAccumulator acc(scorer_.feature_dim());
    std::size_t violations = 0, n = 0;
    while (i < sorted.size() && sorted[i]->time < hi) {
      const Record& r = *sorted[i];
      ++n;
      if (r.violated) ++violations;
      if (!r.feature.empty()) acc.add(r.feature);
      ++i;
    }
    TimelinePoint pt;
    pt.time = w;
    pt.samples = n;
    pt.throughput = static_cast<double>(n) / window_seconds;
    pt.violation_ratio =
        n ? static_cast<double>(violations) / static_cast<double>(n) : 0.0;
    pt.fid = (acc.count() >= std::max<std::size_t>(min_fid_samples, 2))
                 ? scorer_.fid(acc.stats())
                 : -1.0;
    out.push_back(pt);
  }
  return out;
}

}  // namespace diffserve::engine
