// Figure 1b: CDFs of the per-query quality difference between the
// lightweight and heavyweight model — PickScore difference (top panels)
// and discriminator confidence difference (bottom panels) for the
// SD-Turbo/SDv1.5 and SDXS/SDv1.5 pairs. Expected shape: 20-40% of the
// mass lies at or below zero ("easy" queries where light >= heavy).
#include <algorithm>

#include "bench_common.hpp"
#include "core/environment.hpp"

using namespace diffserve;

namespace {

void run_pair(const char* label, const std::string& cascade,
              const std::string& csv_name) {
  core::EnvironmentConfig ec;
  ec.cascade = cascade;
  ec.workload_queries = 5000;
  core::CascadeEnvironment env(ec);
  const auto& w = env.workload();

  std::vector<double> pick_diff, conf_diff;
  std::size_t easy = 0;
  for (quality::QueryId q = 0; q < w.size(); ++q) {
    // Negative = light better (paper's x-axis convention is
    // heavy-minus-light for PickScore; we report light-minus-heavy and
    // count the "light at least as good" mass explicitly).
    pick_diff.push_back(w.pickscore(q, env.heavy_tier()) -
                        w.pickscore(q, env.light_tier()));
    conf_diff.push_back(
        env.disc().confidence(w.generated_feature(q, env.heavy_tier())) -
        env.disc().confidence(w.generated_feature(q, env.light_tier())));
    if (w.true_error(q, env.light_tier()) <= w.true_error(q, env.heavy_tier()))
      ++easy;
  }
  std::sort(pick_diff.begin(), pick_diff.end());
  std::sort(conf_diff.begin(), conf_diff.end());

  bench::banner("Figure 1b", label);
  std::printf("true easy-query fraction (light >= heavy): %.3f\n",
              static_cast<double>(easy) / static_cast<double>(w.size()));
  auto mass_below_zero = [](const std::vector<double>& v) {
    const auto it = std::upper_bound(v.begin(), v.end(), 0.0);
    return static_cast<double>(it - v.begin()) /
           static_cast<double>(v.size());
  };
  std::printf("P(pickscore diff <= 0)  = %.3f\n", mass_below_zero(pick_diff));
  std::printf("P(confidence diff <= 0) = %.3f\n", mass_below_zero(conf_diff));

  util::CsvWriter csv(bench::csv_path(csv_name),
                      {"cdf", "pickscore_diff", "confidence_diff"});
  std::printf("%-6s %-16s %-16s\n", "cdf", "pick_diff", "conf_diff");
  for (int pct = 0; pct <= 100; pct += 5) {
    const auto idx = std::min<std::size_t>(
        pick_diff.size() - 1, pick_diff.size() * static_cast<std::size_t>(pct) / 100);
    csv.add_row(std::vector<double>{pct / 100.0, pick_diff[idx],
                                    conf_diff[idx]});
    if (pct % 20 == 0)
      std::printf("%-6.2f %-16.3f %-16.3f\n", pct / 100.0, pick_diff[idx],
                  conf_diff[idx]);
  }
  std::printf("[csv] %s\n", bench::csv_path(csv_name).c_str());
}

}  // namespace

int main() {
  run_pair("H: SDv1.5, L: SD-Turbo", models::catalog::kCascade1,
           "fig01b_sdturbo");
  run_pair("H: SDv1.5, L: SDXS", models::catalog::kCascade2, "fig01b_sdxs");
  return 0;
}
