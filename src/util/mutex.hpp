// Annotated mutex shim — std::mutex under clang Thread Safety Analysis.
//
// std::mutex carries no thread-safety attributes, so the analysis cannot
// follow it. These thin wrappers are the lock vocabulary for every
// lock-owning class in the library:
//
//   util::Mutex      — a std::mutex declared as a DS_CAPABILITY, so
//                      members can be DS_GUARDED_BY it and functions can
//                      DS_REQUIRES / DS_EXCLUDES it.
//   util::CopyableMutex — a Mutex whose copies/moves start unlocked, for
//                      otherwise-copyable classes that own a lock (the
//                      discriminator's noise-RNG guard).
//   util::MutexLock  — scoped lock (the only way code here should take a
//                      Mutex); the analysis sees the capability held for
//                      exactly the block scope.
//   util::CondVar    — condition variable that waits on a util::Mutex the
//                      caller already holds (DS_REQUIRES enforced), used
//                      by the threaded backend's parking protocol.
//
// Zero overhead: everything inlines to the std:: equivalent; the
// attributes vanish off clang (see thread_annotations.hpp). The engine
// guard seam (ExecutionBackend::guard() returning std::unique_lock) stays
// on std::mutex via Mutex::native() — the analysis cannot track a lock
// handed across a virtual call anyway, and TSan covers that path.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace diffserve::util {

class DS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DS_ACQUIRE() { mu_.lock(); }
  void unlock() DS_RELEASE() { mu_.unlock(); }
  bool try_lock() DS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped std::mutex, for seams that must hand a std::unique_lock
  /// across an interface (ExecutionBackend::guard()) or adopt the lock
  /// into a std:: primitive (CondVar below). Accesses through the native
  /// handle are invisible to the analysis — keep them to those seams.
  std::mutex& native() { return mu_; }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// A Mutex for copyable lock-owning classes: copies and copy-assignments
/// produce a fresh, unlocked mutex (the lock protects per-instance state,
/// so sharing it across copies would be wrong anyway).
class DS_CAPABILITY("mutex") CopyableMutex {
 public:
  CopyableMutex() = default;
  CopyableMutex(const CopyableMutex&) {}
  CopyableMutex& operator=(const CopyableMutex&) { return *this; }

  void lock() DS_ACQUIRE() { mu_.lock(); }
  void unlock() DS_RELEASE() { mu_.unlock(); }
  bool try_lock() DS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII lock over Mutex / CopyableMutex. Deliberately minimal: no
/// deferred/adopted modes, no early unlock — a MutexLock *is* the
/// critical section, which is exactly the shape the analysis reasons
/// about best.
class DS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DS_ACQUIRE(mu) : mu_(&mu.mu_) { mu_->lock(); }
  explicit MutexLock(CopyableMutex& mu) DS_ACQUIRE(mu) : mu_(&mu.mu_) {
    mu_->lock();
  }
  ~MutexLock() DS_RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  std::mutex* mu_;
};

/// Condition variable over util::Mutex. Waits require the mutex held (the
/// analysis enforces it); internally the held lock is adopted into a
/// std::unique_lock for the wait and released back to the caller's
/// MutexLock afterwards, so the capability bookkeeping stays consistent.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  void wait(Mutex& mu) DS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& dur)
      DS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    const std::cv_status st = cv_.wait_for(lk, dur);
    lk.release();
    return st;
  }

  /// Predicate forms: `pred` runs with the mutex held, like std::. The
  /// analysis does not propagate lock state into lambda bodies, so keep
  /// predicates over lock-free state (atomics, rings) — guarded state
  /// belongs in the enclosing critical section, not the predicate.
  template <typename Rep, typename Period, typename Pred>
  bool wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& dur,
                Pred pred) DS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    const bool r = cv_.wait_for(lk, dur, std::move(pred));
    lk.release();
    return r;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace diffserve::util
