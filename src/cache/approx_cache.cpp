#include "cache/approx_cache.hpp"

#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace diffserve::cache {

const char* to_string(HitLevel level) {
  switch (level) {
    case HitLevel::kMiss: return "miss";
    case HitLevel::kExact: return "exact";
    case HitLevel::kApproxNear: return "approx-near";
    case HitLevel::kApproxFar: return "approx-far";
  }
  return "?";
}

double CacheStats::hit_ratio() const {
  if (lookups == 0) return 0.0;
  return static_cast<double>(hits()) / static_cast<double>(lookups);
}

double CacheStats::exact_hit_ratio() const {
  if (lookups == 0) return 0.0;
  return static_cast<double>(exact_hits) / static_cast<double>(lookups);
}

double CacheStats::mean_step_fraction() const {
  const std::uint64_t n = lookups - exact_hits;
  if (n == 0) return 1.0;
  return step_fraction_sum / static_cast<double>(n);
}

ApproxCache::ApproxCache(CacheConfig cfg) : cfg_(cfg) {
  DS_REQUIRE(cfg_.capacity >= 1, "cache capacity must be >= 1");
  DS_REQUIRE(cfg_.exact_distance >= 0.0, "negative exact threshold");
  DS_REQUIRE(cfg_.exact_distance <= cfg_.near_distance &&
                 cfg_.near_distance <= cfg_.far_distance,
             "hit thresholds must be ordered exact <= near <= far");
  DS_REQUIRE(cfg_.near_step_fraction > 0.0 && cfg_.near_step_fraction <= 1.0,
             "near step fraction must be in (0, 1]");
  DS_REQUIRE(cfg_.far_step_fraction > 0.0 && cfg_.far_step_fraction <= 1.0,
             "far step fraction must be in (0, 1]");
  DS_REQUIRE(cfg_.hit_latency >= 0.0, "negative hit latency");
  DS_REQUIRE(cfg_.popularity_weight >= 0.0, "negative popularity weight");
  entries_.reserve(cfg_.capacity);
}

double ApproxCache::distance(const std::vector<double>& a,
                             const std::vector<double>& b) const {
  DS_REQUIRE(a.size() == b.size(), "key dimensions differ");
  if (cfg_.metric == SimilarityMetric::kL2) {
    double sq = 0.0;
    for (std::size_t d = 0; d < a.size(); ++d) {
      const double diff = a[d] - b[d];
      sq += diff * diff;
    }
    return std::sqrt(sq);
  }
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t d = 0; d < a.size(); ++d) {
    dot += a[d] * b[d];
    na += a[d] * a[d];
    nb += b[d] * b[d];
  }
  const double denom = std::sqrt(na) * std::sqrt(nb);
  if (denom <= 1e-12) return 1.0;  // a zero vector is similar to nothing
  return 1.0 - dot / denom;
}

double ApproxCache::eviction_score(const Entry& e) const {
  return e.last_used +
         cfg_.popularity_weight * std::log1p(static_cast<double>(e.hits));
}

LookupResult ApproxCache::lookup(const std::vector<double>& key, double now) {
  ++stats_.lookups;
  Entry* best = nullptr;
  double best_d = std::numeric_limits<double>::infinity();
  for (auto& e : entries_) {
    const double d = distance(e.key, key);
    // Strict < with an in-order scan: ties resolve to the earliest
    // insertion, independent of eviction history.
    if (d < best_d) {
      best_d = d;
      best = &e;
    }
  }

  LookupResult r;
  if (best != nullptr && best_d <= cfg_.far_distance) {
    if (best_d <= cfg_.exact_distance) {
      r.level = HitLevel::kExact;
      r.step_fraction = 0.0;
      ++stats_.exact_hits;
    } else if (best_d <= cfg_.near_distance) {
      r.level = HitLevel::kApproxNear;
      r.step_fraction = cfg_.near_step_fraction;
      ++stats_.near_hits;
    } else {
      r.level = HitLevel::kApproxFar;
      r.step_fraction = cfg_.far_step_fraction;
      ++stats_.far_hits;
    }
    r.donor_prompt = best->prompt;
    r.donor_tier = best->tier;
    r.donor_stage = best->stage;
    r.distance = best_d;
    ++best->hits;
    best->last_used = now;
  }
  if (r.level != HitLevel::kExact)
    stats_.step_fraction_sum += r.step_fraction;
  return r;
}

void ApproxCache::insert(quality::QueryId prompt, int tier, int stage,
                         const std::vector<double>& key, double now) {
  DS_REQUIRE(tier > 0, "cached images need a diffusion tier");
  // Refresh an already-cached prompt in place, keeping the higher-quality
  // image (a deferral may re-serve the same prompt at a heavier tier).
  for (auto& e : entries_) {
    if (e.prompt == prompt) {
      if (tier >= e.tier) {
        e.tier = tier;
        e.stage = stage;
      }
      e.last_used = now;
      return;
    }
  }
  if (entries_.size() >= cfg_.capacity) {
    std::size_t victim = 0;
    double victim_score = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const double s = eviction_score(entries_[i]);
      if (s < victim_score ||
          (s == victim_score &&
           entries_[i].order < entries_[victim].order)) {
        victim_score = s;
        victim = i;
      }
    }
    entries_[victim] = entries_.back();
    entries_.pop_back();
    ++stats_.evictions;
  }
  Entry e;
  e.prompt = prompt;
  e.tier = tier;
  e.stage = stage;
  e.key = key;
  e.last_used = now;
  e.order = next_order_++;
  entries_.push_back(std::move(e));
  ++stats_.insertions;
}

}  // namespace diffserve::cache
