// Load balancer / cascade router.
//
// "Upon receiving queries from clients, the Load Balancer initially routes
// each query to a worker running a lightweight diffusion model. If the
// generated image's quality estimated by the discriminator meets the
// quality requirement, specified as a confidence threshold, it is returned
// ... Otherwise, the query is forwarded to a worker hosting the heavyweight
// diffusion model" (§3.1).
//
// Two routing modes cover the paper's approaches:
//   * kCascade — DiffServe and DiffServe-Static: light first, deferral on
//     low confidence.
//   * kDirect  — Clipper-Light/Heavy and Proteus: each query goes to
//     exactly one model; Proteus picks heavy with probability p_heavy
//     ("randomly assigns incoming queries to model variants").
#pragma once

#include <functional>
#include <vector>

#include "discriminator/discriminator.hpp"
#include "quality/workload.hpp"
#include "serving/query.hpp"
#include "serving/sink.hpp"
#include "serving/worker.hpp"
#include "sim/simulation.hpp"
#include "stats/window.hpp"
#include "util/rng.hpp"

namespace diffserve::serving {

enum class RoutingMode { kCascade, kDirect };

struct RouterConfig {
  RoutingMode mode = RoutingMode::kCascade;
  double threshold = 0.5;  ///< cascade confidence threshold t
  double p_heavy = 0.0;    ///< direct-mode probability of the heavy model
  /// Time reserved at the light stage for a potential heavy pass
  /// (stage_deadline_light = deadline - heavy_reserve).
  double heavy_reserve = 0.0;
};

class LoadBalancer {
 public:
  LoadBalancer(sim::Simulation& sim, const quality::Workload& workload,
               const discriminator::Discriminator* disc, int light_tier,
               int heavy_tier, MetricsSink& sink, std::uint64_t seed);

  /// Assign worker pools. Workers' callbacks are (re)bound to this router.
  void set_pools(std::vector<SimWorker*> light, std::vector<SimWorker*> heavy);
  void set_config(const RouterConfig& cfg);
  const RouterConfig& config() const { return cfg_; }

  /// Client entry point.
  void submit(Query q);
  /// Re-inject queries evicted by a worker reconfiguration.
  void resubmit(std::vector<Query>&& queries);

  /// Observer invoked with every confidence score computed on the data
  /// path (feeds the controller's online deferral profile).
  void set_confidence_observer(std::function<void(double)> observer);

  // --- runtime statistics for the controller -----------------------------
  /// Arrival rate into the system over the stats window (QPS).
  double demand_rate() const;
  struct PoolStats {
    double total_queue_length = 0.0;
    double arrival_rate = 0.0;  ///< summed over the pool's workers
    int workers = 0;
  };
  PoolStats light_stats() const;
  PoolStats heavy_stats() const;
  std::uint64_t submitted() const { return submitted_; }

 private:
  void route_light(Query q);
  void route_heavy(Query q);
  SimWorker* shortest_queue(const std::vector<SimWorker*>& pool) const;
  void on_light_batch(std::vector<Query>&& batch);
  void on_heavy_batch(std::vector<Query>&& batch);
  void bind_callbacks();

  sim::Simulation& sim_;
  const quality::Workload& workload_;
  const discriminator::Discriminator* disc_;  ///< null in pure-direct setups
  int light_tier_;
  int heavy_tier_;
  MetricsSink& sink_;
  util::Rng rng_;

  RouterConfig cfg_;
  std::vector<SimWorker*> light_pool_;
  std::vector<SimWorker*> heavy_pool_;
  std::function<void(double)> confidence_observer_;

  stats::SlidingWindowCounter demand_{12.0};
  std::uint64_t submitted_ = 0;
};

}  // namespace diffserve::serving
