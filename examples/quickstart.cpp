// Quickstart: stand up DiffServe on the paper's Cascade 1 (SD-Turbo ->
// SDv1.5), replay a bursty demand trace through the discrete-event
// simulator, and print the serving metrics plus a few controller
// decisions.
//
//   $ ./quickstart
//
// Everything is seeded: you will see the same numbers on every run.
#include <cstdio>

#include "core/environment.hpp"
#include "core/experiment.hpp"
#include "util/log.hpp"

using namespace diffserve;

int main() {
  util::set_log_level(util::LogLevel::kInfo);

  // 1. Build the cascade environment: evaluation workload, trained
  //    discriminator, offline deferral profile f(t). This is the
  //    expensive, shareable part — reuse it across experiments.
  core::EnvironmentConfig env_cfg;
  env_cfg.cascade = models::catalog::kCascade1;
  env_cfg.workload_queries = 2000;
  core::CascadeEnvironment env(env_cfg);

  std::printf("cascade:        %s\n", env.cascade().name.c_str());
  std::printf("light model:    %s (%.2f s/image)\n",
              env.cascade().light_model.c_str(),
              env.repository()
                  .model(env.cascade().light_model)
                  .latency.execution_latency(1));
  std::printf("heavy model:    %s (%.2f s/image)\n",
              env.cascade().heavy_model.c_str(),
              env.repository()
                  .model(env.cascade().heavy_model)
                  .latency.execution_latency(1));
  std::printf("discriminator:  %s (%zu parameters, %.0f ms/image)\n",
              env.disc().name().c_str(), env.disc().parameter_count(),
              1000.0 * env.disc().inference_latency());
  std::printf("SLO:            %.1f s\n\n", env.default_slo());

  // 2. Run DiffServe against an Azure-Functions-like demand trace.
  core::RunConfig run;
  run.approach = core::Approach::kDiffServe;
  run.total_workers = 16;
  run.trace = trace::RateTrace::azure_like(4.0, 24.0, 240.0, /*seed=*/3);
  const auto result = run_experiment(env, run);

  std::printf("--- results (%s) ---\n", result.approach.c_str());
  std::printf("queries submitted:   %zu\n", result.submitted);
  std::printf("completed / dropped: %zu / %zu\n", result.completed,
              result.dropped);
  std::printf("response quality:    FID %.2f\n", result.overall_fid);
  std::printf("SLO violations:      %.1f%%\n",
              100.0 * result.violation_ratio);
  std::printf("mean / p99 latency:  %.2f s / %.2f s\n", result.mean_latency,
              result.p99_latency);
  std::printf("served by light:     %.1f%%\n",
              100.0 * result.light_served_fraction);
  std::printf("MILP solve time:     %.2f ms/decision\n\n",
              result.mean_solve_ms);

  std::printf("--- controller decisions (every 25 s) ---\n");
  std::printf("%-8s %-10s %-6s %-6s %-6s %-6s %-10s\n", "time", "demand",
              "x1", "x2", "b1", "b2", "threshold");
  for (std::size_t i = 0; i < result.control_history.size(); i += 5) {
    const auto& h = result.control_history[i];
    std::printf("%-8.0f %-10.1f %-6d %-6d %-6d %-6d %-10.3f\n", h.time,
                h.demand_estimate, h.decision.light_workers(),
                h.decision.heavy_workers(), h.decision.light_batch(),
                h.decision.heavy_batch(), h.decision.threshold());
  }

  // 3. Same trace with the approximate prompt-reuse cache in front of the
  //    cascade. Production prompt traffic is Zipf-skewed, so switch the
  //    prompt stream off round-robin first — hit ratios are an emergent
  //    property of the repetition in the trace. The CacheConfig knobs:
  //      capacity            bounded entry count (popularity-aware LRU)
  //      exact/near/far      distance tiers over prompt style vectors
  //        _distance           (exact serves the cached image as-is)
  //      near/far_step_      fraction of diffusion steps an approx hit
  //        fraction            still runs (seeded by the donor's result)
  //      hit_latency         exact-hit serving latency (lookup + decode)
  //      popularity_weight   seconds of recency one e-fold of hits buys
  //    The controller notices the absorbed traffic and provisions for the
  //    effective demand lambda * (1 - h_exact).
  core::RunConfig cached = run;
  cached.system.prompt_mix.kind = trace::PromptMixConfig::Kind::kZipf;
  cached.system.prompt_mix.zipf_exponent = 1.1;
  cached.system.prompt_mix.locality = 0.3;
  cached.system.cache.enabled = true;
  cached.system.cache.capacity = 256;
  const auto reuse = run_experiment(env, cached);

  std::printf("\n--- with the prompt-reuse cache (Zipf prompts) ---\n");
  std::printf("cache hit ratio:     %.1f%% (%.1f%% exact)\n",
              100.0 * reuse.cache_hit_ratio,
              100.0 * reuse.cache_exact_hit_ratio);
  std::printf("response quality:    FID %.2f\n", reuse.overall_fid);
  std::printf("SLO violations:      %.1f%%\n",
              100.0 * reuse.violation_ratio);
  std::printf("mean latency:        %.2f s\n", reuse.mean_latency);
  return 0;
}
