// Figure 8: ablation of the resource allocation algorithm on the dynamic
// trace — DiffServe vs. fixed ("static") threshold, AIMD batching, and the
// no-queuing-model heuristic. Expected shape: the static threshold loses
// quality off-peak, AIMD suffers markedly higher violations, and dropping
// the queuing model under-estimates delays.
#include "bench_common.hpp"
#include "core/environment.hpp"
#include "core/experiment.hpp"

using namespace diffserve;

int main() {
  core::EnvironmentConfig ec;
  ec.workload_queries = 4000;
  core::CascadeEnvironment env(ec);
  const auto tr = trace::RateTrace::azure_like(4.0, 32.0, 360.0, 3);

  util::CsvWriter csv(bench::csv_path("fig08_ablation"),
                      {"approach", "time", "demand_qps", "fid",
                       "violation_ratio", "threshold"});

  bench::banner("Figure 8", "resource allocation ablation, Cascade 1");
  std::printf("%-20s %-8s %-12s %-10s\n", "variant", "FID", "violations",
              "light%");
  for (const auto approach :
       {core::Approach::kDiffServe, core::Approach::kAblationStaticThreshold,
        core::Approach::kAblationNoQueueModel,
        core::Approach::kAblationAimdBatching}) {
    core::RunConfig rc;
    rc.approach = approach;
    rc.total_workers = 16;
    rc.trace = tr;
    const auto r = run_experiment(env, rc);
    std::printf("%-20s %-8.2f %-12.3f %-10.2f\n", r.approach.c_str(),
                r.overall_fid, r.violation_ratio,
                100.0 * r.light_served_fraction);
    for (const auto& pt : r.timeline) {
      double threshold = 0.0;
      for (const auto& h : r.control_history)
        if (h.time <= pt.time) threshold = h.decision.threshold;
      csv.add_row(std::vector<std::string>{
          r.approach, util::CsvWriter::format(pt.time),
          util::CsvWriter::format(tr.qps_at(pt.time)),
          util::CsvWriter::format(pt.fid),
          util::CsvWriter::format(pt.violation_ratio),
          util::CsvWriter::format(threshold)});
    }
  }
  std::printf("[csv] %s\n", bench::csv_path("fig08_ablation").c_str());
  return 0;
}
