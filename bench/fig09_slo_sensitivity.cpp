// Figure 9: sensitivity of DiffServe to the SLO setting, Cascade 1.
// Expected shape: low violations and stable quality over a broad SLO
// range, with degradation only at very tight SLOs (the heavy model's
// execution alone approaches the budget).
#include "bench_common.hpp"

using namespace diffserve;

int main() {
  const auto env = bench::make_env(3000);
  const auto tr = trace::RateTrace::azure_like(4.0, 24.0, 240.0, 3);

  bench::banner("Figure 9", "SLO sensitivity, Cascade 1");
  bench::ReportTable table(
      "fig09_slo",
      {"slo_seconds", "avg_fid", "avg_violation_ratio", "light_fraction"});
  for (const double slo : {2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0}) {
    core::RunConfig rc;
    rc.approach = core::Approach::kDiffServe;
    rc.total_workers = 16;
    rc.slo_seconds = slo;
    rc.trace = tr;
    const auto r = run_experiment(env, rc);
    table.row(std::vector<double>{slo, r.overall_fid, r.violation_ratio,
                                  r.light_served_fraction});
  }
  return 0;
}
