// Capacity planning for an interactive content-creation service
// (the Adobe-Firefly/Midjourney scenario from the paper's introduction):
// how many GPUs does each serving strategy need to survive the daily peak
// within the SLO, and what quality does the customer get off-peak?
//
// For each cluster size we replay the same diurnal trace and report the
// smallest cluster at which each approach keeps violations under 5%.
#include <cstdio>

#include "core/environment.hpp"
#include "core/experiment.hpp"

using namespace diffserve;

int main() {
  core::EnvironmentConfig env_cfg;
  env_cfg.workload_queries = 2000;
  core::CascadeEnvironment env(env_cfg);

  const auto tr = trace::RateTrace::azure_like(3.0, 20.0, 240.0, 17);
  std::printf("diurnal demand: %.0f -> %.0f QPS over %.0f s\n\n",
              tr.min_qps(), tr.max_qps(), tr.duration());

  const core::Approach approaches[] = {core::Approach::kClipperHeavy,
                                       core::Approach::kProteus,
                                       core::Approach::kDiffServe};
  std::printf("%-16s", "cluster size");
  for (const auto a : approaches) std::printf(" %-22s", core::to_string(a));
  std::printf("\n");

  struct Verdict {
    int min_workers = -1;
    double fid = 0.0;
  };
  Verdict verdicts[3];

  for (const int workers : {8, 12, 16, 20, 24, 28, 32}) {
    std::printf("%-16d", workers);
    for (std::size_t i = 0; i < 3; ++i) {
      core::RunConfig rc;
      rc.approach = approaches[i];
      rc.total_workers = workers;
      rc.trace = tr;
      const auto r = run_experiment(env, rc);
      std::printf(" viol %5.1f%% FID %-6.1f", 100.0 * r.violation_ratio,
                  r.overall_fid);
      if (verdicts[i].min_workers < 0 && r.violation_ratio < 0.05) {
        verdicts[i].min_workers = workers;
        verdicts[i].fid = r.overall_fid;
      }
    }
    std::printf("\n");
  }

  std::printf("\nGPUs needed for <5%% violations (and quality delivered):\n");
  for (std::size_t i = 0; i < 3; ++i) {
    if (verdicts[i].min_workers > 0)
      std::printf("  %-18s %2d GPUs, FID %.1f\n",
                  core::to_string(approaches[i]), verdicts[i].min_workers,
                  verdicts[i].fid);
    else
      std::printf("  %-18s not achievable in the swept range\n",
                  core::to_string(approaches[i]));
  }
  std::printf(
      "\nquery-aware scaling serves the same demand with fewer GPUs and "
      "better images: easy prompts never pay the heavyweight price.\n");
  return 0;
}
