// Tests for the discrete-event engine: ordering, FIFO tie-breaking,
// cancellation, periodic series, and clock semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/simulation.hpp"

namespace diffserve::sim {
namespace {

TEST(Simulation, ExecutesInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulation, FifoWithinSameTimestamp) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, ClockAdvancesToEventTime) {
  Simulation sim;
  double seen = -1.0;
  sim.schedule_at(4.5, [&] { seen = sim.now(); });
  sim.run_all();
  EXPECT_EQ(seen, 4.5);
}

TEST(Simulation, ScheduleInUsesDelay) {
  Simulation sim;
  double seen = -1.0;
  sim.schedule_at(2.0, [&] {
    sim.schedule_in(1.5, [&] { seen = sim.now(); });
  });
  sim.run_all();
  EXPECT_EQ(seen, 3.5);
}

TEST(Simulation, RunUntilStopsAndSetsClock) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(5.0, [&] { ++fired; });
  sim.run_until(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 3.0);
  sim.run_until(10.0);
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, RunUntilExecutesEventExactlyAtBoundary) {
  Simulation sim;
  bool fired = false;
  sim.schedule_at(3.0, [&] { fired = true; });
  sim.run_until(3.0);
  EXPECT_TRUE(fired);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  const auto h = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(h));
  sim.run_all();
  EXPECT_FALSE(fired);
}

TEST(Simulation, DoubleCancelReturnsFalse) {
  Simulation sim;
  const auto h = sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(h));
}

TEST(Simulation, CancelInvalidHandleIsNoop) {
  Simulation sim;
  EXPECT_FALSE(sim.cancel(EventHandle{}));
}

TEST(Simulation, PeriodicFiresAtInterval) {
  Simulation sim;
  std::vector<double> times;
  sim.every(2.0, [&] { times.push_back(sim.now()); });
  sim.run_until(7.0);
  EXPECT_EQ(times, (std::vector<double>{2.0, 4.0, 6.0}));
}

TEST(Simulation, PeriodicCancelStopsSeries) {
  Simulation sim;
  int count = 0;
  const auto h = sim.every(1.0, [&] { ++count; });
  sim.run_until(3.5);
  EXPECT_EQ(count, 3);
  sim.cancel(h);
  sim.run_until(10.0);
  EXPECT_EQ(count, 3);
}

TEST(Simulation, PeriodicCanCancelItself) {
  Simulation sim;
  int count = 0;
  EventHandle h{};
  h = sim.every(1.0, [&] {
    ++count;
    if (count == 2) sim.cancel(h);
  });
  sim.run_until(10.0);
  EXPECT_EQ(count, 2);
}

TEST(Simulation, StepExecutesOne) {
  Simulation sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(count, 2);
}

TEST(Simulation, PastSchedulingThrows) {
  Simulation sim;
  sim.schedule_at(5.0, [] {});
  sim.run_until(5.0);
  EXPECT_THROW(sim.schedule_at(4.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulation, EventsCanScheduleEvents) {
  Simulation sim;
  std::vector<double> times;
  std::function<void()> chain = [&] {
    times.push_back(sim.now());
    if (times.size() < 4) sim.schedule_in(1.0, chain);
  };
  sim.schedule_at(0.5, chain);
  sim.run_all();
  EXPECT_EQ(times, (std::vector<double>{0.5, 1.5, 2.5, 3.5}));
}

TEST(Simulation, ExecutedCounterCounts) {
  Simulation sim;
  for (int i = 0; i < 5; ++i) sim.schedule_at(i + 1.0, [] {});
  sim.run_all();
  EXPECT_EQ(sim.executed(), 5u);
}

TEST(Simulation, RunAllGuardsAgainstRunaway) {
  Simulation sim;
  // A self-perpetuating chain should trip the max_events guard.
  std::function<void()> forever = [&] { sim.schedule_in(0.1, forever); };
  sim.schedule_at(0.0, forever);
  EXPECT_THROW(sim.run_all(1000), std::logic_error);
}

TEST(Simulation, PendingIsExactWithTombstones) {
  Simulation sim;
  std::vector<EventHandle> ids;
  for (int i = 0; i < 10; ++i)
    ids.push_back(sim.schedule_at(i + 1.0, [] {}));
  EXPECT_EQ(sim.pending(), 10u);
  // Cancel a few: tombstones stay in the heap but pending() must not
  // count them (the pre-slot-pool implementation overcounted here).
  EXPECT_TRUE(sim.cancel(ids[2]));
  EXPECT_TRUE(sim.cancel(ids[5]));
  EXPECT_TRUE(sim.cancel(ids[7]));
  EXPECT_EQ(sim.pending(), 7u);
  EXPECT_EQ(sim.stale_entries(), sim.heap_size() - sim.pending());
  sim.run_all();
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.executed(), 7u);
}

TEST(Simulation, HeapStaysBoundedUnderMassCancellation) {
  // The drop-timer pattern at scale: every query arms a deadline timer
  // and nearly all of them are cancelled on completion. The heap must
  // compact tombstones instead of accumulating them until fire time.
  Simulation sim;
  constexpr int kRounds = 200;
  constexpr int kPerRound = 100;
  std::size_t max_heap = 0;
  for (int r = 0; r < kRounds; ++r) {
    std::vector<EventHandle> ids;
    ids.reserve(kPerRound);
    const double base = sim.now() + 1.0;
    for (int i = 0; i < kPerRound; ++i)
      ids.push_back(sim.schedule_at(base + 1000.0 + i, [] {}));
    for (const auto id : ids) EXPECT_TRUE(sim.cancel(id));
    sim.schedule_at(base, [] {});
    sim.run_until(base);
    max_heap = std::max(max_heap, sim.heap_size());
  }
  // 20k timers were cancelled; without compaction the heap would hold
  // all of them. Compaction keeps it within a small constant factor of
  // the live count (stale_ * 2 <= heap_size triggers, floor 64).
  EXPECT_GT(sim.heap_compactions(), 0u);
  EXPECT_LE(max_heap, static_cast<std::size_t>(2 * kPerRound + 64));
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulation, SlotsAreRecycledAcrossGenerations) {
  // Schedule/cancel churn must reuse pooled slots, and a recycled slot's
  // new generation must not let a stale handle cancel the new event.
  Simulation sim;
  auto first = sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(sim.cancel(first));
  bool ran = false;
  sim.schedule_at(1.0, [&] { ran = true; });
  // The old handle refers to a dead generation even if the slot was
  // recycled for the new event.
  EXPECT_FALSE(sim.cancel(first));
  sim.run_all();
  EXPECT_TRUE(ran);
}

}  // namespace
}  // namespace diffserve::sim
