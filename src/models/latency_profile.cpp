#include "models/latency_profile.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace diffserve::models {

const std::vector<int>& standard_batch_sizes() {
  static const std::vector<int> sizes = {1, 2, 4, 8, 16, 32};
  return sizes;
}

LatencyProfile::LatencyProfile(std::map<int, double> measured)
    : latency_(std::move(measured)) {
  DS_REQUIRE(!latency_.empty(), "empty latency profile");
  double prev = 0.0;
  for (const auto& [b, e] : latency_) {
    DS_REQUIRE(b >= 1, "batch size must be >= 1");
    DS_REQUIRE(e > 0.0, "execution latency must be positive");
    DS_REQUIRE(e >= prev, "batch latency must be non-decreasing in b");
    prev = e;
  }
}

LatencyProfile LatencyProfile::affine(double base_latency_seconds,
                                      double overhead_fraction) {
  DS_REQUIRE(base_latency_seconds > 0.0, "base latency must be positive");
  DS_REQUIRE(overhead_fraction >= 0.0 && overhead_fraction < 1.0,
             "overhead fraction must be in [0,1)");
  std::map<int, double> m;
  for (int b : standard_batch_sizes())
    m[b] = base_latency_seconds *
           (overhead_fraction + (1.0 - overhead_fraction) * b);
  return LatencyProfile(std::move(m));
}

double LatencyProfile::execution_latency(int batch_size) const {
  const auto it = latency_.find(batch_size);
  DS_REQUIRE(it != latency_.end(), "batch size not profiled");
  return it->second;
}

double LatencyProfile::throughput(int batch_size) const {
  return static_cast<double>(batch_size) / execution_latency(batch_size);
}

std::vector<int> LatencyProfile::batch_sizes() const {
  std::vector<int> out;
  out.reserve(latency_.size());
  for (const auto& [b, _] : latency_) out.push_back(b);
  return out;
}

int LatencyProfile::max_batch_size() const {
  DS_REQUIRE(!latency_.empty(), "empty latency profile");
  return latency_.rbegin()->first;
}

bool LatencyProfile::supports(int batch_size) const {
  return latency_.count(batch_size) > 0;
}

double LatencyProfile::peak_throughput() const {
  double best = 0.0;
  for (const auto& [b, _] : latency_)
    best = std::max(best, throughput(b));
  return best;
}

int LatencyProfile::min_batch_for_throughput(double qps) const {
  for (const auto& [b, _] : latency_)
    if (throughput(b) >= qps) return b;
  return -1;
}

}  // namespace diffserve::models
