// Figure 4: FID vs. SLO-violation-ratio trade-off on static (constant
// rate) traces at low / medium / high load, Cascade 1 on 16 workers.
// Dynamic approaches (Proteus, DiffServe) are swept over the
// over-provisioning factor to trace their curves; Clipper-Light/Heavy are
// single points. Expected shape: DiffServe's curve sits lower-left
// (Pareto-optimal) at every load.
#include "bench_common.hpp"

using namespace diffserve;

int main() {
  const auto env = bench::make_env(3000);

  const double loads[] = {8.0, 16.0, 24.0};  // low / medium / high QPS
  const char* load_names[] = {"low", "medium", "high"};
  const double over_provision_sweep[] = {0.85, 0.95, 1.05, 1.2, 1.4};

  bench::ReportTable table(
      "fig04_static",
      {"load", "approach", "over_provision", "violation_ratio", "fid"},
      {8, 20, 16, 16, 8});

  for (int li = 0; li < 3; ++li) {
    bench::banner("Figure 4",
                  (std::string(load_names[li]) + " load, " +
                   std::to_string(loads[li]) + " QPS")
                      .c_str());
    core::RunConfig rc;
    rc.total_workers = 16;
    rc.trace = trace::RateTrace::constant(loads[li], 180.0);

    for (const auto approach :
         {core::Approach::kClipperLight, core::Approach::kClipperHeavy}) {
      rc.approach = approach;
      const auto r = run_experiment(env, rc);
      table.row(std::vector<std::string>{
          load_names[li], r.approach, "-",
          bench::ReportTable::fmt(r.violation_ratio),
          bench::ReportTable::fmt(r.overall_fid)});
    }
    for (const auto approach :
         {core::Approach::kProteus, core::Approach::kDiffServe}) {
      for (const double lambda : over_provision_sweep) {
        rc.approach = approach;
        rc.over_provision = lambda;
        const auto r = run_experiment(env, rc);
        table.row(std::vector<std::string>{
            load_names[li], r.approach, bench::ReportTable::fmt(lambda),
            bench::ReportTable::fmt(r.violation_ratio),
            bench::ReportTable::fmt(r.overall_fid)});
      }
      rc.over_provision = 1.05;
    }
  }
  return 0;
}
