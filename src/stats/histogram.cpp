#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace diffserve::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  DS_REQUIRE(hi > lo, "histogram range inverted");
  DS_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(t * static_cast<double>(bins()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(bins()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
}

std::size_t Histogram::count(std::size_t bin) const {
  DS_REQUIRE(bin < counts_.size(), "bin index out of range");
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  DS_REQUIRE(bin < counts_.size(), "bin index out of range");
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(bins());
}

double Histogram::bin_hi(std::size_t bin) const {
  return bin_lo(bin) + (hi_ - lo_) / static_cast<double>(bins());
}

double Histogram::bin_center(std::size_t bin) const {
  return 0.5 * (bin_lo(bin) + bin_hi(bin));
}

double Histogram::cdf(double x) const {
  if (total_ == 0) return 0.0;
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  double below = 0.0;
  for (std::size_t b = 0; b < bins(); ++b) {
    if (bin_hi(b) <= x) {
      below += static_cast<double>(counts_[b]);
    } else if (bin_lo(b) < x) {
      const double frac = (x - bin_lo(b)) / (bin_hi(b) - bin_lo(b));
      below += frac * static_cast<double>(counts_[b]);
    }
  }
  return below / static_cast<double>(total_);
}

double Histogram::quantile(double q) const {
  DS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile outside [0,1]");
  DS_REQUIRE(total_ > 0, "quantile of empty histogram");
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t b = 0; b < bins(); ++b) {
    const double next = cum + static_cast<double>(counts_[b]);
    if (next >= target) {
      if (counts_[b] == 0) return bin_lo(b);
      const double frac = (target - cum) / static_cast<double>(counts_[b]);
      return bin_lo(b) + frac * (bin_hi(b) - bin_lo(b));
    }
    cum = next;
  }
  return hi_;
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : samples_(std::move(samples)) {
  DS_REQUIRE(!samples_.empty(), "empirical CDF needs samples");
  std::sort(samples_.begin(), samples_.end());
}

double EmpiricalCdf::at(double x) const {
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double EmpiricalCdf::quantile(double q) const {
  DS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile outside [0,1]");
  if (q == 0.0) return samples_.front();
  const auto idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples_.size()))) - 1;
  return samples_[std::min(idx, samples_.size() - 1)];
}

}  // namespace diffserve::stats
