// The controller's output and the engine's static configuration — shared
// by every execution backend.
//
// AllocationPlan is what one §3.3 control decision materializes to:
// per-stage worker and batch-size vectors plus one confidence threshold
// per cascade boundary (the `light_*()`/`heavy_*()` accessors alias the
// first/last stage for two-stage callers). EngineConfig is everything the
// engine is constructed with — SLO, reserve factor, launch slack, the
// prompt-popularity mix, and the embedded cache::CacheConfig.
//
// Determinism requirement: both are plain value types with no hidden
// state; applying the same plan to engines holding the same state must
// reconfigure them identically on every backend (worker role assignment
// is stable and order-deterministic), or the DES and threaded runs
// diverge.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "cache/approx_cache.hpp"
#include "engine/query.hpp"
#include "trace/prompt_mix.hpp"
#include "util/check.hpp"

namespace diffserve::engine {

/// How the engine assigns arriving queries to stages.
///   * kCascade — DiffServe and DiffServe-Static: lightest stage first,
///     deferral down the chain on low confidence (§3.1).
///   * kDirect  — Clipper-Light/Heavy and Proteus: each query goes to
///     exactly one model (the first or last stage); Proteus picks the last
///     stage with probability p_heavy.
enum class RoutingMode { kCascade, kDirect };

/// The controller's output, generalized to an N-stage chain: per-stage
/// worker counts and batch sizes plus one confidence threshold per cascade
/// boundary (§3.3's x_i, b_i, t_i). Default-constructed plans describe the
/// classic two-stage cascade; `for_stages(n)` sizes a deeper chain.
/// The `light_*`/`heavy_*` accessors are thin aliases onto the first/last
/// stage for two-stage call sites.
struct AllocationPlan {
  RoutingMode mode = RoutingMode::kCascade;
  /// Workers per stage, stage 0 = lightest. Size = chain length.
  std::vector<int> workers{0, 0};
  /// Batch size per stage.
  std::vector<int> batches{1, 1};
  /// Confidence threshold per boundary (boundary i gates stage i -> i+1).
  std::vector<double> thresholds{0.5};
  double p_heavy = 0.0;  ///< direct-mode last-stage probability

  std::size_t stage_count() const { return workers.size(); }
  std::size_t boundary_count() const {
    return workers.empty() ? 0 : workers.size() - 1;
  }

  /// An empty plan shaped for an n-stage chain.
  static AllocationPlan for_stages(std::size_t n) {
    DS_REQUIRE(n >= 1, "a cascade chain needs at least one stage");
    AllocationPlan p;
    p.workers.assign(n, 0);
    p.batches.assign(n, 1);
    p.thresholds.assign(n - 1, 0.5);
    return p;
  }

  // --- two-stage aliases (first/last stage) ------------------------------
  int& light_workers() { return workers.front(); }
  int light_workers() const { return workers.front(); }
  int& heavy_workers() { return workers.back(); }
  int heavy_workers() const { return workers.back(); }
  int& light_batch() { return batches.front(); }
  int light_batch() const { return batches.front(); }
  int& heavy_batch() { return batches.back(); }
  int heavy_batch() const { return batches.back(); }
  double& threshold() {
    DS_REQUIRE(!thresholds.empty(), "depth-1 plan has no threshold");
    return thresholds.front();
  }
  double threshold() const {
    return thresholds.empty() ? 1.0 : thresholds.front();
  }
};

/// Per-class SLO tiering, indexed by QueryClass. With `enabled == false`
/// every query is kStandard on the single historical FIFO and the engine's
/// serving decisions are byte-identical to a build without this struct
/// (the EngineEquivalence suite pins that).
///
/// `class_aware_scheduling` separates *having* classes from *acting* on
/// them: false keeps the class assignment and per-class deadlines but
/// routes everything through the single kStandard FIFO with no admission
/// caps and no class-aware batch formation — the fig13 baseline, so the
/// "classes help" comparison holds deadlines constant and varies only the
/// scheduling policy.
struct SloClassConfig {
  bool enabled = false;
  /// Per-class deadline = arrival + slo_seconds * deadline_multiplier[c].
  std::array<double, kQueryClassCount> deadline_multiplier{0.4, 1.0, 8.0};
  /// Per-class, per-worker admission queue capacity (0 = unbounded).
  /// Overflow follows util::OverflowPolicy semantics per class:
  /// interactive = kDropOldest (freshest work wins), standard = kBlock
  /// rendered as admission backpressure (the arriving query is rejected —
  /// a data-path queue cannot literally block the DES), batch =
  /// kDropNewest (reject the arrival; queued batch work is never shed).
  std::array<std::size_t, kQueryClassCount> queue_capacity{64, 256, 4096};
  /// Controller-side SLO objective weights (interactive > standard >
  /// batch): the effective SLO fed to the allocators is the weighted
  /// demand-share mean of the per-class deadlines.
  std::array<double, kQueryClassCount> slo_weight{4.0, 2.0, 1.0};
  bool class_aware_scheduling = true;

  double multiplier(QueryClass c) const {
    return deadline_multiplier[static_cast<std::size_t>(c)];
  }
  std::size_t capacity(QueryClass c) const {
    return queue_capacity[static_cast<std::size_t>(c)];
  }
  double weight(QueryClass c) const {
    return slo_weight[static_cast<std::size_t>(c)];
  }
  /// True when both the per-class queues and the class-aware batch/drop
  /// policies are live (vs. merely tagging queries with classes).
  bool scheduling_active() const { return enabled && class_aware_scheduling; }
};

struct EngineConfig {
  int total_workers = 16;
  double slo_seconds = 5.0;
  double model_load_delay = 1.0;
  /// Stage-i reserve = factor * sum of downstream stages' batch execution
  /// times: the time kept in the stage deadline for the rest of the chain
  /// should the query be deferred (generalizes the two-stage heavy
  /// reserve e_heavy(b2)).
  double heavy_reserve_factor = 1.25;
  /// Arm under-filled batch timers this long (trace seconds) before the
  /// last feasible launch instant. The DES fires timers exactly on time
  /// and leaves this 0; wall-clock backends set it to their scheduling
  /// jitter so deadline-boundary queries are not tipped into drops by
  /// timer lateness.
  double launch_slack_seconds = 0.0;
  std::uint64_t seed = 1;
  /// Forwarded to the MetricsSink: false skips per-query terminal records
  /// (throughput-bench fast mode). Serving decisions are unaffected — the
  /// sink is strictly downstream of routing, batching, and deferral.
  bool record_terminal_events = true;
  /// Approximate prompt-reuse cache probed at admission. Disabled by
  /// default; engine behaviour with `cache.enabled == false` is
  /// byte-identical to a build without the cache subsystem.
  cache::CacheConfig cache;
  /// Which prompt each engine-admitted query carries (submit_next()).
  /// Defaults to the historical round-robin cycling; kZipf models the
  /// skewed, bursty prompt popularity real reuse caches feed on.
  trace::PromptMixConfig prompt_mix;
  /// Per-class SLO tiering (admission queues, drop policies, class-aware
  /// batching). Disabled by default; engine behaviour with
  /// `slo_classes.enabled == false` is byte-identical to a build without
  /// the subsystem.
  SloClassConfig slo_classes;
};

}  // namespace diffserve::engine
