#include "core/experiment.hpp"

#include "baselines/baselines.hpp"
#include "control/allocator_variants.hpp"
#include "control/exhaustive_allocator.hpp"
#include "control/milp_allocator.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace diffserve::core {

const char* to_string(Approach a) {
  switch (a) {
    case Approach::kDiffServe: return "DiffServe";
    case Approach::kDiffServeExhaustive: return "DiffServe-Exhaustive";
    case Approach::kDiffServeStatic: return "DiffServe-Static";
    case Approach::kClipperLight: return "Clipper-Light";
    case Approach::kClipperHeavy: return "Clipper-Heavy";
    case Approach::kProteus: return "Proteus";
    case Approach::kAblationStaticThreshold: return "Static-Threshold";
    case Approach::kAblationAimdBatching: return "AIMD-Batching";
    case Approach::kAblationNoQueueModel: return "No-Queuing-Model";
  }
  return "?";
}

const std::vector<Approach>& comparison_approaches() {
  static const std::vector<Approach> order = {
      Approach::kClipperLight, Approach::kClipperHeavy, Approach::kProteus,
      Approach::kDiffServeStatic, Approach::kDiffServe};
  return order;
}

namespace {

std::unique_ptr<control::Allocator> make_allocator(
    const CascadeEnvironment& env, const RunConfig& cfg) {
  using control::Allocator;
  // Lazy: a depth-1 chain has no boundary profile, and only the static
  // approaches need the fixed operating point.
  const auto static_threshold = [&] {
    return env.offline_profile().threshold_for_fraction(
        cfg.static_deferral_fraction);
  };
  switch (cfg.approach) {
    case Approach::kDiffServe:
      return std::make_unique<control::MilpAllocator>();
    case Approach::kDiffServeExhaustive:
      return std::make_unique<control::ExhaustiveAllocator>();
    case Approach::kDiffServeStatic:
      return std::make_unique<baselines::DiffServeStaticAllocator>(
          cfg.trace.max_qps(), static_threshold());
    case Approach::kClipperLight:
      return std::make_unique<baselines::ClipperAllocator>(
          baselines::ClipperAllocator::Variant::kLight);
    case Approach::kClipperHeavy:
      return std::make_unique<baselines::ClipperAllocator>(
          baselines::ClipperAllocator::Variant::kHeavy);
    case Approach::kProteus:
      return std::make_unique<baselines::ProteusAllocator>();
    case Approach::kAblationStaticThreshold:
      return std::make_unique<control::StaticThresholdAllocator>(
          std::make_unique<control::MilpAllocator>(), static_threshold());
    case Approach::kAblationAimdBatching:
      return std::make_unique<control::AimdBatchAllocator>(
          std::make_unique<control::ExhaustiveAllocator>());
    case Approach::kAblationNoQueueModel:
      return std::make_unique<control::NoQueueModelAllocator>(
          std::make_unique<control::MilpAllocator>());
  }
  DS_CHECK(false, "unreachable approach");
  return nullptr;
}

}  // namespace

ExperimentResult run_experiment(const CascadeEnvironment& env,
                                const RunConfig& cfg) {
  DS_REQUIRE(cfg.trace.samples().size() >= 2, "run needs a trace");
  sim::Simulation sim;

  serving::SystemConfig sys_cfg = cfg.system;
  sys_cfg.total_workers = cfg.total_workers;
  sys_cfg.slo_seconds =
      cfg.slo_seconds > 0.0 ? cfg.slo_seconds : env.default_slo();

  serving::ServingSystem system(sim, env.workload(), env.repository(),
                                env.cascade(), env.discs(), env.scorer(),
                                sys_cfg);

  control::ControllerConfig ctrl_cfg = cfg.controller;
  ctrl_cfg.over_provision = cfg.over_provision;
  if (ctrl_cfg.initial_demand_guess <= 0.0)
    ctrl_cfg.initial_demand_guess = cfg.trace.qps_at(0.0);
  control::Controller controller(system.engine(), make_allocator(env, cfg),
                                 env.offline_profiles(), ctrl_cfg);

  util::Rng arrival_rng(cfg.arrival_seed);
  const auto arrivals =
      trace::generate_arrivals(cfg.trace, arrival_rng, cfg.arrivals);
  system.inject_arrivals(arrivals);

  controller.start();
  sim.run_until(cfg.trace.duration() + sys_cfg.slo_seconds +
                cfg.drain_seconds);
  controller.stop();
  // Drain any stragglers (e.g. batches launched right at the horizon).
  sim.run_all();

  ExperimentResult r;
  r.approach = to_string(cfg.approach);
  const auto& sink = system.sink();
  r.violation_ratio = sink.violation_ratio();
  r.mean_latency = sink.mean_latency();
  r.p99_latency = sink.completed() ? sink.latency_percentile(99.0) : 0.0;
  r.light_served_fraction = sink.light_served_fraction();
  r.stage_served_fraction =
      sink.stage_served_fractions(system.engine().stage_count());
  r.submitted = system.engine().submitted();
  r.completed = sink.completed();
  r.dropped = sink.dropped();
  r.reconfigurations = system.engine().reconfigurations();
  const auto cache_stats = system.engine().cache_stats();
  r.cache_hit_ratio = cache_stats.hit_ratio();
  r.cache_exact_hit_ratio = cache_stats.exact_hit_ratio();
  r.cache_mean_probed_cells = cache_stats.mean_probed_cells();
  r.cache_heap_compactions = cache_stats.heap_compactions;
  for (std::size_t c = 0; c < engine::kQueryClassCount; ++c) {
    const auto cls = static_cast<engine::QueryClass>(c);
    r.class_completed[c] = sink.class_completed(cls);
    r.class_dropped[c] = sink.class_dropped(cls);
    r.class_violation_ratio[c] = sink.class_violation_ratio(cls);
    r.class_mean_latency[c] = sink.class_mean_latency(cls);
  }
  r.overall_fid = sink.completed() >= 2 ? sink.overall_fid() : -1.0;
  r.timeline = sink.timeline(cfg.timeline_window);
  r.control_history = controller.history();
  if (!r.control_history.empty()) {
    double total_ms = 0.0;
    for (const auto& h : r.control_history)
      total_ms += h.decision.solve_time_ms;
    r.mean_solve_ms = total_ms / static_cast<double>(r.control_history.size());
  }
  return r;
}

}  // namespace diffserve::core
