#include "core/environment.hpp"

#include "util/check.hpp"
#include "util/log.hpp"

namespace diffserve::core {

CascadeEnvironment::CascadeEnvironment(EnvironmentConfig cfg)
    : cfg_(std::move(cfg)),
      repo_(models::ModelRepository::with_paper_catalog()),
      cascade_(repo_.cascade(cfg_.cascade)) {
  light_tier_ = repo_.model(cascade_.light_model).quality_tier;
  heavy_tier_ = repo_.model(cascade_.heavy_model).quality_tier;

  workload_ =
      std::make_unique<quality::Workload>(cfg_.workload_queries, cfg_.quality);
  scorer_ = std::make_unique<quality::FidScorer>(*workload_);

  DS_LOG_INFO("env") << "training discriminator ("
                     << discriminator::variant_name(cfg_.discriminator)
                     << ") for " << cascade_.name;
  disc_ = std::make_unique<discriminator::Discriminator>(
      discriminator::train_discriminator(*workload_, light_tier_, heavy_tier_,
                                         cfg_.discriminator));
  offline_profile_ = std::make_unique<discriminator::DeferralProfile>(
      discriminator::DeferralProfile::profile(*workload_, *disc_, light_tier_,
                                              cfg_.profile_queries));
}

}  // namespace diffserve::core
