// ShardFrontend — the cluster's front door.
//
// Owns the frontend side of N shard links and implements the routing
// policy: consistent hash on the prompt key (so the approximate
// prompt-reuse cache shards cleanly — every recurrence of a prompt lands
// on the shard holding its cached images) with a least-loaded fallback
// when the hash-owner's in-flight load runs far ahead of the cluster
// minimum. Load is tracked purely from wire traffic — +1 per submitted
// query, -1 per terminal frame — so routing needs no side channel into
// the shards and behaves identically over loopback and sockets.
//
// The frontend also owns the cluster-level MetricsSink. Terminal frames
// carry no image features; quality::served_image_feature is a pure
// function of (workload, query, tier), so the sink's records here are
// bit-identical to what the shard's own sink recorded. Timestamps are
// clamped monotone before folding (socket delivery across shards can
// reorder by a few microseconds; the sink's sliding windows require
// non-decreasing time).
//
// Determinism contract: with loopback transports at zero hop latency a
// 1-shard frontend is decision-identical to calling the engine directly —
// submit_next() fills the exact fields engine::CascadeEngine::submit_next
// would (same sequence numbers, same PromptSampler stream, same
// deadlines), delivery is synchronous, and the single shard is always the
// hash owner.
//
// Thread safety: all mutable state (sampler, sequence, in-flight
// counters, sink) is under one mutex; sends happen outside it. Receivers
// are installed by attach_shard() and fire from transport threads in the
// threaded runtime. The locking discipline is machine-checked: mu_ is a
// util::Mutex and every guarded member is DS_GUARDED_BY it (see
// util/thread_annotations.hpp and the CI thread-safety gate).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "engine/metrics_sink.hpp"
#include "engine/plan.hpp"
#include "engine/query.hpp"
#include "net/messages.hpp"
#include "net/transport.hpp"
#include "trace/prompt_mix.hpp"
#include "util/mutex.hpp"

namespace diffserve::cluster {

struct FrontendConfig {
  double slo_seconds = 5.0;
  /// Virtual nodes per shard on the hash ring; more = smoother key
  /// spread, marginally slower ring build (lookups stay O(log ring)).
  int virtual_nodes = 64;
  std::uint64_t hash_seed = 0x5ca1ab1edeadbeefULL;
  /// Least-loaded fallback triggers when the hash owner's in-flight count
  /// exceeds both this floor and `imbalance_factor` x the cluster
  /// minimum. The floor keeps cold-start noise (0 vs 1 queries) from
  /// defeating hash affinity; beyond it the fallback reacts quickly —
  /// shards are small (a few workers each), so even a handful of excess
  /// in-flight queries is real queueing, and hash affinity only pays
  /// while the owner can actually serve (fig12 sweeps this trade).
  std::uint64_t imbalance_min_inflight = 4;
  double imbalance_factor = 1.25;
  /// Forwarded to the sink (throughput-bench fast mode).
  bool record_terminal_events = true;
  /// Which prompt each frontend-admitted query carries; must match what a
  /// bare engine would use for the equivalence contract to hold.
  trace::PromptMixConfig prompt_mix;
  /// SLO classes: when enabled, submit_next draws each query's class from
  /// the sampler's class stream and scales its deadline by the per-class
  /// multiplier — exactly what a bare engine with the same config does.
  engine::SloClassConfig slo_classes;
};

class ShardFrontend {
 public:
  ShardFrontend(const quality::Workload& workload,
                const quality::FidScorer& scorer, FrontendConfig cfg);

  /// Register shard i's frontend-side endpoint (i = attach order) and
  /// install its receiver. All shards must be attached before traffic.
  void attach_shard(std::unique_ptr<net::Endpoint> endpoint);
  std::size_t shard_count() const { return shards_.size(); }

  /// Start/stop every attached frontend-side endpoint (no-ops on
  /// loopback transports; starts/joins reader threads on sockets).
  void start_transports();
  void stop_transports();

  /// Admit the next query: fills seq / sampled prompt / deadline exactly
  /// like engine::CascadeEngine::submit_next, routes it, and sends the
  /// submit frame. Returns the admitted query.
  engine::Query submit_next(double now);
  /// Admit an externally constructed query (arrival_time/deadline set).
  void submit(engine::Query q);

  /// The routing decision for a prompt under current load.
  std::size_t route(quality::QueryId prompt_id) const;
  /// Pure hash-ring owner, ignoring load (exposed for tests).
  std::size_t hash_shard(quality::QueryId prompt_id) const;

  /// Control-plane access for the cluster controller: raw frame to one
  /// shard, and a listener for the stats snapshots shards send back.
  void send_to_shard(std::size_t shard, const net::Frame& f);
  void set_stats_listener(std::function<void(const net::ShardStatsMsg&)> fn);

  std::uint64_t submitted() const;
  std::uint64_t terminated() const;
  /// Every admitted query has reached a terminal (served or dropped).
  bool drained() const;
  std::uint64_t inflight(std::size_t shard) const;

  /// Post-run access seam: the runners read the folded sink after the
  /// cluster has drained and every transport stopped, when no receiver
  /// can race it — a handoff the analysis cannot see, hence the opt-out.
  engine::MetricsSink& sink() DS_NO_THREAD_SAFETY_ANALYSIS { return sink_; }
  const engine::MetricsSink& sink() const DS_NO_THREAD_SAFETY_ANALYSIS {
    return sink_;
  }

 private:
  void on_frame(std::size_t shard, net::Frame f);
  std::size_t route_locked(quality::QueryId prompt_id) const DS_REQUIRES(mu_);
  std::size_t hash_shard_locked(quality::QueryId prompt_id) const
      DS_REQUIRES(mu_);

  const FrontendConfig cfg_;
  /// Endpoints: appended during single-threaded setup (attach-all-then-
  /// serve is the contract), immutable afterwards; send() is each
  /// endpoint's own concern — deliberately touched outside mu_ so a
  /// blocking socket write never holds up routing.
  std::vector<std::unique_ptr<net::Endpoint>> shards_;

  mutable util::Mutex mu_;
  /// Hash ring: (point, shard), sorted by point. Rebuilt on attach.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_
      DS_GUARDED_BY(mu_);
  trace::PromptSampler sampler_ DS_GUARDED_BY(mu_);
  engine::MetricsSink sink_ DS_GUARDED_BY(mu_);
  std::vector<std::uint64_t> inflight_ DS_GUARDED_BY(mu_);
  std::uint64_t next_seq_ DS_GUARDED_BY(mu_) = 0;
  std::uint64_t submitted_ DS_GUARDED_BY(mu_) = 0;
  std::uint64_t terminated_ DS_GUARDED_BY(mu_) = 0;
  double last_sink_time_ DS_GUARDED_BY(mu_) = 0.0;
  std::function<void(const net::ShardStatsMsg&)> stats_listener_
      DS_GUARDED_BY(mu_);
};

}  // namespace diffserve::cluster
