#include "runtime/threaded_runtime.hpp"

#include <algorithm>
#include <chrono>

#include "control/controller.hpp"
#include "engine/engine.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace diffserve::runtime {

ThreadedBackend::ThreadedBackend(const util::TraceClock& clock, int workers)
    : clock_(clock) {
  executors_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    executors_.push_back(std::make_unique<Executor>());
}

ThreadedBackend::~ThreadedBackend() { stop(); }

void ThreadedBackend::start() {
  timer_thread_ = std::thread([this] { timer_main(); });
  control_thread_ = std::thread([this] { control_main(); });
  for (auto& ex : executors_)
    ex->thread = std::thread([this, e = ex.get()] { executor_main(*e); });
}

void ThreadedBackend::stop() {
  if (stop_.load()) return;
  // Quiesce before signalling stop: a finishing batch can dispatch a
  // follow-on batch deeper in the chain, which must still be accepted and
  // executed rather than lost to an already-joined executor thread. The
  // timer thread counts too — a timer callback in flight may be about to
  // dispatch a batch, and signalling stop in that window would discard
  // it (losing its queries and leaving the worker busy forever). Once no
  // executor has work and no timer callback is running, nothing can
  // dispatch anymore: due timers that have not fired are held back by the
  // stop flag and their queries stay queued (observable, not lost).
  // Bounded so a wedged pipeline cannot hang shutdown.
  const auto quiesce_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  for (;;) {
    bool active = timer_busy_.load();
    {
      // Queue emptiness and control_busy_ are checked under the same
      // lock the control thread holds while popping a job and raising
      // busy, so a job can never vanish from the queue without the
      // quiesce seeing it as in-flight.
      std::lock_guard<std::mutex> lk(control_mu_);
      active = active || control_busy_.load() || !control_jobs_.empty();
    }
    for (auto& ex : executors_) {
      std::lock_guard<std::mutex> lk(ex->mu);
      active = active || ex->has_job || ex->busy;
    }
    if (!active || std::chrono::steady_clock::now() > quiesce_deadline)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (stop_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lk(timer_mu_);
    timer_cv_.notify_all();
  }
  {
    std::lock_guard<std::mutex> lk(control_mu_);
    control_cv_.notify_all();
  }
  for (auto& ex : executors_) {
    std::lock_guard<std::mutex> lk(ex->mu);
    ex->cv.notify_all();
  }
  if (timer_thread_.joinable()) timer_thread_.join();
  if (control_thread_.joinable()) control_thread_.join();
  for (auto& ex : executors_)
    if (ex->thread.joinable()) ex->thread.join();
}

engine::TimerHandle ThreadedBackend::defer(double delay_seconds,
                                           std::function<void()> fn) {
  std::lock_guard<std::mutex> lk(timer_mu_);
  const std::uint64_t id = next_id_++;
  heap_.push({clock_.now() + std::max(delay_seconds, 0.0), id});
  fns_[id] = std::move(fn);
  timer_cv_.notify_one();
  return {id};
}

bool ThreadedBackend::cancel(engine::TimerHandle h) {
  std::lock_guard<std::mutex> lk(timer_mu_);
  return fns_.erase(h.id) > 0;
}

void ThreadedBackend::execute(int worker_id, double exec_seconds,
                              std::function<void()> done) {
  Executor& ex = *executors_[static_cast<std::size_t>(worker_id)];
  std::lock_guard<std::mutex> lk(ex.mu);
  // Unreachable after a clean quiesce (nothing can dispatch once stop_ is
  // set); only the bounded quiesce-timeout escape path for a wedged
  // pipeline lands here, where the executor may already be gone.
  if (stop_.load()) return;
  DS_CHECK(!ex.has_job, "worker already executing");
  // Absolute due time, stamped at dispatch: the executor sleeps *until*
  // it rather than *for* the latency, so hand-off latency does not
  // accumulate into batch lateness (which the engine would count as
  // SLO violations).
  ex.due = clock_.now() + exec_seconds;
  ex.done = std::move(done);
  ex.has_job = true;
  ex.cv.notify_one();
}

void ThreadedBackend::offload(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(control_mu_);
    if (stop_.load()) return;  // shutting down; the tick is moot
    control_jobs_.push_back(std::move(fn));
  }
  control_cv_.notify_one();
}

void ThreadedBackend::control_main() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lk(control_mu_);
      control_cv_.wait(
          lk, [&] { return stop_.load() || !control_jobs_.empty(); });
      // Drain queued jobs even while stopping: a job may have been
      // accepted a moment before the stop flag was raised.
      if (control_jobs_.empty()) return;
      job = std::move(control_jobs_.front());
      control_jobs_.pop_front();
      // Raised while control_mu_ is held so stop()'s quiesce can never
      // observe "control idle" between extraction and invocation.
      control_busy_.store(true);
    }
    job();  // acquires the engine guard internally
    control_busy_.store(false);
  }
}

void ThreadedBackend::timer_main() {
  for (;;) {
    std::function<void()> fn;
    {
      std::unique_lock<std::mutex> lk(timer_mu_);
      for (;;) {
        if (stop_.load()) return;
        // Cancelled entries stay in the heap; skip them here.
        while (!heap_.empty() && fns_.find(heap_.top().id) == fns_.end())
          heap_.pop();
        if (heap_.empty()) {
          timer_cv_.wait_for(lk, std::chrono::milliseconds(2));
          continue;
        }
        const double due = heap_.top().at;
        const double now = clock_.now();
        if (due <= now) {
          const std::uint64_t id = heap_.top().id;
          heap_.pop();
          auto it = fns_.find(id);
          fn = std::move(it->second);
          fns_.erase(it);
          // Raised while timer_mu_ is still held so stop()'s quiesce can
          // never observe "timer idle" between extraction and invocation.
          timer_busy_.store(true);
          break;
        }
        // Wake at the due time, capped so stop/new-timer are noticed.
        timer_cv_.wait_for(
            lk, std::min<std::chrono::duration<double>>(
                    clock_.wall_duration(due - now),
                    std::chrono::milliseconds(2)));
      }
    }
    fn();  // acquires the engine guard internally
    timer_busy_.store(false);
  }
}

void ThreadedBackend::executor_main(Executor& ex) {
  for (;;) {
    std::function<void()> done;
    double due = 0.0;
    {
      std::unique_lock<std::mutex> lk(ex.mu);
      ex.cv.wait(lk, [&] { return ex.has_job || stop_.load(); });
      if (!ex.has_job) return;  // stopping
      due = ex.due;
      done = std::move(ex.done);
      ex.has_job = false;
      ex.busy = true;
    }
    clock_.sleep_until(due);
    done();  // acquires the engine guard internally
    {
      std::lock_guard<std::mutex> lk(ex.mu);
      ex.busy = false;
    }
  }
}

namespace {

/// Non-owning adapter: the Controller owns its allocator, but run_threaded
/// borrows one from the caller.
class BorrowedAllocator final : public control::Allocator {
 public:
  explicit BorrowedAllocator(control::Allocator& inner) : inner_(inner) {}
  control::AllocationDecision allocate(
      const control::AllocationInput& input) override {
    return inner_.allocate(input);
  }
  std::string name() const override { return inner_.name(); }

 private:
  control::Allocator& inner_;
};

}  // namespace

RuntimeResult run_threaded(const core::CascadeEnvironment& env,
                           control::Allocator& allocator,
                           const trace::RateTrace& trace,
                           const RuntimeConfig& cfg) {
  DS_REQUIRE(cfg.total_workers >= 2, "need at least two workers");
  const double slo =
      cfg.slo_seconds > 0.0 ? cfg.slo_seconds : env.default_slo();

  util::TraceClock clock(cfg.time_scale);
  ThreadedBackend backend(clock, cfg.total_workers);

  engine::EngineConfig ecfg;
  ecfg.total_workers = cfg.total_workers;
  ecfg.slo_seconds = slo;
  ecfg.model_load_delay = cfg.model_load_delay;
  ecfg.heavy_reserve_factor = cfg.heavy_reserve_factor;
  // Wall-clock timer jitter scales with the time compression; absorb it so
  // deadline-boundary batches launch in time (the DES needs no slack).
  ecfg.launch_slack_seconds = cfg.launch_slack_wall_seconds * cfg.time_scale;
  ecfg.cache = cfg.cache;
  ecfg.prompt_mix = cfg.prompt_mix;
  engine::CascadeEngine eng(backend, env.workload(), env.repository(),
                            env.cascade(), env.discs(), env.scorer(), ecfg);

  control::ControllerConfig ccfg;
  ccfg.period_seconds = cfg.control_period;
  ccfg.over_provision = cfg.over_provision;
  ccfg.max_deferral_fraction = cfg.max_deferral_fraction;
  ccfg.initial_demand_guess = trace.qps_at(0.0);
  control::Controller controller(
      eng, std::make_unique<BorrowedAllocator>(allocator),
      env.offline_profiles(), ccfg);

  util::Rng rng(cfg.arrival_seed);
  const auto arrivals = trace::generate_arrivals(trace, rng, cfg.arrivals);

  backend.start();
  controller.start();

  // The client: replay arrivals in compressed wall time.
  for (const double t : arrivals) {
    clock.sleep_until(t);
    eng.submit_next();
  }

  // Drain: give in-flight queries until trace end + SLO + margin.
  clock.sleep_until(trace.duration() + slo + 5.0);
  controller.stop();
  backend.stop();

  RuntimeResult r;
  const auto& sink = eng.sink();
  r.submitted = eng.submitted();
  r.completed = sink.completed();
  r.dropped = sink.dropped();
  r.reconfigurations = eng.reconfigurations();
  const auto cache_stats = eng.cache_stats();
  r.cache_hit_ratio = cache_stats.hit_ratio();
  r.cache_exact_hit_ratio = cache_stats.exact_hit_ratio();
  r.cache_mean_probed_cells = cache_stats.mean_probed_cells();
  r.cache_heap_compactions = cache_stats.heap_compactions;
  r.violation_ratio = sink.violation_ratio();
  r.mean_latency = sink.mean_latency();
  r.light_served_fraction = sink.light_served_fraction();
  r.stage_served_fraction = sink.stage_served_fractions(eng.stage_count());
  r.overall_fid = r.completed >= 2 ? sink.overall_fid() : -1.0;
  return r;
}

}  // namespace diffserve::runtime
