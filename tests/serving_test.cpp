// Tests for the serving data path: worker batching and drop policy, the
// cascade router, the metrics sink, and system reconfiguration.
#include <gtest/gtest.h>

#include "discriminator/discriminator.hpp"
#include "models/model_repository.hpp"
#include "quality/fid.hpp"
#include "quality/workload.hpp"
#include "serving/router.hpp"
#include "serving/sink.hpp"
#include "serving/system.hpp"
#include "serving/worker.hpp"
#include "sim/simulation.hpp"

namespace diffserve::serving {
namespace {

models::LatencyProfile unit_profile() {
  return models::LatencyProfile(std::map<int, double>{{1, 1.0}, {2, 1.5},
                                                      {4, 2.5}});
}

Query make_query(std::uint64_t seq, double arrival, double deadline,
                 double stage_deadline) {
  Query q;
  q.seq = seq;
  q.prompt_id = static_cast<quality::QueryId>(seq % 50);
  q.arrival_time = arrival;
  q.deadline = deadline;
  q.stage_deadline = stage_deadline;
  return q;
}

WorkerConfig basic_config(int batch) {
  WorkerConfig cfg;
  cfg.model_name = "m";
  cfg.profile = unit_profile();
  cfg.batch_size = batch;
  cfg.quality_tier = 1;
  return cfg;
}

TEST(Worker, FullBatchStartsImmediately) {
  sim::Simulation sim;
  SimWorker w(sim, 0, /*load_delay=*/0.0);
  std::vector<std::vector<Query>> batches;
  w.set_callbacks(
      [&](SimWorker&, std::vector<Query>&& b) { batches.push_back(b); },
      nullptr);
  w.configure(basic_config(2));
  w.enqueue(make_query(0, 0.0, 100.0, 100.0));
  w.enqueue(make_query(1, 0.0, 100.0, 100.0));
  sim.run_until(1.6);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].size(), 2u);
  EXPECT_EQ(w.queries_processed(), 2u);
}

TEST(Worker, UnderfilledBatchLaunchesByTimeout) {
  sim::Simulation sim;
  SimWorker w(sim, 0, 0.0);
  std::vector<double> completion_times;
  w.set_callbacks(
      [&](SimWorker&, std::vector<Query>&& b) {
        for (auto& q : b) {
          (void)q;
          completion_times.push_back(sim.now());
        }
      },
      nullptr);
  w.configure(basic_config(4));  // e(4) = 2.5
  sim.schedule_at(0.0, [&] { w.enqueue(make_query(0, 0.0, 100.0, 100.0)); });
  sim.run_until(10.0);
  // Launch capped at oldest + exec = 2.5, completes at 5.0.
  ASSERT_EQ(completion_times.size(), 1u);
  EXPECT_NEAR(completion_times[0], 5.0, 1e-9);
}

TEST(Worker, TightDeadlineForcesEarlyLaunch) {
  sim::Simulation sim;
  SimWorker w(sim, 0, 0.0);
  std::vector<double> completions;
  w.set_callbacks(
      [&](SimWorker&, std::vector<Query>&& b) {
        for (std::size_t i = 0; i < b.size(); ++i)
          completions.push_back(sim.now());
      },
      nullptr);
  w.configure(basic_config(4));  // e(4) = 2.5
  // Stage deadline 3.0: must launch by 0.5 to make it.
  sim.schedule_at(0.0, [&] { w.enqueue(make_query(0, 0.0, 3.0, 3.0)); });
  sim.run_until(10.0);
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_NEAR(completions[0], 3.0, 1e-9);
}

TEST(Worker, DropsOverdueQueriesAtBatchStart) {
  sim::Simulation sim;
  SimWorker w(sim, 0, 0.0);
  std::size_t completed = 0, dropped = 0;
  w.set_callbacks(
      [&](SimWorker&, std::vector<Query>&& b) { completed += b.size(); },
      [&](SimWorker&, Query&&) { ++dropped; });
  w.configure(basic_config(1));  // e(1) = 1.0
  // Three queries at t=0; each takes 1s serially; the third would finish
  // at 3.0 but its stage deadline is 2.5 -> dropped.
  sim.schedule_at(0.0, [&] {
    w.enqueue(make_query(0, 0.0, 2.5, 2.5));
    w.enqueue(make_query(1, 0.0, 2.5, 2.5));
    w.enqueue(make_query(2, 0.0, 2.5, 2.5));
  });
  sim.run_until(10.0);
  EXPECT_EQ(completed, 2u);
  EXPECT_EQ(dropped, 1u);
  EXPECT_EQ(w.queries_dropped(), 1u);
}

TEST(Worker, ModelChangeEvictsQueueAndDelays) {
  sim::Simulation sim;
  SimWorker w(sim, 0, /*load_delay=*/2.0);
  std::size_t completed = 0;
  w.set_callbacks(
      [&](SimWorker&, std::vector<Query>&& b) { completed += b.size(); },
      nullptr);
  w.configure(basic_config(1));
  sim.run_until(2.0);  // initial load done
  auto cfg2 = basic_config(1);
  cfg2.model_name = "other";
  Query stuck = make_query(9, 2.0, 100.0, 100.0);
  w.enqueue(stuck);
  // Worker is executing (busy) — reconfigure now.
  const auto evicted = w.configure(cfg2);
  EXPECT_EQ(evicted.size(), 0u);  // the query already started (busy)
  sim.run_until(20.0);
  EXPECT_EQ(completed, 1u);
}

TEST(Worker, EvictionReturnsQueuedQueries) {
  sim::Simulation sim;
  SimWorker w(sim, 0, 1.0);
  w.set_callbacks([](SimWorker&, std::vector<Query>&&) {}, nullptr);
  w.configure(basic_config(4));
  // Still loading until t=1; queue three.
  w.enqueue(make_query(0, 0.0, 100.0, 100.0));
  w.enqueue(make_query(1, 0.0, 100.0, 100.0));
  auto cfg2 = basic_config(4);
  cfg2.model_name = "other";
  const auto evicted = w.configure(cfg2);
  EXPECT_EQ(evicted.size(), 2u);
  EXPECT_EQ(w.queue_length(), 0u);
}

TEST(Worker, SameModelBatchChangeKeepsQueue) {
  sim::Simulation sim;
  SimWorker w(sim, 0, 10.0);
  w.set_callbacks([](SimWorker&, std::vector<Query>&&) {}, nullptr);
  w.configure(basic_config(1));
  w.enqueue(make_query(0, 0.0, 100.0, 100.0));
  const auto evicted = w.configure(basic_config(2));
  EXPECT_TRUE(evicted.empty());
  EXPECT_EQ(w.queue_length(), 1u);
}

TEST(Worker, RejectsUnsupportedBatch) {
  sim::Simulation sim;
  SimWorker w(sim, 0, 0.0);
  auto cfg = basic_config(3);  // not in profile
  EXPECT_THROW(w.configure(cfg), std::invalid_argument);
}

// --- integration fixtures over a real (small) cascade environment ------

class ServingIntegration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new quality::Workload(600);
    scorer_ = new quality::FidScorer(*workload_);
    repo_ = new models::ModelRepository(
        models::ModelRepository::with_paper_catalog());
    discriminator::DiscriminatorConfig dc;
    dc.train_queries = 400;
    dc.epochs = 3;
    disc_ = new discriminator::Discriminator(
        discriminator::train_discriminator(*workload_, 2, 5, dc));
  }
  static void TearDownTestSuite() {
    delete disc_;
    delete repo_;
    delete scorer_;
    delete workload_;
  }

  static quality::Workload* workload_;
  static quality::FidScorer* scorer_;
  static models::ModelRepository* repo_;
  static discriminator::Discriminator* disc_;
};

quality::Workload* ServingIntegration::workload_ = nullptr;
quality::FidScorer* ServingIntegration::scorer_ = nullptr;
models::ModelRepository* ServingIntegration::repo_ = nullptr;
discriminator::Discriminator* ServingIntegration::disc_ = nullptr;

TEST_F(ServingIntegration, CascadeServesAndDefers) {
  sim::Simulation sim;
  SystemConfig cfg;
  cfg.total_workers = 4;
  cfg.slo_seconds = 5.0;
  cfg.model_load_delay = 0.1;
  ServingSystem system(sim, *workload_, *repo_,
                       repo_->cascade(models::catalog::kCascade1), disc_,
                       *scorer_, cfg);
  AllocationPlan plan;
  plan.mode = RoutingMode::kCascade;
  plan.light_workers = 1;
  plan.heavy_workers = 3;
  plan.light_batch = 1;
  plan.heavy_batch = 1;
  plan.threshold = 0.5;
  system.apply(plan);

  std::vector<double> arrivals;
  for (int i = 0; i < 40; ++i) arrivals.push_back(0.5 + i * 0.5);
  system.inject_arrivals(arrivals);
  sim.run_until(60.0);
  sim.run_all();

  const auto& sink = system.sink();
  EXPECT_EQ(sink.total(), 40u);
  EXPECT_GT(sink.completed(), 30u);
  // Both branches exercised: some light-served, some deferred.
  EXPECT_GT(sink.light_served_fraction(), 0.0);
  EXPECT_LT(sink.light_served_fraction(), 1.0);
  EXPECT_GT(sink.overall_fid(), 0.0);
}

TEST_F(ServingIntegration, ThresholdZeroServesEverythingLight) {
  sim::Simulation sim;
  SystemConfig cfg;
  cfg.total_workers = 2;
  cfg.slo_seconds = 5.0;
  cfg.model_load_delay = 0.1;
  ServingSystem system(sim, *workload_, *repo_,
                       repo_->cascade(models::catalog::kCascade1), disc_,
                       *scorer_, cfg);
  AllocationPlan plan;
  plan.light_workers = 2;
  plan.heavy_workers = 0;
  plan.threshold = 0.0;
  system.apply(plan);
  std::vector<double> arrivals;
  for (int i = 0; i < 20; ++i) arrivals.push_back(0.2 + i * 0.3);
  system.inject_arrivals(arrivals);
  sim.run_until(30.0);
  sim.run_all();
  EXPECT_EQ(system.sink().completed(), 20u);
  EXPECT_EQ(system.sink().light_served_fraction(), 1.0);
}

TEST_F(ServingIntegration, DirectModeSplitsByProbability) {
  sim::Simulation sim;
  SystemConfig cfg;
  cfg.total_workers = 8;
  cfg.slo_seconds = 10.0;
  cfg.model_load_delay = 0.1;
  cfg.seed = 99;
  ServingSystem system(sim, *workload_, *repo_,
                       repo_->cascade(models::catalog::kCascade1), disc_,
                       *scorer_, cfg);
  AllocationPlan plan;
  plan.mode = RoutingMode::kDirect;
  plan.light_workers = 2;
  plan.heavy_workers = 6;
  plan.p_heavy = 0.5;
  system.apply(plan);
  std::vector<double> arrivals;
  for (int i = 0; i < 200; ++i) arrivals.push_back(0.1 + i * 0.4);
  system.inject_arrivals(arrivals);
  sim.run_until(120.0);
  sim.run_all();
  const double light_frac = system.sink().light_served_fraction();
  EXPECT_NEAR(light_frac, 0.5, 0.12);
}

TEST_F(ServingIntegration, ReconfigurationPreservesQueries) {
  sim::Simulation sim;
  SystemConfig cfg;
  cfg.total_workers = 4;
  cfg.slo_seconds = 20.0;
  cfg.model_load_delay = 0.2;
  ServingSystem system(sim, *workload_, *repo_,
                       repo_->cascade(models::catalog::kCascade1), disc_,
                       *scorer_, cfg);
  AllocationPlan plan;
  plan.light_workers = 3;
  plan.heavy_workers = 1;
  plan.threshold = 0.3;
  system.apply(plan);
  std::vector<double> arrivals;
  for (int i = 0; i < 30; ++i) arrivals.push_back(0.1 * i);
  system.inject_arrivals(arrivals);
  // Mid-stream, flip the split; queued queries must be re-routed, not lost.
  sim.schedule_at(1.5, [&] {
    AllocationPlan p2 = plan;
    p2.light_workers = 1;
    p2.heavy_workers = 3;
    system.apply(p2);
  });
  sim.run_until(60.0);
  sim.run_all();
  EXPECT_EQ(system.sink().total(), 30u);  // nothing vanished
}

TEST_F(ServingIntegration, SinkMetrics) {
  MetricsSink sink(*workload_, *scorer_);
  Query q = make_query(0, 0.0, 5.0, 5.0);
  sink.complete(q, 2, 1.0);  // on time
  Query late = make_query(1, 0.0, 5.0, 5.0);
  sink.complete(late, 5, 6.0);  // late
  Query dropped = make_query(2, 0.0, 5.0, 5.0);
  sink.drop(dropped, 7.0);
  EXPECT_EQ(sink.total(), 3u);
  EXPECT_NEAR(sink.violation_ratio(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(sink.mean_latency(), 3.5, 1e-12);
  EXPECT_NEAR(sink.light_served_fraction(), 1.0, 1e-12);  // none deferred
}

TEST_F(ServingIntegration, SinkTimelineWindows) {
  MetricsSink sink(*workload_, *scorer_);
  for (int i = 0; i < 100; ++i) {
    Query q = make_query(static_cast<std::uint64_t>(i), i * 0.5,
                         i * 0.5 + 5.0, 0.0);
    sink.complete(q, 2, i * 0.5 + 1.0);
  }
  const auto timeline = sink.timeline(10.0, 8);
  ASSERT_GE(timeline.size(), 5u);
  for (const auto& pt : timeline) {
    EXPECT_GE(pt.violation_ratio, 0.0);
    EXPECT_LE(pt.violation_ratio, 1.0);
    if (pt.samples >= 8) EXPECT_GT(pt.fid, 0.0);
  }
}

TEST_F(ServingIntegration, PlanExceedingClusterRejected) {
  sim::Simulation sim;
  SystemConfig cfg;
  cfg.total_workers = 2;
  ServingSystem system(sim, *workload_, *repo_,
                       repo_->cascade(models::catalog::kCascade1), disc_,
                       *scorer_, cfg);
  AllocationPlan plan;
  plan.light_workers = 2;
  plan.heavy_workers = 2;
  EXPECT_THROW(system.apply(plan), std::invalid_argument);
}

TEST_F(ServingIntegration, SparesJoinLightPool) {
  sim::Simulation sim;
  SystemConfig cfg;
  cfg.total_workers = 6;
  ServingSystem system(sim, *workload_, *repo_,
                       repo_->cascade(models::catalog::kCascade1), disc_,
                       *scorer_, cfg);
  AllocationPlan plan;
  plan.light_workers = 1;
  plan.heavy_workers = 2;
  system.apply(plan);
  EXPECT_EQ(system.balancer().light_stats().workers, 4);  // 1 + 3 spares
  EXPECT_EQ(system.balancer().heavy_stats().workers, 2);
}

TEST_F(ServingIntegration, ExecLatencyIncludesDiscriminator) {
  sim::Simulation sim;
  SystemConfig cfg;
  cfg.total_workers = 2;
  ServingSystem system(sim, *workload_, *repo_,
                       repo_->cascade(models::catalog::kCascade1), disc_,
                       *scorer_, cfg);
  const auto& light =
      repo_->model(models::catalog::kSdTurbo).latency.execution_latency(1);
  EXPECT_GT(system.light_exec_latency(1), light);
  EXPECT_NEAR(system.heavy_exec_latency(1), 1.78, 1e-9);
}

}  // namespace
}  // namespace diffserve::serving
