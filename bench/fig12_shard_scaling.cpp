// Figure 12: sharded serving at equal total capacity — shard count x
// wire hop latency, DES topology (src/cluster over loopback links).
//
// Every configuration serves the same constant-rate trace with the same
// total worker count; only the partitioning changes. The bare engine row
// is the reference (the 1-shard cluster is decision-identical to it —
// tests/cluster_test.cpp holds that exactly), so any goodput gap is the
// cost of sharding itself: worker-apportionment rounding when the global
// §3.3 decision splits across shard budgets, consistent-hash load spread,
// and the modeled frame hop latency eating into each query's SLO budget.
//
// Expected shape: at zero hop latency sharding is close to free (the
// controller still solves one global allocation; only integer rounding
// of per-shard worker counts costs anything); goodput degrades gracefully
// as hop latency grows since every query pays two hops (submit +
// terminal) plus the control plane's stats/plan round trips.
//
//   --smoke   2- and 4-shard cells at zero hop vs the bare engine, with
//             the CI gate: sharded goodput >= 0.9x the bare engine's at
//             equal total workers.
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "cluster/cluster_run.hpp"
#include "control/exhaustive_allocator.hpp"

using namespace diffserve;

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  const std::size_t workload = smoke ? 600 : 1200;
  const double duration = smoke ? 40.0 : 120.0;
  const double qps = 12.0;
  const int total_workers = 12;
  const std::vector<int> shard_counts =
      smoke ? std::vector<int>{2, 4} : std::vector<int>{1, 2, 4};
  const std::vector<double> hops =
      smoke ? std::vector<double>{0.0}
            : std::vector<double>{0.0, 0.005, 0.02};

  const auto env = bench::make_env(workload);
  const auto tr = trace::RateTrace::constant(qps, duration);

  bench::banner("Figure 12",
                "shard scaling: shards x hop latency, equal total workers");
  bench::ReportTable table(
      "fig12_shard_scaling",
      {"config", "shards", "hop_ms", "fid", "violation_ratio",
       "mean_latency", "goodput_qps", "plans_pushed"},
      {14, 8, 8, 8, 16, 14, 13, 14});

  // The reference: one engine holding all workers, no wire anywhere.
  core::RunConfig rc;
  rc.approach = core::Approach::kDiffServeExhaustive;
  rc.total_workers = total_workers;
  rc.trace = tr;
  rc.controller.initial_demand_guess = tr.qps_at(0.0);
  const auto bare = run_experiment(env, rc);
  const double bare_goodput =
      static_cast<double>(bare.completed + bare.dropped) *
      (1.0 - bare.violation_ratio) / duration;
  table.row(std::vector<std::string>{
      "bare_engine", "1", "0", bench::ReportTable::fmt(bare.overall_fid),
      bench::ReportTable::fmt(bare.violation_ratio),
      bench::ReportTable::fmt(bare.mean_latency),
      bench::ReportTable::fmt(bare_goodput),
      std::to_string(bare.reconfigurations)});

  control::ExhaustiveAllocator alloc;
  double worst_hop0_ratio = 1.0;
  for (const int shards : shard_counts) {
    for (const double hop : hops) {
      cluster::ClusterRunConfig cc;
      cc.shards = shards;
      cc.workers_per_shard = total_workers / shards;
      cc.hop_latency_seconds = hop;
      const auto r = run_cluster_des(env, alloc, tr, cc);

      char label[24];
      std::snprintf(label, sizeof(label), "s%d_hop%.0fms", shards,
                    1e3 * hop);
      table.row(std::vector<std::string>{
          label, std::to_string(shards), bench::ReportTable::fmt(1e3 * hop),
          bench::ReportTable::fmt(r.overall_fid),
          bench::ReportTable::fmt(r.violation_ratio),
          bench::ReportTable::fmt(r.mean_latency),
          bench::ReportTable::fmt(r.goodput_qps),
          std::to_string(r.cluster_reconfigurations)});
      if (hop == 0.0 && bare_goodput > 0.0)
        worst_hop0_ratio =
            std::min(worst_hop0_ratio, r.goodput_qps / bare_goodput);
    }
  }
  table.metric("scaling.bare_goodput_qps", bare_goodput);
  table.metric("scaling.worst_hop0_goodput_ratio", worst_hop0_ratio);

  std::printf("worst hop-0 sharded/bare goodput ratio: %.3f\n",
              worst_hop0_ratio);
  if (smoke && worst_hop0_ratio < 0.9) {
    std::fprintf(stderr,
                 "FAIL: sharded goodput %.3fx bare engine < 0.9x at equal "
                 "total workers, hop 0\n",
                 worst_hop0_ratio);
    return 1;
  }
  return 0;
}
