// MILP resource allocator — the paper's formulation (§3.3, Eq. 1-5),
// generalized to N-stage chains.
//
//   max sum_i phi_i                       (phi_i = cumulative deferral
//   s.t. sum_s e_s(b_s) + q_s <= L         fraction entering stage i+1)
//        x_0 T_0(b_0) >= lambda D
//        x_i T_i(b_i) >= lambda D phi_{i-1}      i = 1..N-1
//        phi_i <= fmax_i * phi_{i-1}             (grid range per boundary)
//        sum_i x_i <= S
//
// Linearization: batch choices become one-hot binaries y_{s,b}; the product
// x_s * T_s(b_s) becomes per-batch integer counts x_{s,b} <= S * y_{s,b}.
// Each boundary's deferral profile f_b(t) is monotone in t, so each
// t_b = f_b^{-1}(phi_b / phi_{b-1}) is recovered from its grid after the
// solve. For a two-stage chain (a single phi) maximizing phi is *exactly*
// the paper's max-t objective. For deeper chains, max sum(phi_b) — push as
// much demand as deep as capacity allows — is a deliberately chosen linear
// surrogate: it is monotone-aligned with raising thresholds but is not
// identical to the exhaustive oracle's max sum(t_b); on profiles with very
// different slopes the two criteria can pick different (equally feasible)
// threshold tuples. A small per-worker penalty breaks ties toward smaller
// deployments without affecting the threshold optimum.
//
// Falls back to the exhaustive allocator's overload plan when infeasible.
#pragma once

#include "control/allocator.hpp"
#include "milp/branch_and_bound.hpp"

namespace diffserve::control {

class MilpAllocator : public Allocator {
 public:
  /// Two equivalent formulations of the threshold choice:
  ///   * kContinuousDeferral (default) — the continuous phi variables
  ///     described above. Far fewer binaries -> millisecond solves in the
  ///     control loop; the only formulation defined for chains deeper than
  ///     two stages.
  ///   * kThresholdGrid — the paper's literal one-hot z_k grid over the
  ///     single boundary of a two-stage cascade. Same optimum (asserted in
  ///     tests); kept for fidelity and benchmarking. Deeper chains would
  ///     need products of one-hot selections, so chains with more than one
  ///     boundary automatically use the continuous formulation.
  enum class Formulation { kContinuousDeferral, kThresholdGrid };

  explicit MilpAllocator(Formulation formulation = Formulation::kContinuousDeferral,
                         milp::MilpOptions options = {});

  AllocationDecision allocate(const AllocationInput& input) override;
  std::string name() const override { return "milp"; }

  /// Build the MILP for an input (exposed for tests and the overhead
  /// bench). Variable layout documented in the implementation.
  static milp::Problem build_problem(const AllocationInput& input,
                                     Formulation formulation,
                                     double worker_penalty = 1e-6);

  /// Nodes explored by the last solve.
  int last_nodes() const { return last_nodes_; }

 private:
  Formulation formulation_;
  milp::MilpOptions options_;
  int last_nodes_ = 0;
};

}  // namespace diffserve::control
