#include "runtime/threaded_runtime.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "discriminator/deferral_profile.hpp"
#include "serving/query.hpp"
#include "stats/ewma.hpp"
#include "stats/window.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace diffserve::runtime {

namespace {

using Clock = std::chrono::steady_clock;
using serving::Query;
using serving::Stage;

/// Shared wall clock expressed in trace seconds.
class TraceClock {
 public:
  explicit TraceClock(double time_scale) : scale_(time_scale) {
    DS_REQUIRE(time_scale > 0.0, "time scale must be positive");
    start_ = Clock::now();
  }
  double now() const {
    return std::chrono::duration<double>(Clock::now() - start_).count() *
           scale_;
  }
  /// Sleep for `trace_seconds` of trace time.
  void sleep_for(double trace_seconds) const {
    if (trace_seconds <= 0.0) return;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(trace_seconds / scale_));
  }
  /// Sleep until the given trace time.
  void sleep_until(double trace_time) const {
    const double delta = trace_time - now();
    if (delta > 0.0) sleep_for(delta);
  }

 private:
  double scale_;
  Clock::time_point start_;
};

struct WorkerState {
  mutable std::mutex mu;
  std::condition_variable cv;
  std::deque<Query> queue;
  // Configuration (guarded by mu).
  bool is_heavy = false;
  int batch_size = 1;
  std::uint64_t config_epoch = 0;
  double ready_at = 0.0;  ///< model-load completion (trace time)

  std::size_t queue_length() const {
    std::lock_guard<std::mutex> lock(mu);
    return queue.size();
  }
};

struct SharedState {
  std::mutex sink_mu;
  std::vector<serving::Completion> completions;
  std::size_t dropped = 0;
  std::size_t late = 0;
  std::size_t light_served = 0;
  double latency_sum = 0.0;

  std::mutex stats_mu;
  stats::SlidingWindowCounter demand{12.0};
  std::size_t submitted = 0;

  std::mutex plan_mu;
  double threshold = 0.5;
  double heavy_reserve = 0.0;
  std::vector<int> light_pool;  // worker ids
  std::vector<int> heavy_pool;

  std::atomic<bool> stop{false};
};

}  // namespace

RuntimeResult run_threaded(const core::CascadeEnvironment& env,
                           control::Allocator& allocator,
                           const trace::RateTrace& trace,
                           const RuntimeConfig& cfg) {
  DS_REQUIRE(cfg.total_workers >= 2, "need at least two workers");
  const double slo =
      cfg.slo_seconds > 0.0 ? cfg.slo_seconds : env.default_slo();
  const auto& repo = env.repository();
  const auto& cascade = env.cascade();
  const auto& light_model = repo.model(cascade.light_model);
  const auto& heavy_model = repo.model(cascade.heavy_model);
  const auto& disc_model = repo.model(cascade.discriminator);
  const int light_tier = env.light_tier();
  const int heavy_tier = env.heavy_tier();

  TraceClock clock(cfg.time_scale);
  SharedState shared;
  std::vector<std::unique_ptr<WorkerState>> workers;
  for (int i = 0; i < cfg.total_workers; ++i)
    workers.push_back(std::make_unique<WorkerState>());

  auto light_exec = [&](int b) {
    return light_model.latency.execution_latency(b) +
           disc_model.latency.execution_latency(b);
  };
  auto heavy_exec = [&](int b) {
    return heavy_model.latency.execution_latency(b);
  };

  auto record_completion = [&](const Query& q, int tier, double t_done) {
    std::lock_guard<std::mutex> lock(shared.sink_mu);
    serving::Completion c;
    c.query = q;
    c.completion_time = t_done;
    c.served_tier = tier;
    c.image_feature = env.workload().generated_feature(q.prompt_id, tier);
    shared.completions.push_back(std::move(c));
    if (t_done > q.deadline) ++shared.late;
    if (!q.deferred) ++shared.light_served;
    shared.latency_sum += t_done - q.arrival_time;
  };
  auto record_drop = [&](const Query&) {
    std::lock_guard<std::mutex> lock(shared.sink_mu);
    ++shared.dropped;
  };

  // JSQ over a pool snapshot; returns nullptr if the pool is empty.
  auto shortest = [&](const std::vector<int>& pool) -> WorkerState* {
    WorkerState* best = nullptr;
    std::size_t best_len = 0;
    for (const int id : pool) {
      const std::size_t len = workers[static_cast<std::size_t>(id)]->queue_length();
      if (best == nullptr || len < best_len) {
        best = workers[static_cast<std::size_t>(id)].get();
        best_len = len;
      }
    }
    return best;
  };

  auto route_heavy = [&](Query q) {
    std::vector<int> pool;
    {
      std::lock_guard<std::mutex> lock(shared.plan_mu);
      pool = shared.heavy_pool;
    }
    if (WorkerState* w = shortest(pool)) {
      std::lock_guard<std::mutex> lock(w->mu);
      w->queue.push_back(std::move(q));
      w->cv.notify_one();
    } else if (q.deferred) {
      record_completion(q, light_tier, clock.now());  // best-effort light
    } else {
      record_drop(q);
    }
  };

  auto route_light = [&](Query q) {
    std::vector<int> pool;
    double reserve;
    {
      std::lock_guard<std::mutex> lock(shared.plan_mu);
      pool = shared.light_pool;
      reserve = shared.heavy_reserve;
    }
    q.stage = Stage::kLight;
    q.stage_deadline = std::max(q.deadline - reserve, q.arrival_time);
    if (WorkerState* w = shortest(pool)) {
      std::lock_guard<std::mutex> lock(w->mu);
      w->queue.push_back(std::move(q));
      w->cv.notify_one();
    } else {
      q.stage = Stage::kHeavy;
      q.stage_deadline = q.deadline;
      route_heavy(std::move(q));
    }
  };

  // ---- worker threads ------------------------------------------------
  std::atomic<std::size_t> reconfigs{0};
  auto worker_main = [&](int id) {
    WorkerState& self = *workers[static_cast<std::size_t>(id)];
    for (;;) {
      std::vector<Query> batch;
      bool heavy;
      int b;
      {
        std::unique_lock<std::mutex> lock(self.mu);
        self.cv.wait_for(lock, std::chrono::milliseconds(2), [&] {
          return !self.queue.empty() || shared.stop.load();
        });
        if (shared.stop.load() && self.queue.empty()) return;
        if (self.queue.empty()) continue;
        heavy = self.is_heavy;
        b = self.batch_size;
        const double exec = heavy ? heavy_exec(b) : light_exec(b);
        // Lazy batching with the same caps as the DES worker.
        double tightest = self.queue.front().stage_deadline;
        for (const auto& q : self.queue)
          tightest = std::min(tightest, q.stage_deadline);
        const double now = clock.now();
        if (static_cast<int>(self.queue.size()) < b &&
            tightest - exec > now && now < self.ready_at) {
          continue;  // still loading the model
        }
        if (static_cast<int>(self.queue.size()) < b &&
            tightest - exec > now) {
          continue;  // wait for more queries (cv poll loop)
        }
        if (now < self.ready_at) continue;
        const double done_at = now + exec;
        while (!self.queue.empty() &&
               static_cast<int>(batch.size()) < b) {
          Query q = std::move(self.queue.front());
          self.queue.pop_front();
          if (done_at > q.stage_deadline) {
            record_drop(q);
            continue;
          }
          batch.push_back(std::move(q));
        }
      }
      if (batch.empty()) continue;
      const int eb = b;
      clock.sleep_for(heavy ? heavy_exec(eb) : light_exec(eb));
      const double t_done = clock.now();
      if (heavy) {
        for (auto& q : batch) record_completion(q, heavy_tier, t_done);
        continue;
      }
      double threshold;
      {
        std::lock_guard<std::mutex> lock(shared.plan_mu);
        threshold = shared.threshold;
      }
      for (auto& q : batch) {
        const auto feature =
            env.workload().generated_feature(q.prompt_id, light_tier);
        q.confidence = env.disc().confidence(feature);
        if (q.confidence >= threshold) {
          record_completion(q, light_tier, t_done);
        } else {
          q.deferred = true;
          q.stage = Stage::kHeavy;
          q.stage_deadline = q.deadline;
          route_heavy(std::move(q));
        }
      }
    }
  };

  // ---- controller ------------------------------------------------------
  control::StagePerfModel light_perf(light_model.latency,
                                     &disc_model.latency);
  control::StagePerfModel heavy_perf(heavy_model.latency, nullptr);
  stats::HoltEwma demand_holt(0.4, 0.3);
  demand_holt.observe(trace.qps_at(0.0));

  auto apply_plan = [&](const control::AllocationDecision& d) {
    int n_light = d.light_workers;
    int n_heavy = d.heavy_workers;
    const int spare = cfg.total_workers - n_light - n_heavy;
    if (n_light > 0 || n_heavy == 0)
      n_light += spare;
    else
      n_heavy += spare;
    std::vector<int> light_pool, heavy_pool;
    std::vector<Query> evicted;
    const double now = clock.now();
    // Stable-ish: first n_light ids light, rest heavy (ids are stable so
    // role churn is limited to the boundary).
    for (int id = 0; id < cfg.total_workers; ++id) {
      WorkerState& w = *workers[static_cast<std::size_t>(id)];
      const bool want_heavy = id >= n_light && n_heavy > 0;
      std::lock_guard<std::mutex> lock(w.mu);
      if (w.is_heavy != want_heavy) {
        w.ready_at = now + cfg.model_load_delay;
        for (auto& q : w.queue) evicted.push_back(std::move(q));
        w.queue.clear();
        ++reconfigs;
      }
      w.is_heavy = want_heavy;
      w.batch_size = want_heavy ? d.heavy_batch : d.light_batch;
      ++w.config_epoch;
      (want_heavy ? heavy_pool : light_pool).push_back(id);
    }
    {
      std::lock_guard<std::mutex> lock(shared.plan_mu);
      shared.light_pool = std::move(light_pool);
      shared.heavy_pool = std::move(heavy_pool);
      shared.threshold = d.threshold;
      shared.heavy_reserve =
          n_heavy > 0
              ? cfg.heavy_reserve_factor * heavy_exec(d.heavy_batch)
              : 0.0;
    }
    for (auto& q : evicted) {
      if (q.stage == Stage::kHeavy)
        route_heavy(std::move(q));
      else
        route_light(std::move(q));
    }
  };

  discriminator::OnlineDeferralProfile online(env.offline_profile(), 4000);
  auto controller_main = [&](double horizon) {
    double next_tick = 0.0;
    while (!shared.stop.load()) {
      clock.sleep_until(next_tick);
      if (shared.stop.load()) break;
      const double now = clock.now();
      double observed;
      {
        std::lock_guard<std::mutex> lock(shared.stats_mu);
        observed = shared.demand.rate(now);
      }
      if (now > 0.0) demand_holt.observe(observed);

      control::AllocationInput in;
      in.demand_qps = demand_holt.forecast(2.0);
      in.over_provision = cfg.over_provision;
      in.slo_seconds = slo;
      in.total_workers = cfg.total_workers;
      in.threshold_grid =
          env.offline_profile().grid(51, cfg.max_deferral_fraction);
      in.light = light_perf;
      in.heavy = heavy_perf;
      double lq = 0.0, hq = 0.0;
      {
        std::lock_guard<std::mutex> lock(shared.plan_mu);
        for (const int id : shared.light_pool)
          lq += static_cast<double>(
              workers[static_cast<std::size_t>(id)]->queue_length());
        for (const int id : shared.heavy_pool)
          hq += static_cast<double>(
              workers[static_cast<std::size_t>(id)]->queue_length());
      }
      in.light_queue_length = lq;
      in.light_arrival_rate = observed;
      in.heavy_queue_length = hq;
      in.heavy_arrival_rate = observed * 0.5;  // coarse: refined by relax
      apply_plan(allocator.allocate(in));
      next_tick = now + cfg.control_period;
      (void)horizon;
    }
  };

  // ---- client ----------------------------------------------------------
  util::Rng rng(cfg.arrival_seed);
  const auto arrivals = trace::generate_arrivals(trace, rng, cfg.arrivals);

  auto client_main = [&] {
    std::uint64_t seq = 0;
    for (const double t : arrivals) {
      clock.sleep_until(t);
      Query q;
      q.seq = seq;
      q.prompt_id =
          static_cast<quality::QueryId>(seq % env.workload().size());
      q.arrival_time = clock.now();
      q.deadline = q.arrival_time + slo;
      ++seq;
      {
        std::lock_guard<std::mutex> lock(shared.stats_mu);
        shared.demand.add(q.arrival_time);
        ++shared.submitted;
      }
      route_light(std::move(q));
    }
  };

  // ---- run ---------------------------------------------------------------
  std::thread controller_thread(controller_main, 2.0);
  std::vector<std::thread> worker_threads;
  worker_threads.reserve(static_cast<std::size_t>(cfg.total_workers));
  for (int i = 0; i < cfg.total_workers; ++i)
    worker_threads.emplace_back(worker_main, i);

  std::thread client_thread(client_main);
  client_thread.join();
  // Drain: give in-flight queries until trace end + SLO + margin.
  clock.sleep_until(trace.duration() + slo + 5.0);
  shared.stop.store(true);
  for (auto& w : workers) w->cv.notify_all();
  for (auto& t : worker_threads) t.join();
  controller_thread.join();

  // ---- results -------------------------------------------------------------
  RuntimeResult r;
  r.submitted = shared.submitted;
  r.completed = shared.completions.size();
  r.dropped = shared.dropped;
  r.reconfigurations = reconfigs.load();
  const std::size_t total = r.completed + r.dropped;
  r.violation_ratio =
      total ? static_cast<double>(shared.late + shared.dropped) /
                  static_cast<double>(total)
            : 0.0;
  r.mean_latency = r.completed ? shared.latency_sum /
                                     static_cast<double>(r.completed)
                               : 0.0;
  r.light_served_fraction =
      r.completed ? static_cast<double>(shared.light_served) /
                        static_cast<double>(r.completed)
                  : 0.0;
  if (r.completed >= 2) {
    linalg::GaussianAccumulator acc(env.workload().config().feature_dim);
    for (const auto& c : shared.completions) acc.add(c.image_feature);
    r.overall_fid = env.scorer().fid(acc.stats());
  } else {
    r.overall_fid = -1.0;
  }
  return r;
}

}  // namespace diffserve::runtime
