// Tests for the core facade: environment assembly, offline sweeps
// (Figure 1 methodology), the Pareto helper, and full end-to-end
// experiments for every approach (parameterized).
#include <gtest/gtest.h>

#include "core/environment.hpp"
#include "core/experiment.hpp"
#include "core/offline_eval.hpp"

namespace diffserve::core {
namespace {

const CascadeEnvironment& shared_env() {
  static const CascadeEnvironment env = [] {
    EnvironmentConfig cfg;
    cfg.workload_queries = 1000;
    cfg.discriminator.train_queries = 600;
    cfg.profile_queries = 600;
    return CascadeEnvironment(cfg);
  }();
  return env;
}

trace::RateTrace short_trace() {
  return trace::RateTrace::azure_like(3.0, 14.0, 90.0, 11);
}

TEST(Environment, AssemblesCascade1) {
  const auto& env = shared_env();
  EXPECT_EQ(env.cascade().name, models::catalog::kCascade1);
  EXPECT_EQ(env.light_tier(), 2);
  EXPECT_EQ(env.heavy_tier(), 5);
  EXPECT_EQ(env.default_slo(), 5.0);
  EXPECT_GT(env.offline_profile().sample_count(), 100u);
}

TEST(Environment, AssemblesThreeStageChain) {
  EnvironmentConfig cfg;
  cfg.cascade = models::catalog::kChain3;
  cfg.workload_queries = 600;
  cfg.discriminator.train_queries = 300;
  cfg.profile_queries = 300;
  const CascadeEnvironment env(cfg);
  EXPECT_EQ(env.stage_count(), 3u);
  ASSERT_EQ(env.boundary_count(), 2u);
  EXPECT_EQ(env.stage_tiers(), (std::vector<int>{1, 2, 5}));
  // One trained discriminator and offline profile per boundary.
  EXPECT_GT(env.offline_profile(0).sample_count(), 100u);
  EXPECT_GT(env.offline_profile(1).sample_count(), 100u);
  ASSERT_EQ(env.discs().size(), 2u);

  // And the chain serves end-to-end through the standard experiment
  // driver: all three stages produce completions.
  RunConfig rc;
  rc.approach = Approach::kDiffServeExhaustive;
  rc.total_workers = 8;
  rc.trace = trace::RateTrace::constant(6.0, 40.0);
  const auto r = run_experiment(env, rc);
  EXPECT_GT(r.completed, 100u);
  ASSERT_EQ(r.stage_served_fraction.size(), 3u);
  for (const double f : r.stage_served_fraction) EXPECT_GT(f, 0.0);
  EXPECT_GT(r.overall_fid, 0.0);
}

TEST(OfflineEval, DeferralSweepEndpoints) {
  SweepOptions opts;
  opts.points = 5;
  opts.eval_queries = 600;
  const auto pts =
      sweep_cascade(shared_env(), RoutingSignal::kDiscriminator, opts);
  ASSERT_EQ(pts.size(), 5u);
  EXPECT_NEAR(pts.front().actual_deferral, 0.0, 1e-9);
  EXPECT_NEAR(pts.back().actual_deferral, 1.0, 1e-9);
  // Latency rises with deferral (heavy pass added).
  EXPECT_GT(pts.back().avg_latency_s, pts.front().avg_latency_s);
}

TEST(OfflineEval, DiscriminatorBeatsRandomAtMidDeferral) {
  SweepOptions opts;
  opts.points = 5;  // 0, .25, .5, .75, 1
  opts.eval_queries = 600;
  opts.random_repeats = 5;
  const auto disc =
      sweep_cascade(shared_env(), RoutingSignal::kDiscriminator, opts);
  const auto rand = sweep_cascade(shared_env(), RoutingSignal::kRandom, opts);
  // At 50% deferral the learned router must be clearly better (Fig. 1a).
  EXPECT_LT(disc[2].fid, rand[2].fid - 0.5);
}

TEST(OfflineEval, ProxyMetricsDoNotBeatRandom) {
  SweepOptions opts;
  opts.points = 5;
  opts.eval_queries = 600;
  opts.random_repeats = 5;
  const auto rand = sweep_cascade(shared_env(), RoutingSignal::kRandom, opts);
  const auto pick =
      sweep_cascade(shared_env(), RoutingSignal::kPickScore, opts);
  const auto clip =
      sweep_cascade(shared_env(), RoutingSignal::kClipScore, opts);
  // Mid-sweep, neither proxy should improve on random (§2.2's finding).
  EXPECT_GE(pick[2].fid, rand[2].fid - 0.3);
  EXPECT_GE(clip[2].fid, rand[2].fid - 0.3);
}

TEST(OfflineEval, OracleIsLowerBound) {
  SweepOptions opts;
  opts.points = 5;
  opts.eval_queries = 600;
  const auto disc =
      sweep_cascade(shared_env(), RoutingSignal::kDiscriminator, opts);
  const auto oracle =
      sweep_cascade(shared_env(), RoutingSignal::kOracle, opts);
  EXPECT_LE(oracle[2].fid, disc[2].fid + 0.2);
}

TEST(OfflineEval, EndpointsAgreeAcrossSignals) {
  // At deferral 0 and 1 the routing signal is irrelevant.
  SweepOptions opts;
  opts.points = 3;
  opts.eval_queries = 500;
  const auto a =
      sweep_cascade(shared_env(), RoutingSignal::kDiscriminator, opts);
  const auto b =
      sweep_cascade(shared_env(), RoutingSignal::kPickScore, opts);
  EXPECT_NEAR(a.front().fid, b.front().fid, 1e-9);
  EXPECT_NEAR(a.back().fid, b.back().fid, 1e-9);
}

TEST(OfflineEval, SingleModelPoints) {
  const auto pts = single_model_points(
      shared_env(), {models::catalog::kSdTurbo, models::catalog::kSdV15});
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_GT(pts[0].fid, pts[1].fid);             // light is worse
  EXPECT_LT(pts[0].avg_latency_s, pts[1].avg_latency_s);
}

TEST(ParetoFront, KeepsOnlyNonDominated) {
  const std::vector<std::pair<double, double>> pts = {
      {1.0, 5.0}, {2.0, 3.0}, {3.0, 4.0}, {4.0, 1.0}, {5.0, 2.0}};
  const auto front = pareto_front_min_min(pts);
  // (3,4) dominated by (2,3); (5,2) dominated by (4,1).
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 1, 3}));
}

TEST(ParetoFront, SinglePoint) {
  EXPECT_EQ(pareto_front_min_min({{1.0, 1.0}}).size(), 1u);
}

class EveryApproach : public ::testing::TestWithParam<Approach> {};

TEST_P(EveryApproach, RunsToCompletionWithSaneMetrics) {
  RunConfig rc;
  rc.approach = GetParam();
  rc.total_workers = 8;
  rc.trace = short_trace();
  const auto r = run_experiment(shared_env(), rc);
  // Conservation: every submitted query terminates exactly once.
  EXPECT_EQ(r.submitted, r.completed + r.dropped);
  EXPECT_GT(r.submitted, 100u);
  EXPECT_GE(r.violation_ratio, 0.0);
  EXPECT_LE(r.violation_ratio, 1.0);
  if (r.completed >= 2) {
    EXPECT_GT(r.overall_fid, 0.0);
    EXPECT_LT(r.overall_fid, 60.0);
  }
  EXPECT_GE(r.mean_latency, 0.0);
  EXPECT_FALSE(r.timeline.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllApproaches, EveryApproach,
    ::testing::Values(Approach::kDiffServe, Approach::kDiffServeExhaustive,
                      Approach::kDiffServeStatic, Approach::kClipperLight,
                      Approach::kClipperHeavy, Approach::kProteus,
                      Approach::kAblationStaticThreshold,
                      Approach::kAblationAimdBatching,
                      Approach::kAblationNoQueueModel),
    [](const auto& info) {
      std::string n = to_string(info.param);
      for (auto& c : n)
        if (c == '-') c = '_';
      return n;
    });

TEST(Experiment, DiffServeBeatsClipperLightOnQuality) {
  RunConfig rc;
  rc.total_workers = 8;
  rc.trace = short_trace();
  rc.approach = Approach::kDiffServe;
  const auto ds = run_experiment(shared_env(), rc);
  rc.approach = Approach::kClipperLight;
  const auto cl = run_experiment(shared_env(), rc);
  EXPECT_LT(ds.overall_fid, cl.overall_fid);
}

TEST(Experiment, DiffServeBeatsClipperHeavyOnViolations) {
  RunConfig rc;
  rc.total_workers = 8;
  rc.trace = short_trace();
  rc.approach = Approach::kDiffServe;
  const auto ds = run_experiment(shared_env(), rc);
  rc.approach = Approach::kClipperHeavy;
  const auto ch = run_experiment(shared_env(), rc);
  EXPECT_LT(ds.violation_ratio, ch.violation_ratio);
}

TEST(Experiment, ControllerHistoryRecorded) {
  RunConfig rc;
  rc.total_workers = 8;
  rc.trace = short_trace();
  const auto r = run_experiment(shared_env(), rc);
  EXPECT_GT(r.control_history.size(), 10u);
  EXPECT_GT(r.mean_solve_ms, 0.0);
  for (const auto& h : r.control_history) {
    EXPECT_LE(h.decision.light_workers() + h.decision.heavy_workers(), 8);
    EXPECT_GE(h.decision.threshold(), 0.0);
    EXPECT_LE(h.decision.threshold(), 1.0);
  }
}

TEST(Experiment, DeterministicForSameSeeds) {
  RunConfig rc;
  rc.total_workers = 8;
  rc.trace = short_trace();
  const auto a = run_experiment(shared_env(), rc);
  const auto b = run_experiment(shared_env(), rc);
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.overall_fid, b.overall_fid);
  EXPECT_DOUBLE_EQ(a.violation_ratio, b.violation_ratio);
}

TEST(Experiment, RequiresTrace) {
  RunConfig rc;  // no trace set
  EXPECT_THROW(run_experiment(shared_env(), rc), std::invalid_argument);
}

TEST(Approaches, NamesAndComparisonList) {
  EXPECT_STREQ(to_string(Approach::kDiffServe), "DiffServe");
  EXPECT_STREQ(to_string(Approach::kClipperHeavy), "Clipper-Heavy");
  EXPECT_EQ(comparison_approaches().size(), 5u);
}

}  // namespace
}  // namespace diffserve::core
