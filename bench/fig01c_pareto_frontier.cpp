// Figure 1c: FID vs. serving throughput over the full configuration space
// (confidence threshold x batch sizes x worker placement on 10 GPUs) for
// the SD-Turbo + SDv1.5 cascade, with the Pareto frontier highlighted.
// ~9K configurations, matching the paper's sweep.
#include <algorithm>
#include <cmath>

#include "bench_common.hpp"
#include "core/environment.hpp"
#include "core/offline_eval.hpp"
#include "discriminator/deferral_profile.hpp"

using namespace diffserve;

int main() {
  core::EnvironmentConfig ec;
  ec.workload_queries = 3000;
  core::CascadeEnvironment env(ec);
  const auto& repo = env.repository();
  const auto& cascade = env.cascade();
  const auto& light = repo.model(cascade.light_model).latency;
  const auto& heavy = repo.model(cascade.heavy_model).latency;
  const auto& disc = repo.model(cascade.discriminator).latency;
  constexpr int kWorkers = 10;

  // FID depends only on the threshold (which queries are deferred);
  // precompute it per grid point from the discriminator sweep.
  const auto grid = env.offline_profile().grid(26);
  core::SweepOptions so;
  so.points = 26;
  so.eval_queries = 3000;
  const auto sweep =
      core::sweep_cascade(env, core::RoutingSignal::kDiscriminator, so);
  auto fid_for_fraction = [&](double f) {
    double best_fid = sweep.back().fid;
    double best_gap = 1e9;
    for (const auto& p : sweep) {
      const double gap = std::fabs(p.actual_deferral - f);
      if (gap < best_gap) {
        best_gap = gap;
        best_fid = p.fid;
      }
    }
    return best_fid;
  };

  util::CsvWriter csv(
      bench::csv_path("fig01c_pareto"),
      {"threshold", "fraction", "b1", "b2", "x1", "x2", "qps", "fid",
       "pareto"});

  struct Point {
    double qps, fid;
    double threshold;
    int b1, b2, x1;
  };
  std::vector<Point> points;
  for (const auto& g : grid) {
    const double fid = fid_for_fraction(g.fraction);
    for (const int b1 : light.batch_sizes()) {
      const double e1 = light.execution_latency(b1) +
                        disc.execution_latency(b1);
      const double t1 = b1 / e1;
      for (const int b2 : heavy.batch_sizes()) {
        const double t2 = heavy.throughput(b2);
        for (int x1 = 1; x1 < kWorkers; ++x1) {
          const int x2 = kWorkers - x1;
          // System throughput: light pool bounds total; heavy pool bounds
          // deferred fraction.
          double qps = x1 * t1;
          if (g.fraction > 1e-9)
            qps = std::min(qps, x2 * t2 / g.fraction);
          points.push_back({qps, fid, g.threshold, b1, b2, x1});
        }
      }
    }
  }

  // Pareto frontier: maximize qps, minimize fid -> minimize (-qps, fid).
  std::vector<std::pair<double, double>> for_front;
  for_front.reserve(points.size());
  for (const auto& p : points) for_front.push_back({-p.qps, p.fid});
  const auto front = core::pareto_front_min_min(for_front);
  std::vector<bool> is_front(points.size(), false);
  for (const auto idx : front) is_front[idx] = true;

  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    csv.add_row(std::vector<double>{p.threshold,
                                    0.0,  // fraction folded into fid lookup
                                    static_cast<double>(p.b1),
                                    static_cast<double>(p.b2),
                                    static_cast<double>(p.x1),
                                    static_cast<double>(kWorkers - p.x1),
                                    p.qps, p.fid,
                                    is_front[i] ? 1.0 : 0.0});
  }

  bench::banner("Figure 1c", "FID vs serving throughput, 10 GPUs, ~9K configs");
  std::printf("configurations evaluated: %zu\n", points.size());
  std::printf("Pareto frontier (throughput QPS -> FID):\n");
  std::printf("%-10s %-8s %-10s %-4s %-4s %-4s\n", "qps", "fid",
              "threshold", "b1", "b2", "x1");
  for (const auto idx : front) {
    const auto& p = points[idx];
    std::printf("%-10.2f %-8.2f %-10.3f %-4d %-4d %-4d\n", p.qps, p.fid,
                p.threshold, p.b1, p.b2, p.x1);
  }
  std::printf("[csv] %s\n", bench::csv_path("fig01c_pareto").c_str());
  return 0;
}
