#include "stats/window.hpp"

#include "util/check.hpp"

namespace diffserve::stats {

SlidingWindowCounter::SlidingWindowCounter(double window_seconds,
                                           double origin)
    : window_(window_seconds), origin_(origin) {
  DS_REQUIRE(window_seconds > 0.0, "window must be positive");
}

void SlidingWindowCounter::add(double time_seconds, double weight) {
  DS_REQUIRE(events_.empty() || time_seconds >= events_.back().first,
             "timestamps must be non-decreasing");
  events_.emplace_back(time_seconds, weight);
}

void SlidingWindowCounter::evict(double now) const {
  while (!events_.empty() && events_.front().first <= now - window_)
    events_.pop_front();
}

double SlidingWindowCounter::total(double now) const {
  evict(now);
  double s = 0.0;
  for (const auto& [t, w] : events_)
    if (t <= now) s += w;
  return s;
}

double SlidingWindowCounter::rate(double now) const {
  const double elapsed = now - origin_;
  const double effective =
      elapsed > 0.0 ? std::min(window_, elapsed) : window_;
  return total(now) / std::max(effective, 1e-6);
}

void SlidingWindowCounter::reset() { events_.clear(); }

SlidingWindowRatio::SlidingWindowRatio(double window_seconds)
    : bad_(window_seconds), all_(window_seconds) {}

void SlidingWindowRatio::record(double time_seconds, bool bad) {
  all_.add(time_seconds, 1.0);
  if (bad) bad_.add(time_seconds, 1.0);
}

double SlidingWindowRatio::ratio(double now) const {
  const double n = all_.total(now);
  if (n == 0.0) return 0.0;
  return bad_.total(now) / n;
}

double SlidingWindowRatio::total(double now) const { return all_.total(now); }

void SlidingWindowRatio::reset() {
  bad_.reset();
  all_.reset();
}

}  // namespace diffserve::stats
