// Figure 11: the approximate prompt-reuse cache across capacity and
// prompt-popularity skew.
//
// Sweeps cache capacity (0 = cache off) x Zipf exponent on a Zipfian
// prompt stream with temporal locality, at fixed demand and cluster size.
// Expected shape: hit ratio grows with both capacity and skew; mean
// latency and the SLO-violation ratio fall as the cache absorbs repeated
// prompts and the cache-aware controller re-provisions for the effective
// demand; FID pays a bounded reuse-noise cost that shrinks as capacity
// lets more queries hit exactly instead of approximately.
//
//   --smoke   one small combination (CI: exercises the JSON emission)
#include <cstring>

#include "bench_common.hpp"
#include "trace/prompt_mix.hpp"

using namespace diffserve;

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  const std::size_t workload = smoke ? 600 : 2000;
  const double duration = smoke ? 60.0 : 120.0;
  const std::vector<std::size_t> capacities =
      smoke ? std::vector<std::size_t>{128}
            : std::vector<std::size_t>{0, 64, 256, 1024};
  const std::vector<double> skews =
      smoke ? std::vector<double>{1.1} : std::vector<double>{0.7, 1.1, 1.4};

  const auto env = bench::make_env(workload);
  const auto tr = trace::RateTrace::constant(10.0, duration);

  bench::banner("Figure 11",
                "prompt-reuse cache: capacity x Zipf skew, 8 GPUs, SLO 5 s");
  bench::ReportTable table(
      "fig11_cache_reuse",
      {"config", "capacity", "zipf_s", "hit_ratio", "exact_ratio", "fid",
       "violation_ratio", "mean_latency", "light_pct"},
      {16, 10, 8, 11, 13, 8, 16, 14, 11});

  for (const double s : skews) {
    // The cache-off baseline is swept per skew too: the Zipfian stream
    // changes the served mix even without reuse.
    for (const std::size_t cap : capacities) {
      core::RunConfig rc;
      rc.approach = core::Approach::kDiffServe;
      rc.total_workers = 8;
      rc.slo_seconds = 5.0;
      rc.trace = tr;
      rc.system.prompt_mix.kind = trace::PromptMixConfig::Kind::kZipf;
      rc.system.prompt_mix.zipf_exponent = s;
      rc.system.prompt_mix.locality = 0.3;
      if (cap > 0) {
        rc.system.cache.enabled = true;
        rc.system.cache.capacity = cap;
      }
      const auto r = run_experiment(env, rc);

      char label[32];
      std::snprintf(label, sizeof(label), "cap%zu_s%.1f", cap, s);
      table.row(std::vector<std::string>{
          label, std::to_string(cap), bench::ReportTable::fmt(s),
          bench::ReportTable::fmt(r.cache_hit_ratio),
          bench::ReportTable::fmt(r.cache_exact_hit_ratio),
          bench::ReportTable::fmt(r.overall_fid),
          bench::ReportTable::fmt(r.violation_ratio),
          bench::ReportTable::fmt(r.mean_latency),
          bench::ReportTable::fmt(100.0 * r.light_served_fraction)});
    }
  }
  return 0;
}
