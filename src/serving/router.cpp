#include "serving/router.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/log.hpp"

namespace diffserve::serving {

LoadBalancer::LoadBalancer(sim::Simulation& sim,
                           const quality::Workload& workload,
                           const discriminator::Discriminator* disc,
                           int light_tier, int heavy_tier, MetricsSink& sink,
                           std::uint64_t seed)
    : sim_(sim),
      workload_(workload),
      disc_(disc),
      light_tier_(light_tier),
      heavy_tier_(heavy_tier),
      sink_(sink),
      rng_(seed) {}

void LoadBalancer::set_pools(std::vector<SimWorker*> light,
                             std::vector<SimWorker*> heavy) {
  light_pool_ = std::move(light);
  heavy_pool_ = std::move(heavy);
  bind_callbacks();
}

void LoadBalancer::bind_callbacks() {
  for (auto* w : light_pool_) {
    w->set_callbacks(
        [this](SimWorker&, std::vector<Query>&& batch) {
          on_light_batch(std::move(batch));
        },
        [this](SimWorker&, Query&& q) { sink_.drop(q, sim_.now()); });
  }
  for (auto* w : heavy_pool_) {
    w->set_callbacks(
        [this](SimWorker&, std::vector<Query>&& batch) {
          on_heavy_batch(std::move(batch));
        },
        [this](SimWorker&, Query&& q) { sink_.drop(q, sim_.now()); });
  }
}

void LoadBalancer::set_config(const RouterConfig& cfg) {
  DS_REQUIRE(cfg.threshold >= 0.0 && cfg.threshold <= 1.0,
             "threshold outside [0,1]");
  DS_REQUIRE(cfg.p_heavy >= 0.0 && cfg.p_heavy <= 1.0,
             "p_heavy outside [0,1]");
  DS_REQUIRE(cfg.heavy_reserve >= 0.0, "negative heavy reserve");
  cfg_ = cfg;
}

void LoadBalancer::set_confidence_observer(
    std::function<void(double)> observer) {
  confidence_observer_ = std::move(observer);
}

void LoadBalancer::submit(Query q) {
  ++submitted_;
  demand_.add(sim_.now());
  if (cfg_.mode == RoutingMode::kDirect && rng_.bernoulli(cfg_.p_heavy)) {
    q.stage = Stage::kHeavy;
    q.stage_deadline = q.deadline;
    route_heavy(std::move(q));
    return;
  }
  q.stage = Stage::kLight;
  // In cascade mode, leave room for the possible heavy pass.
  q.stage_deadline =
      cfg_.mode == RoutingMode::kCascade
          ? std::max(q.deadline - cfg_.heavy_reserve, q.arrival_time)
          : q.deadline;
  route_light(std::move(q));
}

void LoadBalancer::resubmit(std::vector<Query>&& queries) {
  for (auto& q : queries) {
    if (q.stage == Stage::kHeavy)
      route_heavy(std::move(q));
    else
      route_light(std::move(q));
  }
}

void LoadBalancer::route_light(Query q) {
  SimWorker* w = shortest_queue(light_pool_);
  if (w == nullptr) {
    // No lightweight capacity (e.g. Clipper-Heavy): go straight to heavy.
    if (!heavy_pool_.empty()) {
      q.stage = Stage::kHeavy;
      q.stage_deadline = q.deadline;
      route_heavy(std::move(q));
      return;
    }
    sink_.drop(q, sim_.now());
    return;
  }
  w->enqueue(std::move(q));
}

void LoadBalancer::route_heavy(Query q) {
  SimWorker* w = shortest_queue(heavy_pool_);
  if (w == nullptr) {
    // No heavyweight capacity. A deferred query still has a light image —
    // serve it best-effort; a direct-mode query falls back to light.
    if (q.deferred) {
      sink_.complete(q, light_tier_, sim_.now());
      return;
    }
    if (!light_pool_.empty()) {
      q.stage = Stage::kLight;
      q.stage_deadline = q.deadline;
      route_light(std::move(q));
      return;
    }
    sink_.drop(q, sim_.now());
    return;
  }
  w->enqueue(std::move(q));
}

SimWorker* LoadBalancer::shortest_queue(
    const std::vector<SimWorker*>& pool) const {
  SimWorker* best = nullptr;
  std::size_t best_len = 0;
  for (auto* w : pool) {
    if (!w->configured()) continue;
    const std::size_t len = w->queue_length() + (w->busy() ? 1 : 0);
    if (best == nullptr || len < best_len) {
      best = w;
      best_len = len;
    }
  }
  return best;
}

void LoadBalancer::on_light_batch(std::vector<Query>&& batch) {
  const double now = sim_.now();
  for (auto& q : batch) {
    if (cfg_.mode == RoutingMode::kDirect) {
      sink_.complete(q, light_tier_, now);
      continue;
    }
    // Cascade: score the light image with the discriminator.
    DS_CHECK(disc_ != nullptr, "cascade mode requires a discriminator");
    const auto feature = workload_.generated_feature(q.prompt_id, light_tier_);
    q.confidence = disc_->confidence(feature);
    if (confidence_observer_) confidence_observer_(q.confidence);
    if (q.confidence >= cfg_.threshold) {
      sink_.complete(q, light_tier_, now);
    } else {
      q.deferred = true;
      q.stage = Stage::kHeavy;
      q.stage_deadline = q.deadline;
      route_heavy(std::move(q));
    }
  }
}

void LoadBalancer::on_heavy_batch(std::vector<Query>&& batch) {
  const double now = sim_.now();
  for (auto& q : batch) sink_.complete(q, heavy_tier_, now);
}

double LoadBalancer::demand_rate() const { return demand_.rate(sim_.now()); }

LoadBalancer::PoolStats LoadBalancer::light_stats() const {
  PoolStats s;
  for (const auto* w : light_pool_) {
    s.total_queue_length += static_cast<double>(w->queue_length());
    s.arrival_rate += w->arrival_rate();
    ++s.workers;
  }
  return s;
}

LoadBalancer::PoolStats LoadBalancer::heavy_stats() const {
  PoolStats s;
  for (const auto* w : heavy_pool_) {
    s.total_queue_length += static_cast<double>(w->queue_length());
    s.arrival_rate += w->arrival_rate();
    ++s.workers;
  }
  return s;
}

}  // namespace diffserve::serving
