// Tests for stats: streaming moments, percentiles, EWMA/Holt estimators,
// histograms/CDFs, sliding windows.
#include <gtest/gtest.h>

#include <cmath>

#include "stats/ewma.hpp"
#include "stats/histogram.hpp"
#include "stats/streaming.hpp"
#include "stats/window.hpp"
#include "util/rng.hpp"

namespace diffserve::stats {
namespace {

TEST(RunningStats, MatchesDirectComputation) {
  RunningStats s;
  const std::vector<double> xs = {1.0, 4.0, 2.0, 8.0, 5.0};
  double sum = 0.0;
  for (double x : xs) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / xs.size();
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= xs.size();
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 8.0);
  EXPECT_EQ(s.count(), xs.size());
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.mean(), 3.0);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(Percentile, ExactOnKnownData) {
  PercentileTracker p;
  for (int i = 1; i <= 100; ++i) p.add(i);
  EXPECT_NEAR(p.percentile(0.0), 1.0, 1e-12);
  EXPECT_NEAR(p.percentile(100.0), 100.0, 1e-12);
  EXPECT_NEAR(p.median(), 50.5, 1e-9);
  EXPECT_NEAR(p.percentile(99.0), 99.01, 0.2);
}

TEST(Percentile, InterleavedAddAndQuery) {
  PercentileTracker p;
  p.add(10.0);
  EXPECT_EQ(p.percentile(50.0), 10.0);
  p.add(20.0);
  EXPECT_NEAR(p.median(), 15.0, 1e-12);
}

TEST(Percentile, EmptyThrows) {
  PercentileTracker p;
  EXPECT_THROW(p.percentile(50.0), std::invalid_argument);
}

TEST(Ewma, FirstObservationInitializes) {
  Ewma e(0.5);
  EXPECT_FALSE(e.has_value());
  e.observe(10.0);
  EXPECT_EQ(e.value(), 10.0);
}

TEST(Ewma, ConvergesToConstant) {
  Ewma e(0.3);
  for (int i = 0; i < 100; ++i) e.observe(7.0);
  EXPECT_NEAR(e.value(), 7.0, 1e-9);
}

TEST(Ewma, RecursionMatchesDefinition) {
  Ewma e(0.25);
  e.observe(0.0);
  e.observe(8.0);
  EXPECT_NEAR(e.value(), 2.0, 1e-12);  // 0.25*8
}

TEST(Ewma, InvalidAlphaThrows) {
  EXPECT_THROW(Ewma(0.0), std::invalid_argument);
  EXPECT_THROW(Ewma(1.5), std::invalid_argument);
}

TEST(Holt, TracksLinearRampExactlyInTheLimit) {
  HoltEwma h(0.5, 0.5);
  for (int i = 0; i < 200; ++i) h.observe(3.0 * i);
  // On a pure ramp the trend converges to the slope.
  EXPECT_NEAR(h.trend(), 3.0, 0.05);
  // Forecast h steps ahead lands on the ramp.
  EXPECT_NEAR(h.forecast(2.0), 3.0 * 199 + 2.0 * 3.0, 1.0);
}

TEST(Holt, ConstantSeriesHasZeroTrend) {
  HoltEwma h(0.4, 0.3);
  for (int i = 0; i < 50; ++i) h.observe(5.0);
  EXPECT_NEAR(h.trend(), 0.0, 1e-9);
  EXPECT_NEAR(h.forecast(10.0), 5.0, 1e-9);
}

TEST(Holt, ForecastNeverNegative) {
  HoltEwma h(0.5, 0.5);
  h.observe(10.0);
  h.observe(1.0);
  h.observe(0.1);
  EXPECT_GE(h.forecast(50.0), 0.0);
}

TEST(TimeDecayedEwma, HalfLifeSemantics) {
  TimeDecayedEwma e(10.0);
  e.observe(0.0, 100.0);
  e.observe(10.0, 0.0);  // one half-life later
  EXPECT_NEAR(e.value_at(10.0), 50.0, 1e-9);
}

TEST(Histogram, CountsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-5.0);  // clamps to first bin
  h.add(15.0);  // clamps to last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
}

TEST(Histogram, CdfMonotoneAndBounded) {
  util::Rng rng(3);
  Histogram h(0.0, 1.0, 20);
  for (int i = 0; i < 5000; ++i) h.add(rng.uniform());
  double prev = -1.0;
  for (double x = 0.0; x <= 1.0; x += 0.05) {
    const double c = h.cdf(x);
    EXPECT_GE(c, prev - 1e-12);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_NEAR(h.cdf(0.5), 0.5, 0.03);
}

TEST(Histogram, QuantileInvertsCdf) {
  util::Rng rng(5);
  Histogram h(0.0, 1.0, 50);
  for (int i = 0; i < 20000; ++i) h.add(rng.uniform());
  for (double q : {0.1, 0.5, 0.9}) {
    const double x = h.quantile(q);
    EXPECT_NEAR(h.cdf(x), q, 0.03);
  }
}

TEST(EmpiricalCdf, ExactSemantics) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(cdf.at(0.5), 0.0);
  EXPECT_EQ(cdf.at(2.0), 0.5);
  EXPECT_EQ(cdf.at(10.0), 1.0);
  EXPECT_EQ(cdf.quantile(0.5), 2.0);
  EXPECT_EQ(cdf.quantile(1.0), 4.0);
}

TEST(SlidingWindow, EvictsOldEvents) {
  SlidingWindowCounter c(10.0);
  c.add(0.0);
  c.add(5.0);
  c.add(9.0);
  EXPECT_NEAR(c.total(9.0), 3.0, 1e-12);
  EXPECT_NEAR(c.total(12.0), 2.0, 1e-12);  // t=0 evicted (<= now-window)
  EXPECT_NEAR(c.total(50.0), 0.0, 1e-12);
}

TEST(SlidingWindow, RateUsesElapsedBeforeFullWindow) {
  // 10 events in the first 2 seconds must read as ~5 QPS, not 10/window.
  SlidingWindowCounter c(20.0);
  for (int i = 0; i < 10; ++i) c.add(0.2 * i);
  EXPECT_NEAR(c.rate(2.0), 5.0, 0.1);
}

TEST(SlidingWindow, RateAfterFullWindow) {
  SlidingWindowCounter c(10.0);
  for (int i = 0; i < 100; ++i) c.add(static_cast<double>(i));
  // Window [90, 100): 10 events over 10 s.
  EXPECT_NEAR(c.rate(100.0), 1.0, 0.11);
}

TEST(SlidingWindow, NonMonotonicTimestampThrows) {
  SlidingWindowCounter c(10.0);
  c.add(5.0);
  EXPECT_THROW(c.add(4.0), std::invalid_argument);
}

TEST(SlidingWindowRatio, TracksBadFraction) {
  SlidingWindowRatio r(10.0);
  r.record(1.0, true);
  r.record(2.0, false);
  r.record(3.0, false);
  r.record(4.0, true);
  EXPECT_NEAR(r.ratio(5.0), 0.5, 1e-12);
  // At t=13.5 only the t=4 event (bad) survives the 10 s window.
  EXPECT_NEAR(r.ratio(13.5), 1.0, 1e-12);
  EXPECT_NEAR(r.ratio(30.0), 0.0, 1e-12);
}

}  // namespace
}  // namespace diffserve::stats
