#include "models/model_repository.hpp"

#include "util/check.hpp"

namespace diffserve::models {

void CascadeSpec::normalize() {
  if (chain.empty()) {
    chain = {light_model, heavy_model};
  } else {
    light_model = chain.front();
    heavy_model = chain.back();
  }
  if (discriminators.empty() && !discriminator.empty())
    discriminators.assign(boundary_count(), discriminator);
  else if (discriminators.size() == 1 && boundary_count() > 1)
    discriminators.assign(boundary_count(), discriminators.front());
  if (!discriminators.empty()) discriminator = discriminators.front();
}

const std::string& CascadeSpec::stage_model(std::size_t s) const {
  DS_REQUIRE(!chain.empty() && s < chain.size(),
             "stage index outside the cascade chain");
  return chain[s];
}

const std::string& CascadeSpec::boundary_discriminator(std::size_t b) const {
  DS_REQUIRE(b < discriminators.size(),
             "boundary index outside the cascade chain");
  return discriminators[b];
}

ModelRepository ModelRepository::with_paper_catalog() {
  ModelRepository repo;

  // Diffusion variants; base latencies are the paper's A100-80GB
  // measurements (§4.1). quality_tier orders generators by fidelity and is
  // consumed by the synthetic quality model.
  repo.register_model({catalog::kSdxs, ModelKind::kDiffusion,
                       LatencyProfile::affine(0.05), /*quality_tier=*/1,
                       /*resolution=*/512});
  repo.register_model({catalog::kSdTurbo, ModelKind::kDiffusion,
                       LatencyProfile::affine(0.10), /*quality_tier=*/2,
                       /*resolution=*/512});
  repo.register_model({catalog::kSdV15, ModelKind::kDiffusion,
                       LatencyProfile::affine(1.78), /*quality_tier=*/5,
                       /*resolution=*/512});
  repo.register_model({catalog::kSdxlLightning, ModelKind::kDiffusion,
                       LatencyProfile::affine(0.50), /*quality_tier=*/3,
                       /*resolution=*/1024});
  repo.register_model({catalog::kSdxl, ModelKind::kDiffusion,
                       LatencyProfile::affine(6.0), /*quality_tier=*/6,
                       /*resolution=*/1024});

  // Discriminator backbones (latencies from §4.4: 10 / 2 / 5 ms). Their
  // execution is batch-friendly with negligible overhead.
  repo.register_model({catalog::kEfficientNet, ModelKind::kDiscriminator,
                       LatencyProfile::affine(0.010, 0.1), 0, 512});
  repo.register_model({catalog::kResNet, ModelKind::kDiscriminator,
                       LatencyProfile::affine(0.002, 0.1), 0, 512});
  repo.register_model({catalog::kViT, ModelKind::kDiscriminator,
                       LatencyProfile::affine(0.005, 0.1), 0, 512});

  // The paper's three cascades with their SLOs (§4.1). Pair-form specs:
  // the empty chain/discriminator vectors mean "derive from the pair
  // fields" (normalize() expands them).
  repo.register_cascade({catalog::kCascade1, catalog::kSdTurbo,
                         catalog::kSdV15, catalog::kEfficientNet, 5.0, {}, {}});
  repo.register_cascade({catalog::kCascade2, catalog::kSdxs, catalog::kSdV15,
                         catalog::kEfficientNet, 5.0, {}, {}});
  repo.register_cascade({catalog::kCascade3, catalog::kSdxlLightning,
                         catalog::kSdxl, catalog::kEfficientNet, 15.0, {}, {}});

  // Chain-form registrations: Cascade 1 re-registered as an explicit chain
  // (N=2 equivalence checks), the three-stage tiny->base->large chain, and
  // the depth-1 solo deployment.
  CascadeSpec c1_chain;
  c1_chain.name = catalog::kCascade1Chain;
  c1_chain.chain = {catalog::kSdTurbo, catalog::kSdV15};
  c1_chain.discriminators = {catalog::kEfficientNet};
  c1_chain.slo_seconds = 5.0;
  repo.register_cascade(std::move(c1_chain));

  CascadeSpec chain3;
  chain3.name = catalog::kChain3;
  chain3.chain = {catalog::kSdxs, catalog::kSdTurbo, catalog::kSdV15};
  chain3.discriminators = {catalog::kEfficientNet, catalog::kEfficientNet};
  chain3.slo_seconds = 5.0;
  repo.register_cascade(std::move(chain3));

  CascadeSpec solo;
  solo.name = catalog::kSoloHeavy;
  solo.chain = {catalog::kSdV15};
  solo.slo_seconds = 5.0;
  repo.register_cascade(std::move(solo));
  return repo;
}

void ModelRepository::register_model(ModelVariant variant) {
  DS_REQUIRE(!variant.name.empty(), "model needs a name");
  DS_REQUIRE(models_.count(variant.name) == 0,
             "duplicate model registration: " + variant.name);
  models_.emplace(variant.name, std::move(variant));
}

void ModelRepository::register_cascade(CascadeSpec cascade) {
  DS_REQUIRE(!cascade.name.empty(), "cascade needs a name");
  cascade.normalize();
  DS_REQUIRE(!cascade.chain.empty(), "cascade needs at least one model");
  for (const auto& m : cascade.chain) {
    DS_REQUIRE(has_model(m), "unknown cascade model: " + m);
    DS_REQUIRE(model(m).kind == ModelKind::kDiffusion,
               "cascade stage must be a diffusion model: " + m);
  }
  DS_REQUIRE(cascade.discriminators.size() == cascade.boundary_count(),
             "cascade needs one discriminator per boundary");
  for (const auto& d : cascade.discriminators) {
    DS_REQUIRE(has_model(d), "unknown discriminator: " + d);
    DS_REQUIRE(model(d).kind == ModelKind::kDiscriminator,
               "cascade discriminator must be a discriminator model");
  }
  DS_REQUIRE(cascade.slo_seconds > 0.0, "SLO must be positive");
  DS_REQUIRE(cascades_.count(cascade.name) == 0,
             "duplicate cascade registration: " + cascade.name);
  cascades_.emplace(cascade.name, std::move(cascade));
}

bool ModelRepository::has_model(const std::string& name) const {
  return models_.count(name) > 0;
}

const ModelVariant& ModelRepository::model(const std::string& name) const {
  const auto it = models_.find(name);
  DS_REQUIRE(it != models_.end(), "unknown model: " + name);
  return it->second;
}

const CascadeSpec& ModelRepository::cascade(const std::string& name) const {
  const auto it = cascades_.find(name);
  DS_REQUIRE(it != cascades_.end(), "unknown cascade: " + name);
  return it->second;
}

std::vector<std::string> ModelRepository::model_names() const {
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [n, _] : models_) names.push_back(n);
  return names;
}

std::vector<std::string> ModelRepository::cascade_names() const {
  std::vector<std::string> names;
  names.reserve(cascades_.size());
  for (const auto& [n, _] : cascades_) names.push_back(n);
  return names;
}

}  // namespace diffserve::models
