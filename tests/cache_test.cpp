// Tests for the approximate prompt-reuse cache: the ApproxCache store
// (tiered hit levels, popularity-weighted LRU eviction, determinism), the
// Zipfian prompt sampler, the reuse-noise quality perturbation, and the
// end-to-end behaviour the subsystem exists for — on a Zipfian trace the
// cache absorbs repeated prompts (hit ratio > 0.2), lowers mean latency
// and SLO violations at equal capacity with a bounded FID cost, agrees
// across the DES and threaded backends, and feeds the controller's
// effective-demand discount.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "cache/approx_cache.hpp"
#include "engine/query.hpp"
#include "util/rng.hpp"
#include "control/exhaustive_allocator.hpp"
#include "core/environment.hpp"
#include "core/experiment.hpp"
#include "runtime/threaded_runtime.hpp"
#include "serving/system.hpp"
#include "trace/prompt_mix.hpp"

namespace diffserve::cache {
namespace {

std::vector<double> key_at(double x) { return {x, 0.0, 0.0}; }

CacheConfig small_config() {
  CacheConfig cfg;
  cfg.enabled = true;
  cfg.capacity = 4;
  cfg.exact_distance = 1e-9;
  cfg.near_distance = 1.0;
  cfg.far_distance = 2.0;
  return cfg;
}

TEST(ApproxCache, TieredHitLevelsByDistance) {
  ApproxCache cache(small_config());
  cache.insert(/*prompt=*/7, /*tier=*/2, /*stage=*/0, key_at(0.0), 0.0);

  const auto exact = cache.lookup(key_at(0.0), 1.0);
  EXPECT_EQ(exact.level, HitLevel::kExact);
  EXPECT_EQ(exact.donor_prompt, 7u);
  EXPECT_EQ(exact.donor_tier, 2);
  EXPECT_EQ(exact.step_fraction, 0.0);

  const auto near = cache.lookup(key_at(0.5), 2.0);
  EXPECT_EQ(near.level, HitLevel::kApproxNear);
  EXPECT_NEAR(near.distance, 0.5, 1e-12);
  EXPECT_EQ(near.step_fraction, cache.config().near_step_fraction);

  const auto far = cache.lookup(key_at(1.5), 3.0);
  EXPECT_EQ(far.level, HitLevel::kApproxFar);
  EXPECT_EQ(far.step_fraction, cache.config().far_step_fraction);

  const auto miss = cache.lookup(key_at(5.0), 4.0);
  EXPECT_EQ(miss.level, HitLevel::kMiss);
  EXPECT_EQ(miss.step_fraction, 1.0);

  const auto& s = cache.stats();
  EXPECT_EQ(s.lookups, 4u);
  EXPECT_EQ(s.exact_hits, 1u);
  EXPECT_EQ(s.near_hits, 1u);
  EXPECT_EQ(s.far_hits, 1u);
  EXPECT_NEAR(s.hit_ratio(), 0.75, 1e-12);
  EXPECT_NEAR(s.exact_hit_ratio(), 0.25, 1e-12);
}

TEST(ApproxCache, CapacityBoundWithEviction) {
  ApproxCache cache(small_config());
  for (int i = 0; i < 6; ++i)
    cache.insert(static_cast<quality::QueryId>(i), 1, 0,
                 key_at(10.0 * i), static_cast<double>(i));
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(ApproxCache, PopularEntriesSurviveEviction) {
  CacheConfig cfg = small_config();
  cfg.popularity_weight = 100.0;  // popularity dominates recency
  ApproxCache cache(cfg);
  cache.insert(0, 1, 0, key_at(0.0), 0.0);
  // Make entry 0 popular, then flood the cache with one-off entries.
  for (int i = 0; i < 8; ++i) cache.lookup(key_at(0.0), 1.0 + i);
  for (int i = 1; i < 8; ++i)
    cache.insert(static_cast<quality::QueryId>(i), 1, 0,
                 key_at(10.0 * i), 20.0 + i);
  // The popular entry outlived the LRU churn.
  const auto r = cache.lookup(key_at(0.0), 100.0);
  EXPECT_EQ(r.level, HitLevel::kExact);
  EXPECT_EQ(r.donor_prompt, 0u);
}

TEST(ApproxCache, ReinsertKeepsHigherTier) {
  ApproxCache cache(small_config());
  cache.insert(3, /*tier=*/5, /*stage=*/1, key_at(0.0), 0.0);
  cache.insert(3, /*tier=*/2, /*stage=*/0, key_at(0.0), 1.0);
  EXPECT_EQ(cache.size(), 1u);
  const auto r = cache.lookup(key_at(0.0), 2.0);
  EXPECT_EQ(r.donor_tier, 5);  // the lighter re-serve did not downgrade it
}

TEST(ApproxCache, CosineMetricIgnoresMagnitude) {
  CacheConfig cfg = small_config();
  cfg.metric = SimilarityMetric::kCosine;
  cfg.exact_distance = 1e-9;
  cfg.near_distance = 0.3;
  cfg.far_distance = 1.0;
  ApproxCache cache(cfg);
  cache.insert(1, 1, 0, {1.0, 0.0, 0.0}, 0.0);
  // Parallel but scaled: cosine distance 0 -> exact.
  EXPECT_EQ(cache.lookup({5.0, 0.0, 0.0}, 1.0).level, HitLevel::kExact);
  // Orthogonal: cosine distance 1 -> far tier.
  EXPECT_EQ(cache.lookup({0.0, 1.0, 0.0}, 2.0).level,
            HitLevel::kApproxFar);
  // Opposed: cosine distance 2 -> miss.
  EXPECT_EQ(cache.lookup({-1.0, 0.0, 0.0}, 3.0).level, HitLevel::kMiss);
}

TEST(ApproxCache, DeterministicAcrossInstances) {
  // The cache has no internal randomness: two instances fed the same
  // operation sequence report identical stats (the property that keeps
  // DES and threaded runs in agreement).
  ApproxCache a(small_config()), b(small_config());
  for (int i = 0; i < 40; ++i) {
    const double x = (i * 7) % 13 * 0.4;
    a.lookup(key_at(x), i);
    b.lookup(key_at(x), i);
    if (i % 3 == 0) {
      a.insert(static_cast<quality::QueryId>(i), 1, 0, key_at(x), i);
      b.insert(static_cast<quality::QueryId>(i), 1, 0, key_at(x), i);
    }
  }
  EXPECT_EQ(a.stats().lookups, b.stats().lookups);
  EXPECT_EQ(a.stats().exact_hits, b.stats().exact_hits);
  EXPECT_EQ(a.stats().near_hits, b.stats().near_hits);
  EXPECT_EQ(a.stats().far_hits, b.stats().far_hits);
  EXPECT_EQ(a.stats().evictions, b.stats().evictions);
  EXPECT_EQ(a.size(), b.size());
}

TEST(ApproxCache, DegenerateCosineVectorMatchesNothing) {
  // A near-zero-norm vector has no direction. The old code returned a
  // placeholder distance of 1.0, which far_distance >= 1 silently
  // classified as an approx-far hit.
  CacheConfig cfg = small_config();
  cfg.metric = SimilarityMetric::kCosine;
  cfg.near_distance = 0.5;
  cfg.far_distance = 1.9;  // wide: would swallow the old placeholder
  ApproxCache cache(cfg);
  cache.insert(1, 1, 0, {1.0, 0.0, 0.0}, 0.0);
  EXPECT_TRUE(std::isinf(cache.distance({0.0, 0.0, 0.0}, {1.0, 0.0, 0.0})));
  const auto r = cache.lookup({0.0, 0.0, 0.0}, 1.0);
  EXPECT_EQ(r.level, HitLevel::kMiss);
  EXPECT_EQ(r.step_fraction, 1.0);
}

TEST(ApproxCache, ReinsertRefreshesKey) {
  // A prompt whose style vector drifts must match against its current
  // key; the old refresh updated tier/stage but kept the stale key.
  ApproxCache cache(small_config());
  cache.insert(3, 1, 0, key_at(0.0), 0.0);
  EXPECT_EQ(cache.lookup(key_at(10.0), 1.0).level, HitLevel::kMiss);
  cache.insert(3, 1, 0, key_at(10.0), 2.0);  // refresh under the new key
  EXPECT_EQ(cache.size(), 1u);
  const auto hit = cache.lookup(key_at(10.0), 3.0);
  EXPECT_EQ(hit.level, HitLevel::kExact);
  EXPECT_EQ(hit.donor_prompt, 3u);
  EXPECT_EQ(cache.lookup(key_at(0.0), 4.0).level, HitLevel::kMiss);
}

TEST(ApproxCache, InterpolatedStepFractionFollowsDistanceAnchors) {
  CacheConfig cfg = small_config();
  cfg.exact_distance = 0.0;
  cfg.near_distance = 1.0;
  cfg.far_distance = 2.0;
  cfg.near_step_fraction = 0.4;
  cfg.far_step_fraction = 0.8;
  cfg.min_step_fraction = 0.05;
  cfg.interpolate_step_fraction = true;
  ApproxCache cache(cfg);
  // The tier constants are the anchors...
  EXPECT_NEAR(cache.approx_step_fraction(1.0), 0.4, 1e-12);
  EXPECT_NEAR(cache.approx_step_fraction(2.0), 0.8, 1e-12);
  // ...with linear segments between them and the min-fraction floor.
  EXPECT_NEAR(cache.approx_step_fraction(0.5), 0.05 + 0.5 * 0.35, 1e-12);
  EXPECT_NEAR(cache.approx_step_fraction(1.5), 0.6, 1e-12);
  EXPECT_NEAR(cache.approx_step_fraction(0.0), 0.05, 1e-12);
  // A lookup carries the interpolated fraction.
  cache.insert(1, 1, 0, key_at(0.0), 0.0);
  const auto r = cache.lookup(key_at(1.5), 1.0);
  EXPECT_EQ(r.level, HitLevel::kApproxFar);
  EXPECT_NEAR(r.step_fraction, 0.6, 1e-12);
  // Interpolation off: the same distances collapse to the constants.
  cfg.interpolate_step_fraction = false;
  ApproxCache tiered(cfg);
  EXPECT_EQ(tiered.approx_step_fraction(0.5), 0.4);
  EXPECT_EQ(tiered.approx_step_fraction(1.5), 0.8);
}

TEST(ApproxCache, LatentOnlyEntriesResumeInsteadOfServing) {
  CacheConfig cfg = small_config();
  cfg.latent_levels = true;
  ApproxCache cache(cfg);
  // A latent recorded at stage 1 without a terminal image: even an
  // exact-distance match cannot be served as-is — it resumes.
  cache.insert_latent(5, /*tier=*/2, /*stage=*/1, key_at(0.0), 0.0);
  auto r = cache.lookup(key_at(0.0), 1.0);
  EXPECT_EQ(r.level, HitLevel::kApproxNear);
  EXPECT_EQ(r.donor_prompt, 5u);
  EXPECT_EQ(r.donor_tier, 2);
  EXPECT_EQ(r.donor_stage, 1);
  EXPECT_EQ(r.level_mask, 0b10u);
  EXPECT_EQ(r.step_fraction, cache.config().near_step_fraction);
  EXPECT_EQ(cache.stats().latent_insertions, 1u);

  // The terminal image arrives later (the donor finished the chain at a
  // deeper stage): the entry upgrades to exact-servable and the level
  // mask covers both stages.
  cache.insert(5, /*tier=*/5, /*stage=*/2, key_at(0.0), 2.0);
  EXPECT_EQ(cache.size(), 1u);
  r = cache.lookup(key_at(0.0), 3.0);
  EXPECT_EQ(r.level, HitLevel::kExact);
  EXPECT_EQ(r.donor_tier, 5);
  EXPECT_EQ(r.level_mask, 0b110u);

  // A shallower latent joins the set without disturbing the deepest.
  cache.insert_latent(5, /*tier=*/1, /*stage=*/0, key_at(0.0), 4.0);
  r = cache.lookup(key_at(0.5), 5.0);  // approx: mask drives resumption
  EXPECT_EQ(r.level, HitLevel::kApproxNear);
  EXPECT_EQ(r.level_mask, 0b111u);
}

TEST(ApproxCache, StatsWeightStepFractionByStageCoverage) {
  // The controller's service-time discount consumes the stats sums; with
  // latent levels a donor covering only stage 0 of a 2-stage chain saves
  // steps at half the chain, so the recorded fraction is the coverage
  // blend (f + 1)/2, not the raw per-stage fraction.
  CacheConfig cfg = small_config();
  cfg.latent_levels = true;
  cfg.chain_stages = 2;
  ApproxCache cache(cfg);
  cache.insert_latent(5, /*tier=*/1, /*stage=*/0, key_at(0.0), 0.0);
  const auto r = cache.lookup(key_at(0.5), 1.0);
  ASSERT_EQ(r.level, HitLevel::kApproxNear);
  // The query-facing fraction stays per-stage...
  EXPECT_EQ(r.step_fraction, cfg.near_step_fraction);
  // ...the controller-facing sum is coverage-weighted.
  EXPECT_NEAR(cache.stats().near_step_fraction_sum,
              (cfg.near_step_fraction + 1.0) / 2.0, 1e-12);
  EXPECT_NEAR(cache.stats().step_fraction_sum,
              (cfg.near_step_fraction + 1.0) / 2.0, 1e-12);
}

TEST(ApproxCache, LshIndexRespectsCosineMetric) {
  // Cosine distance is magnitude-invariant; the index must bucket by
  // direction or a scaled duplicate (cosine distance 0) lands in distant
  // cells and the indexed lookup misses a hit the scan finds.
  CacheConfig cfg = small_config();
  cfg.metric = SimilarityMetric::kCosine;
  cfg.exact_distance = 1e-9;
  cfg.near_distance = 0.3;
  cfg.far_distance = 1.0;
  cfg.index_kind = IndexKind::kLsh;
  ApproxCache cache(cfg);
  cache.insert(1, 1, 0, {1.0, 0.0, 0.0}, 0.0);
  cache.insert(2, 1, 0, {0.0, 2.0, 0.0}, 1.0);
  const auto r = cache.lookup({5.0, 0.0, 0.0}, 2.0);  // parallel, scaled
  EXPECT_EQ(r.level, HitLevel::kExact);
  EXPECT_EQ(r.donor_prompt, 1u);
  // Orthogonal-but-scaled still classifies by direction.
  EXPECT_EQ(cache.lookup({0.0, 0.1, 0.0}, 3.0).donor_prompt, 2u);
  // A near (not exact) neighbour: cosine distance 0.02 is a chord of
  // 0.2 — a quarter cell under the chord-sized width, which the raw
  // near_distance-sized cells (0.3 cosine units) would have scattered
  // across several cells per projection.
  const double c = 0.98, s = std::sqrt(1.0 - 0.98 * 0.98);
  const auto near = cache.lookup({5.0 * c, 5.0 * s, 0.0}, 4.0);
  EXPECT_EQ(near.level, HitLevel::kApproxNear);
  EXPECT_EQ(near.donor_prompt, 1u);
  EXPECT_NEAR(near.distance, 0.02, 1e-12);
}

TEST(Query, StepFractionAtRespectsLevelMask) {
  engine::Query q;
  q.cache_step_fraction = 0.3;
  // Default all-ones mask: the fraction applies chain-wide.
  EXPECT_EQ(q.step_fraction_at(0), 0.3);
  EXPECT_EQ(q.step_fraction_at(2), 0.3);
  // With latent levels the donor only reached stages 0 and 1.
  q.cache_level_mask = 0b011u;
  EXPECT_EQ(q.step_fraction_at(0), 0.3);
  EXPECT_EQ(q.step_fraction_at(1), 0.3);
  EXPECT_EQ(q.step_fraction_at(2), 1.0);
}

TEST(ApproxCache, RejectsBadConfig) {
  CacheConfig cfg = small_config();
  cfg.capacity = 0;
  EXPECT_THROW(ApproxCache{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.near_distance = 3.0;  // near > far
  EXPECT_THROW(ApproxCache{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.lsh_target_recall = 1.0;  // unreachable bound would never stop
  EXPECT_THROW(ApproxCache{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.lsh_probe_budget = 0;
  EXPECT_THROW(ApproxCache{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.near_step_fraction = 0.0;
  EXPECT_THROW(ApproxCache{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.interpolate_step_fraction = true;
  cfg.min_step_fraction = 0.6;  // inverted anchors: closer costs more
  cfg.near_step_fraction = 0.4;
  EXPECT_THROW(ApproxCache{cfg}, std::invalid_argument);
  cfg.interpolate_step_fraction = false;  // dead knob when tiered
  EXPECT_NO_THROW(ApproxCache{cfg});
}

// ---- equivalence pinning --------------------------------------------------

/// Independent reimplementation of the PR-3 terminal-image cache — linear
/// scan, tiered constant step fractions, LRU+popularity eviction — plus
/// the two intended bugfixes (key refresh on re-insert; degenerate
/// distance handled by the shared distance()). Pins the interpolation-off
/// mode of the real cache: with interpolation, latent levels, and the
/// index all disabled, ApproxCache must reproduce this reference exactly,
/// operation for operation.
struct Pr3ReferenceCache {
  struct Entry {
    quality::QueryId prompt;
    int tier, stage;
    std::vector<double> key;
    std::uint64_t hits = 0;
    double last_used = 0.0;
    std::uint64_t order = 0;
  };
  const ApproxCache& metric;  // borrow distance() so the metric is shared
  CacheConfig cfg;
  std::vector<Entry> entries;
  std::uint64_t next_order = 0;
  std::uint64_t evictions = 0;

  LookupResult lookup(const std::vector<double>& key, double now) {
    Entry* best = nullptr;
    double best_d = std::numeric_limits<double>::infinity();
    for (auto& e : entries) {
      const double d = metric.distance(e.key, key);
      if (d < best_d) {
        best_d = d;
        best = &e;
      }
    }
    LookupResult r;
    if (best != nullptr && best_d <= cfg.far_distance) {
      if (best_d <= cfg.exact_distance) {
        r.level = HitLevel::kExact;
        r.step_fraction = 0.0;
      } else if (best_d <= cfg.near_distance) {
        r.level = HitLevel::kApproxNear;
        r.step_fraction = cfg.near_step_fraction;
      } else {
        r.level = HitLevel::kApproxFar;
        r.step_fraction = cfg.far_step_fraction;
      }
      r.donor_prompt = best->prompt;
      r.donor_tier = best->tier;
      r.donor_stage = best->stage;
      r.distance = best_d;
      ++best->hits;
      best->last_used = now;
    }
    return r;
  }

  void insert(quality::QueryId prompt, int tier, int stage,
              const std::vector<double>& key, double now) {
    for (auto& e : entries) {
      if (e.prompt == prompt) {
        if (tier >= e.tier) {
          e.tier = tier;
          e.stage = stage;
        }
        e.key = key;  // the key-refresh fix
        e.last_used = now;
        return;
      }
    }
    if (entries.size() >= cfg.capacity) {
      std::size_t victim = 0;
      double victim_score = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < entries.size(); ++i) {
        const double s =
            entries[i].last_used +
            cfg.popularity_weight *
                std::log1p(static_cast<double>(entries[i].hits));
        if (s < victim_score ||
            (s == victim_score && entries[i].order < entries[victim].order)) {
          victim_score = s;
          victim = i;
        }
      }
      entries[victim] = entries.back();
      entries.pop_back();
      ++evictions;
    }
    Entry e;
    e.prompt = prompt;
    e.tier = tier;
    e.stage = stage;
    e.key = key;
    e.last_used = now;
    e.order = next_order++;
    entries.push_back(std::move(e));
  }
};

TEST(ApproxCache, InterpolationOffModePinsPr3TieredBehavior) {
  // Randomized op sequences against the reference: every lookup result
  // and the eviction trajectory must agree exactly, across seeds.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    CacheConfig cfg;
    cfg.enabled = true;
    cfg.capacity = 12;
    cfg.exact_distance = 1e-9;
    cfg.near_distance = 1.0;
    cfg.far_distance = 2.0;
    cfg.index_kind = IndexKind::kScan;  // interpolation-off reference mode
    ApproxCache cache(cfg);
    Pr3ReferenceCache ref{cache, cfg, {}, 0, 0};

    util::Rng rng(seed * 7919 + 11);
    for (int op = 0; op < 300; ++op) {
      const double now = static_cast<double>(op);
      std::vector<double> key(3);
      for (auto& v : key) v = rng.uniform(0.0, 3.0);
      if (rng.bernoulli(0.5)) {
        const auto a = cache.lookup(key, now);
        const auto b = ref.lookup(key, now);
        ASSERT_EQ(a.level, b.level) << "seed " << seed << " op " << op;
        ASSERT_EQ(a.donor_prompt, b.donor_prompt);
        ASSERT_EQ(a.donor_tier, b.donor_tier);
        ASSERT_EQ(a.donor_stage, b.donor_stage);
        ASSERT_EQ(a.distance, b.distance);
        ASSERT_EQ(a.step_fraction, b.step_fraction);
      } else {
        // A small id pool exercises refresh; fresh ids exercise eviction.
        const auto prompt = static_cast<quality::QueryId>(
            rng.bernoulli(0.4) ? rng.uniform_int(0, 7)
                               : 100 + op);
        const int tier = static_cast<int>(rng.uniform_int(1, 5));
        const int stage = static_cast<int>(rng.uniform_int(0, 2));
        cache.insert(prompt, tier, stage, key, now);
        ref.insert(prompt, tier, stage, key, now);
      }
      ASSERT_EQ(cache.size(), ref.entries.size());
      ASSERT_EQ(cache.stats().evictions, ref.evictions);
    }
  }
}

TEST(ApproxCache, LshIndexMatchesScanAcross50Seeds) {
  // Eviction determinism of the indexed cache: on clustered keys (the
  // regime a reuse cache lives in) the LSH-indexed cache and the
  // brute-force scan must produce identical hit and evict sequences —
  // same donors, same distances, same victims — across 50 randomized op
  // sequences. Both backends drive the cache through the same guarded op
  // sequence, so agreement here is agreement there (asserted end-to-end
  // by DesAndThreadedBackendsAgreeWithCacheOn).
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    CacheConfig cfg;
    cfg.enabled = true;
    cfg.capacity = 24;  // small: constant eviction churn
    cfg.exact_distance = 1e-9;
    cfg.near_distance = 1.0;
    cfg.far_distance = 2.0;
    cfg.interpolate_step_fraction = true;
    cfg.latent_levels = true;
    CacheConfig scan_cfg = cfg;
    scan_cfg.index_kind = IndexKind::kScan;
    CacheConfig lsh_cfg = cfg;
    lsh_cfg.index_kind = IndexKind::kLsh;
    ApproxCache scan(scan_cfg), lsh(lsh_cfg);

    util::Rng rng(seed * 977 + 3);
    std::vector<double> key(6);
    for (int op = 0; op < 400; ++op) {
      const double now = static_cast<double>(op);
      // Clustered keys: 27 well-separated centers, tiny within-cluster
      // jitter — in-cluster neighbours are near-duplicates, cross-cluster
      // distances are far beyond the hit radius.
      const auto c = static_cast<std::uint32_t>(rng.uniform_int(0, 26));
      key[0] = 6.0 * static_cast<double>(c % 3);
      key[1] = 6.0 * static_cast<double>((c / 3) % 3);
      key[2] = 6.0 * static_cast<double>((c / 9) % 3);
      key[3] = key[4] = key[5] = 0.0;
      for (auto& v : key) v += rng.uniform(-0.03, 0.03);

      if (rng.bernoulli(0.45)) {
        const auto a = scan.lookup(key, now);
        const auto b = lsh.lookup(key, now);
        ASSERT_EQ(a.level, b.level) << "seed " << seed << " op " << op;
        ASSERT_EQ(a.donor_prompt, b.donor_prompt);
        ASSERT_EQ(a.distance, b.distance);
        ASSERT_EQ(a.step_fraction, b.step_fraction);
        ASSERT_EQ(a.level_mask, b.level_mask);
      } else {
        // Prompt ids cluster too, so re-inserts exercise the key-refresh
        // rebucketing path of the index.
        const auto prompt =
            static_cast<quality::QueryId>(c * 8 + rng.uniform_int(0, 5));
        const int tier = static_cast<int>(rng.uniform_int(1, 5));
        const int stage = static_cast<int>(rng.uniform_int(0, 2));
        if (rng.bernoulli(0.3)) {
          scan.insert_latent(prompt, tier, stage, key, now);
          lsh.insert_latent(prompt, tier, stage, key, now);
        } else {
          scan.insert(prompt, tier, stage, key, now);
          lsh.insert(prompt, tier, stage, key, now);
        }
      }
      ASSERT_EQ(scan.size(), lsh.size()) << "seed " << seed << " op " << op;
      ASSERT_EQ(scan.stats().evictions, lsh.stats().evictions);
      ASSERT_EQ(scan.stats().exact_hits, lsh.stats().exact_hits);
      ASSERT_EQ(scan.stats().near_hits, lsh.stats().near_hits);
      ASSERT_EQ(scan.stats().far_hits, lsh.stats().far_hits);
    }
    ASSERT_TRUE(lsh.indexed());
    ASSERT_FALSE(scan.indexed());
  }
}

TEST(ApproxCache, HeapEvictionMatchesScanAcross50Seeds) {
  // The lazy heap must evict byte-identically to the reference scan:
  // same victim, same order, on every eviction. The op mix is
  // hit-bump-heavy — repeated lookups of hot keys pile stale
  // (score, version) pairs onto the heap, the exact state lazy popping
  // and compaction must see through. popularity_weight sweeps from pure
  // LRU to popularity-dominated so ties and score inversions both occur.
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    CacheConfig cfg;
    cfg.enabled = true;
    cfg.capacity = 16;  // small: constant eviction churn
    cfg.near_distance = 1.0;
    cfg.far_distance = 2.0;
    cfg.popularity_weight = (seed % 3 == 0) ? 0.0 : (seed % 3 == 1 ? 5.0 : 100.0);
    cfg.index_kind = IndexKind::kScan;  // isolate the eviction path
    CacheConfig heap_cfg = cfg;
    heap_cfg.eviction_kind = EvictionKind::kHeap;
    CacheConfig scan_cfg = cfg;
    scan_cfg.eviction_kind = EvictionKind::kScan;
    ApproxCache heap(heap_cfg), scan(scan_cfg);

    util::Rng rng(seed * 6151 + 17);
    std::vector<double> hot = {0.0, 0.0, 0.0};
    for (int op = 0; op < 400; ++op) {
      // Coarse timestamps produce frequent exact score ties (resolved by
      // insertion order, which the heap must reproduce).
      const double now = static_cast<double>(op / 4);
      std::vector<double> key(3);
      for (auto& v : key) v = rng.uniform(0.0, 4.0);
      const double r = rng.uniform();
      if (r < 0.45) {
        // Hit-bump: probe near a hot key so the same few entries keep
        // re-scoring (each bump staling its previous heap pair).
        const auto& probe_key = rng.bernoulli(0.7) ? hot : key;
        const auto a = heap.lookup(probe_key, now);
        const auto b = scan.lookup(probe_key, now);
        ASSERT_EQ(a.level, b.level) << "seed " << seed << " op " << op;
        ASSERT_EQ(a.donor_prompt, b.donor_prompt);
        ASSERT_EQ(a.distance, b.distance);
      } else {
        const auto prompt = static_cast<quality::QueryId>(
            rng.bernoulli(0.3) ? rng.uniform_int(0, 9) : 100 + op);
        const int tier = static_cast<int>(rng.uniform_int(1, 5));
        heap.insert(prompt, tier, 0, key, now);
        scan.insert(prompt, tier, 0, key, now);
        if (rng.bernoulli(0.1)) hot = key;
      }
      // Identical entry vectors after every op pin the victim sequence:
      // a single divergent eviction would leave different prompts (or a
      // different swap-remove order) behind.
      ASSERT_EQ(heap.cached_prompts(), scan.cached_prompts())
          << "seed " << seed << " op " << op;
      ASSERT_EQ(heap.stats().evictions, scan.stats().evictions);
    }
    EXPECT_GT(heap.stats().evictions, 100u);  // the mix really churned
    // The bump-heavy mix forced lazy maintenance, not just clean pops.
    EXPECT_GT(heap.stats().heap_stale_pops + heap.stats().heap_compactions,
              0u);
    EXPECT_EQ(scan.stats().heap_stale_pops, 0u);
  }
}

TEST(ApproxCache, HeapEvictionInsertPathBeatsScanWhenFull) {
  // The microbenchmark claim behind the lazy heap: on a full cache every
  // insert evicts, the scan pays O(N) per victim and the heap O(log N).
  // 512 displacing inserts against 8192 entries is a >1000x gap in
  // score evaluations, so even noisy CI machines clear the 2x bar.
  const std::size_t cap = 8192, churn = 512;
  CacheConfig cfg;
  cfg.enabled = true;
  cfg.capacity = cap;
  cfg.index_kind = IndexKind::kScan;  // isolate eviction from LSH upkeep
  CacheConfig scan_cfg = cfg;
  scan_cfg.eviction_kind = EvictionKind::kScan;
  ApproxCache heap(cfg), scan(scan_cfg);
  ASSERT_EQ(cfg.eviction_kind, EvictionKind::kHeap);  // the default

  util::Rng rng(5);
  std::vector<double> key(4);
  double t = 0.0;
  for (std::size_t i = 0; i < cap; ++i) {
    for (auto& v : key) v = rng.normal();
    heap.insert(static_cast<quality::QueryId>(i), 1, 0, key, t += 1.0);
    scan.insert(static_cast<quality::QueryId>(i), 1, 0, key, t);
  }
  std::vector<std::vector<double>> fresh(churn, std::vector<double>(4));
  for (auto& k : fresh)
    for (auto& v : k) v = rng.normal();
  auto displace = [&](ApproxCache& c) {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < churn; ++i)
      c.insert(static_cast<quality::QueryId>(cap + i), 1, 0, fresh[i],
               t + static_cast<double>(i));
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(stop - start).count();
  };
  const double scan_s = displace(scan);
  const double heap_s = displace(heap);
  EXPECT_EQ(heap.stats().evictions, churn);
  EXPECT_EQ(scan.stats().evictions, churn);
  EXPECT_EQ(heap.cached_prompts(), scan.cached_prompts());
  EXPECT_LT(2.0 * heap_s, scan_s)
      << "heap " << heap_s << " s vs scan " << scan_s << " s";
}

TEST(ApproxCache, AdaptiveProbingRecoversFarEdgeRecall) {
  // The regime the fixed ±1 probing lost: a sparse population (typical
  // nearest neighbour beyond far_distance) probed near the far edge of
  // the hit radius. Adaptive probing must find nearly every far-edge
  // donor the exact scan finds; the fixed probing documents the decay.
  // Deterministic: fixed seeds, fixed config.
  const std::size_t entries = 20000, dim = 6;
  CacheConfig scan_cfg;
  scan_cfg.enabled = true;
  scan_cfg.capacity = entries;
  scan_cfg.index_kind = IndexKind::kScan;
  CacheConfig adaptive_cfg = scan_cfg;
  adaptive_cfg.index_kind = IndexKind::kLsh;
  CacheConfig fixed_cfg = adaptive_cfg;
  fixed_cfg.lsh_adaptive_probe = false;
  ApproxCache scan(scan_cfg), adaptive(adaptive_cfg), fixed(fixed_cfg);

  util::Rng rng(31);
  std::vector<std::vector<double>> keys(entries, std::vector<double>(dim));
  double t = 0.0;
  for (std::size_t i = 0; i < entries; ++i) {
    for (auto& v : keys[i]) v = rng.normal(0.0, 4.0);  // sparse spread
    scan.insert(static_cast<quality::QueryId>(i), 1, 0, keys[i], t += 1.0);
    adaptive.insert(static_cast<quality::QueryId>(i), 1, 0, keys[i], t);
    fixed.insert(static_cast<quality::QueryId>(i), 1, 0, keys[i], t);
  }
  int scan_hits = 0, adaptive_hits = 0, fixed_hits = 0;
  for (int i = 0; i < 150; ++i) {
    // Probes planted at 95% of the far radius from a cached donor.
    const auto& donor = keys[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(entries) - 1))];
    std::vector<double> dir(dim);
    double norm_sq = 0.0;
    for (auto& v : dir) {
      v = rng.normal();
      norm_sq += v * v;
    }
    auto p = donor;
    const double d = 0.95 * scan_cfg.far_distance;
    for (std::size_t j = 0; j < dim; ++j)
      p[j] += dir[j] * d / std::sqrt(norm_sq);
    if (scan.lookup(p, t += 1.0).level != HitLevel::kMiss) ++scan_hits;
    if (adaptive.lookup(p, t).level != HitLevel::kMiss) ++adaptive_hits;
    if (fixed.lookup(p, t).level != HitLevel::kMiss) ++fixed_hits;
  }
  ASSERT_GT(scan_hits, 100);  // the planted donors are in radius
  // Adaptive probing holds >= 90% of the exact scan's far-edge recall...
  EXPECT_GE(10 * adaptive_hits, 9 * scan_hits)
      << adaptive_hits << " of " << scan_hits;
  // ...where the near-tuned fixed probing finds almost nothing.
  EXPECT_LT(2 * fixed_hits, scan_hits) << fixed_hits << " of " << scan_hits;
  // Probe-depth accounting: adaptive lookups fanned out (sparse buckets
  // expand the yield-tuned budget) and the counters expose it.
  EXPECT_GT(adaptive.stats().mean_probed_cells(),
            fixed.stats().mean_probed_cells());
  EXPECT_GT(adaptive.stats().lsh_probe_candidates, 0u);
}

// ---- prompt popularity sampler --------------------------------------------

TEST(PromptSampler, RoundRobinMatchesModuloCycling) {
  trace::PromptSampler s(5);
  for (std::uint32_t i = 0; i < 12; ++i) EXPECT_EQ(s.next(), i % 5);
}

TEST(PromptSampler, ZipfSkewsTowardPopularPrompts) {
  trace::PromptMixConfig cfg;
  cfg.kind = trace::PromptMixConfig::Kind::kZipf;
  cfg.zipf_exponent = 1.2;
  cfg.locality = 0.0;
  trace::PromptSampler s(200, cfg);
  std::size_t top10 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (s.next() < 10) ++top10;
  // Under uniform sampling the top-10 share would be 5%; Zipf(1.2)
  // concentrates well over a third of the mass there.
  EXPECT_GT(static_cast<double>(top10) / n, 0.35);
}

TEST(PromptSampler, DeterministicPerSeed) {
  trace::PromptMixConfig cfg;
  cfg.kind = trace::PromptMixConfig::Kind::kZipf;
  trace::PromptSampler a(100, cfg), b(100, cfg);
  cfg.seed += 1;
  trace::PromptSampler c(100, cfg);
  bool any_diff = false;
  for (int i = 0; i < 200; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    any_diff = any_diff || va != c.next();
  }
  EXPECT_TRUE(any_diff);
}

TEST(PromptSampler, LocalityIncreasesShortRangeRepeats) {
  auto repeat_fraction = [](double locality) {
    trace::PromptMixConfig cfg;
    cfg.kind = trace::PromptMixConfig::Kind::kZipf;
    cfg.zipf_exponent = 0.6;  // mild skew so repeats come from locality
    cfg.locality = locality;
    cfg.locality_window = 16;
    trace::PromptSampler s(2000, cfg);
    std::deque<std::uint32_t> window;
    int repeats = 0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) {
      const auto id = s.next();
      for (const auto w : window)
        if (w == id) {
          ++repeats;
          break;
        }
      window.push_back(id);
      if (window.size() > 16) window.pop_front();
    }
    return static_cast<double>(repeats) / n;
  };
  EXPECT_GT(repeat_fraction(0.5), repeat_fraction(0.0) + 0.2);
}

// ---- reuse-noise quality perturbation -------------------------------------

TEST(Workload, CachedFeatureInheritsDonorPlusDistanceNoise) {
  quality::Workload w(64);
  const auto donor = w.generated_feature(3, 2);
  // Zero distance: the donor's image verbatim.
  EXPECT_EQ(w.cached_feature(9, 3, 2, 0.0), donor);
  // Deterministic per (q, donor, tier, distance).
  EXPECT_EQ(w.cached_feature(9, 3, 2, 1.0), w.cached_feature(9, 3, 2, 1.0));
  // Noise grows with distance.
  auto err = [&](double dist) {
    const auto x = w.cached_feature(9, 3, 2, dist);
    double sq = 0.0;
    for (std::size_t d = 0; d < x.size(); ++d)
      sq += (x[d] - donor[d]) * (x[d] - donor[d]);
    return std::sqrt(sq);
  };
  EXPECT_GT(err(0.5), 0.0);
  EXPECT_GT(err(4.0), err(0.5));
}

// ---- end-to-end: the cache as part of the serving stack -------------------

const core::CascadeEnvironment& shared_env() {
  static const core::CascadeEnvironment env = [] {
    core::EnvironmentConfig cfg;
    cfg.workload_queries = 600;
    cfg.discriminator.train_queries = 400;
    cfg.profile_queries = 400;
    return core::CascadeEnvironment(cfg);
  }();
  return env;
}

trace::PromptMixConfig zipf_mix() {
  trace::PromptMixConfig mix;
  mix.kind = trace::PromptMixConfig::Kind::kZipf;
  mix.zipf_exponent = 1.1;
  mix.locality = 0.3;
  return mix;
}

CacheConfig serving_cache() {
  // The full feature set: interpolated fractions, latent levels, and the
  // LSH index (forced on despite the small capacity so the end-to-end
  // suites cover the indexed lookup path on both backends).
  CacheConfig cfg;
  cfg.enabled = true;
  cfg.capacity = 128;
  cfg.interpolate_step_fraction = true;
  cfg.latent_levels = true;
  cfg.index_kind = IndexKind::kLsh;
  return cfg;
}

core::RunConfig zipf_run(const trace::RateTrace& tr) {
  core::RunConfig rc;
  rc.approach = core::Approach::kDiffServeExhaustive;
  rc.total_workers = 6;
  rc.trace = tr;
  rc.controller.initial_demand_guess = tr.qps_at(0.0);
  rc.system.prompt_mix = zipf_mix();
  return rc;
}

TEST(CacheServing, ZipfTraceHitsAndImprovesLatencyAndSlo) {
  const auto tr = trace::RateTrace::constant(10.0, 120.0);
  const auto off = core::run_experiment(shared_env(), zipf_run(tr));

  auto on_cfg = zipf_run(tr);
  on_cfg.system.cache = serving_cache();
  const auto on = core::run_experiment(shared_env(), on_cfg);

  // The repetition in the Zipfian trace is reused, not recomputed.
  EXPECT_GT(on.cache_hit_ratio, 0.2);
  EXPECT_GT(on.cache_exact_hit_ratio, 0.0);
  EXPECT_EQ(off.cache_hit_ratio, 0.0);

  // Equal capacity, identical arrivals: reuse buys latency and SLO.
  EXPECT_EQ(on.submitted, off.submitted);
  EXPECT_LT(on.mean_latency, off.mean_latency);
  EXPECT_LE(on.violation_ratio, off.violation_ratio);

  // Query conservation through the new cache terminal paths: after the
  // DES drains, every admitted query reached exactly one terminal
  // outcome — a double-completed exact hit or a completion lost behind a
  // pending hit_latency timer would break the equality.
  EXPECT_EQ(on.completed + on.dropped, on.submitted);

  // Reuse error is bounded: FID moves, but stays in the same band.
  ASSERT_GT(off.overall_fid, 0.0);
  ASSERT_GT(on.overall_fid, 0.0);
  EXPECT_LT(std::fabs(on.overall_fid - off.overall_fid),
            0.35 * off.overall_fid);
}

TEST(CacheServing, ControllerDiscountsDemandByExactHits) {
  const auto tr = trace::RateTrace::constant(10.0, 100.0);
  auto rc = zipf_run(tr);
  rc.system.cache = serving_cache();
  const auto r = core::run_experiment(shared_env(), rc);

  ASSERT_FALSE(r.control_history.empty());
  const auto& last = r.control_history.back();
  // The online EWMA saw the hits and the allocator planned for the
  // discounted effective demand.
  EXPECT_GT(last.cache_exact_hit_ratio, 0.05);
  EXPECT_LE(last.cache_service_discount, 1.0);
  EXPECT_LT(last.demand_estimate, 10.0);
  // The discount is estimated per hit level: the split EWMAs saw the
  // near/far mix of the non-exact traffic.
  EXPECT_GT(last.cache_near_hit_ratio + last.cache_far_hit_ratio, 0.0);
  EXPECT_LT(last.cache_service_discount, 1.0);
}

TEST(CacheServing, ExactHitsServeAtCacheLatency) {
  // Tiny workload + round-robin cycling: every prompt repeats every 64
  // queries, so a warm cache serves exact hits at hit_latency.
  core::EnvironmentConfig ec;
  ec.workload_queries = 64;
  ec.discriminator.train_queries = 64;
  ec.profile_queries = 64;
  const core::CascadeEnvironment env(ec);

  sim::Simulation sim;
  serving::SystemConfig cfg;
  cfg.total_workers = 2;
  cfg.slo_seconds = 10.0;
  cfg.cache = serving_cache();
  serving::ServingSystem system(sim, env.workload(), env.repository(),
                                env.cascade(), env.discs(), env.scorer(),
                                cfg);
  serving::AllocationPlan plan;
  plan.light_workers() = 1;
  plan.heavy_workers() = 1;
  plan.threshold() = 0.0;  // no deferrals; keep the flow simple
  system.apply(plan);

  std::vector<double> arrivals;
  for (int i = 0; i < 160; ++i) arrivals.push_back(0.5 * i);
  system.inject_arrivals(arrivals);
  sim.run_all();

  const auto stats = system.engine().cache_stats();
  // Second and later cycles hit. Not every repeat is exact: a prompt
  // whose first query approx-hit a neighbour is never inserted (approx
  // results stay out of the cache), so its repeats keep approx-hitting.
  EXPECT_GT(stats.exact_hits, 40u);
  EXPECT_GT(stats.hits(), 80u);
  // Conservation: each arrival terminated exactly once.
  EXPECT_EQ(system.sink().total(), 160u);
  const auto& sink = system.sink();
  EXPECT_GT(sink.hit_level_count(HitLevel::kExact), 0u);
  EXPECT_NEAR(sink.mean_cache_latency(), cfg.cache.hit_latency, 1e-9);
  EXPECT_LT(sink.mean_cache_latency(), sink.mean_latency());
}

TEST(CacheServing, ScaledDropDecisionKeepsHitHeavyBatch) {
  // Regression for the batch drop decision: it must use the cache-scaled
  // execution time. A mixed near-hit/miss batch whose deadline sits
  // between the scaled and the unscaled finish time survives only under
  // scaled timing — the old unscaled check dropped it wholesale.
  core::EnvironmentConfig ec;
  ec.cascade = models::catalog::kSoloHeavy;  // depth 1: no reserve math
  ec.workload_queries = 64;
  ec.discriminator.train_queries = 64;
  ec.profile_queries = 64;
  const core::CascadeEnvironment env(ec);

  // Find a donor-near prompt (the hit) and two donor-far prompts (the
  // batched miss and a filler that keeps the worker busy).
  const auto& donor_style = env.workload().style(0);
  auto l2 = [&](quality::QueryId q) {
    const auto& s = env.workload().style(q);
    double sq = 0.0;
    for (std::size_t d = 0; d < s.size(); ++d)
      sq += (s[d] - donor_style[d]) * (s[d] - donor_style[d]);
    return std::sqrt(sq);
  };
  quality::QueryId near_prompt = 1, far_a = 1, far_b = 1;
  double near_d = std::numeric_limits<double>::infinity();
  double far_d = 0.0, far_d2 = 0.0;
  for (quality::QueryId q = 1; q < 64; ++q) {
    const double d = l2(q);
    if (d < near_d) {
      near_d = d;
      near_prompt = q;
    }
    if (d > far_d) {
      far_d2 = far_d;
      far_b = far_a;
      far_d = d;
      far_a = q;
    } else if (d > far_d2) {
      far_d2 = d;
      far_b = q;
    }
  }
  ASSERT_LT(near_d, far_d2);

  sim::Simulation sim;
  serving::SystemConfig cfg;
  cfg.total_workers = 1;
  cfg.slo_seconds = 3.5;
  cfg.cache.enabled = true;
  cfg.cache.capacity = 16;
  // Thresholds bracketing the found prompts: the near prompt approx-hits
  // at the tiered near fraction, the far prompts miss.
  cfg.cache.near_distance = near_d + 0.01;
  cfg.cache.far_distance = near_d + 0.01;
  serving::ServingSystem system(sim, env.workload(), env.repository(),
                                env.cascade(), env.discs(), env.scorer(),
                                cfg);
  serving::AllocationPlan plan = serving::AllocationPlan::for_stages(1);
  plan.workers = {1};
  plan.batches = {2};
  system.apply(plan);

  const double exec2 = system.heavy_exec_latency(2);
  const double frac = cfg.cache.near_step_fraction;
  // The pair below waits 1.0 s behind the filler; its remaining slack at
  // launch must admit the scaled mixed batch but not the unscaled one.
  ASSERT_GT(exec2, cfg.slo_seconds - 1.0);
  ASSERT_LE((1.0 + frac) / 2.0 * exec2, cfg.slo_seconds - 1.0);

  auto submit = [&](quality::QueryId prompt) {
    engine::Query q;
    q.prompt_id = prompt;
    q.arrival_time = sim.now();
    q.deadline = sim.now() + cfg.slo_seconds;
    system.engine().submit(std::move(q));
  };
  // t=1.5: the donor generates, completes, and is cached.
  sim.schedule_at(1.5, [&] { submit(0); });
  // t=5.2: a filler occupies the worker until its own deadline.
  sim.schedule_at(5.2, [&] { submit(far_a); });
  // t=7.7: the mixed pair queues behind the filler; when the worker frees
  // their slack is below exec2 but above the scaled mixed-batch time.
  sim.schedule_at(7.7, [&] {
    submit(near_prompt);
    submit(far_b);
  });
  sim.run_all();

  // Unscaled timing would have dropped the pair (documented arithmetic:
  // the worker frees at the filler's deadline).
  const double free_at = 5.2 + cfg.slo_seconds;
  const double pair_deadline = 7.7 + cfg.slo_seconds;
  EXPECT_GT(free_at + exec2, pair_deadline);
  EXPECT_LE(free_at + (1.0 + frac) / 2.0 * exec2, pair_deadline);

  const auto& sink = system.sink();
  EXPECT_EQ(sink.completed(), 4u);
  EXPECT_EQ(sink.dropped(), 0u);
  EXPECT_EQ(sink.violation_ratio(), 0.0);
  EXPECT_EQ(system.engine().cache_stats().near_hits, 1u);
}

TEST(CacheServing, ScaledDropSacrificesSlowestViolatorOnly) {
  // Re-checking a batch against its scaled finish time must recompute the
  // mean after every drop and sacrifice the *slowest* violator first: in
  // a {near-hit, miss, miss, miss} batch whose deadline admits the mean
  // of three members but not four, exactly one miss is dropped and the
  // remaining three complete. Checking all members against the stale
  // four-member finish time (or dropping the fast hit first) would
  // cascade into dropping the whole batch.
  core::EnvironmentConfig ec;
  ec.cascade = models::catalog::kSoloHeavy;
  ec.workload_queries = 64;
  ec.discriminator.train_queries = 64;
  ec.profile_queries = 64;
  const core::CascadeEnvironment env(ec);

  const auto& donor_style = env.workload().style(0);
  auto l2 = [&](quality::QueryId q) {
    const auto& s = env.workload().style(q);
    double sq = 0.0;
    for (std::size_t d = 0; d < s.size(); ++d)
      sq += (s[d] - donor_style[d]) * (s[d] - donor_style[d]);
    return std::sqrt(sq);
  };
  std::vector<quality::QueryId> by_distance;
  for (quality::QueryId q = 1; q < 64; ++q) by_distance.push_back(q);
  std::sort(by_distance.begin(), by_distance.end(),
            [&](quality::QueryId a, quality::QueryId b) {
              return l2(a) < l2(b);
            });
  const quality::QueryId near_prompt = by_distance.front();
  // Five donor-far prompts: a filler plus four batched misses (the last
  // one only fits after a sacrifice frees its slot).
  const auto far_end = std::vector<quality::QueryId>(by_distance.end() - 5,
                                                     by_distance.end());
  ASSERT_GT(l2(far_end.front()), l2(near_prompt) + 0.02);

  sim::Simulation sim;
  serving::SystemConfig cfg;
  cfg.total_workers = 1;
  cfg.slo_seconds = 5.6;
  cfg.cache.enabled = true;
  cfg.cache.capacity = 16;
  cfg.cache.near_distance = l2(near_prompt) + 0.01;
  cfg.cache.far_distance = l2(near_prompt) + 0.01;
  serving::ServingSystem system(sim, env.workload(), env.repository(),
                                env.cascade(), env.discs(), env.scorer(),
                                cfg);
  serving::AllocationPlan plan = serving::AllocationPlan::for_stages(1);
  plan.workers = {1};
  plan.batches = {4};
  system.apply(plan);

  const double exec4 = system.heavy_exec_latency(4);
  const double frac = cfg.cache.near_step_fraction;
  // The quad below waits 1.0 s behind the filler. Its remaining slack
  // must admit the three-member mean (hit + 2 misses) but not the
  // four-member mean (hit + 3 misses).
  const double slack = cfg.slo_seconds - 1.0;
  ASSERT_GT((frac + 3.0) / 4.0 * exec4, slack);
  ASSERT_LE((frac + 2.0) / 3.0 * exec4, slack);

  std::uint64_t next_seq = 0;
  auto submit = [&](quality::QueryId prompt) {
    engine::Query q;
    q.seq = next_seq++;
    q.prompt_id = prompt;
    q.arrival_time = sim.now();
    q.deadline = sim.now() + cfg.slo_seconds;
    system.engine().submit(std::move(q));
  };
  sim.schedule_at(1.5, [&] { submit(0); });           // donor: cached at 7.1
  sim.schedule_at(7.3, [&] { submit(far_end[0]); });  // filler: busy to 12.9
  sim.schedule_at(11.9, [&] {                         // four fill the batch,
    submit(near_prompt);                              // the fifth queues
    submit(far_end[1]);
    submit(far_end[2]);
    submit(far_end[3]);
    submit(far_end[4]);
  });
  sim.run_all();

  // Each sacrifice frees a slot that is refilled from the queue before
  // the next scaled re-check: two misses are dropped, and the queued
  // fifth query rides the freed slot to an on-time completion (without
  // the refill it would languish a full batch execution and be dropped).
  const auto& sink = system.sink();
  EXPECT_EQ(sink.completed(), 5u);  // donor + filler + hit + two misses
  EXPECT_EQ(sink.dropped(), 2u);
  EXPECT_EQ(system.engine().cache_stats().near_hits, 1u);
  bool refilled_completed = false;
  for (const auto& rec : sink.records())
    if (rec.seq == 6) refilled_completed = !rec.dropped && !rec.violated;
  EXPECT_TRUE(refilled_completed);
}

TEST(CacheServing, LatentLevelsRecordBoundaryCrossings) {
  // With latent levels on, a cache-miss generation that defers leaves its
  // stage output behind as a resumable intermediate latent — so donors
  // exist even for prompts that never finished at the light stage.
  const auto& env = shared_env();
  sim::Simulation sim;
  serving::SystemConfig cfg;
  cfg.total_workers = 4;
  cfg.slo_seconds = 20.0;
  cfg.cache = serving_cache();
  serving::ServingSystem system(sim, env.workload(), env.repository(),
                                env.cascade(), env.discs(), env.scorer(),
                                cfg);
  serving::AllocationPlan plan;
  plan.light_workers() = 2;
  plan.heavy_workers() = 2;
  plan.threshold() = 0.95;  // defer aggressively: many boundary crossings
  system.apply(plan);

  std::vector<double> arrivals;
  for (int i = 0; i < 120; ++i) arrivals.push_back(0.4 * i);
  system.inject_arrivals(arrivals);
  sim.run_all();

  const auto stats = system.engine().cache_stats();
  EXPECT_GT(stats.latent_insertions, 0u);
  EXPECT_GT(stats.hits(), 0u);
  // Conservation through the latent-insert path.
  EXPECT_EQ(system.sink().total(), 120u);
}

TEST(CacheServing, DesAndThreadedBackendsAgreeWithCacheOn) {
  // The §4.3 parity property must survive the cache: same trace, same
  // Zipfian prompt stream, cache enabled on both backends.
  const auto tr = trace::RateTrace::azure_like(2.0, 8.0, 80.0, 7);

  auto sim_cfg = zipf_run(tr);
  sim_cfg.system.cache = serving_cache();
  const auto des = core::run_experiment(shared_env(), sim_cfg);

  control::ExhaustiveAllocator alloc;
  runtime::RuntimeConfig rt_cfg;
  rt_cfg.total_workers = 6;
  rt_cfg.time_scale = 30.0;
  rt_cfg.cache = serving_cache();
  rt_cfg.prompt_mix = zipf_mix();
  const auto threaded =
      runtime::run_threaded(shared_env(), alloc, tr, rt_cfg);

  EXPECT_EQ(des.submitted, threaded.submitted);
  // Conservation on the threaded backend: nothing terminates twice, and
  // at most a small in-flight slack remains unterminated at shutdown.
  EXPECT_LE(threaded.completed + threaded.dropped, threaded.submitted);
  EXPECT_GE(threaded.completed + threaded.dropped + 5, threaded.submitted);
  ASSERT_GT(des.overall_fid, 0.0);
  ASSERT_GT(threaded.overall_fid, 0.0);
  const double fid_rel_diff =
      std::fabs(des.overall_fid - threaded.overall_fid) / des.overall_fid;
  EXPECT_LT(fid_rel_diff, 0.05);
  EXPECT_LT(std::fabs(des.violation_ratio - threaded.violation_ratio),
            0.05);
  EXPECT_GT(threaded.cache_hit_ratio, 0.2);
  EXPECT_LT(std::fabs(des.cache_hit_ratio - threaded.cache_hit_ratio),
            0.05);
}

}  // namespace
}  // namespace diffserve::cache
