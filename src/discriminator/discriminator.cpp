#include "discriminator/discriminator.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace diffserve::discriminator {

namespace {

struct BackbonePreset {
  std::vector<std::size_t> hidden;
  double input_noise;
  double latency_seconds;
  const char* label;
};

BackbonePreset preset(Backbone b) {
  // Capacity and input degradation reproduce the §4.4 accuracy ordering
  // (EfficientNet > ViT > ResNet) and latencies (10/2/5 ms).
  switch (b) {
    case Backbone::kEfficientNet: return {{48, 32}, 0.00, 0.010, "EfficientNet"};
    case Backbone::kViT:          return {{24},     0.45, 0.005, "ViT"};
    case Backbone::kResNet:       return {{8},      0.90, 0.002, "ResNet"};
  }
  DS_CHECK(false, "unreachable backbone");
  return {};
}

}  // namespace

Discriminator::Discriminator(nn::MlpClassifier model, std::string name,
                             double inference_latency_seconds,
                             double temperature)
    : model_(std::move(model)),
      name_(std::move(name)),
      latency_(inference_latency_seconds),
      temperature_(temperature) {
  DS_REQUIRE(latency_ > 0.0, "latency must be positive");
  DS_REQUIRE(temperature_ > 0.0, "temperature must be positive");
}

double Discriminator::confidence(
    const std::vector<double>& image_feature) const {
  auto logits = model_.logits(image_feature);
  for (auto& l : logits) l /= temperature_;
  return nn::softmax(logits)[1];
}

std::string variant_name(const DiscriminatorConfig& cfg) {
  const std::string base = preset(cfg.backbone).label;
  return base + (cfg.real_source == RealSource::kGroundTruth ? " w GT"
                                                             : " w Fake");
}

Discriminator train_discriminator(const quality::Workload& workload,
                                  int light_tier, int heavy_tier,
                                  const DiscriminatorConfig& cfg) {
  DS_REQUIRE(cfg.train_queries >= 64, "too few training queries");
  const auto p = preset(cfg.backbone);
  const std::size_t n =
      std::min<std::size_t>(cfg.train_queries, workload.size());

  util::Rng rng(cfg.seed);
  std::vector<quality::QueryId> ids(workload.size());
  for (quality::QueryId q = 0; q < workload.size(); ++q) ids[q] = q;
  rng.shuffle(ids);
  ids.resize(n);

  std::vector<std::vector<double>> x;
  std::vector<int> y;
  x.reserve(3 * n);
  y.reserve(3 * n);
  for (const auto q : ids) {
    if (cfg.real_source == RealSource::kGroundTruth) {
      // Figure 3 training path: real photos vs. generations from both
      // cascade members.
      x.push_back(workload.real_feature(q));
      y.push_back(1);
      x.push_back(workload.generated_feature(q, light_tier));
      y.push_back(0);
      x.push_back(workload.generated_feature(q, heavy_tier));
      y.push_back(0);
    } else {
      // Ablation: the heavy model's outputs play the 'real' class.
      x.push_back(workload.generated_feature(q, heavy_tier));
      y.push_back(1);
      x.push_back(workload.generated_feature(q, light_tier));
      y.push_back(0);
    }
  }

  std::vector<std::size_t> dims;
  dims.push_back(workload.config().feature_dim);
  dims.insert(dims.end(), p.hidden.begin(), p.hidden.end());
  dims.push_back(2);
  nn::MlpClassifier model(dims, cfg.seed ^ 0xD15C0ULL);

  nn::TrainConfig tc;
  tc.epochs = cfg.epochs;
  tc.batch_size = 32;
  tc.adam.lr = 2e-3;
  tc.input_noise = p.input_noise;
  model.train(x, y, tc);

  return Discriminator(std::move(model), variant_name(cfg),
                       p.latency_seconds, cfg.temperature);
}

}  // namespace diffserve::discriminator
