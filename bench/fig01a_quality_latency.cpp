// Figure 1a: FID vs. average inference latency for independent model
// variants and for cascades routed by Random / PickScore / ClipScore /
// Discriminator, on the paper's two motivating pairs:
//   top:    H = SDv1.5, L = SD-Turbo   (Cascade 1)
//   bottom: H = SDv1.5, L = SDXS       (Cascade 2)
// Expected shape: Discriminator dominates Random; PickScore/ClipScore do
// no better (often worse) than Random; FID worsens again at the
// high-latency end (mixtures beat pure-heavy).
#include "bench_common.hpp"
#include "core/environment.hpp"
#include "core/offline_eval.hpp"

using namespace diffserve;

namespace {

void run_pair(const char* label, const std::string& cascade,
              const std::string& csv_name) {
  core::EnvironmentConfig ec;
  ec.cascade = cascade;
  ec.workload_queries = 5000;
  core::CascadeEnvironment env(ec);

  bench::banner("Figure 1a", label);

  // Independent model variant points (the orange scatter).
  const auto singles = core::single_model_points(
      env, {env.cascade().light_model, env.cascade().heavy_model});
  std::printf("%-14s %-10s %-10s %-8s\n", "series", "latency_s", "FID",
              "deferral");
  for (const auto& s : singles)
    std::printf("%-14s %-10.3f %-10.2f %-8s\n", s.model.c_str(),
                s.avg_latency_s, s.fid, "-");

  util::CsvWriter csv(bench::csv_path(csv_name),
                      {"series", "target_deferral", "actual_deferral",
                       "latency_s", "fid", "fid_std"});
  core::SweepOptions opts;
  opts.points = 21;
  opts.random_repeats = 20;  // paper repeats Random 20x
  for (const auto signal :
       {core::RoutingSignal::kRandom, core::RoutingSignal::kDiscriminator,
        core::RoutingSignal::kPickScore, core::RoutingSignal::kClipScore}) {
    const auto pts = core::sweep_cascade(env, signal, opts);
    for (const auto& p : pts) {
      csv.add_row(std::vector<std::string>{
          core::to_string(signal), util::CsvWriter::format(p.target_deferral),
          util::CsvWriter::format(p.actual_deferral),
          util::CsvWriter::format(p.avg_latency_s),
          util::CsvWriter::format(p.fid),
          util::CsvWriter::format(p.fid_std)});
    }
    // Print the curve at a coarse stride.
    for (std::size_t i = 0; i < pts.size(); i += 4)
      std::printf("%-14s %-10.3f %-10.2f %-8.2f%s\n",
                  core::to_string(signal), pts[i].avg_latency_s, pts[i].fid,
                  pts[i].actual_deferral,
                  signal == core::RoutingSignal::kRandom
                      ? (" (std " + std::to_string(pts[i].fid_std) + ")")
                            .c_str()
                      : "");
  }
  std::printf("[csv] %s\n", bench::csv_path(csv_name).c_str());
}

}  // namespace

int main() {
  run_pair("H: SDv1.5, L: SD-Turbo", models::catalog::kCascade1,
           "fig01a_sdturbo");
  run_pair("H: SDv1.5, L: SDXS", models::catalog::kCascade2,
           "fig01a_sdxs");
  return 0;
}
