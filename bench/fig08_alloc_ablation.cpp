// Figure 8: ablation of the resource allocation algorithm on the dynamic
// trace — DiffServe vs. fixed ("static") threshold, AIMD batching, and the
// no-queuing-model heuristic. Expected shape: the static threshold loses
// quality off-peak, AIMD suffers markedly higher violations, and dropping
// the queuing model under-estimates delays.
#include "bench_common.hpp"

using namespace diffserve;

int main() {
  const auto env = bench::make_env(4000);
  const auto tr = trace::RateTrace::azure_like(4.0, 32.0, 360.0, 3);

  util::CsvWriter timeline_csv(bench::csv_path("fig08_ablation"),
                               {"approach", "time", "demand_qps", "fid",
                                "violation_ratio", "threshold"});

  bench::banner("Figure 8", "resource allocation ablation, Cascade 1");
  bench::ReportTable table("fig08_summary", bench::summary_columns());
  for (const auto approach :
       {core::Approach::kDiffServe, core::Approach::kAblationStaticThreshold,
        core::Approach::kAblationNoQueueModel,
        core::Approach::kAblationAimdBatching}) {
    core::RunConfig rc;
    rc.approach = approach;
    rc.total_workers = 16;
    rc.trace = tr;
    const auto r = run_experiment(env, rc);
    table.row(bench::summary_cells(r));
    bench::add_timeline_rows(timeline_csv, r, tr);
  }
  std::printf("[csv] %s\n", bench::csv_path("fig08_ablation").c_str());
  return 0;
}
