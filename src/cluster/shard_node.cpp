#include "cluster/shard_node.hpp"

#include "util/log.hpp"

namespace diffserve::cluster {

ShardNode::ShardNode(std::uint32_t id, engine::CascadeEngine& engine,
                     std::unique_ptr<net::Endpoint> endpoint)
    : id_(id), engine_(engine), endpoint_(std::move(endpoint)) {
  endpoint_->set_receiver([this](net::Frame f) { on_frame(std::move(f)); });
  engine_.set_terminal_observer(
      [this](const engine::Query& q, int tier, double time, bool dropped) {
        net::TerminalMsg m;
        m.shard = id_;
        m.query = q;
        m.time = time;
        m.served_tier = tier;
        m.dropped = dropped;
        endpoint_->send(net::encode(m));
      });
}

net::ShardStatsMsg ShardNode::snapshot(std::uint64_t token) const {
  net::ShardStatsMsg m;
  m.shard = id_;
  m.token = token;
  m.time = engine_.backend().now();
  m.demand_rate = engine_.demand_rate();
  m.recent_violation_ratio = engine_.recent_violation_ratio();
  m.submitted = engine_.submitted();
  m.cache_enabled = engine_.cache_enabled();
  m.cache = engine_.cache_stats();
  m.stages.reserve(engine_.stage_count());
  for (std::size_t s = 0; s < engine_.stage_count(); ++s) {
    const auto stats = engine_.stage_stats(s);
    m.stages.push_back({stats.total_queue_length, stats.arrival_rate,
                        static_cast<std::int32_t>(stats.workers)});
  }
  if (engine_.config().slo_classes.enabled) {
    const auto rates = engine_.class_demand_rates();
    m.class_demand.assign(rates.begin(), rates.end());
  }
  return m;
}

void ShardNode::on_frame(net::Frame f) {
  if (f.topic == net::kTopicQuery) {
    net::QueryMsg m;
    if (!decode(f, &m)) {
      DS_LOG_WARN("cluster") << "shard " << id_
                             << ": undecodable submit frame";
      return;
    }
    engine_.submit(std::move(m.query));
    return;
  }
  if (f.topic == net::kTopicStatsRequest) {
    net::StatsRequestMsg m;
    if (!decode(f, &m)) {
      DS_LOG_WARN("cluster") << "shard " << id_
                             << ": undecodable stats request";
      return;
    }
    endpoint_->send(net::encode(snapshot(m.token)));
    return;
  }
  if (f.topic == net::kTopicPlan) {
    net::PlanMsg m;
    if (!decode(f, &m)) {
      DS_LOG_WARN("cluster") << "shard " << id_ << ": undecodable plan";
      return;
    }
    engine_.apply(m.plan);
    return;
  }
  DS_LOG_WARN("cluster") << "shard " << id_ << ": unexpected topic '"
                         << f.topic << "'";
}

}  // namespace diffserve::cluster
