// Tests for traces: interpolation, shape-preserving scaling, file I/O,
// Azure-like generation, and the three arrival processes (including a
// parameterized property sweep: realized arrivals match the trace
// integral).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "trace/arrivals.hpp"
#include "trace/rate_trace.hpp"
#include "util/rng.hpp"

namespace diffserve::trace {
namespace {

TEST(RateTrace, LinearInterpolation) {
  RateTrace t({0.0, 10.0, 20.0});
  EXPECT_EQ(t.qps_at(0.0), 0.0);
  EXPECT_EQ(t.qps_at(0.5), 5.0);
  EXPECT_EQ(t.qps_at(1.0), 10.0);
  EXPECT_EQ(t.qps_at(1.5), 15.0);
  EXPECT_EQ(t.qps_at(99.0), 20.0);  // clamps past the end
  EXPECT_EQ(t.duration(), 2.0);
}

TEST(RateTrace, ConstantTrace) {
  const auto t = RateTrace::constant(5.0, 30.0);
  EXPECT_EQ(t.qps_at(0.0), 5.0);
  EXPECT_EQ(t.qps_at(15.5), 5.0);
  EXPECT_NEAR(t.total_queries(), 5.0 * t.duration(), 1e-9);
}

TEST(RateTrace, ScaledToHitsTargets) {
  RateTrace t({2.0, 4.0, 8.0});
  const auto s = t.scaled_to(10.0, 40.0);
  EXPECT_NEAR(s.min_qps(), 10.0, 1e-12);
  EXPECT_NEAR(s.max_qps(), 40.0, 1e-12);
  // Shape preservation: the middle point keeps its relative position.
  EXPECT_NEAR(s.samples()[1], 10.0 + (4.0 - 2.0) / 6.0 * 30.0, 1e-9);
}

TEST(RateTrace, ScaledByFactor) {
  RateTrace t({1.0, 2.0});
  const auto s = t.scaled_by(3.0);
  EXPECT_EQ(s.samples()[0], 3.0);
  EXPECT_EQ(s.samples()[1], 6.0);
}

TEST(RateTrace, SaveLoadRoundTrip) {
  RateTrace t({1.5, 2.5, 3.5, 2.0});
  const std::string path = "/tmp/ds_trace_test.txt";
  t.save(path);
  const auto loaded = RateTrace::load(path);
  ASSERT_EQ(loaded.samples().size(), t.samples().size());
  for (std::size_t i = 0; i < t.samples().size(); ++i)
    EXPECT_NEAR(loaded.samples()[i], t.samples()[i], 1e-9);
  std::remove(path.c_str());
}

TEST(RateTrace, AzureLikeRespectsBoundsAndDuration) {
  const auto t = RateTrace::azure_like(4.0, 32.0, 360.0, 7);
  EXPECT_NEAR(t.min_qps(), 4.0, 1e-9);
  EXPECT_NEAR(t.max_qps(), 32.0, 1e-9);
  EXPECT_GE(t.duration(), 360.0);
  // The peak sits in the middle portion of the trace, not at the edges.
  double peak_time = 0.0, peak = -1.0;
  for (double x = 0.0; x <= t.duration(); x += 1.0) {
    if (t.qps_at(x) > peak) {
      peak = t.qps_at(x);
      peak_time = x;
    }
  }
  EXPECT_GT(peak_time, 0.25 * t.duration());
  EXPECT_LT(peak_time, 0.85 * t.duration());
}

TEST(RateTrace, AzureLikeDeterministicPerSeed) {
  const auto a = RateTrace::azure_like(4.0, 32.0, 100.0, 5);
  const auto b = RateTrace::azure_like(4.0, 32.0, 100.0, 5);
  const auto c = RateTrace::azure_like(4.0, 32.0, 100.0, 6);
  EXPECT_EQ(a.samples(), b.samples());
  EXPECT_NE(a.samples(), c.samples());
}

TEST(RateTrace, RejectsInvalid) {
  EXPECT_THROW(RateTrace({1.0}), std::invalid_argument);
  EXPECT_THROW(RateTrace({1.0, -2.0}), std::invalid_argument);
  EXPECT_THROW(RateTrace::load("/nonexistent/path.txt"),
               std::invalid_argument);
}

TEST(Arrivals, DeterministicSpacingOnConstantTrace) {
  const auto t = RateTrace::constant(2.0, 10.0);
  util::Rng rng(1);
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kDeterministic;
  const auto a = generate_arrivals(t, rng, cfg);
  ASSERT_GE(a.size(), 2u);
  EXPECT_NEAR(a[1] - a[0], 0.5, 1e-9);
  EXPECT_NEAR(static_cast<double>(a.size()), 20.0, 1.0);
}

TEST(Arrivals, SortedAndInRange) {
  const auto t = RateTrace::azure_like(2.0, 10.0, 60.0, 3);
  util::Rng rng(2);
  const auto a = generate_arrivals(t, rng);
  for (std::size_t i = 1; i < a.size(); ++i) EXPECT_GE(a[i], a[i - 1]);
  EXPECT_GE(a.front(), 0.0);
  EXPECT_LT(a.back(), t.duration());
}

class ArrivalCountProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ArrivalCountProperty, PoissonCountMatchesIntegral) {
  const auto [seed, peak] = GetParam();
  const auto t =
      RateTrace::azure_like(2.0, static_cast<double>(peak), 120.0,
                            static_cast<std::uint64_t>(seed));
  util::Rng rng(static_cast<std::uint64_t>(seed) * 7 + 1);
  const auto a = generate_arrivals(t, rng);
  const double expected = t.total_queries();
  // Within 4 sigma of the Poisson count.
  EXPECT_NEAR(static_cast<double>(a.size()), expected,
              4.0 * std::sqrt(expected) + 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndPeaks, ArrivalCountProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(8, 16, 32)));

TEST(Arrivals, BurstyPreservesMeanRate) {
  const auto t = RateTrace::constant(10.0, 200.0);
  util::Rng rng(5);
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kBursty;
  cfg.burstiness = 2.0;
  const auto a = generate_arrivals(t, rng, cfg);
  EXPECT_NEAR(static_cast<double>(a.size()), 2000.0, 250.0);
}

class BurstyMeanRateProperty : public ::testing::TestWithParam<int> {};

TEST_P(BurstyMeanRateProperty, OnOffModulationPreservesMeanRate) {
  // The on/off burst factor is constructed so on- and off-phase scalings
  // average to 1 (lo = 2 - hi with equal expected phase lengths): the
  // realized arrival count must track the trace integral across seeds,
  // not just for one lucky draw. The tolerance covers Poisson noise plus
  // the extra variance the phase modulation adds.
  const int seed = GetParam();
  const auto t = RateTrace::constant(10.0, 600.0);
  util::Rng rng(static_cast<std::uint64_t>(seed));
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kBursty;
  cfg.burstiness = 2.0;
  cfg.burst_phase_mean = 2.0;
  const auto a = generate_arrivals(t, rng, cfg);
  const double expected = t.total_queries();
  // ~300 phases over the trace keep the realized on-time fraction within
  // a few percent of 1/2; a broken off-phase scaling (lo != 2 - hi)
  // would shift the count by ~50%, far outside this band.
  EXPECT_NEAR(static_cast<double>(a.size()), expected, 0.15 * expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BurstyMeanRateProperty,
                         ::testing::Range(1, 9));

TEST(Arrivals, BurstyIsBurstier) {
  // Compare coefficient of variation of inter-arrival gaps.
  const auto t = RateTrace::constant(10.0, 300.0);
  auto cv = [](const std::vector<double>& a) {
    double sum = 0.0, sq = 0.0;
    for (std::size_t i = 1; i < a.size(); ++i) {
      const double g = a[i] - a[i - 1];
      sum += g;
      sq += g * g;
    }
    const double n = static_cast<double>(a.size() - 1);
    const double mean = sum / n;
    return std::sqrt(sq / n - mean * mean) / mean;
  };
  util::Rng rng1(7), rng2(7);
  ArrivalConfig bursty;
  bursty.kind = ArrivalKind::kBursty;
  bursty.burstiness = 3.0;
  const double cv_poisson = cv(generate_arrivals(t, rng1));
  const double cv_bursty = cv(generate_arrivals(t, rng2, bursty));
  EXPECT_GT(cv_bursty, cv_poisson);
}

TEST(Arrivals, InvalidBurstConfigThrows) {
  const auto t = RateTrace::constant(1.0, 10.0);
  util::Rng rng(1);
  ArrivalConfig cfg;
  cfg.kind = ArrivalKind::kBursty;
  cfg.burstiness = 0.5;
  EXPECT_THROW(generate_arrivals(t, rng, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace diffserve::trace
