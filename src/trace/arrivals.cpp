#include "trace/arrivals.hpp"

#include <cmath>
#include <functional>

#include "util/check.hpp"

namespace diffserve::trace {

namespace {

std::vector<double> poisson_thinning(const RateTrace& trace, util::Rng& rng,
                                     double rate_multiplier_peak,
                                     const std::function<double(double)>& mod) {
  const double duration = trace.duration();
  const double lambda_max =
      std::max(1e-9, trace.max_qps() * rate_multiplier_peak);
  std::vector<double> arrivals;
  arrivals.reserve(static_cast<std::size_t>(trace.total_queries() * 1.2) + 16);
  double t = 0.0;
  for (;;) {
    t += rng.exponential(lambda_max);
    if (t >= duration) break;
    const double lambda_t = trace.qps_at(t) * mod(t);
    if (rng.uniform() * lambda_max <= lambda_t) arrivals.push_back(t);
  }
  return arrivals;
}

}  // namespace

std::vector<double> generate_arrivals(const RateTrace& trace, util::Rng& rng,
                                      const ArrivalConfig& cfg) {
  switch (cfg.kind) {
    case ArrivalKind::kDeterministic: {
      std::vector<double> arrivals;
      const double duration = trace.duration();
      double t = 0.0;
      while (t < duration) {
        const double rate = trace.qps_at(t);
        if (rate <= 1e-9) {
          t += 0.1;  // idle scan forward
          continue;
        }
        arrivals.push_back(t);
        t += 1.0 / rate;
      }
      return arrivals;
    }
    case ArrivalKind::kPoisson:
      return poisson_thinning(trace, rng, 1.0, [](double) { return 1.0; });
    case ArrivalKind::kBursty: {
      DS_REQUIRE(cfg.burstiness >= 1.0, "burstiness must be >= 1");
      DS_REQUIRE(cfg.burst_phase_mean > 0.0, "burst phase must be positive");
      // Precompute alternating on/off phases over the trace duration.
      struct Phase {
        double start;
        bool on;
      };
      std::vector<Phase> phases;
      double t = 0.0;
      bool on = rng.bernoulli(0.5);
      while (t < trace.duration()) {
        phases.push_back({t, on});
        t += rng.exponential(1.0 / cfg.burst_phase_mean);
        on = !on;
      }
      const double hi = cfg.burstiness;
      // Keep the mean rate unchanged: on and off phases have equal expected
      // length, so lo = 2 - hi clipped at >= 0.
      const double lo = std::max(0.0, 2.0 - hi);
      auto mod = [phases, hi, lo](double time) {
        // Binary search for the containing phase.
        std::size_t a = 0, b = phases.size();
        while (a + 1 < b) {
          const std::size_t mid = (a + b) / 2;
          if (phases[mid].start <= time)
            a = mid;
          else
            b = mid;
        }
        return phases[a].on ? hi : lo;
      };
      return poisson_thinning(trace, rng, hi, mod);
    }
  }
  DS_CHECK(false, "unreachable arrival kind");
  return {};
}

}  // namespace diffserve::trace
