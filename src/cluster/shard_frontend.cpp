#include "cluster/shard_frontend.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/log.hpp"

namespace diffserve::cluster {

namespace {

/// splitmix64 finalizer — the ring's point hash. Strong avalanche from a
/// few mixing rounds; deterministic across platforms.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ShardFrontend::ShardFrontend(const quality::Workload& workload,
                             const quality::FidScorer& scorer,
                             FrontendConfig cfg)
    : cfg_(cfg),
      sampler_(workload.size(), cfg.prompt_mix),
      sink_(workload, scorer) {
  DS_REQUIRE(cfg_.virtual_nodes > 0, "need at least one virtual node");
  sink_.set_record_terminal_events(cfg_.record_terminal_events);
}

void ShardFrontend::attach_shard(std::unique_ptr<net::Endpoint> endpoint) {
  const std::size_t shard = shards_.size();
  endpoint->set_receiver(
      [this, shard](net::Frame f) { on_frame(shard, std::move(f)); });
  shards_.push_back(std::move(endpoint));
  // Setup is single-threaded (attach-all-then-serve), but the guarded
  // members still take the lock so the discipline is uniform.
  util::MutexLock lock(mu_);
  inflight_.push_back(0);
  // Rebuild the ring: virtual_nodes points per shard, keyed by
  // (shard, replica) under the seed. Deterministic for a given shard
  // count, independent of attach interleaving with traffic (attach-all-
  // then-serve is the contract).
  ring_.clear();
  ring_.reserve(shards_.size() * static_cast<std::size_t>(cfg_.virtual_nodes));
  // Vnode points live in the upper-half input domain ((s+1) << 32 is
  // always nonzero) while prompt keys hash from the 32-bit pid domain —
  // disjoint inputs, so no key ever lands exactly on a point (an exact
  // collision would pin that key to the colliding shard forever).
  for (std::uint32_t s = 0; s < shards_.size(); ++s)
    for (int v = 0; v < cfg_.virtual_nodes; ++v)
      ring_.emplace_back(
          mix64(cfg_.hash_seed ^ (std::uint64_t{s + 1} << 32) ^
                static_cast<std::uint64_t>(v)),
          s);
  std::sort(ring_.begin(), ring_.end());
}

void ShardFrontend::start_transports() {
  for (auto& ep : shards_) ep->start();
}

void ShardFrontend::stop_transports() {
  for (auto& ep : shards_) ep->stop();
}

std::size_t ShardFrontend::hash_shard_locked(
    quality::QueryId prompt_id) const {
  DS_REQUIRE(!ring_.empty(), "route before any shard was attached");
  const std::uint64_t h = mix64(cfg_.hash_seed ^ prompt_id);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const std::pair<std::uint64_t, std::uint32_t>& e, std::uint64_t v) {
        return e.first < v;
      });
  if (it == ring_.end()) it = ring_.begin();  // wrap around the circle
  return it->second;
}

std::size_t ShardFrontend::route_locked(quality::QueryId prompt_id) const {
  const std::size_t owner = hash_shard_locked(prompt_id);
  if (shards_.size() == 1) return owner;
  // Least-loaded fallback: divert only when the owner is far ahead of the
  // least loaded shard — hash affinity (and with it cache locality) wins
  // in the steady state, load wins under pathological skew.
  const std::uint64_t own_load = inflight_[owner];
  if (own_load < cfg_.imbalance_min_inflight) return owner;
  std::size_t least = 0;
  for (std::size_t s = 1; s < inflight_.size(); ++s)
    if (inflight_[s] < inflight_[least]) least = s;
  if (static_cast<double>(own_load) >
      cfg_.imbalance_factor * static_cast<double>(inflight_[least] + 1))
    return least;
  return owner;
}

std::size_t ShardFrontend::hash_shard(quality::QueryId prompt_id) const {
  util::MutexLock lock(mu_);
  return hash_shard_locked(prompt_id);
}

std::size_t ShardFrontend::route(quality::QueryId prompt_id) const {
  util::MutexLock lock(mu_);
  return route_locked(prompt_id);
}

engine::Query ShardFrontend::submit_next(double now) {
  engine::Query q;
  std::size_t shard = 0;
  {
    util::MutexLock lock(mu_);
    // Field-for-field what engine::CascadeEngine::submit_next assigns —
    // the 1-shard equivalence contract depends on this.
    q.seq = next_seq_++;
    q.prompt_id = sampler_.next();
    q.arrival_time = now;
    q.deadline = now + cfg_.slo_seconds;
    if (cfg_.slo_classes.enabled) {
      q.query_class =
          static_cast<engine::QueryClass>(sampler_.next_class());
      q.deadline = now + cfg_.slo_seconds *
                             cfg_.slo_classes.multiplier(q.query_class);
    }
    shard = route_locked(q.prompt_id);
    ++inflight_[shard];
    ++submitted_;
  }
  shards_[shard]->send(net::encode(
      net::QueryMsg{static_cast<std::uint32_t>(shard), q}));
  return q;
}

void ShardFrontend::submit(engine::Query q) {
  std::size_t shard = 0;
  {
    util::MutexLock lock(mu_);
    shard = route_locked(q.prompt_id);
    ++inflight_[shard];
    ++submitted_;
  }
  shards_[shard]->send(net::encode(
      net::QueryMsg{static_cast<std::uint32_t>(shard), std::move(q)}));
}

void ShardFrontend::send_to_shard(std::size_t shard, const net::Frame& f) {
  DS_REQUIRE(shard < shards_.size(), "send_to_shard out of range");
  shards_[shard]->send(f);
}

void ShardFrontend::set_stats_listener(
    std::function<void(const net::ShardStatsMsg&)> fn) {
  util::MutexLock lock(mu_);
  stats_listener_ = std::move(fn);
}

void ShardFrontend::on_frame(std::size_t shard, net::Frame f) {
  if (f.topic == net::kTopicTerminal) {
    net::TerminalMsg m;
    if (!decode(f, &m)) {
      DS_LOG_WARN("cluster") << "undecodable terminal frame from shard "
                             << shard;
      return;
    }
    util::MutexLock lock(mu_);
    // Cross-shard socket delivery can reorder by microseconds; the sink's
    // sliding windows require non-decreasing timestamps. Clamping is a
    // no-op on the DES (delivery order is event order).
    const double t = std::max(m.time, last_sink_time_);
    last_sink_time_ = t;
    if (m.dropped)
      sink_.drop(m.query, t);
    else
      sink_.complete(m.query, m.served_tier, t);
    DS_REQUIRE(inflight_[shard] > 0, "terminal without a matching submit");
    --inflight_[shard];
    ++terminated_;
    return;
  }
  if (f.topic == net::kTopicStats) {
    net::ShardStatsMsg m;
    if (!decode(f, &m)) {
      DS_LOG_WARN("cluster") << "undecodable stats frame from shard "
                             << shard;
      return;
    }
    std::function<void(const net::ShardStatsMsg&)> listener;
    {
      util::MutexLock lock(mu_);
      listener = stats_listener_;
    }
    if (listener) listener(m);
    return;
  }
  DS_LOG_WARN("cluster") << "unexpected topic '" << f.topic
                         << "' from shard " << shard;
}

std::uint64_t ShardFrontend::submitted() const {
  util::MutexLock lock(mu_);
  return submitted_;
}

std::uint64_t ShardFrontend::terminated() const {
  util::MutexLock lock(mu_);
  return terminated_;
}

bool ShardFrontend::drained() const {
  util::MutexLock lock(mu_);
  return terminated_ == submitted_;
}

std::uint64_t ShardFrontend::inflight(std::size_t shard) const {
  util::MutexLock lock(mu_);
  return inflight_[shard];
}

}  // namespace diffserve::cluster
