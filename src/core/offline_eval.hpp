// Offline cascade evaluation (no serving loop): sweeps routing policies
// over deferral fractions and reports FID vs. average latency, exactly the
// methodology behind Figures 1a, 1b, 1c and 7. Batch size is 1 and there
// is no queuing, matching the paper's motivation experiments.
#pragma once

#include <vector>

#include "core/environment.hpp"

namespace diffserve::core {

/// What the router thresholds on to pick "easy" queries.
enum class RoutingSignal {
  kDiscriminator,  ///< trained discriminator confidence (DiffServe)
  kRandom,         ///< defer with fixed probability
  kPickScore,      ///< threshold on the light image's PickScore proxy
  kClipScore,      ///< threshold on the light image's CLIPScore proxy
  kOracle,         ///< defer where the true light-heavy error gap is largest
};

const char* to_string(RoutingSignal s);

struct CascadePoint {
  double target_deferral;  ///< swept parameter
  double actual_deferral;  ///< realized deferred fraction
  double fid;
  double avg_latency_s;    ///< batch-1 pipeline latency, incl. discriminator
  double fid_std = 0.0;    ///< across random repetitions (kRandom only)
};

struct SweepOptions {
  std::size_t points = 21;        ///< deferral fractions 0..1
  std::size_t random_repeats = 20;///< paper repeats Random 20x
  std::uint64_t seed = 99;
  /// Evaluate on the first n workload queries (0 = all).
  std::size_t eval_queries = 0;
};

/// Sweep one routing signal across deferral fractions for the
/// environment's cascade.
std::vector<CascadePoint> sweep_cascade(const CascadeEnvironment& env,
                                        RoutingSignal signal,
                                        const SweepOptions& opts = {});

/// FID and batch-1 latency of serving every query with a single variant
/// (the orange "independent model" points of Figure 1a).
struct SingleModelPoint {
  std::string model;
  double fid;
  double avg_latency_s;
};
std::vector<SingleModelPoint> single_model_points(
    const CascadeEnvironment& env, const std::vector<std::string>& model_names);

/// Lower-left Pareto front of (x=cost, y=score) points, both minimized.
/// Returns indices into `points`, sorted by x.
std::vector<std::size_t> pareto_front_min_min(
    const std::vector<std::pair<double, double>>& points);

}  // namespace diffserve::core
