// Sliding time-window counters.
//
// Workers report per-interval arrival counts and SLO outcomes; the
// controller aggregates them over a sliding window to estimate instantaneous
// demand and violation ratios for its allocation decisions and for the
// timeline plots (Figures 5 and 8).
#pragma once

#include <cstddef>
#include <algorithm>
#include <deque>

namespace diffserve::stats {

/// Counts events with timestamps, supporting "events in the last W seconds"
/// and the implied rate. Timestamps must be non-decreasing.
class SlidingWindowCounter {
 public:
  /// `origin` is the time the measured process started; before a full
  /// window has elapsed since then, rate() divides by the elapsed span
  /// rather than the window (otherwise early rates are underestimated by
  /// up to the window/elapsed ratio).
  explicit SlidingWindowCounter(double window_seconds, double origin = 0.0);

  void add(double time_seconds, double weight = 1.0);

  /// Total weight inside (now - window, now].
  double total(double now) const;
  /// total(now) / effective window — an event rate in events/second.
  double rate(double now) const;

  void reset();
  double window() const { return window_; }

 private:
  void evict(double now) const;

  double window_;
  double origin_;
  mutable std::deque<std::pair<double, double>> events_;  // (time, weight)
};

/// Ratio of "bad" outcomes over a sliding window (e.g., SLO violations).
class SlidingWindowRatio {
 public:
  explicit SlidingWindowRatio(double window_seconds);

  void record(double time_seconds, bool bad);

  /// Violations / total in the window; 0 when the window is empty.
  double ratio(double now) const;
  double total(double now) const;
  void reset();

 private:
  SlidingWindowCounter bad_;
  SlidingWindowCounter all_;
};

}  // namespace diffserve::stats
