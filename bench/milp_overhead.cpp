// §4.5 "Overhead of MILP Solver": google-benchmark of the allocation
// solvers across demand levels. The paper measures ~10 ms per solve with
// Gurobi; the continuous-deferral formulation of our branch-and-bound
// solver must land in the same order of magnitude, and the exhaustive
// oracle far below it.
#include <benchmark/benchmark.h>

#include <cmath>

#include "control/exhaustive_allocator.hpp"
#include "control/milp_allocator.hpp"
#include "models/model_repository.hpp"

using namespace diffserve;

namespace {

control::AllocationInput cascade1_input(double demand) {
  control::AllocationInput in;
  in.demand_qps = demand;
  in.total_workers = 16;
  in.slo_seconds = 5.0;
  const auto repo = models::ModelRepository::with_paper_catalog();
  const auto disc = repo.model(models::catalog::kEfficientNet).latency;
  in.light() = control::StagePerfModel(
      repo.model(models::catalog::kSdTurbo).latency, &disc);
  in.heavy() = control::StagePerfModel(
      repo.model(models::catalog::kSdV15).latency, nullptr);
  for (int k = 0; k <= 50; ++k) {
    const double f = 0.65 * k / 50.0;
    in.threshold_grid().push_back({std::pow(f, 2.0 / 3.0), f});
  }
  return in;
}

void BM_MilpContinuousDeferral(benchmark::State& state) {
  control::MilpAllocator alloc(
      control::MilpAllocator::Formulation::kContinuousDeferral);
  const auto in = cascade1_input(static_cast<double>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(alloc.allocate(in));
}
BENCHMARK(BM_MilpContinuousDeferral)->Arg(4)->Arg(12)->Arg(24)
    ->Unit(benchmark::kMillisecond);

void BM_MilpThresholdGrid(benchmark::State& state) {
  control::MilpAllocator alloc(
      control::MilpAllocator::Formulation::kThresholdGrid);
  const auto in = cascade1_input(static_cast<double>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(alloc.allocate(in));
}
BENCHMARK(BM_MilpThresholdGrid)->Arg(12)->Unit(benchmark::kMillisecond);

void BM_ExhaustiveOracle(benchmark::State& state) {
  control::ExhaustiveAllocator alloc;
  const auto in = cascade1_input(static_cast<double>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(alloc.allocate(in));
}
BENCHMARK(BM_ExhaustiveOracle)->Arg(4)->Arg(12)->Arg(24)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
