// Figure 5: timeline comparison on the real-world (Azure-Functions-like)
// trace, Cascade 1, 16 workers, SLO 5 s: demand, FID-over-time, and
// SLO-violation-ratio-over-time for all five approaches. Expected shape:
// DiffServe holds the best quality off-peak and low violations at peak;
// Clipper-Heavy violates massively at peak; DiffServe-Static violates at
// peak because its fixed threshold cannot back off.
#include "bench_common.hpp"

using namespace diffserve;

int main() {
  const auto env = bench::make_env(5000);

  // The artifact's trace_4to32qps family for 16 workers.
  const auto tr = trace::RateTrace::azure_like(4.0, 32.0, 360.0, 3);
  tr.save(bench::results_dir() + "/trace_4to32qps.txt");

  util::CsvWriter timeline_csv(bench::csv_path("fig05_timeline"),
                               {"approach", "time", "demand_qps", "fid",
                                "violation_ratio", "threshold"});

  bench::banner("Figure 5", "Azure-like trace 4->32 QPS, Cascade 1, 16 GPUs");
  bench::ReportTable table("fig05_summary", bench::summary_columns());
  for (const auto approach : core::comparison_approaches()) {
    core::RunConfig rc;
    rc.approach = approach;
    rc.total_workers = 16;
    rc.trace = tr;
    const auto r = run_experiment(env, rc);
    table.row(bench::summary_cells(r));
    bench::add_timeline_rows(timeline_csv, r, tr);
  }
  std::printf("[csv] %s\n", bench::csv_path("fig05_timeline").c_str());
  return 0;
}
