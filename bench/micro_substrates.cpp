// Microbenchmarks of the substrates on the serving critical path: event
// queue operations, discriminator inference (must be negligible next to
// diffusion execution, §3.2), FID evaluation, and feature generation.
#include <benchmark/benchmark.h>

#include "core/environment.hpp"
#include "linalg/gaussian.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

using namespace diffserve;

namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    for (int i = 0; i < state.range(0); ++i)
      sim.schedule_at(static_cast<double>(i % 97), [] {});
    sim.run_all();
    benchmark::DoNotOptimize(sim.executed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(10000);

const core::CascadeEnvironment& bench_env() {
  static const core::CascadeEnvironment env = [] {
    core::EnvironmentConfig cfg;
    cfg.workload_queries = 1000;
    cfg.discriminator.train_queries = 500;
    return core::CascadeEnvironment(cfg);
  }();
  return env;
}

void BM_DiscriminatorInference(benchmark::State& state) {
  const auto& env = bench_env();
  const auto feature = env.workload().generated_feature(0, env.light_tier());
  for (auto _ : state)
    benchmark::DoNotOptimize(env.disc().confidence(feature));
}
BENCHMARK(BM_DiscriminatorInference);

void BM_FeatureGeneration(benchmark::State& state) {
  const auto& env = bench_env();
  quality::QueryId q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        env.workload().generated_feature(q, env.light_tier()));
    q = (q + 1) % static_cast<quality::QueryId>(env.workload().size());
  }
}
BENCHMARK(BM_FeatureGeneration);

void BM_FidEvaluation(benchmark::State& state) {
  const auto& env = bench_env();
  linalg::GaussianAccumulator acc(env.workload().config().feature_dim);
  for (quality::QueryId q = 0; q < 500; ++q)
    acc.add(env.workload().generated_feature(q, env.heavy_tier()));
  const auto stats = acc.stats();
  for (auto _ : state)
    benchmark::DoNotOptimize(env.scorer().fid(stats));
  state.SetLabel("500 images, dim 16");
}
BENCHMARK(BM_FidEvaluation);

void BM_RngNormal(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.normal());
}
BENCHMARK(BM_RngNormal);

}  // namespace

BENCHMARK_MAIN();
