// CascadeEngine: the backend-agnostic serving policy.
//
// One engine instance holds everything the paper's Load Balancer, Workers,
// and metrics pipeline decide (§3.1), generalized from the paper's
// light/heavy pair to an N-stage model chain: query admission (with an
// optional approximate prompt-reuse cache probe — an exact hit completes
// without entering a stage pool, an approx hit runs the chain with a
// fraction of its diffusion steps), JSQ routing within each stage pool,
// per-boundary confidence-threshold deferral from stage i to i+1,
// deadline-aware batch formation with preemptive drops,
// downstream-reserve SLO accounting (the reserve at stage i covers the
// remaining chain's execution time), AllocationPlan application with
// stable role assignment and queue eviction, and the MetricsSink. Time,
// deferred callbacks, batch execution, and locking come from an
// ExecutionBackend, so the discrete-event simulator and the threaded
// wall-clock testbed run literally the same policy code — the property
// behind the §4.3 simulator-vs-testbed fidelity claim. A two-stage chain
// is exactly the paper's cascade; the `light_*`/`heavy_*` accessors alias
// the first/last stage.
//
// Concurrency contract: every public method acquires the backend's guard;
// `_locked` internals assume it is held. Backend callbacks (batch
// completion, batching timers) re-enter through guarded wrappers. The
// latency accessors and tier/config getters read immutable state and need
// no guard.
//
// Determinism contract: the engine itself holds no randomness — routing,
// deferral, batching, and every cache interaction (probe, insert, evict)
// are pure functions of the submitted query sequence and the backend
// clock. Two backends that deliver the same arrivals at the same trace
// times produce identical serving decisions, which is what the
// DES-vs-threaded parity suites pin.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/approx_cache.hpp"
#include "discriminator/discriminator.hpp"
#include "engine/backend.hpp"
#include "engine/metrics_sink.hpp"
#include "engine/plan.hpp"
#include "engine/query.hpp"
#include "models/model_repository.hpp"
#include "quality/fid.hpp"
#include "quality/workload.hpp"
#include "stats/window.hpp"
#include "trace/prompt_mix.hpp"
#include "util/ring_buffer.hpp"
#include "util/rng.hpp"

namespace diffserve::engine {

/// Aggregate queue/arrival statistics over one stage's worker pool
/// (controller input).
struct PoolStats {
  double total_queue_length = 0.0;
  double arrival_rate = 0.0;  ///< summed over the pool's workers
  int workers = 0;
};

class CascadeEngine {
 public:
  /// Per-boundary discriminators: discs[b] gates deferral from stage b to
  /// b+1 (size = boundary count; entries may be null only in setups that
  /// never defer, e.g. pure-direct baselines).
  CascadeEngine(ExecutionBackend& backend, const quality::Workload& workload,
                const models::ModelRepository& repo,
                const models::CascadeSpec& cascade,
                std::vector<const discriminator::Discriminator*> discs,
                const quality::FidScorer& scorer, EngineConfig cfg);
  /// Two-stage-era convenience: one discriminator replicated across every
  /// boundary (exactly one boundary in a classic cascade).
  CascadeEngine(ExecutionBackend& backend, const quality::Workload& workload,
                const models::ModelRepository& repo,
                const models::CascadeSpec& cascade,
                const discriminator::Discriminator* disc,
                const quality::FidScorer& scorer, EngineConfig cfg);

  /// Reconfigure the cluster; evicted queries are re-routed (never
  /// dropped). Counts one reconfiguration per applied plan that changes at
  /// least one worker's hosted model. The plan's stage vectors must match
  /// the cascade chain length.
  void apply(const AllocationPlan& plan);
  AllocationPlan plan() const;

  /// Admit a query arriving now: sequence number, cycled prompt, and
  /// deadline are filled in by the engine. Returns the admitted query.
  Query submit_next();
  /// Admit an externally constructed query (arrival_time/deadline set).
  void submit(Query q);

  /// Observer invoked with every (boundary, confidence) computed on the
  /// data path (feeds the controller's per-boundary online deferral
  /// profiles). May be called from backend worker threads; the observer
  /// must be thread-safe when the backend is concurrent.
  void set_confidence_observer(std::function<void(std::size_t, double)> observer);

  /// Observer invoked, under the engine guard and immediately after the
  /// sink records the event, at every terminal: the finished query, the
  /// quality tier that served it (-1 for drops), the sink timestamp, and
  /// whether the query was dropped. The cluster layer streams these as
  /// wire frames back to the shard frontend. The observer must not call
  /// back into the engine.
  void set_terminal_observer(
      std::function<void(const Query&, int, double, bool)> observer);

  // --- runtime statistics for the controller -----------------------------
  /// Arrival rate into the system over the stats window (QPS).
  double demand_rate() const;
  /// Per-class arrival rates (QPS) over the same window, indexed by
  /// QueryClass. All-zero while SLO classes are disabled (the classless
  /// path never touches the per-class counters).
  std::array<double, kQueryClassCount> class_demand_rates() const;
  /// Queries rejected at admission by a full per-class queue (standard
  /// backpressure / batch drop-newest) or displaced by interactive
  /// drop-oldest, indexed by QueryClass.
  std::array<std::uint64_t, kQueryClassCount> class_admission_drops() const;
  /// Queue/arrival statistics of stage s's worker pool.
  PoolStats stage_stats(std::size_t s) const;
  PoolStats light_stats() const { return stage_stats(0); }
  PoolStats heavy_stats() const { return stage_stats(stage_count() - 1); }
  std::uint64_t submitted() const;
  /// Applied plans that changed at least one worker's hosted model.
  std::size_t reconfigurations() const;
  /// Guarded read of the sink's sliding-window violation ratio.
  double recent_violation_ratio() const;

  /// Whether the approximate prompt-reuse cache is active.
  bool cache_enabled() const { return cache_ != nullptr; }
  /// Guarded snapshot of the cache's probe/insert counters (zeros when
  /// the cache is disabled). The controller differences successive
  /// snapshots into its online hit-ratio estimate.
  cache::CacheStats cache_stats() const;

  /// Stage execution latencies under the cascade's profiles — the single
  /// source of truth for the §3.3 latency math (used by the controller's
  /// performance model and by both backends' batch execution). Non-final
  /// stages include their boundary discriminator pass.
  double stage_exec_latency(std::size_t s, int batch) const;
  double light_exec_latency(int batch) const {
    return stage_exec_latency(0, batch);
  }
  double heavy_exec_latency(int batch) const {
    return stage_exec_latency(stage_count() - 1, batch);
  }

  std::size_t stage_count() const { return chain_.size(); }
  std::size_t boundary_count() const { return chain_.size() - 1; }
  int stage_tier(std::size_t s) const { return stage_tiers_[s]; }
  int light_tier() const { return stage_tiers_.front(); }
  int heavy_tier() const { return stage_tiers_.back(); }
  const models::CascadeSpec& cascade() const { return cascade_; }
  const EngineConfig& config() const { return cfg_; }
  ExecutionBackend& backend() const { return backend_; }

  /// The sink is written under the guard; read it freely once the backend
  /// has quiesced (post-run), or through recent_violation_ratio() live.
  MetricsSink& sink() { return sink_; }
  const MetricsSink& sink() const { return sink_; }
  /// Guarded pass-through to MetricsSink::reserve — callers that know the
  /// arrival count up front pre-size the terminal-record log.
  void sink_reserve(std::size_t expected_terminals);

  // --- worker introspection (tests, benches) -----------------------------
  std::size_t worker_count() const { return workers_.size(); }
  struct WorkerInfo {
    bool configured = false;
    int stage = -1;  ///< hosted stage index, -1 while unconfigured
    bool heavy = false;  ///< hosts the final (heaviest) stage
    bool busy = false;
    int batch_size = 0;
    std::size_t queue_length = 0;
    /// Per-SLO-class admission-queue lengths (sums to queue_length; with
    /// class-aware scheduling off everything sits in the kStandard row).
    std::array<std::size_t, kQueryClassCount> class_queue_lengths{};
    std::uint64_t batches = 0;
    std::uint64_t processed = 0;
    std::uint64_t dropped = 0;
  };
  WorkerInfo worker_info(std::size_t i) const;

 private:
  static constexpr int kNoStage = -1;

  struct Enqueued {
    Query query;
    double at;  ///< enqueue time (drives the batch-wait cap)
  };

  /// Per-worker policy state; the substrate behind it (event queue or
  /// thread) lives in the backend.
  struct WorkerSlot {
    int id = 0;
    int stage = kNoStage;  ///< hosted chain stage (kNoStage = unassigned)
    bool configured = false;
    std::string model_name;
    models::LatencyProfile profile;
    /// Added to every batch's execution time (boundary discriminator pass
    /// on non-final cascade stages), as a function of batch size.
    models::LatencyProfile extra_profile;
    bool has_extra = false;
    int batch_size = 1;
    int quality_tier = 0;

    /// Per-class admission queues, indexed by QueryClass; scans iterate
    /// classes in enum order, which doubles as batch-fill priority
    /// (interactive first). With SLO classes disabled every query lives in
    /// the kStandard ring, so the class-ordered iteration degenerates to
    /// the historical single FIFO — byte-identical decisions. Each ring is
    /// a growable RingDeque, not std::deque: slots (and the flat Query
    /// payloads in them) are recycled in place, so steady-state
    /// enqueue/dequeue is allocation-free once a ring reaches its
    /// high-water mark.
    std::array<util::RingDeque<Enqueued>, kQueryClassCount> queues;

    std::size_t queue_size() const {
      std::size_t n = 0;
      for (const auto& q : queues) n += q.size();
      return n;
    }
    bool queue_empty() const {
      for (const auto& q : queues)
        if (!q.empty()) return false;
      return true;
    }

    bool busy = false;
    double ready_at = 0.0;  ///< model-load completion time
    TimerHandle timer{};
    bool timer_armed = false;
    double timer_at = 0.0;
    /// Bumped on every arm/disarm so a timer callback racing a cancel in a
    /// concurrent backend can detect it is stale.
    std::uint64_t timer_epoch = 0;

    stats::SlidingWindowCounter arrivals{20.0};
    std::uint64_t batches = 0;
    std::uint64_t processed = 0;
    std::uint64_t dropped = 0;
  };

  // Internals: the guard is held by the caller.
  void submit_locked(Query q);
  void resubmit_locked(std::vector<Query>&& queries);
  /// Terminal completion: deliver to the sink and, when the cache is on,
  /// insert fully generated images (cache misses) for future reuse.
  void complete_locked(const Query& q, int served_tier);
  /// Fire the terminal observer (if any) after a sink event.
  void notify_terminal_locked(const Query& q, int served_tier, double time,
                              bool dropped) {
    if (terminal_observer_) terminal_observer_(q, served_tier, time, dropped);
  }
  /// Route a query to its q.stage pool, falling down the chain (and, for
  /// queries without an image, back up) when pools are empty.
  void route_locked(Query q);
  WorkerSlot* shortest_queue_locked(int stage);
  void enqueue_locked(WorkerSlot& w, Query q);
  /// Pop the oldest entry of the highest-priority non-empty class ring
  /// (enum order: interactive, standard, batch). Precondition: some ring
  /// is non-empty.
  Enqueued pop_next_locked(WorkerSlot& w);
  void disarm_timer_locked(WorkerSlot& w);
  void maybe_start_batch_locked(std::size_t i);
  void start_batch_locked(std::size_t i);
  void finish_batch_locked(std::size_t i, std::vector<Query>& batch,
                           int served_tier, std::size_t stage);
  /// Reconfigure one worker; returns queries evicted on a model change.
  std::vector<Query> configure_locked(WorkerSlot& w, int stage);
  double exec_seconds(const WorkerSlot& w) const;
  PoolStats pool_stats_locked(int stage) const;
  /// Batch-vector pool: start_batch_locked draws here, finish_batch_locked
  /// returns the (cleared) vector, so steady-state batch formation touches
  /// the allocator only until every in-flight depth has warmed a vector.
  std::vector<Query> acquire_batch_locked(std::size_t reserve);
  void recycle_batch_locked(std::vector<Query>&& batch);
  /// Boundary-discriminator confidence for the image stage `stage` served
  /// at `tier`. For cache misses (every query with the cache off) the
  /// served feature — and therefore the discriminator's score — is a pure
  /// function of (prompt, boundary, tier), so the whole MLP forward pass
  /// collapses to one memo lookup after the first occurrence: same bytes,
  /// none of the per-query RNG replay, vector allocation, or matrix
  /// arithmetic. Cache-hit features depend on the donor and are computed
  /// directly.
  double scoring_confidence_locked(const Query& q, std::size_t stage,
                                   int tier);

  ExecutionBackend& backend_;
  const quality::Workload& workload_;
  const models::ModelRepository& repo_;
  models::CascadeSpec cascade_;
  std::vector<std::string> chain_;        ///< stage model names
  std::vector<std::string> disc_models_;  ///< boundary discriminator names
  std::vector<int> stage_tiers_;
  /// Boundary discriminator instances (null entries only in setups that
  /// never defer).
  std::vector<const discriminator::Discriminator*> discs_;
  EngineConfig cfg_;

  MetricsSink sink_;
  util::Rng rng_;
  /// Prompt stream for engine-admitted queries (round-robin by default).
  trace::PromptSampler prompt_sampler_;
  /// Null when cfg_.cache.enabled is false — every cache touch is gated
  /// on this pointer, which is what keeps cache-off byte-identical.
  std::unique_ptr<cache::ApproxCache> cache_;
  std::vector<WorkerSlot> workers_;
  AllocationPlan plan_;
  /// Recycled batch vectors (see acquire_batch_locked).
  std::vector<std::vector<Query>> batch_pool_;
  /// Frontier bitmask for start_batch_locked's two-pass drop selection:
  /// a marked member is dropped without erasing (no mid-vector shifts);
  /// scans walk the mask. Member scratch, reused across batches.
  std::vector<std::uint8_t> drop_mask_;
  /// Memoized cache-miss confidences keyed by (prompt << 16) |
  /// (stage << 8) | tier (see scoring_confidence_locked). Guard-protected
  /// like all engine state.
  std::unordered_map<std::uint64_t, double> miss_confidence_memo_;
  /// Per-stage downstream reserve: SLO time kept for the rest of the chain
  /// (reserve of the final stage is 0).
  std::vector<double> reserve_;
  std::function<void(std::size_t, double)> confidence_observer_;
  std::function<void(const Query&, int, double, bool)> terminal_observer_;

  stats::SlidingWindowCounter demand_{12.0};
  /// Per-class arrival counters (only touched while SLO classes are
  /// enabled — the disabled path must do literally nothing extra).
  std::array<stats::SlidingWindowCounter, kQueryClassCount> class_demand_{
      {stats::SlidingWindowCounter{12.0}, stats::SlidingWindowCounter{12.0},
       stats::SlidingWindowCounter{12.0}}};
  /// Admission-policy rejections per class (see class_admission_drops()).
  std::array<std::uint64_t, kQueryClassCount> class_admission_drops_{};
  std::uint64_t submitted_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t reconfigurations_ = 0;
};

}  // namespace diffserve::engine
