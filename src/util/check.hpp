// Assertion and precondition macros used across the library.
//
// DS_REQUIRE  — validate a caller-supplied precondition; throws
//               std::invalid_argument with a descriptive message.
// DS_CHECK    — validate an internal invariant; throws std::logic_error.
// Both are always on (never compiled out): this library is used for
// research experiments where silent corruption is worse than the cost of
// a branch.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace diffserve::util {

[[noreturn]] inline void throw_require_failure(const char* expr,
                                               const char* file, int line,
                                               const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_check_failure(const char* expr,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace diffserve::util

#define DS_REQUIRE(cond, msg)                                              \
  do {                                                                     \
    if (!(cond))                                                           \
      ::diffserve::util::throw_require_failure(#cond, __FILE__, __LINE__,  \
                                               (msg));                     \
  } while (0)

#define DS_CHECK(cond, msg)                                              \
  do {                                                                   \
    if (!(cond))                                                         \
      ::diffserve::util::throw_check_failure(#cond, __FILE__, __LINE__,  \
                                             (msg));                     \
  } while (0)
