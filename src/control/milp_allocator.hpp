// MILP resource allocator — the paper's formulation (§3.3, Eq. 1-5).
//
//   max t
//   s.t. e(b1) + q(b1) + e(b2) + q(b2) <= L
//        x1 T1(b1) >= lambda D
//        x2 T2(b2) >= lambda D f(t)
//        x1 + x2 <= S
//
// Linearization: batch choices become one-hot binaries y_{i,b}; the product
// x_i * T_i(b_i) becomes per-batch integer counts x_{i,b} <= S * y_{i,b};
// the threshold becomes one-hot binaries z_k over the profiled grid with
// f_k = f(t_k). A small per-worker penalty breaks ties toward smaller
// deployments without affecting the threshold optimum.
//
// Falls back to the exhaustive allocator's overload plan when infeasible.
#pragma once

#include "control/allocator.hpp"
#include "milp/branch_and_bound.hpp"

namespace diffserve::control {

class MilpAllocator : public Allocator {
 public:
  /// Two equivalent formulations of the threshold choice:
  ///   * kContinuousDeferral (default) — exploits that f(t) is monotone, so
  ///     max t === max f: a single continuous deferral variable phi replaces
  ///     the one-hot grid; t = f^{-1}(phi) is looked up after the solve.
  ///     Far fewer binaries -> millisecond solves in the control loop.
  ///   * kThresholdGrid — the paper's literal one-hot z_k grid. Same
  ///     optimum (asserted in tests); kept for fidelity and benchmarking.
  enum class Formulation { kContinuousDeferral, kThresholdGrid };

  explicit MilpAllocator(Formulation formulation = Formulation::kContinuousDeferral,
                         milp::MilpOptions options = {});

  AllocationDecision allocate(const AllocationInput& input) override;
  std::string name() const override { return "milp"; }

  /// Build the MILP for an input (exposed for tests and the overhead
  /// bench). Variable layout documented in the implementation.
  static milp::Problem build_problem(const AllocationInput& input,
                                     Formulation formulation,
                                     double worker_penalty = 1e-6);

  /// Nodes explored by the last solve.
  int last_nodes() const { return last_nodes_; }

 private:
  Formulation formulation_;
  milp::MilpOptions options_;
  int last_nodes_ = 0;
};

}  // namespace diffserve::control
