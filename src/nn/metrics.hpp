// Classifier evaluation metrics: accuracy, ROC AUC, expected calibration
// error. Used in tests to assert the trained discriminator actually
// separates real from generated features, and in the discriminator bench.
#pragma once

#include <vector>

namespace diffserve::nn {

/// Fraction of predictions (score >= 0.5 -> class 1) matching labels.
double accuracy(const std::vector<double>& scores,
                const std::vector<int>& labels);

/// Area under the ROC curve via the rank-sum (Mann-Whitney) formulation;
/// ties contribute half. Requires both classes present.
double roc_auc(const std::vector<double>& scores,
               const std::vector<int>& labels);

/// Expected calibration error over `bins` equal-width probability bins.
double expected_calibration_error(const std::vector<double>& scores,
                                  const std::vector<int>& labels,
                                  std::size_t bins = 10);

}  // namespace diffserve::nn
