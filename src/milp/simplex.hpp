// Two-phase primal simplex for linear programs.
//
// Solves  max c^T x  s.t.  A x {<=,>=,=} b,  l <= x <= u  by conversion to
// standard form (variable shift to zero lower bounds, explicit rows for
// finite upper bounds, slack/surplus/artificial columns) followed by a
// dense-tableau two-phase simplex. Dantzig pricing with a Bland's-rule
// fallback guards against cycling. Problem sizes in this system are tiny
// (tens of variables), so the dense tableau is the appropriate choice.
#pragma once

#include "milp/problem.hpp"

namespace diffserve::milp {

struct SimplexOptions {
  double tol = 1e-9;          ///< pivot / feasibility tolerance
  int max_iterations = 20000;
  /// Switch to Bland's rule after this many Dantzig iterations.
  int bland_after = 5000;
};

/// Solve the LP relaxation of `p` (integrality markers ignored).
Solution solve_lp(const Problem& p, const SimplexOptions& opts = {});

}  // namespace diffserve::milp
