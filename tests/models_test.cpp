// Tests for the model repository and latency profiles against the paper's
// published numbers.
#include <gtest/gtest.h>

#include "models/latency_profile.hpp"
#include "models/model_repository.hpp"

namespace diffserve::models {
namespace {

TEST(LatencyProfile, AffineMatchesBaseAtBatchOne) {
  const auto p = LatencyProfile::affine(1.78);
  EXPECT_NEAR(p.execution_latency(1), 1.78, 1e-12);
}

TEST(LatencyProfile, LatencyMonotoneInBatch) {
  const auto p = LatencyProfile::affine(0.1);
  double prev = 0.0;
  for (const int b : p.batch_sizes()) {
    EXPECT_GT(p.execution_latency(b), prev);
    prev = p.execution_latency(b);
  }
}

TEST(LatencyProfile, ThroughputImprovesWithBatching) {
  const auto p = LatencyProfile::affine(1.0, 0.3);
  EXPECT_GT(p.throughput(32), p.throughput(1));
  EXPECT_NEAR(p.peak_throughput(), p.throughput(32), 1e-12);
}

TEST(LatencyProfile, MinBatchForThroughput) {
  const auto p = LatencyProfile::affine(1.0, 0.3);
  // T(1) = 1.0; T(2) = 2/1.7 ~ 1.18
  EXPECT_EQ(p.min_batch_for_throughput(1.1), 2);
  EXPECT_EQ(p.min_batch_for_throughput(0.5), 1);
  EXPECT_EQ(p.min_batch_for_throughput(1000.0), -1);
}

TEST(LatencyProfile, ExplicitMeasurements) {
  LatencyProfile p(std::map<int, double>{{1, 0.5}, {4, 1.0}});
  EXPECT_TRUE(p.supports(4));
  EXPECT_FALSE(p.supports(2));
  EXPECT_EQ(p.max_batch_size(), 4);
  EXPECT_THROW(p.execution_latency(2), std::invalid_argument);
}

TEST(LatencyProfile, RejectsInvalid) {
  EXPECT_THROW(LatencyProfile(std::map<int, double>{}),
               std::invalid_argument);
  EXPECT_THROW(LatencyProfile(std::map<int, double>{{1, -0.5}}),
               std::invalid_argument);
  // Non-monotone batch latency is physically impossible.
  EXPECT_THROW(LatencyProfile(std::map<int, double>{{1, 2.0}, {2, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(LatencyProfile::affine(0.0), std::invalid_argument);
}

TEST(Repository, PaperCatalogLatencies) {
  const auto repo = ModelRepository::with_paper_catalog();
  // §4.1 measured single-image latencies on A100-80GB.
  EXPECT_NEAR(repo.model(catalog::kSdTurbo).latency.execution_latency(1),
              0.10, 1e-9);
  EXPECT_NEAR(repo.model(catalog::kSdV15).latency.execution_latency(1),
              1.78, 1e-9);
  EXPECT_NEAR(repo.model(catalog::kSdxs).latency.execution_latency(1), 0.05,
              1e-9);
  EXPECT_NEAR(
      repo.model(catalog::kSdxlLightning).latency.execution_latency(1), 0.5,
      1e-9);
  EXPECT_NEAR(repo.model(catalog::kSdxl).latency.execution_latency(1), 6.0,
              1e-9);
  // §4.4 discriminator latencies: 10 / 2 / 5 ms.
  EXPECT_NEAR(
      repo.model(catalog::kEfficientNet).latency.execution_latency(1), 0.010,
      1e-9);
  EXPECT_NEAR(repo.model(catalog::kResNet).latency.execution_latency(1),
              0.002, 1e-9);
  EXPECT_NEAR(repo.model(catalog::kViT).latency.execution_latency(1), 0.005,
              1e-9);
}

TEST(Repository, PaperCascades) {
  const auto repo = ModelRepository::with_paper_catalog();
  const auto& c1 = repo.cascade(catalog::kCascade1);
  EXPECT_EQ(c1.light_model, catalog::kSdTurbo);
  EXPECT_EQ(c1.heavy_model, catalog::kSdV15);
  EXPECT_EQ(c1.slo_seconds, 5.0);
  const auto& c3 = repo.cascade(catalog::kCascade3);
  EXPECT_EQ(c3.light_model, catalog::kSdxlLightning);
  EXPECT_EQ(c3.heavy_model, catalog::kSdxl);
  EXPECT_EQ(c3.slo_seconds, 15.0);
}

TEST(Repository, QualityTiersOrderHeavierModelsHigher) {
  const auto repo = ModelRepository::with_paper_catalog();
  EXPECT_LT(repo.model(catalog::kSdTurbo).quality_tier,
            repo.model(catalog::kSdV15).quality_tier);
  EXPECT_LT(repo.model(catalog::kSdxs).quality_tier,
            repo.model(catalog::kSdTurbo).quality_tier);
  EXPECT_LT(repo.model(catalog::kSdxlLightning).quality_tier,
            repo.model(catalog::kSdxl).quality_tier);
}

TEST(Repository, DuplicateRegistrationRejected) {
  ModelRepository repo;
  repo.register_model({"m", ModelKind::kDiffusion,
                       LatencyProfile::affine(1.0), 1, 512});
  EXPECT_THROW(repo.register_model({"m", ModelKind::kDiffusion,
                                    LatencyProfile::affine(1.0), 1, 512}),
               std::invalid_argument);
}

TEST(Repository, CascadeValidation) {
  ModelRepository repo;
  repo.register_model({"light", ModelKind::kDiffusion,
                       LatencyProfile::affine(0.1), 1, 512});
  repo.register_model({"heavy", ModelKind::kDiffusion,
                       LatencyProfile::affine(1.0), 2, 512});
  repo.register_model({"disc", ModelKind::kDiscriminator,
                       LatencyProfile::affine(0.01), 0, 512});
  // Unknown member.
  EXPECT_THROW(repo.register_cascade({"c", "light", "missing", "disc", 5.0}),
               std::invalid_argument);
  // Discriminator must have the right kind.
  EXPECT_THROW(repo.register_cascade({"c", "light", "heavy", "heavy", 5.0}),
               std::invalid_argument);
  // Valid.
  EXPECT_NO_THROW(
      repo.register_cascade({"c", "light", "heavy", "disc", 5.0}));
  EXPECT_EQ(repo.cascade("c").heavy_model, "heavy");
}

TEST(Repository, UnknownLookupsThrow) {
  const auto repo = ModelRepository::with_paper_catalog();
  EXPECT_THROW(repo.model("nope"), std::invalid_argument);
  EXPECT_THROW(repo.cascade("nope"), std::invalid_argument);
  EXPECT_FALSE(repo.has_model("nope"));
}

TEST(Repository, CatalogListsAllNames) {
  const auto repo = ModelRepository::with_paper_catalog();
  EXPECT_EQ(repo.model_names().size(), 8u);
  // Three paper cascades + the chain-form trio (cascade1-chain, chain3,
  // solo).
  EXPECT_EQ(repo.cascade_names().size(), 6u);
}

TEST(Repository, PairRegistrationNormalizesToChain) {
  const auto repo = ModelRepository::with_paper_catalog();
  const auto& c1 = repo.cascade(catalog::kCascade1);
  ASSERT_EQ(c1.chain.size(), 2u);
  EXPECT_EQ(c1.stage_model(0), catalog::kSdTurbo);
  EXPECT_EQ(c1.stage_model(1), catalog::kSdV15);
  ASSERT_EQ(c1.discriminators.size(), 1u);
  EXPECT_EQ(c1.boundary_discriminator(0), catalog::kEfficientNet);
  EXPECT_EQ(c1.boundary_count(), 1u);
}

TEST(Repository, ChainRegistrationSyncsPairAliases) {
  const auto repo = ModelRepository::with_paper_catalog();
  const auto& chain3 = repo.cascade(catalog::kChain3);
  ASSERT_EQ(chain3.chain.size(), 3u);
  EXPECT_EQ(chain3.light_model, catalog::kSdxs);
  EXPECT_EQ(chain3.heavy_model, catalog::kSdV15);
  EXPECT_EQ(chain3.boundary_count(), 2u);
  EXPECT_EQ(chain3.boundary_discriminator(1), catalog::kEfficientNet);

  const auto& solo = repo.cascade(catalog::kSoloHeavy);
  ASSERT_EQ(solo.chain.size(), 1u);
  EXPECT_EQ(solo.boundary_count(), 0u);
  EXPECT_TRUE(solo.discriminators.empty());
  EXPECT_EQ(solo.light_model, solo.heavy_model);
}

TEST(Repository, ChainValidation) {
  ModelRepository repo;
  repo.register_model({"a", ModelKind::kDiffusion,
                       LatencyProfile::affine(0.1), 1, 512});
  repo.register_model({"b", ModelKind::kDiffusion,
                       LatencyProfile::affine(0.5), 2, 512});
  repo.register_model({"c", ModelKind::kDiffusion,
                       LatencyProfile::affine(1.0), 3, 512});
  repo.register_model({"disc", ModelKind::kDiscriminator,
                       LatencyProfile::affine(0.01), 0, 512});

  // A single discriminator entry is replicated across every boundary.
  CascadeSpec ok;
  ok.name = "abc";
  ok.chain = {"a", "b", "c"};
  ok.discriminators = {"disc"};
  EXPECT_NO_THROW(repo.register_cascade(ok));
  EXPECT_EQ(repo.cascade("abc").discriminators.size(), 2u);

  // Unknown stage model.
  CascadeSpec bad = ok;
  bad.name = "bad1";
  bad.chain = {"a", "missing", "c"};
  EXPECT_THROW(repo.register_cascade(bad), std::invalid_argument);

  // A diffusion model cannot gate a boundary.
  bad = ok;
  bad.name = "bad2";
  bad.discriminators = {"b", "b"};
  EXPECT_THROW(repo.register_cascade(bad), std::invalid_argument);

  // Multi-boundary chains need a discriminator.
  bad = ok;
  bad.name = "bad3";
  bad.discriminators.clear();
  bad.discriminator.clear();
  EXPECT_THROW(repo.register_cascade(bad), std::invalid_argument);
}

TEST(StandardBatchSizes, PowersOfTwoUpTo32) {
  EXPECT_EQ(standard_batch_sizes(),
            (std::vector<int>{1, 2, 4, 8, 16, 32}));
}

}  // namespace
}  // namespace diffserve::models
