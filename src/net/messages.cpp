#include "net/messages.hpp"

#include <cstring>

namespace diffserve::net {

namespace {

// ---- primitive writers (big-endian) ----------------------------------------

class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 24));
    out_.push_back(static_cast<std::uint8_t>(v >> 16));
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "IEEE-754 double expected");
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }

  std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

// ---- primitive readers ------------------------------------------------------

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& buf)
      : p_(buf.data()), n_(buf.size()) {}

  bool u8(std::uint8_t* v) {
    if (pos_ + 1 > n_) return false;
    *v = p_[pos_++];
    return true;
  }
  bool u32(std::uint32_t* v) {
    if (pos_ + 4 > n_) return false;
    *v = (std::uint32_t{p_[pos_]} << 24) | (std::uint32_t{p_[pos_ + 1]} << 16) |
         (std::uint32_t{p_[pos_ + 2]} << 8) | std::uint32_t{p_[pos_ + 3]};
    pos_ += 4;
    return true;
  }
  bool u64(std::uint64_t* v) {
    std::uint32_t hi = 0, lo = 0;
    if (!u32(&hi) || !u32(&lo)) return false;
    *v = (std::uint64_t{hi} << 32) | std::uint64_t{lo};
    return true;
  }
  bool i32(std::int32_t* v) {
    std::uint32_t raw = 0;
    if (!u32(&raw)) return false;
    *v = static_cast<std::int32_t>(raw);
    return true;
  }
  bool f64(double* v) {
    std::uint64_t bits = 0;
    if (!u64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool boolean(bool* v) {
    std::uint8_t raw = 0;
    if (!u8(&raw) || raw > 1) return false;
    *v = raw != 0;
    return true;
  }
  /// Element count for a vector field, sanity-capped so a corrupt count
  /// can't drive a giant allocation before the per-element reads fail.
  bool count(std::size_t* v, std::size_t cap = 4096) {
    std::uint32_t raw = 0;
    if (!u32(&raw) || raw > cap) return false;
    *v = raw;
    return true;
  }
  bool done() const { return pos_ == n_; }

 private:
  const std::uint8_t* p_;
  std::size_t n_;
  std::size_t pos_ = 0;
};

// ---- shared sub-records ------------------------------------------------------

/// Serialized Query size before the SLO-class byte was appended; frames
/// this long decode with the pre-class layout (class defaults kStandard).
constexpr std::size_t kQueryRecordLegacyBytes = 94;

void write_query(Writer& w, const engine::Query& q) {
  w.u64(q.seq);
  w.u32(q.prompt_id);
  w.f64(q.arrival_time);
  w.f64(q.deadline);
  w.u32(static_cast<std::uint32_t>(q.stage));
  w.f64(q.stage_deadline);
  w.f64(q.confidence);
  w.boolean(q.deferred);
  w.i32(q.deferrals);
  w.i32(q.image_tier);
  w.i32(q.image_stage);
  w.u8(static_cast<std::uint8_t>(q.cache_hit));
  w.u32(q.cache_donor);
  w.f64(q.cache_distance);
  w.f64(q.cache_step_fraction);
  w.u32(q.cache_level_mask);
  w.f64(q.cache_resume_depth);
  w.u8(static_cast<std::uint8_t>(q.query_class));
}

/// `with_class` distinguishes the current layout from pre-class frames
/// (selected by the caller from the payload length); legacy records carry
/// no class byte and decode as kStandard.
bool read_query(Reader& r, engine::Query* q, bool with_class) {
  std::uint32_t stage = 0;
  std::uint8_t hit = 0;
  const bool ok = r.u64(&q->seq) && r.u32(&q->prompt_id) &&
                  r.f64(&q->arrival_time) && r.f64(&q->deadline) &&
                  r.u32(&stage) && r.f64(&q->stage_deadline) &&
                  r.f64(&q->confidence) && r.boolean(&q->deferred) &&
                  r.i32(&q->deferrals) && r.i32(&q->image_tier) &&
                  r.i32(&q->image_stage) && r.u8(&hit) &&
                  r.u32(&q->cache_donor) && r.f64(&q->cache_distance) &&
                  r.f64(&q->cache_step_fraction) &&
                  r.u32(&q->cache_level_mask) && r.f64(&q->cache_resume_depth);
  if (!ok || hit > static_cast<std::uint8_t>(cache::HitLevel::kApproxFar))
    return false;
  q->stage = stage;
  q->cache_hit = static_cast<cache::HitLevel>(hit);
  q->query_class = engine::QueryClass::kStandard;
  if (with_class) {
    std::uint8_t cls = 0;
    if (!r.u8(&cls) || cls >= engine::kQueryClassCount) return false;
    q->query_class = static_cast<engine::QueryClass>(cls);
  }
  return true;
}

void write_cache_stats(Writer& w, const cache::CacheStats& s) {
  w.u64(s.lookups);
  w.u64(s.exact_hits);
  w.u64(s.near_hits);
  w.u64(s.far_hits);
  w.u64(s.insertions);
  w.u64(s.latent_insertions);
  w.u64(s.evictions);
  w.f64(s.step_fraction_sum);
  w.f64(s.near_step_fraction_sum);
  w.f64(s.far_step_fraction_sum);
  w.u64(s.lsh_probed_cells);
  w.u64(s.lsh_probe_candidates);
  w.u64(s.heap_compactions);
  w.u64(s.heap_stale_pops);
}

bool read_cache_stats(Reader& r, cache::CacheStats* s) {
  return r.u64(&s->lookups) && r.u64(&s->exact_hits) && r.u64(&s->near_hits) &&
         r.u64(&s->far_hits) && r.u64(&s->insertions) &&
         r.u64(&s->latent_insertions) && r.u64(&s->evictions) &&
         r.f64(&s->step_fraction_sum) && r.f64(&s->near_step_fraction_sum) &&
         r.f64(&s->far_step_fraction_sum) && r.u64(&s->lsh_probed_cells) &&
         r.u64(&s->lsh_probe_candidates) && r.u64(&s->heap_compactions) &&
         r.u64(&s->heap_stale_pops);
}

void write_plan(Writer& w, const engine::AllocationPlan& p) {
  w.u8(static_cast<std::uint8_t>(p.mode));
  w.u32(static_cast<std::uint32_t>(p.workers.size()));
  for (int x : p.workers) w.i32(x);
  w.u32(static_cast<std::uint32_t>(p.batches.size()));
  for (int b : p.batches) w.i32(b);
  w.u32(static_cast<std::uint32_t>(p.thresholds.size()));
  for (double t : p.thresholds) w.f64(t);
  w.f64(p.p_heavy);
}

bool read_plan(Reader& r, engine::AllocationPlan* p) {
  std::uint8_t mode = 0;
  std::size_t n = 0;
  if (!r.u8(&mode) || mode > 1) return false;
  p->mode = static_cast<engine::RoutingMode>(mode);
  if (!r.count(&n)) return false;
  p->workers.resize(n);
  for (auto& x : p->workers)
    if (!r.i32(&x)) return false;
  if (!r.count(&n)) return false;
  p->batches.resize(n);
  for (auto& b : p->batches)
    if (!r.i32(&b)) return false;
  if (!r.count(&n)) return false;
  p->thresholds.resize(n);
  for (auto& t : p->thresholds)
    if (!r.f64(&t)) return false;
  return r.f64(&p->p_heavy);
}

Frame make_frame(const char* topic, Priority prio, Writer&& w) {
  Frame f;
  f.priority = static_cast<std::uint8_t>(prio);
  f.topic = topic;
  f.payload = w.take();
  return f;
}

bool topic_is(const Frame& f, const char* topic) { return f.topic == topic; }

}  // namespace

// ---- query/submit -----------------------------------------------------------

Frame encode(const QueryMsg& m) {
  Writer w;
  w.u32(m.shard);
  write_query(w, m.query);
  return make_frame(kTopicQuery, Priority::kHigh, std::move(w));
}

bool decode(const Frame& f, QueryMsg* out) {
  if (!topic_is(f, kTopicQuery)) return false;
  Reader r(f.payload);
  // Pre-class frames are exactly one byte shorter; they decode with the
  // legacy layout and a kStandard class.
  const bool with_class = f.payload.size() != 4 + kQueryRecordLegacyBytes;
  return r.u32(&out->shard) && read_query(r, &out->query, with_class) &&
         r.done();
}

// ---- query/terminal ----------------------------------------------------------

Frame encode(const TerminalMsg& m) {
  Writer w;
  w.u32(m.shard);
  write_query(w, m.query);
  w.f64(m.time);
  w.i32(m.served_tier);
  w.boolean(m.dropped);
  return make_frame(kTopicTerminal, Priority::kMedium, std::move(w));
}

bool decode(const Frame& f, TerminalMsg* out) {
  if (!topic_is(f, kTopicTerminal)) return false;
  Reader r(f.payload);
  const bool with_class =
      f.payload.size() != 4 + kQueryRecordLegacyBytes + 8 + 4 + 1;
  return r.u32(&out->shard) && read_query(r, &out->query, with_class) &&
         r.f64(&out->time) && r.i32(&out->served_tier) &&
         r.boolean(&out->dropped) && r.done();
}

// ---- shard/stats_request -------------------------------------------------------

Frame encode(const StatsRequestMsg& m) {
  Writer w;
  w.u32(m.shard);
  w.u64(m.token);
  return make_frame(kTopicStatsRequest, Priority::kCritical, std::move(w));
}

bool decode(const Frame& f, StatsRequestMsg* out) {
  if (!topic_is(f, kTopicStatsRequest)) return false;
  Reader r(f.payload);
  return r.u32(&out->shard) && r.u64(&out->token) && r.done();
}

// ---- shard/stats ---------------------------------------------------------------

Frame encode(const ShardStatsMsg& m) {
  Writer w;
  w.u32(m.shard);
  w.u64(m.token);
  w.f64(m.time);
  w.f64(m.demand_rate);
  w.f64(m.recent_violation_ratio);
  w.u64(m.submitted);
  w.boolean(m.cache_enabled);
  write_cache_stats(w, m.cache);
  w.u32(static_cast<std::uint32_t>(m.stages.size()));
  for (const auto& s : m.stages) {
    w.f64(s.queue_length);
    w.f64(s.arrival_rate);
    w.i32(s.workers);
  }
  w.u32(static_cast<std::uint32_t>(m.class_demand.size()));
  for (double d : m.class_demand) w.f64(d);
  return make_frame(kTopicStats, Priority::kCritical, std::move(w));
}

bool decode(const Frame& f, ShardStatsMsg* out) {
  if (!topic_is(f, kTopicStats)) return false;
  Reader r(f.payload);
  std::size_t n = 0;
  if (!(r.u32(&out->shard) && r.u64(&out->token) && r.f64(&out->time) &&
        r.f64(&out->demand_rate) && r.f64(&out->recent_violation_ratio) &&
        r.u64(&out->submitted) && r.boolean(&out->cache_enabled) &&
        read_cache_stats(r, &out->cache) && r.count(&n)))
    return false;
  out->stages.resize(n);
  for (auto& s : out->stages)
    if (!(r.f64(&s.queue_length) && r.f64(&s.arrival_rate) &&
          r.i32(&s.workers)))
      return false;
  // Trailing per-class demand vector; pre-class frames end here.
  out->class_demand.clear();
  if (r.done()) return true;
  if (!r.count(&n)) return false;
  out->class_demand.resize(n);
  for (auto& d : out->class_demand)
    if (!r.f64(&d)) return false;
  return r.done();
}

// ---- cluster/plan ----------------------------------------------------------------

Frame encode(const PlanMsg& m) {
  Writer w;
  w.u32(m.shard);
  write_plan(w, m.plan);
  return make_frame(kTopicPlan, Priority::kCritical, std::move(w));
}

bool decode(const Frame& f, PlanMsg* out) {
  if (!topic_is(f, kTopicPlan)) return false;
  Reader r(f.payload);
  return r.u32(&out->shard) && read_plan(r, &out->plan) && r.done();
}

}  // namespace diffserve::net
