#include "control/milp_allocator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "control/exhaustive_allocator.hpp"
#include "util/check.hpp"

namespace diffserve::control {

MilpAllocator::MilpAllocator(Formulation formulation,
                             milp::MilpOptions options)
    : formulation_(formulation), options_(options) {}

namespace {

/// The grid formulation only linearizes a single boundary; deeper chains
/// use the continuous formulation.
MilpAllocator::Formulation effective_formulation(
    const AllocationInput& in, MilpAllocator::Formulation requested) {
  if (in.boundary_count() != 1)
    return MilpAllocator::Formulation::kContinuousDeferral;
  return requested;
}

}  // namespace

// Variable layout (in order of creation), per stage s = 0..N-1:
//   y_s[b]  binary   one-hot batch choice for stage s   (|B_s| vars)
//   x_s[b]  integer  stage-s workers running batch b    (|B_s| vars)
// then, depending on the formulation:
//   z[k]    binary   one-hot threshold choice           (kThresholdGrid,
//                                                        single boundary)
//   phi_b   continuous cumulative deferral fraction     (kContinuousDeferral,
//            entering stage b+1, one per boundary)
milp::Problem MilpAllocator::build_problem(const AllocationInput& in,
                                           Formulation formulation,
                                           double worker_penalty) {
  const std::size_t n = in.stage_count();
  DS_REQUIRE(in.boundary_count() + 1 == n,
             "one threshold grid per cascade boundary");
  for (const auto& grid : in.boundary_grids)
    DS_REQUIRE(!grid.empty(), "empty threshold grid");
  formulation = effective_formulation(in, formulation);
  milp::Problem p;
  const double s_cap = in.total_workers;
  const double d = in.provisioned_demand();

  std::vector<std::vector<int>> y(n), x(n);
  for (std::size_t s = 0; s < n; ++s) {
    const auto& bs = in.stages[s].perf.batch_sizes();
    y[s].resize(bs.size());
    x[s].resize(bs.size());
    const std::string tag = std::to_string(s + 1);
    for (std::size_t i = 0; i < bs.size(); ++i) {
      y[s][i] = p.add_variable("y" + tag + "_b" + std::to_string(bs[i]),
                               milp::VarType::kBinary, 0, 1, 0.0);
      x[s][i] = p.add_variable("x" + tag + "_b" + std::to_string(bs[i]),
                               milp::VarType::kInteger, 0, s_cap,
                               -worker_penalty);
    }
  }

  std::vector<int> z;
  std::vector<int> phi;
  if (formulation == Formulation::kThresholdGrid) {
    const auto& grid = in.threshold_grid();
    z.resize(grid.size());
    for (std::size_t k = 0; k < grid.size(); ++k)
      z[k] = p.add_variable("z_" + std::to_string(k), milp::VarType::kBinary,
                            0, 1, grid[k].threshold);
  } else {
    // Maximizing each cumulative fraction is equivalent to maximizing the
    // boundary thresholds because every f_b is monotone non-decreasing in
    // t; thresholds are recovered from the grids after the solve.
    phi.resize(in.boundary_count());
    for (std::size_t b = 0; b < in.boundary_count(); ++b)
      phi[b] = p.add_variable("phi_" + std::to_string(b),
                              milp::VarType::kContinuous, 0.0,
                              in.boundary_grids[b].back().fraction, 1.0);
  }

  // One-hot batch choices.
  std::vector<std::pair<int, double>> terms;
  for (std::size_t s = 0; s < n; ++s) {
    terms.clear();
    for (const int v : y[s]) terms.push_back({v, 1.0});
    p.add_constraint("choose_b" + std::to_string(s + 1), terms,
                     milp::Sense::kEq, 1.0);
  }
  if (formulation == Formulation::kThresholdGrid) {
    terms.clear();
    for (const int v : z) terms.push_back({v, 1.0});
    p.add_constraint("choose_t", terms, milp::Sense::kEq, 1.0);
  }

  // Workers may only run the chosen batch size: x_{s,b} <= S y_{s,b}.
  for (std::size_t s = 0; s < n; ++s) {
    const auto& bs = in.stages[s].perf.batch_sizes();
    for (std::size_t i = 0; i < bs.size(); ++i)
      p.add_constraint("link_x" + std::to_string(s + 1) + "_b" +
                           std::to_string(bs[i]),
                       {{x[s][i], 1.0}, {y[s][i], -s_cap}}, milp::Sense::kLe,
                       0.0);
  }

  // Eq. 2: stage-0 throughput (with utilization headroom) covers all
  // demand.
  terms.clear();
  {
    const auto& bs = in.stages[0].perf.batch_sizes();
    for (std::size_t i = 0; i < bs.size(); ++i)
      terms.push_back({x[0][i], in.stages[0].perf.throughput(bs[i]) *
                                    in.stages[0].utilization_target});
  }
  p.add_constraint("stage1_throughput", terms, milp::Sense::kGe, d);

  // Eq. 3 per deeper stage: throughput covers the demand deferred into it.
  for (std::size_t s = 1; s < n; ++s) {
    terms.clear();
    const auto& bs = in.stages[s].perf.batch_sizes();
    for (std::size_t i = 0; i < bs.size(); ++i)
      terms.push_back({x[s][i], in.stages[s].perf.throughput(bs[i]) *
                                    in.stages[s].utilization_target});
    if (formulation == Formulation::kThresholdGrid) {
      const auto& grid = in.threshold_grid();
      for (std::size_t k = 0; k < grid.size(); ++k)
        terms.push_back({z[k], -d * grid[k].fraction});
    } else {
      terms.push_back({phi[s - 1], -d});
    }
    p.add_constraint("stage" + std::to_string(s + 1) + "_throughput", terms,
                     milp::Sense::kGe, 0.0);
  }

  // Chain consistency: the fraction entering stage b+1 cannot exceed the
  // boundary's maximal deferral of what entered stage b. (Boundary 0's
  // bound is the variable's upper bound.)
  if (formulation == Formulation::kContinuousDeferral) {
    for (std::size_t b = 1; b < in.boundary_count(); ++b)
      p.add_constraint(
          "chain_phi" + std::to_string(b),
          {{phi[b], 1.0},
           {phi[b - 1], -in.boundary_grids[b].back().fraction}},
          milp::Sense::kLe, 0.0);
  }

  // Eq. 4: device budget.
  terms.clear();
  for (std::size_t s = 0; s < n; ++s)
    for (const int v : x[s]) terms.push_back({v, 1.0});
  p.add_constraint("device_budget", terms, milp::Sense::kLe, s_cap);

  // Eq. 1: latency. Queuing delays are constants at solve time (Little's
  // law on live observations); stage latencies depend on the chosen batch.
  double latency_budget = in.slo_seconds;
  terms.clear();
  for (std::size_t s = 0; s < n; ++s) {
    latency_budget -= littles_law_delay(in.stages[s].queue_length,
                                        in.stages[s].arrival_rate);
    const auto& bs = in.stages[s].perf.batch_sizes();
    for (std::size_t i = 0; i < bs.size(); ++i)
      terms.push_back({y[s][i], in.stages[s].perf.stage_latency(bs[i])});
  }
  p.add_constraint("latency_slo", terms, milp::Sense::kLe, latency_budget);

  return p;
}

AllocationDecision MilpAllocator::allocate(const AllocationInput& in) {
  // ds-lint: allow(wall-clock): solve_time_ms is telemetry; the decision
  // itself is a pure function of `in`.
  const auto start = std::chrono::steady_clock::now();
  const Formulation formulation = effective_formulation(in, formulation_);
  milp::MilpOptions options = options_;
  if (in.boundary_count() > 1) {
    // Deep chains blow up the branch-and-bound tree: the recovered
    // thresholds are quantized on the profile grid (~0.01 f spacing) while
    // the per-worker tie-break penalty creates hordes of ~1e-6 near-ties,
    // so proving a 1e-9 gap enumerates thousands of equivalent nodes
    // (seconds per solve at depth 3). Coarsen the gap to the grid scale
    // and cap the tree; a node-capped run still carries its best integral
    // incumbent, which is an anytime near-optimal plan — exactly what a
    // periodic control loop wants.
    options.absolute_gap = std::max(options.absolute_gap, 2e-3);
    options.max_nodes = std::min(options.max_nodes, 1500);
  }
  // A kLimit termination with values is a usable incumbent (optimality
  // just was not proven within the node budget).
  const auto usable = [](const milp::MilpResult& r) {
    return r.solution.optimal() ||
           (r.solution.status == milp::SolveStatus::kLimit &&
            !r.solution.values.empty());
  };
  milp::Problem problem = build_problem(in, formulation);
  milp::MilpResult res = milp::solve_milp(problem, options);
  last_nodes_ = res.nodes_explored;
  bool deep_capped = in.boundary_count() > 1 &&
                     res.nodes_explored >= options.max_nodes;
  if (!usable(res) && !deep_capped) {
    // Transient queue backlog can make Eq. 1 unsatisfiable; retry as pure
    // capacity planning (queues drain via the drop policy).
    problem = build_problem(relax_queue_estimates(in), formulation);
    res = milp::solve_milp(problem, options);
    last_nodes_ += res.nodes_explored;
    // The retry can itself blow the deep-chain node budget; route that to
    // the oracle below, not the overload fallback.
    deep_capped = in.boundary_count() > 1 &&
                  res.nodes_explored >= options.max_nodes;
  }

  const std::size_t n = in.stage_count();
  AllocationDecision out;
  out.resize_stages(n);
  if (usable(res)) {
    const auto& v = res.solution.values;
    std::size_t idx = 0;
    // Decode per the layout in build_problem.
    for (std::size_t s = 0; s < n; ++s) {
      const auto& bs = in.stages[s].perf.batch_sizes();
      for (std::size_t i = 0; i < bs.size(); ++i) {
        const double y = v[idx++];
        const double x = v[idx++];
        if (y > 0.5) {
          out.batches[s] = bs[i];
          out.workers[s] = static_cast<int>(std::lround(x));
        }
      }
    }
    if (formulation == Formulation::kThresholdGrid) {
      const auto& grid = in.threshold_grid();
      for (std::size_t k = 0; k < grid.size(); ++k) {
        if (v[idx++] > 0.5) {
          out.thresholds[0] = grid[k].threshold;
          out.deferral_fractions[0] = grid[k].fraction;
        }
      }
    } else {
      double prev = 1.0;
      for (std::size_t b = 0; b < in.boundary_count(); ++b) {
        const double achieved_phi = v[idx++];
        const auto& grid = in.boundary_grids[b];
        // Conditional deferral at this boundary; if (almost) nothing
        // reaches it, any threshold serves — take the most permissive.
        const double conditional =
            prev > 1e-9 ? achieved_phi / prev : grid.front().fraction;
        // Highest grid threshold whose deferral fits in the fraction.
        out.thresholds[b] = grid.front().threshold;
        out.deferral_fractions[b] = grid.front().fraction;
        for (const auto& g : grid) {
          if (g.fraction <= conditional + 1e-9) {
            out.thresholds[b] = g.threshold;
            out.deferral_fractions[b] = g.fraction;
          }
        }
        prev = achieved_phi;
      }
    }
    out.feasible = true;
  } else if (deep_capped) {
    // The deep-chain tree blew its node budget without an incumbent; hand
    // the instance to the exhaustive oracle rather than serving the
    // overload fallback for a feasible instance. Note the oracle optimizes
    // max sum(t_b) — a related but not identical criterion to this MILP's
    // max sum(phi_b) (see the header), so a budget-tripped tick may pick a
    // different, still-feasible threshold tuple.
    ExhaustiveAllocator oracle;
    out = oracle.allocate(in);
  } else {
    out = overload_fallback(in);
  }
  out.solve_time_ms = std::chrono::duration<double, std::milli>(
                          // ds-lint: allow(wall-clock): telemetry end-stamp
                          std::chrono::steady_clock::now() - start)
                          .count();
  return out;
}

}  // namespace diffserve::control
