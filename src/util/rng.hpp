// Seeded pseudo-random number generation for deterministic experiments.
//
// Every stochastic component in the library takes an explicit seed so that
// simulations, discriminator training, and benchmarks are reproducible
// run-to-run. The generator is xoshiro256**, seeded via splitmix64; the
// distribution samplers are self-contained (no reliance on
// implementation-defined std::distribution behaviour, which differs across
// standard libraries and would break cross-platform determinism).
#pragma once

#include <cstdint>
#include <vector>

namespace diffserve::util {

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box–Muller (cached second deviate).
  double normal();
  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Exponential with given rate (mean 1/rate).
  double exponential(double rate);
  /// Gamma(shape, scale) via Marsaglia–Tsang.
  double gamma(double shape, double scale);
  /// Beta(a, b) via two gamma draws.
  double beta(double a, double b);
  /// Poisson(mean) — inversion for small means, PTRS-style otherwise.
  std::int64_t poisson(double mean);
  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Derive an independent child generator (for per-entity streams).
  Rng fork();

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace diffserve::util
