#include "quality/fid.hpp"

#include "util/check.hpp"

namespace diffserve::quality {

FidScorer::FidScorer(const Workload& workload)
    : workload_(workload), reference_(workload.reference_stats()) {}

double FidScorer::fid(
    const std::vector<std::vector<double>>& served_features) const {
  DS_REQUIRE(served_features.size() >= 2,
             "need at least two served images for FID");
  return fid(linalg::fit_gaussian(served_features));
}

double FidScorer::fid(const linalg::GaussianStats& served) const {
  return linalg::frechet_distance_sq(served, reference_);
}

double FidScorer::fid_single_tier(int tier) const {
  std::vector<std::vector<double>> feats;
  feats.reserve(workload_.size());
  for (QueryId q = 0; q < workload_.size(); ++q)
    feats.push_back(workload_.generated_feature(q, tier));
  return fid(feats);
}

WindowedFid::WindowedFid(const FidScorer& scorer, double window_seconds,
                         std::size_t min_samples)
    : scorer_(scorer), window_(window_seconds), min_samples_(min_samples) {
  DS_REQUIRE(window_seconds > 0.0, "window must be positive");
  DS_REQUIRE(min_samples >= 2, "FID needs at least two samples");
}

void WindowedFid::add(double time_seconds, const std::vector<double>& feature) {
  DS_REQUIRE(!finalized_, "add after finalize");
  DS_REQUIRE(time_seconds >= window_start_,
             "features must arrive in non-decreasing time order");
  while (time_seconds >= window_start_ + window_) close_window();
  pending_.push_back(feature);
}

void WindowedFid::close_window() {
  if (pending_.size() >= min_samples_) {
    series_.push_back(
        {window_start_, scorer_.fid(pending_), pending_.size()});
    pending_.clear();
  }
  // Thin windows carry their samples into the next window rather than
  // emitting an unstable covariance estimate.
  window_start_ += window_;
}

const std::vector<WindowedFid::Point>& WindowedFid::finalize(double now) {
  if (finalized_) return series_;
  while (window_start_ + window_ <= now) close_window();
  if (pending_.size() >= min_samples_)
    series_.push_back({window_start_, scorer_.fid(pending_), pending_.size()});
  pending_.clear();
  finalized_ = true;
  return series_;
}

}  // namespace diffserve::quality
