// The deferral profile f(t): the fraction of queries whose light-model
// confidence falls below threshold t and which are therefore deferred to
// the heavyweight model.
//
// "f(t) is initialized through offline profiling and updated during model
// serving as t changes" (§3.3). The offline profile is the empirical CDF
// of discriminator confidences over a profiling prompt set; the online
// profile maintains a ring buffer of recent confidences so the controller's
// estimate tracks workload drift.
#pragma once

#include <cstddef>
#include <vector>

#include "discriminator/discriminator.hpp"
#include "quality/workload.hpp"

namespace diffserve::discriminator {

class DeferralProfile {
 public:
  /// Build from raw confidence samples of light-model outputs.
  explicit DeferralProfile(std::vector<double> confidences);

  /// Offline profiling: run `n_profile` workload queries through the light
  /// model + discriminator.
  static DeferralProfile profile(const quality::Workload& workload,
                                 const Discriminator& disc, int light_tier,
                                 std::size_t n_profile = 1000);

  /// f(t) = P(confidence < t): fraction deferred at threshold t.
  /// Monotone non-decreasing; f(0) = 0, f(1+) = 1.
  double fraction_deferred(double threshold) const;

  /// Largest threshold with f(t) <= target_fraction (inverse of f).
  double threshold_for_fraction(double target_fraction) const;

  /// Discrete threshold grid for the MILP: the thresholds at `n` evenly
  /// spaced deferral fractions in [0, max_fraction] (deduplicated,
  /// ascending). Each entry pairs (threshold, f(threshold)).
  ///
  /// `max_fraction` < 1 bounds planned deferral: past the FID optimum,
  /// deferring confidently-good light outputs wastes heavy capacity and
  /// *worsens* response quality (the Figure 1a tail), so the resource
  /// manager never plans for full deferral.
  struct GridPoint {
    double threshold;
    double fraction;
  };
  std::vector<GridPoint> grid(std::size_t n = 51,
                              double max_fraction = 1.0) const;

  std::size_t sample_count() const { return sorted_.size(); }

 private:
  std::vector<double> sorted_;  // ascending confidence samples
};

/// Sliding-window deferral profile updated from live confidences during
/// serving; falls back to the offline profile until enough samples arrive.
class OnlineDeferralProfile {
 public:
  OnlineDeferralProfile(DeferralProfile offline, std::size_t window_capacity,
                        std::size_t min_samples = 200);

  void observe(double confidence);
  double fraction_deferred(double threshold) const;
  std::vector<DeferralProfile::GridPoint> grid(
      std::size_t n = 51, double max_fraction = 1.0) const;
  std::size_t live_samples() const { return count_; }

 private:
  DeferralProfile current() const;

  DeferralProfile offline_;
  std::vector<double> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t min_samples_;
};

}  // namespace diffserve::discriminator
