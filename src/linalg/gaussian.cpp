#include "linalg/gaussian.hpp"

#include <cmath>

#include "linalg/eigen.hpp"
#include "util/check.hpp"

namespace diffserve::linalg {

GaussianStats fit_gaussian(const std::vector<std::vector<double>>& samples) {
  DS_REQUIRE(samples.size() >= 2, "need at least two samples to fit");
  GaussianAccumulator acc(samples.front().size());
  for (const auto& s : samples) acc.add(s);
  return acc.stats();
}

double frechet_distance_sq(const GaussianStats& a, const GaussianStats& b) {
  DS_REQUIRE(a.dim() == b.dim(), "dimension mismatch in frechet distance");
  const std::size_t n = a.dim();

  double mean_term = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a.mean[i] - b.mean[i];
    mean_term += d * d;
  }

  // tr((S1^{1/2} S2 S1^{1/2})^{1/2}) computed via symmetric PSD roots.
  const Matrix s1_half = sqrtm_psd(a.covariance);
  const Matrix inner = s1_half * b.covariance * s1_half;
  // Symmetrize to wash out roundoff before the second root.
  const Matrix inner_sym = (inner + inner.transpose()) * 0.5;
  const Matrix cross_root = sqrtm_psd(inner_sym);

  const double cov_term = a.covariance.trace() + b.covariance.trace() -
                          2.0 * cross_root.trace();
  // The exact value is non-negative; tiny negatives are numerical noise.
  return mean_term + std::max(0.0, cov_term);
}

GaussianAccumulator::GaussianAccumulator(std::size_t dim)
    : sum_(dim, 0.0), sum_outer_(dim, dim) {
  DS_REQUIRE(dim > 0, "zero-dimensional accumulator");
}

void GaussianAccumulator::add(const std::vector<double>& x) {
  DS_REQUIRE(x.size() == sum_.size(), "dimension mismatch in accumulator");
  ++count_;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sum_[i] += x[i];
    for (std::size_t j = 0; j < x.size(); ++j) sum_outer_(i, j) += x[i] * x[j];
  }
}

void GaussianAccumulator::merge(const GaussianAccumulator& other) {
  DS_REQUIRE(other.dim() == dim(), "dimension mismatch in merge");
  count_ += other.count_;
  for (std::size_t i = 0; i < sum_.size(); ++i) sum_[i] += other.sum_[i];
  sum_outer_ += other.sum_outer_;
}

void GaussianAccumulator::reset() {
  count_ = 0;
  std::fill(sum_.begin(), sum_.end(), 0.0);
  sum_outer_ = Matrix(sum_.size(), sum_.size());
}

GaussianStats GaussianAccumulator::stats() const {
  DS_REQUIRE(count_ >= 2, "need at least two samples for covariance");
  const std::size_t n = sum_.size();
  GaussianStats out;
  out.mean.resize(n);
  const double inv = 1.0 / static_cast<double>(count_);
  for (std::size_t i = 0; i < n; ++i) out.mean[i] = sum_[i] * inv;
  out.covariance = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      out.covariance(i, j) =
          sum_outer_(i, j) * inv - out.mean[i] * out.mean[j];
  // Symmetrize against accumulated roundoff.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = 0.5 * (out.covariance(i, j) + out.covariance(j, i));
      out.covariance(i, j) = v;
      out.covariance(j, i) = v;
    }
  return out;
}

}  // namespace diffserve::linalg
