// Minimal leveled logger.
//
// The serving system logs controller decisions, allocation changes, and
// worker lifecycle events. Default level is kWarn so tests and benches stay
// quiet; examples raise it to kInfo to narrate what the system is doing.
#pragma once

#include <sstream>
#include <string>

namespace diffserve::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line: "[level] [component] message".
void log_line(LogLevel level, const std::string& component,
              const std::string& message);

/// Stream-style helper: LogMessage(kInfo, "controller") << "demand=" << d;
class LogMessage {
 public:
  LogMessage(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace diffserve::util

#define DS_LOG(level, component) \
  ::diffserve::util::LogMessage(level, component)
#define DS_LOG_INFO(component) \
  DS_LOG(::diffserve::util::LogLevel::kInfo, component)
#define DS_LOG_DEBUG(component) \
  DS_LOG(::diffserve::util::LogLevel::kDebug, component)
#define DS_LOG_WARN(component) \
  DS_LOG(::diffserve::util::LogLevel::kWarn, component)
