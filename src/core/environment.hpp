// CascadeEnvironment: the shared, expensive-to-build assets of one cascade
// deployment — the evaluation workload, the model repository, the FID
// scorer, the *trained* discriminator, and its offline deferral profile.
// Build it once; run many experiments against it (every approach then sees
// byte-identical prompts, images, and discriminator).
#pragma once

#include <memory>
#include <string>

#include "discriminator/deferral_profile.hpp"
#include "discriminator/discriminator.hpp"
#include "models/model_repository.hpp"
#include "quality/fid.hpp"
#include "quality/workload.hpp"

namespace diffserve::core {

struct EnvironmentConfig {
  std::string cascade = models::catalog::kCascade1;
  std::size_t workload_queries = 5000;
  quality::QualityConfig quality;
  discriminator::DiscriminatorConfig discriminator;
  std::size_t profile_queries = 1500;  ///< offline f(t) profiling set
};

class CascadeEnvironment {
 public:
  explicit CascadeEnvironment(EnvironmentConfig cfg = {});

  const EnvironmentConfig& config() const { return cfg_; }
  const models::ModelRepository& repository() const { return repo_; }
  const models::CascadeSpec& cascade() const { return cascade_; }
  const quality::Workload& workload() const { return *workload_; }
  const quality::FidScorer& scorer() const { return *scorer_; }
  const discriminator::Discriminator& disc() const { return *disc_; }
  const discriminator::DeferralProfile& offline_profile() const {
    return *offline_profile_;
  }

  int light_tier() const { return light_tier_; }
  int heavy_tier() const { return heavy_tier_; }
  double default_slo() const { return cascade_.slo_seconds; }

 private:
  EnvironmentConfig cfg_;
  models::ModelRepository repo_;
  models::CascadeSpec cascade_;
  std::unique_ptr<quality::Workload> workload_;
  std::unique_ptr<quality::FidScorer> scorer_;
  std::unique_ptr<discriminator::Discriminator> disc_;
  std::unique_ptr<discriminator::DeferralProfile> offline_profile_;
  int light_tier_ = 0;
  int heavy_tier_ = 0;
};

}  // namespace diffserve::core
