// Figure 11: the approximate prompt-reuse cache across capacity and
// prompt-popularity skew, plus the indexed-lookup microbenchmark.
//
// Part 1 sweeps cache capacity (0 = cache off) x Zipf exponent on a
// Zipfian prompt stream with temporal locality, at fixed demand and
// cluster size. Expected shape: hit ratio grows with both capacity and
// skew; mean latency and the SLO-violation ratio fall as the cache
// absorbs repeated prompts and the cache-aware controller re-provisions
// for the effective demand; FID pays a bounded reuse-noise cost that
// shrinks as capacity lets more queries hit exactly instead of
// approximately. The sweep extends to 10^5 entries, where kAuto switches
// the lookup to the LSH index (a production trace from millions of users
// wants a million-entry cache, which the O(N) scan cannot serve).
//
// Part 2 isolates the lookup path: two caches with identical contents at
// 10^5 entries, one scanning and one LSH-indexed, timed over the same
// probe stream. The smoke run asserts the index wins by >= 5x — the CI
// guard for the indexed-lookup speedup claim.
//
//   --smoke   one small sweep combination + the large-capacity index
//             microbenchmark (CI: exercises the JSON emission and the
//             speedup floor)
#include <chrono>
#include <cstring>

#include "bench_common.hpp"
#include "cache/approx_cache.hpp"
#include "trace/prompt_mix.hpp"
#include "util/rng.hpp"

using namespace diffserve;

namespace {

/// Wall-clock seconds to run every key in `probes` through `c.lookup`.
double time_lookups(cache::ApproxCache& c,
                    const std::vector<std::vector<double>>& probes) {
  const auto start = std::chrono::steady_clock::now();
  double t = 0.0;
  for (const auto& k : probes) c.lookup(k, t += 1.0);
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  const std::size_t workload = smoke ? 600 : 2000;
  const double duration = smoke ? 60.0 : 120.0;
  const std::vector<std::size_t> capacities =
      smoke ? std::vector<std::size_t>{128}
            : std::vector<std::size_t>{0, 64, 256, 1024, 100000};
  const std::vector<double> skews =
      smoke ? std::vector<double>{1.1} : std::vector<double>{0.7, 1.1, 1.4};

  const auto env = bench::make_env(workload);
  const auto tr = trace::RateTrace::constant(10.0, duration);

  bench::banner("Figure 11",
                "prompt-reuse cache: capacity x Zipf skew, 8 GPUs, SLO 5 s");
  bench::ReportTable table(
      "fig11_cache_reuse",
      {"config", "capacity", "zipf_s", "hit_ratio", "exact_ratio", "fid",
       "violation_ratio", "mean_latency", "light_pct"},
      {16, 10, 8, 11, 13, 8, 16, 14, 11});

  for (const double s : skews) {
    // The cache-off baseline is swept per skew too: the Zipfian stream
    // changes the served mix even without reuse.
    for (const std::size_t cap : capacities) {
      core::RunConfig rc;
      rc.approach = core::Approach::kDiffServe;
      rc.total_workers = 8;
      rc.slo_seconds = 5.0;
      rc.trace = tr;
      rc.system.prompt_mix.kind = trace::PromptMixConfig::Kind::kZipf;
      rc.system.prompt_mix.zipf_exponent = s;
      rc.system.prompt_mix.locality = 0.3;
      if (cap > 0) {
        rc.system.cache.enabled = true;
        rc.system.cache.capacity = cap;
        // Large capacities flip kAuto to the LSH index; the sweep also
        // exercises the latent levels + interpolated fractions the big
        // configs exist for.
        rc.system.cache.interpolate_step_fraction = true;
        rc.system.cache.latent_levels = true;
      }
      const auto r = run_experiment(env, rc);

      char label[32];
      std::snprintf(label, sizeof(label), "cap%zu_s%.1f", cap, s);
      table.row(std::vector<std::string>{
          label, std::to_string(cap), bench::ReportTable::fmt(s),
          bench::ReportTable::fmt(r.cache_hit_ratio),
          bench::ReportTable::fmt(r.cache_exact_hit_ratio),
          bench::ReportTable::fmt(r.overall_fid),
          bench::ReportTable::fmt(r.violation_ratio),
          bench::ReportTable::fmt(r.mean_latency),
          bench::ReportTable::fmt(100.0 * r.light_served_fraction)});
    }
  }

  // --- Part 2: indexed lookup vs the linear scan at 10^5 entries ----------
  bench::banner("Figure 11b",
                "ApproxCache lookup: LSH index vs linear scan, 1e5 entries");
  const std::size_t entries = 100000;
  const std::size_t n_probes = smoke ? 1000 : 4000;
  const std::size_t dim = 6;

  cache::CacheConfig scan_cfg;
  scan_cfg.enabled = true;
  scan_cfg.capacity = entries;
  scan_cfg.index_kind = cache::IndexKind::kScan;
  cache::CacheConfig lsh_cfg = scan_cfg;
  lsh_cfg.index_kind = cache::IndexKind::kLsh;
  cache::ApproxCache scan_cache(scan_cfg);
  cache::ApproxCache lsh_cache(lsh_cfg);

  util::Rng rng(7);
  std::vector<double> key(dim);
  double t = 0.0;
  std::vector<std::vector<double>> sample;  // donors the probe stream reuses
  for (std::size_t i = 0; i < entries; ++i) {
    for (auto& v : key) v = rng.normal();
    scan_cache.insert(static_cast<quality::QueryId>(i), 1, 0, key, t += 1.0);
    lsh_cache.insert(static_cast<quality::QueryId>(i), 1, 0, key, t);
    if (i % (entries / 64) == 0) sample.push_back(key);
  }
  // Probe stream: half near-duplicates of cached keys (the hit path),
  // half fresh vectors (the miss path).
  std::vector<std::vector<double>> probes;
  probes.reserve(n_probes);
  for (std::size_t i = 0; i < n_probes; ++i) {
    if (i % 2 == 0) {
      auto k = sample[i % sample.size()];
      for (auto& v : k) v += rng.normal(0.0, 0.05);
      probes.push_back(std::move(k));
    } else {
      for (auto& v : key) v = rng.normal();
      probes.push_back(key);
    }
  }

  const double scan_s = time_lookups(scan_cache, probes);
  const double lsh_s = time_lookups(lsh_cache, probes);
  const double scan_us = 1e6 * scan_s / static_cast<double>(n_probes);
  const double lsh_us = 1e6 * lsh_s / static_cast<double>(n_probes);
  const double speedup = lsh_s > 0.0 ? scan_s / lsh_s : 0.0;
  const double lsh_hit = lsh_cache.stats().hit_ratio();
  const double scan_hit = scan_cache.stats().hit_ratio();
  // Recall of the approximate index against the exact scan, on this
  // probe stream (hits over the scan's hits).
  const double recall = scan_hit > 0.0 ? lsh_hit / scan_hit : 1.0;

  std::printf("scan: %8.2f us/lookup   hit_ratio %.3f\n", scan_us, scan_hit);
  std::printf("lsh:  %8.2f us/lookup   hit_ratio %.3f   recall %.3f\n",
              lsh_us, lsh_hit, recall);
  std::printf("speedup: %.1fx at %zu entries\n", speedup, entries);
  table.metric("index.scan_us_per_lookup", scan_us);
  table.metric("index.lsh_us_per_lookup", lsh_us);
  table.metric("index.speedup_1e5", speedup);
  table.metric("index.recall_vs_scan", recall);

  if (smoke && speedup < 5.0) {
    std::fprintf(stderr,
                 "FAIL: LSH index speedup %.2fx < 5x at %zu entries\n",
                 speedup, entries);
    return 1;
  }
  return 0;
}
