// Clang Thread Safety Analysis annotation macros.
//
// These wrap clang's `-Wthread-safety` attributes so locking discipline is
// machine-checked at compile time: which mutex guards which state
// (DS_GUARDED_BY), which functions must or must not be called with a lock
// held (DS_REQUIRES / DS_EXCLUDES), and which types are lock-like
// capabilities (DS_CAPABILITY / DS_SCOPED_CAPABILITY). The CI
// thread-safety gate compiles all of src/ under clang with
// `-Wthread-safety -Werror=thread-safety` (CMake option
// DIFFSERVE_THREAD_SAFETY); on gcc and on unannotated builds every macro
// expands to nothing, so the annotations cost nothing off clang.
//
// Use util/mutex.hpp (util::Mutex / util::MutexLock / util::CondVar)
// rather than raw std::mutex in lock-owning classes — the analysis can
// only follow locks whose acquire/release points carry these attributes.
//
// Naming follows the LLVM/abseil convention, prefixed DS_ for this
// library. See docs/static-analysis.md for the full policy.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define DS_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define DS_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off clang
#endif

/// Type-level: this class is a lockable capability ("mutex").
#define DS_CAPABILITY(x) DS_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Type-level: RAII object that holds a capability for its lifetime.
#define DS_SCOPED_CAPABILITY DS_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Member: may only be read/written while holding `x`.
#define DS_GUARDED_BY(x) DS_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member: the pointed-to data is protected by `x` (the pointer
/// itself may be read freely).
#define DS_PT_GUARDED_BY(x) DS_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function: caller must hold the given capabilities (exclusively).
#define DS_REQUIRES(...) \
  DS_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Function: caller must NOT hold the given capabilities (deadlock guard).
#define DS_EXCLUDES(...) \
  DS_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Function: acquires the capability (and does not release it).
#define DS_ACQUIRE(...) \
  DS_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function: releases the capability.
#define DS_RELEASE(...) \
  DS_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function: acquires the capability iff the return value equals the
/// first argument (e.g. DS_TRY_ACQUIRE(true)).
#define DS_TRY_ACQUIRE(...) \
  DS_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Function: returns a reference to the given capability.
#define DS_RETURN_CAPABILITY(x) DS_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Function: opt this function out of the analysis. Reserved for code
/// that is correct for reasons the analysis cannot see (e.g. locks
/// handed across an ownership seam); every use needs a comment saying
/// why, mirroring the ds-lint allow policy.
#define DS_NO_THREAD_SAFETY_ANALYSIS \
  DS_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
