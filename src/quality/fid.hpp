// FID scoring of served image sets.
//
// "To compute the FID score for a given system configuration, we process
// all text prompts in a dataset through the system and evaluate the quality
// of the generated images" (§4.1). The scorer holds the real-image
// reference statistics and computes the exact Gaussian Fréchet distance to
// whatever feature set the system served. A windowed accumulator supports
// the FID-over-time series of Figures 5 and 8.
#pragma once

#include <vector>

#include "linalg/gaussian.hpp"
#include "quality/workload.hpp"

namespace diffserve::quality {

class FidScorer {
 public:
  explicit FidScorer(const Workload& workload);

  /// FID of an explicit feature set against the reference distribution.
  double fid(const std::vector<std::vector<double>>& served_features) const;
  /// FID from pre-fitted Gaussian statistics.
  double fid(const linalg::GaussianStats& served) const;

  /// Convenience: FID if *every* query were served by `tier`.
  double fid_single_tier(int tier) const;

  const linalg::GaussianStats& reference() const { return reference_; }
  std::size_t feature_dim() const { return reference_.dim(); }

 private:
  const Workload& workload_;
  linalg::GaussianStats reference_;
};

/// Accumulates served features and emits FID per fixed time window —
/// regularized toward the previous window when a window has too few
/// samples for a stable covariance.
class WindowedFid {
 public:
  WindowedFid(const FidScorer& scorer, double window_seconds,
              std::size_t min_samples = 32);

  void add(double time_seconds, const std::vector<double>& feature);

  struct Point {
    double window_start;
    double fid;
    std::size_t samples;
  };
  /// Close out all windows up to `now` and return the completed series so
  /// far (idempotent; call once at the end of a run).
  const std::vector<Point>& finalize(double now);
  const std::vector<Point>& series() const { return series_; }

 private:
  void close_window();

  const FidScorer& scorer_;
  double window_;
  std::size_t min_samples_;
  double window_start_ = 0.0;
  std::vector<std::vector<double>> pending_;  // carries over thin windows
  std::vector<Point> series_;
  bool finalized_ = false;
};

}  // namespace diffserve::quality
