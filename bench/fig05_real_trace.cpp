// Figure 5: timeline comparison on the real-world (Azure-Functions-like)
// trace, Cascade 1, 16 workers, SLO 5 s: demand, FID-over-time, and
// SLO-violation-ratio-over-time for all five approaches. Expected shape:
// DiffServe holds the best quality off-peak and low violations at peak;
// Clipper-Heavy violates massively at peak; DiffServe-Static violates at
// peak because its fixed threshold cannot back off.
#include "bench_common.hpp"
#include "core/environment.hpp"
#include "core/experiment.hpp"

using namespace diffserve;

int main() {
  core::EnvironmentConfig ec;
  ec.workload_queries = 5000;
  core::CascadeEnvironment env(ec);

  // The artifact's trace_4to32qps family for 16 workers.
  const auto tr = trace::RateTrace::azure_like(4.0, 32.0, 360.0, 3);
  tr.save(bench::results_dir() + "/trace_4to32qps.txt");

  util::CsvWriter csv(bench::csv_path("fig05_timeline"),
                      {"approach", "time", "demand_qps", "fid",
                       "violation_ratio", "threshold"});

  bench::banner("Figure 5", "Azure-like trace 4->32 QPS, Cascade 1, 16 GPUs");
  std::printf("%-18s %-8s %-12s %-10s %-10s %-10s\n", "approach", "FID",
              "violations", "mean_lat", "light%", "solve_ms");

  for (const auto approach : core::comparison_approaches()) {
    core::RunConfig rc;
    rc.approach = approach;
    rc.total_workers = 16;
    rc.trace = tr;
    const auto r = run_experiment(env, rc);
    std::printf("%-18s %-8.2f %-12.3f %-10.2f %-10.2f %-10.2f\n",
                r.approach.c_str(), r.overall_fid, r.violation_ratio,
                r.mean_latency, 100.0 * r.light_served_fraction,
                r.mean_solve_ms);

    // Timeline rows (threshold sampled from the nearest control snapshot).
    for (const auto& pt : r.timeline) {
      double threshold = 0.0;
      for (const auto& h : r.control_history)
        if (h.time <= pt.time) threshold = h.decision.threshold;
      csv.add_row(std::vector<std::string>{
          r.approach, util::CsvWriter::format(pt.time),
          util::CsvWriter::format(tr.qps_at(pt.time)),
          util::CsvWriter::format(pt.fid),
          util::CsvWriter::format(pt.violation_ratio),
          util::CsvWriter::format(threshold)});
    }
  }

  std::printf("[csv] %s\n", bench::csv_path("fig05_timeline").c_str());
  return 0;
}
