// Performance models for the resource allocation problem (§3.3).
//
// Execution latency comes from profiled batch latencies; the end-to-end
// stage latency model adds the batch-fill wait (half-to-one batch period;
// we use 0.5 * e(b), matching lazy batching in expectation). Queuing delay
// uses Little's law, W = L / lambda, from the controller's live queue
// length and arrival-rate observations.
#pragma once

#include <algorithm>

#include "models/latency_profile.hpp"

namespace diffserve::control {

/// Latency/throughput model for one cascade stage.
class StagePerfModel {
 public:
  StagePerfModel() = default;
  /// `extra` (e.g. the discriminator pass on light workers) is added to
  /// every batch execution.
  StagePerfModel(models::LatencyProfile profile,
                 const models::LatencyProfile* extra);

  /// Batch execution latency e(b), including the extra pass.
  double execution_latency(int batch) const;
  /// Single-worker throughput T(b) = b / e(b).
  double throughput(int batch) const;
  /// Expected in-system stage latency excluding queuing: execution plus
  /// the expected batch-fill wait.
  double stage_latency(int batch) const;

  const std::vector<int>& batch_sizes() const { return batches_; }

 private:
  models::LatencyProfile profile_;
  models::LatencyProfile extra_;
  bool has_extra_ = false;
  std::vector<int> batches_;
};

/// Little's-law queuing delay: W = L / lambda (0 when idle).
inline double littles_law_delay(double queue_length, double arrival_rate) {
  if (arrival_rate <= 1e-9) return 0.0;
  return std::max(0.0, queue_length) / arrival_rate;
}

}  // namespace diffserve::control
