// Batch-latency profiles.
//
// "As the execution time of text-to-prompt diffusion models is highly
// deterministic, execution latency can be accurately predicted and profiled
// across different batch sizes" (§3.3). A profile stores e(b) for the
// supported batch sizes; throughput is T(b) = b / e(b). Profiles are
// constructed either from explicit measurements or from the standard
// affine batching model e(b) = base * (overhead + (1 - overhead) * b),
// which matches the sublinear per-image scaling GPUs exhibit.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

namespace diffserve::models {

/// Batch sizes the serving system considers (powers of two up to 32, as in
/// typical serving systems including the paper's artifact).
const std::vector<int>& standard_batch_sizes();

class LatencyProfile {
 public:
  LatencyProfile() = default;
  /// Explicit (batch size -> execution latency seconds) measurements.
  explicit LatencyProfile(std::map<int, double> measured);

  /// Affine batching model: e(b) = base_latency * (overhead_fraction +
  /// (1 - overhead_fraction) * b), evaluated at the standard batch sizes.
  /// e(1) == base_latency by construction.
  static LatencyProfile affine(double base_latency_seconds,
                               double overhead_fraction = 0.3);

  /// Execution latency of one batch of size b (seconds).
  double execution_latency(int batch_size) const;
  /// Single-worker throughput at batch size b (queries/second).
  double throughput(int batch_size) const;

  /// Batch sizes with measurements, ascending.
  std::vector<int> batch_sizes() const;
  int max_batch_size() const;
  bool supports(int batch_size) const;

  /// Highest throughput over all supported batch sizes.
  double peak_throughput() const;
  /// Smallest batch size whose throughput is >= the target rate, or -1 if
  /// even the largest batch cannot keep up.
  int min_batch_for_throughput(double qps) const;

 private:
  std::map<int, double> latency_;  // batch -> seconds
};

}  // namespace diffserve::models
