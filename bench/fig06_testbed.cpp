// Figure 6: average FID and SLO-violation ratio for Cascades 2 and 3
// across all five approaches, plus the §4.3 simulator-vs-testbed fidelity
// comparison. The five-approach comparison runs in the DES (like the
// paper's main numbers); DiffServe additionally runs through the threaded
// testbed runtime and the two results are diffed — reproducing the paper's
// "simulator closely matches the testbed" claim (0.56% FID, 1.1% SLO).
#include <cmath>

#include "bench_common.hpp"
#include "control/exhaustive_allocator.hpp"
#include "core/environment.hpp"
#include "core/experiment.hpp"
#include "runtime/threaded_runtime.hpp"

using namespace diffserve;

namespace {

void run_cascade(const std::string& cascade, double min_qps, double max_qps,
                 util::CsvWriter& csv) {
  core::EnvironmentConfig ec;
  ec.cascade = cascade;
  ec.workload_queries = 3000;
  core::CascadeEnvironment env(ec);
  const auto tr = trace::RateTrace::azure_like(min_qps, max_qps, 240.0, 3);

  bench::banner("Figure 6", cascade.c_str());
  std::printf("%-18s %-10s %-14s\n", "approach", "avg_FID",
              "avg_violations");
  double diffserve_fid = 0.0, diffserve_viol = 0.0;
  for (const auto approach : core::comparison_approaches()) {
    core::RunConfig rc;
    rc.approach = approach;
    rc.total_workers = 16;
    rc.trace = tr;
    const auto r = run_experiment(env, rc);
    std::printf("%-18s %-10.2f %-14.3f\n", r.approach.c_str(),
                r.overall_fid, r.violation_ratio);
    csv.add_row(std::vector<std::string>{
        cascade, r.approach, "simulator",
        util::CsvWriter::format(r.overall_fid),
        util::CsvWriter::format(r.violation_ratio)});
    if (approach == core::Approach::kDiffServe) {
      diffserve_fid = r.overall_fid;
      diffserve_viol = r.violation_ratio;
    }
  }

  // Testbed (threaded) replay of DiffServe with the same trace.
  control::ExhaustiveAllocator alloc;
  runtime::RuntimeConfig rt;
  rt.total_workers = 16;
  rt.time_scale = 40.0;
  const auto t = runtime::run_threaded(env, alloc, tr, rt);
  csv.add_row(std::vector<std::string>{
      cascade, "DiffServe", "testbed", util::CsvWriter::format(t.overall_fid),
      util::CsvWriter::format(t.violation_ratio)});
  std::printf("%-18s %-10.2f %-14.3f  (threaded testbed)\n", "DiffServe",
              t.overall_fid, t.violation_ratio);
  std::printf(
      "simulator-vs-testbed fidelity: FID diff %.2f%%, SLO-violation diff "
      "%.2f pp\n",
      100.0 * std::fabs(diffserve_fid - t.overall_fid) /
          std::max(diffserve_fid, 1e-9),
      100.0 * std::fabs(diffserve_viol - t.violation_ratio));
}

}  // namespace

int main() {
  util::CsvWriter csv(bench::csv_path("fig06_testbed"),
                      {"cascade", "approach", "platform", "avg_fid",
                       "avg_violation_ratio"});
  // Cascade 2 uses the 4->32 QPS trace; Cascade 3 (heavier, SLO 15 s) the
  // 1->8 QPS trace, exactly as the artifact prescribes for 16 workers.
  run_cascade(models::catalog::kCascade2, 4.0, 32.0, csv);
  run_cascade(models::catalog::kCascade3, 1.0, 8.0, csv);
  std::printf("[csv] %s\n", bench::csv_path("fig06_testbed").c_str());
  return 0;
}
