// Gaussian statistics and the Fréchet distance between Gaussians — the
// mathematical core of the FID metric.
//
// FID between two feature sets is the Fréchet distance between Gaussians
// fitted to them:
//   d^2 = ||mu1 - mu2||^2 + tr(S1 + S2 - 2 (S1^{1/2} S2 S1^{1/2})^{1/2})
// We use the symmetric-product form so every matrix square root is taken of
// a symmetric PSD matrix, which our Jacobi-based sqrtm handles exactly.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace diffserve::linalg {

/// Mean vector and covariance matrix fitted to a sample of feature vectors.
struct GaussianStats {
  std::vector<double> mean;
  Matrix covariance;

  std::size_t dim() const { return mean.size(); }
};

/// Fit mean and (biased, 1/N) covariance to a set of feature vectors.
/// Requires at least two samples and consistent dimensionality.
GaussianStats fit_gaussian(const std::vector<std::vector<double>>& samples);

/// Squared Fréchet distance between two Gaussians.
double frechet_distance_sq(const GaussianStats& a, const GaussianStats& b);

/// Incremental accumulator for Gaussian statistics, used by the serving
/// sink to maintain windowed FID without storing all features.
class GaussianAccumulator {
 public:
  explicit GaussianAccumulator(std::size_t dim);

  void add(const std::vector<double>& x);
  void merge(const GaussianAccumulator& other);
  void reset();

  std::size_t count() const { return count_; }
  std::size_t dim() const { return sum_.size(); }

  /// Finalize into GaussianStats; requires count() >= 2.
  GaussianStats stats() const;

 private:
  std::size_t count_ = 0;
  std::vector<double> sum_;
  Matrix sum_outer_;  // sum of x x^T
};

}  // namespace diffserve::linalg
