// Figure 9: sensitivity of DiffServe to the SLO setting, Cascade 1.
// Expected shape: low violations and stable quality over a broad SLO
// range, with degradation only at very tight SLOs (the heavy model's
// execution alone approaches the budget).
#include "bench_common.hpp"
#include "core/environment.hpp"
#include "core/experiment.hpp"

using namespace diffserve;

int main() {
  core::EnvironmentConfig ec;
  ec.workload_queries = 3000;
  core::CascadeEnvironment env(ec);
  const auto tr = trace::RateTrace::azure_like(4.0, 24.0, 240.0, 3);

  util::CsvWriter csv(bench::csv_path("fig09_slo"),
                      {"slo_seconds", "avg_fid", "avg_violation_ratio",
                       "light_fraction"});

  bench::banner("Figure 9", "SLO sensitivity, Cascade 1");
  std::printf("%-8s %-10s %-14s %-10s\n", "SLO_s", "avg_FID",
              "violations", "light%");
  for (const double slo : {2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0}) {
    core::RunConfig rc;
    rc.approach = core::Approach::kDiffServe;
    rc.total_workers = 16;
    rc.slo_seconds = slo;
    rc.trace = tr;
    const auto r = run_experiment(env, rc);
    std::printf("%-8.1f %-10.2f %-14.3f %-10.2f\n", slo, r.overall_fid,
                r.violation_ratio, 100.0 * r.light_served_fraction);
    csv.add_row(std::vector<double>{slo, r.overall_fid, r.violation_ratio,
                                    r.light_served_fraction});
  }
  std::printf("[csv] %s\n", bench::csv_path("fig09_slo").c_str());
  return 0;
}
