#include "engine/engine.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"
#include "util/log.hpp"

namespace diffserve::engine {

CascadeEngine::CascadeEngine(
    ExecutionBackend& backend, const quality::Workload& workload,
    const models::ModelRepository& repo, const models::CascadeSpec& cascade,
    std::vector<const discriminator::Discriminator*> discs,
    const quality::FidScorer& scorer, EngineConfig cfg)
    : backend_(backend),
      workload_(workload),
      repo_(repo),
      cascade_(cascade),
      discs_(std::move(discs)),
      cfg_(cfg),
      sink_(workload, scorer),
      rng_(cfg.seed),
      prompt_sampler_(workload.size(), cfg.prompt_mix) {
  DS_REQUIRE(cfg_.total_workers >= 1, "need at least one worker");
  sink_.set_record_terminal_events(cfg_.record_terminal_events);
  cascade_.normalize();
  chain_ = cascade_.chain;
  disc_models_ = cascade_.discriminators;
  DS_REQUIRE(!chain_.empty(), "cascade chain must not be empty");
  if (cfg_.cache.enabled) {
    // The cache's controller-facing step-fraction accounting weighs a
    // donor's stage coverage against the chain depth.
    cache::CacheConfig ccfg = cfg_.cache;
    ccfg.chain_stages = chain_.size();
    cache_ = std::make_unique<cache::ApproxCache>(ccfg);
  }
  stage_tiers_.reserve(chain_.size());
  for (const auto& m : chain_)
    stage_tiers_.push_back(repo_.model(m).quality_tier);
  DS_REQUIRE(discs_.size() == boundary_count(),
             "need one discriminator per cascade boundary");
  plan_ = AllocationPlan::for_stages(chain_.size());
  reserve_.assign(chain_.size(), 0.0);
  workers_.resize(static_cast<std::size_t>(cfg_.total_workers));
  for (std::size_t i = 0; i < workers_.size(); ++i)
    workers_[i].id = static_cast<int>(i);
}

CascadeEngine::CascadeEngine(ExecutionBackend& backend,
                             const quality::Workload& workload,
                             const models::ModelRepository& repo,
                             const models::CascadeSpec& cascade,
                             const discriminator::Discriminator* disc,
                             const quality::FidScorer& scorer,
                             EngineConfig cfg)
    : CascadeEngine(backend, workload, repo, cascade,
                    std::vector<const discriminator::Discriminator*>(
                        cascade.chain.empty() ? 1 : cascade.chain.size() - 1,
                        disc),
                    scorer, cfg) {}

double CascadeEngine::stage_exec_latency(std::size_t s, int batch) const {
  double e = repo_.model(chain_[s]).latency.execution_latency(batch);
  if (s + 1 < chain_.size())
    e += repo_.model(disc_models_[s]).latency.execution_latency(batch);
  return e;
}

double CascadeEngine::exec_seconds(const WorkerSlot& w) const {
  return w.profile.execution_latency(w.batch_size) +
         (w.has_extra ? w.extra_profile.execution_latency(w.batch_size)
                      : 0.0);
}

void CascadeEngine::disarm_timer_locked(WorkerSlot& w) {
  if (!w.timer_armed) return;
  backend_.cancel(w.timer);
  w.timer_armed = false;
  // The epoch bump keeps a concurrently in-flight timer callback (which a
  // concurrent backend may still deliver) from disarming a newer timer.
  ++w.timer_epoch;
}

// ---- reconfiguration ------------------------------------------------------

void CascadeEngine::apply(const AllocationPlan& plan) {
  auto g = backend_.guard();
  const std::size_t n = chain_.size();
  DS_REQUIRE(plan.workers.size() == n && plan.batches.size() == n,
             "plan stage vectors must match the cascade chain length");
  DS_REQUIRE(plan.thresholds.size() == n - 1,
             "plan needs one threshold per cascade boundary");
  std::vector<int> quota = plan.workers;
  int used = 0;
  for (const int q : quota) {
    DS_REQUIRE(q >= 0, "negative worker counts");
    used += q;
  }
  DS_REQUIRE(used <= cfg_.total_workers, "plan exceeds cluster size");

  // Spare workers join the first stage the plan populates (stage 0 when the
  // plan is empty) — the resource manager never idles a GPU.
  std::size_t spare_stage = 0;
  for (std::size_t s = 0; s < n; ++s)
    if (quota[s] > 0) {
      spare_stage = s;
      break;
    }
  quota[spare_stage] += cfg_.total_workers - used;

  // Stable role assignment: workers already hosting a stage keep it while
  // the quota allows, minimizing model reloads.
  std::vector<int> desired(workers_.size(), kNoStage);
  std::vector<int> remaining = quota;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const int st = workers_[i].stage;
    if (st != kNoStage && remaining[static_cast<std::size_t>(st)] > 0) {
      desired[i] = st;
      --remaining[static_cast<std::size_t>(st)];
    }
  }
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (desired[i] != kNoStage) continue;
    for (std::size_t s = 0; s < n; ++s)
      if (remaining[s] > 0) {
        desired[i] = static_cast<int>(s);
        --remaining[s];
        break;
      }
  }

  // Validate before mutating any engine state so a bad plan leaves the
  // previous configuration intact.
  for (std::size_t s = 0; s < n; ++s) {
    DS_REQUIRE(plan.batches[s] >= 1, "batch size must be >= 1");
    if (quota[s] > 0)
      DS_REQUIRE(repo_.model(chain_[s]).latency.supports(plan.batches[s]),
                 "stage batch size not in latency profile");
  }

  plan_ = plan;
  // Downstream reserves: the SLO time stage s keeps for the rest of the
  // chain. A stage the plan leaves unstaffed contributes nothing (nothing
  // will be deferred to it).
  reserve_.assign(n, 0.0);
  if (plan.mode == RoutingMode::kCascade) {
    for (std::size_t s = n - 1; s-- > 0;) {
      reserve_[s] = reserve_[s + 1];
      if (quota[s + 1] > 0)
        reserve_[s] += cfg_.heavy_reserve_factor *
                       stage_exec_latency(s + 1, plan.batches[s + 1]);
    }
  }

  std::vector<Query> evicted;
  bool model_changed = false;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (desired[i] == kNoStage) continue;
    const std::string before = workers_[i].model_name;
    const bool was_configured = workers_[i].configured;
    auto out = configure_locked(workers_[i], desired[i]);
    if (!was_configured || workers_[i].model_name != before)
      model_changed = true;
    for (auto& q : out) evicted.push_back(std::move(q));
  }
  if (model_changed) ++reconfigurations_;
  if (!evicted.empty()) resubmit_locked(std::move(evicted));

  DS_LOG_DEBUG("engine") << "applied plan: stages=" << n
                         << " x0=" << quota.front()
                         << " x_last=" << quota.back()
                         << " b0=" << plan.batches.front()
                         << " b_last=" << plan.batches.back();
}

std::vector<Query> CascadeEngine::configure_locked(WorkerSlot& w, int stage) {
  const std::size_t s = static_cast<std::size_t>(stage);
  const auto& model = repo_.model(chain_[s]);
  const int batch = plan_.batches[s];
  DS_REQUIRE(batch >= 1, "batch size must be >= 1");
  DS_REQUIRE(model.latency.supports(batch),
             "batch size not in latency profile");

  const bool model_change = !w.configured || model.name != w.model_name;
  // A chain may list the same model at two stages; moving a worker between
  // them swaps no weights but still invalidates its queue (queries would
  // be scored against the wrong boundary threshold and tier).
  const bool stage_change = w.configured && w.stage != stage;
  w.model_name = model.name;
  w.profile = model.latency;
  w.quality_tier = model.quality_tier;
  // Non-final cascade stages run the boundary discriminator after every
  // batch.
  w.has_extra =
      s + 1 < chain_.size() && plan_.mode == RoutingMode::kCascade;
  if (w.has_extra) w.extra_profile = repo_.model(disc_models_[s]).latency;
  w.batch_size = batch;
  w.stage = stage;
  w.configured = true;

  const std::size_t i = static_cast<std::size_t>(w.id);
  std::vector<Query> evicted;
  if (model_change || stage_change) {
    // Queued work targeted the old model/stage; hand it back for
    // re-routing. Class rings drain in priority order so re-routing
    // preserves the class-ordered arrival sequence within the worker.
    evicted.reserve(w.queue_size());
    for (auto& ring : w.queues) {
      for (std::size_t k = 0; k < ring.size(); ++k)
        evicted.push_back(std::move(ring[k].query));
      ring.clear();
    }
    disarm_timer_locked(w);
  }
  if (model_change) {
    // Loading starts once any in-flight batch finishes; if idle, now.
    const double now = backend_.now();
    const double start = w.busy ? w.ready_at : now;
    w.ready_at = std::max(w.ready_at, start + cfg_.model_load_delay);
    // Wake up when the load completes in case work arrives meanwhile.
    // Scheduled even for a busy worker: its batch-completion callback runs
    // before ready_at and would otherwise leave queued queries stranded
    // with no timer armed.
    backend_.defer(w.ready_at - now, [this, i] {
      auto g = backend_.guard();
      maybe_start_batch_locked(i);
    });
  } else {
    // Same model: batch-size change applies immediately.
    maybe_start_batch_locked(i);
  }
  return evicted;
}

AllocationPlan CascadeEngine::plan() const {
  auto g = backend_.guard();
  return plan_;
}

// ---- admission & routing --------------------------------------------------

Query CascadeEngine::submit_next() {
  auto g = backend_.guard();
  Query q;
  q.seq = next_seq_++;
  // Round-robin (the default) reproduces the historical seq % size
  // cycling exactly; kZipf draws from the popularity model.
  q.prompt_id = static_cast<quality::QueryId>(prompt_sampler_.next());
  q.arrival_time = backend_.now();
  q.deadline = q.arrival_time + cfg_.slo_seconds;
  if (cfg_.slo_classes.enabled) {
    // The class stream rides the sampler's dedicated class RNG, never the
    // engine rng_ (whose draw sequence the kDirect bernoulli depends on).
    q.query_class = static_cast<QueryClass>(prompt_sampler_.next_class());
    q.deadline = q.arrival_time +
                 cfg_.slo_seconds * cfg_.slo_classes.multiplier(q.query_class);
  }
  submit_locked(q);
  return q;
}

void CascadeEngine::submit(Query q) {
  auto g = backend_.guard();
  submit_locked(std::move(q));
}

void CascadeEngine::submit_locked(Query q) {
  ++submitted_;
  demand_.add(backend_.now());
  if (cfg_.slo_classes.enabled)
    class_demand_[static_cast<std::size_t>(q.query_class)].add(backend_.now());
  if (cache_ != nullptr) {
    const auto hit = cache_->lookup(workload_.style(q.prompt_id),
                                    backend_.now());
    if (hit.level == cache::HitLevel::kExact) {
      // Serve the donor's image as-is after the lookup/decode latency;
      // the query never enters a stage pool. Completion goes through a
      // deferred callback so sink timestamps stay monotone.
      q.cache_hit = hit.level;
      q.cache_donor = hit.donor_prompt;
      q.cache_distance = hit.distance;
      q.cache_step_fraction = 0.0;
      q.image_tier = hit.donor_tier;
      q.image_stage = hit.donor_stage;
      const int tier = hit.donor_tier;
      backend_.defer(cfg_.cache.hit_latency, [this, q, tier] {
        auto g = backend_.guard();
        const double t = backend_.now();
        sink_.complete(q, tier, t);
        notify_terminal_locked(q, tier, t, false);
      });
      return;
    }
    if (hit.level != cache::HitLevel::kMiss) {
      // Approximate hit: the donor's intermediate result seeds the
      // generation, which resumes from the donor's stage and runs only
      // step_fraction of its diffusion steps there.
      q.cache_hit = hit.level;
      q.cache_donor = hit.donor_prompt;
      q.cache_distance = hit.distance;
      q.cache_step_fraction = hit.step_fraction;
      if (cfg_.cache.latent_levels) {
        // Per-stage resumption: only stages the donor recorded a latent
        // (or its terminal image) at can skip steps; deeper stages the
        // donor never reached run in full. Without latent levels the
        // fraction applies chain-wide (the terminal-image behaviour) and
        // the mask keeps its all-ones default.
        q.cache_level_mask = hit.level_mask;
        q.cache_resume_depth =
            chain_.size() > 1 && hit.donor_stage > 0
                ? static_cast<double>(hit.donor_stage) /
                      static_cast<double>(chain_.size() - 1)
                : 0.0;
      }
    }
  }
  if (plan_.mode == RoutingMode::kDirect && rng_.bernoulli(plan_.p_heavy)) {
    q.stage = chain_.size() - 1;
    q.stage_deadline = q.deadline;
    route_locked(std::move(q));
    return;
  }
  q.stage = 0;
  // In cascade mode, leave room for the rest of the chain.
  q.stage_deadline =
      plan_.mode == RoutingMode::kCascade
          ? std::max(q.deadline - reserve_.front(), q.arrival_time)
          : q.deadline;
  route_locked(std::move(q));
}

void CascadeEngine::resubmit_locked(std::vector<Query>&& queries) {
  for (auto& q : queries) route_locked(std::move(q));
}

CascadeEngine::WorkerSlot* CascadeEngine::shortest_queue_locked(int stage) {
  WorkerSlot* best = nullptr;
  std::size_t best_len = 0;
  for (auto& w : workers_) {
    if (w.stage != stage || !w.configured) continue;
    const std::size_t len = w.queue_size() + (w.busy ? 1 : 0);
    if (best == nullptr || len < best_len) {
      best = &w;
      best_len = len;
    }
  }
  return best;
}

void CascadeEngine::route_locked(Query q) {
  const std::size_t target = q.stage;
  // Forward: the target stage, else the nearest deeper stage with capacity
  // (e.g. Clipper-Heavy has no light pool; a shrunken chain may have lost a
  // middle stage).
  for (std::size_t s = target; s < chain_.size(); ++s) {
    WorkerSlot* w = shortest_queue_locked(static_cast<int>(s));
    if (w == nullptr) continue;
    if (s != target) {
      q.stage = s;
      q.stage_deadline = std::max(q.deadline - reserve_[s], q.arrival_time);
    }
    enqueue_locked(*w, std::move(q));
    return;
  }
  // Nothing at or below the target. A deferred query already has an image —
  // serve it best-effort rather than discarding work.
  if (q.image_tier > 0) {
    complete_locked(q, q.image_tier);
    return;
  }
  // A direct-mode query aimed at the last stage falls back up the chain.
  for (std::size_t s = target; s-- > 0;) {
    WorkerSlot* w = shortest_queue_locked(static_cast<int>(s));
    if (w == nullptr) continue;
    q.stage = s;
    q.stage_deadline = q.deadline;
    enqueue_locked(*w, std::move(q));
    return;
  }
  const double t = backend_.now();
  sink_.drop(q, t);
  notify_terminal_locked(q, -1, t, true);
}

void CascadeEngine::enqueue_locked(WorkerSlot& w, Query q) {
  DS_REQUIRE(w.configured, "enqueue on unconfigured worker");
  const double now = backend_.now();
  w.arrivals.add(now);
  // With class-aware scheduling off (or classes disabled entirely) every
  // query lives in the kStandard ring — the historical single FIFO.
  std::size_t cls = static_cast<std::size_t>(QueryClass::kStandard);
  if (cfg_.slo_classes.scheduling_active()) {
    cls = static_cast<std::size_t>(q.query_class);
    const std::size_t cap = cfg_.slo_classes.queue_capacity[cls];
    if (cap > 0 && w.queues[cls].size() >= cap) {
      // Per-class overflow, util::OverflowPolicy semantics:
      //   interactive — kDropOldest: the freshest request wins (a stale
      //     interactive query is already worthless to its user);
      //   standard — kBlock rendered as admission backpressure: a
      //     data-path queue cannot literally block the DES, so the
      //     arriving query is rejected at the door;
      //   batch — kDropNewest: reject the arrival, but work already
      //     admitted to the batch queue is never shed.
      ++class_admission_drops_[cls];
      if (q.query_class == QueryClass::kInteractive) {
        Query oldest = std::move(w.queues[cls].front().query);
        w.queues[cls].pop_front();
        ++w.dropped;
        sink_.drop(oldest, now);
        notify_terminal_locked(oldest, -1, now, true);
      } else {
        ++w.dropped;
        sink_.drop(q, now);
        notify_terminal_locked(q, -1, now, true);
        return;
      }
    }
  }
  w.queues[cls].push_back({std::move(q), now});
  maybe_start_batch_locked(static_cast<std::size_t>(w.id));
}

// ---- batch formation ------------------------------------------------------

void CascadeEngine::maybe_start_batch_locked(std::size_t i) {
  WorkerSlot& w = workers_[i];
  if (!w.configured || w.busy || w.queue_empty()) return;
  const double now = backend_.now();
  if (now < w.ready_at) return;  // model still loading

  const int b = w.batch_size;
  if (w.queue_size() >= static_cast<std::size_t>(b)) {
    disarm_timer_locked(w);
    start_batch_locked(i);
    return;
  }

  // Under-filled: lazy batching, capped. Launch at the earlier of (a) the
  // latest time that still meets the tightest stage deadline and (b) one
  // execution period after the oldest enqueue (so early-stage queries are
  // not held to the edge of their deadline just to fill a batch). Scans
  // cover every class ring; with classes disabled only the kStandard ring
  // is populated and this is the historical single-queue scan.
  const double exec = exec_seconds(w);
  double tightest = 0.0;
  double oldest = 0.0;
  bool first = true;
  for (const auto& ring : w.queues) {
    for (std::size_t k = 0; k < ring.size(); ++k) {
      const Enqueued& e = ring[k];
      if (first) {
        tightest = e.query.stage_deadline;
        oldest = e.at;
        first = false;
        continue;
      }
      tightest = std::min(tightest, e.query.stage_deadline);
      oldest = std::min(oldest, e.at);
    }
  }
  const double launch_at =
      std::min(tightest - exec - cfg_.launch_slack_seconds, oldest + exec);

  if (launch_at <= now) {
    disarm_timer_locked(w);
    start_batch_locked(i);
    return;
  }
  if (w.timer_armed && w.timer_at <= launch_at + 1e-12) return;  // already set
  disarm_timer_locked(w);
  w.timer_at = launch_at;
  w.timer_armed = true;
  const std::uint64_t epoch = ++w.timer_epoch;
  w.timer = backend_.defer(launch_at - now, [this, i, epoch] {
    auto g = backend_.guard();
    WorkerSlot& slot = workers_[i];
    // A concurrent backend may deliver a timer the engine cancelled (or
    // superseded) a moment ago; re-evaluating the batch is harmless, but
    // only the matching epoch may disarm.
    if (slot.timer_epoch == epoch) slot.timer_armed = false;
    maybe_start_batch_locked(i);
  });
}

CascadeEngine::Enqueued CascadeEngine::pop_next_locked(WorkerSlot& w) {
  for (auto& ring : w.queues) {
    if (ring.empty()) continue;
    Enqueued e = std::move(ring.front());
    ring.pop_front();
    return e;
  }
  DS_CHECK(false, "pop_next_locked on empty worker queue");
  return {};
}

void CascadeEngine::start_batch_locked(std::size_t i) {
  WorkerSlot& w = workers_[i];
  DS_CHECK(!w.busy && !w.queue_empty(), "start_batch preconditions");
  const int b = w.batch_size;
  const double exec = exec_seconds(w);
  const double now = backend_.now();
  const std::size_t stage = static_cast<std::size_t>(w.stage);
  // Class-aware policies (batch-fill priority is free — it falls out of
  // pop_next_locked's enum-ordered scan): batch-class work is never
  // deadline-dropped, and in the cache-scaled pass 2 a batch member is
  // *deferred* back to its ring rather than letting its full-fraction
  // execution push an interactive (or standard) member past its deadline.
  const bool class_aware = cfg_.slo_classes.scheduling_active();

  // Approximate cache hits skip a fraction of their diffusion steps, so a
  // batch runs for the mean per-stage step fraction of its members (misses
  // count 1.0) — and the drop decisions must use that *scaled* time, or a
  // hit-heavy batch near the deadline is dropped for an execution it would
  // never pay. Membership and the scaled time are interdependent (the mean
  // moves when a member is dropped), so selection is two-pass:
  //
  //   pass 1 — provisional membership against the most optimistic finish
  //            (exec scaled by the smallest queued fraction; 1.0 with the
  //            cache off, which keeps this pass byte-identical to the
  //            unscaled check);
  //   pass 2 — re-check members against the finish time of the selected
  //            batch, dropping at most one violator per round and
  //            recomputing: each drop moves the mean, so checking further
  //            members against the pre-drop finish time would over-drop.
  //            The victim is the *slowest* violator (highest step
  //            fraction) — its removal lowers the mean the most, giving
  //            every other member the best chance — and its freed slot is
  //            refilled from the queue before the next round, exactly as
  //            the one-pass fill loop freed slots for queued queries.
  //            Each round drops someone, so the rounds are bounded.
  //
  // Victim removal is a bitmask (drop_mask_), not an erase: dropping marks
  // the member and later scans skip it, so rounds shift no Query objects
  // and the selection sequence — hence every serving decision — is
  // identical to the erase formulation (stable member order, refills
  // append at the end either way).
  double min_fraction = 1.0;
  if (cache_ != nullptr)
    for (const auto& ring : w.queues)
      for (std::size_t k = 0; k < ring.size(); ++k)
        min_fraction =
            std::min(min_fraction, ring[k].query.step_fraction_at(stage));
  const double optimistic_done_at = now + exec * min_fraction;

  std::vector<Query> batch = acquire_batch_locked(static_cast<std::size_t>(b));
  drop_mask_.clear();
  std::size_t alive = 0;
  double run_exec = exec;
  // Batch-class members evicted by pass 2 on behalf of a tighter class.
  // Held aside (not re-queued inline) so the refill loop cannot pull them
  // straight back into the batch it just deferred them from.
  std::vector<Query> deferred_batch_class;
  for (;;) {
    while (!w.queue_empty() && alive < static_cast<std::size_t>(b)) {
      Query q = pop_next_locked(w).query;
      // Batch-class work is only ever deferred, never deadline-dropped:
      // its members skip the optimistic pass-1 drop (their multiplied
      // deadlines make violation a quality signal, not a shedding one).
      const bool droppable =
          !(class_aware && q.query_class == QueryClass::kBatch);
      if (droppable && optimistic_done_at > q.stage_deadline) {
        ++w.dropped;
        sink_.drop(q, now);
        notify_terminal_locked(q, -1, now, true);
        continue;
      }
      batch.push_back(std::move(q));
      drop_mask_.push_back(0);
      ++alive;
    }
    if (cache_ == nullptr || alive == 0) break;
    double fraction_sum = 0.0;
    for (std::size_t k = 0; k < batch.size(); ++k)
      if (!drop_mask_[k]) fraction_sum += batch[k].step_fraction_at(stage);
    run_exec = exec * fraction_sum / static_cast<double>(alive);
    const double done_at = now + run_exec;
    std::size_t victim = batch.size();
    bool victim_is_batch_class = false;
    for (std::size_t k = 0; k < batch.size(); ++k) {
      if (drop_mask_[k]) continue;
      // Batch-class members never violate their way out of the batch.
      if (class_aware && batch[k].query_class == QueryClass::kBatch) continue;
      if (done_at > batch[k].stage_deadline &&
          (victim == batch.size() ||
           batch[k].step_fraction_at(stage) >
               batch[victim].step_fraction_at(stage)))
        victim = k;
    }
    if (victim != batch.size() && class_aware) {
      // A tighter-class member is pushed past its deadline by this batch's
      // scaled execution. Before dropping it, shed the *slowest*
      // batch-class member instead (highest step fraction — its removal
      // lowers the mean the most): batch work can never cost an
      // interactive or standard query its deadline. The shed member is
      // deferred back to its ring, not dropped.
      std::size_t shed = batch.size();
      for (std::size_t k = 0; k < batch.size(); ++k) {
        if (drop_mask_[k]) continue;
        if (batch[k].query_class != QueryClass::kBatch) continue;
        if (shed == batch.size() ||
            batch[k].step_fraction_at(stage) >
                batch[shed].step_fraction_at(stage))
          shed = k;
      }
      if (shed != batch.size()) {
        victim = shed;
        victim_is_batch_class = true;
      }
    }
    if (victim == batch.size()) break;
    if (victim_is_batch_class) {
      deferred_batch_class.push_back(std::move(batch[victim]));
    } else {
      ++w.dropped;
      sink_.drop(batch[victim], now);
      notify_terminal_locked(batch[victim], -1, now, true);
    }
    drop_mask_[victim] = 1;
    --alive;
  }
  // Deferred batch-class members rejoin their ring (at the tail — they
  // yielded once already) for a later, less-contended batch.
  for (auto& q : deferred_batch_class)
    w.queues[static_cast<std::size_t>(QueryClass::kBatch)].push_back(
        {std::move(q), now});
  if (alive == 0) {
    recycle_batch_locked(std::move(batch));
    // Everything at the head was overdue; try again with what remains.
    if (!w.queue_empty()) maybe_start_batch_locked(i);
    return;
  }
  if (alive != batch.size()) {
    // Compact the survivors (stable) so the execute closure carries only
    // live members.
    std::size_t out = 0;
    for (std::size_t k = 0; k < batch.size(); ++k) {
      if (drop_mask_[k]) continue;
      if (out != k) batch[out] = std::move(batch[k]);
      ++out;
    }
    batch.resize(out);
  }

  w.busy = true;
  w.ready_at = std::max(w.ready_at, now + run_exec);
  ++w.batches;
  w.processed += batch.size();

  // Capture the tier at launch (stage was captured above): a
  // reconfiguration during the batch's execution must not change what
  // this batch produced.
  const int tier = w.quality_tier;
  backend_.execute(
      w.id, run_exec,
      [this, i, tier, stage, batch = std::move(batch)]() mutable {
        auto g = backend_.guard();
        finish_batch_locked(i, batch, tier, stage);
      });
}

void CascadeEngine::finish_batch_locked(std::size_t i,
                                        std::vector<Query>& batch,
                                        int served_tier, std::size_t stage) {
  WorkerSlot& w = workers_[i];
  w.busy = false;
  const bool terminal =
      plan_.mode == RoutingMode::kDirect || stage + 1 >= chain_.size();
  // Timestamps are read per completion, not cached across the loop: a
  // deferred query that completes best-effort inside route_locked() writes
  // a fresh (later) wall-clock time into the sink, so a cached `now` on
  // the next iteration would move the sink's clock backwards on a
  // wall-clock backend. (On the DES time is frozen for the whole
  // callback, so every read returns the same instant.)
  if (terminal) {
    for (auto& q : batch) {
      q.image_tier = served_tier;
      q.image_stage = static_cast<int>(stage);
      complete_locked(q, served_tier);
    }
  } else {
    // Cascade: score the stage's image with the boundary discriminator.
    const double threshold = plan_.thresholds[stage];
    for (auto& q : batch) {
      // Score the image the stage actually produced: for an approx cache
      // hit that is the donor's image plus reuse noise, so a degraded
      // reuse naturally scores lower and defers down the chain.
      q.confidence = scoring_confidence_locked(q, stage, served_tier);
      q.image_tier = served_tier;
      q.image_stage = static_cast<int>(stage);
      if (confidence_observer_) confidence_observer_(stage, q.confidence);
      if (q.confidence >= threshold) {
        complete_locked(q, served_tier);
      } else {
        q.deferred = true;
        ++q.deferrals;
        q.stage = stage + 1;
        q.stage_deadline = q.deadline - reserve_[stage + 1];
        // Boundary crossing: the stage's output is exactly the
        // intermediate latent a future similar prompt can resume from.
        // Only fully generated work is recorded (an approx hit's latent is
        // already donor-contaminated).
        if (cache_ != nullptr && cfg_.cache.latent_levels &&
            q.cache_hit == cache::HitLevel::kMiss)
          cache_->insert_latent(q.prompt_id, served_tier,
                                static_cast<int>(stage),
                                workload_.style(q.prompt_id), backend_.now());
        route_locked(std::move(q));
      }
    }
  }
  // The closure's vector is done; recycle its storage before the next
  // batch forms so it can be reused immediately.
  recycle_batch_locked(std::move(batch));
  maybe_start_batch_locked(i);
}

double CascadeEngine::scoring_confidence_locked(const Query& q,
                                                std::size_t stage, int tier) {
  const discriminator::Discriminator* disc = discs_[stage];
  DS_CHECK(disc != nullptr, "cascade boundary requires a discriminator");
  if (q.cache_hit == cache::HitLevel::kMiss) {
    // generated_feature reseeds its RNG stream from (prompt, tier) on
    // every call — a pure function — and the discriminator is stateless,
    // so the memoized score is bit-identical to a fresh forward pass.
    const std::uint64_t key = (static_cast<std::uint64_t>(q.prompt_id) << 16) |
                              (static_cast<std::uint64_t>(stage & 0xFF) << 8) |
                              static_cast<std::uint64_t>(tier & 0xFF);
    auto it = miss_confidence_memo_.find(key);
    if (it == miss_confidence_memo_.end())
      it = miss_confidence_memo_
               .emplace(key, disc->confidence(workload_.generated_feature(
                                 q.prompt_id, tier)))
               .first;
    return it->second;
  }
  return disc->confidence(served_image_feature(workload_, q, tier));
}

std::vector<Query> CascadeEngine::acquire_batch_locked(std::size_t reserve) {
  std::vector<Query> batch;
  if (!batch_pool_.empty()) {
    batch = std::move(batch_pool_.back());
    batch_pool_.pop_back();
  }
  batch.reserve(reserve);
  return batch;
}

void CascadeEngine::recycle_batch_locked(std::vector<Query>&& batch) {
  batch.clear();
  // Bounded: one vector per plausible in-flight batch is plenty; beyond
  // that, let the allocator have it back.
  if (batch_pool_.size() < workers_.size() + 4)
    batch_pool_.push_back(std::move(batch));
}

void CascadeEngine::complete_locked(const Query& q, int served_tier) {
  const double t = backend_.now();
  sink_.complete(q, served_tier, t);
  notify_terminal_locked(q, served_tier, t, false);
  // Only fully generated images enter the cache: an approx-hit result is
  // already donor-contaminated, and re-caching it would compound reuse
  // error over hit chains.
  if (cache_ != nullptr && q.cache_hit == cache::HitLevel::kMiss)
    cache_->insert(q.prompt_id, served_tier,
                   q.image_stage >= 0 ? q.image_stage
                                      : static_cast<int>(q.stage),
                   workload_.style(q.prompt_id), backend_.now());
}

// ---- observers & statistics -----------------------------------------------

void CascadeEngine::set_confidence_observer(
    std::function<void(std::size_t, double)> observer) {
  auto g = backend_.guard();
  confidence_observer_ = std::move(observer);
}

void CascadeEngine::set_terminal_observer(
    std::function<void(const Query&, int, double, bool)> observer) {
  auto g = backend_.guard();
  terminal_observer_ = std::move(observer);
}

double CascadeEngine::demand_rate() const {
  auto g = backend_.guard();
  return demand_.rate(backend_.now());
}

std::array<double, kQueryClassCount> CascadeEngine::class_demand_rates()
    const {
  auto g = backend_.guard();
  std::array<double, kQueryClassCount> out{};
  if (!cfg_.slo_classes.enabled) return out;
  const double now = backend_.now();
  for (std::size_t c = 0; c < kQueryClassCount; ++c)
    out[c] = class_demand_[c].rate(now);
  return out;
}

std::array<std::uint64_t, kQueryClassCount>
CascadeEngine::class_admission_drops() const {
  auto g = backend_.guard();
  return class_admission_drops_;
}

PoolStats CascadeEngine::pool_stats_locked(int stage) const {
  PoolStats s;
  const double now = backend_.now();
  for (const auto& w : workers_) {
    if (w.stage != stage) continue;
    s.total_queue_length += static_cast<double>(w.queue_size());
    s.arrival_rate += w.arrivals.rate(now);
    ++s.workers;
  }
  return s;
}

PoolStats CascadeEngine::stage_stats(std::size_t s) const {
  auto g = backend_.guard();
  return pool_stats_locked(static_cast<int>(s));
}

std::uint64_t CascadeEngine::submitted() const {
  auto g = backend_.guard();
  return submitted_;
}

std::size_t CascadeEngine::reconfigurations() const {
  auto g = backend_.guard();
  return reconfigurations_;
}

double CascadeEngine::recent_violation_ratio() const {
  auto g = backend_.guard();
  return sink_.recent_violation_ratio(backend_.now());
}

void CascadeEngine::sink_reserve(std::size_t expected_terminals) {
  auto g = backend_.guard();
  sink_.reserve(expected_terminals);
}

cache::CacheStats CascadeEngine::cache_stats() const {
  auto g = backend_.guard();
  return cache_ != nullptr ? cache_->stats() : cache::CacheStats{};
}

CascadeEngine::WorkerInfo CascadeEngine::worker_info(std::size_t i) const {
  auto g = backend_.guard();
  const WorkerSlot& w = workers_[i];
  WorkerInfo info;
  info.configured = w.configured;
  info.stage = w.stage;
  info.heavy = w.stage == static_cast<int>(chain_.size()) - 1;
  info.busy = w.busy;
  info.batch_size = w.batch_size;
  info.queue_length = w.queue_size();
  for (std::size_t c = 0; c < kQueryClassCount; ++c)
    info.class_queue_lengths[c] = w.queues[c].size();
  info.batches = w.batches;
  info.processed = w.processed;
  info.dropped = w.dropped;
  return info;
}

}  // namespace diffserve::engine
