// Resource allocator interface (§3.3).
//
// Every control period the controller snapshots runtime state into an
// AllocationInput and asks an Allocator for the configuration
// (x1, x2, b1, b2, t). Implementations: the MILP allocator (the paper's
// approach), an exhaustive oracle (used for cross-checking and as a
// fallback), the §4.5 ablation variants, and the baseline systems'
// allocation policies (src/baselines).
#pragma once

#include <string>
#include <vector>

#include "control/perf_model.hpp"
#include "discriminator/deferral_profile.hpp"

namespace diffserve::control {

struct AllocationInput {
  /// EWMA-estimated demand D (QPS), before over-provisioning.
  double demand_qps = 0.0;
  /// Over-provisioning factor lambda (1.05 by default, §3.3).
  double over_provision = 1.05;
  double slo_seconds = 5.0;
  int total_workers = 1;

  // Live queuing observations (totals over each pool).
  double light_queue_length = 0.0;
  double light_arrival_rate = 0.0;
  double heavy_queue_length = 0.0;
  double heavy_arrival_rate = 0.0;

  /// Recent SLO violation ratio (consumed by AIMD batching).
  double recent_violation_ratio = 0.0;

  /// Utilization headroom: capacity constraints use x * T(b) * target
  /// rather than raw capacity, because a stage planned at rho -> 1 has
  /// unbounded queueing delay. The heavy stage gets more headroom since a
  /// deferred query has already spent part of its budget.
  double light_utilization_target = 0.90;
  double heavy_utilization_target = 0.85;

  /// Discretized confidence thresholds with their deferral fractions f(t),
  /// ascending in threshold.
  std::vector<discriminator::DeferralProfile::GridPoint> threshold_grid;

  StagePerfModel light;
  StagePerfModel heavy;

  /// Demand after over-provisioning.
  double provisioned_demand() const { return demand_qps * over_provision; }
};

struct AllocationDecision {
  /// False when even the most permissive configuration cannot satisfy the
  /// constraints; the decision then holds the best-effort fallback.
  bool feasible = false;
  int light_workers = 0;
  int heavy_workers = 0;
  int light_batch = 1;
  int heavy_batch = 1;
  double threshold = 0.0;
  /// Deferral fraction f(threshold) the plan was sized for.
  double deferral_fraction = 0.0;
  /// Query-agnostic baselines (Clipper, Proteus) bypass the cascade: each
  /// query goes directly to one model, heavy with probability p_heavy.
  bool direct_mode = false;
  double p_heavy = 0.0;
  double solve_time_ms = 0.0;
};

class Allocator {
 public:
  virtual ~Allocator() = default;
  virtual AllocationDecision allocate(const AllocationInput& input) = 0;
  virtual std::string name() const = 0;
};

/// Shared constraint check used by the exhaustive allocator and tests:
/// does (x1, x2, b1, b2, f) satisfy Eq. 1-4 for this input?
bool satisfies_constraints(const AllocationInput& in, int x1, int x2, int b1,
                           int b2, double deferral_fraction);

/// End-to-end latency estimate e1 + q1 + e2 + q2 for the latency
/// constraint (Eq. 1).
double estimated_latency(const AllocationInput& in, int b1, int b2);

}  // namespace diffserve::control
