// The controller's output and the engine's static configuration — shared
// by every execution backend.
#pragma once

#include <cstdint>

namespace diffserve::engine {

/// How the engine assigns arriving queries to stages.
///   * kCascade — DiffServe and DiffServe-Static: light first, deferral on
///     low confidence (§3.1).
///   * kDirect  — Clipper-Light/Heavy and Proteus: each query goes to
///     exactly one model; Proteus picks heavy with probability p_heavy.
enum class RoutingMode { kCascade, kDirect };

/// The controller's output: worker split, batch sizes, and routing
/// parameters (§3.3's x1, x2, b1, b2, t).
struct AllocationPlan {
  RoutingMode mode = RoutingMode::kCascade;
  int light_workers = 0;
  int heavy_workers = 0;
  int light_batch = 1;
  int heavy_batch = 1;
  double threshold = 0.5;  ///< cascade confidence threshold
  double p_heavy = 0.0;    ///< direct-mode heavy probability
};

struct EngineConfig {
  int total_workers = 16;
  double slo_seconds = 5.0;
  double model_load_delay = 1.0;
  /// Light-stage reserve = factor * e_heavy(b2): time kept for a deferral.
  double heavy_reserve_factor = 1.25;
  /// Arm under-filled batch timers this long (trace seconds) before the
  /// last feasible launch instant. The DES fires timers exactly on time
  /// and leaves this 0; wall-clock backends set it to their scheduling
  /// jitter so deadline-boundary queries are not tipped into drops by
  /// timer lateness.
  double launch_slack_seconds = 0.0;
  std::uint64_t seed = 1;
};

}  // namespace diffserve::engine
