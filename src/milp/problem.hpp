// Mixed-integer linear program model builder.
//
// The paper formulates resource allocation as a MILP solved with Gurobi
// (§3.3, §4.1). This module is the from-scratch replacement: a small
// modeling API (variables, linear constraints, maximization objective)
// consumed by the two-phase simplex LP solver and the branch-and-bound
// MILP solver in this directory.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace diffserve::milp {

enum class VarType { kContinuous, kInteger, kBinary };
enum class Sense { kLe, kGe, kEq };

inline constexpr double kInfinity = 1e30;

struct Variable {
  std::string name;
  VarType type = VarType::kContinuous;
  double lower = 0.0;
  double upper = kInfinity;
  double objective = 0.0;  ///< coefficient in the (maximized) objective
};

struct Constraint {
  std::string name;
  std::vector<std::pair<int, double>> terms;  ///< (variable index, coeff)
  Sense sense = Sense::kLe;
  double rhs = 0.0;
};

class Problem {
 public:
  /// Add a variable; returns its index.
  int add_variable(const std::string& name, VarType type, double lower,
                   double upper, double objective_coeff);
  void add_constraint(const std::string& name,
                      std::vector<std::pair<int, double>> terms, Sense sense,
                      double rhs);

  std::size_t num_variables() const { return variables_.size(); }
  std::size_t num_constraints() const { return constraints_.size(); }
  const std::vector<Variable>& variables() const { return variables_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }

  bool has_integer_variables() const;

  /// Evaluate the objective at a point.
  double objective_value(const std::vector<double>& x) const;
  /// Max constraint violation at a point (0 when feasible, bounds included).
  double max_violation(const std::vector<double>& x) const;

 private:
  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
};

enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kLimit };

struct Solution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;

  bool optimal() const { return status == SolveStatus::kOptimal; }
};

const char* to_string(SolveStatus s);

}  // namespace diffserve::milp
