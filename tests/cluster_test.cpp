// Tests for the sharded serving layer (src/cluster): the 1-shard
// loopback cluster's exact equivalence to the bare engine, DES-vs-
// threaded sharded parity (the §4.3 fidelity methodology extended to the
// cluster), consistent-hash routing properties, least-loaded fallback,
// the frontend's wire-driven terminal accounting, and split_plan's
// apportionment invariants.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "cluster/cluster_controller.hpp"
#include "cluster/cluster_run.hpp"
#include "cluster/shard_frontend.hpp"
#include "control/exhaustive_allocator.hpp"
#include "core/environment.hpp"
#include "core/experiment.hpp"
#include "net/messages.hpp"
#include "net/transport.hpp"

namespace diffserve::cluster {
namespace {

const core::CascadeEnvironment& shared_env() {
  static const core::CascadeEnvironment env = [] {
    core::EnvironmentConfig cfg;
    cfg.workload_queries = 800;
    cfg.discriminator.train_queries = 500;
    cfg.profile_queries = 500;
    return core::CascadeEnvironment(cfg);
  }();
  return env;
}

// ---- the equivalence contract ---------------------------------------------------

TEST(ClusterEquivalence, OneShardLoopbackMatchesBareEngineExactly) {
  // The whole cluster layer — frontend admission, wire encode/decode,
  // shard node dispatch, cluster controller, plan split — must be
  // decision-invisible at N=1 over synchronous loopback: every metric
  // reproduces the bare-engine run *exactly*, not approximately.
  const auto tr = trace::RateTrace::azure_like(2.0, 8.0, 80.0, 7);

  core::RunConfig rc;
  rc.approach = core::Approach::kDiffServeExhaustive;
  rc.total_workers = 6;
  rc.trace = tr;
  // The cluster controller derives its initial guess from the trace.
  rc.controller.initial_demand_guess = tr.qps_at(0.0);
  const auto bare = core::run_experiment(shared_env(), rc);

  control::ExhaustiveAllocator alloc;
  ClusterRunConfig cc;
  cc.shards = 1;
  cc.workers_per_shard = 6;
  cc.hop_latency_seconds = 0.0;
  cc.gather_delay_seconds = 0.0;
  const auto cluster = run_cluster_des(shared_env(), alloc, tr, cc);

  EXPECT_EQ(cluster.overall_fid, bare.overall_fid);
  EXPECT_EQ(cluster.violation_ratio, bare.violation_ratio);
  EXPECT_EQ(cluster.mean_latency, bare.mean_latency);
  EXPECT_EQ(cluster.submitted, bare.submitted);
  EXPECT_EQ(cluster.completed, bare.completed);
  EXPECT_EQ(cluster.dropped, bare.dropped);
  ASSERT_EQ(cluster.shards.size(), 1u);
  EXPECT_EQ(cluster.shards[0].reconfigurations, bare.reconfigurations);
}

TEST(ClusterEquivalence, DesRunsAreDeterministic) {
  const auto tr = trace::RateTrace::azure_like(2.0, 6.0, 40.0, 3);
  control::ExhaustiveAllocator alloc;
  ClusterRunConfig cc;
  cc.shards = 3;
  cc.workers_per_shard = 2;
  cc.hop_latency_seconds = 0.01;  // hop latency must not break determinism
  const auto a = run_cluster_des(shared_env(), alloc, tr, cc);
  const auto b = run_cluster_des(shared_env(), alloc, tr, cc);

  EXPECT_EQ(a.overall_fid, b.overall_fid);
  EXPECT_EQ(a.violation_ratio, b.violation_ratio);
  EXPECT_EQ(a.mean_latency, b.mean_latency);
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.cluster_reconfigurations, b.cluster_reconfigurations);
  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (std::size_t s = 0; s < a.shards.size(); ++s)
    EXPECT_EQ(a.shards[s].submitted, b.shards[s].submitted);
}

// ---- §4.3 extended: sharded DES vs sharded testbed -------------------------------

TEST(ClusterParity, DesAndThreadedShardedTopologiesAgree) {
  // Same trace, same allocator, N=3 shards on both backends. The DES
  // models the wire with loopback links; the threaded run pushes every
  // frame through real AF_UNIX sockets with reader threads. Both use the
  // same stats-gather delay so the controller sees equally stale
  // snapshots, leaving scheduling jitter as the only divergence — the
  // FID / SLO-violation deltas must stay inside the paper's §4.3 margin.
  const auto tr = trace::RateTrace::azure_like(2.0, 8.0, 80.0, 7);

  control::ExhaustiveAllocator alloc;
  ClusterRunConfig cfg;
  cfg.shards = 3;
  cfg.workers_per_shard = 2;
  cfg.gather_delay_seconds = 0.5;
  cfg.hop_latency_seconds = 0.0;
  // Sanitizer instrumentation slows the threaded backend several-fold:
  // dispatch lag becomes a real timing divergence, not scheduling jitter.
  // Running closer to wall clock recovers most of it (0.10 -> ~0.05
  // relative FID diff), but a residue remains — a handful of queries
  // defer differently under the distorted scheduler, which on a ~400-query
  // trace moves FID a few percent no matter the compression. Scale the
  // margin like control_test scales its solve budget; the uninstrumented
  // build holds the paper's 5%.
  double margin = 0.05;
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  cfg.time_scale = 8.0;
  margin *= 2.0;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  cfg.time_scale = 8.0;
  margin *= 2.0;
#endif
#endif
  const auto des = run_cluster_des(shared_env(), alloc, tr, cfg);
  const auto threaded = run_cluster_threaded(shared_env(), alloc, tr, cfg);

  ASSERT_GT(des.overall_fid, 0.0);
  ASSERT_GT(threaded.overall_fid, 0.0);
  const double fid_rel_diff =
      std::fabs(des.overall_fid - threaded.overall_fid) / des.overall_fid;
  EXPECT_LT(fid_rel_diff, margin);
  EXPECT_LT(std::fabs(des.violation_ratio - threaded.violation_ratio),
            margin);
  // Identical arrival streams on both backends.
  EXPECT_EQ(des.submitted, threaded.submitted);
  EXPECT_EQ(des.completed + des.dropped, threaded.completed + threaded.dropped);
}

// ---- routing -----------------------------------------------------------------------

/// A frontend with `n` absorbing loopback shards (queries go in, nothing
/// comes back) — enough to exercise routing and load accounting.
struct RoutingHarness {
  explicit RoutingHarness(int n, FrontendConfig cfg = {})
      : frontend(shared_env().workload(), shared_env().scorer(), cfg) {
    for (int s = 0; s < n; ++s) {
      auto link = net::make_loopback_link();
      link.second->set_receiver([](net::Frame) {});  // absorb
      shard_sides.push_back(std::move(link.second));
      frontend.attach_shard(std::move(link.first));
    }
  }
  ShardFrontend frontend;
  std::vector<std::unique_ptr<net::Endpoint>> shard_sides;
};

TEST(ConsistentHash, MappingIsDeterministicAcrossInstances) {
  RoutingHarness a(4), b(4);
  for (quality::QueryId pid = 0; pid < 200; ++pid)
    EXPECT_EQ(a.frontend.hash_shard(pid), b.frontend.hash_shard(pid)) << pid;
}

TEST(ConsistentHash, KeysSpreadReasonablyAcrossShards) {
  RoutingHarness h(4);
  std::vector<int> counts(4, 0);
  const int kKeys = 8000;
  for (quality::QueryId pid = 0; pid < kKeys; ++pid)
    ++counts[h.frontend.hash_shard(pid)];
  for (int s = 0; s < 4; ++s) {
    // Perfect balance is 25%; 64 vnodes/shard keeps every shard well
    // inside [10%, 45%].
    EXPECT_GT(counts[s], kKeys / 10) << "shard " << s;
    EXPECT_LT(counts[s], kKeys * 45 / 100) << "shard " << s;
  }
}

TEST(ConsistentHash, GrowingTheRingOnlyMovesKeysToTheNewShard) {
  // The property that makes consistent hashing worth its salt for the
  // prompt cache: adding shard N+1 never re-homes a key between two
  // pre-existing shards, so their cached prompts stay hot.
  RoutingHarness three(3), four(4);
  const int kKeys = 4000;
  int moved = 0;
  for (quality::QueryId pid = 0; pid < kKeys; ++pid) {
    const std::size_t before = three.frontend.hash_shard(pid);
    const std::size_t after = four.frontend.hash_shard(pid);
    if (before != after) {
      ++moved;
      EXPECT_EQ(after, 3u) << pid;  // only the new shard gains keys
    }
  }
  // Expected churn is ~1/4 of the keyspace; anything near 100% would mean
  // the ring rehashes wholesale.
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, kKeys / 2);
}

TEST(Routing, LeastLoadedFallbackDivertsOnlyUnderHeavySkew) {
  FrontendConfig cfg;
  cfg.imbalance_min_inflight = 16;
  cfg.imbalance_factor = 4.0;
  RoutingHarness h(3, cfg);
  const quality::QueryId pid = 11;  // all traffic on one key
  const std::size_t owner = h.frontend.hash_shard(pid);

  auto submit_one = [&](double t) {
    engine::Query q;
    q.prompt_id = pid;
    q.arrival_time = t;
    q.deadline = t + 5.0;
    h.frontend.submit(q);
  };
  const int kTotal = 40;
  for (int i = 0; i < kTotal; ++i) submit_one(0.1 * i);

  // Nothing terminates (absorbing shards), so in-flight = routed count.
  std::uint64_t sum = 0, owner_load = h.frontend.inflight(owner);
  for (std::size_t s = 0; s < 3; ++s) sum += h.frontend.inflight(s);
  EXPECT_EQ(sum, static_cast<std::uint64_t>(kTotal));
  // Hash affinity holds until the threshold, then the overflow diverts.
  EXPECT_GE(owner_load, cfg.imbalance_min_inflight);
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_GT(h.frontend.inflight(s), 0u) << "shard " << s;
    EXPECT_GE(owner_load, h.frontend.inflight(s));
  }
}

TEST(Routing, NoDiversionBelowTheInflightFloor) {
  RoutingHarness h(3);  // default floor: imbalance_min_inflight = 4
  const quality::QueryId pid = 11;
  const std::size_t owner = h.frontend.hash_shard(pid);
  for (int i = 0; i < 3; ++i) {
    engine::Query q;
    q.prompt_id = pid;
    q.arrival_time = 0.1 * i;
    q.deadline = 0.1 * i + 5.0;
    h.frontend.submit(q);
  }
  EXPECT_EQ(h.frontend.inflight(owner), 3u);
}

// ---- wire-driven terminal accounting ----------------------------------------------

TEST(Frontend, TerminalFramesDriveSinkAndDrainState) {
  // Shards that echo a terminal for every query: the frontend's sink and
  // in-flight accounting must be fully wire-driven.
  ShardFrontend frontend(shared_env().workload(), shared_env().scorer(),
                         FrontendConfig{});
  std::vector<std::unique_ptr<net::Endpoint>> shard_sides;
  for (int s = 0; s < 2; ++s) {
    auto link = net::make_loopback_link();
    net::Endpoint* back = link.second.get();
    const auto shard = static_cast<std::uint32_t>(s);
    link.second->set_receiver([back, shard](net::Frame f) {
      net::QueryMsg q;
      ASSERT_TRUE(decode(f, &q));
      net::TerminalMsg t;
      t.shard = shard;
      t.query = q.query;
      t.time = q.query.arrival_time + 1.0;
      t.served_tier = 1;  // diffusion tiers are 1-based
      t.dropped = (q.query.seq % 5 == 0);
      back->send(net::encode(t));
    });
    shard_sides.push_back(std::move(link.second));
    frontend.attach_shard(std::move(link.first));
  }

  const int kQueries = 50;
  for (int i = 0; i < kQueries; ++i)
    frontend.submit_next(0.05 * i);

  EXPECT_EQ(frontend.submitted(), static_cast<std::uint64_t>(kQueries));
  EXPECT_EQ(frontend.terminated(), static_cast<std::uint64_t>(kQueries));
  EXPECT_TRUE(frontend.drained());
  EXPECT_EQ(frontend.inflight(0), 0u);
  EXPECT_EQ(frontend.inflight(1), 0u);
  const auto& sink = frontend.sink();
  EXPECT_EQ(sink.total(), static_cast<std::size_t>(kQueries));
  EXPECT_EQ(sink.dropped(), static_cast<std::size_t>(kQueries / 5));
  EXPECT_EQ(sink.completed(), static_cast<std::size_t>(kQueries - kQueries / 5));
}

// ---- split_plan --------------------------------------------------------------------

control::AllocationDecision sample_decision() {
  control::AllocationDecision d;
  d.feasible = true;
  d.workers = {6, 3};
  d.batches = {8, 2};
  d.thresholds = {0.7};
  d.deferral_fractions = {0.3};
  return d;
}

// ---- wire-format drift guards: SLO class field -----------------------------------

net::QueryMsg classed_query_msg(engine::QueryClass cls) {
  net::QueryMsg m;
  m.shard = 1;
  m.query.seq = 7;
  m.query.prompt_id = 42;
  m.query.arrival_time = 1.5;
  m.query.deadline = 3.5;
  m.query.stage_deadline = 3.5;
  m.query.query_class = cls;
  return m;
}

TEST(Wire, QueryAndTerminalFramesPreserveSloClass) {
  for (std::size_t c = 0; c < engine::kQueryClassCount; ++c) {
    const auto cls = static_cast<engine::QueryClass>(c);
    const net::QueryMsg m = classed_query_msg(cls);
    net::QueryMsg out;
    ASSERT_TRUE(net::decode(net::encode(m), &out));
    EXPECT_EQ(out.query.query_class, cls);

    net::TerminalMsg t;
    t.shard = m.shard;
    t.query = m.query;
    t.time = 4.0;
    t.served_tier = 2;
    t.dropped = false;
    net::TerminalMsg tout;
    ASSERT_TRUE(net::decode(net::encode(t), &tout));
    EXPECT_EQ(tout.query.query_class, cls);
  }
}

TEST(Wire, LegacySingleClassFramesDecodeAsStandard) {
  // Pre-class peers emit 98-byte query/submit and 111-byte query/terminal
  // payloads — today's layout minus the class byte. Surgically removing
  // that byte reproduces them exactly; both must still decode, mapping
  // every query to the paper's single tenant class (kStandard). Start
  // from a kInteractive query so a decoder that *ignored* the truncation
  // (or found the byte elsewhere) would be caught.
  const net::QueryMsg m = classed_query_msg(engine::QueryClass::kInteractive);
  net::Frame qf = net::encode(m);
  ASSERT_EQ(qf.payload.size(), 99u);  // 4 shard + 95 query record
  qf.payload.pop_back();              // class byte is the record's tail
  net::QueryMsg qout;
  ASSERT_TRUE(net::decode(qf, &qout));
  EXPECT_EQ(qout.query.query_class, engine::QueryClass::kStandard);
  EXPECT_EQ(qout.query.seq, m.query.seq);
  EXPECT_EQ(qout.query.deadline, m.query.deadline);

  net::TerminalMsg t;
  t.shard = 2;
  t.query = m.query;
  t.time = 4.0;
  t.served_tier = 1;
  t.dropped = false;
  net::Frame tf = net::encode(t);
  ASSERT_EQ(tf.payload.size(), 112u);  // 4 + 95 + 8 time + 4 tier + 1 flag
  // The class byte rides inside the embedded query record, not at the
  // payload tail: offset 4 (shard) + 94 (legacy record).
  tf.payload.erase(tf.payload.begin() + 98);
  net::TerminalMsg tout;
  ASSERT_TRUE(net::decode(tf, &tout));
  EXPECT_EQ(tout.query.query_class, engine::QueryClass::kStandard);
  EXPECT_EQ(tout.query.seq, t.query.seq);
  EXPECT_EQ(tout.time, t.time);
  EXPECT_EQ(tout.served_tier, t.served_tier);
  EXPECT_FALSE(tout.dropped);
}

TEST(Wire, LegacyShardStatsFramesDecodeWithoutClassDemand) {
  net::ShardStatsMsg m;
  m.shard = 2;
  m.token = 5;
  m.time = 45.0;
  m.demand_rate = 7.25;
  m.submitted = 321;
  m.stages = {{3.0, 4.5, 4}};
  m.class_demand = {1.5, 2.5, 0.25};
  net::ShardStatsMsg out;
  ASSERT_TRUE(net::decode(net::encode(m), &out));
  ASSERT_EQ(out.class_demand.size(), 3u);
  EXPECT_EQ(out.class_demand[1], 2.5);

  // A pre-class stats frame simply ends after the stage vector; the
  // trailing per-class demand block is optional on decode.
  net::Frame f = net::encode(m);
  f.payload.resize(f.payload.size() - (4 + 3 * 8));
  net::ShardStatsMsg legacy;
  ASSERT_TRUE(net::decode(f, &legacy));
  EXPECT_TRUE(legacy.class_demand.empty());
  EXPECT_EQ(legacy.demand_rate, m.demand_rate);
  ASSERT_EQ(legacy.stages.size(), 1u);
}

TEST(SplitPlan, SingleShardIsTheIdentity) {
  const auto d = sample_decision();
  const auto plans = ClusterController::split_plan(d, {5.0}, 16);
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans[0].workers, d.workers);
  EXPECT_EQ(plans[0].batches, d.batches);
  EXPECT_EQ(plans[0].thresholds, d.thresholds);
}

TEST(SplitPlan, ConservesWorkersAndRespectsCapacity) {
  const auto d = sample_decision();  // 9 workers total
  const std::vector<double> demand = {3.0, 2.0, 1.0};
  const int cap = 4;
  const auto plans = ClusterController::split_plan(d, demand, cap);
  ASSERT_EQ(plans.size(), 3u);
  for (std::size_t stage = 0; stage < d.workers.size(); ++stage) {
    int total = 0;
    for (const auto& p : plans) total += p.workers[stage];
    EXPECT_EQ(total, d.workers[stage]) << "stage " << stage;
  }
  for (const auto& p : plans) {
    int shard_total = 0;
    for (const int w : p.workers) shard_total += w;
    EXPECT_LE(shard_total, cap);
    // Batch sizes, thresholds, and mode replicate unchanged.
    EXPECT_EQ(p.batches, d.batches);
    EXPECT_EQ(p.thresholds, d.thresholds);
  }
}

TEST(SplitPlan, SkewedDemandShiftsWorkersButCapacityWins) {
  control::AllocationDecision d = sample_decision();
  d.workers = {5, 3};  // total 8 == 2 shards x cap 4
  const auto plans = ClusterController::split_plan(d, {100.0, 0.0}, 4);
  ASSERT_EQ(plans.size(), 2u);
  // All demand on shard 0, but its 4-worker budget caps the grab; the
  // remainder must spill to shard 1 so the cluster total is conserved.
  for (std::size_t stage = 0; stage < 2; ++stage)
    EXPECT_EQ(plans[0].workers[stage] + plans[1].workers[stage],
              d.workers[stage]);
  EXPECT_EQ(plans[0].workers[0] + plans[0].workers[1], 4);
  EXPECT_EQ(plans[1].workers[0] + plans[1].workers[1], 4);
}

TEST(SplitPlan, ZeroDemandSplitsEqually) {
  control::AllocationDecision d = sample_decision();
  d.workers = {4, 2};
  const auto plans = ClusterController::split_plan(d, {0.0, 0.0}, 8);
  ASSERT_EQ(plans.size(), 2u);
  EXPECT_EQ(plans[0].workers[0], 2);
  EXPECT_EQ(plans[1].workers[0], 2);
  EXPECT_EQ(plans[0].workers[1], 1);
  EXPECT_EQ(plans[1].workers[1], 1);
}

TEST(SplitPlan, DeterministicForEqualShares) {
  const auto d = sample_decision();
  const std::vector<double> demand = {1.0, 1.0, 1.0};
  const auto a = ClusterController::split_plan(d, demand, 4);
  const auto b = ClusterController::split_plan(d, demand, 4);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t s = 0; s < a.size(); ++s)
    EXPECT_EQ(a[s].workers, b[s].workers) << "shard " << s;
}

}  // namespace
}  // namespace diffserve::cluster
