// Randomized engine-invariant suite for N-stage cascade chains.
//
// On random traces, random plan sequences, and chain depths 1-3, the
// engine must uphold, on both execution backends:
//   * query conservation — every admitted query reaches exactly one
//     terminal outcome (served, dropped, or rejected at admission); no
//     query is lost or double-counted;
//   * non-negative, bounded queue state — worker introspection stays sane
//     at every sampled instant and every queue drains by quiescence;
//   * deferral-history consistency — no query is served by a stage earlier
//     than its deferral history implies (served stage >= deferral count).
// Plus deterministic N=3 reconfiguration-under-load tests: shrinking a
// middle stage with a non-empty queue must re-route or complete every
// queued query (mirroring the two-stage eviction tests in
// tests/serving_test.cpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "cluster/shard_frontend.hpp"
#include "cluster/shard_node.hpp"
#include "discriminator/discriminator.hpp"
#include "engine/engine.hpp"
#include "net/messages.hpp"
#include "net/transport.hpp"
#include "models/model_repository.hpp"
#include "quality/fid.hpp"
#include "quality/workload.hpp"
#include "runtime/threaded_runtime.hpp"
#include "serving/system.hpp"
#include "sim/simulation.hpp"
#include "trace/prompt_mix.hpp"
#include "util/rng.hpp"
#include "util/trace_clock.hpp"

namespace diffserve::engine {
namespace {

constexpr int kIterationsPerBackend = 100;

/// Cheap three-model chain with fast latencies plus shallower prefixes, so
/// a random iteration can pick depth 1, 2, or 3.
class ChainFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload_ = new quality::Workload(120);
    scorer_ = new quality::FidScorer(*workload_);
    repo_ = new models::ModelRepository();
    repo_->register_model({"tiny", models::ModelKind::kDiffusion,
                           models::LatencyProfile::affine(0.05), 1, 512});
    repo_->register_model({"base", models::ModelKind::kDiffusion,
                           models::LatencyProfile::affine(0.2), 2, 512});
    repo_->register_model({"large", models::ModelKind::kDiffusion,
                           models::LatencyProfile::affine(0.8), 5, 512});
    repo_->register_model({"disc", models::ModelKind::kDiscriminator,
                           models::LatencyProfile::affine(0.005, 0.1), 0,
                           512});
    for (std::size_t depth = 1; depth <= 3; ++depth) {
      models::CascadeSpec spec;
      spec.name = "chain" + std::to_string(depth);
      const std::vector<std::string> all = {"tiny", "base", "large"};
      spec.chain.assign(all.begin(), all.begin() + depth);
      if (depth > 1) spec.discriminators = {"disc"};
      spec.slo_seconds = 10.0;
      repo_->register_cascade(std::move(spec));
    }
    discriminator::DiscriminatorConfig dc;
    dc.train_queries = 120;
    dc.epochs = 2;
    disc_ = new discriminator::Discriminator(
        discriminator::train_discriminator(*workload_, 1, 5, dc));
  }
  static void TearDownTestSuite() {
    delete disc_;
    delete repo_;
    delete scorer_;
    delete workload_;
  }

  static const models::CascadeSpec& chain(std::size_t depth) {
    return repo_->cascade("chain" + std::to_string(depth));
  }

  /// A random plan for `depth` stages over `total` workers. May leave
  /// stages (or everything) unstaffed — the engine's spare rule and
  /// routing fallbacks must absorb that.
  static AllocationPlan random_plan(util::Rng& rng, std::size_t depth,
                                    int total) {
    AllocationPlan p = AllocationPlan::for_stages(depth);
    p.mode = depth >= 2 && rng.bernoulli(0.2) ? RoutingMode::kDirect
                                              : RoutingMode::kCascade;
    p.p_heavy = rng.uniform();
    int remaining = total;
    for (std::size_t s = 0; s < depth && remaining > 0; ++s) {
      p.workers[s] = static_cast<int>(rng.uniform_int(0, remaining));
      remaining -= p.workers[s];
    }
    const int batch_choices[] = {1, 2, 4};
    for (std::size_t s = 0; s < depth; ++s)
      p.batches[s] = batch_choices[rng.uniform_int(0, 2)];
    for (std::size_t b = 0; b + 1 < depth; ++b)
      p.thresholds[b] = rng.uniform();
    return p;
  }

  struct Scenario {
    std::size_t depth;
    int total_workers;
    double slo;
    double load_delay;
    std::vector<double> arrivals;                    // ascending
    std::vector<std::pair<double, AllocationPlan>> plans;  // by time
    double horizon;  ///< last event time (arrivals end)
  };

  static Scenario random_scenario(util::Rng& rng, double span) {
    Scenario sc;
    sc.depth = static_cast<std::size_t>(rng.uniform_int(1, 3));
    sc.total_workers = static_cast<int>(rng.uniform_int(2, 5));
    sc.slo = rng.uniform(3.0, 8.0);
    sc.load_delay = rng.bernoulli(0.5) ? 0.0 : 0.3;
    const int n = static_cast<int>(rng.uniform_int(25, 50));
    for (int i = 0; i < n; ++i) sc.arrivals.push_back(rng.uniform(0.0, span));
    std::sort(sc.arrivals.begin(), sc.arrivals.end());
    sc.plans.push_back({0.0, random_plan(rng, sc.depth, sc.total_workers)});
    const int extra = static_cast<int>(rng.uniform_int(1, 3));
    for (int i = 0; i < extra; ++i)
      sc.plans.push_back({rng.uniform(0.2, span * 0.8),
                          random_plan(rng, sc.depth, sc.total_workers)});
    std::sort(sc.plans.begin(), sc.plans.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    sc.horizon = span;
    return sc;
  }

  /// The invariants, checked after the backend has quiesced. `leftover`
  /// is the number of queries legitimately still queued (always 0 on the
  /// DES after run_all; the threaded backend may stop with stragglers).
  static void check_invariants(const CascadeEngine& eng,
                               std::size_t submitted, std::size_t seed) {
    const MetricsSink& sink = eng.sink();
    std::size_t leftover = 0;
    for (std::size_t i = 0; i < eng.worker_count(); ++i) {
      const auto info = eng.worker_info(i);
      EXPECT_FALSE(info.busy) << "seed " << seed;
      leftover += info.queue_length;
      EXPECT_GE(info.batch_size, 1) << "seed " << seed;
      EXPECT_LT(info.stage, static_cast<int>(eng.stage_count()))
          << "seed " << seed;
    }
    // Conservation: every admitted query is terminal (or still queued on a
    // backend stopped mid-flight) — nothing lost, nothing double-counted.
    EXPECT_EQ(sink.total() + leftover, submitted) << "seed " << seed;
    std::set<std::uint64_t> seen;
    for (const auto& r : sink.records()) {
      EXPECT_TRUE(seen.insert(r.seq).second)
          << "query " << r.seq << " terminated twice (seed " << seed << ")";
      EXPECT_LT(r.seq, submitted) << "seed " << seed;
      // Deferral history: a query deferred k times can only be served by
      // stage >= k (drops keep whatever stage they reached).
      EXPECT_GE(static_cast<int>(r.stage), r.deferrals)
          << "query " << r.seq << " served too early (seed " << seed << ")";
      EXPECT_LT(r.stage, eng.stage_count()) << "seed " << seed;
      if (!r.dropped) {
        EXPECT_GT(r.tier, 0) << "seed " << seed;
        EXPECT_GE(r.latency, 0.0) << "seed " << seed;
      }
    }
    EXPECT_EQ(seen.size(), sink.total()) << "seed " << seed;
  }

  static quality::Workload* workload_;
  static quality::FidScorer* scorer_;
  static models::ModelRepository* repo_;
  static discriminator::Discriminator* disc_;
};

quality::Workload* ChainFixture::workload_ = nullptr;
quality::FidScorer* ChainFixture::scorer_ = nullptr;
models::ModelRepository* ChainFixture::repo_ = nullptr;
discriminator::Discriminator* ChainFixture::disc_ = nullptr;

TEST_F(ChainFixture, RandomizedInvariantsOnDesBackend) {
  for (std::size_t seed = 1; seed <= kIterationsPerBackend; ++seed) {
    util::Rng rng(seed);
    const Scenario sc = random_scenario(rng, /*span=*/8.0);

    sim::Simulation sim;
    serving::SystemConfig cfg;
    cfg.total_workers = sc.total_workers;
    cfg.slo_seconds = sc.slo;
    cfg.model_load_delay = sc.load_delay;
    cfg.seed = seed;
    serving::ServingSystem system(sim, *workload_, *repo_, chain(sc.depth),
                                  disc_, *scorer_, cfg);

    for (const auto& timed_plan : sc.plans)
      sim.schedule_at(timed_plan.first, [&system, p = timed_plan.second] {
        system.apply(p);
      });
    system.inject_arrivals(sc.arrivals);
    // Mid-run queue sanity samples: sizes bounded by what was admitted.
    for (double t : {sc.horizon * 0.3, sc.horizon * 0.7}) {
      sim.schedule_at(t, [&system, &sc] {
        for (std::size_t i = 0; i < system.worker_count(); ++i) {
          const auto info = system.engine().worker_info(i);
          EXPECT_LE(info.queue_length, sc.arrivals.size());
        }
      });
    }

    sim.run_until(sc.horizon + sc.slo + 30.0);
    sim.run_all();

    EXPECT_EQ(system.engine().submitted(), sc.arrivals.size());
    check_invariants(system.engine(), sc.arrivals.size(), seed);
    // The DES drains completely: conservation must be exact, no leftovers.
    EXPECT_EQ(system.sink().total(), sc.arrivals.size()) << "seed " << seed;
  }
}

TEST_F(ChainFixture, RandomizedInvariantsOnThreadedBackend) {
  for (std::size_t seed = 1; seed <= kIterationsPerBackend; ++seed) {
    util::Rng rng(10'000 + seed);
    Scenario sc = random_scenario(rng, /*span=*/1.5);
    sc.slo = rng.uniform(1.5, 3.0);

    util::TraceClock clock(/*time_scale=*/200.0);
    runtime::ThreadedBackend backend(clock, sc.total_workers);
    EngineConfig cfg;
    cfg.total_workers = sc.total_workers;
    cfg.slo_seconds = sc.slo;
    cfg.model_load_delay = sc.load_delay;
    cfg.launch_slack_seconds = 0.004 * 200.0;
    cfg.seed = seed;
    CascadeEngine eng(backend, *workload_, *repo_, chain(sc.depth), disc_,
                      *scorer_, cfg);
    backend.start();

    // Replay the merged (plan, arrival) timeline in compressed wall time.
    std::size_t ai = 0, pi = 0;
    while (ai < sc.arrivals.size() || pi < sc.plans.size()) {
      const bool plan_next =
          pi < sc.plans.size() &&
          (ai >= sc.arrivals.size() ||
           sc.plans[pi].first <= sc.arrivals[ai]);
      if (plan_next) {
        clock.sleep_until(sc.plans[pi].first);
        eng.apply(sc.plans[pi].second);
        ++pi;
      } else {
        clock.sleep_until(sc.arrivals[ai]);
        eng.submit_next();
        ++ai;
      }
    }
    clock.sleep_until(sc.horizon + sc.slo + 2.0);
    backend.stop();

    EXPECT_EQ(eng.submitted(), sc.arrivals.size());
    check_invariants(eng, sc.arrivals.size(), seed);
  }
}

// --- mixed-SLO-class traffic ------------------------------------------------

/// Random class setup: classes on, random interactive/standard admission
/// caps (0 = unbounded), batch always unbounded so zero batch drops is an
/// assertable invariant (admission is the only sanctioned batch drop).
SloClassConfig random_classes(util::Rng& rng) {
  SloClassConfig c;
  c.enabled = true;
  c.queue_capacity = {static_cast<std::size_t>(rng.uniform_int(0, 6)),
                      static_cast<std::size_t>(rng.uniform_int(0, 8)), 0};
  return c;
}

trace::PromptMixConfig random_class_mix(util::Rng& rng) {
  trace::PromptMixConfig mix;
  mix.interactive_share = rng.uniform(0.1, 0.4);
  mix.batch_share = rng.uniform(0.1, 0.4);
  return mix;
}

/// Keep stage 0 staffed so no class is ever dropped for want of *any*
/// capacity — the classed invariants isolate the per-class policies.
AllocationPlan staffed(AllocationPlan p) {
  int total = 0;
  for (int x : p.workers) total += x;
  if (total == 0) p.workers[0] = 1;
  return p;
}

/// Per-class conservation + policy invariants on any quiesced sink:
/// class rows sum to the totals, every record carries a valid class, and
/// admitted batch-class work is never dropped.
void check_class_invariants(const MetricsSink& sink, std::size_t seed) {
  std::size_t completed = 0, dropped = 0;
  std::array<std::size_t, kQueryClassCount> rec_terminals{};
  for (std::size_t c = 0; c < kQueryClassCount; ++c) {
    completed += sink.class_completed(static_cast<QueryClass>(c));
    dropped += sink.class_dropped(static_cast<QueryClass>(c));
  }
  EXPECT_EQ(completed, sink.completed()) << "seed " << seed;
  EXPECT_EQ(dropped, sink.dropped()) << "seed " << seed;
  for (const auto& r : sink.records()) {
    const auto cidx = static_cast<std::size_t>(r.query_class);
    ASSERT_LT(cidx, kQueryClassCount) << "seed " << seed;
    ++rec_terminals[cidx];
  }
  for (std::size_t c = 0; c < kQueryClassCount; ++c)
    EXPECT_EQ(rec_terminals[c],
              sink.class_total(static_cast<QueryClass>(c)))
        << "seed " << seed;
  // Starvation-freedom: batch work is deferred, never shed (its admission
  // queue is unbounded in these scenarios).
  EXPECT_EQ(sink.class_dropped(QueryClass::kBatch), 0u) << "seed " << seed;
}

TEST_F(ChainFixture, RandomizedClassedInvariantsOnDesBackend) {
  for (std::size_t seed = 1; seed <= kIterationsPerBackend; ++seed) {
    util::Rng rng(40'000 + seed);
    const Scenario sc = random_scenario(rng, /*span=*/8.0);
    const SloClassConfig classes = random_classes(rng);

    sim::Simulation sim;
    serving::SystemConfig cfg;
    cfg.total_workers = sc.total_workers;
    cfg.slo_seconds = sc.slo;
    cfg.model_load_delay = sc.load_delay;
    cfg.seed = seed;
    cfg.slo_classes = classes;
    cfg.prompt_mix = random_class_mix(rng);
    serving::ServingSystem system(sim, *workload_, *repo_, chain(sc.depth),
                                  disc_, *scorer_, cfg);

    for (const auto& timed_plan : sc.plans)
      sim.schedule_at(timed_plan.first,
                      [&system, p = staffed(timed_plan.second)] {
                        system.apply(p);
                      });
    system.inject_arrivals(sc.arrivals);
    // Mid-run: per-class rings respect their admission caps and sum to the
    // worker's queue length.
    for (double t : {sc.horizon * 0.3, sc.horizon * 0.7}) {
      sim.schedule_at(t, [&system, &classes] {
        for (std::size_t i = 0; i < system.worker_count(); ++i) {
          const auto info = system.engine().worker_info(i);
          std::size_t sum = 0;
          for (std::size_t c = 0; c < kQueryClassCount; ++c) {
            sum += info.class_queue_lengths[c];
            if (classes.queue_capacity[c] > 0)
              EXPECT_LE(info.class_queue_lengths[c],
                        classes.queue_capacity[c]);
          }
          EXPECT_EQ(sum, info.queue_length);
        }
      });
    }

    sim.run_until(sc.horizon + sc.slo + 30.0);
    sim.run_all();

    EXPECT_EQ(system.engine().submitted(), sc.arrivals.size());
    check_invariants(system.engine(), sc.arrivals.size(), seed);
    EXPECT_EQ(system.sink().total(), sc.arrivals.size()) << "seed " << seed;
    check_class_invariants(system.sink(), seed);
    // Every admitted batch-class query completed — nothing starved.
    EXPECT_EQ(system.sink().class_completed(QueryClass::kBatch),
              system.sink().class_total(QueryClass::kBatch))
        << "seed " << seed;
  }
}

TEST_F(ChainFixture, RandomizedClassedInvariantsOnThreadedBackend) {
  for (std::size_t seed = 1; seed <= kIterationsPerBackend; ++seed) {
    util::Rng rng(50'000 + seed);
    Scenario sc = random_scenario(rng, /*span=*/1.5);
    sc.slo = rng.uniform(1.5, 3.0);

    util::TraceClock clock(/*time_scale=*/200.0);
    runtime::ThreadedBackend backend(clock, sc.total_workers);
    EngineConfig cfg;
    cfg.total_workers = sc.total_workers;
    cfg.slo_seconds = sc.slo;
    cfg.model_load_delay = sc.load_delay;
    cfg.launch_slack_seconds = 0.004 * 200.0;
    cfg.seed = seed;
    cfg.slo_classes = random_classes(rng);
    cfg.prompt_mix = random_class_mix(rng);
    CascadeEngine eng(backend, *workload_, *repo_, chain(sc.depth), disc_,
                      *scorer_, cfg);
    backend.start();

    std::size_t ai = 0, pi = 0;
    while (ai < sc.arrivals.size() || pi < sc.plans.size()) {
      const bool plan_next =
          pi < sc.plans.size() &&
          (ai >= sc.arrivals.size() ||
           sc.plans[pi].first <= sc.arrivals[ai]);
      if (plan_next) {
        clock.sleep_until(sc.plans[pi].first);
        eng.apply(staffed(sc.plans[pi].second));
        ++pi;
      } else {
        clock.sleep_until(sc.arrivals[ai]);
        eng.submit_next();
        ++ai;
      }
    }
    clock.sleep_until(sc.horizon + sc.slo + 2.0);
    backend.stop();

    EXPECT_EQ(eng.submitted(), sc.arrivals.size());
    check_invariants(eng, sc.arrivals.size(), seed);
    // Stragglers may remain queued at stop; the class rows must still sum
    // to what terminated, and no admitted batch-class work was dropped.
    check_class_invariants(eng.sink(), seed);
  }
}

void check_frontend_records(const cluster::ShardFrontend& frontend,
                            std::size_t submitted, std::size_t seed);

TEST_F(ChainFixture, RandomizedShardedClassPreservedAcrossWire) {
  // Classed traffic through the sharded topology: the frontend draws each
  // query's class; the class byte must survive query/submit to the shard
  // (whose per-class queues act on it) and ride query/terminal back into
  // the cluster sink. Per-class counts must agree between the shard
  // engines' own sinks and the frontend's wire-fed sink.
  std::array<std::size_t, kQueryClassCount> seen_totals{};
  for (std::size_t seed = 1; seed <= kIterationsPerBackend; ++seed) {
    util::Rng rng(60'000 + seed);
    const Scenario sc = random_scenario(rng, /*span=*/8.0);
    const SloClassConfig classes = random_classes(rng);
    const trace::PromptMixConfig mix = random_class_mix(rng);
    const int shards = static_cast<int>(rng.uniform_int(2, 3));
    const double hop = rng.bernoulli(0.5) ? 0.0 : 0.02;

    sim::Simulation sim;
    serving::SimulationBackend backend(sim);
    std::vector<std::unique_ptr<CascadeEngine>> engines;
    for (int s = 0; s < shards; ++s) {
      EngineConfig cfg;
      cfg.total_workers = sc.total_workers;
      cfg.slo_seconds = sc.slo;
      cfg.model_load_delay = sc.load_delay;
      cfg.seed = seed * 16 + static_cast<std::size_t>(s);
      cfg.slo_classes = classes;
      engines.push_back(std::make_unique<CascadeEngine>(
          backend, *workload_, *repo_, chain(sc.depth), disc_, *scorer_,
          cfg));
    }

    cluster::FrontendConfig fcfg;
    fcfg.slo_seconds = sc.slo;
    fcfg.slo_classes = classes;
    fcfg.prompt_mix = mix;
    cluster::ShardFrontend frontend(*workload_, *scorer_, fcfg);
    net::DeferFn defer = [&sim](double d, std::function<void()> fn) {
      sim.schedule_in(d, std::move(fn));
    };
    std::vector<std::unique_ptr<cluster::ShardNode>> nodes;
    for (int s = 0; s < shards; ++s) {
      auto link = net::make_loopback_link(hop, defer);
      nodes.push_back(std::make_unique<cluster::ShardNode>(
          static_cast<std::uint32_t>(s), *engines[s],
          std::move(link.second)));
      frontend.attach_shard(std::move(link.first));
    }

    for (const auto& timed_plan : sc.plans) {
      for (int s = 0; s < shards; ++s) {
        net::PlanMsg m;
        m.shard = static_cast<std::uint32_t>(s);
        m.plan = staffed(random_plan(rng, sc.depth, sc.total_workers));
        sim.schedule_at(timed_plan.first, [&frontend, m] {
          frontend.send_to_shard(m.shard, net::encode(m));
        });
      }
    }
    for (const double t : sc.arrivals)
      sim.schedule_at(t, [&frontend, &sim] {
        frontend.submit_next(sim.now());
      });

    sim.run_until(sc.horizon + sc.slo + 30.0);
    sim.run_all();

    EXPECT_EQ(frontend.submitted(), sc.arrivals.size());
    EXPECT_TRUE(frontend.drained()) << "seed " << seed;
    EXPECT_EQ(frontend.sink().total(), sc.arrivals.size()) << "seed " << seed;
    check_frontend_records(frontend, sc.arrivals.size(), seed);
    check_class_invariants(frontend.sink(), seed);
    // Wire preservation: the shard engines only ever learned a query's
    // class from the submit frame, and the frontend sink only from the
    // terminal frame — their per-class ledgers must agree exactly.
    for (std::size_t c = 0; c < kQueryClassCount; ++c) {
      const auto cls = static_cast<QueryClass>(c);
      std::size_t shard_total = 0;
      for (const auto& eng : engines)
        shard_total += eng->sink().class_total(cls);
      EXPECT_EQ(shard_total, frontend.sink().class_total(cls))
          << "seed " << seed << " class " << c;
      seen_totals[c] += shard_total;
    }
  }
  // The random mixes actually exercised all three classes.
  for (std::size_t c = 0; c < kQueryClassCount; ++c)
    EXPECT_GT(seen_totals[c], 0u);
}

// --- sharded topology invariants -------------------------------------------

/// Per-shard conservation: each shard engine's own sink plus whatever is
/// legitimately still queued accounts for exactly the queries routed to it.
void check_shard_conservation(const CascadeEngine& eng, std::size_t seed) {
  std::size_t leftover = 0;
  for (std::size_t i = 0; i < eng.worker_count(); ++i) {
    const auto info = eng.worker_info(i);
    EXPECT_FALSE(info.busy) << "seed " << seed;
    leftover += info.queue_length;
  }
  EXPECT_EQ(eng.sink().total() + leftover, eng.submitted()) << "seed " << seed;
}

/// Cluster-level conservation on the frontend's wire-fed sink: unique
/// sequence numbers, valid deferral histories, nothing double-counted.
void check_frontend_records(const cluster::ShardFrontend& frontend,
                            std::size_t submitted, std::size_t seed) {
  std::set<std::uint64_t> seen;
  for (const auto& r : frontend.sink().records()) {
    EXPECT_TRUE(seen.insert(r.seq).second)
        << "query " << r.seq << " terminated twice (seed " << seed << ")";
    EXPECT_LT(r.seq, submitted) << "seed " << seed;
    EXPECT_GE(static_cast<int>(r.stage), r.deferrals) << "seed " << seed;
    if (!r.dropped) EXPECT_GT(r.tier, 0) << "seed " << seed;
  }
  EXPECT_EQ(seen.size(), frontend.sink().total()) << "seed " << seed;
}

TEST_F(ChainFixture, RandomizedShardedInvariantsOnDesBackend) {
  // The engine invariants must survive the wire: N shards behind a
  // ShardFrontend over loopback links (randomly with hop latency), random
  // per-shard plans pushed mid-run as cluster/plan frames — resizing
  // shards while their queues are non-empty — and every terminal crossing
  // back as a frame before it reaches the cluster sink.
  for (std::size_t seed = 1; seed <= kIterationsPerBackend; ++seed) {
    util::Rng rng(20'000 + seed);
    const Scenario sc = random_scenario(rng, /*span=*/8.0);
    const int shards = static_cast<int>(rng.uniform_int(2, 3));
    const double hop = rng.bernoulli(0.5) ? 0.0 : 0.02;

    sim::Simulation sim;
    serving::SimulationBackend backend(sim);
    std::vector<std::unique_ptr<CascadeEngine>> engines;
    for (int s = 0; s < shards; ++s) {
      EngineConfig cfg;
      cfg.total_workers = sc.total_workers;
      cfg.slo_seconds = sc.slo;
      cfg.model_load_delay = sc.load_delay;
      cfg.seed = seed * 16 + static_cast<std::size_t>(s);
      engines.push_back(std::make_unique<CascadeEngine>(
          backend, *workload_, *repo_, chain(sc.depth), disc_, *scorer_,
          cfg));
    }

    cluster::FrontendConfig fcfg;
    fcfg.slo_seconds = sc.slo;
    cluster::ShardFrontend frontend(*workload_, *scorer_, fcfg);
    net::DeferFn defer = [&sim](double d, std::function<void()> fn) {
      sim.schedule_in(d, std::move(fn));
    };
    std::vector<std::unique_ptr<cluster::ShardNode>> nodes;
    for (int s = 0; s < shards; ++s) {
      auto link = net::make_loopback_link(hop, defer);
      nodes.push_back(std::make_unique<cluster::ShardNode>(
          static_cast<std::uint32_t>(s), *engines[s],
          std::move(link.second)));
      frontend.attach_shard(std::move(link.first));
    }

    // Independent random plan pushes per shard at the scenario's plan
    // times: each lands as a cluster/plan frame and resizes that shard
    // while traffic is in flight.
    for (const auto& timed_plan : sc.plans) {
      for (int s = 0; s < shards; ++s) {
        net::PlanMsg m;
        m.shard = static_cast<std::uint32_t>(s);
        m.plan = random_plan(rng, sc.depth, sc.total_workers);
        sim.schedule_at(timed_plan.first, [&frontend, m] {
          frontend.send_to_shard(m.shard, net::encode(m));
        });
      }
    }
    for (const double t : sc.arrivals)
      sim.schedule_at(t, [&frontend, &sim] {
        frontend.submit_next(sim.now());
      });
    // Mid-run queue sanity: bounded by what was admitted, on every shard.
    for (double t : {sc.horizon * 0.3, sc.horizon * 0.7}) {
      sim.schedule_at(t, [&engines, &sc] {
        for (const auto& eng : engines)
          for (std::size_t i = 0; i < eng->worker_count(); ++i)
            EXPECT_LE(eng->worker_info(i).queue_length, sc.arrivals.size());
      });
    }

    sim.run_until(sc.horizon + sc.slo + 30.0);
    sim.run_all();

    // Routing fan-out conserves: every admitted query went to exactly one
    // shard, and the DES drains every terminal back over the wire.
    EXPECT_EQ(frontend.submitted(), sc.arrivals.size());
    std::size_t routed = 0;
    for (const auto& eng : engines) {
      routed += eng->submitted();
      check_shard_conservation(*eng, seed);
    }
    EXPECT_EQ(routed, sc.arrivals.size()) << "seed " << seed;
    EXPECT_TRUE(frontend.drained()) << "seed " << seed;
    EXPECT_EQ(frontend.sink().total(), sc.arrivals.size()) << "seed " << seed;
    check_frontend_records(frontend, sc.arrivals.size(), seed);
  }
}

TEST_F(ChainFixture, RandomizedShardedInvariantsOnThreadedBackend) {
  // The same invariants with real socketpair transports and reader
  // threads (this test rides in the TSan CI job): smaller seed count,
  // compressed wall time, and tolerance for stragglers left queued when
  // the backends stop.
  constexpr std::size_t kSeeds = 12;
  for (std::size_t seed = 1; seed <= kSeeds; ++seed) {
    util::Rng rng(30'000 + seed);
    Scenario sc = random_scenario(rng, /*span=*/1.5);
    sc.slo = rng.uniform(1.5, 3.0);
    const int shards = 2;
    const double time_scale = 200.0;

    util::TraceClock clock(time_scale);
    std::vector<std::unique_ptr<runtime::ThreadedBackend>> backends;
    std::vector<std::unique_ptr<CascadeEngine>> engines;
    for (int s = 0; s < shards; ++s) {
      backends.push_back(std::make_unique<runtime::ThreadedBackend>(
          clock, sc.total_workers));
      EngineConfig cfg;
      cfg.total_workers = sc.total_workers;
      cfg.slo_seconds = sc.slo;
      cfg.model_load_delay = sc.load_delay;
      cfg.launch_slack_seconds = 0.004 * time_scale;
      cfg.seed = seed * 16 + static_cast<std::size_t>(s);
      engines.push_back(std::make_unique<CascadeEngine>(
          *backends.back(), *workload_, *repo_, chain(sc.depth), disc_,
          *scorer_, cfg));
    }

    cluster::FrontendConfig fcfg;
    fcfg.slo_seconds = sc.slo;
    cluster::ShardFrontend frontend(*workload_, *scorer_, fcfg);
    std::vector<std::unique_ptr<cluster::ShardNode>> nodes;
    for (int s = 0; s < shards; ++s) {
      auto link = net::make_socketpair_link();
      nodes.push_back(std::make_unique<cluster::ShardNode>(
          static_cast<std::uint32_t>(s), *engines[s],
          std::move(link.second)));
      frontend.attach_shard(std::move(link.first));
    }
    frontend.start_transports();
    for (auto& node : nodes) node->start();
    for (auto& backend : backends) backend->start();

    // Merged (plan, arrival) timeline in compressed wall time; plan pushes
    // go over the wire and resize shards under live traffic.
    std::size_t ai = 0, pi = 0;
    while (ai < sc.arrivals.size() || pi < sc.plans.size()) {
      const bool plan_next =
          pi < sc.plans.size() &&
          (ai >= sc.arrivals.size() ||
           sc.plans[pi].first <= sc.arrivals[ai]);
      if (plan_next) {
        clock.sleep_until(sc.plans[pi].first);
        for (int s = 0; s < shards; ++s) {
          net::PlanMsg m;
          m.shard = static_cast<std::uint32_t>(s);
          m.plan = random_plan(rng, sc.depth, sc.total_workers);
          frontend.send_to_shard(static_cast<std::size_t>(s),
                                 net::encode(m));
        }
        ++pi;
      } else {
        clock.sleep_until(sc.arrivals[ai]);
        frontend.submit_next(clock.now());
        ++ai;
      }
    }
    clock.sleep_until(sc.horizon + sc.slo + 2.0);
    const auto wall_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!frontend.drained() &&
           std::chrono::steady_clock::now() < wall_deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    for (auto& backend : backends) backend->stop();
    while (!frontend.drained() &&
           std::chrono::steady_clock::now() < wall_deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    for (auto& node : nodes) node->stop();
    frontend.stop_transports();

    EXPECT_EQ(frontend.submitted(), sc.arrivals.size());
    std::size_t routed = 0;
    for (const auto& eng : engines) {
      routed += eng->submitted();
      check_shard_conservation(*eng, seed);
    }
    EXPECT_EQ(routed, sc.arrivals.size()) << "seed " << seed;
    // Terminals that crossed the wire are exactly what the sink holds;
    // stragglers stopped mid-queue are the only legitimate gap.
    EXPECT_EQ(frontend.sink().total(), frontend.terminated())
        << "seed " << seed;
    EXPECT_LE(frontend.terminated(), frontend.submitted()) << "seed " << seed;
    check_frontend_records(frontend, sc.arrivals.size(), seed);
  }
}

// --- N=3 reconfiguration under load ---------------------------------------

TEST_F(ChainFixture, ShrinkingMiddleStageReroutesItsQueue) {
  sim::Simulation sim;
  serving::SystemConfig cfg;
  cfg.total_workers = 4;
  cfg.slo_seconds = 30.0;
  cfg.model_load_delay = 0.5;
  serving::ServingSystem system(sim, *workload_, *repo_, chain(3), disc_,
                                *scorer_, cfg);

  AllocationPlan a = AllocationPlan::for_stages(3);
  a.workers = {2, 1, 1};
  // Threshold 1.0 at the first boundary: everything defers to the middle
  // stage, guaranteeing its queue is non-empty when the shrink lands.
  a.thresholds = {1.0, 0.0};
  system.apply(a);
  EXPECT_EQ(system.engine().reconfigurations(), 1u);

  std::vector<double> arrivals;
  for (int i = 0; i < 24; ++i) arrivals.push_back(0.6 + 0.05 * i);
  system.inject_arrivals(arrivals);

  // While the middle stage still has queued deferrals, remove it entirely.
  sim.schedule_at(2.5, [&] {
    std::size_t middle_queue = 0;
    for (std::size_t i = 0; i < system.worker_count(); ++i) {
      const auto info = system.engine().worker_info(i);
      if (info.stage == 1) middle_queue += info.queue_length;
    }
    EXPECT_GT(middle_queue, 0u) << "scenario must catch a non-empty queue";
    AllocationPlan b = a;
    b.workers = {2, 0, 2};
    system.apply(b);
  });

  sim.run_until(120.0);
  sim.run_all();

  // Every admitted query re-routed or completed — nothing vanished with
  // the evicted stage.
  EXPECT_EQ(system.engine().reconfigurations(), 2u);
  EXPECT_EQ(system.sink().total(), arrivals.size());
  EXPECT_EQ(system.sink().completed() + system.sink().dropped(),
            arrivals.size());
  // The deferred queries ended deeper than stage 0.
  bool deep_served = false;
  for (const auto& r : system.sink().records())
    if (!r.dropped && r.stage >= 1) deep_served = true;
  EXPECT_TRUE(deep_served);
}

TEST_F(ChainFixture, StageSwapWithSharedModelEvictsQueue) {
  // A chain may host the same model at two stages; re-staging a worker
  // swaps no weights, but its queued queries must still be evicted — a
  // stage-0 query served by the re-staged (now terminal) worker would
  // skip the boundary discriminator gate entirely.
  models::ModelRepository repo;
  repo.register_model({"m", models::ModelKind::kDiffusion,
                       models::LatencyProfile::affine(1.0), 2, 512});
  repo.register_model({"disc", models::ModelKind::kDiscriminator,
                       models::LatencyProfile::affine(0.005, 0.1), 0, 512});
  models::CascadeSpec spec;
  spec.name = "self";
  spec.chain = {"m", "m"};
  spec.discriminators = {"disc"};
  spec.slo_seconds = 60.0;
  repo.register_cascade(std::move(spec));

  sim::Simulation sim;
  serving::SystemConfig cfg;
  cfg.total_workers = 2;
  cfg.slo_seconds = 60.0;
  cfg.model_load_delay = 0.0;
  serving::ServingSystem system(sim, *workload_, repo, repo.cascade("self"),
                                disc_, *scorer_, cfg);

  AllocationPlan a = AllocationPlan::for_stages(2);
  a.workers = {2, 0};
  a.thresholds = {1.0};  // the gate defers every stage-0 output
  system.apply(a);

  std::vector<double> arrivals;
  for (int i = 0; i < 8; ++i) arrivals.push_back(0.05 * i);
  system.inject_arrivals(arrivals);
  // Flip one worker to stage 1 while queues are non-empty. Same model:
  // no reload, but the queued stage-0 queries must leave with it.
  sim.schedule_at(0.5, [&] {
    AllocationPlan b = a;
    b.workers = {1, 1};
    system.apply(b);
  });
  sim.run_until(120.0);
  sim.run_all();

  EXPECT_EQ(system.sink().total(), arrivals.size());
  // Every completion passed the boundary gate exactly once — none were
  // served terminal by the re-staged worker without a discriminator pass.
  for (const auto& r : system.sink().records())
    if (!r.dropped) EXPECT_EQ(r.deferrals, 1) << "query " << r.seq;
}

TEST_F(ChainFixture, ShrinkingTailStagesServesDeferralsBestEffort) {
  sim::Simulation sim;
  serving::SystemConfig cfg;
  cfg.total_workers = 3;
  cfg.slo_seconds = 30.0;
  cfg.model_load_delay = 0.2;
  serving::ServingSystem system(sim, *workload_, *repo_, chain(3), disc_,
                                *scorer_, cfg);

  AllocationPlan a = AllocationPlan::for_stages(3);
  a.workers = {1, 1, 1};
  a.thresholds = {1.0, 1.0};  // defer everything as deep as it can go
  system.apply(a);

  std::vector<double> arrivals;
  for (int i = 0; i < 12; ++i) arrivals.push_back(0.4 + 0.1 * i);
  system.inject_arrivals(arrivals);

  // Collapse the whole tail: only the light stage remains. In-flight
  // deferrals must either re-route into surviving pools or complete
  // best-effort with the image they already have — never disappear.
  sim.schedule_at(2.0, [&] {
    AllocationPlan b = a;
    b.workers = {3, 0, 0};
    system.apply(b);
  });

  sim.run_until(120.0);
  sim.run_all();

  EXPECT_EQ(system.sink().total(), arrivals.size());
  for (const auto& r : system.sink().records())
    EXPECT_GE(static_cast<int>(r.stage), r.deferrals);
}

}  // namespace
}  // namespace diffserve::engine
