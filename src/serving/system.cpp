#include "serving/system.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/log.hpp"

namespace diffserve::serving {

ServingSystem::ServingSystem(sim::Simulation& sim,
                             const quality::Workload& workload,
                             const models::ModelRepository& repo,
                             const models::CascadeSpec& cascade,
                             const discriminator::Discriminator* disc,
                             const quality::FidScorer& scorer,
                             SystemConfig cfg)
    : sim_(sim),
      workload_(workload),
      repo_(repo),
      cascade_(cascade),
      cfg_(cfg) {
  DS_REQUIRE(cfg_.total_workers >= 1, "need at least one worker");
  light_tier_ = repo_.model(cascade_.light_model).quality_tier;
  heavy_tier_ = repo_.model(cascade_.heavy_model).quality_tier;

  sink_ = std::make_unique<MetricsSink>(workload_, scorer);
  balancer_ = std::make_unique<LoadBalancer>(
      sim_, workload_, disc, light_tier_, heavy_tier_, *sink_, cfg_.seed);

  workers_.reserve(static_cast<std::size_t>(cfg_.total_workers));
  for (int i = 0; i < cfg_.total_workers; ++i)
    workers_.push_back(
        std::make_unique<SimWorker>(sim_, i, cfg_.model_load_delay));
  roles_.assign(workers_.size(), Role::kIdle);
}

double ServingSystem::light_exec_latency(int batch) const {
  const auto& light = repo_.model(cascade_.light_model);
  const auto& disc = repo_.model(cascade_.discriminator);
  return light.latency.execution_latency(batch) +
         disc.latency.execution_latency(batch);
}

double ServingSystem::heavy_exec_latency(int batch) const {
  return repo_.model(cascade_.heavy_model).latency.execution_latency(batch);
}

void ServingSystem::apply(const AllocationPlan& plan) {
  int n_light = plan.light_workers;
  int n_heavy = plan.heavy_workers;
  DS_REQUIRE(n_light >= 0 && n_heavy >= 0, "negative worker counts");
  DS_REQUIRE(n_light + n_heavy <= cfg_.total_workers,
             "plan exceeds cluster size");

  // Spare workers join the light pool (or heavy if the plan has no light
  // pool at all) — the resource manager never idles a GPU.
  const int spare = cfg_.total_workers - n_light - n_heavy;
  if (n_light > 0 || n_heavy == 0)
    n_light += spare;
  else
    n_heavy += spare;

  // Stable role assignment: workers already in a role keep it while the
  // quota allows, minimizing model reloads.
  std::vector<Role> desired(workers_.size(), Role::kIdle);
  int remaining_light = n_light, remaining_heavy = n_heavy;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (roles_[i] == Role::kLight && remaining_light > 0) {
      desired[i] = Role::kLight;
      --remaining_light;
    } else if (roles_[i] == Role::kHeavy && remaining_heavy > 0) {
      desired[i] = Role::kHeavy;
      --remaining_heavy;
    }
  }
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (desired[i] != Role::kIdle) continue;
    if (remaining_light > 0) {
      desired[i] = Role::kLight;
      --remaining_light;
    } else if (remaining_heavy > 0) {
      desired[i] = Role::kHeavy;
      --remaining_heavy;
    }
  }

  const auto& light_model = repo_.model(cascade_.light_model);
  const auto& heavy_model = repo_.model(cascade_.heavy_model);
  const auto& disc_model = repo_.model(cascade_.discriminator);

  WorkerConfig light_cfg;
  light_cfg.model_name = light_model.name;
  light_cfg.profile = light_model.latency;
  light_cfg.quality_tier = light_model.quality_tier;
  light_cfg.batch_size = plan.light_batch;
  if (plan.mode == RoutingMode::kCascade) {
    light_cfg.extra_profile = disc_model.latency;
    light_cfg.has_extra = true;
  }

  WorkerConfig heavy_cfg;
  heavy_cfg.model_name = heavy_model.name;
  heavy_cfg.profile = heavy_model.latency;
  heavy_cfg.quality_tier = heavy_model.quality_tier;
  heavy_cfg.batch_size = plan.heavy_batch;

  std::vector<Query> evicted;
  std::vector<SimWorker*> light_pool, heavy_pool;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (desired[i] == Role::kIdle) continue;
    const auto& cfg = desired[i] == Role::kLight ? light_cfg : heavy_cfg;
    auto out = workers_[i]->configure(cfg);
    for (auto& q : out) evicted.push_back(std::move(q));
    (desired[i] == Role::kLight ? light_pool : heavy_pool)
        .push_back(workers_[i].get());
    roles_[i] = desired[i];
  }

  RouterConfig rc;
  rc.mode = plan.mode;
  rc.threshold = plan.threshold;
  rc.p_heavy = plan.p_heavy;
  rc.heavy_reserve =
      plan.mode == RoutingMode::kCascade && !heavy_pool.empty()
          ? cfg_.heavy_reserve_factor * heavy_exec_latency(plan.heavy_batch)
          : 0.0;

  balancer_->set_pools(std::move(light_pool), std::move(heavy_pool));
  balancer_->set_config(rc);
  plan_ = plan;
  if (!evicted.empty()) balancer_->resubmit(std::move(evicted));

  DS_LOG_DEBUG("system") << "applied plan: light=" << n_light
                         << " heavy=" << n_heavy << " b1=" << plan.light_batch
                         << " b2=" << plan.heavy_batch
                         << " t=" << plan.threshold;
}

void ServingSystem::inject_arrivals(const std::vector<double>& times) {
  for (const double t : times) {
    const std::uint64_t seq = next_seq_++;
    Query q;
    q.seq = seq;
    q.prompt_id = static_cast<quality::QueryId>(seq % workload_.size());
    q.arrival_time = t;
    q.deadline = t + cfg_.slo_seconds;
    sim_.schedule_at(t, [this, q]() mutable { balancer_->submit(q); });
  }
}

}  // namespace diffserve::serving
