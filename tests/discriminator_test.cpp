// Tests for discriminator training and the deferral profile f(t).
#include <gtest/gtest.h>

#include "discriminator/deferral_profile.hpp"
#include "discriminator/discriminator.hpp"
#include "nn/metrics.hpp"
#include "quality/workload.hpp"

namespace diffserve::discriminator {
namespace {

const quality::Workload& shared_workload() {
  static const quality::Workload w(1200);
  return w;
}

const Discriminator& shared_disc() {
  static const Discriminator d = [] {
    DiscriminatorConfig cfg;
    cfg.train_queries = 800;
    return train_discriminator(shared_workload(), 2, 5, cfg);
  }();
  return d;
}

TEST(Discriminator, SeparatesRealFromLightGenerations) {
  const auto& w = shared_workload();
  const auto& d = shared_disc();
  std::vector<double> scores;
  std::vector<int> labels;
  for (quality::QueryId q = 800; q < 1200; ++q) {  // held-out queries
    scores.push_back(d.confidence(w.real_feature(q)));
    labels.push_back(1);
    scores.push_back(d.confidence(w.generated_feature(q, 2)));
    labels.push_back(0);
  }
  EXPECT_GT(nn::roc_auc(scores, labels), 0.95);
}

TEST(Discriminator, ConfidencePredictsImageQuality) {
  // The repurposing insight (§3.2): higher confidence -> lower true error.
  const auto& w = shared_workload();
  const auto& d = shared_disc();
  std::vector<double> conf;
  std::vector<int> is_good;
  for (quality::QueryId q = 800; q < 1200; ++q) {
    conf.push_back(d.confidence(w.generated_feature(q, 2)));
    is_good.push_back(w.true_error(q, 2) < 3.0 ? 1 : 0);
  }
  EXPECT_GT(nn::roc_auc(conf, is_good), 0.8);
}

TEST(Discriminator, ConfidenceInUnitInterval) {
  const auto& w = shared_workload();
  const auto& d = shared_disc();
  for (quality::QueryId q = 0; q < 100; ++q) {
    const double c = d.confidence(w.generated_feature(q, 2));
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
}

TEST(Discriminator, BackboneLatenciesMatchPaper) {
  const auto& w = shared_workload();
  DiscriminatorConfig cfg;
  cfg.train_queries = 100;
  cfg.epochs = 1;
  cfg.backbone = Backbone::kEfficientNet;
  EXPECT_NEAR(train_discriminator(w, 2, 5, cfg).inference_latency(), 0.010,
              1e-9);
  cfg.backbone = Backbone::kResNet;
  EXPECT_NEAR(train_discriminator(w, 2, 5, cfg).inference_latency(), 0.002,
              1e-9);
  cfg.backbone = Backbone::kViT;
  EXPECT_NEAR(train_discriminator(w, 2, 5, cfg).inference_latency(), 0.005,
              1e-9);
}

TEST(Discriminator, VariantNames) {
  DiscriminatorConfig cfg;
  EXPECT_EQ(variant_name(cfg), "EfficientNet w GT");
  cfg.real_source = RealSource::kHeavyModel;
  EXPECT_EQ(variant_name(cfg), "EfficientNet w Fake");
  cfg.backbone = Backbone::kViT;
  cfg.real_source = RealSource::kGroundTruth;
  EXPECT_EQ(variant_name(cfg), "ViT w GT");
}

TEST(Discriminator, EfficientNetBeatsResNetAtRouting) {
  // §4.4 ordering: the higher-capacity backbone routes better. Compare
  // AUC of confidence vs. the light-heavy quality gap on held-out data.
  const auto& w = shared_workload();
  auto routing_auc = [&](Backbone b) {
    DiscriminatorConfig cfg;
    cfg.backbone = b;
    cfg.train_queries = 800;
    const auto d = train_discriminator(w, 2, 5, cfg);
    std::vector<double> conf;
    std::vector<int> easy;
    for (quality::QueryId q = 800; q < 1200; ++q) {
      conf.push_back(d.confidence(w.generated_feature(q, 2)));
      easy.push_back(w.true_error(q, 2) <= w.true_error(q, 5) ? 1 : 0);
    }
    return nn::roc_auc(conf, easy);
  };
  EXPECT_GT(routing_auc(Backbone::kEfficientNet),
            routing_auc(Backbone::kResNet));
}

TEST(DeferralProfile, IsMonotoneCdf) {
  const auto& w = shared_workload();
  const auto profile = DeferralProfile::profile(w, shared_disc(), 2, 800);
  double prev = -1.0;
  for (double t = 0.0; t <= 1.0; t += 0.02) {
    const double f = profile.fraction_deferred(t);
    EXPECT_GE(f, prev);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
  EXPECT_EQ(profile.fraction_deferred(0.0), 0.0);
  EXPECT_EQ(profile.fraction_deferred(1.0 + 1e-9), 1.0);
}

class ThresholdInverse : public ::testing::TestWithParam<double> {};

TEST_P(ThresholdInverse, ThresholdForFractionIsInverse) {
  const auto& w = shared_workload();
  const auto profile = DeferralProfile::profile(w, shared_disc(), 2, 800);
  const double target = GetParam();
  const double t = profile.threshold_for_fraction(target);
  // f(t) <= target, and the next-larger threshold would exceed it.
  EXPECT_LE(profile.fraction_deferred(t), target + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Fractions, ThresholdInverse,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9,
                                           1.0));

TEST(DeferralProfile, GridIsSortedAndCapped) {
  const auto& w = shared_workload();
  const auto profile = DeferralProfile::profile(w, shared_disc(), 2, 800);
  const auto grid = profile.grid(21, 0.6);
  ASSERT_GE(grid.size(), 2u);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_GT(grid[i].threshold, grid[i - 1].threshold);
    EXPECT_GE(grid[i].fraction, grid[i - 1].fraction);
  }
  EXPECT_LE(grid.back().fraction, 0.6 + 0.05);
}

TEST(DeferralProfile, RejectsBadInput) {
  EXPECT_THROW(DeferralProfile({0.1, 0.2}), std::invalid_argument);  // too few
  std::vector<double> bad(50, 0.5);
  bad[0] = 1.5;
  EXPECT_THROW(DeferralProfile(std::move(bad)), std::invalid_argument);
}

TEST(OnlineDeferralProfile, FallsBackToOfflineUntilWarm) {
  std::vector<double> offline_samples;
  for (int i = 0; i < 100; ++i) offline_samples.push_back(0.01 * i);
  DeferralProfile offline(offline_samples);
  OnlineDeferralProfile online(offline, 1000, 200);
  // Cold: matches offline.
  EXPECT_NEAR(online.fraction_deferred(0.5),
              offline.fraction_deferred(0.5), 1e-12);
  // Feed 300 high confidences: deferral at 0.5 should drop.
  for (int i = 0; i < 300; ++i) online.observe(0.9);
  EXPECT_LT(online.fraction_deferred(0.5), 0.1);
}

TEST(OnlineDeferralProfile, WindowEvictsOldObservations) {
  std::vector<double> offline_samples(100, 0.5);
  OnlineDeferralProfile online(DeferralProfile(offline_samples), 300, 100);
  for (int i = 0; i < 300; ++i) online.observe(0.1);
  for (int i = 0; i < 300; ++i) online.observe(0.9);
  // Ring of 300 now holds only the 0.9s.
  EXPECT_LT(online.fraction_deferred(0.5), 0.05);
}

TEST(TrainedWithHeavyAsReal, StillProducesScores) {
  const auto& w = shared_workload();
  DiscriminatorConfig cfg;
  cfg.real_source = RealSource::kHeavyModel;
  cfg.train_queries = 400;
  const auto d = train_discriminator(w, 2, 5, cfg);
  const double c = d.confidence(w.generated_feature(0, 2));
  EXPECT_GE(c, 0.0);
  EXPECT_LE(c, 1.0);
  EXPECT_EQ(d.name(), "EfficientNet w Fake");
}

}  // namespace
}  // namespace diffserve::discriminator
