// Fixture: ordered container keyed by pointer. Must trip
// `pointer-keyed-ordered` (address order is allocation order, which
// ASLR randomizes run to run).
#include <map>

struct Worker;

struct Registry {
  std::map<Worker*, int> inflight_by_worker;
};
