// Typed messages over the frame codec — the cluster control/data plane.
//
// Five topics cover everything the sharded topology exchanges:
//
//   query/submit         frontend -> shard   admit one routed Query
//   query/terminal       shard -> frontend   completion or drop
//   shard/stats_request  frontend -> shard   poll a stats snapshot
//   shard/stats          shard -> frontend   demand/queues/cache snapshot
//   cluster/plan         frontend -> shard   per-shard AllocationPlan
//
// Serialization is a fixed field order of big-endian integers; doubles
// travel as their IEEE-754 bit pattern in a u64, so encode(decode(bytes))
// is byte-exact — the round-trip tests assert equality on the wire
// bytes, not on post-decode values. decode() returns false unless the
// payload parses completely with zero trailing bytes.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/approx_cache.hpp"
#include "engine/plan.hpp"
#include "engine/query.hpp"
#include "net/frame.hpp"

namespace diffserve::net {

inline constexpr char kTopicQuery[] = "query/submit";
inline constexpr char kTopicTerminal[] = "query/terminal";
inline constexpr char kTopicStatsRequest[] = "shard/stats_request";
inline constexpr char kTopicStats[] = "shard/stats";
inline constexpr char kTopicPlan[] = "cluster/plan";

/// Frontend -> shard: one admitted query, routing already decided.
struct QueryMsg {
  std::uint32_t shard = 0;
  engine::Query query;
};

/// Shard -> frontend: a query reached its terminal (served or dropped).
/// Carries no image feature: quality::served_image_feature is a pure
/// function of (workload, query, tier), so the frontend's sink recomputes
/// it bit-identically from the replicated workload.
struct TerminalMsg {
  std::uint32_t shard = 0;
  engine::Query query;
  double time = 0.0;
  std::int32_t served_tier = -1;  ///< -1 on drops
  bool dropped = false;
};

/// Frontend -> shard: reply with a shard/stats frame. `token` echoes back
/// so the controller can discard snapshots from a superseded tick.
struct StatsRequestMsg {
  std::uint32_t shard = 0;
  std::uint64_t token = 0;
};

struct StageSnapshot {
  double queue_length = 0.0;
  double arrival_rate = 0.0;
  std::int32_t workers = 0;
};

/// Shard -> frontend: everything the cluster controller folds into its
/// global allocation input. CacheStats counters are additive, so the
/// controller sums them across shards before differencing.
struct ShardStatsMsg {
  std::uint32_t shard = 0;
  std::uint64_t token = 0;
  double time = 0.0;
  double demand_rate = 0.0;
  double recent_violation_ratio = 0.0;
  std::uint64_t submitted = 0;
  bool cache_enabled = false;
  cache::CacheStats cache;
  std::vector<StageSnapshot> stages;
  /// Per-SLO-class arrival rates (QPS, indexed by engine::QueryClass).
  /// Trailing optional field: pre-class frames end after `stages` and
  /// decode with this empty.
  std::vector<double> class_demand;
};

/// Frontend -> shard: this shard's slice of the global allocation.
struct PlanMsg {
  std::uint32_t shard = 0;
  engine::AllocationPlan plan;
};

Frame encode(const QueryMsg& m);
Frame encode(const TerminalMsg& m);
Frame encode(const StatsRequestMsg& m);
Frame encode(const ShardStatsMsg& m);
Frame encode(const PlanMsg& m);

bool decode(const Frame& f, QueryMsg* out);
bool decode(const Frame& f, TerminalMsg* out);
bool decode(const Frame& f, StatsRequestMsg* out);
bool decode(const Frame& f, ShardStatsMsg* out);
bool decode(const Frame& f, PlanMsg* out);

}  // namespace diffserve::net
