// Tests for the threaded testbed runtime, including the simulator-fidelity
// comparison the paper reports in §4.3.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "control/exhaustive_allocator.hpp"
#include "core/environment.hpp"
#include "core/experiment.hpp"
#include "runtime/threaded_runtime.hpp"
#include "util/trace_clock.hpp"

namespace diffserve::runtime {
namespace {

const core::CascadeEnvironment& shared_env() {
  static const core::CascadeEnvironment env = [] {
    core::EnvironmentConfig cfg;
    cfg.workload_queries = 800;
    cfg.discriminator.train_queries = 500;
    cfg.profile_queries = 500;
    return core::CascadeEnvironment(cfg);
  }();
  return env;
}

TEST(ThreadedRuntime, CompletesShortTrace) {
  const auto tr = trace::RateTrace::azure_like(2.0, 8.0, 45.0, 5);
  control::ExhaustiveAllocator alloc;
  RuntimeConfig cfg;
  cfg.total_workers = 6;
  cfg.time_scale = 60.0;
  const auto r = run_threaded(shared_env(), alloc, tr, cfg);
  EXPECT_GT(r.submitted, 50u);
  // Everything terminates (completed or dropped); small in-flight slack
  // can remain at shutdown.
  EXPECT_GE(r.completed + r.dropped + 5, r.submitted);
  EXPECT_GE(r.violation_ratio, 0.0);
  EXPECT_LE(r.violation_ratio, 1.0);
  EXPECT_GT(r.overall_fid, 0.0);
}

TEST(ThreadedRuntime, ServesBothStages) {
  const auto tr = trace::RateTrace::constant(4.0, 40.0);
  control::ExhaustiveAllocator alloc;
  RuntimeConfig cfg;
  cfg.total_workers = 6;
  cfg.time_scale = 60.0;
  const auto r = run_threaded(shared_env(), alloc, tr, cfg);
  EXPECT_GT(r.light_served_fraction, 0.0);
  EXPECT_LT(r.light_served_fraction, 1.0);
}

TEST(ThreadedRuntime, ReconfiguresUnderDemandChange) {
  const auto tr = trace::RateTrace::azure_like(2.0, 10.0, 60.0, 9);
  control::ExhaustiveAllocator alloc;
  RuntimeConfig cfg;
  cfg.total_workers = 6;
  cfg.time_scale = 60.0;
  const auto r = run_threaded(shared_env(), alloc, tr, cfg);
  EXPECT_GT(r.reconfigurations, 0u);
}

TEST(ThreadedRuntime, FidelityAgainstSimulator) {
  // §4.3: "an average difference of only 0.56% for FID and 1.1% for SLO
  // violations compared to the testbed". Run the same workload through the
  // DES and the threaded runtime and require close agreement on quality
  // and reasonable agreement on violations (the threaded runtime inherits
  // real scheduling jitter).
  const auto tr = trace::RateTrace::azure_like(2.0, 8.0, 60.0, 7);

  core::RunConfig sim_cfg;
  sim_cfg.approach = core::Approach::kDiffServeExhaustive;
  sim_cfg.total_workers = 6;
  sim_cfg.trace = tr;
  const auto sim_res = core::run_experiment(shared_env(), sim_cfg);

  control::ExhaustiveAllocator alloc;
  RuntimeConfig rt_cfg;
  rt_cfg.total_workers = 6;
  rt_cfg.time_scale = 40.0;
  const auto rt_res = run_threaded(shared_env(), alloc, tr, rt_cfg);

  const double fid_rel_diff =
      std::fabs(sim_res.overall_fid - rt_res.overall_fid) /
      sim_res.overall_fid;
  EXPECT_LT(fid_rel_diff, 0.15);
  EXPECT_LT(std::fabs(sim_res.violation_ratio - rt_res.violation_ratio),
            0.15);
}

TEST(ThreadedRuntime, ServesThreeStageChain) {
  // The catalog's three-stage chain runs end-to-end on the threaded
  // backend: every stage produces completions under the standard control
  // loop.
  core::EnvironmentConfig cfg;
  cfg.cascade = models::catalog::kChain3;
  cfg.workload_queries = 600;
  cfg.discriminator.train_queries = 300;
  cfg.profile_queries = 300;
  const core::CascadeEnvironment env(cfg);

  const auto tr = trace::RateTrace::constant(6.0, 30.0);
  control::ExhaustiveAllocator alloc;
  RuntimeConfig rt;
  rt.total_workers = 8;
  rt.time_scale = 60.0;
  const auto r = run_threaded(env, alloc, tr, rt);
  EXPECT_GT(r.completed, 100u);
  ASSERT_EQ(r.stage_served_fraction.size(), 3u);
  for (const double f : r.stage_served_fraction) EXPECT_GT(f, 0.0);
}

TEST(ThreadedBackendOffload, SlowControlJobDoesNotDelayTimers) {
  // The ROADMAP regression: controller ticks (and their allocator solves)
  // used to run inline on the timer thread, so a slow MILP delayed
  // batch-launch timers. offload() routes them to a dedicated control
  // thread; a timer due in the middle of a long-running control job must
  // still fire on time.
  util::TraceClock clock(1.0);  // 1 trace second == 1 wall second
  ThreadedBackend backend(clock, /*workers=*/1);
  backend.start();

  std::atomic<bool> timer_fired{false};
  std::atomic<double> timer_at{0.0};
  backend.offload([&] {
    // A 500 ms "allocator solve" straddling the timer's due time.
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
  });
  backend.defer(0.05, [&] {
    timer_at.store(clock.now());
    timer_fired.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_TRUE(timer_fired.load());
  // Fired near its due time, not after the control job released the
  // timer thread at ~0.5 (which the inline design would have forced).
  // The slack absorbs scheduling noise on loaded CI runners.
  EXPECT_LT(timer_at.load(), 0.25);
  backend.stop();
}

/// Wraps an allocator with an artificial wall-clock solve delay.
class SlowAllocator final : public control::Allocator {
 public:
  SlowAllocator(control::Allocator& inner, int delay_ms)
      : inner_(inner), delay_ms_(delay_ms) {}
  control::AllocationDecision allocate(
      const control::AllocationInput& input) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms_));
    return inner_.allocate(input);
  }
  std::string name() const override { return "slow-" + inner_.name(); }

 private:
  control::Allocator& inner_;
  int delay_ms_;
};

TEST(ThreadedRuntime, SlowAllocatorSolvesDoNotStarveBatchTimers) {
  // At time_scale 40 a 5 s control period is 125 ms of wall time; a
  // 100 ms solve per tick would have blocked the timer thread for ~80%
  // of every period under the old inline design, turning deadline-edge
  // batches into drops. On the control executor the same solve must
  // leave serving quality close to the fast-allocator run.
  const auto tr = trace::RateTrace::constant(4.0, 40.0);
  RuntimeConfig cfg;
  cfg.total_workers = 6;
  cfg.time_scale = 40.0;

  control::ExhaustiveAllocator fast;
  const auto base = run_threaded(shared_env(), fast, tr, cfg);

  control::ExhaustiveAllocator inner;
  SlowAllocator slow(inner, /*delay_ms=*/100);
  const auto r = run_threaded(shared_env(), slow, tr, cfg);

  EXPECT_GT(r.submitted, 100u);
  EXPECT_GE(r.completed + r.dropped + 5, r.submitted);
  // The inline design pushed violations up by tens of points here; the
  // margin only absorbs scheduling noise on loaded CI runners.
  EXPECT_LT(r.violation_ratio, base.violation_ratio + 0.15);
}

TEST(ThreadedRuntime, RejectsBadConfig) {
  const auto tr = trace::RateTrace::constant(1.0, 20.0);
  control::ExhaustiveAllocator alloc;
  RuntimeConfig cfg;
  cfg.total_workers = 1;
  EXPECT_THROW(run_threaded(shared_env(), alloc, tr, cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace diffserve::runtime
