#include "milp/problem.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace diffserve::milp {

int Problem::add_variable(const std::string& name, VarType type, double lower,
                          double upper, double objective_coeff) {
  DS_REQUIRE(lower <= upper, "variable bounds inverted: " + name);
  if (type == VarType::kBinary) {
    lower = std::max(lower, 0.0);
    upper = std::min(upper, 1.0);
  }
  variables_.push_back({name, type, lower, upper, objective_coeff});
  return static_cast<int>(variables_.size()) - 1;
}

void Problem::add_constraint(const std::string& name,
                             std::vector<std::pair<int, double>> terms,
                             Sense sense, double rhs) {
  for (const auto& [idx, coeff] : terms) {
    DS_REQUIRE(idx >= 0 && idx < static_cast<int>(variables_.size()),
               "constraint references unknown variable: " + name);
    (void)coeff;
  }
  constraints_.push_back({name, std::move(terms), sense, rhs});
}

bool Problem::has_integer_variables() const {
  return std::any_of(variables_.begin(), variables_.end(), [](const auto& v) {
    return v.type != VarType::kContinuous;
  });
}

double Problem::objective_value(const std::vector<double>& x) const {
  DS_REQUIRE(x.size() == variables_.size(), "solution size mismatch");
  double obj = 0.0;
  for (std::size_t i = 0; i < variables_.size(); ++i)
    obj += variables_[i].objective * x[i];
  return obj;
}

double Problem::max_violation(const std::vector<double>& x) const {
  DS_REQUIRE(x.size() == variables_.size(), "solution size mismatch");
  double viol = 0.0;
  for (std::size_t i = 0; i < variables_.size(); ++i) {
    viol = std::max(viol, variables_[i].lower - x[i]);
    if (variables_[i].upper < kInfinity)
      viol = std::max(viol, x[i] - variables_[i].upper);
  }
  for (const auto& c : constraints_) {
    double lhs = 0.0;
    for (const auto& [idx, coeff] : c.terms) lhs += coeff * x[idx];
    switch (c.sense) {
      case Sense::kLe: viol = std::max(viol, lhs - c.rhs); break;
      case Sense::kGe: viol = std::max(viol, c.rhs - lhs); break;
      case Sense::kEq: viol = std::max(viol, std::fabs(lhs - c.rhs)); break;
    }
  }
  return viol;
}

const char* to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kLimit: return "limit";
  }
  return "?";
}

}  // namespace diffserve::milp
