// Approximate prompt-reuse cache (the "retrieval" tier in front of the
// cascade).
//
// Production text-to-image traffic is heavily repetitive: the same and
// near-identical prompts recur, and intermediate results for *similar*
// prompts can seed a generation that needs only a fraction of the
// diffusion steps (Agarwal et al., PAPERS.md). This module is that reuse
// tier: a capacity-bounded store keyed by prompt style vectors, probed at
// admission by the CascadeEngine.
//
// A lookup classifies the nearest cached neighbour into tiered hit levels:
//
//   exact       — distance <= exact_distance and the donor has a terminal
//                 image: it is served as-is; the query never enters a
//                 stage pool.
//   approx-near — distance <= near_distance: the donor's intermediate
//                 result seeds the generation, which then runs only a
//                 fraction of its diffusion steps.
//   approx-far  — distance <= far_distance: a weaker seed; a larger
//                 fraction of the steps still runs.
//   miss        — nothing close enough; full generation.
//
// The step fraction an approx hit executes is either the tiered
// near/far constant (the PR-3 behaviour, still the default) or — with
// `interpolate_step_fraction` — a continuous piecewise-linear function of
// the distance through the same constants as anchors (Nirvana-style: the
// closer the donor, the later the resumption point).
//
// Entries are **multi-level**: besides the terminal image, a donor can
// carry intermediate latents recorded at every cascade boundary its
// generation crossed (`insert_latent`). An approx hit resumes from the
// donor's deepest recorded stage; the lookup reports which stages the
// donor has latents for so the engine can run full steps at stages the
// donor never reached.
//
// Lookup is either the exact O(N) linear scan (small caches) or a bucketed
// ANN index — multi-table LSH over random hyperplane projections of the
// style vector, p-stable quantized (each table buckets the key by its cell
// in `lsh_projections` random projections). Probing is adaptive by
// default (`lsh_adaptive_probe`): the cell width is tied to the *far*
// radius, and each table expands a query-directed probe set (Lv et
// al.-style — neighbour cells ranked by projection-space boundary
// distance) until the modelled expected recall of a far_distance
// neighbour meets `lsh_target_recall` or a per-table probe budget —
// auto-tuned from the observed candidates-per-probe yield — runs out,
// which keeps recall flat across the hit radius instead of decaying
// toward its far edge. The legacy fixed ±1-cell probing (cell width tied
// to near_distance) remains behind `lsh_adaptive_probe = false`. Either
// way the index is approximate (a near-threshold neighbour in an
// unprobed bucket can be missed) but fully deterministic: projections
// derive from `lsh_seed` and the budget tuner from the operation
// sequence alone, so two caches fed the same operation sequence agree
// byte-for-byte, which is what keeps the DES and threaded backends in
// lockstep.
//
// Eviction is LRU blended with popularity: the victim minimizes
// last_used + popularity_weight * log1p(hits), so a frequently reused
// entry survives a burst of one-off insertions. The victim is found by a
// deterministic *lazy min-heap* over that score (`EvictionKind::kHeap`):
// every score change pushes a fresh (score, version) pair instead of
// re-heapifying, and evict_one pops until the top's version is current —
// amortized O(log N) per insert where the reference scan
// (`EvictionKind::kScan`) pays O(N), with a byte-identical victim
// sequence (pinned by `HeapEvictionMatchesScanAcross50Seeds`). All
// behaviour is a deterministic function of the operation sequence (no
// internal randomness), which is how the DES and threaded backends stay
// in agreement; the engine's guard serializes access, so the cache
// itself holds no lock.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "quality/workload.hpp"

namespace diffserve::cache {

/// Outcome tier of a cache probe, ordered by reuse strength.
enum class HitLevel { kMiss = 0, kExact = 1, kApproxNear = 2, kApproxFar = 3 };

const char* to_string(HitLevel level);

enum class SimilarityMetric {
  kL2,      ///< Euclidean distance between style vectors
  kCosine,  ///< 1 - cosine similarity (0 = parallel, 2 = opposed)
};

/// How lookups find the nearest cached neighbour.
enum class IndexKind {
  /// Pick per capacity: the LSH index above `kAutoIndexThreshold` entries,
  /// the exact scan below it (small caches scan faster than they hash, and
  /// exactly).
  kAuto,
  /// Exact O(N) linear scan — the reference semantics.
  kScan,
  /// Bucketed multi-table LSH over quantized random hyperplane
  /// projections, with ±1-cell multi-probe.
  kLsh,
};

/// kAuto switches from the scan to the LSH index above this capacity.
inline constexpr std::size_t kAutoIndexThreshold = 4096;

/// How evict_one finds the LRU+popularity victim.
enum class EvictionKind {
  /// Lazy min-heap over the eviction score: touches push updated
  /// (score, version) pairs, evict_one pops past stale ones — amortized
  /// O(log N) per insert on a full cache. Byte-identical victim sequence
  /// to the scan.
  kHeap,
  /// Exact O(N) scan per eviction — the reference semantics (and the
  /// baseline `bench/fig11_cache_reuse.cpp` Part 3 measures against).
  kScan,
};

struct CacheConfig {
  /// Master switch. Disabled (the default) means the engine never probes
  /// or inserts — behaviour is byte-identical to a build without the
  /// cache subsystem.
  bool enabled = false;
  /// Maximum number of cached entries.
  std::size_t capacity = 256;
  SimilarityMetric metric = SimilarityMetric::kL2;
  /// Distance thresholds for the hit tiers, in the chosen metric's units.
  /// The defaults suit L2 over the synthetic workload's ~N(0,1)^6 style
  /// vectors; cosine deployments want thresholds in [0, 2].
  double exact_distance = 1e-9;
  double near_distance = 1.0;
  double far_distance = 1.8;
  /// Fraction of the diffusion steps an approx hit still executes (the
  /// donor's intermediate result replaces the skipped prefix). With
  /// `interpolate_step_fraction` these become the interpolation anchors at
  /// near_distance / far_distance.
  double near_step_fraction = 0.4;
  double far_step_fraction = 0.75;
  /// Interpolate the step fraction continuously from the donor distance:
  /// piecewise-linear from (exact_distance -> min_step_fraction) through
  /// (near_distance -> near_step_fraction) to
  /// (far_distance -> far_step_fraction). Off (the default) reproduces the
  /// tiered near/far constants exactly.
  bool interpolate_step_fraction = false;
  /// Interpolation floor as the distance approaches exact_distance (a
  /// near-duplicate prompt still runs a sliver of steps).
  double min_step_fraction = 0.05;
  /// Record intermediate latents at every cascade boundary a (cache-miss)
  /// generation crosses, and resume approx hits from the donor's deepest
  /// recorded stage. Off (the default) caches terminal images only — the
  /// PR-3 behaviour.
  bool latent_levels = false;
  /// Lookup strategy; see IndexKind.
  IndexKind index_kind = IndexKind::kAuto;
  /// Random hyperplane projections per LSH table: a table's bucket is the
  /// quantized cell of the key under its projections. More projections
  /// mean finer buckets (fewer candidates, lower per-table recall — each
  /// extra table then wins most of it back). The default balances the
  /// far-tuned adaptive cells: 12 projections of far-sized cells carry
  /// about the candidate density 10 projections of near-sized cells did.
  std::size_t lsh_projections = 12;
  /// Independent LSH tables; a neighbour is found if any table buckets it
  /// with the query (or one cell away when probing). Recall at a given
  /// distance approaches 1 geometrically in the table count — the tenth
  /// table is what holds the far-edge decile clear of its CI floor.
  std::size_t lsh_tables = 10;
  /// Quantization cell width as a multiple of the hit radius the index is
  /// tuned for: far_distance under adaptive probing (so a far-edge
  /// neighbour typically crosses at most a couple of cell boundaries and
  /// the directed probe set can recover it), near_distance under the
  /// legacy fixed probing (finer cells, recall decaying toward the far
  /// edge).
  double lsh_width_scale = 1.0;
  /// Also probe, per table, every bucket one quantization cell away in a
  /// single projection (2*lsh_projections extra probes) — recovers most
  /// near-boundary neighbours. Fixed-probing mode only (adaptive probing
  /// supersedes it).
  bool lsh_probe_neighbors = true;
  /// Query-directed adaptive multi-probe (the default): rank neighbour
  /// cells by projection-space boundary distance and expand each table's
  /// probe set until the expected recall of a far_distance neighbour
  /// meets lsh_target_recall or the (yield-tuned) probe budget runs out.
  /// Off restores the legacy near-tuned cell width and fixed ±1-cell
  /// probing — byte-for-byte the PR-4 index at equal lsh_projections and
  /// lsh_tables (their defaults moved 10 -> 12 and 8 -> 10 alongside the
  /// wider adaptive cells).
  bool lsh_adaptive_probe = true;
  /// Adaptive probing stops expanding once the modelled recall of a
  /// neighbour at far_distance (across all tables) reaches this bound.
  double lsh_target_recall = 0.9;
  /// Per-table probe budget for adaptive probing, in units of expected
  /// *candidate evaluations* (distance computations): the effective probe
  /// count is this divided by the observed candidates-per-probe yield
  /// (EWMA, deterministic), clamped to [2, 2x] probes — dense buckets
  /// probe a handful of cells that already carry plenty of candidates,
  /// sparse buckets fan out to 2x (cells there are near-free), and the
  /// distance-computation work per lookup stays roughly flat either way.
  /// The default is sized for the sparse regime's far edge: up to 2x96
  /// probes per table hold far-decile recall comfortably over 0.9 of the
  /// near decile's (fig11 Part 3a), while dense caches tune down to a
  /// few probes regardless.
  std::size_t lsh_probe_budget = 96;
  /// Seed of the projection directions/offsets. Fixed per cache instance,
  /// so both execution backends derive identical buckets.
  std::uint64_t lsh_seed = 0xD1FF5EEDCAFEULL;
  /// Chain depth of the serving cascade (set by the engine). With latent
  /// levels, stages outside the donor's level mask run full steps, so the
  /// step fraction recorded into CacheStats — what the controller's
  /// service-time discount consumes — is weighted by the donor's stage
  /// coverage. 0 (unknown) records the raw fraction, i.e. assumes full
  /// coverage.
  std::size_t chain_stages = 0;
  /// Serving latency of an exact hit (lookup + image decode), trace
  /// seconds; the query completes after this delay without touching a
  /// stage pool.
  double hit_latency = 0.02;
  /// Eviction blend: seconds of recency one e-fold of hits is worth. 0 is
  /// pure LRU; larger values protect popular entries longer.
  double popularity_weight = 5.0;
  /// Victim search strategy; see EvictionKind. kHeap (the default) keeps
  /// the insert path sublinear on a full cache; kScan is the O(N)
  /// reference both must agree with victim-for-victim.
  EvictionKind eviction_kind = EvictionKind::kHeap;
};

/// Aggregate probe/insert counters (engine- and controller-facing).
struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t exact_hits = 0;
  std::uint64_t near_hits = 0;
  std::uint64_t far_hits = 0;
  std::uint64_t insertions = 0;
  /// Intermediate latents recorded at boundary crossings (latent_levels).
  std::uint64_t latent_insertions = 0;
  std::uint64_t evictions = 0;
  /// Sum of the step fractions the stages still had to run, over every
  /// lookup that was *not* an exact hit (a miss contributes 1.0). The
  /// controller's per-stage service-time discount is the mean of this.
  double step_fraction_sum = 0.0;
  /// Per-level step-fraction sums (near/far hits only) — with interpolated
  /// fractions the controller splits its service-time EWMAs by hit level,
  /// so each level's discount reflects its actual mean fraction.
  double near_step_fraction_sum = 0.0;
  double far_step_fraction_sum = 0.0;
  /// LSH probe-depth counters (indexed lookups only): buckets probed and
  /// candidate distance computations performed. Their ratio is the yield
  /// the adaptive probe budget tunes itself from.
  std::uint64_t lsh_probed_cells = 0;
  std::uint64_t lsh_probe_candidates = 0;
  /// Lazy-heap maintenance counters: full rebuilds that shed stale
  /// (score, version) pairs, and stale pairs skipped during evictions.
  std::uint64_t heap_compactions = 0;
  std::uint64_t heap_stale_pops = 0;

  std::uint64_t hits() const { return exact_hits + near_hits + far_hits; }
  /// Any-level hits over lookups (0 before the first lookup).
  double hit_ratio() const;
  /// Exact hits over lookups — the fraction of demand the cache absorbs
  /// entirely.
  double exact_hit_ratio() const;
  /// Mean step fraction over non-exact lookups (1.0 before any).
  double mean_step_fraction() const;
  /// Mean LSH buckets probed per lookup (0 for unindexed caches).
  double mean_probed_cells() const;
};

/// Result of one admission-time probe.
struct LookupResult {
  HitLevel level = HitLevel::kMiss;
  quality::QueryId donor_prompt = 0;  ///< prompt whose image is reused
  int donor_tier = -1;                ///< tier of the donor's deepest result
  int donor_stage = -1;               ///< chain stage that produced it
  double distance = 0.0;              ///< distance to the donor's key
  /// Fraction of diffusion steps the chain still runs (1.0 on a miss,
  /// 0.0 on an exact hit). Tiered constant or distance-interpolated.
  double step_fraction = 1.0;
  /// Bit s set when the donor has a result (latent or terminal image)
  /// produced at chain stage s — the stages a resumed generation can skip
  /// steps at. 0 on a miss. An approx hit resumes from `donor_stage`, the
  /// deepest of these.
  std::uint32_t level_mask = 0;
};

class ApproxCache {
 public:
  explicit ApproxCache(CacheConfig cfg);

  /// Probe for the nearest cached neighbour of `key` and classify it.
  /// Hits refresh the donor's recency and popularity. `now` is the
  /// backend clock (trace seconds).
  LookupResult lookup(const std::vector<double>& key, double now);

  /// Insert a fully generated terminal image (prompt, quality tier,
  /// producing stage) under `key`. Re-inserting a cached prompt refreshes
  /// it — including its key — and keeps the higher-quality tier; a full
  /// cache evicts the entry with the lowest recency+popularity score
  /// first.
  void insert(quality::QueryId prompt, int tier, int stage,
              const std::vector<double>& key, double now);

  /// Record an intermediate latent: the stage-`stage` output (tier of that
  /// stage's model) of a generation that is still travelling down the
  /// chain. Creates an image-less entry if the prompt is not cached yet;
  /// an approx hit on such an entry resumes from the latent (it can never
  /// be an exact hit — there is no terminal image to serve).
  void insert_latent(quality::QueryId prompt, int tier, int stage,
                     const std::vector<double>& key, double now);

  std::size_t size() const { return entries_.size(); }
  const CacheConfig& config() const { return cfg_; }
  const CacheStats& stats() const { return stats_; }
  /// Whether lookups go through the LSH index (resolved from index_kind
  /// and capacity at construction).
  bool indexed() const { return indexed_; }

  /// Cached prompt ids in internal storage order. Two caches fed the same
  /// operation sequence evolve identical entry vectors iff they evict the
  /// same victims in the same order, so equality here pins the victim
  /// sequence byte-for-byte (exposed for the heap-vs-scan and
  /// LSH-vs-scan equivalence tests).
  std::vector<quality::QueryId> cached_prompts() const;

  /// Distance between two keys under the configured metric (exposed for
  /// tests and threshold calibration). A degenerate (near-zero-norm)
  /// vector under the cosine metric is similar to nothing: +infinity.
  double distance(const std::vector<double>& a,
                  const std::vector<double>& b) const;

  /// The step fraction an approx hit at `d` executes (tiered constants or
  /// the distance interpolation; exposed for tests and the controller's
  /// calibration).
  double approx_step_fraction(double d) const;

 private:
  /// One recorded intermediate latent of a donor generation.
  struct LatentLevel {
    int stage = 0;  ///< chain stage that produced the latent
    int tier = 0;   ///< quality tier of that stage's model
  };

  struct Entry {
    quality::QueryId prompt = 0;
    int tier = 0;    ///< terminal-image tier (0 = no terminal image yet)
    int stage = -1;  ///< chain stage that produced the terminal image
    std::vector<double> key;
    /// Intermediate latents, ascending by stage (terminal image excluded).
    std::vector<LatentLevel> levels;
    std::uint64_t hits = 0;
    double last_used = 0.0;
    std::uint64_t order = 0;  ///< insertion sequence (deterministic ties)
    /// Stamp of the entry's newest (score, version) pair in the lazy
    /// eviction heap; older pairs for this entry (or for an evicted
    /// incarnation of its prompt) are stale and skipped on pop.
    std::uint64_t version = 0;
    /// Per-table LSH bucket hashes (filled only when the index is active).
    std::vector<std::uint64_t> codes;
    /// Scratch marker of the last lookup that computed this entry's
    /// distance — multi-table probing visits an entry once per table it
    /// shares a bucket with, and the distance is the expensive part.
    std::uint64_t visit_epoch = 0;

    bool has_image() const { return tier > 0; }
  };

  double eviction_score(const Entry& e) const;
  /// Stages the entry has results for, as a bitmask.
  static std::uint32_t level_mask_of(const Entry& e);
  /// Deepest stage the entry's generation reached and its tier there.
  static void deepest_of(const Entry& e, int& stage, int& tier);

  /// Find the nearest entry (exact scan or LSH probe); returns the entry
  /// index or npos, with the distance in `best_d`.
  std::size_t nearest(const std::vector<double>& key, double& best_d);
  std::size_t nearest_scan(const std::vector<double>& key, double& best_d);
  std::size_t nearest_lsh(const std::vector<double>& key, double& best_d);
  /// The query-directed probe expansion of nearest_lsh (instantiated only
  /// there): calls `probe(table, code)` for every cell the budget and the
  /// expected-recall bound admit.
  template <typename ProbeFn>
  void nearest_lsh_adaptive(const std::vector<double>& key, ProbeFn&& probe);

  /// A candidate probe set of the adaptive expansion: a bitmask over the
  /// cost-sorted perturbation array (at most 2*32 = 64 perturbations, so
  /// one word always fits) plus the highest set index — a 24-byte POD,
  /// so frontier churn allocates nothing.
  struct ProbeSet {
    double cost = 0.0;
    std::uint64_t mask = 0;
    std::uint8_t last = 0;
  };
  /// Min-order for the expansion frontier: cheapest set first, exact
  /// cost ties broken on the smaller mask (any fixed order keeps the
  /// expansion deterministic).
  static bool probe_set_after(const ProbeSet& a, const ProbeSet& b) {
    if (a.cost != b.cost) return a.cost > b.cost;
    return a.mask > b.mask;
  }

  /// Entry index for a prompt, or npos.
  std::size_t find_prompt(quality::QueryId prompt) const;
  /// Shared refresh-or-create skeleton of insert / insert_latent: returns
  /// the entry index (evicting if a new entry was needed), with the key
  /// and recency refreshed.
  std::size_t upsert_entry(quality::QueryId prompt,
                           const std::vector<double>& key, double now);
  void evict_one();
  /// Victim index under the reference O(N) scan.
  std::size_t victim_scan() const;
  /// Victim index under the lazy heap (pops stale pairs on the way).
  std::size_t victim_heap();

  // --- lazy eviction heap ---------------------------------------------------
  /// One pushed (score, version) pair. Identified by prompt (stable
  /// across the entry vector's swap-removes); `order` breaks score ties
  /// exactly like the scan does.
  struct HeapItem {
    double score = 0.0;
    std::uint64_t order = 0;
    std::uint64_t version = 0;
    quality::QueryId prompt = 0;
  };
  /// Min-heap order over (score, order) — `a` sorts after `b`. The same
  /// lexicographic minimum the scan's strict-<-with-order-tie-break finds.
  static bool heap_after(const HeapItem& a, const HeapItem& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.order > b.order;
  }
  /// Re-stamp the entry's version and push its current score; compacts
  /// the heap when stale pairs outnumber live entries. No-op under
  /// EvictionKind::kScan.
  void heap_touch(Entry& e);
  /// Rebuild the heap from the live entries, shedding stale pairs.
  void heap_compact();

  // --- LSH index maintenance ------------------------------------------------
  void ensure_planes(std::size_t dim);
  /// Quantized projection cells of `key` under table `table`. With
  /// `fracs`, also the key's fractional position inside each cell in
  /// [0, 1) (0 = lower boundary) — what query-directed probing ranks
  /// neighbour cells by.
  void cells_of(std::size_t table, const std::vector<double>& key,
                std::int64_t* cells, double* fracs = nullptr) const;
  /// Bucket hash of a table's cell vector.
  std::uint64_t hash_cells(std::size_t table, const std::int64_t* cells) const;
  std::uint64_t code_of(std::size_t table, const std::vector<double>& key) const;
  void index_add(std::size_t idx);
  void index_remove(std::size_t idx);
  /// After a swap-remove moved the entry at `from` to `to`, rewrite its
  /// bucket references.
  void index_move(std::size_t from, std::size_t to);

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  CacheConfig cfg_;
  bool indexed_ = false;
  std::vector<Entry> entries_;
  /// prompt -> entry index (keeps refresh O(1) at million-entry sizes).
  std::unordered_map<quality::QueryId, std::size_t> by_prompt_;
  /// Projection directions, lsh_tables * lsh_projections of them, built
  /// lazily at the first key (the key dimension is not known at
  /// construction), plus one quantization offset each.
  std::vector<std::vector<double>> planes_;
  std::vector<double> plane_offsets_;
  double lsh_cell_width_ = 1.0;
  /// Per-table bucket map: cell-vector hash -> entry indices.
  std::vector<std::unordered_map<std::uint64_t, std::vector<std::size_t>>>
      buckets_;
  CacheStats stats_;
  std::uint64_t next_order_ = 0;
  /// Monotone lookup counter backing Entry::visit_epoch.
  std::uint64_t lookup_epoch_ = 0;
  /// Lazy eviction min-heap over (score, order), std::*_heap-managed.
  std::vector<HeapItem> heap_;
  /// Monotone stamp backing Entry::version / HeapItem::version.
  std::uint64_t next_version_ = 0;
  /// Smoothed candidates-per-probed-cell yield the adaptive probe budget
  /// divides by (updated per indexed lookup; deterministic).
  double probe_yield_ewma_ = 1.0;
  /// Adaptive-probe frontier scratch (reused across lookups so the hot
  /// path never allocates).
  std::vector<ProbeSet> probe_frontier_;
  /// Per-table expected-recall target: 1 - (1 - lsh_target_recall)^(1/T).
  double table_recall_target_ = 1.0;
  /// Projection-space span of far_distance (the chord for cosine): the
  /// scale of the neighbour-shift model adaptive probing estimates
  /// recall with.
  double far_span_ = 0.0;
};

}  // namespace diffserve::cache
