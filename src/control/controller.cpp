#include "control/controller.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/log.hpp"

namespace diffserve::control {

namespace {

std::vector<discriminator::DeferralProfile> replicate_profile(
    discriminator::DeferralProfile profile, std::size_t boundaries) {
  std::vector<discriminator::DeferralProfile> out;
  out.reserve(boundaries);
  for (std::size_t b = 0; b + 1 < boundaries; ++b) out.push_back(profile);
  if (boundaries > 0) out.push_back(std::move(profile));
  return out;
}

}  // namespace

Controller::Controller(
    engine::CascadeEngine& engine, std::unique_ptr<Allocator> allocator,
    std::vector<discriminator::DeferralProfile> offline_profiles,
    ControllerConfig cfg)
    : engine_(engine),
      allocator_(std::move(allocator)),
      cfg_(cfg),
      demand_holt_(cfg.ewma_alpha, cfg.trend_beta),
      class_demand_ewma_{{stats::Ewma(cfg.ewma_alpha),
                          stats::Ewma(cfg.ewma_alpha),
                          stats::Ewma(cfg.ewma_alpha)}},
      cache_hit_ewma_(cfg.cache_alpha),
      cache_near_share_ewma_(cfg.cache_alpha),
      cache_far_share_ewma_(cfg.cache_alpha),
      cache_near_frac_ewma_(cfg.cache_alpha),
      cache_far_frac_ewma_(cfg.cache_alpha) {
  DS_REQUIRE(allocator_ != nullptr, "controller needs an allocator");
  DS_REQUIRE(cfg_.period_seconds > 0.0, "control period must be positive");
  DS_REQUIRE(offline_profiles.size() == engine_.boundary_count(),
             "need one offline deferral profile per cascade boundary");
  profiles_.reserve(offline_profiles.size());
  for (auto& p : offline_profiles)
    profiles_.emplace_back(std::move(p), cfg_.online_profile_capacity);
  // Feed every data-path confidence into its boundary's online profile.
  engine_.set_confidence_observer([this](std::size_t boundary, double c) {
    util::MutexLock lock(profile_mu_);
    profiles_[boundary].observe(c);
  });
}

Controller::Controller(engine::CascadeEngine& engine,
                       std::unique_ptr<Allocator> allocator,
                       discriminator::DeferralProfile offline_profile,
                       ControllerConfig cfg)
    : Controller(engine, std::move(allocator),
                 replicate_profile(std::move(offline_profile),
                                   engine.boundary_count()),
                 cfg) {}

void Controller::start() {
  if (cfg_.initial_demand_guess > 0.0)
    demand_holt_.observe(cfg_.initial_demand_guess);
  running_.store(true);
  next_tick_time_ = engine_.backend().now();
  tick();  // provision immediately rather than serving blind for a period
  schedule_next_tick();
}

void Controller::stop() {
  running_.store(false);
  util::MutexLock lock(tick_mu_);
  if (tick_handle_.valid()) engine_.backend().cancel(tick_handle_);
  tick_handle_ = {};
}

void Controller::schedule_next_tick() {
  // Anchor ticks to absolute times so allocator solve time does not
  // stretch the control period on wall-clock backends (the DES executes
  // ticks in zero simulated time, so both backends tick at t0 + k*period).
  next_tick_time_ += cfg_.period_seconds;
  const double delay = next_tick_time_ - engine_.backend().now();
  const auto handle = engine_.backend().defer(delay, [this] {
    if (!running_.load()) return;
    // The tick (and its allocator solve, potentially a slow MILP) runs
    // through offload() so a concurrent backend's timer thread is never
    // blocked — batch-launch timers keep firing during the solve. On
    // single-threaded backends offload is a synchronous call.
    engine_.backend().offload([this] {
      if (!running_.load()) return;
      tick();
      schedule_next_tick();
    });
  });
  util::MutexLock lock(tick_mu_);
  tick_handle_ = handle;
}

AllocationInput Controller::snapshot_input() const {
  const std::size_t n = engine_.stage_count();
  AllocationInput in;
  in.stages.assign(n, {});
  in.boundary_grids.assign(engine_.boundary_count(), {});
  // Forecast past the observation + actuation lag so ramps are covered.
  in.demand_qps = demand_holt_.forecast(cfg_.forecast_horizon_periods);
  in.over_provision = cfg_.over_provision;
  in.slo_seconds = engine_.config().slo_seconds;
  in.total_workers = engine_.config().total_workers;
  in.recent_violation_ratio = engine_.recent_violation_ratio();

  // SLO-class objective: hand the allocator the per-class demand vector
  // and fold the weighted per-class deadlines into one *effective* SLO —
  // the weighted *harmonic* mean of the class deadlines (weights =
  // slo_weight x observed demand), so every allocator provisions against
  // the tiered objective without per-allocator changes. Harmonic, not
  // arithmetic: tight classes must dominate the blend — an arithmetic
  // mean lets a large batch share dilate the target past the standard
  // class's deadline and wreck it, while harmonically the loose batch
  // deadline only relaxes the target when nothing tighter has demand.
  // Classless (or not-yet-observed) inputs keep the engine SLO,
  // byte-identical to the pre-class controller.
  const auto& sc = engine_.config().slo_classes;
  if (sc.enabled) {
    in.class_demand_qps.assign(engine::kQueryClassCount, 0.0);
    in.class_slo_weights.assign(engine::kQueryClassCount, 0.0);
    double weight_sum = 0.0;
    double inverse_slo = 0.0;
    for (std::size_t c = 0; c < engine::kQueryClassCount; ++c) {
      const double d = class_demand_ewma_[c].value();
      in.class_demand_qps[c] = d;
      in.class_slo_weights[c] = sc.slo_weight[c];
      const double wc = sc.slo_weight[c] * d;
      weight_sum += wc;
      inverse_slo +=
          wc / (engine_.config().slo_seconds * sc.deadline_multiplier[c]);
    }
    if (sc.class_aware_scheduling && weight_sum > 0.0 && inverse_slo > 0.0)
      in.slo_seconds = weight_sum / inverse_slo;
  }

  // Cache-aware discounts: exact hits never reach the chain, so the
  // allocator plans for the *effective* demand lambda * (1 - h_exact);
  // approx hits shorten every stage's batches by the mean step fraction
  // of the remaining traffic. Both are 1x/0 with the cache off, keeping
  // the input byte-identical.
  const double service_discount = effective_service_discount();
  in.demand_qps *= 1.0 - effective_exact_hit_ratio();

  for (std::size_t s = 0; s < n; ++s) {
    auto& stage = in.stages[s];
    const auto stats = engine_.stage_stats(s);
    stage.queue_length = stats.total_queue_length;
    stage.arrival_rate = stats.arrival_rate;
    stage.utilization_target = StageObs::default_utilization_target(s);
    // Stage performance model from the engine's §3.3 latency math (single
    // source of truth for both backends).
    std::map<int, double> lat;
    for (const int b : models::standard_batch_sizes())
      lat[b] = engine_.stage_exec_latency(s, b) * service_discount;
    stage.perf =
        StagePerfModel(models::LatencyProfile(std::move(lat)), nullptr);
  }
  {
    util::MutexLock lock(profile_mu_);
    for (std::size_t b = 0; b < profiles_.size(); ++b)
      in.boundary_grids[b] = profiles_[b].grid(cfg_.threshold_grid_points,
                                               cfg_.max_deferral_fraction);
  }
  return in;
}

double Controller::effective_exact_hit_ratio() const {
  if (!cfg_.cache_aware || !engine_.cache_enabled()) return 0.0;
  return std::min(0.95, cache_hit_ewma_.value());
}

double Controller::effective_near_hit_ratio() const {
  if (!cfg_.cache_aware || !engine_.cache_enabled()) return 0.0;
  return cache_near_share_ewma_.value();
}

double Controller::effective_far_hit_ratio() const {
  if (!cfg_.cache_aware || !engine_.cache_enabled()) return 0.0;
  return cache_far_share_ewma_.value();
}

double Controller::effective_service_discount() const {
  if (!cfg_.cache_aware || !engine_.cache_enabled()) return 1.0;
  // Each hit level contributes its own smoothed share x smoothed savings
  // (1 - mean step fraction): with interpolated fractions the near and
  // far means drift apart, and one pooled mean would misattribute the
  // discount across a shifting near/far mix.
  double discount = 1.0;
  if (cache_near_share_ewma_.has_value() && cache_near_frac_ewma_.has_value())
    discount -= cache_near_share_ewma_.value() *
                (1.0 - cache_near_frac_ewma_.value());
  if (cache_far_share_ewma_.has_value() && cache_far_frac_ewma_.has_value())
    discount -= cache_far_share_ewma_.value() *
                (1.0 - cache_far_frac_ewma_.value());
  return std::min(1.0, std::max(discount, 0.05));
}

void Controller::observe_cache() {
  if (!cfg_.cache_aware || !engine_.cache_enabled()) return;
  const auto stats = engine_.cache_stats();
  const std::uint64_t lookups = stats.lookups - last_cache_stats_.lookups;
  if (lookups > 0) {
    const std::uint64_t exact =
        stats.exact_hits - last_cache_stats_.exact_hits;
    cache_hit_ewma_.observe(static_cast<double>(exact) /
                            static_cast<double>(lookups));
    // Split the non-exact traffic (what still reaches the chain) by hit
    // level: per-level shares and per-level mean step fractions over this
    // period.
    const std::uint64_t non_exact = lookups - exact;
    if (non_exact > 0) {
      const std::uint64_t near = stats.near_hits - last_cache_stats_.near_hits;
      const std::uint64_t far = stats.far_hits - last_cache_stats_.far_hits;
      cache_near_share_ewma_.observe(static_cast<double>(near) /
                                     static_cast<double>(non_exact));
      cache_far_share_ewma_.observe(static_cast<double>(far) /
                                    static_cast<double>(non_exact));
      if (near > 0)
        cache_near_frac_ewma_.observe((stats.near_step_fraction_sum -
                                       last_cache_stats_.near_step_fraction_sum) /
                                      static_cast<double>(near));
      if (far > 0)
        cache_far_frac_ewma_.observe((stats.far_step_fraction_sum -
                                      last_cache_stats_.far_step_fraction_sum) /
                                     static_cast<double>(far));
    }
  }
  last_cache_stats_ = stats;
}

void Controller::tick() {
  const double now = engine_.backend().now();
  const double observed = engine_.demand_rate();
  // The first tick fires before any arrivals; folding its empty-window
  // observation into the estimate would decay the initial demand guess
  // (and, on a wall-clock backend, `now` is never exactly 0).
  if (!first_tick_) {
    demand_holt_.observe(observed);
    if (engine_.config().slo_classes.enabled) {
      const auto class_rates = engine_.class_demand_rates();
      for (std::size_t c = 0; c < engine::kQueryClassCount; ++c)
        class_demand_ewma_[c].observe(class_rates[c]);
    }
  }
  first_tick_ = false;
  observe_cache();

  const AllocationInput in = snapshot_input();
  const AllocationDecision d = allocator_->allocate(in);
  apply_decision(d);

  history_.push_back({now, in.demand_qps, observed,
                      in.recent_violation_ratio,
                      effective_exact_hit_ratio(),
                      effective_near_hit_ratio(),
                      effective_far_hit_ratio(),
                      effective_service_discount(), d});
  auto& snap = history_.back();
  snap.effective_slo_seconds = in.slo_seconds;
  for (std::size_t c = 0; c < engine::kQueryClassCount; ++c)
    snap.class_demand[c] = class_demand_ewma_[c].value();
  DS_LOG_DEBUG("controller")
      << "t=" << now << " demand=" << in.demand_qps
      << " x0=" << d.workers.front() << " x_last=" << d.workers.back()
      << " b0=" << d.batches.front() << " b_last=" << d.batches.back()
      << (d.feasible ? "" : " (overload)");
}

void Controller::apply_decision(const AllocationDecision& d) {
  engine::AllocationPlan plan;
  plan.mode = d.direct_mode ? engine::RoutingMode::kDirect
                            : engine::RoutingMode::kCascade;
  plan.workers = d.workers;
  plan.batches = d.batches;
  plan.thresholds = d.thresholds;
  plan.p_heavy = d.p_heavy;
  engine_.apply(plan);
}

}  // namespace diffserve::control
