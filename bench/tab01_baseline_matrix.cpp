// Table 1: capability matrix of the compared approaches (allocation
// static/dynamic x query-aware), plus a measured one-line summary of each
// approach on a short dynamic trace to ground the table in behaviour.
#include "bench_common.hpp"
#include "core/environment.hpp"
#include "core/experiment.hpp"

using namespace diffserve;

int main() {
  bench::banner("Table 1", "approach capability matrix");
  std::printf("%-20s %-12s %-12s\n", "Approach", "Allocation", "Query-aware");
  std::printf("%-20s %-12s %-12s\n", "Clipper-Light", "Static", "No");
  std::printf("%-20s %-12s %-12s\n", "Clipper-Heavy", "Static", "No");
  std::printf("%-20s %-12s %-12s\n", "Proteus", "Dynamic", "No");
  std::printf("%-20s %-12s %-12s\n", "DiffServe-Static", "Static", "Yes");
  std::printf("%-20s %-12s %-12s\n", "DiffServe", "Dynamic", "Yes");

  core::EnvironmentConfig ec;
  ec.workload_queries = 2000;
  core::CascadeEnvironment env(ec);
  const auto tr = trace::RateTrace::azure_like(4.0, 20.0, 150.0, 3);

  util::CsvWriter csv(bench::csv_path("tab01_summary"),
                      {"approach", "fid", "violation_ratio", "mean_latency",
                       "light_fraction"});
  std::printf("\nmeasured on a 4->20 QPS trace (Cascade 1, 16 workers):\n");
  std::printf("%-20s %-8s %-12s %-10s %-8s\n", "approach", "FID",
              "violations", "mean_lat", "light%");
  for (const auto approach : core::comparison_approaches()) {
    core::RunConfig rc;
    rc.approach = approach;
    rc.total_workers = 16;
    rc.trace = tr;
    const auto r = run_experiment(env, rc);
    std::printf("%-20s %-8.2f %-12.3f %-10.2f %-8.2f\n", r.approach.c_str(),
                r.overall_fid, r.violation_ratio, r.mean_latency,
                100.0 * r.light_served_fraction);
    csv.add_row(std::vector<std::string>{
        r.approach, util::CsvWriter::format(r.overall_fid),
        util::CsvWriter::format(r.violation_ratio),
        util::CsvWriter::format(r.mean_latency),
        util::CsvWriter::format(r.light_served_fraction)});
  }
  std::printf("[csv] %s\n", bench::csv_path("tab01_summary").c_str());
  return 0;
}
