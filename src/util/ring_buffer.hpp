// Lock-free ring buffers for the serving hot path.
//
// Three members, one family:
//   * SpscRing  — wait-free single-producer/single-consumer ring used for
//     the timer->executor job hand-off in the threaded backend. "Single
//     producer" may be a set of threads that are mutually serialized by an
//     external lock (the engine guard): the lock's release/acquire edges
//     give successive pushes the same happens-before chain a single thread
//     would.
//   * MpscRing  — bounded multi-producer ring (Vyukov-style sequence
//     cells) with a configurable overflow policy: block the producer,
//     drop the oldest undelivered item, or drop the incoming one — the
//     REALTIME / TRANSACTIONAL / BATCH split of event-stream systems.
//     Used for the threaded backend's timer inbox and control queue, where
//     producers are arbitrary threads.
//   * RingDeque — single-threaded growable power-of-two ring, a
//     std::deque replacement for the engine's per-worker query queues:
//     contiguous recycled storage, so steady-state enqueue/dequeue touches
//     no allocator (the "arena" behind allocation-free admission).
//
// All capacities round up to a power of two. Elements are moved in and
// out; T must be default-constructible and movable.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace diffserve::util {

inline std::size_t ceil_pow2(std::size_t n) {
  std::size_t c = 1;
  while (c < n) c <<= 1;
  return c;
}

/// What a bounded multi-producer ring does when a push finds it full.
enum class OverflowPolicy {
  kBlock,       ///< spin/yield until a slot frees (nothing is ever lost)
  kDropOldest,  ///< discard the oldest undelivered item, keep the new one
  kDropNewest,  ///< discard the incoming item (push returns false)
};

/// Wait-free SPSC ring. One thread (or an externally serialized set of
/// threads) pushes; one thread (or serialized set) pops. try_push fails
/// when full, try_pop when empty; neither ever blocks or allocates.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity)
      : mask_(ceil_pow2(capacity < 2 ? 2 : capacity) - 1),
        slots_(mask_ + 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  bool try_push(T v) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) return false;  // full
    }
    slots_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;  // empty
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Racy size estimate — exact once the counterpart thread is quiescent.
  std::size_t size_approx() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }
  bool empty() const { return size_approx() == 0; }

 private:
  const std::size_t mask_;
  std::vector<T> slots_;
  alignas(64) std::atomic<std::size_t> head_{0};  ///< consumer cursor
  alignas(64) std::size_t tail_cache_ = 0;        ///< consumer's tail view
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< producer cursor
  alignas(64) std::size_t head_cache_ = 0;        ///< producer's head view
};

/// Bounded multi-producer ring over per-cell sequence counters. Producers
/// claim cells with a CAS on the enqueue cursor; the consumer releases
/// them a lap later. The data path is lock-free; only the kBlock policy
/// ever waits (yielding, no mutex). kDropOldest pops and discards the
/// oldest undelivered item to admit the new one — safe from the producer
/// side because the cell protocol supports concurrent consumers.
template <typename T>
class MpscRing {
 public:
  explicit MpscRing(std::size_t capacity,
                    OverflowPolicy policy = OverflowPolicy::kBlock)
      : mask_(ceil_pow2(capacity < 2 ? 2 : capacity) - 1),
        cells_(new Cell[mask_ + 1]),
        policy_(policy) {
    for (std::size_t i = 0; i <= mask_; ++i)
      cells_[i].seq.store(i, std::memory_order_relaxed);
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }
  OverflowPolicy policy() const { return policy_; }
  /// Items discarded by kDropOldest / kDropNewest overflow handling.
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Push under the ring's overflow policy. Returns false only under
  /// kDropNewest on a full ring (the incoming item was discarded).
  bool push(T v) {
    for (;;) {
      if (try_push_once(v)) return true;
      // Full. Policy decides who loses.
      switch (policy_) {
        case OverflowPolicy::kBlock:
          std::this_thread::yield();
          break;
        case OverflowPolicy::kDropOldest: {
          T victim;
          if (try_pop(victim))
            dropped_.fetch_add(1, std::memory_order_relaxed);
          break;  // victim destroyed; retry the push
        }
        case OverflowPolicy::kDropNewest:
          dropped_.fetch_add(1, std::memory_order_relaxed);
          return false;
      }
    }
  }

  bool try_pop(T& out) {
    std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const std::intptr_t dif = static_cast<std::intptr_t>(seq) -
                                static_cast<std::intptr_t>(pos + 1);
      if (dif == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1)) {
          out = std::move(cell.value);
          cell.seq.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Racy size estimate — exact once all producers are quiescent.
  std::size_t size_approx() const {
    const std::size_t enq = enqueue_pos_.load(std::memory_order_acquire);
    const std::size_t deq = dequeue_pos_.load(std::memory_order_acquire);
    return enq > deq ? enq - deq : 0;
  }
  bool empty() const { return size_approx() == 0; }

 private:
  struct Cell {
    std::atomic<std::size_t> seq;
    T value;
  };

  bool try_push_once(T& v) {
    std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const std::intptr_t dif =
          static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
      if (dif == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1)) {
          cell.value = std::move(v);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
  }

  const std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  const OverflowPolicy policy_;
  std::atomic<std::uint64_t> dropped_{0};
  alignas(64) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::size_t> dequeue_pos_{0};
};

/// Single-threaded growable ring — a std::deque replacement whose storage
/// is recycled in place. push_back/pop_front are O(1); growth doubles the
/// backing vector (amortized, and only until the high-water mark), after
/// which the queue allocates nothing no matter how many entries stream
/// through. Indexing is front-relative: rd[0] is the oldest entry.
template <typename T>
class RingDeque {
 public:
  explicit RingDeque(std::size_t initial_capacity = 8)
      : slots_(ceil_pow2(initial_capacity < 2 ? 2 : initial_capacity)) {}

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  std::size_t capacity() const { return slots_.size(); }

  void push_back(T v) {
    if (count_ == slots_.size()) grow();
    slots_[(head_ + count_) & (slots_.size() - 1)] = std::move(v);
    ++count_;
  }

  T& front() {
    DS_CHECK(count_ > 0, "front() on empty RingDeque");
    return slots_[head_];
  }
  const T& front() const {
    DS_CHECK(count_ > 0, "front() on empty RingDeque");
    return slots_[head_];
  }

  void pop_front() {
    DS_CHECK(count_ > 0, "pop_front() on empty RingDeque");
    slots_[head_] = T();  // release payload resources eagerly
    head_ = (head_ + 1) & (slots_.size() - 1);
    --count_;
  }

  /// i-th entry from the front (0 = oldest).
  T& operator[](std::size_t i) {
    DS_CHECK(i < count_, "RingDeque index out of range");
    return slots_[(head_ + i) & (slots_.size() - 1)];
  }
  const T& operator[](std::size_t i) const {
    DS_CHECK(i < count_, "RingDeque index out of range");
    return slots_[(head_ + i) & (slots_.size() - 1)];
  }

  void clear() {
    for (std::size_t i = 0; i < count_; ++i)
      slots_[(head_ + i) & (slots_.size() - 1)] = T();
    head_ = 0;
    count_ = 0;
  }

 private:
  void grow() {
    std::vector<T> bigger(slots_.size() * 2);
    for (std::size_t i = 0; i < count_; ++i)
      bigger[i] = std::move(slots_[(head_ + i) & (slots_.size() - 1)]);
    slots_ = std::move(bigger);
    head_ = 0;
  }

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace diffserve::util
