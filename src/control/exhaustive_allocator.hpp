// Exhaustive allocation oracle.
//
// Enumerates every (b1, b2, t) combination, derives the minimum worker
// counts by ceiling division, and keeps the feasible configuration with
// the highest threshold (ties: fewest workers, then lowest latency). The
// search space is |B|^2 * |grid| ~ a few thousand points, so this is fast
// enough to serve as both a correctness oracle for the MILP allocator and
// a production fallback.
//
// When no configuration is feasible, returns a best-effort overload plan:
// the lowest threshold, throughput-maximal batch sizes, and a worker split
// proportional to the two stages' service demands.
#pragma once

#include "control/allocator.hpp"

namespace diffserve::control {

class ExhaustiveAllocator : public Allocator {
 public:
  AllocationDecision allocate(const AllocationInput& input) override;
  std::string name() const override { return "exhaustive"; }
};

/// Copy of the input with queue backlog terms dropped (capacity planning
/// only) — used when Eq. 1 is transiently unsatisfiable due to backlog.
AllocationInput relax_queue_estimates(const AllocationInput& in);

/// Best-effort plan when even relaxed capacity planning is infeasible.
AllocationDecision overload_fallback(const AllocationInput& in);

}  // namespace diffserve::control
