#include "nn/dense.hpp"

#include <cmath>

#include "util/check.hpp"

namespace diffserve::nn {

Dense::Dense(std::size_t in_dim, std::size_t out_dim, Activation act,
             util::Rng& rng)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      act_(act),
      w_(out_dim, in_dim),
      b_(out_dim, 0.0),
      gw_(out_dim, in_dim),
      gb_(out_dim, 0.0),
      mw_(out_dim, in_dim),
      vw_(out_dim, in_dim),
      mb_(out_dim, 0.0),
      vb_(out_dim, 0.0) {
  DS_REQUIRE(in_dim > 0 && out_dim > 0, "zero-sized dense layer");
  const double scale = std::sqrt(2.0 / static_cast<double>(in_dim));
  for (std::size_t r = 0; r < out_dim; ++r)
    for (std::size_t c = 0; c < in_dim; ++c) w_(r, c) = rng.normal(0.0, scale);
}

std::vector<double> Dense::forward(const std::vector<double>& x) {
  DS_REQUIRE(x.size() == in_dim_, "input dimension mismatch");
  last_input_ = x;
  last_pre_act_.assign(out_dim_, 0.0);
  for (std::size_t r = 0; r < out_dim_; ++r) {
    double s = b_[r];
    for (std::size_t c = 0; c < in_dim_; ++c) s += w_(r, c) * x[c];
    last_pre_act_[r] = s;
  }
  std::vector<double> out = last_pre_act_;
  if (act_ == Activation::kRelu)
    for (auto& v : out) v = v > 0.0 ? v : 0.0;
  return out;
}

std::vector<double> Dense::infer(const std::vector<double>& x) const {
  DS_REQUIRE(x.size() == in_dim_, "input dimension mismatch");
  std::vector<double> out(out_dim_, 0.0);
  for (std::size_t r = 0; r < out_dim_; ++r) {
    double s = b_[r];
    for (std::size_t c = 0; c < in_dim_; ++c) s += w_(r, c) * x[c];
    out[r] = s;
  }
  if (act_ == Activation::kRelu)
    for (auto& v : out) v = v > 0.0 ? v : 0.0;
  return out;
}

std::vector<double> Dense::backward(const std::vector<double>& grad_out) {
  DS_REQUIRE(grad_out.size() == out_dim_, "gradient dimension mismatch");
  DS_CHECK(last_input_.size() == in_dim_, "backward without forward");
  std::vector<double> dz = grad_out;
  if (act_ == Activation::kRelu)
    for (std::size_t r = 0; r < out_dim_; ++r)
      if (last_pre_act_[r] <= 0.0) dz[r] = 0.0;

  std::vector<double> grad_in(in_dim_, 0.0);
  for (std::size_t r = 0; r < out_dim_; ++r) {
    gb_[r] += dz[r];
    for (std::size_t c = 0; c < in_dim_; ++c) {
      gw_(r, c) += dz[r] * last_input_[c];
      grad_in[c] += dz[r] * w_(r, c);
    }
  }
  return grad_in;
}

void Dense::zero_grad() {
  gw_ = linalg::Matrix(out_dim_, in_dim_);
  std::fill(gb_.begin(), gb_.end(), 0.0);
}

void Dense::adam_step(const AdamConfig& cfg, std::size_t batch_size) {
  DS_REQUIRE(batch_size > 0, "empty batch");
  ++adam_t_;
  const double inv_b = 1.0 / static_cast<double>(batch_size);
  const double bc1 = 1.0 - std::pow(cfg.beta1, static_cast<double>(adam_t_));
  const double bc2 = 1.0 - std::pow(cfg.beta2, static_cast<double>(adam_t_));
  for (std::size_t r = 0; r < out_dim_; ++r) {
    for (std::size_t c = 0; c < in_dim_; ++c) {
      const double g = gw_(r, c) * inv_b;
      mw_(r, c) = cfg.beta1 * mw_(r, c) + (1.0 - cfg.beta1) * g;
      vw_(r, c) = cfg.beta2 * vw_(r, c) + (1.0 - cfg.beta2) * g * g;
      w_(r, c) -= cfg.lr * (mw_(r, c) / bc1) /
                  (std::sqrt(vw_(r, c) / bc2) + cfg.eps);
    }
    const double g = gb_[r] * inv_b;
    mb_[r] = cfg.beta1 * mb_[r] + (1.0 - cfg.beta1) * g;
    vb_[r] = cfg.beta2 * vb_[r] + (1.0 - cfg.beta2) * g * g;
    b_[r] -= cfg.lr * (mb_[r] / bc1) / (std::sqrt(vb_[r] / bc2) + cfg.eps);
  }
}

std::size_t Dense::parameter_count() const {
  return out_dim_ * in_dim_ + out_dim_;
}

}  // namespace diffserve::nn
