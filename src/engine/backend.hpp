// Execution substrate interface.
//
// The CascadeEngine holds all serving *policy* (admission, cascade
// deferral, batching, reconfiguration, metrics); an ExecutionBackend
// supplies the *substrate*: a clock, deferred callbacks, batch execution,
// and the locking discipline. The discrete-event simulator and the
// threaded wall-clock testbed are two implementations of this interface,
// which is how the repo reproduces the paper's §4.3 simulator-vs-testbed
// fidelity check from a single policy implementation.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>

namespace diffserve::engine {

/// Opaque handle for cancelling a deferred callback.
struct TimerHandle {
  std::uint64_t id = 0;
  bool valid() const { return id != 0; }
};

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  /// Current time in trace seconds.
  virtual double now() const = 0;

  /// Invoke `fn` after `delay_seconds` of trace time. Implementations must
  /// not invoke `fn` synchronously from inside this call (the engine may
  /// hold its state guard).
  virtual TimerHandle defer(double delay_seconds,
                            std::function<void()> fn) = 0;
  /// Cancel a deferred callback; returns false if it already fired or was
  /// cancelled. A benign race is allowed: a callback concurrently in
  /// flight may still run, so engine callbacks must tolerate staleness.
  virtual bool cancel(TimerHandle h) = 0;

  /// Occupy `worker_id` for `exec_seconds` of trace time, then invoke
  /// `done`. The engine guarantees at most one in-flight execution per
  /// worker. `done` must not be invoked synchronously.
  virtual void execute(int worker_id, double exec_seconds,
                       std::function<void()> done) = 0;

  /// Lock protecting the engine's mutable state. Single-threaded backends
  /// (the DES) return an empty lock; concurrent backends return a held
  /// lock on a real mutex. The engine acquires this at every public entry
  /// point and inside every backend callback. This seam deliberately
  /// stays on std::unique_lock<std::mutex> (via util::Mutex::native())
  /// rather than the annotated util::MutexLock: clang's Thread Safety
  /// Analysis cannot track a capability handed across a virtual call, so
  /// this one path is covered by TSan instead (see util/mutex.hpp).
  virtual std::unique_lock<std::mutex> guard() = 0;

  /// Run long-running control work (e.g. an allocator solve) somewhere it
  /// cannot delay timer delivery. The default invokes `fn` synchronously —
  /// correct for single-threaded backends, where nothing else could run
  /// anyway; concurrent backends route it to a dedicated executor so a
  /// slow solve never blocks batch-launch timers. Unlike defer/execute,
  /// `fn` MAY be invoked inline, so callers must not hold the guard.
  virtual void offload(std::function<void()> fn) { fn(); }
};

}  // namespace diffserve::engine
